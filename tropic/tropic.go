// Package tropic is the public API of this TROPIC reproduction: a
// transactional resource orchestration platform for IaaS clouds (Liu,
// Mao, Chen, Fernández, Loo, Van der Merwe — USENIX ATC 2012).
//
// A Platform bundles a replicated coordination store, a set of
// controller replicas (logical layer), and physical workers. Cloud
// services are defined as a Schema (entities with actions and
// constraints) plus stored Procedures, and exercised through a Client
// that submits transactions and waits for their ACID outcome:
//
//	schema := tropic.NewSchema()
//	... register entities, actions, constraints ...
//	p, err := tropic.New(tropic.Config{
//	    Schema:     schema,
//	    Procedures: procs,
//	    Bootstrap:  initialModel,
//	})
//	p.Start(ctx)
//	defer p.Stop()
//	rec, err := p.Client().SubmitAndWait(ctx, "spawnVM", args...)
//
// Orchestrations either commit in full — on the devices and in the
// logical model — or leave no effect, with constraint violations and
// race conditions caught in the logical layer before any device is
// touched.
package tropic

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controller"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/queue"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/worker"
	"repro/tropic/trerr"
)

// Re-exported model and transaction vocabulary, so services are written
// against the tropic package alone.
type (
	// Schema registers the data model's entities.
	Schema = model.Schema
	// Tree is a hierarchical data model instance.
	Tree = model.Tree
	// Node is one object in the data model.
	Node = model.Node
	// Entity describes a node type.
	Entity = model.Entity
	// ActionDef defines an entity action with its undo.
	ActionDef = model.ActionDef
	// Constraint is a service/engineering rule checked at runtime.
	Constraint = model.Constraint
	// Ctx is the stored-procedure execution context.
	Ctx = controller.Ctx
	// Procedure is orchestration logic run as a transaction.
	Procedure = controller.Procedure
	// Txn is a transaction record.
	Txn = txn.Txn
	// LogRecord is one execution-log entry (paper Table 1).
	LogRecord = txn.LogRecord
	// State is a transaction state (paper Figure 2).
	State = txn.State
	// StateStamp timestamps one state transition (Txn.History).
	StateStamp = txn.StateStamp
	// Signal is an operator TERM/KILL intervention (§4).
	Signal = txn.Signal
	// Executor is the physical device API used by workers.
	Executor = worker.Executor
	// NoopExecutor is the logical-only mode executor (§5).
	NoopExecutor = worker.NoopExecutor
	// SyncPolicy selects the coordination store's WAL fsync policy.
	SyncPolicy = store.SyncPolicy
	// PersistStats are the store's durability counters.
	PersistStats = store.PersistStats
)

// WAL fsync policies (used with Config.DataDir).
const (
	// SyncAlways fsyncs every logged write (default; machine-crash safe).
	SyncAlways = store.SyncAlways
	// SyncNone leaves flushing to the OS (process-crash safe only).
	SyncNone = store.SyncNone
)

// ParseSyncPolicy parses a sync-policy flag value ("always" | "none").
func ParseSyncPolicy(s string) (SyncPolicy, error) { return store.ParseSyncPolicy(s) }

// Transaction states.
const (
	StateInitialized = txn.StateInitialized
	StateAccepted    = txn.StateAccepted
	StateStarted     = txn.StateStarted
	StateCommitted   = txn.StateCommitted
	StateAborted     = txn.StateAborted
	StateFailed      = txn.StateFailed
)

// Operator signals (§4).
const (
	SignalTerm = txn.SignalTerm
	SignalKill = txn.SignalKill
)

// Scheduling policies (§3.1.1).
const (
	ScheduleFIFO       = controller.ScheduleFIFO
	ScheduleAggressive = controller.ScheduleAggressive
)

// ErrAbort aborts a transaction from inside a stored procedure.
var ErrAbort = controller.ErrAbort

// NewSchema creates an empty schema.
func NewSchema() *Schema { return model.NewSchema() }

// NewTree creates an empty data model tree.
func NewTree() *Tree { return model.NewTree() }

// Config assembles a platform.
type Config struct {
	// Schema defines the data model entities (required).
	Schema *Schema
	// Procedures is the stored-procedure registry (required).
	Procedures map[string]Procedure
	// Bootstrap is the initial logical data model (required): the
	// device snapshot for a physical deployment, or a synthetic tree in
	// logical-only mode.
	Bootstrap *Tree
	// Executor performs physical actions; nil selects logical-only mode
	// (NoopExecutor), as used by the paper's scale experiments.
	Executor Executor
	// Controllers is the number of controller replicas (default 3,
	// matching the paper's deployment).
	Controllers int
	// WorkerThreads is the number of physical executor threads
	// (default 4; the paper runs one worker with multiple threads).
	WorkerThreads int
	// StoreReplicas is the coordination-store ensemble size (default 3).
	StoreReplicas int
	// SessionTimeout is the store's failure-detection interval, which
	// dominates controller failover time (§6.4). Default 500ms.
	SessionTimeout time.Duration
	// CommitLatency simulates the I/O cost of a store quorum round.
	CommitLatency time.Duration
	// DataDir, when non-empty, makes the coordination store durable:
	// every committed write is logged to this directory before it is
	// applied, and a restarted platform recovers all transaction
	// records, queues, and counters from it — the paper's §2.3 claim
	// that a new lead controller resumes in-flight work after ANY
	// failure, extended to full-process crashes. Empty (the default)
	// keeps the platform purely in-memory.
	DataDir string
	// SyncPolicy selects the WAL fsync policy with DataDir (SyncAlways,
	// the default, or SyncNone).
	SyncPolicy SyncPolicy
	// SnapshotEvery writes a store snapshot and truncates the WAL after
	// this many logged writes (default 4096 with DataDir; negative
	// disables snapshots).
	SnapshotEvery int
	// CheckpointEvery folds the commit log into a snapshot after this
	// many commits (0 disables checkpointing).
	CheckpointEvery int
	// Reconciler handles reload/repair requests (§4). Typically
	// reconcile.New(cloud, cloud, tcloud.RepairRules()); nil rejects
	// reconciliation requests.
	Reconciler controller.Reconciler
	// Policy selects the todoQ scheduling strategy: ScheduleFIFO (the
	// paper's default) or ScheduleAggressive (§3.1.1's future-work
	// alternative that schedules past conflicted transactions).
	Policy controller.SchedulingPolicy
	// BatchMaxOps sizes the pipeline's group commits: the lead
	// controller drains up to this many inputQ items per event round and
	// flushes their effects — and each scheduling round's admissions —
	// in single grouped store commits, and workers coalesce up to this
	// many report operations per commit. 0 selects the default (32);
	// 1 disables batching entirely, restoring the per-item round-trip
	// pipeline (kept runnable for the ablation benchmarks).
	BatchMaxOps int
	// BatchMaxDelay bounds how long an asynchronously batched store
	// operation (worker outcome reports) waits for company before its
	// batch flushes anyway (default 2ms). It is the pipeline's
	// batching-latency ceiling: no report sits unflushed longer than
	// this.
	BatchMaxDelay time.Duration
	// WorkerClaimBatch is how many phyQ entries one worker thread claims
	// per store round trip (default 4 when batching, 1 otherwise).
	WorkerClaimBatch int
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Platform is a running TROPIC deployment.
type Platform struct {
	cfg  Config
	ens  *store.Ensemble
	ctrl []*controller.Controller
	wrk  *worker.Worker

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	started bool

	// depthCli lazily holds a store session for queue-depth sampling;
	// gauges retain the latest sampled depths.
	depthMu  sync.Mutex
	depthCli *store.Client
	gauges   metrics.QueueGauges
}

// New builds a platform. Call Start to elect a leader and begin serving.
func New(cfg Config) (*Platform, error) {
	if cfg.Schema == nil {
		return nil, errors.New("tropic: Config.Schema is required")
	}
	if cfg.Bootstrap == nil {
		return nil, errors.New("tropic: Config.Bootstrap is required")
	}
	if cfg.Controllers <= 0 {
		cfg.Controllers = 3
	}
	if cfg.WorkerThreads <= 0 {
		cfg.WorkerThreads = 4
	}
	if cfg.StoreReplicas <= 0 {
		cfg.StoreReplicas = 3
	}
	if cfg.Executor == nil {
		cfg.Executor = NoopExecutor{}
	}
	if cfg.BatchMaxOps == 0 {
		cfg.BatchMaxOps = store.DefaultBatchMaxOps
	}
	if cfg.BatchMaxOps < 1 {
		cfg.BatchMaxOps = 1
	}
	if cfg.BatchMaxDelay <= 0 {
		cfg.BatchMaxDelay = store.DefaultBatchMaxDelay
	}
	if cfg.WorkerClaimBatch <= 0 {
		if cfg.BatchMaxOps > 1 {
			cfg.WorkerClaimBatch = 4
		} else {
			cfg.WorkerClaimBatch = 1
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ens, err := store.OpenEnsemble(store.Config{
		Replicas:       cfg.StoreReplicas,
		SessionTimeout: cfg.SessionTimeout,
		CommitLatency:  cfg.CommitLatency,
		DataDir:        cfg.DataDir,
		SyncPolicy:     cfg.SyncPolicy,
		SnapshotEvery:  cfg.SnapshotEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("tropic: store: %w", err)
	}
	p := &Platform{cfg: cfg, ens: ens}
	for i := 0; i < cfg.Controllers; i++ {
		c, err := controller.New(controller.Config{
			Name:            fmt.Sprintf("ctrl-%d", i),
			Ensemble:        ens,
			Schema:          cfg.Schema,
			Procedures:      cfg.Procedures,
			Bootstrap:       cfg.Bootstrap,
			CheckpointEvery: cfg.CheckpointEvery,
			Reconciler:      cfg.Reconciler,
			Policy:          cfg.Policy,
			BatchMaxOps:     cfg.BatchMaxOps,
			Logf:            cfg.Logf,
		})
		if err != nil {
			ens.Close()
			return nil, err
		}
		p.ctrl = append(p.ctrl, c)
	}
	w, err := worker.New(worker.Config{
		Name:          "worker-0",
		Ensemble:      ens,
		Executor:      cfg.Executor,
		Threads:       cfg.WorkerThreads,
		ClaimBatch:    cfg.WorkerClaimBatch,
		BatchMaxOps:   cfg.BatchMaxOps,
		BatchMaxDelay: cfg.BatchMaxDelay,
		Logf:          cfg.Logf,
	})
	if err != nil {
		ens.Close()
		return nil, err
	}
	p.wrk = w
	return p, nil
}

// Start launches controllers and workers and returns once a leader is
// serving.
func (p *Platform) Start(ctx context.Context) error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return errors.New("tropic: already started")
	}
	p.started = true
	p.mu.Unlock()

	runCtx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	for _, c := range p.ctrl {
		c := c
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			if err := c.Run(runCtx); err != nil && !errors.Is(err, context.Canceled) {
				p.cfg.Logf("tropic: controller exited: %v", err)
			}
		}()
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		if err := p.wrk.Run(runCtx); err != nil && !errors.Is(err, context.Canceled) {
			p.cfg.Logf("tropic: worker exited: %v", err)
		}
	}()
	return p.WaitLeader(ctx)
}

// WaitLeader blocks until some controller is leading.
func (p *Platform) WaitLeader(ctx context.Context) error {
	for {
		if p.Leader() != nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Leader returns the currently leading controller, or nil.
func (p *Platform) Leader() *controller.Controller {
	for _, c := range p.ctrl {
		if c.Leading() {
			return c
		}
	}
	return nil
}

// KillLeader crashes the current leader (no graceful cleanup — its
// election node lingers until the store's session timeout, as for a
// real machine failure). Returns the killed controller's name, or ""
// when no leader is up.
func (p *Platform) KillLeader() string {
	c := p.Leader()
	if c == nil {
		return ""
	}
	name := c.Name()
	c.Kill()
	return name
}

// Stop shuts the platform down: controllers, workers, then the store.
// The returned error reports a failed final WAL flush (only possible
// with Config.DataDir); the shutdown itself always completes.
func (p *Platform) Stop() error {
	if p.cancel != nil {
		p.cancel()
	}
	p.wg.Wait()
	for _, c := range p.ctrl {
		c.Close()
	}
	p.wrk.Close()
	p.depthMu.Lock()
	if p.depthCli != nil {
		p.depthCli.Close()
		p.depthCli = nil
	}
	p.depthMu.Unlock()
	return p.ens.Close()
}

// PipelineInfo is the batching configuration in effect, surfaced through
// GET /v1/stats so operators can correlate throughput with the knobs.
type PipelineInfo struct {
	BatchMaxOps      int     `json:"batchMaxOps"`
	BatchMaxDelayMs  float64 `json:"batchMaxDelayMs"`
	WorkerClaimBatch int     `json:"workerClaimBatch"`
	WorkerThreads    int     `json:"workerThreads"`
}

// PipelineInfo reports the resolved batching configuration.
func (p *Platform) PipelineInfo() PipelineInfo {
	return PipelineInfo{
		BatchMaxOps:      p.cfg.BatchMaxOps,
		BatchMaxDelayMs:  float64(p.cfg.BatchMaxDelay) / float64(time.Millisecond),
		WorkerClaimBatch: p.cfg.WorkerClaimBatch,
		WorkerThreads:    p.cfg.WorkerThreads,
	}
}

// QueueDepths samples the depths of the three pipeline queues: inputQ
// and phyQ are counted live from the store, todoQ from the leading
// controller's gauge (0 while no leader is up). The canonical
// back-pressure signal: a growing inQ means the controller is the
// bottleneck, a growing phyQ means the workers are.
func (p *Platform) QueueDepths() metrics.QueueDepths {
	p.depthMu.Lock()
	defer p.depthMu.Unlock()
	if p.depthCli == nil {
		p.depthCli = p.ens.Connect()
	}
	count := func(path string) int64 {
		names, err := p.depthCli.Children(path)
		if err != nil {
			return 0
		}
		var n int64
		for _, name := range names {
			if strings.HasPrefix(name, queue.ItemPrefix) {
				n++
			}
		}
		return n
	}
	p.gauges.InQ.Set(count(proto.InputQPath))
	p.gauges.PhyQ.Set(count(proto.PhyQPath))
	if l := p.Leader(); l != nil {
		p.gauges.TodoQ.Set(l.TodoDepth())
	}
	return p.gauges.Snapshot()
}

// Ensemble exposes the coordination store for fault-injection in tests
// and benchmarks.
func (p *Platform) Ensemble() *store.Ensemble { return p.ens }

// Controllers exposes the controller replicas (for HA experiments).
func (p *Platform) Controllers() []*controller.Controller { return p.ctrl }

// Worker exposes the physical worker (for stats).
func (p *Platform) Worker() *worker.Worker { return p.wrk }

// ControllerStats sums stats across all controller replicas.
func (p *Platform) ControllerStats() controller.Stats {
	var total controller.Stats
	for _, c := range p.ctrl {
		s := c.Stats()
		total.Accepted += s.Accepted
		total.Committed += s.Committed
		total.Aborted += s.Aborted
		total.Failed += s.Failed
		total.Deferrals += s.Deferrals
		total.Violations += s.Violations
		total.BusyNanos += s.BusyNanos
		total.ConstraintNanos += s.ConstraintNanos
		total.RollbackNanos += s.RollbackNanos
		total.Rollbacks += s.Rollbacks
		total.InBatches += s.InBatches
		total.InBatchItems += s.InBatchItems
		total.Flushes += s.Flushes
		total.FlushedOps += s.FlushedOps
		total.FlushNanos += s.FlushNanos
		if s.MaxInBatch > total.MaxInBatch {
			total.MaxInBatch = s.MaxInBatch
		}
		if s.MaxFlushOps > total.MaxFlushOps {
			total.MaxFlushOps = s.MaxFlushOps
		}
	}
	return total
}

// Client opens a new client session against the platform.
func (p *Platform) Client() *Client {
	cli := p.ens.Connect()
	// The submit path's coalescing obeys the same knobs as the rest of
	// the pipeline.
	cli.ConfigureBatcher(store.BatcherConfig{
		MaxOps:   p.cfg.BatchMaxOps,
		MaxDelay: p.cfg.BatchMaxDelay,
	})
	return &Client{cli: cli, procs: p.cfg.Procedures, batched: p.cfg.BatchMaxOps > 1}
}

// Client submits transactional orchestrations and tracks their outcome,
// playing the role of the API service gateway in Figure 1.
type Client struct {
	cli *store.Client
	// procs is the platform's procedure registry, used to reject
	// unknown procedures synchronously at submit time (nil skips the
	// check, for clients constructed without a registry).
	procs map[string]Procedure
	// batched routes submissions through the store client's group-commit
	// batcher, so concurrent submitters sharing this Client coalesce
	// their record and notice creations into shared proposal rounds.
	// Set from the platform's BatchMaxOps; false preserves the per-item
	// submission path.
	batched bool
	// seq numbers this client's batched submissions (their record ids
	// are client-generated rather than sequence-allocated, so record and
	// notice can ride one atomic commit).
	seq atomic.Int64
}

// Close releases the client's store session.
func (c *Client) Close() { c.cli.Close() }

// ValidateProc rejects submissions that could never execute: an empty
// procedure name (submit.invalid_args) or one missing from the registry
// (txn.unknown_procedure).
func (c *Client) ValidateProc(proc string) error {
	if proc == "" {
		return trerr.New(trerr.SubmitInvalidArgs, "tropic: submit: empty procedure name")
	}
	if c.procs != nil {
		if _, ok := c.procs[proc]; !ok {
			return trerr.Newf(trerr.TxnUnknownProcedure,
				"tropic: submit: unknown stored procedure %q", proc).With("proc", proc)
		}
	}
	return nil
}

// Submit initiates a transaction (Figure 2, ①) and returns its id. The
// procedure name is validated against the registry, so an unknown
// procedure is rejected here instead of producing a transaction doomed
// to abort asynchronously.
func (c *Client) Submit(proc string, args ...string) (string, error) {
	if err := c.ValidateProc(proc); err != nil {
		return "", err
	}
	now := time.Now()
	rec := &txn.Txn{
		Proc:        proc,
		Args:        args,
		State:       txn.StateInitialized,
		SubmittedAt: now,
		History:     []txn.StateStamp{{State: txn.StateInitialized, At: now}},
	}
	if c.batched {
		// Group-committed submission: record and notice ride ONE atomic
		// batch (no orphaned records), coalesced with every concurrent
		// submitter on this client into shared proposal rounds. The
		// record id is client-generated — session id plus a local
		// counter, unique ensemble-wide — because a sequence-allocated
		// name would only be known after a first, separate commit.
		id := fmt.Sprintf("t-s%xc%08d", c.cli.SessionID(), c.seq.Add(1))
		path := proto.TxnsPath + "/" + id
		err := <-c.cli.MultiAsync(
			store.CreateOp(path, rec.Encode(), 0),
			store.CreateOp(proto.InputQPath+"/item-",
				proto.InputMsg{Kind: proto.KindSubmit, TxnPath: path}.Encode(), store.FlagSequence),
		)
		if err != nil {
			return "", fmt.Errorf("tropic: submit: %w", err)
		}
		return id, nil
	}
	path, err := c.cli.Create(proto.TxnPrefix, rec.Encode(), store.FlagSequence)
	if err != nil {
		return "", fmt.Errorf("tropic: submit: %w", err)
	}
	_, err = c.cli.Create(proto.InputQPath+"/item-",
		proto.InputMsg{Kind: proto.KindSubmit, TxnPath: path}.Encode(), store.FlagSequence)
	if err != nil {
		return "", fmt.Errorf("tropic: submit enqueue: %w", err)
	}
	return idFromPath(path), nil
}

// Get fetches the current record of a transaction. An unknown id is
// reported as trerr.TxnNotFound.
func (c *Client) Get(id string) (*Txn, error) {
	if id == "" {
		return nil, trerr.New(trerr.APIBadRequest, "tropic: get: missing transaction id")
	}
	data, _, err := c.cli.Get(proto.TxnsPath + "/" + id)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return nil, trerr.Wrap(trerr.TxnNotFound, err,
				fmt.Sprintf("transaction %s not found", id)).With("id", id)
		}
		return nil, err
	}
	rec, err := txn.Decode(data)
	if err != nil {
		return nil, err
	}
	rec.ID = id
	return rec, nil
}

// Wait blocks until the transaction reaches a terminal state and
// returns its final record. An unknown id is reported as
// trerr.TxnNotFound; an elapsed deadline as trerr.TxnWaitTimeout (with
// context.DeadlineExceeded still in the chain).
func (c *Client) Wait(ctx context.Context, id string) (*Txn, error) {
	path := proto.TxnsPath + "/" + id
	for {
		watch, err := c.cli.WatchNode(path)
		if err != nil {
			return nil, err
		}
		rec, err := c.Get(id)
		if err != nil {
			c.cli.Unwatch(path, watch)
			return nil, err
		}
		if rec.State.Terminal() {
			// Terminal records never change again: release the armed
			// watch instead of leaking it for the session's lifetime.
			c.cli.Unwatch(path, watch)
			return rec, nil
		}
		select {
		case <-ctx.Done():
			c.cli.Unwatch(path, watch)
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, trerr.Wrap(trerr.TxnWaitTimeout, ctx.Err(),
					fmt.Sprintf("tropic: wait %s: deadline elapsed before a terminal state", id)).With("id", id)
			}
			return nil, ctx.Err()
		case ev := <-watch:
			if ev.Type == store.EventSessionExpired {
				return nil, store.ErrSessionExpired
			}
		}
	}
}

// SubmitAndWait submits and waits for the outcome.
func (c *Client) SubmitAndWait(ctx context.Context, proc string, args ...string) (*Txn, error) {
	id, err := c.Submit(proc, args...)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, id)
}

// Reload asks the lead controller to synchronize the logical layer from
// the physical state of the target subtree and waits for the outcome
// (§4). Intended for device additions and decommissionings.
func (c *Client) Reload(ctx context.Context, target string) error {
	return c.reconcileRequest(ctx, proto.KindReload, target)
}

// Repair asks the lead controller to drive the physical state of the
// target subtree back to the logical state and waits for the outcome
// (§4). TROPIC invokes this periodically at an operator-chosen
// frequency.
func (c *Client) Repair(ctx context.Context, target string) error {
	return c.reconcileRequest(ctx, proto.KindRepair, target)
}

func (c *Client) reconcileRequest(ctx context.Context, kind proto.MsgKind, target string) error {
	if err := c.cli.EnsurePath(proto.RepliesPath); err != nil {
		return err
	}
	replyPath, err := c.cli.Create(proto.RepliesPath+"/r-", nil, store.FlagSequence)
	if err != nil {
		return err
	}
	defer func() { _ = c.cli.Delete(replyPath, -1) }()
	watch, err := c.cli.WatchNode(replyPath)
	if err != nil {
		return err
	}
	_, err = c.cli.Create(proto.InputQPath+"/item-",
		proto.InputMsg{Kind: kind, Target: target, Reply: replyPath}.Encode(), store.FlagSequence)
	if err != nil {
		c.cli.Unwatch(replyPath, watch)
		return err
	}
	select {
	case <-ctx.Done():
		c.cli.Unwatch(replyPath, watch)
		return ctx.Err()
	case ev := <-watch:
		if ev.Type == store.EventSessionExpired {
			return store.ErrSessionExpired
		}
	}
	data, _, err := c.cli.Get(replyPath)
	if err != nil {
		return err
	}
	reply, err := proto.DecodeReply(data)
	if err != nil {
		return err
	}
	if !reply.OK {
		code := trerr.Code(reply.Code)
		if !code.Valid() {
			code = trerr.ReconcileConflict
		}
		return trerr.New(code,
			fmt.Sprintf("tropic: %s %s: %s", kind, target, reply.Error)).With("target", target)
	}
	return nil
}

// Signal sends a TERM or KILL to a transaction (§4). The signal value
// and the transaction's existence are validated synchronously
// (trerr.TxnInvalidSignal / trerr.TxnNotFound).
func (c *Client) Signal(id string, sig txn.Signal) error {
	if sig != txn.SignalTerm && sig != txn.SignalKill {
		return trerr.Newf(trerr.TxnInvalidSignal,
			"tropic: signal %q: signal must be TERM or KILL", sig)
	}
	if _, err := c.Get(id); err != nil {
		return err
	}
	_, err := c.cli.Create(proto.InputQPath+"/item-",
		proto.InputMsg{
			Kind:    proto.KindSignal,
			TxnPath: proto.TxnsPath + "/" + id,
			Signal:  string(sig),
		}.Encode(), store.FlagSequence)
	return err
}

func idFromPath(path string) string {
	return path[strings.LastIndexByte(path, '/')+1:]
}
