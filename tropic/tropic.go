// Package tropic is the public API of this TROPIC reproduction: a
// transactional resource orchestration platform for IaaS clouds (Liu,
// Mao, Chen, Fernández, Loo, Van der Merwe — USENIX ATC 2012).
//
// A Platform bundles a replicated coordination store, a set of
// controller replicas (logical layer), and physical workers. Cloud
// services are defined as a Schema (entities with actions and
// constraints) plus stored Procedures, and exercised through a Client
// that submits transactions and waits for their ACID outcome:
//
//	schema := tropic.NewSchema()
//	... register entities, actions, constraints ...
//	p, err := tropic.New(tropic.Config{
//	    Schema:     schema,
//	    Procedures: procs,
//	    Bootstrap:  initialModel,
//	})
//	p.Start(ctx)
//	defer p.Stop()
//	rec, err := p.Client().SubmitAndWait(ctx, "spawnVM", args...)
//
// Orchestrations either commit in full — on the devices and in the
// logical model — or leave no effect, with constraint violations and
// race conditions caught in the logical layer before any device is
// touched.
package tropic

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controller"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/queue"
	"repro/internal/readpath"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/worker"
	"repro/tropic/trerr"
)

// Re-exported model and transaction vocabulary, so services are written
// against the tropic package alone.
type (
	// Schema registers the data model's entities.
	Schema = model.Schema
	// Tree is a hierarchical data model instance.
	Tree = model.Tree
	// Node is one object in the data model.
	Node = model.Node
	// Entity describes a node type.
	Entity = model.Entity
	// ActionDef defines an entity action with its undo.
	ActionDef = model.ActionDef
	// Constraint is a service/engineering rule checked at runtime.
	Constraint = model.Constraint
	// Ctx is the stored-procedure execution context.
	Ctx = controller.Ctx
	// Procedure is orchestration logic run as a transaction.
	Procedure = controller.Procedure
	// Txn is a transaction record.
	Txn = txn.Txn
	// ChildRef is one entry of a cross-shard parent's child ledger.
	ChildRef = txn.ChildRef
	// LogRecord is one execution-log entry (paper Table 1).
	LogRecord = txn.LogRecord
	// State is a transaction state (paper Figure 2).
	State = txn.State
	// StateStamp timestamps one state transition (Txn.History).
	StateStamp = txn.StateStamp
	// Signal is an operator TERM/KILL intervention (§4).
	Signal = txn.Signal
	// Executor is the physical device API used by workers.
	Executor = worker.Executor
	// NoopExecutor is the logical-only mode executor (§5).
	NoopExecutor = worker.NoopExecutor
	// SyncPolicy selects the coordination store's WAL fsync policy.
	SyncPolicy = store.SyncPolicy
	// PersistStats are the store's durability counters.
	PersistStats = store.PersistStats
)

// WAL fsync policies (used with Config.DataDir).
const (
	// SyncAlways fsyncs every logged write (default; machine-crash safe).
	SyncAlways = store.SyncAlways
	// SyncNone leaves flushing to the OS (process-crash safe only).
	SyncNone = store.SyncNone
)

// ParseSyncPolicy parses a sync-policy flag value ("always" | "none").
func ParseSyncPolicy(s string) (SyncPolicy, error) { return store.ParseSyncPolicy(s) }

// Transaction states.
const (
	StateInitialized = txn.StateInitialized
	StateAccepted    = txn.StateAccepted
	StateStarted     = txn.StateStarted
	StateCommitted   = txn.StateCommitted
	StateAborted     = txn.StateAborted
	StateFailed      = txn.StateFailed
	// StatePrepared: a cross-shard child holding its locks, awaiting the
	// coordinator's two-phase-commit decision.
	StatePrepared = txn.StatePrepared
	// StateDeciding: a cross-shard parent whose COMMIT/ABORT decision is
	// durably recorded, awaiting child outcomes.
	StateDeciding = txn.StateDeciding
)

// Operator signals (§4).
const (
	SignalTerm = txn.SignalTerm
	SignalKill = txn.SignalKill
)

// Scheduling policies (§3.1.1).
const (
	ScheduleFIFO       = controller.ScheduleFIFO
	ScheduleAggressive = controller.ScheduleAggressive
)

// ErrAbort aborts a transaction from inside a stored procedure.
var ErrAbort = controller.ErrAbort

// CrossShardMode selects cross-shard transaction handling on a sharded
// platform (Config.CrossShard).
type CrossShardMode int

const (
	// CrossShardAuto (the zero value) resolves to enabled.
	CrossShardAuto CrossShardMode = iota
	// CrossShardEnabled runs submissions spanning shards as atomic
	// two-phase-commit transactions.
	CrossShardEnabled
	// CrossShardDisabled rejects submissions spanning shards with
	// trerr.ShardCrossShard — the single-shard-only ablation.
	CrossShardDisabled
)

// enabled resolves the mode (Auto → enabled).
func (m CrossShardMode) enabled() bool { return m != CrossShardDisabled }

// XShardFastPathMode selects the cross-shard 2PC message flow
// (Config.XShardFastPath).
type XShardFastPathMode int

const (
	// XShardFastPathAuto (the zero value) resolves to enabled.
	XShardFastPathAuto XShardFastPathMode = iota
	// XShardFastPathEnabled coalesces the 2PC message flow:
	// coordinator-local children skip the cross-store prepare round,
	// decisions piggyback on vote acks, per-peer sends batch into one
	// Multi per event round, and children prepare in a deterministic
	// global order with wound-wait resolving lock-order inversions.
	XShardFastPathEnabled
	// XShardFastPathDisabled restores the one-store-round-trip-per-
	// message flow — the slow-path ablation the cross-shard overhead
	// benchmark compares against. Correctness is identical.
	XShardFastPathDisabled
)

// enabled resolves the mode (Auto → enabled).
func (m XShardFastPathMode) enabled() bool { return m != XShardFastPathDisabled }

// NewSchema creates an empty schema.
func NewSchema() *Schema { return model.NewSchema() }

// NewTree creates an empty data model tree.
func NewTree() *Tree { return model.NewTree() }

// Config assembles a platform.
type Config struct {
	// Schema defines the data model entities (required).
	Schema *Schema
	// Procedures is the stored-procedure registry (required).
	Procedures map[string]Procedure
	// Bootstrap is the initial logical data model (required): the
	// device snapshot for a physical deployment, or a synthetic tree in
	// logical-only mode.
	Bootstrap *Tree
	// Executor performs physical actions; nil selects logical-only mode
	// (NoopExecutor), as used by the paper's scale experiments.
	Executor Executor
	// Controllers is the number of controller replicas (default 3,
	// matching the paper's deployment).
	Controllers int
	// WorkerThreads is the number of physical executor threads
	// (default 4; the paper runs one worker with multiple threads).
	WorkerThreads int
	// StoreReplicas is the coordination-store ensemble size (default 3).
	StoreReplicas int
	// SessionTimeout is the store's failure-detection interval, which
	// dominates controller failover time (§6.4). Default 500ms.
	SessionTimeout time.Duration
	// CommitLatency simulates the I/O cost of a store quorum round.
	CommitLatency time.Duration
	// DataDir, when non-empty, makes the coordination store durable:
	// every committed write is logged to this directory before it is
	// applied, and a restarted platform recovers all transaction
	// records, queues, and counters from it — the paper's §2.3 claim
	// that a new lead controller resumes in-flight work after ANY
	// failure, extended to full-process crashes. Empty (the default)
	// keeps the platform purely in-memory.
	DataDir string
	// SyncPolicy selects the WAL fsync policy with DataDir (SyncAlways,
	// the default, or SyncNone).
	SyncPolicy SyncPolicy
	// SnapshotEvery writes a store snapshot and truncates the WAL after
	// this many logged writes (default 4096 with DataDir; negative
	// disables snapshots).
	SnapshotEvery int
	// CheckpointEvery folds the commit log into a snapshot after this
	// many commits (0 disables checkpointing).
	CheckpointEvery int
	// RetainTerminal bounds how many terminal transaction records each
	// shard keeps after a checkpoint (0 keeps all). Cross-shard records
	// are reaped ledger-aware: a child outlives its parent's decision
	// and a parent outlives its children's terminal reports, never the
	// reverse.
	RetainTerminal int
	// Reconciler handles reload/repair requests (§4). Typically
	// reconcile.New(cloud, cloud, tcloud.RepairRules()); nil rejects
	// reconciliation requests.
	Reconciler controller.Reconciler
	// Policy selects the todoQ scheduling strategy: ScheduleFIFO (the
	// paper's default) or ScheduleAggressive (§3.1.1's future-work
	// alternative that schedules past conflicted transactions).
	Policy controller.SchedulingPolicy
	// BatchMaxOps sizes the pipeline's group commits: the lead
	// controller drains up to this many inputQ items per event round and
	// flushes their effects — and each scheduling round's admissions —
	// in single grouped store commits, and workers coalesce up to this
	// many report operations per commit. 0 selects the default (32);
	// 1 disables batching entirely, restoring the per-item round-trip
	// pipeline (kept runnable for the ablation benchmarks).
	BatchMaxOps int
	// BatchMaxDelay bounds how long an asynchronously batched store
	// operation (worker outcome reports) waits for company before its
	// batch flushes anyway (default 2ms). It is the pipeline's
	// batching-latency ceiling: no report sits unflushed longer than
	// this.
	BatchMaxDelay time.Duration
	// WorkerClaimBatch is how many phyQ entries one worker thread claims
	// per store round trip (default 4 when batching, 1 otherwise).
	WorkerClaimBatch int
	// Shards partitions the platform horizontally into this many
	// independent shards (default 1: the paper's single-ensemble
	// deployment). Each shard runs its own coordination-store ensemble
	// (with its own WAL under DataDir/shard-NN when durable), controller
	// replicas with their own leader election, queue namespaces, and
	// worker pool; a consistent-hash router assigns every transaction to
	// the shard owning its resource roots. Transactions spanning shards
	// are rejected with trerr.ShardCrossShard — each shard is an
	// independent ACID domain. See docs/sharding.md.
	Shards int
	// ShardExecutors optionally assigns one Executor per shard (length
	// must equal the resolved shard count). Nil shares Executor across
	// all shards — the usual deployment, where shards partition the
	// control plane over one device substrate.
	ShardExecutors []Executor
	// CrossShard selects how a sharded platform handles submissions
	// whose resource roots span shards: CrossShardAuto (the zero value)
	// and CrossShardEnabled execute them as atomic two-phase-commit
	// transactions — split into per-shard children coordinated by the
	// lowest-numbered participant shard; CrossShardDisabled restores the
	// synchronous trerr.ShardCrossShard rejection (the single-shard-only
	// ablation). See docs/cross-shard.md.
	CrossShard CrossShardMode
	// XShardPrepareTimeout bounds how long a cross-shard coordinator
	// waits for participant votes before resolving the transaction as
	// aborted (trerr.XShardInDoubtTimeout), and paces re-delivery of
	// decisions to outstanding children. Default 10s.
	XShardPrepareTimeout time.Duration
	// XShardFastPath selects the cross-shard 2PC message flow:
	// XShardFastPathAuto (the zero value) and XShardFastPathEnabled use
	// the coalesced fast path (local-child coalescing, piggybacked
	// decisions, per-peer fan-out batching, deterministic prepare order
	// with wound-wait); XShardFastPathDisabled restores the
	// per-message-round-trip slow path, kept runnable for the ablation
	// benchmarks. See docs/cross-shard.md.
	XShardFastPath XShardFastPathMode
	// IdempotencyTTL bounds how long an unfinished idempotency claim
	// (a submission that crashed between claiming its key and recording
	// its transaction id) survives before the leader's checkpoint sweep
	// reclaims it. Completed claims — those carrying a transaction id —
	// are never swept. 0 selects the default (5m); negative disables the
	// sweep.
	IdempotencyTTL time.Duration
	// CrossShardHook observes coordinator protocol milestones
	// ("prepare_sent", "decided") per shard — chaos-test
	// instrumentation for crashing leaders at exact protocol points.
	// Nil (the default) in production.
	CrossShardHook func(shard int, event, parentID string)
	// FollowerReads serves watermarked reads (Get/List/Wait and the
	// gateway read path) from any store replica that has applied the
	// caller's zxid watermark, instead of forcing every read through
	// the shard leader's commit lock. Session consistency is preserved:
	// a read always observes at least the caller's own writes. False
	// (the default) is the leader-only baseline the read-path ablation
	// measures. See docs/reads.md.
	FollowerReads bool
	// ReadCacheBytes bounds the per-shard watch-invalidated read cache
	// in resident bytes (records and listings served without touching
	// the store, invalidated by the store's own watch machinery rather
	// than TTLs). 0 (the default) disables caching; the fan-out
	// multiplexer behind WatchTxn runs regardless.
	ReadCacheBytes int64
	// MaxInflightPerShard is the queue-depth admission watermark: a
	// submission targeting a shard whose summed pipeline backlog
	// (inputQ + todoQ + phyQ) has reached this bound is shed
	// synchronously with trerr.APIOverloaded (HTTP 429 + Retry-After at
	// the gateway) instead of joining a queue it would only sit in.
	// Sheds are counted in tropic_admission_shed_total. 0 (the default)
	// disables admission control.
	MaxInflightPerShard int
	// Registry receives every exported instrument (see docs/
	// observability.md); the gateway serves it as GET /metrics. Nil
	// creates a private registry, reachable via Platform.Metrics().
	Registry *metrics.Registry
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Platform is a running TROPIC deployment: one shard (the paper's
// deployment) or several independent shards behind a consistent-hash
// router (Config.Shards).
type Platform struct {
	cfg    Config
	units  []*shardUnit
	router *shard.Router // nil when Shards == 1

	// reg is the metrics registry every subsystem exports through;
	// submitLat and shed are the platform-level series it owns directly.
	reg       *metrics.Registry
	submitLat *metrics.HistogramVec
	shed      *metrics.CounterVec

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	started bool
}

// shardUnit is one shard's full pipeline: its own store ensemble,
// controller replicas (with their own leader election), and worker
// pool. Shards share nothing but the process.
type shardUnit struct {
	index int
	ens   *store.Ensemble
	ctrl  []*controller.Controller
	wrk   *worker.Worker

	// rp is the shard's read path (follower reads, watch-invalidated
	// cache, watch fan-out multiplexer) over its own store session
	// rpCli. Every platform client built by Platform.Client shares it.
	rp    *readpath.Shard
	rpCli *store.Client

	// depthCli lazily holds a store session for queue-depth sampling;
	// gauges retain the latest sampled depths.
	depthMu  sync.Mutex
	depthCli *store.Client
	gauges   metrics.QueueGauges

	// admMu guards the shared depth-sample cache: admission checks and
	// metric scrapes both read queue depths, and the cache bounds how
	// often those turn into store reads.
	admMu    sync.Mutex
	admAt    time.Time
	admDepth metrics.QueueDepths
}

// New builds a platform. Call Start to elect a leader and begin serving.
func New(cfg Config) (*Platform, error) {
	if cfg.Schema == nil {
		return nil, errors.New("tropic: Config.Schema is required")
	}
	if cfg.Bootstrap == nil {
		return nil, errors.New("tropic: Config.Bootstrap is required")
	}
	if cfg.Controllers <= 0 {
		cfg.Controllers = 3
	}
	if cfg.WorkerThreads <= 0 {
		cfg.WorkerThreads = 4
	}
	if cfg.StoreReplicas <= 0 {
		cfg.StoreReplicas = 3
	}
	if cfg.Executor == nil {
		cfg.Executor = NoopExecutor{}
	}
	if cfg.BatchMaxOps == 0 {
		cfg.BatchMaxOps = store.DefaultBatchMaxOps
	}
	if cfg.BatchMaxOps < 1 {
		cfg.BatchMaxOps = 1
	}
	if cfg.BatchMaxDelay <= 0 {
		cfg.BatchMaxDelay = store.DefaultBatchMaxDelay
	}
	if cfg.WorkerClaimBatch <= 0 {
		if cfg.BatchMaxOps > 1 {
			cfg.WorkerClaimBatch = 4
		} else {
			cfg.WorkerClaimBatch = 1
		}
	}
	if cfg.Shards < 0 {
		// A negative shard count is always a configuration bug; reject it
		// with a typed error instead of surprising the caller with a
		// silently-resolved single shard (0, the zero value, IS the
		// documented "default to 1").
		return nil, trerr.Newf(trerr.APIBadRequest,
			"tropic: Config.Shards = %d: shard count must be ≥ 1 (0 selects the default of 1)",
			cfg.Shards).With("shards", fmt.Sprint(cfg.Shards))
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.XShardPrepareTimeout <= 0 {
		cfg.XShardPrepareTimeout = controller.DefaultPrepareTimeout
	}
	if cfg.IdempotencyTTL == 0 {
		cfg.IdempotencyTTL = 5 * time.Minute
	}
	if cfg.ShardExecutors != nil && len(cfg.ShardExecutors) != cfg.Shards {
		return nil, fmt.Errorf("tropic: Config.ShardExecutors has %d entries for %d shards",
			len(cfg.ShardExecutors), cfg.Shards)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	p := &Platform{cfg: cfg, reg: cfg.Registry}
	if p.reg == nil {
		p.reg = metrics.NewRegistry()
	}
	if cfg.Shards > 1 {
		p.router = shard.NewRouter(shard.NewMap(cfg.Shards))
	}
	for i := 0; i < cfg.Shards; i++ {
		u, err := p.newShardUnit(i)
		if err != nil {
			p.closeUnits()
			return nil, err
		}
		p.units = append(p.units, u)
	}
	p.registerInstruments()
	return p, nil
}

// registerInstruments resolves the platform-level series and the
// scrape-time collectors lifting per-shard queue depths and durability
// counters into the registry. Called once from New, after the units
// exist.
func (p *Platform) registerInstruments() {
	p.submitLat = p.reg.HistogramVec("tropic_txn_latency_seconds",
		"Submit-to-terminal transaction latency observed by platform clients, by coordinator shard.",
		nil, "shard")
	p.shed = p.reg.CounterVec("tropic_admission_shed_total",
		"Submissions shed by queue-depth admission control (api.overloaded), by target shard.",
		"shard")
	depth := p.reg.GaugeVec("tropic_queue_depth",
		"Pipeline queue depth sampled at scrape time: inputQ and phyQ from the shard's store, todoQ from its leading controller.",
		"shard", "queue")
	fsyncs := p.reg.CounterVec("tropic_store_fsyncs_total",
		"WAL and directory fsyncs performed by the shard's durable store (0 without Config.DataDir).",
		"shard")
	fsyncSec := p.reg.CounterVec("tropic_store_fsync_seconds_total",
		"Cumulative wall time the shard's durable store spent inside fsync calls.",
		"shard")
	walAppends := p.reg.CounterVec("tropic_store_wal_appends_total",
		"Records appended to the shard's write-ahead log.",
		"shard")
	for i := range p.units {
		i := i
		label := fmt.Sprint(i)
		// Pre-create the shed series so a scraper sees 0 from the first
		// scrape (and can rate() it) instead of the family materializing
		// only after the first rejection.
		p.shed.With(label)
		depth.Func(func() float64 { return float64(p.cachedShardDepths(i).InQ) }, label, "inputq")
		depth.Func(func() float64 { return float64(p.cachedShardDepths(i).TodoQ) }, label, "todoq")
		depth.Func(func() float64 { return float64(p.cachedShardDepths(i).PhyQ) }, label, "phyq")
		fsyncs.Func(func() float64 {
			return float64(p.units[i].ens.PersistStats().Fsyncs)
		}, label)
		fsyncSec.Func(func() float64 {
			return float64(p.units[i].ens.PersistStats().FsyncNanos) / 1e9
		}, label)
		walAppends.Func(func() float64 {
			return float64(p.units[i].ens.PersistStats().WALAppends)
		}, label)
	}
}

// Metrics returns the registry holding every exported instrument — the
// document behind the gateway's GET /metrics.
func (p *Platform) Metrics() *metrics.Registry { return p.reg }

// depthSampleTTL bounds how often admission checks and metric scrapes
// re-read queue depths from a shard's store.
const depthSampleTTL = 5 * time.Millisecond

// cachedShardDepths samples shard i's queue depths at most once per
// depthSampleTTL, sharing the store reads between the admission-control
// hot path and scrape-time depth gauges.
func (p *Platform) cachedShardDepths(i int) metrics.QueueDepths {
	u := p.units[i]
	u.admMu.Lock()
	defer u.admMu.Unlock()
	if !u.admAt.IsZero() && time.Since(u.admAt) < depthSampleTTL {
		return u.admDepth
	}
	u.admDepth = p.ShardQueueDepths(i)
	u.admAt = time.Now()
	return u.admDepth
}

// admitShard is the gateway admission check: with a configured
// watermark, a submission bound for a shard whose summed backlog has
// reached it is shed with trerr.APIOverloaded (a Retry-After hint in
// its details) instead of deepening queues it would only wait in.
func (p *Platform) admitShard(i int) error {
	max := p.cfg.MaxInflightPerShard
	if max <= 0 {
		return nil
	}
	d := p.cachedShardDepths(i)
	backlog := d.InQ + d.TodoQ + d.PhyQ
	if backlog < int64(max) {
		return nil
	}
	p.shed.With(fmt.Sprint(i)).Inc()
	return trerr.Newf(trerr.APIOverloaded,
		"tropic: submit: shard %d backlog %d at admission watermark %d; retry after backoff",
		i, backlog, max).
		With("shard", fmt.Sprint(i)).
		With("retry_after", "1")
}

// newShardUnit assembles one shard's ensemble, controllers, and worker.
func (p *Platform) newShardUnit(i int) (*shardUnit, error) {
	cfg := p.cfg
	dataDir := cfg.DataDir
	namePrefix := ""
	if cfg.Shards > 1 {
		// Each shard gets its own WAL/snapshot directory and its own
		// component names, so logs and on-disk state attribute cleanly.
		if dataDir != "" {
			dataDir = filepath.Join(dataDir, fmt.Sprintf("shard-%02d", i))
		}
		namePrefix = fmt.Sprintf("s%d-", i)
	}
	ens, err := store.OpenEnsemble(store.Config{
		Replicas:       cfg.StoreReplicas,
		SessionTimeout: cfg.SessionTimeout,
		CommitLatency:  cfg.CommitLatency,
		DataDir:        dataDir,
		SyncPolicy:     cfg.SyncPolicy,
		SnapshotEvery:  cfg.SnapshotEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("tropic: store (shard %d): %w", i, err)
	}
	u := &shardUnit{index: i, ens: ens}
	var xs *controller.XShardConfig
	if p.router != nil && cfg.CrossShard.enabled() {
		// Cross-shard coordination: each controller can reach every peer
		// shard's store. The connector is called lazily (under
		// leadership), after New has populated p.units.
		shardIdx := i
		xs = &controller.XShardConfig{
			Self:           shardIdx,
			Router:         p.router,
			PrepareTimeout: cfg.XShardPrepareTimeout,
			FastPath:       cfg.XShardFastPath.enabled(),
			Connect: func(j int) *store.Client {
				if j < 0 || j >= len(p.units) {
					return nil
				}
				return p.units[j].ens.Connect()
			},
		}
		if cfg.CrossShardHook != nil {
			hook := cfg.CrossShardHook
			xs.Hook = func(event, parentID string) { hook(shardIdx, event, parentID) }
		}
	}
	for j := 0; j < cfg.Controllers; j++ {
		c, err := controller.New(controller.Config{
			Name:            fmt.Sprintf("%sctrl-%d", namePrefix, j),
			Ensemble:        ens,
			Schema:          cfg.Schema,
			Procedures:      cfg.Procedures,
			Bootstrap:       cfg.Bootstrap,
			CheckpointEvery: cfg.CheckpointEvery,
			RetainTerminal:  cfg.RetainTerminal,
			Reconciler:      cfg.Reconciler,
			Policy:          cfg.Policy,
			BatchMaxOps:     cfg.BatchMaxOps,
			IdempotencyTTL:  cfg.IdempotencyTTL,
			XShard:          xs,
			Registry:        p.reg,
			Shard:           fmt.Sprint(i),
			Logf:            cfg.Logf,
		})
		if err != nil {
			u.close()
			return nil, err
		}
		u.ctrl = append(u.ctrl, c)
	}
	executor := cfg.Executor
	if cfg.ShardExecutors != nil {
		executor = cfg.ShardExecutors[i]
	}
	w, err := worker.New(worker.Config{
		Name:          namePrefix + "worker-0",
		Ensemble:      ens,
		Executor:      executor,
		Threads:       cfg.WorkerThreads,
		ClaimBatch:    cfg.WorkerClaimBatch,
		BatchMaxOps:   cfg.BatchMaxOps,
		BatchMaxDelay: cfg.BatchMaxDelay,
		Registry:      p.reg,
		Shard:         fmt.Sprint(i),
		Logf:          cfg.Logf,
	})
	if err != nil {
		u.close()
		return nil, err
	}
	u.wrk = w
	// The shard's read path: one store session serving follower reads,
	// the watch-invalidated cache, and the watch fan-out multiplexer
	// for every platform client on this shard.
	u.rpCli = ens.Connect()
	u.rp = readpath.New(readpath.Config{
		Client:        u.rpCli,
		FollowerReads: cfg.FollowerReads,
		CacheBytes:    cfg.ReadCacheBytes,
		Registry:      p.reg,
		Shard:         fmt.Sprint(i),
	})
	return u, nil
}

// close releases a unit's components (tolerating partial construction).
func (u *shardUnit) close() error {
	for _, c := range u.ctrl {
		c.Close()
	}
	if u.wrk != nil {
		u.wrk.Close()
	}
	u.depthMu.Lock()
	if u.depthCli != nil {
		u.depthCli.Close()
		u.depthCli = nil
	}
	u.depthMu.Unlock()
	if u.rp != nil {
		u.rp.Close()
	}
	if u.rpCli != nil {
		u.rpCli.Close()
	}
	return u.ens.Close()
}

func (p *Platform) closeUnits() {
	for _, u := range p.units {
		_ = u.close()
	}
}

// Start launches controllers and workers and returns once a leader is
// serving.
func (p *Platform) Start(ctx context.Context) error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return errors.New("tropic: already started")
	}
	p.started = true
	p.mu.Unlock()

	runCtx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	for _, u := range p.units {
		u := u
		for _, c := range u.ctrl {
			c := c
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				if err := c.Run(runCtx); err != nil && !errors.Is(err, context.Canceled) {
					p.cfg.Logf("tropic: controller exited: %v", err)
				}
			}()
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			if err := u.wrk.Run(runCtx); err != nil && !errors.Is(err, context.Canceled) {
				p.cfg.Logf("tropic: worker exited: %v", err)
			}
		}()
	}
	return p.WaitLeader(ctx)
}

// WaitLeader blocks until every shard has a leading controller.
func (p *Platform) WaitLeader(ctx context.Context) error {
	for {
		ready := true
		for i := range p.units {
			if p.ShardLeader(i) == nil {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Leader returns shard 0's currently leading controller, or nil. Use
// ShardLeader for the other shards of a sharded platform.
func (p *Platform) Leader() *controller.Controller { return p.ShardLeader(0) }

// ShardLeader returns the leading controller of shard i, or nil.
func (p *Platform) ShardLeader(i int) *controller.Controller {
	if i < 0 || i >= len(p.units) {
		return nil
	}
	for _, c := range p.units[i].ctrl {
		if c.Leading() {
			return c
		}
	}
	return nil
}

// KillLeader crashes shard 0's current leader (no graceful cleanup —
// its election node lingers until the store's session timeout, as for
// a real machine failure). Returns the killed controller's name, or ""
// when no leader is up.
func (p *Platform) KillLeader() string { return p.KillShardLeader(0) }

// KillShardLeader crashes shard i's current leader; the shard's
// followers take over after failure detection while every other shard
// keeps serving undisturbed. Returns the killed controller's name, or
// "" when the shard has no leader up.
func (p *Platform) KillShardLeader(i int) string {
	c := p.ShardLeader(i)
	if c == nil {
		return ""
	}
	name := c.Name()
	c.Kill()
	return name
}

// Stop shuts the platform down: every shard's controllers, workers,
// then its store. The returned error reports the first failed final WAL
// flush (only possible with Config.DataDir); the shutdown itself always
// completes on every shard.
func (p *Platform) Stop() error {
	if p.cancel != nil {
		p.cancel()
	}
	p.wg.Wait()
	var firstErr error
	for _, u := range p.units {
		if err := u.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// PipelineInfo is the batching configuration in effect, surfaced through
// GET /v1/stats so operators can correlate throughput with the knobs.
type PipelineInfo struct {
	BatchMaxOps      int     `json:"batchMaxOps"`
	BatchMaxDelayMs  float64 `json:"batchMaxDelayMs"`
	WorkerClaimBatch int     `json:"workerClaimBatch"`
	WorkerThreads    int     `json:"workerThreads"`
	// Shards is the number of independent shard pipelines (1 =
	// unsharded); the per-pipeline knobs above apply to each shard.
	Shards int `json:"shards"`
	// CrossShard reports whether submissions spanning shards execute as
	// two-phase-commit transactions (false: rejected, the ablation).
	CrossShard bool `json:"crossShard"`
	// XShardFastPath reports whether the coalesced cross-shard message
	// flow is active (false: per-message round trips, the slow-path
	// ablation). Meaningful only when CrossShard is true.
	XShardFastPath bool `json:"xshardFastPath"`
	// FollowerReads reports whether watermarked reads may be served
	// from follower replicas (false: every read goes to the leader, the
	// read-path ablation).
	FollowerReads bool `json:"followerReads"`
	// ReadCacheBytes is the per-shard watch-invalidated read cache
	// budget (0: caching disabled).
	ReadCacheBytes int64 `json:"readCacheBytes"`
}

// PipelineInfo reports the resolved batching configuration.
func (p *Platform) PipelineInfo() PipelineInfo {
	return PipelineInfo{
		BatchMaxOps:      p.cfg.BatchMaxOps,
		BatchMaxDelayMs:  float64(p.cfg.BatchMaxDelay) / float64(time.Millisecond),
		WorkerClaimBatch: p.cfg.WorkerClaimBatch,
		WorkerThreads:    p.cfg.WorkerThreads,
		Shards:           p.cfg.Shards,
		CrossShard:       p.cfg.Shards > 1 && p.cfg.CrossShard.enabled(),
		XShardFastPath:   p.cfg.Shards > 1 && p.cfg.CrossShard.enabled() && p.cfg.XShardFastPath.enabled(),
		FollowerReads:    p.cfg.FollowerReads,
		ReadCacheBytes:   p.cfg.ReadCacheBytes,
	}
}

// QueueDepths samples the depths of the three pipeline queues, summed
// across every shard: inputQ and phyQ are counted live from each
// shard's store, todoQ from each shard's leading controller gauge (0
// while no leader is up). The canonical back-pressure signal: a growing
// inQ means the controllers are the bottleneck, a growing phyQ means
// the workers are.
func (p *Platform) QueueDepths() metrics.QueueDepths {
	var total metrics.QueueDepths
	for i := range p.units {
		d := p.ShardQueueDepths(i)
		total.InQ += d.InQ
		total.TodoQ += d.TodoQ
		total.PhyQ += d.PhyQ
	}
	return total
}

// ShardQueueDepths samples shard i's pipeline queue depths.
func (p *Platform) ShardQueueDepths(i int) metrics.QueueDepths {
	u := p.units[i]
	u.depthMu.Lock()
	defer u.depthMu.Unlock()
	if u.depthCli == nil {
		u.depthCli = u.ens.Connect()
	}
	count := func(path string) int64 {
		names, err := u.depthCli.Children(path)
		if err != nil {
			return 0
		}
		var n int64
		for _, name := range names {
			if strings.HasPrefix(name, queue.ItemPrefix) {
				n++
			}
		}
		return n
	}
	u.gauges.InQ.Set(count(proto.InputQPath))
	u.gauges.PhyQ.Set(count(proto.PhyQPath))
	if l := p.ShardLeader(i); l != nil {
		u.gauges.TodoQ.Set(l.TodoDepth())
	}
	return u.gauges.Snapshot()
}

// ReadStats reports each shard's read-path counters (cache hits,
// misses, invalidations, evictions, serving-source mix, fan-out
// subscriber and hub counts), indexed by shard. Surfaced through GET
// /v1/stats.
func (p *Platform) ReadStats() []readpath.Stats {
	out := make([]readpath.Stats, len(p.units))
	for i, u := range p.units {
		out[i] = u.rp.Stats()
	}
	return out
}

// ShardReadPath exposes shard i's read path, for tests.
func (p *Platform) ShardReadPath(i int) *readpath.Shard { return p.units[i].rp }

// NumShards returns the number of shards (1 when unsharded).
func (p *Platform) NumShards() int { return len(p.units) }

// ShardOf resolves which shard a submission with these arguments would
// route to. Unsharded platforms always answer 0; sharded platforms
// report trerr.ShardCrossShard for argument sets spanning shards. Used
// by workload generators and tests to build shard-local work.
func (p *Platform) ShardOf(proc string, args ...string) (int, error) {
	if p.router == nil {
		return 0, nil
	}
	return p.router.Route(proc, args)
}

// Ensemble exposes shard 0's coordination store for fault-injection in
// tests and benchmarks. Use ShardEnsemble for the other shards.
func (p *Platform) Ensemble() *store.Ensemble { return p.units[0].ens }

// ShardEnsemble exposes shard i's coordination store.
func (p *Platform) ShardEnsemble(i int) *store.Ensemble { return p.units[i].ens }

// Controllers exposes every controller replica across all shards (for
// HA experiments and stats).
func (p *Platform) Controllers() []*controller.Controller {
	var out []*controller.Controller
	for _, u := range p.units {
		out = append(out, u.ctrl...)
	}
	return out
}

// ShardControllers exposes shard i's controller replicas.
func (p *Platform) ShardControllers(i int) []*controller.Controller { return p.units[i].ctrl }

// Worker exposes shard 0's physical worker. Use ShardWorker for the
// other shards, or WorkerStats for the platform-wide aggregate.
func (p *Platform) Worker() *worker.Worker { return p.units[0].wrk }

// ShardWorker exposes shard i's physical worker.
func (p *Platform) ShardWorker(i int) *worker.Worker { return p.units[i].wrk }

// WorkerStats sums worker activity across every shard.
func (p *Platform) WorkerStats() worker.Stats {
	var total worker.Stats
	for _, u := range p.units {
		s := u.wrk.Stats()
		total.Committed += s.Committed
		total.Aborted += s.Aborted
		total.Failed += s.Failed
		total.Actions += s.Actions
		total.Undos += s.Undos
	}
	return total
}

// ControllerStats sums stats across all controller replicas of every
// shard.
func (p *Platform) ControllerStats() controller.Stats {
	var total controller.Stats
	for _, c := range p.Controllers() {
		s := c.Stats()
		total.Accepted += s.Accepted
		total.Committed += s.Committed
		total.Aborted += s.Aborted
		total.Failed += s.Failed
		total.Deferrals += s.Deferrals
		total.Violations += s.Violations
		total.BusyNanos += s.BusyNanos
		total.ConstraintNanos += s.ConstraintNanos
		total.RollbackNanos += s.RollbackNanos
		total.Rollbacks += s.Rollbacks
		total.InBatches += s.InBatches
		total.InBatchItems += s.InBatchItems
		total.Flushes += s.Flushes
		total.FlushedOps += s.FlushedOps
		total.FlushNanos += s.FlushNanos
		if s.MaxInBatch > total.MaxInBatch {
			total.MaxInBatch = s.MaxInBatch
		}
		if s.MaxFlushOps > total.MaxFlushOps {
			total.MaxFlushOps = s.MaxFlushOps
		}
	}
	return total
}

// Client opens a new client session against the platform. On a sharded
// platform the client holds one store session per shard and routes
// every call by resource root (submissions) or id prefix (lookups).
func (p *Platform) Client() *Client {
	connect := func(u *shardUnit) *Client {
		cli := u.ens.Connect()
		label := fmt.Sprint(u.index)
		groupOps := p.reg.HistogramVec("tropic_store_group_commit_ops",
			"Operations carried by one store group commit, by submitting component.",
			metrics.DefSizeBuckets, "shard", "source").With(label, "submit")
		groupLat := p.reg.HistogramVec("tropic_store_group_commit_seconds",
			"Wall time of one store group commit, by submitting component.",
			nil, "shard", "source").With(label, "submit")
		// The submit path's coalescing obeys the same knobs as the rest
		// of the pipeline.
		cli.ConfigureBatcher(store.BatcherConfig{
			MaxOps:   p.cfg.BatchMaxOps,
			MaxDelay: p.cfg.BatchMaxDelay,
			OnFlush: func(ops int, d time.Duration) {
				groupOps.Observe(float64(ops))
				groupLat.ObserveDuration(d)
			},
		})
		shardIdx := u.index
		return &Client{
			cli:     cli,
			procs:   p.cfg.Procedures,
			batched: p.cfg.BatchMaxOps > 1,
			rp:      u.rp,
			admit:   func() error { return p.admitShard(shardIdx) },
			lat:     p.submitLat.With(label),
		}
	}
	if p.router == nil {
		return connect(p.units[0])
	}
	c := &Client{
		router:     p.router,
		procs:      p.cfg.Procedures,
		planner:    shard.NewPlanner(p.router.Map()),
		crossShard: p.cfg.CrossShard.enabled(),
	}
	for _, u := range p.units {
		c.subs = append(c.subs, connect(u))
	}
	return c
}

// Client submits transactional orchestrations and tracks their outcome,
// playing the role of the API service gateway in Figure 1.
type Client struct {
	cli *store.Client
	// procs is the platform's procedure registry, used to reject
	// unknown procedures synchronously at submit time (nil skips the
	// check, for clients constructed without a registry).
	procs map[string]Procedure
	// batched routes submissions through the store client's group-commit
	// batcher, so concurrent submitters sharing this Client coalesce
	// their record and notice creations into shared proposal rounds.
	// Set from the platform's BatchMaxOps; false preserves the per-item
	// submission path.
	batched bool
	// seq numbers this client's batched submissions (their record ids
	// are client-generated rather than sequence-allocated, so record and
	// notice can ride one atomic commit).
	seq atomic.Int64

	// router and subs make this a sharded client: router derives the
	// owning shard of every call and subs holds one single-shard client
	// per shard. cli is nil in this mode; ids returned to callers are
	// shard-qualified ("s<shard>-<local id>").
	router *shard.Router
	subs   []*Client
	// planner splits cross-shard submissions into per-shard children;
	// crossShard gates whether such submissions execute (two-phase
	// commit) or reject (trerr.ShardCrossShard, the ablation).
	planner    *shard.Planner
	crossShard bool

	// rp, when non-nil, is the shard's read path: Get/Wait/List and the
	// watch surface serve through it (cache hit, follower replica, or
	// leader fall-through) instead of issuing leader reads on cli, and
	// WatchTxn/Wait subscribe to its fan-out multiplexer instead of
	// arming per-call store watches. Owned by the platform's shard unit
	// and shared by every client on the shard; nil on clients built
	// outside Platform.Client.
	rp *readpath.Shard

	// admit, when non-nil, is the platform's admission-control check for
	// this client's shard, consulted before a submission writes anything
	// (nil on clients built outside Platform.Client, e.g. in tests).
	admit func() error
	// lat, when non-nil, observes submit-to-terminal latency for every
	// terminal record this client's Wait returns.
	lat *metrics.BucketHistogram
}

// admitted runs the shard's admission check, if the client has one.
func (c *Client) admitted() error {
	if c.admit == nil {
		return nil
	}
	return c.admit()
}

// sharded reports whether this client fans out over shard sub-clients.
func (c *Client) sharded() bool { return c.router != nil }

// resolveID splits a shard-qualified id into its owning sub-client and
// shard-local id. Ids without a well-formed shard prefix cannot name
// any transaction on a sharded platform and are reported as
// trerr.TxnNotFound.
func (c *Client) resolveID(id string) (*Client, int, string, error) {
	s, local, ok := shard.ParseID(id, len(c.subs))
	if !ok {
		return nil, 0, "", trerr.Newf(trerr.TxnNotFound,
			"tropic: transaction %q not found (sharded ids carry an s<shard>- prefix)", id).With("id", id)
	}
	return c.subs[s], s, local, nil
}

// locate resolves ANY transaction id to its owning sub-client, the id
// to use against it, and how to re-qualify returned record ids. A plain
// id routes by its "s<shard>-" prefix and is re-qualified on the way
// out; a cross-shard CHILD id ("<parent>.c<k>") routes via the parent's
// ledger — its record lives on the participant shard under the full
// child id, which is already platform-unique and passes through
// unchanged.
func (c *Client) locate(id string) (sub *Client, local string, qualify func(string) string, err error) {
	if parentID, k, ok := shard.ParseChildID(id); ok {
		psub, _, plocal, err := c.resolveID(parentID)
		if err != nil {
			return nil, "", nil, err
		}
		prec, err := psub.Get(plocal)
		if err != nil {
			return nil, "", nil, err
		}
		if k >= len(prec.Children) || prec.Children[k].Shard < 0 || prec.Children[k].Shard >= len(c.subs) {
			return nil, "", nil, trerr.Newf(trerr.TxnNotFound,
				"tropic: transaction %s has no child %d", parentID, k).With("id", id)
		}
		return c.subs[prec.Children[k].Shard], id, func(local string) string { return local }, nil
	}
	sub, s, local, err := c.resolveID(id)
	if err != nil {
		return nil, "", nil, err
	}
	return sub, local, func(local string) string { return shard.FormatID(s, local) }, nil
}

// refreshChildren overlays a parent record's ledger with each child's
// live state, so Get/Wait callers see cross-shard progress without
// waiting for the coordinator's next ledger write. Best-effort: a child
// read failure leaves the coordinator's last known entry.
func (c *Client) refreshChildren(rec *Txn) {
	for k := range rec.Children {
		ref := &rec.Children[k]
		if ref.State.Terminal() || ref.Shard < 0 || ref.Shard >= len(c.subs) {
			continue
		}
		child, err := c.subs[ref.Shard].Get(ref.ID)
		if err != nil {
			continue
		}
		ref.State, ref.Error, ref.Code = child.State, child.Error, child.Code
	}
}

// Close releases the client's store session(s).
func (c *Client) Close() {
	if c.sharded() {
		for _, sub := range c.subs {
			sub.Close()
		}
		return
	}
	c.cli.Close()
}

// ValidateProc rejects submissions that could never execute: an empty
// procedure name (submit.invalid_args) or one missing from the registry
// (txn.unknown_procedure).
func (c *Client) ValidateProc(proc string) error {
	if proc == "" {
		return trerr.New(trerr.SubmitInvalidArgs, "tropic: submit: empty procedure name")
	}
	if c.procs != nil {
		if _, ok := c.procs[proc]; !ok {
			return trerr.Newf(trerr.TxnUnknownProcedure,
				"tropic: submit: unknown stored procedure %q", proc).With("proc", proc)
		}
	}
	return nil
}

// Submit initiates a transaction (Figure 2, ①) and returns its id. The
// procedure name is validated against the registry, so an unknown
// procedure is rejected here instead of producing a transaction doomed
// to abort asynchronously.
func (c *Client) Submit(proc string, args ...string) (string, error) {
	if err := c.ValidateProc(proc); err != nil {
		return "", err
	}
	if c.sharded() {
		// Route by the submission's resource roots. A single-shard plan
		// submits to its owner; a spanning plan either executes as an
		// atomic cross-shard transaction (the default) or, with
		// Config.CrossShard disabled, is rejected here
		// (trerr.ShardCrossShard) — the single-shard-only ablation.
		split := c.planner.Split(proc, args)
		if !split.CrossShard() {
			s := split.Coordinator()
			id, err := c.subs[s].Submit(proc, args...)
			if err != nil {
				return "", err
			}
			return shard.FormatID(s, id), nil
		}
		if !c.crossShard {
			return "", c.rejectCrossShard(proc, args)
		}
		// Every participant shard must admit the work: a parent whose
		// children would land in saturated pipelines is shed whole —
		// 2PC holds cross-shard locks for the slowest participant, so
		// overload on any member shard is overload for the transaction.
		for _, s := range split.Shards {
			if err := c.subs[s].admitted(); err != nil {
				return "", err
			}
		}
		return c.xSubmit(split, proc, args)
	}
	if err := c.admitted(); err != nil {
		return "", err
	}
	now := time.Now()
	rec := &txn.Txn{
		Proc:        proc,
		Args:        args,
		State:       txn.StateInitialized,
		SubmittedAt: now,
		History:     []txn.StateStamp{{State: txn.StateInitialized, At: now}},
	}
	if c.batched {
		// Group-committed submission: record and notice ride ONE atomic
		// batch (no orphaned records), coalesced with every concurrent
		// submitter on this client into shared proposal rounds. The
		// record id is client-generated — session id plus a local
		// counter, unique ensemble-wide — because a sequence-allocated
		// name would only be known after a first, separate commit.
		id := fmt.Sprintf("t-s%xc%08d", c.cli.SessionID(), c.seq.Add(1))
		path := proto.TxnsPath + "/" + id
		err := <-c.cli.MultiAsync(
			store.CreateOp(path, rec.Encode(), 0),
			store.CreateOp(proto.InputQPath+"/item-",
				proto.InputMsg{Kind: proto.KindSubmit, TxnPath: path}.Encode(), store.FlagSequence),
		)
		if err != nil {
			return "", fmt.Errorf("tropic: submit: %w", err)
		}
		return id, nil
	}
	path, err := c.cli.Create(proto.TxnPrefix, rec.Encode(), store.FlagSequence)
	if err != nil {
		return "", fmt.Errorf("tropic: submit: %w", err)
	}
	_, err = c.cli.Create(proto.InputQPath+"/item-",
		proto.InputMsg{Kind: proto.KindSubmit, TxnPath: path}.Encode(), store.FlagSequence)
	if err != nil {
		return "", fmt.Errorf("tropic: submit enqueue: %w", err)
	}
	return idFromPath(path), nil
}

// rejectCrossShard builds the ablation rejection for a spanning
// submission (Config.CrossShard disabled), preferring Route's detailed
// error — it names the conflicting roots and shards.
func (c *Client) rejectCrossShard(proc string, args []string) error {
	if _, err := c.router.Route(proc, args); err != nil {
		return err
	}
	// Unreachable while Route and Split agree on what spans shards.
	return trerr.New(trerr.ShardCrossShard,
		"tropic: submit: transaction spans shards and cross-shard execution is disabled")
}

// xSubmit initiates a cross-shard transaction: one PARENT record on the
// coordinator shard (a deterministic hash of the submission over the
// participants, balancing coordination load) naming one child per
// participant shard, created atomically with its submit notice. The coordinator's lead controller drives the two-phase commit
// from there; the returned parent id supports Get/Wait/WatchTxn like
// any other. The parent id is client-generated (session id + local
// counter, a distinct "t-x" prefix) so the deterministic child ids can
// be derived before anything is written.
func (c *Client) xSubmit(split shard.Split, proc string, args []string) (string, error) {
	coord := split.CoordinatorFor(proc, args)
	sub := c.subs[coord]
	local := fmt.Sprintf("%s%xc%08d", shard.ParentLocalPrefix, sub.cli.SessionID(), sub.seq.Add(1))
	qualified := shard.FormatID(coord, local)
	children := make([]txn.ChildRef, len(split.Shards))
	for k, s := range split.Shards {
		children[k] = txn.ChildRef{ID: shard.ChildID(qualified, k), Shard: s}
	}
	now := time.Now()
	rec := &txn.Txn{
		Proc:        proc,
		Args:        args,
		State:       txn.StateInitialized,
		SubmittedAt: now,
		History:     []txn.StateStamp{{State: txn.StateInitialized, At: now}},
		Children:    children,
	}
	path := proto.TxnsPath + "/" + local
	// Asynchronous through the session batcher (like batched single-shard
	// submits): concurrent cross-shard submitters coalesce into shared
	// proposal rounds instead of each paying a private commit.
	err := <-sub.cli.MultiAsync(
		store.CreateOp(path, rec.Encode(), 0),
		store.CreateOp(proto.InputQPath+"/item-",
			proto.InputMsg{Kind: proto.KindSubmit, TxnPath: path}.Encode(), store.FlagSequence),
	)
	if err != nil {
		return "", fmt.Errorf("tropic: submit cross-shard: %w", err)
	}
	return qualified, nil
}

// Watermark returns the highest store zxid this client's own writes
// have committed at (the maximum across shards on a sharded client).
// A caller that threads this value into GetAt/WaitAt/ListAt — or sends
// it as the X-Tropic-Zxid header over HTTP — is guaranteed to observe
// all of its own writes no matter which replica serves the read.
func (c *Client) Watermark() int64 {
	if c.sharded() {
		var max int64
		for _, sub := range c.subs {
			if z := sub.cli.LastWriteZxid(); z > max {
				max = z
			}
		}
		return max
	}
	return c.cli.LastWriteZxid()
}

// Get fetches the current record of a transaction. An unknown id is
// reported as trerr.TxnNotFound. The read is served through the shard's
// read path under the client's own write watermark, so it always
// observes this client's completed submissions (session consistency)
// while bypassing the leader whenever a caught-up replica or cache
// entry can answer.
func (c *Client) Get(id string) (*Txn, error) {
	if c.sharded() {
		// Each sub-client applies its own shard's watermark, which is
		// tighter than the cross-shard maximum.
		rec, _, err := c.GetAt(id, -1)
		return rec, err
	}
	rec, _, err := c.GetAt(id, c.cli.LastWriteZxid())
	return rec, err
}

// GetAt is Get with an explicit zxid watermark: the read is served from
// any source (cache, follower replica, leader) whose state has applied
// at least minZxid. It returns the zxid the read was actually served at
// (0 when the shard has no read path), which callers chain into
// follow-up reads for monotonicity. Passing minZxid < 0 substitutes the
// serving shard's own client watermark.
func (c *Client) GetAt(id string, minZxid int64) (*Txn, int64, error) {
	if id == "" {
		return nil, 0, trerr.New(trerr.APIBadRequest, "tropic: get: missing transaction id")
	}
	if c.sharded() {
		sub, local, qualify, err := c.locate(id)
		if err != nil {
			return nil, 0, err
		}
		rec, z, err := sub.GetAt(local, minZxid)
		if err != nil {
			return nil, 0, err
		}
		rec.ID = qualify(rec.ID)
		if rec.IsParent() {
			c.refreshChildren(rec)
		}
		return rec, z, nil
	}
	if minZxid < 0 {
		minZxid = c.cli.LastWriteZxid()
	}
	data, z, err := c.readRecord(proto.TxnsPath+"/"+id, minZxid)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return nil, z, trerr.Wrap(trerr.TxnNotFound, err,
				fmt.Sprintf("transaction %s not found", id)).With("id", id)
		}
		return nil, 0, err
	}
	rec, err := txn.Decode(data)
	if err != nil {
		return nil, 0, err
	}
	rec.ID = id
	return rec, z, nil
}

// readRecord reads one record node through the shard's read path when
// the platform has one, falling back to a plain leader read.
func (c *Client) readRecord(path string, minZxid int64) ([]byte, int64, error) {
	if c.rp != nil {
		data, _, z, _, err := c.rp.GetRecord(path, minZxid)
		return data, z, err
	}
	data, _, err := c.cli.Get(path)
	return data, 0, err
}

// Wait blocks until the transaction reaches a terminal state and
// returns its final record. An unknown id is reported as
// trerr.TxnNotFound; an elapsed deadline as trerr.TxnWaitTimeout (with
// context.DeadlineExceeded still in the chain).
func (c *Client) Wait(ctx context.Context, id string) (*Txn, error) {
	rec, _, err := c.WaitAt(ctx, id, -1)
	return rec, err
}

// WaitAt is Wait with an explicit zxid watermark (see GetAt; minZxid <
// 0 substitutes the serving shard's own client watermark). On a
// platform with a read path the wait subscribes to the shard's fan-out
// multiplexer — one shared store watch per record, however many
// concurrent waiters — and each wakeup re-reads through the cache.
func (c *Client) WaitAt(ctx context.Context, id string, minZxid int64) (*Txn, int64, error) {
	if c.sharded() {
		sub, local, qualify, err := c.locate(id)
		if err != nil {
			return nil, 0, err
		}
		rec, z, err := sub.WaitAt(ctx, local, minZxid)
		if err != nil {
			return nil, 0, err
		}
		rec.ID = qualify(rec.ID)
		if rec.IsParent() {
			c.refreshChildren(rec)
		}
		return rec, z, nil
	}
	if c.rp == nil {
		rec, err := c.waitLegacy(ctx, id)
		return rec, 0, err
	}
	path := proto.TxnsPath + "/" + id
	sub, err := c.rp.Subscribe(path)
	if err != nil {
		return nil, 0, err
	}
	defer sub.Close()
	rec, z, err := c.GetAt(id, minZxid)
	for {
		if err != nil {
			return nil, 0, err
		}
		if rec.State.Terminal() {
			if c.lat != nil {
				c.lat.ObserveDuration(rec.Latency())
			}
			return rec, z, nil
		}
		select {
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, 0, trerr.Wrap(trerr.TxnWaitTimeout, ctx.Err(),
					fmt.Sprintf("tropic: wait %s: deadline elapsed before a terminal state", id)).With("id", id)
			}
			return nil, 0, ctx.Err()
		case _, ok := <-sub.C():
			if !ok {
				return nil, 0, store.ErrSessionExpired
			}
		}
		// Re-read PAST the position just served: the wakeup proves the
		// record changed after zxid z, and a still-cached entry at
		// exactly z would otherwise satisfy the watermark and stall the
		// loop on the state the event superseded.
		rec, z, err = c.GetAt(id, z+1)
	}
}

// waitLegacy is the read-path-less wait: one armed store watch per
// check round against the leader tree.
func (c *Client) waitLegacy(ctx context.Context, id string) (*Txn, error) {
	path := proto.TxnsPath + "/" + id
	for {
		watch, err := c.cli.WatchNode(path)
		if err != nil {
			return nil, err
		}
		rec, err := c.Get(id)
		if err != nil {
			c.cli.Unwatch(path, watch)
			return nil, err
		}
		if rec.State.Terminal() {
			// Terminal records never change again: release the armed
			// watch instead of leaking it for the session's lifetime.
			c.cli.Unwatch(path, watch)
			if c.lat != nil {
				c.lat.ObserveDuration(rec.Latency())
			}
			return rec, nil
		}
		select {
		case <-ctx.Done():
			c.cli.Unwatch(path, watch)
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, trerr.Wrap(trerr.TxnWaitTimeout, ctx.Err(),
					fmt.Sprintf("tropic: wait %s: deadline elapsed before a terminal state", id)).With("id", id)
			}
			return nil, ctx.Err()
		case ev := <-watch:
			if ev.Type == store.EventSessionExpired {
				return nil, store.ErrSessionExpired
			}
		}
	}
}

// SubmitAndWait submits and waits for the outcome.
func (c *Client) SubmitAndWait(ctx context.Context, proc string, args ...string) (*Txn, error) {
	id, err := c.Submit(proc, args...)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, id)
}

// Reload asks the lead controller to synchronize the logical layer from
// the physical state of the target subtree and waits for the outcome
// (§4). Intended for device additions and decommissionings.
func (c *Client) Reload(ctx context.Context, target string) error {
	return c.reconcileRequest(ctx, proto.KindReload, target)
}

// Repair asks the lead controller to drive the physical state of the
// target subtree back to the logical state and waits for the outcome
// (§4). TROPIC invokes this periodically at an operator-chosen
// frequency.
func (c *Client) Repair(ctx context.Context, target string) error {
	return c.reconcileRequest(ctx, proto.KindRepair, target)
}

func (c *Client) reconcileRequest(ctx context.Context, kind proto.MsgKind, target string) error {
	if c.sharded() {
		// Reconciliation is a per-shard operation: the target subtree's
		// resource root names the shard whose logical layer must
		// resynchronize.
		return c.subs[c.router.RouteTarget(target)].reconcileRequest(ctx, kind, target)
	}
	if err := c.cli.EnsurePath(proto.RepliesPath); err != nil {
		return err
	}
	replyPath, err := c.cli.Create(proto.RepliesPath+"/r-", nil, store.FlagSequence)
	if err != nil {
		return err
	}
	defer func() { _ = c.cli.Delete(replyPath, -1) }()
	watch, err := c.cli.WatchNode(replyPath)
	if err != nil {
		return err
	}
	_, err = c.cli.Create(proto.InputQPath+"/item-",
		proto.InputMsg{Kind: kind, Target: target, Reply: replyPath}.Encode(), store.FlagSequence)
	if err != nil {
		c.cli.Unwatch(replyPath, watch)
		return err
	}
	select {
	case <-ctx.Done():
		c.cli.Unwatch(replyPath, watch)
		return ctx.Err()
	case ev := <-watch:
		if ev.Type == store.EventSessionExpired {
			return store.ErrSessionExpired
		}
	}
	data, _, err := c.cli.Get(replyPath)
	if err != nil {
		return err
	}
	reply, err := proto.DecodeReply(data)
	if err != nil {
		return err
	}
	if !reply.OK {
		code := trerr.Code(reply.Code)
		if !code.Valid() {
			code = trerr.ReconcileConflict
		}
		return trerr.New(code,
			fmt.Sprintf("tropic: %s %s: %s", kind, target, reply.Error)).With("target", target)
	}
	return nil
}

// Signal sends a TERM or KILL to a transaction (§4). The signal value
// and the transaction's existence are validated synchronously
// (trerr.TxnInvalidSignal / trerr.TxnNotFound).
func (c *Client) Signal(id string, sig txn.Signal) error {
	if sig != txn.SignalTerm && sig != txn.SignalKill {
		return trerr.Newf(trerr.TxnInvalidSignal,
			"tropic: signal %q: signal must be TERM or KILL", sig)
	}
	if c.sharded() {
		sub, local, _, err := c.locate(id)
		if err != nil {
			return err
		}
		if shard.IsParentLocal(local) {
			// Parents are pure coordination records — there is no
			// simulation or physical execution to stop; the 2PC decision
			// resolves them. Recognized by the id prefix alone, so the
			// common signal path pays no extra record read.
			return trerr.Newf(trerr.TxnInvalidSignal,
				"tropic: signal %s: cross-shard parents cannot be signalled; signal a child", id).With("id", id)
		}
		return sub.Signal(local, sig)
	}
	rec, err := c.Get(id)
	if err != nil {
		return err
	}
	if rec.IsChild() && (rec.State == txn.StatePrepared || rec.State == txn.StateStarted) {
		// A prepared child voted yes and a started one is past the COMMIT
		// decision: two-phase commit forbids either from aborting
		// unilaterally — one participant rolling back while its siblings
		// commit would silently break the transaction's atomicity.
		// Signals reach cross-shard work only before the vote (the whole
		// transaction then aborts everywhere).
		return trerr.Newf(trerr.TxnInvalidSignal,
			"tropic: signal %s: cross-shard child is %s and cannot abort unilaterally", id, rec.State).With("id", id)
	}
	_, err = c.cli.Create(proto.InputQPath+"/item-",
		proto.InputMsg{
			Kind:    proto.KindSignal,
			TxnPath: proto.TxnsPath + "/" + id,
			Signal:  string(sig),
		}.Encode(), store.FlagSequence)
	return err
}

func idFromPath(path string) string {
	return path[strings.LastIndexByte(path, '/')+1:]
}
