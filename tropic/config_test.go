package tropic_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/store"
	"repro/tcloud"
	"repro/tropic"
)

func TestNewRequiresSchemaAndBootstrap(t *testing.T) {
	if _, err := tropic.New(tropic.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := tropic.New(tropic.Config{Schema: tcloud.NewSchema()}); err == nil {
		t.Fatal("config without bootstrap accepted")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	p, err := tropic.New(tropic.Config{
		Schema:    tcloud.NewSchema(),
		Bootstrap: tcloud.Topology{ComputeHosts: 1}.BuildModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Start(ctx); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestClientGetMissingTxn(t *testing.T) {
	p, _ := newTCloud(t, tcloud.Topology{ComputeHosts: 1})
	c := p.Client()
	defer c.Close()
	if _, err := c.Get("t-9999999999"); !errors.Is(err, store.ErrNoNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestReconcileWithoutReconciler(t *testing.T) {
	p, err := tropic.New(tropic.Config{
		Schema:     tcloud.NewSchema(),
		Procedures: tcloud.Procedures(),
		Bootstrap:  tcloud.Topology{ComputeHosts: 1}.BuildModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	c := p.Client()
	defer c.Close()
	err = c.Repair(ctx, "/vmRoot")
	if err == nil {
		t.Fatal("repair without reconciler succeeded")
	}
}

func TestQuorumLossBlocksTransactions(t *testing.T) {
	p, _ := newTCloud(t, tcloud.Topology{ComputeHosts: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := p.Client()
	defer c.Close()

	// Healthy first.
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawn: %v %v", rec, err)
	}
	// Kill two of three store replicas: submissions must fail fast with
	// ErrNoQuorum rather than hang.
	p.Ensemble().StopReplica(1)
	p.Ensemble().StopReplica(2)
	if _, err := c.Submit(tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm2", "1024"); !errors.Is(err, store.ErrNoQuorum) {
		t.Fatalf("submit without quorum: %v", err)
	}
	// Quorum restored: service resumes.
	p.Ensemble().StartReplica(1)
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm3", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawn after quorum restore: %v %v", rec, err)
	}
}
