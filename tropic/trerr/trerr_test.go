package trerr

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
)

func TestCodeValid(t *testing.T) {
	valid := []Code{"txn.not_found", "api.bad_request", "store.no_quorum", "a.b_2"}
	for _, c := range valid {
		if !c.Valid() {
			t.Errorf("%q should be valid", c)
		}
	}
	invalid := []Code{"", "txn", ".name", "txn.", "Txn.NotFound", "txn-not.found",
		"txn.not.found", "txn.not found", "api.rate-limit"}
	for _, c := range invalid {
		if c.Valid() {
			t.Errorf("%q should be invalid", c)
		}
	}
}

func TestRegistryAllValid(t *testing.T) {
	if len(registry) < 20 {
		t.Fatalf("registry has %d codes, expected the full taxonomy", len(registry))
	}
	for c, info := range registry {
		if !c.Valid() {
			t.Errorf("registered code %q is malformed", c)
		}
		if info.Status < 400 || info.Status > 599 {
			t.Errorf("code %q: status %d", c, info.Status)
		}
		if info.Doc == "" {
			t.Errorf("code %q: missing doc", c)
		}
	}
}

func TestErrorsIsMatching(t *testing.T) {
	err := New(TxnNotFound, "no transaction t-42")
	if !errors.Is(err, TxnNotFound) {
		t.Fatal("Is(err, TxnNotFound) = false")
	}
	if errors.Is(err, TxnUnknownProcedure) {
		t.Fatal("Is matched the wrong code")
	}
	// Matching survives fmt.Errorf wrapping.
	wrapped := fmt.Errorf("gateway: %w", err)
	if !errors.Is(wrapped, TxnNotFound) {
		t.Fatal("Is through fmt.Errorf chain = false")
	}
	// Two independent *Error values with the same code match.
	if !errors.Is(err, New(TxnNotFound, "other message")) {
		t.Fatal("two *Error with same code should match")
	}
}

func TestWrapAndCodeOf(t *testing.T) {
	cause := errors.New("store: node does not exist")
	err := Wrap(TxnNotFound, cause, "transaction t-7 not found")
	if !errors.Is(err, cause) {
		t.Fatal("Wrap lost the cause")
	}
	if got := CodeOf(err); got != TxnNotFound {
		t.Fatalf("CodeOf = %q", got)
	}
	if got := CodeOf(fmt.Errorf("outer: %w", err)); got != TxnNotFound {
		t.Fatalf("CodeOf through chain = %q", got)
	}
	if got := CodeOf(errors.New("plain")); got != "" {
		t.Fatalf("CodeOf(plain) = %q", got)
	}
	if Wrap(TxnNotFound, nil, "x") != nil {
		t.Fatal("Wrap(nil) should be nil")
	}
	// Outermost code wins over an inner one.
	inner := New(StoreNoNode, "inner")
	outer := Wrap(TxnNotFound, inner, "outer")
	if got := CodeOf(outer); got != TxnNotFound {
		t.Fatalf("outermost code should win, got %q", got)
	}
	if !errors.Is(outer, StoreNoNode) {
		t.Fatal("inner code should still Is-match through the chain")
	}
}

func TestNewfWrapVerb(t *testing.T) {
	cause := errors.New("boom")
	err := Newf(TxnUnknownProcedure, "unknown stored procedure %q: %w", "nope", cause)
	if !errors.Is(err, cause) {
		t.Fatal("Newf %w not honored")
	}
	if !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("message = %q", err.Error())
	}
}

func TestDetails(t *testing.T) {
	err := New(TxnNotFound, "nope").With("id", "t-1").With("hint", "expired")
	if err.Details["id"] != "t-1" || err.Details["hint"] != "expired" {
		t.Fatalf("details = %v", err.Details)
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := map[Code]int{
		TxnNotFound:         http.StatusNotFound,
		TxnUnknownProcedure: http.StatusBadRequest,
		TxnWaitTimeout:      http.StatusGatewayTimeout,
		SubmitInvalidArgs:   http.StatusBadRequest,
		ReconcileConflict:   http.StatusConflict,
		StoreSessionExpired: http.StatusServiceUnavailable,
		APIUnavailable:      http.StatusServiceUnavailable,
		Code("bogus.code"):  http.StatusInternalServerError,
		Code(""):            http.StatusInternalServerError,
	}
	for c, want := range cases {
		if got := HTTPStatus(c); got != want {
			t.Errorf("HTTPStatus(%q) = %d, want %d", c, got, want)
		}
	}
	if StatusOf(errors.New("plain")) != http.StatusInternalServerError {
		t.Error("StatusOf(uncoded) != 500")
	}
}

// TestCodeSurface pins the registered code strings and statuses to a
// golden file: renaming or remapping a code is an API break and must
// show up as an explicit diff here (and in the CI `go doc` snapshot).
func TestCodeSurface(t *testing.T) {
	var b strings.Builder
	for _, info := range Codes() {
		fmt.Fprintf(&b, "%s %d\n", info.Code, info.Status)
	}
	got := b.String()
	want, err := os.ReadFile("testdata/codes.golden")
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with the surface below)\n%s", err, got)
	}
	if got != string(want) {
		t.Fatalf("error-code surface changed.\n--- want\n%s--- got\n%s", want, got)
	}
}
