// Package trerr is TROPIC's typed error taxonomy. Every failure the
// platform surfaces — from a constraint check deep in the logical layer
// to a malformed HTTP request at the gateway — carries a stable,
// machine-consumable Code of the form "area.name" (lowercase ASCII,
// digits, and underscores; a single dot separates the area from the
// name). Codes are registered at init time with their one canonical
// HTTP status and a short description, so the gateway's JSON bodies,
// the remote SDK's decoded errors, and the README's error table can
// never drift apart.
//
// A Code is itself an error, so sentinel matching reads naturally:
//
//	if errors.Is(err, trerr.TxnNotFound) { ... }
//
// matches any *trerr.Error (or wrapped chain containing one) carrying
// that code, whether it was produced in-process or decoded from a
// gateway response by tropic/httpclient.
package trerr

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Code is a validated "area.name" error code. The zero value ("") means
// "no code"; CodeOf returns it for errors outside the taxonomy.
type Code string

// Error implements error so a Code can be used directly as an errors.Is
// target and wrapped with fmt.Errorf("%w", ...).
func (c Code) Error() string { return string(c) }

// Area returns the portion before the dot ("txn" in "txn.not_found").
func (c Code) Area() string {
	if i := strings.IndexByte(string(c), '.'); i >= 0 {
		return string(c)[:i]
	}
	return string(c)
}

// Valid reports whether c follows the area.name format: lowercase
// letters, digits, and underscores on both sides of a single dot.
func (c Code) Valid() bool {
	s := string(c)
	dot := strings.IndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 || strings.IndexByte(s[dot+1:], '.') >= 0 {
		return false
	}
	for _, part := range []string{s[:dot], s[dot+1:]} {
		for i := 0; i < len(part); i++ {
			b := part[i]
			if !(b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b == '_') {
				return false
			}
		}
	}
	return true
}

// Info documents one registered code.
type Info struct {
	Code   Code
	Status int
	Doc    string
}

var registry = map[Code]Info{}

// register validates and records a code with its canonical HTTP status.
// It panics on a malformed or duplicate code — taxonomy bugs are
// programmer errors caught at init.
func register(s string, status int, doc string) Code {
	c := Code(s)
	if !c.Valid() {
		panic(fmt.Sprintf("trerr: invalid code %q (want area.name, lowercase/digits/underscores)", s))
	}
	if _, dup := registry[c]; dup {
		panic(fmt.Sprintf("trerr: duplicate code %q", s))
	}
	if status < 400 || status > 599 {
		panic(fmt.Sprintf("trerr: code %q: status %d is not an HTTP error status", s, status))
	}
	registry[c] = Info{Code: c, Status: status, Doc: doc}
	return c
}

// Codes returns every registered code sorted by code string, for the
// README error table and the API-surface snapshot test.
func Codes() []Info {
	out := make([]Info, 0, len(registry))
	for _, info := range registry {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// HTTPStatus returns the canonical HTTP status for a code; unregistered
// codes (including "") map to 500.
func HTTPStatus(c Code) int {
	if info, ok := registry[c]; ok {
		return info.Status
	}
	return http.StatusInternalServerError
}

// Error is a failure carrying a taxonomy code, a human-readable
// message, and optional machine-readable details. It supports
// errors.Is/As and wrapping.
type Error struct {
	// Code is the stable area.name identifier.
	Code Code `json:"code"`
	// Message describes this specific failure.
	Message string `json:"message"`
	// Details carries structured context (ids, paths, parameters).
	Details map[string]string `json:"details,omitempty"`

	cause error
}

// New builds an Error with the given code and message.
func New(code Code, msg string) *Error {
	return &Error{Code: code, Message: msg}
}

// Newf builds an Error with a formatted message. %w verbs are honored:
// the wrapped error becomes the cause.
func Newf(code Code, format string, args ...any) *Error {
	wrapped := fmt.Errorf(format, args...)
	return &Error{Code: code, Message: wrapped.Error(), cause: errors.Unwrap(wrapped)}
}

// Wrap builds an Error whose cause is err; errors.Is/As see through to
// it. A nil err returns nil.
func Wrap(code Code, err error, msg string) *Error {
	if err == nil {
		return nil
	}
	return &Error{Code: code, Message: msg, cause: err}
}

// With records one detail key/value, returning e for chaining.
func (e *Error) With(key, value string) *Error {
	if e.Details == nil {
		e.Details = make(map[string]string)
	}
	e.Details[key] = value
	return e
}

// Error renders "message: cause" (the code is metadata, not prose; the
// gateway and SDK surface it structurally).
func (e *Error) Error() string {
	if e.cause != nil && !strings.Contains(e.Message, e.cause.Error()) {
		return e.Message + ": " + e.cause.Error()
	}
	return e.Message
}

// Unwrap exposes the cause for errors.Is/As traversal.
func (e *Error) Unwrap() error { return e.cause }

// Is matches a bare Code target or another *Error with the same code,
// in addition to the default identity/unwrap semantics.
func (e *Error) Is(target error) bool {
	switch t := target.(type) {
	case Code:
		return e.Code == t
	case *Error:
		return t != nil && e.Code == t.Code
	}
	return false
}

// CodeOf extracts the taxonomy code from an error chain ("" when the
// chain carries none). The outermost coded error wins.
func CodeOf(err error) Code {
	for err != nil {
		if te, ok := err.(*Error); ok {
			return te.Code
		}
		if c, ok := err.(Code); ok {
			return c
		}
		err = errors.Unwrap(err)
	}
	return ""
}

// StatusOf maps an error chain to its HTTP status: the canonical status
// of its code, or 500 for uncoded errors.
func StatusOf(err error) int { return HTTPStatus(CodeOf(err)) }
