package trerr

import "net/http"

// The taxonomy. Each code is registered with its one canonical HTTP
// status; renaming a code is an API break caught by TestCodeSurface and
// the CI `go doc` snapshot.
//
// Areas: "api" (gateway request handling), "submit" (submission
// plumbing), "txn" (transaction lifecycle), "reconcile" (§4
// reload/repair), "shard" (cross-shard routing), "xshard" (cross-shard
// two-phase commit), "store" (coordination-store operations).
var (
	// APIBadRequest: the request was malformed (bad JSON, missing or
	// invalid parameter).
	APIBadRequest = register("api.bad_request", http.StatusBadRequest,
		"malformed request: bad JSON, missing or invalid parameter")
	// APIMethodNotAllowed: the endpoint exists but not for this HTTP
	// method.
	APIMethodNotAllowed = register("api.method_not_allowed", http.StatusMethodNotAllowed,
		"endpoint does not support this HTTP method")
	// APINotFound: no such endpoint.
	APINotFound = register("api.not_found", http.StatusNotFound,
		"no such endpoint")
	// APIUnavailable: the platform cannot serve (no leading controller
	// or no store quorum); retry after failover.
	APIUnavailable = register("api.unavailable", http.StatusServiceUnavailable,
		"platform not ready: no leading controller or no store quorum")
	// APIInternal: an unclassified server-side failure.
	APIInternal = register("api.internal", http.StatusInternalServerError,
		"unclassified server-side failure")
	// APITimeout: a gateway-side deadline elapsed before the operation
	// completed (e.g. a reconcile exceeding its time budget). Waits on
	// transaction outcomes use txn.wait_timeout instead.
	APITimeout = register("api.timeout", http.StatusGatewayTimeout,
		"gateway-side deadline elapsed before the operation completed")
	// APIOverloaded: admission control shed the submission because the
	// target shard's pipeline backlog is at its configured watermark
	// (Config.MaxInflightPerShard). The response carries a Retry-After
	// hint; back off and resubmit — nothing was created.
	APIOverloaded = register("api.overloaded", http.StatusTooManyRequests,
		"submission shed: shard pipeline backlog at its admission-control watermark; retry after backoff")

	// SubmitInvalidArgs: the submission itself is invalid (empty
	// procedure name, malformed idempotency key, empty batch).
	SubmitInvalidArgs = register("submit.invalid_args", http.StatusBadRequest,
		"invalid submission: empty procedure, malformed idempotency key, or empty batch")
	// SubmitIdempotencyReuse: the idempotency key was already used for a
	// different procedure.
	SubmitIdempotencyReuse = register("submit.idempotency_reuse", http.StatusConflict,
		"idempotency key already used for a different procedure")
	// SubmitIdempotencyPending: another submission holding this
	// idempotency key has not finished registering its transaction.
	SubmitIdempotencyPending = register("submit.idempotency_pending", http.StatusConflict,
		"concurrent submission with this idempotency key is still registering")

	// TxnNotFound: no transaction record with this id.
	TxnNotFound = register("txn.not_found", http.StatusNotFound,
		"no transaction record with this id")
	// TxnUnknownProcedure: the named stored procedure is not registered.
	TxnUnknownProcedure = register("txn.unknown_procedure", http.StatusBadRequest,
		"stored procedure is not in the registry")
	// TxnConstraintViolation: logical simulation hit a service or
	// engineering constraint (Figure 2, ③A).
	TxnConstraintViolation = register("txn.constraint_violation", http.StatusConflict,
		"constraint violation during logical simulation")
	// TxnProcedureAbort: the stored procedure aborted itself with a
	// domain reason (tropic.ErrAbort).
	TxnProcedureAbort = register("txn.procedure_abort", http.StatusConflict,
		"stored procedure aborted the transaction")
	// TxnPhysicalFailure: a device action failed and the physical layer
	// rolled back (⑤B).
	TxnPhysicalFailure = register("txn.physical_failure", http.StatusConflict,
		"device action failed; physical rollback succeeded")
	// TxnRollbackFailed: a device action failed AND an undo failed,
	// leaving a cross-layer inconsistency for reconciliation (§4).
	TxnRollbackFailed = register("txn.rollback_failed", http.StatusConflict,
		"device action and its undo both failed; node marked inconsistent")
	// TxnTerminated: the transaction was stopped by an operator
	// TERM/KILL signal (§4).
	TxnTerminated = register("txn.terminated", http.StatusConflict,
		"transaction stopped by operator TERM/KILL signal")
	// TxnInvalidSignal: the signal is not TERM or KILL.
	TxnInvalidSignal = register("txn.invalid_signal", http.StatusBadRequest,
		"signal must be TERM or KILL")
	// TxnIllegalTransition: an attempted state change violates the
	// Figure 2 state machine.
	TxnIllegalTransition = register("txn.illegal_transition", http.StatusConflict,
		"state change violates the transaction state machine")
	// TxnWaitTimeout: the wait deadline elapsed before the transaction
	// reached a terminal state.
	TxnWaitTimeout = register("txn.wait_timeout", http.StatusGatewayTimeout,
		"wait deadline elapsed before the transaction became terminal")

	// ReconcileConflict: a reload/repair request was refused or failed
	// (locked subtree, repair rule failure).
	ReconcileConflict = register("reconcile.conflict", http.StatusConflict,
		"reload/repair refused or failed")
	// ReconcileUnsupported: the deployment has no reconciler configured.
	ReconcileUnsupported = register("reconcile.unsupported", http.StatusNotImplemented,
		"deployment has no reconciler configured")

	// ShardCrossShard: the submission's resource roots map to more than
	// one shard of a sharded platform AND cross-shard transactions are
	// disabled (Config.CrossShard, the ablation path). With cross-shard
	// execution enabled — the default — spanning submissions run as
	// atomic two-phase-commit transactions instead of being rejected.
	ShardCrossShard = register("shard.cross_shard", http.StatusUnprocessableEntity,
		"transaction addresses resources owned by different shards and cross-shard execution is disabled")

	// XShardPrepareFailed: a participant shard voted to abort a
	// cross-shard transaction during its prepare phase (constraint
	// violation, procedure abort, or lock acquisition failure on that
	// shard); the coordinator recorded an ABORT decision and every
	// prepared child rolled back.
	XShardPrepareFailed = register("xshard.prepare_failed", http.StatusConflict,
		"a participant shard voted to abort during the cross-shard prepare phase")
	// XShardInDoubtTimeout: the coordinator's prepare deadline elapsed
	// before every participant voted (participant crash, lost vote, or
	// cross-shard lock wait); the coordinator resolved the in-doubt
	// transaction by recording an ABORT decision.
	XShardInDoubtTimeout = register("xshard.indoubt_timeout", http.StatusGatewayTimeout,
		"cross-shard prepare deadline elapsed before every participant voted; transaction aborted")
	// XShardWounded: wound-wait resolved a cross-shard lock-order
	// inversion by aborting this (younger) transaction so an older one
	// could take its locks immediately, instead of both waiting out the
	// prepare deadline. Safe to resubmit.
	XShardWounded = register("xshard.wounded", http.StatusConflict,
		"aborted by wound-wait: an older cross-shard transaction claimed conflicting locks")

	// StoreNoNode: the target znode does not exist.
	StoreNoNode = register("store.no_node", http.StatusNotFound,
		"target znode does not exist")
	// StoreNodeExists: Create hit an existing znode.
	StoreNodeExists = register("store.node_exists", http.StatusConflict,
		"znode already exists")
	// StoreBadVersion: a conditional write lost a compare-and-set race.
	StoreBadVersion = register("store.bad_version", http.StatusConflict,
		"conditional write lost a compare-and-set race")
	// StoreNotEmpty: Delete on a znode that still has children.
	StoreNotEmpty = register("store.not_empty", http.StatusConflict,
		"znode still has children")
	// StoreNoQuorum: fewer than a majority of store replicas are alive.
	StoreNoQuorum = register("store.no_quorum", http.StatusServiceUnavailable,
		"store ensemble lost quorum")
	// StoreSessionExpired: the client's store session expired.
	StoreSessionExpired = register("store.session_expired", http.StatusServiceUnavailable,
		"client's store session expired")
	// StoreEphemeralChildren: attempted to create a child under an
	// ephemeral znode.
	StoreEphemeralChildren = register("store.ephemeral_children", http.StatusBadRequest,
		"ephemeral znodes may not have children")
	// StoreBadPath: malformed znode path.
	StoreBadPath = register("store.bad_path", http.StatusBadRequest,
		"malformed znode path")
	// StoreClosed: the ensemble has been shut down.
	StoreClosed = register("store.closed", http.StatusServiceUnavailable,
		"store ensemble has been shut down")
)
