// Package httpclient is the Go SDK for TROPIC's orchestration HTTP API
// (internal/api, served by cmd/tropicd). It implements tropic.Session,
// so remote callers are interchangeable with in-process
// tropic.Client users:
//
//	var s tropic.Session = httpclient.New("http://localhost:7077")
//	id, err := s.Submit("spawnVM", storageHost, vmHost, "vm1", "1024")
//	rec, err := s.Wait(ctx, id)
//
// Gateway errors decode back into *trerr.Error values, so taxonomy
// codes survive the wire and remain errors.Is-matchable:
//
//	_, err := s.Get("t-bogus")
//	errors.Is(err, trerr.TxnNotFound) // true
//
// Sharding — including cross-shard transactions — is transparent: a
// spanning submission returns its parent id, Wait resolves when the
// two-phase commit finalizes, and the decoded record carries the child
// ledger and decision (docs/cross-shard.md); child ids
// ("<parent>.c<k>") resolve through Get/Wait/WatchTxn like any other.
package httpclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/tropic"
	"repro/tropic/trerr"
)

// Client talks to a tropicd gateway. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	// reqTimeout bounds the Session methods that take no context
	// (Submit, Get, List, Signal), so an unresponsive gateway cannot
	// block them forever. Context-taking methods (Wait, WatchTxn, ...)
	// are bounded by their contexts alone.
	reqTimeout time.Duration
	// zxid is the session's read-your-writes watermark: the highest
	// X-Tropic-Zxid any response has reported. Every request presents it,
	// so the gateway serves this client only from state that reflects its
	// own writes, whichever replica or cache entry answers (see
	// docs/reads.md).
	zxid atomic.Int64
}

var _ tropic.Session = (*Client)(nil)

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (transports,
// test doubles). Avoid http.Client.Timeout: it would also cap the
// long-lived Wait and WatchTxn streams; use WithRequestTimeout and
// contexts instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRequestTimeout sets the deadline applied to the context-less
// Session methods (default 30s; <= 0 disables).
func WithRequestTimeout(d time.Duration) Option {
	return func(c *Client) { c.reqTimeout = d }
}

// New creates a client for the gateway at baseURL
// (e.g. "http://localhost:7077").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         &http.Client{},
		reqTimeout: 30 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// reqCtx builds the bounded context used by context-less methods.
func (c *Client) reqCtx() (context.Context, context.CancelFunc) {
	if c.reqTimeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), c.reqTimeout)
}

// Close releases idle connections. (The gateway holds no per-client
// server state.)
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// zxidHeader mirrors internal/api.ZxidHeader (the packages share no
// importable surface by design — the wire format is the contract).
const zxidHeader = "X-Tropic-Zxid"

// Zxid returns the client's current watermark: the store position its
// reads are guaranteed to reflect. 0 until the first response.
func (c *Client) Zxid() int64 { return c.zxid.Load() }

// raiseZxid lifts the watermark to a response's reported position.
// Monotonic: concurrent responses race benignly to the maximum.
func (c *Client) raiseZxid(h http.Header) {
	v := h.Get(zxidHeader)
	if v == "" {
		return
	}
	z, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return
	}
	for {
		cur := c.zxid.Load()
		if z <= cur || c.zxid.CompareAndSwap(cur, z) {
			return
		}
	}
}

// --- Wire types (mirroring internal/api) ------------------------------

type submitItem struct {
	Proc           string   `json:"proc"`
	Args           []string `json:"args,omitempty"`
	IdempotencyKey string   `json:"idempotencyKey,omitempty"`
}

type submitResult struct {
	ID      string `json:"id"`
	Deduped bool   `json:"deduped,omitempty"`
}

type errorBody struct {
	Error *trerr.Error `json:"error"`
}

// --- Plumbing ---------------------------------------------------------

// doJSON performs one request and decodes a 2xx JSON response into out
// (ignored when nil). Non-2xx responses decode into *trerr.Error.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("httpclient: encode %s request: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("httpclient: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if z := c.zxid.Load(); z > 0 {
		req.Header.Set(zxidHeader, strconv.FormatInt(z, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("httpclient: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("httpclient: %s: read response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(path, resp.StatusCode, resp.Header, data)
	}
	c.raiseZxid(resp.Header)
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("httpclient: %s: decode response: %w", path, err)
	}
	return nil
}

// decodeError turns a non-2xx gateway body back into a typed error. A
// 429 (api.overloaded) additionally surfaces the response's Retry-After
// header as a "retry_after" detail, readable via RetryAfter.
func decodeError(path string, status int, header http.Header, data []byte) error {
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err == nil && eb.Error != nil && eb.Error.Code != "" {
		if status == http.StatusTooManyRequests {
			if v := header.Get("Retry-After"); v != "" {
				eb.Error.With("retry_after", v)
			}
		}
		return eb.Error
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200] + "…"
	}
	return trerr.Newf(trerr.APIInternal,
		"httpclient: %s: unexpected status %d: %s", path, status, msg)
}

// RetryAfter extracts the backoff hint from an admission-control shed
// (trerr.APIOverloaded): the Retry-After duration the gateway attached,
// ok=false when err carries no hint. Callers should sleep at least this
// long before resubmitting.
func RetryAfter(err error) (time.Duration, bool) {
	var te *trerr.Error
	if !errors.As(err, &te) {
		return 0, false
	}
	v := te.Details["retry_after"]
	if v == "" {
		return 0, false
	}
	secs, perr := strconv.Atoi(v)
	if perr != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// --- tropic.Session ---------------------------------------------------

// Submit initiates a transaction and returns its id.
func (c *Client) Submit(proc string, args ...string) (string, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	var res submitResult
	err := c.doJSON(ctx, http.MethodPost, "/v1/submit",
		submitItem{Proc: proc, Args: args}, &res)
	if err != nil {
		return "", err
	}
	return res.ID, nil
}

// SubmitIdempotent submits under an idempotency key; resubmitting the
// same key returns the original id with deduped=true.
func (c *Client) SubmitIdempotent(ctx context.Context, key, proc string, args ...string) (string, bool, error) {
	var res submitResult
	err := c.doJSON(ctx, http.MethodPost, "/v1/submit",
		submitItem{Proc: proc, Args: args, IdempotencyKey: key}, &res)
	if err != nil {
		return "", false, err
	}
	return res.ID, res.Deduped, nil
}

// SubmitBatch submits several transactions in one request. Validation
// failures reject the whole batch before any item executes.
func (c *Client) SubmitBatch(ctx context.Context, items []tropic.SubmitSpec) ([]tropic.SubmitOutcome, error) {
	req := struct {
		Batch []submitItem `json:"batch"`
	}{}
	for _, it := range items {
		req.Batch = append(req.Batch, submitItem{
			Proc: it.Proc, Args: it.Args, IdempotencyKey: it.IdempotencyKey,
		})
	}
	var resp struct {
		Results []submitResult `json:"results"`
	}
	if err := c.doJSON(ctx, http.MethodPost, "/v1/submit", req, &resp); err != nil {
		return nil, err
	}
	out := make([]tropic.SubmitOutcome, 0, len(resp.Results))
	for _, r := range resp.Results {
		out = append(out, tropic.SubmitOutcome{ID: r.ID, Deduped: r.Deduped})
	}
	return out, nil
}

// Get fetches the current record of a transaction.
func (c *Client) Get(id string) (*tropic.Txn, error) {
	if id == "" {
		return nil, trerr.New(trerr.APIBadRequest, "httpclient: get: missing transaction id")
	}
	ctx, cancel := c.reqCtx()
	defer cancel()
	var rec tropic.Txn
	err := c.doJSON(ctx, http.MethodGet, "/v1/txn?id="+url.QueryEscape(id), nil, &rec)
	if err != nil {
		return nil, err
	}
	return &rec, nil
}

// Wait blocks until the transaction is terminal. A client-side ctx
// deadline maps to trerr.TxnWaitTimeout, matching the in-process
// client (server-side wait timeouts arrive as the same code via 504).
func (c *Client) Wait(ctx context.Context, id string) (*tropic.Txn, error) {
	var rec tropic.Txn
	err := c.doJSON(ctx, http.MethodGet, "/v1/wait?id="+url.QueryEscape(id), nil, &rec)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, trerr.TxnWaitTimeout) {
			return nil, trerr.Wrap(trerr.TxnWaitTimeout, err,
				fmt.Sprintf("httpclient: wait %s: deadline elapsed before a terminal state", id)).With("id", id)
		}
		return nil, err
	}
	return &rec, nil
}

// SubmitAndWait submits and waits for the outcome.
func (c *Client) SubmitAndWait(ctx context.Context, proc string, args ...string) (*tropic.Txn, error) {
	id, err := c.Submit(proc, args...)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, id)
}

// List pages through transaction records.
func (c *Client) List(opts tropic.ListOptions) (*tropic.TxnPage, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", string(opts.State))
	}
	if opts.Proc != "" {
		q.Set("proc", opts.Proc)
	}
	if opts.Cursor != "" {
		q.Set("cursor", opts.Cursor)
	}
	if opts.Limit > 0 {
		q.Set("limit", fmt.Sprint(opts.Limit))
	}
	path := "/v1/txns"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	ctx, cancel := c.reqCtx()
	defer cancel()
	var page tropic.TxnPage
	if err := c.doJSON(ctx, http.MethodGet, path, nil, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// WatchTxn streams the transaction's state transitions over
// server-sent events until it is terminal; the channel closes after
// the terminal record (or when ctx is canceled). A channel that closes
// before delivering a terminal record means the stream was interrupted
// (gateway watch failure or disconnect) — the final state is unknown
// and should be re-fetched with Get.
func (c *Client) WatchTxn(ctx context.Context, id string) (<-chan *tropic.Txn, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/watch?id="+url.QueryEscape(id), nil)
	if err != nil {
		return nil, fmt.Errorf("httpclient: watch: %w", err)
	}
	if z := c.zxid.Load(); z > 0 {
		req.Header.Set(zxidHeader, strconv.FormatInt(z, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpclient: watch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, decodeError("/v1/watch", resp.StatusCode, resp.Header, data)
	}
	c.raiseZxid(resp.Header)
	ch := make(chan *tropic.Txn, 8)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		event, data := "", ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if event == "done" || event == "error" {
					// "error" means the gateway's watch died before a
					// terminal state; the channel closes without a
					// terminal record.
					return
				}
				if event == "state" && data != "" {
					var rec tropic.Txn
					if err := json.Unmarshal([]byte(data), &rec); err == nil {
						select {
						case ch <- &rec:
						case <-ctx.Done():
							return
						}
					}
				}
				event, data = "", ""
			}
		}
	}()
	return ch, nil
}

// Signal sends a TERM or KILL to a transaction.
func (c *Client) Signal(id string, sig tropic.Signal) error {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.doJSON(ctx, http.MethodPost, "/v1/signal", struct {
		ID     string `json:"id"`
		Signal string `json:"signal"`
	}{ID: id, Signal: string(sig)}, nil)
}

// Repair drives physical state back to the logical state (§4).
func (c *Client) Repair(ctx context.Context, target string) error {
	return c.reconcile(ctx, "/v1/repair", target)
}

// Reload synchronizes logical state from the physical state (§4).
func (c *Client) Reload(ctx context.Context, target string) error {
	return c.reconcile(ctx, "/v1/reload", target)
}

func (c *Client) reconcile(ctx context.Context, path, target string) error {
	return c.doJSON(ctx, http.MethodPost, path, struct {
		Target string `json:"target"`
	}{Target: target}, nil)
}

// --- Beyond Session ---------------------------------------------------

// Health is the decoded GET /healthz body.
type Health struct {
	Status string `json:"status"`
	Leader string `json:"leader,omitempty"`
	Store  struct {
		Replicas int  `json:"replicas"`
		Alive    int  `json:"alive"`
		Quorum   bool `json:"quorum"`
		Sessions int  `json:"sessions"`
	} `json:"store"`
	Error *trerr.Error `json:"error,omitempty"`
}

// Healthz probes gateway readiness. A 503 still decodes: the returned
// Health explains the outage and err is the typed api.unavailable
// error.
func (c *Client) Healthz(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, fmt.Errorf("httpclient: healthz: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpclient: healthz: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("httpclient: healthz: read response: %w", err)
	}
	var h Health
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, decodeError("/healthz", resp.StatusCode, resp.Header, data)
	}
	if h.Error != nil {
		return &h, h.Error
	}
	return &h, nil
}

// Stats fetches the gateway's raw GET /v1/stats document.
func (c *Client) Stats(ctx context.Context) (map[string]json.RawMessage, error) {
	var out map[string]json.RawMessage
	if err := c.doJSON(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
