package httpclient_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/device"
	"repro/tcloud"
	"repro/tropic"
	"repro/tropic/httpclient"
	"repro/tropic/trerr"
)

// newPlatform starts a small physical deployment and its gateway.
func newPlatform(t *testing.T) (*tropic.Platform, *device.Cloud, *httptest.Server) {
	t.Helper()
	tp := tcloud.Topology{ComputeHosts: 2}
	cloud, err := tp.BuildCloud()
	if err != nil {
		t.Fatal(err)
	}
	p, err := tropic.New(tropic.Config{
		Schema:     tcloud.NewSchema(),
		Procedures: tcloud.Procedures(),
		Bootstrap:  cloud.Snapshot(),
		Executor:   cloud,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	gw := api.New(api.Config{Platform: p})
	t.Cleanup(gw.Close)
	srv := httptest.NewServer(gw)
	t.Cleanup(srv.Close)
	return p, cloud, srv
}

func spawnArgs(host int, vm string) []string {
	return []string{tcloud.StorageHostPath(0), tcloud.ComputeHostPath(host), vm, "1024"}
}

// exerciseSession drives one tropic.Session through the shared surface:
// lifecycle, typed errors, listing, and streaming. Both the in-process
// client and the HTTP SDK must pass it unchanged — that is the
// interchangeability contract.
func exerciseSession(t *testing.T, s tropic.Session, vmPrefix string, host int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Typed submission errors.
	if _, err := s.Submit("noSuchProc"); !errors.Is(err, trerr.TxnUnknownProcedure) {
		t.Fatalf("unknown proc: %v, want txn.unknown_procedure", err)
	}
	if _, err := s.Submit(""); !errors.Is(err, trerr.SubmitInvalidArgs) {
		t.Fatalf("empty proc: %v, want submit.invalid_args", err)
	}
	// Typed lookup errors.
	if _, err := s.Get("t-9999999999"); !errors.Is(err, trerr.TxnNotFound) {
		t.Fatalf("get bogus: %v, want txn.not_found", err)
	}
	if _, err := s.Wait(ctx, "t-9999999999"); !errors.Is(err, trerr.TxnNotFound) {
		t.Fatalf("wait bogus: %v, want txn.not_found", err)
	}
	if err := s.Signal("t-1", tropic.Signal("NUKE")); !errors.Is(err, trerr.TxnInvalidSignal) {
		t.Fatalf("bad signal: %v, want txn.invalid_signal", err)
	}

	// Submit → wait lifecycle.
	vm := vmPrefix + "-1"
	rec, err := s.SubmitAndWait(ctx, tcloud.ProcSpawnVM, spawnArgs(host, vm)...)
	if err != nil {
		t.Fatalf("submit+wait: %v", err)
	}
	if rec.State != tropic.StateCommitted {
		t.Fatalf("state = %s (%s)", rec.State, rec.Error)
	}
	if len(rec.History) == 0 || rec.History[len(rec.History)-1].State != tropic.StateCommitted {
		t.Fatalf("history = %+v", rec.History)
	}

	// Idempotent resubmission.
	key := vmPrefix + "-idem"
	id1, deduped, err := s.SubmitIdempotent(ctx, key, tcloud.ProcSpawnVM, spawnArgs(host, vmPrefix+"-2")...)
	if err != nil || deduped {
		t.Fatalf("idempotent first: %s %v %v", id1, deduped, err)
	}
	id2, deduped, err := s.SubmitIdempotent(ctx, key, tcloud.ProcSpawnVM, spawnArgs(host, vmPrefix+"-2")...)
	if err != nil || !deduped || id2 != id1 {
		t.Fatalf("idempotent second: %s %v %v (first %s)", id2, deduped, err, id1)
	}
	if _, _, err := s.SubmitIdempotent(ctx, key, tcloud.ProcStopVM,
		tcloud.ComputeHostPath(host), vmPrefix+"-2"); !errors.Is(err, trerr.SubmitIdempotencyReuse) {
		t.Fatalf("key reuse: %v, want submit.idempotency_reuse", err)
	}
	// Same key and proc but different args is also a reuse conflict —
	// not a silent dedup to the wrong transaction.
	if _, _, err := s.SubmitIdempotent(ctx, key, tcloud.ProcSpawnVM,
		spawnArgs(host, vmPrefix+"-other")...); !errors.Is(err, trerr.SubmitIdempotencyReuse) {
		t.Fatalf("args reuse: %v, want submit.idempotency_reuse", err)
	}
	if _, err := s.Wait(ctx, id1); err != nil {
		t.Fatal(err)
	}

	// Batch.
	outcomes, err := s.SubmitBatch(ctx, []tropic.SubmitSpec{
		{Proc: tcloud.ProcSpawnVM, Args: spawnArgs(host, vmPrefix+"-3")},
		{Proc: tcloud.ProcSpawnVM, Args: spawnArgs(host, vmPrefix+"-4")},
	})
	if err != nil || len(outcomes) != 2 {
		t.Fatalf("batch: %v %v", outcomes, err)
	}
	if _, err := s.SubmitBatch(ctx, nil); !errors.Is(err, trerr.SubmitInvalidArgs) {
		t.Fatalf("empty batch: %v", err)
	}
	for _, o := range outcomes {
		if _, err := s.Wait(ctx, o.ID); err != nil {
			t.Fatal(err)
		}
	}

	// Listing with filters and pagination.
	page, err := s.List(tropic.ListOptions{State: tropic.StateCommitted, Proc: tcloud.ProcSpawnVM, Limit: 2})
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(page.Txns) != 2 || page.NextCursor == "" {
		t.Fatalf("page = %d txns, cursor %q", len(page.Txns), page.NextCursor)
	}
	page2, err := s.List(tropic.ListOptions{State: tropic.StateCommitted, Cursor: page.NextCursor, Limit: 100})
	if err != nil {
		t.Fatalf("list page 2: %v", err)
	}
	for _, rec := range page2.Txns {
		if rec.ID <= page.NextCursor {
			t.Fatalf("cursor not respected: %s <= %s", rec.ID, page.NextCursor)
		}
	}

	// Watch an already-terminal transaction: terminal record, then close.
	ch, err := s.WatchTxn(ctx, id1)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	var last *tropic.Txn
	for rec := range ch {
		last = rec
	}
	if last == nil || !last.State.Terminal() {
		t.Fatalf("watch ended at %+v", last)
	}
	// Watch on an unknown id is a synchronous typed error.
	if _, err := s.WatchTxn(ctx, "t-9999999999"); !errors.Is(err, trerr.TxnNotFound) {
		t.Fatalf("watch bogus: %v, want txn.not_found", err)
	}
}

// TestSessionInterchangeability runs the identical scenario against the
// in-process client and the HTTP SDK.
func TestSessionInterchangeability(t *testing.T) {
	p, _, srv := newPlatform(t)

	inproc := p.Client()
	defer inproc.Close()
	exerciseSession(t, inproc, "vmA", 0)

	remote := httpclient.New(srv.URL)
	defer remote.Close()
	exerciseSession(t, remote, "vmB", 1)
}

// TestHTTPClientTypedErrorDetails checks decoded errors keep their
// structured details and both sentinel-matching forms.
func TestHTTPClientTypedErrorDetails(t *testing.T) {
	_, _, srv := newPlatform(t)
	c := httpclient.New(srv.URL)
	defer c.Close()

	_, err := c.Get("t-0000009999")
	var te *trerr.Error
	if !errors.As(err, &te) {
		t.Fatalf("err %T is not *trerr.Error", err)
	}
	if te.Code != trerr.TxnNotFound {
		t.Fatalf("code = %s", te.Code)
	}
	if te.Details["id"] != "t-0000009999" {
		t.Fatalf("details = %v", te.Details)
	}
	// errors.Is works against both the Code sentinel and an *Error.
	if !errors.Is(err, trerr.TxnNotFound) || !errors.Is(err, trerr.New(trerr.TxnNotFound, "x")) {
		t.Fatal("sentinel matching failed")
	}
}

func TestHTTPClientWatchStreamsTransitions(t *testing.T) {
	_, cloud, srv := newPlatform(t)
	inj := device.NewInjector(1)
	inj.Add(device.FaultRule{Action: "importImage", Delay: 300 * time.Millisecond})
	cloud.SetFaultInjector(inj)

	c := httpclient.New(srv.URL)
	defer c.Close()
	id, err := c.Submit(tcloud.ProcSpawnVM, spawnArgs(0, "vmS")...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	ch, err := c.WatchTxn(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var states []tropic.State
	for rec := range ch {
		states = append(states, rec.State)
	}
	if len(states) < 2 {
		t.Fatalf("states = %v", states)
	}
	if states[len(states)-1] != tropic.StateCommitted {
		t.Fatalf("final state = %v", states)
	}
	sawStarted := false
	for _, s := range states {
		if s == tropic.StateStarted {
			sawStarted = true
		}
	}
	if !sawStarted {
		t.Fatalf("never saw started: %v", states)
	}
}

func TestHTTPClientHealthzAndStats(t *testing.T) {
	_, _, srv := newPlatform(t)
	c := httpclient.New(srv.URL)
	defer c.Close()
	ctx := context.Background()

	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if h.Status != "ok" || h.Leader == "" || !h.Store.Quorum {
		t.Fatalf("health = %+v", h)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"leader", "controller", "worker", "store", "api"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("stats missing %q: %v", key, stats)
		}
	}
}

// TestHTTPClientHealthzUnavailable probes a gateway over a platform
// with no elected leader.
func TestHTTPClientHealthzUnavailable(t *testing.T) {
	tp := tcloud.Topology{ComputeHosts: 1}
	p, err := tropic.New(tropic.Config{
		Schema:     tcloud.NewSchema(),
		Procedures: tcloud.Procedures(),
		Bootstrap:  tp.BuildModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	gw := api.New(api.Config{Platform: p})
	t.Cleanup(gw.Close)
	srv := httptest.NewServer(gw)
	t.Cleanup(srv.Close)

	c := httpclient.New(srv.URL)
	defer c.Close()
	h, err := c.Healthz(context.Background())
	if !errors.Is(err, trerr.APIUnavailable) {
		t.Fatalf("err = %v, want api.unavailable", err)
	}
	if h == nil || h.Status != "unavailable" {
		t.Fatalf("health = %+v", h)
	}
}

// TestHTTPClientCrossShard drives a cross-shard transaction end to end
// through the remote SDK: the spanning submission returns a parent id,
// Wait resolves when the two-phase commit finalizes, the decoded record
// carries the fully-committed child ledger and the durable decision,
// and the children resolve by their own ids.
func TestHTTPClientCrossShard(t *testing.T) {
	const shards, hosts = 3, 12
	p, err := tropic.New(tropic.Config{
		Schema:      tcloud.NewSchema(),
		Procedures:  tcloud.Procedures(),
		Bootstrap:   tcloud.Topology{ComputeHosts: hosts, ComputePerStorage: 1}.BuildModel(),
		Controllers: 1,
		Shards:      shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	startCtx, startCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer startCancel()
	if err := p.Start(startCtx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	gw := api.New(api.Config{Platform: p})
	t.Cleanup(gw.Close)
	srv := httptest.NewServer(gw)
	t.Cleanup(srv.Close)

	var storage, compute string
	for i := 0; i < hosts && storage == ""; i++ {
		for j := 0; j < hosts; j++ {
			ss, _ := p.ShardOf(tcloud.ProcSpawnVM, tcloud.StorageHostPath(i))
			hs, _ := p.ShardOf(tcloud.ProcSpawnVM, tcloud.ComputeHostPath(j))
			if ss != hs {
				storage, compute = tcloud.StorageHostPath(i), tcloud.ComputeHostPath(j)
				break
			}
		}
	}
	if storage == "" {
		t.Fatal("no cross-shard pair found")
	}

	var s tropic.Session = httpclient.New(srv.URL)
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rec, err := s.SubmitAndWait(ctx, tcloud.ProcSpawnVM, storage, compute, "httpxvm", "1024")
	if err != nil {
		t.Fatalf("cross-shard submit+wait over HTTP: %v", err)
	}
	if rec.State != tropic.StateCommitted || rec.Decision != "commit" {
		t.Fatalf("parent = %s decision %q (%s)", rec.State, rec.Decision, rec.Error)
	}
	if len(rec.Children) != 2 {
		t.Fatalf("decoded parent has %d children: %+v", len(rec.Children), rec.Children)
	}
	for _, ref := range rec.Children {
		if ref.State != tropic.StateCommitted {
			t.Fatalf("child ledger entry %s = %s (%s)", ref.ID, ref.State, ref.Error)
		}
		child, err := s.Get(ref.ID)
		if err != nil {
			t.Fatalf("get child %s over HTTP: %v", ref.ID, err)
		}
		if child.State != tropic.StateCommitted || child.Parent != rec.ID {
			t.Fatalf("child %s = %s parent %q", ref.ID, child.State, child.Parent)
		}
	}
}
