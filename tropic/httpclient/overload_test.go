package httpclient_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/tropic/httpclient"
	"repro/tropic/trerr"
)

// TestHTTPClientOverloadedRetryAfter: a 429 from the gateway decodes
// into the typed api.overloaded error, and the Retry-After hint rides
// along where RetryAfter can read it for backoff.
func TestHTTPClientOverloadedRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":{"code":"api.overloaded","message":"shard 0 backlog 9 at admission watermark 8","details":{"shard":"0","retry_after":"1"}}}`))
	}))
	defer srv.Close()

	c := httpclient.New(srv.URL)
	defer c.Close()
	_, err := c.Submit("spawnVM", "a", "b", "c", "1024")
	var te *trerr.Error
	if !errors.As(err, &te) {
		t.Fatalf("err %T is not *trerr.Error: %v", err, err)
	}
	if te.Code != trerr.APIOverloaded {
		t.Fatalf("code = %s, want %s", te.Code, trerr.APIOverloaded)
	}
	if !errors.Is(err, trerr.APIOverloaded) {
		t.Fatal("sentinel matching failed for api.overloaded")
	}
	// The transport header overrides the serialized detail: the header
	// is what a proxy or the gateway most recently decided.
	d, ok := httpclient.RetryAfter(err)
	if !ok || d != 3*time.Second {
		t.Fatalf("RetryAfter = (%v, %v), want (3s, true)", d, ok)
	}
}

// TestHTTPClientRetryAfterAbsent: non-overload errors carry no hint.
func TestHTTPClientRetryAfterAbsent(t *testing.T) {
	if d, ok := httpclient.RetryAfter(errors.New("plain")); ok || d != 0 {
		t.Fatalf("RetryAfter(plain) = (%v, %v), want (0, false)", d, ok)
	}
	if d, ok := httpclient.RetryAfter(trerr.New(trerr.TxnNotFound, "x")); ok || d != 0 {
		t.Fatalf("RetryAfter(no detail) = (%v, %v), want (0, false)", d, ok)
	}
}
