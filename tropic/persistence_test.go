package tropic_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/store"
	"repro/tcloud"
	"repro/tropic"
)

// The §6.4 failover experiment extended to full-process crashes: with a
// DataDir, stopping the entire platform and restarting it from the same
// directory must preserve every committed transaction record and the
// logical tree, reap every pre-crash ephemeral, and resume (or cleanly
// reconcile) in-flight work.

// newDurablePlatform builds a logical-only platform persisting to dir.
func newDurablePlatform(t *testing.T, dir string, hosts int) *tropic.Platform {
	t.Helper()
	p, err := tropic.New(tropic.Config{
		Schema:         tcloud.NewSchema(),
		Procedures:     tcloud.Procedures(),
		Bootstrap:      tcloud.Topology{ComputeHosts: hosts}.BuildModel(),
		Executor:       tropic.NoopExecutor{},
		SessionTimeout: 150 * time.Millisecond,
		DataDir:        dir,
		SyncPolicy:     tropic.SyncNone, // process-crash durability is what's under test
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformRestartPreservesCommittedTransactions(t *testing.T) {
	const hosts = 4
	dir := t.TempDir()
	p := newDurablePlatform(t, dir, hosts)
	c := p.Client()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Commit a batch of transactions, including a deliberate failure
	// (unknown procedure → aborted) so both terminal states are covered.
	type outcome struct {
		state tropic.State
		vm    string
	}
	want := make(map[string]outcome)
	for i := 0; i < hosts; i++ {
		vm := fmt.Sprintf("vm%d", i)
		rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
			tcloud.StorageHostPath(i/4), tcloud.ComputeHostPath(i), vm, "1024")
		if err != nil {
			t.Fatal(err)
		}
		if rec.State != tropic.StateCommitted {
			t.Fatalf("spawn %s: %s (%s)", vm, rec.State, rec.Error)
		}
		want[rec.ID] = outcome{tropic.StateCommitted, vm}
	}
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcStartVM) // missing args → procedure abort
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateAborted {
		t.Fatalf("bad-args procedure: %s", rec.State)
	}
	want[rec.ID] = outcome{tropic.StateAborted, ""}

	preCrashZxid := p.Ensemble().PersistStats().WALAppends
	c.Close()
	p.Stop() // whole-platform stop: controllers, workers, store — all gone

	// Restart from the same directory: a brand-new process image.
	p2 := newDurablePlatform(t, dir, hosts)
	defer p2.Stop()
	c2 := p2.Client()
	defer c2.Close()

	// Every transaction record survived with identical ID and state.
	for id, o := range want {
		got, err := c2.Get(id)
		if err != nil {
			t.Fatalf("txn %s lost in restart: %v", id, err)
		}
		if got.State != o.state {
			t.Fatalf("txn %s: state %s, want %s", id, got.State, o.state)
		}
	}

	// The recovered leader rebuilt the logical tree from the durable
	// snapshot + commit log: every spawned VM is present and running.
	leader := p2.Leader()
	if leader == nil {
		t.Fatal("no leader after restart")
	}
	for _, o := range want {
		if o.vm == "" {
			continue
		}
		found := false
		for i := 0; i < hosts && !found; i++ {
			n, err := leader.LogicalTree().Get(tcloud.ComputeHostPath(i) + "/" + o.vm)
			if err == nil && n.Attrs["state"] == "running" {
				found = true
			}
		}
		if !found {
			t.Fatalf("VM %s missing from recovered logical tree", o.vm)
		}
	}

	// The platform is live, with sequence counters resumed: new
	// transactions get fresh IDs and commit.
	rec2, err := c2.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vmPost", "1024")
	if err != nil {
		t.Fatal(err)
	}
	if rec2.State != tropic.StateCommitted {
		t.Fatalf("post-restart spawn: %s (%s)", rec2.State, rec2.Error)
	}
	if _, dup := want[rec2.ID]; dup {
		t.Fatalf("post-restart transaction reused ID %s", rec2.ID)
	}
	if preCrashZxid == 0 {
		t.Fatal("first incarnation logged nothing")
	}
}

func TestPlatformRestartRecoversInFlightTransactions(t *testing.T) {
	const hosts = 4
	dir := t.TempDir()
	p := newDurablePlatform(t, dir, hosts)
	c := p.Client()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Submit without waiting, then stop the platform immediately: some
	// transactions die mid-flight (initialized, accepted, or started).
	var ids []string
	for i := 0; i < hosts*2; i++ {
		id, err := c.Submit(tcloud.ProcSpawnVM,
			tcloud.StorageHostPath((i%hosts)/4), tcloud.ComputeHostPath(i%hosts),
			fmt.Sprintf("vmF%d", i), "1024")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	c.Close()
	p.Stop()

	// After restart the recovered leader re-reads the queues and records:
	// every pre-crash submission must reach a terminal state.
	p2 := newDurablePlatform(t, dir, hosts)
	defer p2.Stop()
	c2 := p2.Client()
	defer c2.Close()
	for _, id := range ids {
		rec, err := c2.Wait(ctx, id)
		if err != nil {
			t.Fatalf("txn %s: %v", id, err)
		}
		if !rec.State.Terminal() {
			t.Fatalf("txn %s stuck in %s after restart", id, rec.State)
		}
	}
}

func TestPlatformRestartReapsPreCrashEphemerals(t *testing.T) {
	dir := t.TempDir()
	p := newDurablePlatform(t, dir, 2)
	ens := p.Ensemble()
	cli := ens.Connect()
	if _, err := cli.Create("/stale-owner", nil, store.FlagEphemeral); err != nil {
		t.Fatal(err)
	}
	cli.Kill() // crashed client: session never expires gracefully
	p.Stop()

	p2 := newDurablePlatform(t, dir, 2)
	defer p2.Stop()
	c2 := p2.Ensemble().Connect()
	defer c2.Close()
	if ok, _, _ := c2.Exists("/stale-owner"); ok {
		t.Fatal("pre-crash ephemeral resurrected across platform restart")
	}
	// Election nodes are ephemerals too: the fact that p2 elected a
	// leader (Start returned) already proves the old incarnation's
	// election nodes were reaped; make it explicit.
	if p2.Leader() == nil {
		t.Fatal("no leader after restart")
	}
}

func TestPlatformDataDirUnsetIsPureInMemory(t *testing.T) {
	p, _ := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	if got := p.Ensemble().PersistStats(); got != (tropic.PersistStats{}) {
		t.Fatalf("in-memory platform reported persistence activity: %+v", got)
	}
}
