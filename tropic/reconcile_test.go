package tropic_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/reconcile"
	"repro/tcloud"
	"repro/tropic"
)

// TestDivergedDetection: the periodic layer-comparison probe (§4) must
// report exactly the out-of-sync paths and nothing else.
func TestDivergedDetection(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	sp, hp := tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0)
	for _, vm := range []string{"vm1", "vm2"} {
		rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM, sp, hp, vm, "1024")
		if err != nil || rec.State != tropic.StateCommitted {
			t.Fatalf("spawn: %v %v", rec, err)
		}
	}
	probe := reconcile.New(cloud, cloud, tcloud.RepairRules())
	diverged, err := probe.Diverged(p.Leader(), tcloud.VMRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(diverged) != 0 {
		t.Fatalf("healthy system reported diverged: %v", diverged)
	}
	// One out-of-band stop → exactly one diverged path.
	cloud.OutOfBandStopVM(tcloud.ComputeHostName(0), "vm1")
	diverged, err = probe.Diverged(p.Leader(), tcloud.VMRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(diverged) != 1 || diverged[0] != hp+"/vm1" {
		t.Fatalf("diverged = %v, want exactly [%s/vm1]", diverged, hp)
	}
}

// TestRepairAfterHostReboot reproduces the paper's §4 example: a compute
// server unexpectedly reboots, powering off its running VMs. Comparing
// the layers shows "running" logically vs "stopped" physically; repair
// re-executes startVM for each.
func TestRepairAfterHostReboot(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	sp, hp := tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0)
	for _, vm := range []string{"vm1", "vm2"} {
		rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM, sp, hp, vm, "1024")
		if err != nil || rec.State != tropic.StateCommitted {
			t.Fatalf("spawn %s: %v %v", vm, rec, err)
		}
	}
	// Unexpected reboot: VMs power off behind TROPIC's back.
	if err := cloud.PowerOffHost(tcloud.ComputeHostName(0)); err != nil {
		t.Fatal(err)
	}
	if err := cloud.PowerOnHost(tcloud.ComputeHostName(0)); err != nil {
		t.Fatal(err)
	}
	for _, vm := range []string{"vm1", "vm2"} {
		if cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs[vm].State != device.VMStopped {
			t.Fatalf("%s not powered off by reboot", vm)
		}
	}
	if err := c.Repair(ctx, hp); err != nil {
		t.Fatalf("repair: %v", err)
	}
	for _, vm := range []string{"vm1", "vm2"} {
		if cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs[vm].State != device.VMRunning {
			t.Fatalf("%s not restarted by repair", vm)
		}
	}
}

// TestRepairCleansFailedTransactionOrphans drives the §4 scenario (i):
// a failed undo leaves partially rolled-back physical state; repair
// removes the orphans and clears the inconsistency marks, after which
// transactions on the subtree work again.
func TestRepairCleansFailedTransactionOrphans(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	inj := device.NewInjector(3)
	inj.Add(device.FaultRule{Action: "createVM", Err: "xen error"})
	inj.Add(device.FaultRule{Action: "unimportImage", Err: "stuck device"})
	cloud.SetFaultInjector(inj)

	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil || rec.State != tropic.StateFailed {
		t.Fatalf("want failed txn, got %v %v", rec, err)
	}
	inj.Clear()

	// Orphans: import on the compute host, clone+export on storage.
	if !cloud.ComputeHost(tcloud.ComputeHostName(0)).Imports["vm1-img"] {
		t.Fatal("setup: no orphan import")
	}
	if cloud.StorageHost(tcloud.StorageHostName(0)).Images["vm1-img"] == nil {
		t.Fatal("setup: no orphan image")
	}

	if err := c.Repair(ctx, tcloud.ComputeHostPath(0)); err != nil {
		t.Fatalf("repair compute: %v", err)
	}
	if err := c.Repair(ctx, tcloud.StorageHostPath(0)); err != nil {
		t.Fatalf("repair storage: %v", err)
	}
	if cloud.ComputeHost(tcloud.ComputeHostName(0)).Imports["vm1-img"] {
		t.Fatal("orphan import survived repair")
	}
	if cloud.StorageHost(tcloud.StorageHostName(0)).Images["vm1-img"] != nil {
		t.Fatal("orphan image survived repair")
	}
	// The subtree accepts transactions again.
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawn after repair: %v %v", rec, err)
	}
}

// TestReloadAddsOutOfBandDevice covers §4 scenario (ii): an operator
// adds a physical resource directly; reload imports it into the logical
// model and transactions can use it.
func TestReloadAddsOutOfBandDevice(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	cloud.AddComputeServer("extraHost", "xen", 8192)
	newPath := tcloud.VMRoot + "/extraHost"
	// Unknown to the logical layer: a spawn there aborts.
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), newPath, "vm1", "1024")
	if err != nil || rec.State != tropic.StateAborted {
		t.Fatalf("spawn on unknown host: %v %v", rec, err)
	}
	if err := c.Reload(ctx, newPath); err != nil {
		t.Fatalf("reload: %v", err)
	}
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), newPath, "vm1", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawn after reload: %v %v", rec, err)
	}
}

// TestReloadRemovesDecommissionedDevice: the inverse — a host vanishes
// physically; reload drops it from the logical model.
func TestReloadRemovesDecommissionedDevice(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Decommission host 1 out-of-band (white-box: remove from the
	// simulated inventory by snapshotting around it is not exposed, so
	// emulate via a fresh cloud... simplest is the storage API).
	// The device package has no RemoveComputeServer; decommissioning is
	// represented by reloading a path that no longer exists physically.
	// Emulate by reloading a never-existing host after deleting it
	// logically is meaningless, so instead decommission an image.
	if err := cloud.OutOfBandRemoveImage(tcloud.StorageHostName(0), tcloud.TemplateImage); err != nil {
		t.Fatal(err)
	}
	imgPath := tcloud.StorageHostPath(0) + "/" + tcloud.TemplateImage
	if err := c.Reload(ctx, imgPath); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if p.Leader().LogicalTree().Exists(imgPath) {
		t.Fatal("logical template survived reload of removed volume")
	}
	// Spawns from this storage host now abort in simulation (no
	// template), without touching devices.
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil || rec.State != tropic.StateAborted {
		t.Fatalf("spawn without template: %v %v", rec, err)
	}
}

// TestReloadAbortsOnConstraintViolation: reload must not install
// physical state that violates constraints (§4: "If any constraints are
// violated, reload is aborted").
func TestReloadAbortsOnConstraintViolation(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 1, HostMemMB: 8192})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// White-box out-of-band violation: an operator hand-defines a VM
	// that over-commits the host.
	h := cloud.ComputeHost(tcloud.ComputeHostName(0))
	h.VMs["rogue"] = &device.VM{Name: "rogue", Image: "x", MemMB: 999999, State: device.VMStopped}

	err := c.Reload(ctx, tcloud.ComputeHostPath(0))
	if err == nil || !strings.Contains(err.Error(), "vm-memory") {
		t.Fatalf("reload err = %v, want vm-memory violation", err)
	}
	// Logical layer unchanged.
	if p.Leader().LogicalTree().Exists(tcloud.ComputeHostPath(0) + "/rogue") {
		t.Fatal("violating state installed despite abort")
	}
}

// TestReconcileBusyUnderInFlightTransaction: reconciliation must not
// run under a subtree with outstanding transactions.
func TestReconcileBusyUnderInFlightTransaction(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	inj := device.NewInjector(1)
	inj.Add(device.FaultRule{Action: "startVM", Delay: 600 * time.Millisecond})
	cloud.SetFaultInjector(inj)

	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	id, err := c.Submit(tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil {
		t.Fatal(err)
	}
	// Give the transaction time to reach the physical layer (it stalls
	// in startVM for 600ms).
	time.Sleep(150 * time.Millisecond)
	err = c.Repair(ctx, tcloud.ComputeHostPath(0))
	if err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("repair under in-flight txn: err = %v, want busy", err)
	}
	rec, err := c.Wait(ctx, id)
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("txn: %v %v", rec, err)
	}
	// Idle now: repair succeeds (no divergence, zero actions).
	if err := c.Repair(ctx, tcloud.ComputeHostPath(0)); err != nil {
		t.Fatalf("repair after commit: %v", err)
	}
}

// TestTermSignalQueuedTransaction: TERM aborts a transaction that has
// not started, with no device activity.
func TestTermSignalStartedTransaction(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	inj := device.NewInjector(1)
	// Stall the 3rd action so the TERM lands mid-execution.
	inj.Add(device.FaultRule{Action: "importImage", Delay: 500 * time.Millisecond})
	cloud.SetFaultInjector(inj)

	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	id, err := c.Submit(tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let it start executing
	if err := c.Signal(id, tropic.SignalTerm); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateAborted {
		t.Fatalf("state = %s (%s), want aborted", rec.State, rec.Error)
	}
	// Graceful: both layers clean.
	h := cloud.ComputeHost(tcloud.ComputeHostName(0))
	if len(h.VMs) != 0 || len(h.Imports) != 0 {
		t.Fatalf("device leftovers after TERM: %v %v", h.VMs, h.Imports)
	}
	if len(cloud.StorageHost(tcloud.StorageHostName(0)).Images) != 1 {
		t.Fatal("storage leftovers after TERM")
	}
	if p.Leader().LogicalTree().Exists(tcloud.ComputeHostPath(0) + "/vm1") {
		t.Fatal("logical leftovers after TERM")
	}
}

// TestKillSignalLeavesInconsistencyForRepair: KILL aborts immediately in
// the logical layer only; the worker's physical effects become an
// inconsistency that repair reconciles (§4).
func TestKillSignalLeavesInconsistencyForRepair(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	inj := device.NewInjector(1)
	inj.Add(device.FaultRule{Action: "createVM", Delay: 500 * time.Millisecond})
	cloud.SetFaultInjector(inj)

	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	id, err := c.Submit(tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // mid-execution
	if err := c.Signal(id, tropic.SignalKill); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateAborted {
		t.Fatalf("state = %s, want aborted (KILL)", rec.State)
	}
	// Logical layer rolled back instantly.
	if p.Leader().LogicalTree().Exists(tcloud.ComputeHostPath(0) + "/vm1") {
		t.Fatal("logical layer kept vm1 after KILL")
	}
	// Wait for the worker to finish the stalled physical execution,
	// which proceeds to completion behind the kill.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := cloud.VMInfo(tcloud.ComputeHostName(0), "vm1"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never finished physical execution")
		}
		time.Sleep(20 * time.Millisecond)
	}
	inj.Clear()
	// Cross-layer divergence now exists; repair removes the orphan VM.
	if err := c.Repair(ctx, tcloud.ComputeHostPath(0)); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs["vm1"] != nil {
		t.Fatal("orphan VM survived repair")
	}
	// And storage-side orphans.
	if err := c.Repair(ctx, tcloud.StorageHostPath(0)); err != nil {
		t.Fatalf("repair storage: %v", err)
	}
	// Subtree usable again.
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm2", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawn after repair: %v %v", rec, err)
	}
}

func TestTermSignalQueuedTransaction(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 1})
	inj := device.NewInjector(1)
	// First txn stalls holding the host lock, so the second stays
	// queued (deferred) long enough to TERM it.
	inj.Add(device.FaultRule{Action: "startVM", Delay: 700 * time.Millisecond})
	cloud.SetFaultInjector(inj)

	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	id1, err := c.Submit(tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	id2, err := c.Submit(tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm2", "1024")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // id2 accepted, deferred behind id1
	if err := c.Signal(id2, tropic.SignalTerm); err != nil {
		t.Fatal(err)
	}
	rec2, err := c.Wait(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.State != tropic.StateAborted {
		t.Fatalf("queued TERM state = %s, want aborted", rec2.State)
	}
	// vm2 never touched the devices.
	if cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs["vm2"] != nil {
		t.Fatal("TERMed queued txn still executed")
	}
	rec1, err := c.Wait(ctx, id1)
	if err != nil || rec1.State != tropic.StateCommitted {
		t.Fatalf("first txn: %v %v", rec1, err)
	}
}
