package tropic_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/tcloud"
	"repro/tropic"
)

// TestRepairConvergenceProperty: whatever combination of out-of-band
// corruptions hits the devices, repair must drive the physical layer
// back to the logical state (the §4 eventual-consistency guarantee).
// Randomized but seeded, so failures reproduce.
func TestRepairConvergenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 4})
			c := p.Client()
			defer c.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			// Build a small fleet.
			rng := rand.New(rand.NewSource(seed))
			var vms []struct {
				host int
				name string
			}
			for i := 0; i < 6; i++ {
				host := rng.Intn(4)
				name := fmt.Sprintf("pvm%d", i)
				rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
					tcloud.StorageHostPath(host/4), tcloud.ComputeHostPath(host), name, "1024")
				if err != nil || rec.State != tropic.StateCommitted {
					t.Fatalf("spawn %s: %v %v", name, rec, err)
				}
				vms = append(vms, struct {
					host int
					name string
				}{host, name})
			}

			// Random out-of-band corruption.
			for _, vm := range vms {
				switch rng.Intn(3) {
				case 0:
					if err := cloud.OutOfBandStopVM(tcloud.ComputeHostName(vm.host), vm.name); err != nil {
						t.Fatal(err)
					}
				case 1:
					// Reboot the whole host (stops every VM on it).
					cloud.PowerOffHost(tcloud.ComputeHostName(vm.host))
					cloud.PowerOnHost(tcloud.ComputeHostName(vm.host))
				case 2:
					// leave alone
				}
			}

			// Repair every compute host, then verify convergence.
			for h := 0; h < 4; h++ {
				if err := c.Repair(ctx, tcloud.ComputeHostPath(h)); err != nil {
					t.Fatalf("repair host %d: %v", h, err)
				}
			}
			for _, vm := range vms {
				dev := cloud.ComputeHost(tcloud.ComputeHostName(vm.host)).VMs[vm.name]
				if dev == nil || dev.State != "running" {
					t.Fatalf("vm %s not restored: %+v", vm.name, dev)
				}
			}
			// Full-subtree repair is now a no-op.
			if err := c.Repair(ctx, tcloud.VMRoot); err != nil {
				t.Fatalf("final repair: %v", err)
			}
		})
	}
}

// TestSerializabilityProperty: concurrent random workloads never
// over-commit host memory or lose VMs — the isolation invariant under
// pressure. Final physical state must equal final logical state.
func TestSerializabilityProperty(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2, HostMemMB: 4096})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// 12 clients race 2048MB spawns at 2 hosts with 2 slots each; at
	// most 4 can ever be placed.
	results := make(chan tropic.State, 12)
	for i := 0; i < 12; i++ {
		go func(i int) {
			c := p.Client()
			defer c.Close()
			rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
				tcloud.StorageHostPath(0), tcloud.ComputeHostPath(i%2),
				fmt.Sprintf("svm%02d", i), "2048")
			if err != nil {
				t.Errorf("spawn %d: %v", i, err)
				results <- tropic.StateFailed
				return
			}
			results <- rec.State
		}(i)
	}
	committed := 0
	for i := 0; i < 12; i++ {
		if <-results == tropic.StateCommitted {
			committed++
		}
	}
	if committed != 4 {
		t.Errorf("committed = %d, want exactly 4 (capacity)", committed)
	}
	for h := 0; h < 2; h++ {
		var mem int64
		for _, vm := range cloud.ComputeHost(tcloud.ComputeHostName(h)).VMs {
			mem += vm.MemMB
		}
		if mem > 4096 {
			t.Errorf("host %d over-committed: %dMB", h, mem)
		}
	}
	// Logical and physical agree.
	c := p.Client()
	defer c.Close()
	if err := c.Repair(ctx, tcloud.VMRoot); err != nil {
		t.Fatalf("repair (should be no-op): %v", err)
	}
	if n := p.Leader().LockManager().LockCount(); n != 0 {
		t.Fatalf("%d locks leaked", n)
	}
}
