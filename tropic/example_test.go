package tropic_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/tropic"
)

// Example defines a two-slot resource pool as a TROPIC service and runs
// three allocations: the first two commit, the third violates the
// capacity constraint during logical simulation and aborts without any
// effect — the platform's ACID contract in miniature.
func Example() {
	schema := tropic.NewSchema()
	schema.Entity("pool").
		Action(&tropic.ActionDef{
			Name: "alloc",
			Simulate: func(t *tropic.Tree, path string, args []string) error {
				_, err := t.Create(path+"/"+args[0], "slot", nil)
				return err
			},
			Undo: "free",
		}).
		Action(&tropic.ActionDef{
			Name: "free",
			Simulate: func(t *tropic.Tree, path string, args []string) error {
				return t.Delete(path + "/" + args[0])
			},
			Undo: "alloc",
		}).
		Constrain(tropic.Constraint{
			Name: "capacity",
			Check: func(t *tropic.Tree, path string, n *tropic.Node) error {
				if len(n.Children) > 2 {
					return fmt.Errorf("%d allocations exceed 2 slots", len(n.Children))
				}
				return nil
			},
		})
	schema.Entity("slot")

	boot := tropic.NewTree()
	if _, err := boot.Create("/pool", "pool", nil); err != nil {
		log.Fatal(err)
	}

	p, err := tropic.New(tropic.Config{
		Schema: schema,
		Procedures: map[string]tropic.Procedure{
			"allocate": func(c *tropic.Ctx) error {
				return c.Do("/pool", "alloc", c.Arg(0))
			},
		},
		Bootstrap: boot,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer p.Stop()

	cli := p.Client()
	defer cli.Close()
	for _, tenant := range []string{"alice", "bob", "carol"} {
		rec, err := cli.SubmitAndWait(ctx, "allocate", tenant)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", tenant, rec.State)
	}

	// Output:
	// alice: committed
	// bob: committed
	// carol: aborted
}
