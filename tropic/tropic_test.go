package tropic_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/reconcile"
	"repro/tcloud"
	"repro/tropic"
	"repro/tropic/trerr"
)

// newTCloud spins up a physical-mode platform over simulated devices.
func newTCloud(t *testing.T, tp tcloud.Topology) (*tropic.Platform, *device.Cloud) {
	t.Helper()
	cloud, err := tp.BuildCloud()
	if err != nil {
		t.Fatal(err)
	}
	p, err := tropic.New(tropic.Config{
		Schema:         tcloud.NewSchema(),
		Procedures:     tcloud.Procedures(),
		Bootstrap:      cloud.Snapshot(),
		Executor:       cloud,
		Reconciler:     reconcile.New(cloud, cloud, tcloud.RepairRules()),
		SessionTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	return p, cloud
}

func TestSpawnVMCommits(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 4})
	c := p.Client()
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if rec.State != tropic.StateCommitted {
		t.Fatalf("state = %s (%s), want committed", rec.State, rec.Error)
	}
	// Table 1: exactly five actions with their undos.
	if len(rec.Log) != 5 {
		t.Fatalf("log has %d records, want 5: %v", len(rec.Log), rec.Log)
	}
	wantActions := []string{"cloneImage", "exportImage", "importImage", "createVM", "startVM"}
	wantUndos := []string{"removeImage", "unexportImage", "unimportImage", "removeVM", "stopVM"}
	for i, r := range rec.Log {
		if r.Action != wantActions[i] || r.Undo != wantUndos[i] {
			t.Errorf("record %d = %s/%s, want %s/%s", i+1, r.Action, r.Undo, wantActions[i], wantUndos[i])
		}
	}
	// Physical state reflects the commit.
	h := cloud.ComputeHost(tcloud.ComputeHostName(0))
	if vm := h.VMs["vm1"]; vm == nil || vm.State != device.VMRunning {
		t.Fatalf("physical vm1 = %+v", h.VMs["vm1"])
	}
	// Logical and physical layers agree.
	leader := p.Leader()
	if leader == nil {
		t.Fatal("no leader")
	}
	lvm, err := leader.LogicalTree().Get(tcloud.ComputeHostPath(0) + "/vm1")
	if err != nil || lvm.GetString("state") != "running" {
		t.Fatalf("logical vm1: %v %v", lvm, err)
	}
}

func TestFullVMLifecycle(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 4})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	sp, hp := tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0)
	steps := []struct {
		proc string
		args []string
	}{
		{tcloud.ProcSpawnVM, []string{sp, hp, "vm1", "1024"}},
		{tcloud.ProcStopVM, []string{hp, "vm1"}},
		{tcloud.ProcStartVM, []string{hp, "vm1"}},
		{tcloud.ProcMigrateVM, []string{hp, "vm1", tcloud.ComputeHostPath(1)}},
		{tcloud.ProcDestroyVM, []string{tcloud.ComputeHostPath(1), "vm1", sp}},
	}
	for _, s := range steps {
		rec, err := c.SubmitAndWait(ctx, s.proc, s.args...)
		if err != nil {
			t.Fatalf("%s: %v", s.proc, err)
		}
		if rec.State != tropic.StateCommitted {
			t.Fatalf("%s: state = %s (%s)", s.proc, rec.State, rec.Error)
		}
	}
	// Everything cleaned up physically.
	if len(cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs) != 0 ||
		len(cloud.ComputeHost(tcloud.ComputeHostName(1)).VMs) != 0 {
		t.Fatal("VMs remain after destroy")
	}
	s := cloud.StorageHost(tcloud.StorageHostName(0))
	if len(s.Images) != 1 {
		t.Fatalf("images remain after destroy: %v", s.Images)
	}
}

func TestConstraintViolationAbortsBeforePhysical(t *testing.T) {
	// Host 0 fits 2 VMs of 4096MB; the third spawn must abort in the
	// logical layer without touching devices.
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2, HostMemMB: 8192})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	sp, hp := tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0)
	for i := 0; i < 2; i++ {
		rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM, sp, hp, vmName(i), "4096")
		if err != nil || rec.State != tropic.StateCommitted {
			t.Fatalf("spawn %d: %v %v", i, rec, err)
		}
	}
	clonesBefore := cloud.Calls("cloneImage")
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM, sp, hp, "vm-over", "4096")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateAborted {
		t.Fatalf("state = %s, want aborted", rec.State)
	}
	if rec.Error == "" {
		t.Fatal("aborted without reason")
	}
	if got := cloud.Calls("cloneImage"); got != clonesBefore {
		t.Fatalf("constraint abort still touched devices: %d clones", got-clonesBefore)
	}
	if len(cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs) != 2 {
		t.Fatal("VM count changed")
	}
}

func TestCrossHypervisorMigrationAborted(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 4, MixedHypervisors: true})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	sp := tcloud.StorageHostPath(0)
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM, sp, tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawn: %v %v", rec, err)
	}
	// Host 1 is kvm (mixed); vm1 was built on xen host 0.
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcMigrateVM,
		tcloud.ComputeHostPath(0), "vm1", tcloud.ComputeHostPath(1))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateAborted {
		t.Fatalf("cross-hypervisor migrate state = %s, want aborted", rec.State)
	}
	if cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs["vm1"] == nil {
		t.Fatal("vm1 moved despite abort")
	}
	// Same-hypervisor migration (host 2 is xen) commits.
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcMigrateVM,
		tcloud.ComputeHostPath(0), "vm1", tcloud.ComputeHostPath(2))
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("xen->xen migrate: %v %v", rec, err)
	}
}

func TestPhysicalFailureRollsBackAtomically(t *testing.T) {
	// Inject a failure into the *last* action of spawnVM (startVM), the
	// §6.3 robustness scenario. All four earlier actions must be undone
	// on the devices and the logical layer must show no trace.
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	inj := device.NewInjector(42)
	inj.Add(device.FaultRule{Action: "startVM", Err: "hypervisor crash"})
	cloud.SetFaultInjector(inj)

	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateAborted {
		t.Fatalf("state = %s (%s), want aborted", rec.State, rec.Error)
	}
	if rec.UndoneThrough != 4 {
		t.Fatalf("UndoneThrough = %d, want 4", rec.UndoneThrough)
	}
	// Physical layer: no leftovers (the paper's orphan problem).
	h := cloud.ComputeHost(tcloud.ComputeHostName(0))
	if len(h.VMs) != 0 || len(h.Imports) != 0 {
		t.Fatalf("orphans on compute host: vms=%v imports=%v", h.VMs, h.Imports)
	}
	s := cloud.StorageHost(tcloud.StorageHostName(0))
	if len(s.Images) != 1 {
		t.Fatalf("orphan images: %v", s.Images)
	}
	// Logical layer rolled back too.
	if p.Leader().LogicalTree().Exists(tcloud.ComputeHostPath(0) + "/vm1") {
		t.Fatal("logical layer still has vm1")
	}
	// Locks released.
	if n := p.Leader().LockManager().LockCount(); n != 0 {
		t.Fatalf("%d locks leaked", n)
	}
	// The platform keeps working after the abort.
	inj.Clear()
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("respawn: %v %v", rec, err)
	}
}

func TestUndoFailureMarksFailedAndInconsistent(t *testing.T) {
	// Action 4 (createVM) fails; undo of action 3 (unimportImage) also
	// fails: transaction ends failed, touched nodes are marked
	// inconsistent, and new transactions on them abort until repaired.
	// 8 compute hosts → 2 storage hosts, so an untouched storage host
	// exists for the control spawn.
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 8})
	inj := device.NewInjector(7)
	inj.Add(device.FaultRule{Action: "createVM", Err: "xen error"})
	inj.Add(device.FaultRule{Action: "unimportImage", Err: "stuck device"})
	cloud.SetFaultInjector(inj)

	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateFailed {
		t.Fatalf("state = %s, want failed", rec.State)
	}
	// Orphaned import remains on the device (partial rollback).
	if !cloud.ComputeHost(tcloud.ComputeHostName(0)).Imports["vm1-img"] {
		t.Fatal("expected orphaned import")
	}
	// New transactions on the inconsistent host abort.
	inj.Clear()
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm2", "1024")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateAborted {
		t.Fatalf("txn on inconsistent node: state = %s, want aborted", rec.State)
	}
	// The failed transaction also left the storage host inconsistent
	// (its clone/export were never undone), so it is denied too.
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(1), "vm3", "1024")
	if err != nil || rec.State != tropic.StateAborted {
		t.Fatalf("spawn via inconsistent storage: %v %v", rec, err)
	}
	// Fully disjoint hosts still work.
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(1), tcloud.ComputeHostPath(4), "vm3", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawn on healthy hosts: %v %v", rec, err)
	}
}

func TestConcurrentSpawnsOnDistinctHosts(t *testing.T) {
	const hosts = 8
	p, _ := newTCloud(t, tcloud.Topology{ComputeHosts: hosts})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	type result struct {
		rec *tropic.Txn
		err error
	}
	results := make(chan result, hosts)
	for i := 0; i < hosts; i++ {
		go func(i int) {
			c := p.Client()
			defer c.Close()
			rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
				tcloud.StorageHostPath(i/4), tcloud.ComputeHostPath(i), vmName(i), "1024")
			results <- result{rec, err}
		}(i)
	}
	for i := 0; i < hosts; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("spawn: %v", r.err)
		}
		if r.rec.State != tropic.StateCommitted {
			t.Fatalf("spawn state = %s (%s)", r.rec.State, r.rec.Error)
		}
	}
	if n := p.Leader().LockManager().LockCount(); n != 0 {
		t.Fatalf("%d locks leaked", n)
	}
}

func TestRaceConditionSerializedOnSameHost(t *testing.T) {
	// The paper's §2.1 race: two simultaneous 4096MB spawns on an
	// 8192MB host would both pass a naive check; with a third they
	// exceed memory. TROPIC must commit exactly two and abort one —
	// never over-commit.
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 1, HostMemMB: 8192})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const n = 3
	results := make(chan *tropic.Txn, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			c := p.Client()
			defer c.Close()
			rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
				tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), vmName(i), "4096")
			if err != nil {
				t.Errorf("spawn %d: %v", i, err)
				results <- nil
				return
			}
			results <- rec
		}(i)
	}
	committed, aborted := 0, 0
	for i := 0; i < n; i++ {
		rec := <-results
		if rec == nil {
			continue
		}
		switch rec.State {
		case tropic.StateCommitted:
			committed++
		case tropic.StateAborted:
			aborted++
		}
	}
	if committed != 2 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want 2/1", committed, aborted)
	}
	h := cloud.ComputeHost(tcloud.ComputeHostName(0))
	var mem int64
	for _, vm := range h.VMs {
		mem += vm.MemMB
	}
	if mem > 8192 {
		t.Fatalf("host over-committed: %dMB", mem)
	}
}

func TestProcedureAbortSelf(t *testing.T) {
	p, _ := newTCloud(t, tcloud.Topology{ComputeHosts: 1})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Unknown procedure: rejected synchronously with a typed error
	// instead of producing a doomed transaction.
	if _, err := c.SubmitAndWait(ctx, "noSuchProc"); !errors.Is(err, trerr.TxnUnknownProcedure) {
		t.Fatalf("unknown proc: err = %v, want txn.unknown_procedure", err)
	}
	// Bad args.
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcStartVM)
	if err != nil || rec.State != tropic.StateAborted {
		t.Fatalf("bad args: %v %v", rec, err)
	}
	// Missing VM.
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcStartVM, tcloud.ComputeHostPath(0), "ghost")
	if err != nil || rec.State != tropic.StateAborted {
		t.Fatalf("missing vm: %v %v", rec, err)
	}
}

func TestSpawnVMNetSetsUpVLAN(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVMNet,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1",
		tcloud.SwitchPath(0), "100", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawnVMNet: %v %v", rec, err)
	}
	sw := cloud.NetworkSwitch(tcloud.SwitchName(0))
	if sw.VLANs[100] == nil || !sw.VLANs[100].Ports["vm1.eth0"] {
		t.Fatalf("VLAN state: %+v", sw.VLANs)
	}
	// Second VM on the same VLAN: createVLAN skipped, port attached.
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVMNet,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(1), "vm2",
		tcloud.SwitchPath(0), "100", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("second spawnVMNet: %v %v", rec, err)
	}
	if len(sw.VLANs[100].Ports) != 2 {
		t.Fatalf("ports = %v", sw.VLANs[100].Ports)
	}
}

func vmName(i int) string { return "vm" + string(rune('A'+i)) }
