package tropic

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/proto"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/tropic/trerr"
)

// Session is the orchestration surface shared by the in-process Client
// and the remote tropic/httpclient SDK, so callers can be written once
// and pointed at either. All failures carry trerr taxonomy codes
// (errors.Is-matchable against trerr sentinels) on both implementations.
type Session interface {
	// Submit initiates a transaction and returns its id.
	Submit(proc string, args ...string) (string, error)
	// SubmitIdempotent submits with a client-supplied idempotency key:
	// resubmitting the same key returns the original transaction's id
	// (deduped=true) instead of executing twice.
	SubmitIdempotent(ctx context.Context, key, proc string, args ...string) (id string, deduped bool, err error)
	// SubmitBatch submits several transactions, validating every item
	// before any executes.
	SubmitBatch(ctx context.Context, items []SubmitSpec) ([]SubmitOutcome, error)
	// Get fetches the current record of a transaction.
	Get(id string) (*Txn, error)
	// Wait blocks until the transaction is terminal.
	Wait(ctx context.Context, id string) (*Txn, error)
	// SubmitAndWait submits and waits for the outcome.
	SubmitAndWait(ctx context.Context, proc string, args ...string) (*Txn, error)
	// List pages through transaction records in submission order.
	List(opts ListOptions) (*TxnPage, error)
	// WatchTxn streams the transaction's state transitions until it is
	// terminal; the channel closes after the terminal record.
	WatchTxn(ctx context.Context, id string) (<-chan *Txn, error)
	// Signal sends a TERM or KILL to a transaction.
	Signal(id string, sig Signal) error
	// Repair drives physical state back to the logical state (§4).
	Repair(ctx context.Context, target string) error
	// Reload synchronizes logical state from the physical state (§4).
	Reload(ctx context.Context, target string) error
	// Close releases the session.
	Close()
}

var _ Session = (*Client)(nil)

// ListOptions filter and paginate List.
type ListOptions struct {
	// State, when non-empty, keeps only records in that state.
	State State
	// Proc, when non-empty, keeps only invocations of that procedure.
	Proc string
	// Cursor resumes after a previous page: only records with id >
	// Cursor are returned. Transaction ids are store-assigned sequence
	// numbers, so cursors are stable under concurrent submissions.
	Cursor string
	// Limit caps the page size (default 50, max 1000).
	Limit int
}

// TxnPage is one page of List results.
type TxnPage struct {
	// Txns are the matching records in ascending id order. A page may
	// hold fewer records than the limit — even zero — while NextCursor
	// is still set: the scan budget ran out before the page filled.
	// Iteration is complete only when NextCursor comes back empty.
	Txns []*Txn `json:"txns"`
	// NextCursor, when non-empty, fetches the next page when passed as
	// ListOptions.Cursor.
	NextCursor string `json:"nextCursor,omitempty"`
}

// List page-size and per-request scan bounds. The scan cap keeps one
// request with a highly selective filter from reading every record in
// the store; the cursor advances past scanned non-matches, so
// iteration still covers everything.
const (
	listDefaultLimit = 50
	listMaxLimit     = 1000
	listScanCap      = 4096
)

// List pages through the store's transaction records in submission
// order, filtered by state and procedure. Per-request work is bounded:
// at most listScanCap records are examined, so a filter that matches
// nothing costs O(scan cap), not O(all records).
//
// On a sharded platform, listing walks the shards in index order:
// all of shard 0's matching records (ascending local id), then shard
// 1's, and so on. Cursors encode the shard being walked plus its local
// cursor ("s<shard>:<local>"), so one iteration covers every shard
// exactly once; ordering is per-shard, not global submission order.
func (c *Client) List(opts ListOptions) (*TxnPage, error) {
	page, _, err := c.ListAt(opts, -1)
	return page, err
}

// ListAt is List with an explicit zxid watermark (see GetAt; minZxid <
// 0 substitutes the serving shard's own client watermark). The child
// listing and every record read go through the shard's read path; the
// returned zxid is the highest position any of them was served at.
func (c *Client) ListAt(opts ListOptions, minZxid int64) (*TxnPage, int64, error) {
	if c.sharded() {
		return c.listSharded(opts, minZxid)
	}
	if minZxid < 0 {
		minZxid = c.cli.LastWriteZxid()
	}
	limit := opts.Limit
	if limit <= 0 {
		limit = listDefaultLimit
	}
	if limit > listMaxLimit {
		limit = listMaxLimit
	}
	ids, maxZ, err := c.listChildren(proto.TxnsPath, minZxid)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return &TxnPage{}, maxZ, nil // platform not bootstrapped yet: nothing to list
		}
		return nil, 0, err
	}
	page := &TxnPage{}
	scanned := 0
	lastExamined := opts.Cursor
	for _, id := range ids { // Children returns sorted names = ascending ids
		if opts.Cursor != "" && id <= opts.Cursor {
			continue
		}
		if scanned == listScanCap {
			// Scan budget exhausted: resume from the last examined id.
			page.NextCursor = lastExamined
			return page, maxZ, nil
		}
		rec, z, err := c.GetAt(id, minZxid)
		if err != nil {
			if errors.Is(err, trerr.TxnNotFound) {
				continue // record GC'd between Children and Get
			}
			return nil, 0, err
		}
		if z > maxZ {
			maxZ = z
		}
		scanned++
		lastExamined = id
		if opts.State != "" && rec.State != opts.State {
			continue
		}
		if opts.Proc != "" && rec.Proc != opts.Proc {
			continue
		}
		if len(page.Txns) == limit {
			// A further match exists beyond the page: hand out a cursor.
			page.NextCursor = page.Txns[limit-1].ID
			return page, maxZ, nil
		}
		page.Txns = append(page.Txns, rec)
	}
	return page, maxZ, nil
}

// listChildren lists a node's children through the shard's read path
// when the platform has one, falling back to a plain leader read.
func (c *Client) listChildren(path string, minZxid int64) ([]string, int64, error) {
	if c.rp != nil {
		names, z, _, err := c.rp.Children(path, minZxid)
		return names, z, err
	}
	names, err := c.cli.Children(path)
	return names, 0, err
}

// listSharded merges cursor pagination across shards: it serves each
// page from one shard's sub-client and hands out a composite cursor
// naming the next position — within the same shard while it has more
// records, then the start of the next shard.
func (c *Client) listSharded(opts ListOptions, minZxid int64) (*TxnPage, int64, error) {
	s, local := 0, ""
	if opts.Cursor != "" {
		var ok bool
		s, local, ok = parseShardCursor(opts.Cursor, len(c.subs))
		if !ok {
			return nil, 0, trerr.Newf(trerr.APIBadRequest,
				"tropic: list: malformed cursor %q", opts.Cursor).With("cursor", opts.Cursor)
		}
	}
	lopts := opts
	lopts.Cursor = local
	page, z, err := c.subs[s].ListAt(lopts, minZxid)
	if err != nil {
		return nil, 0, err
	}
	for _, rec := range page.Txns {
		if rec.IsChild() {
			// A cross-shard child's record node name IS its full id
			// (embedding its parent's shard prefix); re-qualifying it with
			// the hosting shard would mangle it.
			continue
		}
		rec.ID = shard.FormatID(s, rec.ID)
	}
	switch {
	case page.NextCursor != "":
		page.NextCursor = formatShardCursor(s, page.NextCursor)
	case s+1 < len(c.subs):
		// This shard is exhausted; resume at the next one. The page may
		// be short (even empty) with a cursor still set — the documented
		// TxnPage contract.
		page.NextCursor = formatShardCursor(s+1, "")
	}
	return page, z, nil
}

// formatShardCursor and parseShardCursor encode a shard-qualified List
// position. The format is opaque to callers (cursors round-trip).
func formatShardCursor(shardIdx int, local string) string {
	return fmt.Sprintf("s%d:%s", shardIdx, local)
}

func parseShardCursor(cursor string, shards int) (shardIdx int, local string, ok bool) {
	if len(cursor) < 2 || cursor[0] != 's' {
		return 0, "", false
	}
	colon := strings.IndexByte(cursor, ':')
	if colon <= 1 {
		return 0, "", false
	}
	n, err := strconv.Atoi(cursor[1:colon])
	if err != nil || n < 0 || n >= shards {
		return 0, "", false
	}
	return n, cursor[colon+1:], true
}

// WatchTxn streams the transaction's state transitions: the current
// state immediately, then every observed change, ending with the
// terminal record, after which the channel closes. Transitions faster
// than the store watch round-trip may be coalesced into their
// successor; the terminal state is always delivered. An unknown id
// fails synchronously with trerr.TxnNotFound.
func (c *Client) WatchTxn(ctx context.Context, id string) (<-chan *Txn, error) {
	return c.WatchTxnAt(ctx, id, -1)
}

// WatchTxnAt is WatchTxn with an explicit zxid watermark for the
// initial read (see GetAt; minZxid < 0 substitutes the serving shard's
// own client watermark). On a platform with a read path the stream
// rides the shard's fan-out multiplexer: all concurrent watchers of a
// record share ONE store watch, and the subscription is released the
// moment the stream ends — terminal record, context cancellation (an
// SSE client disconnecting), or session expiry.
func (c *Client) WatchTxnAt(ctx context.Context, id string, minZxid int64) (<-chan *Txn, error) {
	if c.sharded() {
		sub, local, qualify, err := c.locate(id)
		if err != nil {
			return nil, err
		}
		ch, err := sub.WatchTxnAt(ctx, local, minZxid)
		if err != nil {
			return nil, err
		}
		out := make(chan *Txn, 8)
		go func() {
			defer close(out)
			for rec := range ch {
				rec.ID = qualify(rec.ID)
				select {
				case out <- rec:
				case <-ctx.Done():
					return
				}
			}
		}()
		return out, nil
	}
	if c.rp == nil {
		return c.watchTxnLegacy(ctx, id)
	}
	path := proto.TxnsPath + "/" + id
	mux, err := c.rp.Subscribe(path)
	if err != nil {
		return nil, err
	}
	rec, z, err := c.GetAt(id, minZxid)
	if err != nil {
		mux.Close()
		return nil, err
	}
	ch := make(chan *Txn, 8)
	go func() {
		defer close(ch)
		defer mux.Close()
		var last State
		for {
			if rec.State != last {
				last = rec.State
				select {
				case ch <- rec:
				case <-ctx.Done():
					return
				}
			}
			if rec.State.Terminal() {
				return
			}
			select {
			case <-ctx.Done():
				return
			case _, ok := <-mux.C():
				if !ok {
					return
				}
			}
			// Re-read past the position just served (see WaitAt): a
			// cached entry at exactly z would satisfy the watermark and
			// stall the stream on the state the wakeup superseded.
			if rec, z, err = c.GetAt(id, z+1); err != nil {
				return
			}
		}
	}()
	return ch, nil
}

// watchTxnLegacy is the read-path-less stream: one armed store watch
// per observed transition on this client's own session.
func (c *Client) watchTxnLegacy(ctx context.Context, id string) (<-chan *Txn, error) {
	path := proto.TxnsPath + "/" + id
	watch, err := c.cli.WatchNode(path)
	if err != nil {
		return nil, err
	}
	rec, err := c.Get(id)
	if err != nil {
		c.cli.Unwatch(path, watch)
		return nil, err
	}
	ch := make(chan *Txn, 8)
	go func() {
		defer close(ch)
		var last State
		for {
			if rec.State != last {
				last = rec.State
				select {
				case ch <- rec:
				case <-ctx.Done():
					c.cli.Unwatch(path, watch)
					return
				}
			}
			if rec.State.Terminal() {
				c.cli.Unwatch(path, watch)
				return
			}
			select {
			case <-ctx.Done():
				c.cli.Unwatch(path, watch)
				return
			case ev := <-watch:
				if ev.Type == store.EventSessionExpired {
					return
				}
			}
			if watch, err = c.cli.WatchNode(path); err != nil {
				return
			}
			if rec, err = c.Get(id); err != nil {
				c.cli.Unwatch(path, watch)
				return
			}
		}
	}()
	return ch, nil
}

// SubmitSpec describes one submission in a batch.
type SubmitSpec struct {
	Proc string
	Args []string
	// IdempotencyKey, when non-empty, dedups resubmissions of this item.
	IdempotencyKey string
}

// SubmitOutcome reports one accepted batch submission.
type SubmitOutcome struct {
	ID string
	// Deduped is true when the item's idempotency key matched an
	// earlier submission and no new transaction was created.
	Deduped bool
}

// SubmitBatch submits several transactions. Every item is validated
// (procedure registered, idempotency key well-formed) before any is
// submitted, so a bad entry rejects the whole batch with no partial
// execution; validation errors carry a "batchIndex" detail. A failure
// while submitting (after validation) leaves earlier items submitted
// and also reports the failing index.
func (c *Client) SubmitBatch(ctx context.Context, items []SubmitSpec) ([]SubmitOutcome, error) {
	if len(items) == 0 {
		return nil, trerr.New(trerr.SubmitInvalidArgs, "tropic: submit: empty batch")
	}
	for i, item := range items {
		if err := c.ValidateProc(item.Proc); err != nil {
			return nil, batchIndexed(err, i)
		}
		if item.IdempotencyKey != "" && !ValidIdempotencyKey(item.IdempotencyKey) {
			return nil, batchIndexed(trerr.Newf(trerr.SubmitInvalidArgs,
				"tropic: submit: idempotency key %q must be 1-128 chars of [A-Za-z0-9._-]",
				item.IdempotencyKey), i)
		}
	}
	out := make([]SubmitOutcome, 0, len(items))
	for i, item := range items {
		id, deduped, err := c.SubmitIdempotent(ctx, item.IdempotencyKey, item.Proc, item.Args...)
		if err != nil {
			return out, batchIndexed(err, i)
		}
		out = append(out, SubmitOutcome{ID: id, Deduped: deduped})
	}
	return out, nil
}

// batchIndexed annotates a batch-item failure with its index,
// preserving the original error's details and cause chain.
func batchIndexed(err error, i int) error {
	var te *trerr.Error
	if errors.As(err, &te) {
		out := trerr.Wrap(te.Code, err, te.Message)
		for k, v := range te.Details {
			out.With(k, v)
		}
		return out.With("batchIndex", fmt.Sprint(i))
	}
	return err
}

// idemEntry is the payload of an idempotency-key node: an in-flight
// claim (ID empty, ClaimedAt set) or the resolved transaction the
// key's first submission produced. Proc and Args identify the original
// invocation so a key reused with a different payload is rejected
// instead of silently returning the wrong transaction.
type idemEntry struct {
	ID   string   `json:"id,omitempty"`
	Proc string   `json:"proc,omitempty"`
	Args []string `json:"args,omitempty"`
	// ClaimedAt timestamps an in-flight claim so a claim orphaned by a
	// failed cleanup can be taken over instead of wedging the key.
	ClaimedAt time.Time `json:"claimedAt,omitempty"`
}

// staleIdempotencyClaim is how old an unresolved claim must be before a
// waiting resubmission may take it over. Claims normally resolve in
// milliseconds; an older empty claim means its owner failed between
// claiming and recording (and its cleanup Delete also failed), so
// taking over un-wedges the key. A submitter stalled longer than this
// can race the takeover and execute twice — the price of not wedging
// keys forever.
const staleIdempotencyClaim = 30 * time.Second

// ValidIdempotencyKey reports whether key is usable as an idempotency
// key: 1–128 characters from [A-Za-z0-9._-].
func ValidIdempotencyKey(key string) bool {
	if len(key) == 0 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9',
			b == '.', b == '_', b == '-':
		default:
			return false
		}
	}
	return true
}

// SubmitIdempotent submits a transaction under a client-supplied
// idempotency key. The first submission with a key executes normally
// and records its transaction id under the key; any resubmission
// returns that id with deduped=true instead of executing twice. Reusing
// a key for a different procedure fails with
// trerr.SubmitIdempotencyReuse. A concurrent racer that won the key but
// has not yet recorded its id is awaited until ctx expires
// (trerr.SubmitIdempotencyPending). An empty key degrades to a plain
// Submit.
//
// On a sharded platform the key's registry lives on the shard the
// submission's ARGUMENTS route to, so dedup and reuse detection hold
// for resubmissions of the same key+args (and for mismatched args that
// still route to the same shard). Reusing a key with arguments that
// route to a DIFFERENT shard is outside the guard: it lands on a shard
// that never saw the key and executes as a first submission. See
// docs/sharding.md.
//
// The in-flight claim is an ephemeral node — a claimant that crashes
// before recording its id releases the key with its session instead of
// wedging it forever — while the recorded id entry is persistent, so
// dedup survives restarts.
func (c *Client) SubmitIdempotent(ctx context.Context, key, proc string, args ...string) (string, bool, error) {
	if key == "" {
		id, err := c.Submit(proc, args...)
		return id, false, err
	}
	if !ValidIdempotencyKey(key) {
		return "", false, trerr.Newf(trerr.SubmitInvalidArgs,
			"tropic: submit: idempotency key %q must be 1-128 chars of [A-Za-z0-9._-]", key)
	}
	if err := c.ValidateProc(proc); err != nil {
		return "", false, err
	}
	if c.sharded() {
		// The key lives on the shard the arguments route to, so
		// resubmissions of the same (key, args) always consult the same
		// shard's registry. A key reused with different arguments that
		// route to a DIFFERENT shard cannot be detected as reuse — the
		// dedup scope is per shard (see docs/sharding.md). A cross-shard
		// submission's key lives on its COORDINATOR shard (deterministic
		// for a given key+args), guarding the whole parent.
		split := c.planner.Split(proc, args)
		if !split.CrossShard() {
			s := split.Coordinator()
			id, deduped, err := c.subs[s].SubmitIdempotent(ctx, key, proc, args...)
			if err != nil {
				return "", false, err
			}
			return shard.FormatID(s, id), deduped, nil
		}
		if !c.crossShard {
			return "", false, c.rejectCrossShard(proc, args)
		}
		// The recorded id is the (already qualified) parent id, returned
		// verbatim on dedup.
		return c.subs[split.CoordinatorFor(proc, args)].submitIdempotentVia(ctx, key, proc, args,
			func() (string, error) { return c.xSubmit(split, proc, args) })
	}
	return c.submitIdempotentVia(ctx, key, proc, args,
		func() (string, error) { return c.Submit(proc, args...) })
}

// submitIdempotentVia runs the idempotency-key protocol on THIS
// client's store session, submitting through submitFn — its own Submit
// for single-shard work, or the sharded parent's xSubmit when a
// cross-shard submission keys its registry on the coordinator shard.
// key and proc are already validated.
func (c *Client) submitIdempotentVia(ctx context.Context, key, proc string, args []string, submitFn func() (string, error)) (string, bool, error) {
	if err := c.cli.EnsurePath(proto.IdempotencyPath); err != nil {
		return "", false, err
	}
	keyPath := proto.IdempotencyPath + "/" + key
	// Claim the key with a timestamped ephemeral placeholder; exactly
	// one submitter wins the Create and proceeds to execute.
	claim, merr := json.Marshal(idemEntry{Proc: proc, Args: args, ClaimedAt: time.Now()})
	if merr != nil {
		return "", false, fmt.Errorf("tropic: idempotency claim %s: %w", key, merr)
	}
	if _, err := c.cli.Create(keyPath, claim, store.FlagEphemeral); err != nil {
		if !errors.Is(err, store.ErrNodeExists) {
			return "", false, err
		}
		return c.awaitIdempotent(ctx, keyPath, key, proc, args, submitFn)
	}
	id, err := submitFn()
	if err != nil {
		// Release the claim so a corrected retry can reuse the key.
		_ = c.cli.Delete(keyPath, -1)
		return "", false, err
	}
	// The resolved mapping keeps a timestamp so the controller's TTL
	// sweep can reap it once any retry storm has surely passed (the
	// claim-takeover path only consults ClaimedAt while ID is empty).
	entry, merr := json.Marshal(idemEntry{ID: id, Proc: proc, Args: args, ClaimedAt: time.Now()})
	if merr != nil {
		return id, false, nil
	}
	// Promote the ephemeral claim to a persistent entry atomically;
	// best-effort — on failure the claim dies with this session and the
	// key becomes reusable, which can re-execute but never wedges.
	_ = c.cli.Multi(
		store.DeleteOp(keyPath, -1),
		store.CreateOp(keyPath, entry, 0),
	)
	return id, false, nil
}

// awaitIdempotent resolves a lost idempotency race: read the winner's
// recorded id, waiting out the window between its key claim and its id
// write.
func (c *Client) awaitIdempotent(ctx context.Context, keyPath, key, proc string, args []string, submitFn func() (string, error)) (string, bool, error) {
	for {
		watch, err := c.cli.WatchNode(keyPath)
		if err != nil {
			return "", false, err
		}
		data, stat, err := c.cli.Get(keyPath)
		if err != nil {
			c.cli.Unwatch(keyPath, watch)
			if errors.Is(err, store.ErrNoNode) {
				// The winner's submission failed (or its session died)
				// and the claim is gone; take over.
				return c.submitIdempotentVia(ctx, key, proc, args, submitFn)
			}
			return "", false, err
		}
		var e idemEntry
		if len(data) > 0 {
			if err := json.Unmarshal(data, &e); err != nil {
				c.cli.Unwatch(keyPath, watch)
				return "", false, fmt.Errorf("tropic: idempotency entry %s: %w", key, err)
			}
		}
		if e.ID != "" {
			c.cli.Unwatch(keyPath, watch)
			if e.Proc != proc {
				return "", false, trerr.Newf(trerr.SubmitIdempotencyReuse,
					"tropic: idempotency key %q was used for procedure %q, not %q",
					key, e.Proc, proc).With("key", key).With("proc", e.Proc)
			}
			if !slices.Equal(e.Args, args) {
				return "", false, trerr.Newf(trerr.SubmitIdempotencyReuse,
					"tropic: idempotency key %q was used for %s%v, not %s%v",
					key, e.Proc, e.Args, proc, args).With("key", key).With("proc", e.Proc)
			}
			return e.ID, true, nil
		}
		// An unresolved claim. A stale one was orphaned by a claimant
		// whose cleanup failed (e.g. during quorum loss) on a session
		// that never expires; a version-checked delete takes it over
		// without racing the owner's promotion.
		if !e.ClaimedAt.IsZero() && time.Since(e.ClaimedAt) > staleIdempotencyClaim {
			c.cli.Unwatch(keyPath, watch)
			derr := c.cli.Delete(keyPath, stat.Version)
			if derr == nil || errors.Is(derr, store.ErrNoNode) {
				return c.submitIdempotentVia(ctx, key, proc, args, submitFn)
			}
			if errors.Is(derr, store.ErrBadVersion) {
				continue // the claim just resolved; re-read it
			}
			return "", false, derr
		}
		select {
		case <-ctx.Done():
			c.cli.Unwatch(keyPath, watch)
			return "", false, trerr.Wrap(trerr.SubmitIdempotencyPending, ctx.Err(),
				fmt.Sprintf("tropic: idempotency key %q is claimed by an unfinished submission", key)).With("key", key)
		case ev := <-watch:
			if ev.Type == store.EventSessionExpired {
				return "", false, store.ErrSessionExpired
			}
		}
	}
}
