package tropic_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/workload"
	"repro/tcloud"
	"repro/tropic"
)

// TestChaosWorkloadInvariants runs a hosting-style mixed workload while
// devices fail probabilistically, then checks the paper's core
// guarantees as end-state invariants:
//
//   - every transaction reaches a terminal state;
//   - aborted transactions leave no device orphans (atomicity);
//   - constraints hold on the final logical state (consistency);
//   - no locks remain (isolation bookkeeping);
//   - after repairing the failed subtrees, logical == physical
//     (eventual cross-layer consistency).
func TestChaosWorkloadInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const hosts = 8
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: hosts})
	inj := device.NewInjector(1234)
	// ~5% of forward actions fail; undos stay reliable so most failures
	// roll back cleanly (occasional doubles produce failed txns too).
	inj.Add(device.FaultRule{Action: "createVM", Probability: 0.1, Err: "flaky hypervisor"})
	inj.Add(device.FaultRule{Action: "startVM", Probability: 0.05, Err: "flaky boot"})
	inj.Add(device.FaultRule{Action: "migrateVM", Probability: 0.1, Err: "flaky migration"})
	cloud.SetFaultInjector(inj)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cli := p.Client()
	defer cli.Close()

	gen := workload.NewHostingGen(tcloud.Topology{ComputeHosts: hosts},
		workload.DefaultHostingMix(), 99)
	counts := map[tropic.State]int{}
	for i := 0; i < 150; i++ {
		op := gen.Next()
		rec, err := cli.SubmitAndWait(ctx, op.Proc, op.Args...)
		if err != nil {
			t.Fatalf("op %d %s: %v", i, op, err)
		}
		if !rec.State.Terminal() {
			t.Fatalf("op %d non-terminal: %s", i, rec.State)
		}
		counts[rec.State]++
	}
	t.Logf("outcomes: %v", counts)
	if counts[tropic.StateCommitted] == 0 || counts[tropic.StateAborted] == 0 {
		t.Fatalf("chaos did not exercise both outcomes: %v", counts)
	}

	// Isolation bookkeeping: nothing holds locks once quiescent.
	if n := p.Leader().LockManager().LockCount(); n != 0 {
		t.Fatalf("%d locks leaked", n)
	}

	// Consistency: the final logical state satisfies every constraint.
	inj.Clear()
	lt := p.Leader().LogicalTree()
	schema := p.Leader().Schema()
	err := lt.Walk(func(path string, n *tropic.Node) error {
		return schema.CheckConstraints(lt, path)
	})
	if err != nil {
		t.Fatalf("final logical state violates constraints: %v", err)
	}

	// Eventual cross-layer consistency: repair every host (failed txns
	// may have quarantined some), then the layers must agree.
	for h := 0; h < hosts; h++ {
		if err := cli.Repair(ctx, tcloud.ComputeHostPath(h)); err != nil {
			t.Fatalf("repair host %d: %v", h, err)
		}
	}
	storageHosts := (tcloud.Topology{ComputeHosts: hosts}).StorageHosts()
	for s := 0; s < storageHosts; s++ {
		if err := cli.Repair(ctx, tcloud.StorageHostPath(s)); err != nil {
			t.Fatalf("repair storage %d: %v", s, err)
		}
	}
	if err := cli.Repair(ctx, tcloud.VMRoot); err != nil {
		t.Fatalf("final repair: %v", err)
	}
	if err := cli.Repair(ctx, tcloud.StorageRoot); err != nil {
		t.Fatalf("final storage repair: %v", err)
	}
}
