package tropic_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/tcloud"
	"repro/tropic"
)

// newReadPathPlatform builds a logical-only platform with the scalable
// read path on: follower reads plus the watch-invalidated cache.
func newReadPathPlatform(t *testing.T, hosts int, followerReads bool, cacheBytes int64) *tropic.Platform {
	t.Helper()
	p, err := tropic.New(tropic.Config{
		Schema:         tcloud.NewSchema(),
		Procedures:     tcloud.Procedures(),
		Bootstrap:      tcloud.Topology{ComputeHosts: hosts}.BuildModel(),
		Executor:       tropic.NoopExecutor{},
		SessionTimeout: 150 * time.Millisecond,
		FollowerReads:  followerReads,
		ReadCacheBytes: cacheBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	return p
}

// TestSessionConsistencyUnderChurn is the read path's core property:
// a read carrying the session's zxid watermark NEVER observes state
// older than the session's own writes — whichever replica serves it,
// and regardless of store-replica churn and controller failover
// happening underneath. Stale reads would show up here as TxnNotFound
// (record not yet applied on the serving replica) or a non-terminal
// state after SubmitAndWait returned a terminal one.
func TestSessionConsistencyUnderChurn(t *testing.T) {
	const hosts = 4
	p := newReadPathPlatform(t, hosts, true, 1<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	c := p.Client()
	defer c.Close()

	// Store-replica churn: continuously stop and restart followers so
	// watermark checks constantly face stale and catching-up replicas.
	var stop atomic.Bool
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		e := p.Ensemble()
		for i := 0; !stop.Load(); i++ {
			r := 1 + i%2 // never more than one replica down: quorum holds
			e.StopReplica(r)
			time.Sleep(2 * time.Millisecond)
			e.StartReplica(r)
		}
	}()
	defer func() { stop.Store(true); <-churnDone }()

	for i := 0; i < 40; i++ {
		if i == 20 {
			// Mid-run controller failover: the submit/read contract must
			// hold across leader churn too.
			if p.KillLeader() == "" {
				t.Fatal("no leader to kill")
			}
		}
		rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
			tcloud.StorageHostPath(i%hosts), tcloud.ComputeHostPath(i%hosts),
			fmt.Sprintf("scvm%03d", i), "1024")
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if !rec.State.Terminal() {
			t.Fatalf("submit %d returned non-terminal %s", i, rec.State)
		}

		// The explicit watermark form: demand the session's own position.
		got, z, err := c.GetAt(rec.ID, c.Watermark())
		if err != nil {
			t.Fatalf("GetAt(%s) after submit: %v", rec.ID, err)
		}
		if got.State != rec.State {
			t.Fatalf("GetAt(%s) = %s, want the terminal %s observed at submit",
				rec.ID, got.State, rec.State)
		}
		if z < c.Watermark() {
			t.Fatalf("GetAt returned zxid %d behind the session watermark %d", z, c.Watermark())
		}

		// The implicit form: plain Get carries the watermark internally.
		got2, err := c.Get(rec.ID)
		if err != nil {
			t.Fatalf("Get(%s): %v", rec.ID, err)
		}
		if got2.State != rec.State {
			t.Fatalf("Get(%s) = %s, want %s", rec.ID, got2.State, rec.State)
		}
	}

	// The property must have been exercised by the follower path, not
	// satisfied vacuously by leader fall-throughs.
	rs := p.ReadStats()[0]
	if rs.FollowerServed+rs.CacheServed == 0 {
		t.Errorf("all %d reads fell through to the leader; follower path never exercised (stats %+v)",
			rs.LeaderServed, rs)
	}
}

// TestLeaderOnlyAblationConfig pins the ablation wiring: FollowerReads
// off must serve every read from the leader and report it that way.
func TestLeaderOnlyAblationConfig(t *testing.T) {
	const hosts = 2
	p := newReadPathPlatform(t, hosts, false, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	info := p.PipelineInfo()
	if info.FollowerReads || info.ReadCacheBytes != 0 {
		t.Fatalf("PipelineInfo = followerReads=%v cache=%d, want ablation baseline",
			info.FollowerReads, info.ReadCacheBytes)
	}

	c := p.Client()
	defer c.Close()
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "abvm", "1024")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(rec.ID); err != nil {
		t.Fatal(err)
	}
	rs := p.ReadStats()[0]
	if rs.FollowerServed != 0 || rs.CacheServed != 0 {
		t.Errorf("ablation served %d follower / %d cache reads, want 0/0",
			rs.FollowerServed, rs.CacheServed)
	}
	if rs.LeaderServed == 0 {
		t.Errorf("no leader-served reads recorded")
	}
}

// TestReadPathConfigPlumbing pins the resolved config surface the
// daemon logs and /v1/stats export.
func TestReadPathConfigPlumbing(t *testing.T) {
	p := newReadPathPlatform(t, 2, true, 4<<20)
	info := p.PipelineInfo()
	if !info.FollowerReads {
		t.Errorf("PipelineInfo.FollowerReads = false, want true")
	}
	if info.ReadCacheBytes != 4<<20 {
		t.Errorf("PipelineInfo.ReadCacheBytes = %d, want %d", info.ReadCacheBytes, 4<<20)
	}
	rs := p.ReadStats()
	if len(rs) != 1 {
		t.Fatalf("ReadStats len = %d, want 1", len(rs))
	}
	if !rs[0].FollowerReads || rs[0].CacheBytesMax != 4<<20 {
		t.Errorf("ReadStats[0] = %+v, want follower reads with 4MiB budget", rs[0])
	}
}
