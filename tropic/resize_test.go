package tropic_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/device"
	"repro/tcloud"
	"repro/tropic"
)

func TestResizeVMCommits(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 2})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	sp, hp := tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0)
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM, sp, hp, "vm1", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawn: %v %v", rec, err)
	}
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcResizeVM, hp, "vm1", "2048")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("resize: %v %v", rec, err)
	}
	// Physical state: resized and running again (it was running).
	vm := cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs["vm1"]
	if vm.MemMB != 2048 || vm.State != device.VMRunning {
		t.Fatalf("vm = %+v", vm)
	}
	// The log is stop → setVMMem → start, with the undo capturing 1024.
	if len(rec.Log) != 3 || rec.Log[1].Action != "setVMMem" {
		t.Fatalf("log = %v", rec.Log)
	}
	if rec.Log[1].UndoArgs[1] != "1024" {
		t.Fatalf("undo args = %v, want original 1024", rec.Log[1].UndoArgs)
	}
}

func TestResizeVMConstraintAbort(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 1, HostMemMB: 4096})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	sp, hp := tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0)
	for _, vm := range []string{"a", "b"} {
		rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM, sp, hp, vm, "2048")
		if err != nil || rec.State != tropic.StateCommitted {
			t.Fatalf("spawn %s: %v %v", vm, rec, err)
		}
	}
	// Growing "a" to 4096 would over-commit (4096+2048 > 4096): abort
	// before any device call, with "a" still running at 2048.
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcResizeVM, hp, "a", "4096")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateAborted {
		t.Fatalf("state = %s", rec.State)
	}
	vm := cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs["a"]
	if vm.MemMB != 2048 || vm.State != device.VMRunning {
		t.Fatalf("vm mutated by aborted resize: %+v", vm)
	}
}

func TestResizeVMPhysicalFailureRestoresOriginal(t *testing.T) {
	p, cloud := newTCloud(t, tcloud.Topology{ComputeHosts: 1})
	c := p.Client()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	sp, hp := tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0)
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM, sp, hp, "vm1", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawn: %v %v", rec, err)
	}
	// Fail the final startVM of the resize: the undo chain must restore
	// the original 1024MB reservation and restart the VM.
	inj := device.NewInjector(9)
	inj.Add(device.FaultRule{Action: "startVM", FailOn: 1, Err: "flaky"})
	cloud.SetFaultInjector(inj)
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcResizeVM, hp, "vm1", "4096")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateAborted {
		t.Fatalf("state = %s (%s)", rec.State, rec.Error)
	}
	vm := cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs["vm1"]
	if vm.MemMB != 1024 {
		t.Fatalf("memMB = %d after rollback, want 1024", vm.MemMB)
	}
	if vm.State != device.VMRunning {
		t.Fatalf("state = %s after rollback, want running (undo of stopVM)", vm.State)
	}
	// Logical layer agrees.
	lvm, _ := p.Leader().LogicalTree().Get(hp + "/vm1")
	if lvm.GetInt("memMB") != 1024 || lvm.GetString("state") != "running" {
		t.Fatalf("logical vm = %+v", lvm.Attrs)
	}
}
