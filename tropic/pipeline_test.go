package tropic_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/tcloud"
	"repro/tropic"
)

// minimalPlatform starts a tiny logical-only platform with the given
// batching configuration.
func minimalPlatform(t *testing.T, batchMaxOps int) *tropic.Platform {
	t.Helper()
	p, err := tropic.New(tropic.Config{
		Schema:      tcloud.NewSchema(),
		Procedures:  tcloud.Procedures(),
		Bootstrap:   tcloud.Topology{ComputeHosts: 4}.BuildModel(),
		Controllers: 1,
		BatchMaxOps: batchMaxOps,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	return p
}

// TestPipelineConfigDefaults: zero-valued batching knobs resolve to the
// documented defaults, and they surface through PipelineInfo.
func TestPipelineConfigDefaults(t *testing.T) {
	p := minimalPlatform(t, 0)
	info := p.PipelineInfo()
	if info.BatchMaxOps != 32 {
		t.Fatalf("BatchMaxOps = %d, want default 32", info.BatchMaxOps)
	}
	if info.BatchMaxDelayMs != 2 {
		t.Fatalf("BatchMaxDelayMs = %v, want 2", info.BatchMaxDelayMs)
	}
	if info.WorkerClaimBatch != 4 {
		t.Fatalf("WorkerClaimBatch = %d, want 4 (batched default)", info.WorkerClaimBatch)
	}

	unbatched := minimalPlatform(t, 1)
	info = unbatched.PipelineInfo()
	if info.BatchMaxOps != 1 || info.WorkerClaimBatch != 1 {
		t.Fatalf("unbatched info = %+v, want BatchMaxOps=1 WorkerClaimBatch=1", info)
	}
}

// TestBatchedSubmitLifecycle: the group-committed submission path (one
// atomic record+notice commit, client-generated ids) produces distinct
// ids under concurrency and every transaction reaches committed.
func TestBatchedSubmitLifecycle(t *testing.T) {
	p := minimalPlatform(t, 32)
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	const n = 8
	ids := make(chan string, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			id, err := cli.Submit(tcloud.ProcSpawnVM,
				tcloud.StorageHostPath(i%1), tcloud.ComputeHostPath(i%4),
				fmt.Sprintf("bvm%d", i), "1024")
			if err != nil {
				errs <- err
				return
			}
			ids <- id
		}()
	}
	seen := make(map[string]bool)
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case id := <-ids:
			if seen[id] {
				t.Fatalf("duplicate transaction id %q", id)
			}
			seen[id] = true
		}
	}
	for id := range seen {
		rec, err := cli.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State != tropic.StateCommitted {
			t.Fatalf("txn %s: %s (%s)", id, rec.State, rec.Error)
		}
		if rec.ID != id {
			t.Fatalf("record id %q != submitted id %q", rec.ID, id)
		}
	}
	// Depth gauges drain to zero once everything committed.
	depths := p.QueueDepths()
	if depths.InQ != 0 || depths.PhyQ != 0 || depths.TodoQ != 0 {
		t.Fatalf("queue depths after drain = %+v", depths)
	}
}

// TestUnbatchedSubmitStillWorks pins the legacy per-item path that the
// ablation benchmarks depend on.
func TestUnbatchedSubmitStillWorks(t *testing.T) {
	p := minimalPlatform(t, 1)
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rec, err := cli.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "uvm", "1024")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != tropic.StateCommitted {
		t.Fatalf("state = %s (%s)", rec.State, rec.Error)
	}
	if st := p.ControllerStats(); st.InBatches != 0 {
		t.Fatalf("unbatched platform recorded %d drain batches", st.InBatches)
	}
}
