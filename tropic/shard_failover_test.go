package tropic_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/tcloud"
	"repro/tropic"
)

// TestShardedFailoverUnderBatching extends the batch-boundary
// leader-crash test (internal/controller) to a sharded platform: kill
// ONE shard's lead controller in the middle of a grouped-commit
// workload. The other shards must keep committing throughout the
// victim shard's failover window, the victim shard must finish every
// transaction after its follower takes over, and no shard may lose or
// duplicate phyQ work (per-shard device-action counts are exact).
func TestShardedFailoverUnderBatching(t *testing.T) {
	const (
		shards = 2
		hosts  = 12
		rounds = 4
	)
	p, err := tropic.New(tropic.Config{
		Schema:     tcloud.NewSchema(),
		Procedures: tcloud.Procedures(),
		// Generous storage/memory capacity: the failover window below
		// hammers one shard-1 host with as many spawns as fit in the
		// window, and capacity aborts would muddy the availability
		// assertion.
		Bootstrap: tcloud.Topology{
			ComputeHosts: hosts, ComputePerStorage: 1,
			StorageCapGB: 1 << 20, HostMemMB: 1 << 20,
		}.BuildModel(),
		Executor:    tropic.NoopExecutor{Latency: 3 * time.Millisecond},
		Shards:      shards,
		Controllers: 3,
		// A wider failure-detection interval holds the victim shard
		// leaderless long enough to demonstrate the other shard
		// committing inside the window.
		SessionTimeout: 400 * time.Millisecond,
		BatchMaxOps:    32, // group commit ON — the regression under test
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	cli := p.Client()
	defer cli.Close()

	storage, compute, covered := shardLocalSpawns(t, p, hosts)
	if len(covered) < shards {
		t.Fatalf("workload covers %d shards, want %d", len(covered), shards)
	}

	// Fire a grouped-commit stream at every shard.
	spawnsPerShard := make(map[int]int)
	var ids []string
	for r := 0; r < rounds; r++ {
		for i := range compute {
			id, err := cli.Submit(tcloud.ProcSpawnVM, storage[i], compute[i],
				fmt.Sprintf("fvm%d_%d", r, i), "1024")
			if err != nil {
				t.Fatal(err)
			}
			s, _ := p.ShardOf(tcloud.ProcSpawnVM, compute[i])
			spawnsPerShard[s]++
			ids = append(ids, id)
		}
	}

	// Let shard 0 get mid-flight, then crash its leader between grouped
	// flushes.
	deadline := time.Now().Add(30 * time.Second)
	for p.ShardWorker(0).Stats().Committed < int64(spawnsPerShard[0])/4 {
		if time.Now().After(deadline) {
			t.Fatal("shard 0 pipeline never got going")
		}
		time.Sleep(time.Millisecond)
	}
	killed := p.KillShardLeader(0)
	if killed == "" {
		t.Fatal("shard 0 has no leader to kill")
	}

	// While shard 0 is leaderless, the OTHER shard keeps serving: submit
	// fresh shard-1 transactions end to end inside the failover window.
	var shard1Storage, shard1Host string
	for i := range compute {
		if s, _ := p.ShardOf(tcloud.ProcSpawnVM, compute[i]); s == 1 {
			shard1Storage, shard1Host = storage[i], compute[i]
			break
		}
	}
	if shard1Host == "" {
		t.Fatal("no shard-1 spawn target")
	}
	progressed := 0
	for i := 0; ; i++ {
		if l := p.ShardLeader(0); l != nil && l.Name() != killed {
			break // victim shard re-elected; window over
		}
		wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
		rec, err := cli.SubmitAndWait(wctx, tcloud.ProcSpawnVM,
			shard1Storage, shard1Host, fmt.Sprintf("wvm%d", i), "1024")
		wcancel()
		if err != nil {
			t.Fatalf("shard 1 submission during shard 0 failover: %v", err)
		}
		if rec.State != tropic.StateCommitted {
			t.Fatalf("shard 1 txn during failover: %s (%s)", rec.State, rec.Error)
		}
		ids = append(ids, rec.ID)
		spawnsPerShard[1]++
		progressed++
	}
	if progressed == 0 {
		t.Fatal("no shard-1 transaction completed during shard 0's failover window")
	}
	t.Logf("shard 1 committed %d transactions while shard 0 failed over (killed %s)", progressed, killed)

	// Every transaction on every shard reaches committed.
	for _, id := range ids {
		rec, err := cli.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if rec.State != tropic.StateCommitted {
			t.Fatalf("txn %s: %s (%s)", id, rec.State, rec.Error)
		}
	}

	// Exactly-once phyQ execution per shard across the crash: spawnVM
	// replays exactly 5 device actions per committed transaction, so a
	// lost or duplicated phyQ entry shows up as a count mismatch.
	for s := 0; s < shards; s++ {
		want := int64(5 * spawnsPerShard[s])
		if got := p.ShardWorker(s).Stats().Actions; got != want {
			t.Fatalf("shard %d device actions = %d, want exactly %d", s, got, want)
		}
	}
	// No orphaned locks anywhere after the dust settles.
	for s := 0; s < shards; s++ {
		lead := p.ShardLeader(s)
		if lead == nil {
			t.Fatalf("shard %d has no leader after failover", s)
		}
		if n := lead.LockManager().LockCount(); n != 0 {
			t.Fatalf("shard %d leaked %d locks", s, n)
		}
	}
}
