package tropic_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/tcloud"
	"repro/tropic"
	"repro/tropic/trerr"
)

// xshardPlatform starts a sharded platform with one counting executor
// per shard, so tests can assert WHERE (and how often) every physical
// action ran. mut, when non-nil, adjusts the config before New.
func xshardPlatform(t *testing.T, shards, hosts, controllers int, mut func(*tropic.Config)) (*tropic.Platform, []*countingExecutor) {
	t.Helper()
	execs := make([]tropic.Executor, shards)
	counters := make([]*countingExecutor, shards)
	for i := range execs {
		counters[i] = newCountingExecutor(tropic.NoopExecutor{})
		execs[i] = counters[i]
	}
	cfg := tropic.Config{
		Schema:         tcloud.NewSchema(),
		Procedures:     tcloud.Procedures(),
		Bootstrap:      tcloud.Topology{ComputeHosts: hosts, ComputePerStorage: 1}.BuildModel(),
		ShardExecutors: execs,
		Shards:         shards,
		Controllers:    controllers,
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := tropic.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	return p, counters
}

// crossShardPairs returns (storage, compute) host pairs whose resource
// roots hash to DIFFERENT shards, with the owning shards alongside.
func crossShardPairs(t *testing.T, p *tropic.Platform, hosts int) (pairs [][2]string, shardsOf [][2]int) {
	t.Helper()
	for i := 0; i < hosts; i++ {
		for j := 0; j < hosts; j++ {
			sp, hp := tcloud.StorageHostPath(i), tcloud.ComputeHostPath(j)
			ss, _ := p.ShardOf(tcloud.ProcSpawnVM, sp)
			hs, _ := p.ShardOf(tcloud.ProcSpawnVM, hp)
			if ss != hs {
				pairs = append(pairs, [2]string{sp, hp})
				shardsOf = append(shardsOf, [2]int{ss, hs})
			}
		}
	}
	if len(pairs) == 0 {
		t.Fatal("no cross-shard (storage, compute) pair found (degenerate layout)")
	}
	return pairs, shardsOf
}

// drainAndCheckLocks waits for every shard's queues to empty and
// asserts no shard's recovered lock table leaks a lock.
func drainAndCheckLocks(t *testing.T, p *tropic.Platform, shards int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		d := p.QueueDepths()
		if d.InQ == 0 && d.PhyQ == 0 && d.TodoQ == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queues never drained: %+v", d)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Prepared children release locks only at decision time; poll
	// briefly so late child-done/decide messages settle.
	deadline = time.Now().Add(10 * time.Second)
	for {
		leaked := 0
		for i := 0; i < shards; i++ {
			lead := p.ShardLeader(i)
			if lead == nil {
				t.Fatalf("shard %d has no leader", i)
			}
			leaked += lead.LockManager().LockCount()
		}
		if leaked == 0 {
			return
		}
		if time.Now().After(deadline) {
			for i := 0; i < shards; i++ {
				t.Logf("shard %d locks: %d", i, p.ShardLeader(i).LockManager().LockCount())
			}
			t.Fatalf("%d locks leaked across shards", leaked)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrossShardCommit: a submission spanning two shards (storage host
// on one, compute host on another) commits atomically with cross-shard
// execution enabled (the default): the parent and both children end
// committed, the durable decision is "commit", and every one of the
// five spawn actions executed exactly once — each on the shard owning
// its path.
func TestCrossShardCommit(t *testing.T) {
	const shards, hosts = 3, 12
	p, counters := xshardPlatform(t, shards, hosts, 1, nil)
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	pairs, owners := crossShardPairs(t, p, hosts)
	storage, compute := pairs[0][0], pairs[0][1]
	sShard, cShard := owners[0][0], owners[0][1]
	const vm = "xcommitvm"

	id, err := cli.Submit(tcloud.ProcSpawnVM, storage, compute, vm, "1024")
	if err != nil {
		t.Fatalf("cross-shard submit: %v", err)
	}
	rec, err := cli.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	if rec.State != tropic.StateCommitted {
		t.Fatalf("parent %s = %s (%s)", id, rec.State, rec.Error)
	}
	if rec.Decision != "commit" {
		t.Fatalf("parent decision = %q, want commit", rec.Decision)
	}
	if len(rec.Children) != 2 {
		t.Fatalf("parent has %d children, want 2: %+v", len(rec.Children), rec.Children)
	}
	sawDeciding := false
	for _, stamp := range rec.History {
		if stamp.State == tropic.StateDeciding {
			sawDeciding = true
		}
	}
	if !sawDeciding {
		t.Fatalf("parent history has no deciding stamp: %+v", rec.History)
	}
	for _, ref := range rec.Children {
		if ref.State != tropic.StateCommitted {
			t.Fatalf("child %s = %s (%s)", ref.ID, ref.State, ref.Error)
		}
		child, err := cli.Get(ref.ID)
		if err != nil {
			t.Fatalf("get child %s: %v", ref.ID, err)
		}
		if child.State != tropic.StateCommitted || child.Parent != id {
			t.Fatalf("child record %s: %s parent=%q", ref.ID, child.State, child.Parent)
		}
		// Each child's wait resolves too (terminal already).
		if w, err := cli.Wait(ctx, ref.ID); err != nil || w.State != tropic.StateCommitted {
			t.Fatalf("wait child %s: %v %v", ref.ID, w, err)
		}
	}

	// Physical effects: exactly once each, on the owning shard, nowhere
	// else. The two storage-side actions ran on the storage host's
	// shard; the three compute-side actions on the compute host's.
	img := tcloud.ImageName(vm)
	keys := map[int][]string{
		sShard: {
			"cloneImage " + storage + " " + tcloud.TemplateImage + "," + img,
			"exportImage " + storage + " " + img,
		},
		cShard: {
			"importImage " + compute + " " + img,
			"createVM " + compute + " " + vm + "," + img + ",1024",
			"startVM " + compute + " " + vm,
		},
	}
	for shardIdx, sigs := range keys {
		for _, key := range sigs {
			for i, ce := range counters {
				want := 0
				if i == shardIdx {
					want = 1
				}
				if got := ce.count(key); got != want {
					t.Fatalf("shard %d executed %q %d times, want %d", i, key, got, want)
				}
			}
		}
	}

	// Both participants' logical trees agree the VM exists (each child
	// applied the full simulation to its own tree).
	drainAndCheckLocks(t, p, shards)
	for _, s := range []int{sShard, cShard} {
		if !p.ShardLeader(s).LogicalTree().Exists(compute + "/" + vm) {
			t.Fatalf("shard %d logical tree lost %s/%s", s, compute, vm)
		}
	}
}

// TestCrossShardAbort: a spanning submission that violates a constraint
// during prepare (absurd memory demand) aborts atomically — parent
// aborted with xshard.prepare_failed, every child terminal aborted, no
// physical action ever ran, and no locks leak.
func TestCrossShardAbort(t *testing.T) {
	const shards, hosts = 3, 12
	p, counters := xshardPlatform(t, shards, hosts, 1, nil)
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	pairs, _ := crossShardPairs(t, p, hosts)
	storage, compute := pairs[0][0], pairs[0][1]

	rec, err := cli.SubmitAndWait(ctx, tcloud.ProcSpawnVM, storage, compute, "xabortvm", "99999999")
	if err != nil {
		t.Fatalf("submit+wait: %v", err)
	}
	if rec.State != tropic.StateAborted {
		t.Fatalf("parent = %s (%s), want aborted", rec.State, rec.Error)
	}
	if rec.Code != string(trerr.XShardPrepareFailed) {
		t.Fatalf("parent code = %q, want %s", rec.Code, trerr.XShardPrepareFailed)
	}
	for _, ref := range rec.Children {
		if ref.State != tropic.StateAborted {
			t.Fatalf("child %s = %s, want aborted", ref.ID, ref.State)
		}
	}
	// Nothing physical happened anywhere: aborts are decided at prepare,
	// before any child enters phyQ.
	for i, ce := range counters {
		if dups := ce.duplicates(); len(dups) != 0 {
			t.Fatalf("shard %d duplicates: %v", i, dups)
		}
		if n := ce.count("cloneImage " + storage + " " + tcloud.TemplateImage + "," + tcloud.ImageName("xabortvm")); n != 0 {
			t.Fatalf("aborted txn executed cloneImage %d times", n)
		}
	}
	drainAndCheckLocks(t, p, shards)
	for i := 0; i < shards; i++ {
		if p.ShardLeader(i).LogicalTree().Exists(compute + "/xabortvm") {
			t.Fatalf("aborted txn left logical effects on shard %d", i)
		}
	}
}

// TestCrossShardMatrix is the seeded commit/abort regression matrix: a
// shuffled mix of cross-shard spawns — some viable, some doomed by the
// vm-memory constraint — plus same-shard traffic on every shard. All
// transactions reach terminal states, committed ones have exact
// physical effects executed exactly once on the owning shards, aborted
// ones leave none, and no locks leak anywhere. The matrix runs on BOTH
// message-flow arms: the coalesced fast path and the per-round-trip
// slow path must produce identical outcomes.
func TestCrossShardMatrix(t *testing.T) {
	t.Run("fastpath", func(t *testing.T) {
		runCrossShardMatrix(t, tropic.XShardFastPathEnabled)
	})
	t.Run("slowpath", func(t *testing.T) {
		runCrossShardMatrix(t, tropic.XShardFastPathDisabled)
	})
}

func runCrossShardMatrix(t *testing.T, mode tropic.XShardFastPathMode) {
	const shards, hosts, seed = 3, 12, 2012
	p, counters := xshardPlatform(t, shards, hosts, 1, func(cfg *tropic.Config) {
		cfg.XShardFastPath = mode
	})
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pairs, owners := crossShardPairs(t, p, hosts)
	rng := rand.New(rand.NewSource(seed))

	type sub struct {
		id, vm, compute string
		cShard          int
		doomed          bool
	}
	var subs []sub
	// Cross-shard mix: every pair (capped), alternating viable/doomed by
	// the seeded rng.
	n := len(pairs)
	if n > 24 {
		n = 24
	}
	for i := 0; i < n; i++ {
		pi := rng.Intn(len(pairs))
		doomed := rng.Intn(3) == 0
		vm := fmt.Sprintf("mxvm%02d", i)
		mem := "512"
		if doomed {
			mem = "99999999"
		}
		id, err := cli.Submit(tcloud.ProcSpawnVM, pairs[pi][0], pairs[pi][1], vm, mem)
		if err != nil {
			t.Fatalf("cross submit %d: %v", i, err)
		}
		subs = append(subs, sub{id: id, vm: vm, compute: pairs[pi][1], cShard: owners[pi][1], doomed: doomed})
	}
	// Same-shard traffic interleaved on every shard.
	storageLocal, computeLocal, covered := shardLocalSpawns(t, p, hosts)
	if len(covered) < 2 {
		t.Fatalf("local workload covers %d shards", len(covered))
	}
	for i := range computeLocal {
		vm := fmt.Sprintf("mlvm%02d", i)
		id, err := cli.Submit(tcloud.ProcSpawnVM, storageLocal[i], computeLocal[i], vm, "512")
		if err != nil {
			t.Fatalf("local submit %d: %v", i, err)
		}
		s, _ := p.ShardOf(tcloud.ProcSpawnVM, computeLocal[i])
		subs = append(subs, sub{id: id, vm: vm, compute: computeLocal[i], cShard: s})
	}

	committed, aborted := 0, 0
	for _, sb := range subs {
		rec, err := cli.Wait(ctx, sb.id)
		if err != nil {
			t.Fatalf("wait %s: %v", sb.id, err)
		}
		if !rec.State.Terminal() {
			t.Fatalf("txn %s non-terminal: %s", sb.id, rec.State)
		}
		switch {
		case sb.doomed && rec.State != tropic.StateAborted:
			t.Fatalf("doomed txn %s = %s (%s)", sb.id, rec.State, rec.Error)
		case !sb.doomed && rec.State != tropic.StateCommitted:
			t.Fatalf("viable txn %s = %s (%s)", sb.id, rec.State, rec.Error)
		}
		for _, ref := range rec.Children {
			if !ref.State.Terminal() {
				t.Fatalf("txn %s child %s non-terminal: %s", sb.id, ref.ID, ref.State)
			}
		}
		if rec.State == tropic.StateCommitted {
			committed++
		} else {
			aborted++
		}
		// Physical effects exact: the committed spawn's startVM ran once
		// on the compute host's shard; aborted spawns ran nothing.
		key := "startVM " + sb.compute + " " + sb.vm
		for i, ce := range counters {
			want := 0
			if rec.State == tropic.StateCommitted && i == sb.cShard {
				want = 1
			}
			if got := ce.count(key); got != want {
				t.Fatalf("txn %s (%s): shard %d ran %q %d times, want %d",
					sb.id, rec.State, i, key, got, want)
			}
		}
	}
	if committed == 0 || aborted == 0 {
		t.Fatalf("degenerate matrix: %d committed, %d aborted", committed, aborted)
	}
	for i, ce := range counters {
		if dups := ce.duplicates(); len(dups) != 0 {
			t.Fatalf("shard %d executed %d signatures more than once:\n%s",
				i, len(dups), strings.Join(dups, "\n"))
		}
	}
	drainAndCheckLocks(t, p, shards)
}

// TestCrossShardCoordinatorCrash is the acceptance chaos test: the
// coordinator shard's LEADER is killed between the PREPARE fan-out and
// the decision (via the protocol hook, so the window is exact). The
// shard's follower must recover the in-flight parent from its record,
// collect the (durable) votes, decide, and drive every child to a
// terminal state — with exactly-once physical execution and no orphaned
// locks on any shard.
func TestCrossShardCoordinatorCrash(t *testing.T) {
	const shards, hosts = 3, 12
	var p *tropic.Platform
	var once sync.Once
	killedCh := make(chan string, 1)
	pp, counters := xshardPlatform(t, shards, hosts, 3, func(cfg *tropic.Config) {
		cfg.SessionTimeout = 150 * time.Millisecond
		cfg.CrossShardHook = func(s int, event, parentID string) {
			if event != "prepare_sent" {
				return
			}
			once.Do(func() {
				name := p.KillShardLeader(s)
				killedCh <- fmt.Sprintf("shard %d leader %s", s, name)
			})
		}
	})
	p = pp
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pairs, owners := crossShardPairs(t, p, hosts)
	storage, compute := pairs[0][0], pairs[0][1]
	sShard, cShard := owners[0][0], owners[0][1]
	const vm = "xcrashvm"

	id, err := cli.Submit(tcloud.ProcSpawnVM, storage, compute, vm, "1024")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case who := <-killedCh:
		t.Logf("killed %s between PREPARE and decision", who)
	case <-time.After(20 * time.Second):
		t.Fatal("hook never fired")
	}

	rec, err := cli.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	// The votes are durable (prepared child records) and the failover
	// (~SessionTimeout) is far inside the 10s prepare deadline, so the
	// recovered coordinator must resolve the in-doubt parent to COMMIT.
	if rec.State != tropic.StateCommitted {
		t.Fatalf("parent after coordinator crash = %s (%s / %s)", rec.State, rec.Code, rec.Error)
	}
	for _, ref := range rec.Children {
		if ref.State != tropic.StateCommitted {
			t.Fatalf("child %s = %s (%s)", ref.ID, ref.State, ref.Error)
		}
	}
	// Exactly-once physical execution across the failover: every spawn
	// action ran once, on its owning shard, despite recovery re-sending
	// prepares and decisions.
	img := tcloud.ImageName(vm)
	for i, ce := range counters {
		if dups := ce.duplicates(); len(dups) != 0 {
			t.Fatalf("shard %d executed signatures more than once (phyQ duplicated):\n%s",
				i, strings.Join(dups, "\n"))
		}
		wantClone, wantStart := 0, 0
		if i == sShard {
			wantClone = 1
		}
		if i == cShard {
			wantStart = 1
		}
		if got := ce.count("cloneImage " + storage + " " + tcloud.TemplateImage + "," + img); got != wantClone {
			t.Fatalf("shard %d ran cloneImage %d times, want %d", i, got, wantClone)
		}
		if got := ce.count("startVM " + compute + " " + vm); got != wantStart {
			t.Fatalf("shard %d ran startVM %d times, want %d", i, got, wantStart)
		}
	}
	drainAndCheckLocks(t, p, shards)
	// The recovered coordinator shard has a live leader and the
	// committed effects are in the owning trees.
	if !p.ShardLeader(cShard).LogicalTree().Exists(compute + "/" + vm) {
		t.Fatalf("compute shard %d lost %s/%s after the crash", cShard, compute, vm)
	}
	// The platform keeps serving cross-shard work after the failover.
	rec2, err := cli.SubmitAndWait(ctx, tcloud.ProcSpawnVM, storage, compute, "xcrashvm2", "1024")
	if err != nil || rec2.State != tropic.StateCommitted {
		t.Fatalf("post-crash cross-shard spawn: %v %v", rec2, err)
	}
}

// TestCrossShardContentionNoInDoubtAborts is the reversed-lock-order
// chaos suite: many concurrent spanning transactions all contending on
// ONE (storage, compute) pair, so each participant shard receives the
// same children in racing, potentially inverted orders. Deterministic
// global prepare ordering (parent-id order with wound-wait) must
// resolve every inversion WITHOUT tripping the prepare deadline: zero
// xshard.indoubt_timeout aborts, every transaction terminal, and
// exactly-once physical execution for the committed ones.
func TestCrossShardContentionNoInDoubtAborts(t *testing.T) {
	const shards, hosts, seed, txns = 2, 8, 511, 12
	p, counters := xshardPlatform(t, shards, hosts, 1, func(cfg *tropic.Config) {
		// A generous deadline: the test completes far sooner, so any
		// indoubt abort would be a protocol failure (a real deadlock or
		// lost decision), not an artifact of a tight timer.
		cfg.XShardPrepareTimeout = 30 * time.Second
		// All transactions target ONE pair by design; size the hosts so
		// capacity constraints never mask the contention result.
		cfg.Bootstrap = tcloud.Topology{
			ComputeHosts: hosts, ComputePerStorage: 1,
			StorageCapGB: 1 << 20, HostMemMB: 1 << 20,
		}.BuildModel()
	})
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pairs, _ := crossShardPairs(t, p, hosts)
	storage, compute := pairs[0][0], pairs[0][1]

	// Seeded shuffle of the submission order; all submissions race
	// concurrently so participant shards interleave prepares freely.
	order := rand.New(rand.NewSource(seed)).Perm(txns)
	ids := make([]string, txns)
	var wg sync.WaitGroup
	errs := make([]error, txns)
	for _, i := range order {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = cli.Submit(tcloud.ProcSpawnVM,
				storage, compute, fmt.Sprintf("cnvm%02d", i), "1")
		}(i)
	}
	wg.Wait()

	committed, wounded := 0, 0
	for i, id := range ids {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		rec, err := cli.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if !rec.State.Terminal() {
			t.Fatalf("txn %s non-terminal: %s", id, rec.State)
		}
		if rec.Code == string(trerr.XShardInDoubtTimeout) {
			t.Errorf("txn %s aborted in-doubt (%s) — prepare deadline hit under contention", id, rec.Error)
		}
		switch rec.State {
		case tropic.StateCommitted:
			committed++
		case tropic.StateAborted:
			if rec.Code == string(trerr.XShardWounded) {
				wounded++
			} else {
				t.Errorf("txn %s aborted with %s (%s)", id, rec.Code, rec.Error)
			}
		}
	}
	t.Logf("contention run: %d committed, %d wounded of %d", committed, wounded, txns)
	if committed == 0 {
		t.Fatalf("nothing committed under contention")
	}
	// Exactly-once physical execution: no action signature ran twice on
	// any shard, wounded transactions left no physical effects.
	for i, ce := range counters {
		if dups := ce.duplicates(); len(dups) != 0 {
			t.Fatalf("shard %d executed signatures more than once:\n%s",
				i, strings.Join(dups, "\n"))
		}
	}
	drainAndCheckLocks(t, p, shards)
}

// TestCrossShardCoordinatorCrashAfterDecision kills the coordinator's
// leader immediately after the DECISION is durable (the piggybacked
// write that rode the final vote's event round) but before fan-out is
// guaranteed delivered. Recovery must read the decision off the parent
// record and finish driving both children to COMMITTED — never re-vote,
// never double-execute.
func TestCrossShardCoordinatorCrashAfterDecision(t *testing.T) {
	const shards, hosts = 3, 12
	var p *tropic.Platform
	var once sync.Once
	killedCh := make(chan string, 1)
	pp, counters := xshardPlatform(t, shards, hosts, 3, func(cfg *tropic.Config) {
		cfg.SessionTimeout = 150 * time.Millisecond
		cfg.CrossShardHook = func(s int, event, parentID string) {
			if event != "decided" {
				return
			}
			once.Do(func() {
				name := p.KillShardLeader(s)
				killedCh <- fmt.Sprintf("shard %d leader %s", s, name)
			})
		}
	})
	p = pp
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pairs, owners := crossShardPairs(t, p, hosts)
	storage, compute := pairs[0][0], pairs[0][1]
	sShard, cShard := owners[0][0], owners[0][1]
	const vm = "xdecvm"

	id, err := cli.Submit(tcloud.ProcSpawnVM, storage, compute, vm, "1024")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case who := <-killedCh:
		t.Logf("killed %s after the durable decision", who)
	case <-time.After(20 * time.Second):
		t.Fatal("decided hook never fired")
	}

	rec, err := cli.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	// The decision was durable before the crash; recovery may only
	// re-deliver it, never reconsider it.
	if rec.State != tropic.StateCommitted || rec.Decision != "commit" {
		t.Fatalf("parent after post-decision crash = %s decision %q (%s)",
			rec.State, rec.Decision, rec.Error)
	}
	for _, ref := range rec.Children {
		if ref.State != tropic.StateCommitted {
			t.Fatalf("child %s = %s (%s)", ref.ID, ref.State, ref.Error)
		}
	}
	img := tcloud.ImageName(vm)
	for i, ce := range counters {
		if dups := ce.duplicates(); len(dups) != 0 {
			t.Fatalf("shard %d executed signatures more than once:\n%s",
				i, strings.Join(dups, "\n"))
		}
		wantClone, wantStart := 0, 0
		if i == sShard {
			wantClone = 1
		}
		if i == cShard {
			wantStart = 1
		}
		if got := ce.count("cloneImage " + storage + " " + tcloud.TemplateImage + "," + img); got != wantClone {
			t.Fatalf("shard %d ran cloneImage %d times, want %d", i, got, wantClone)
		}
		if got := ce.count("startVM " + compute + " " + vm); got != wantStart {
			t.Fatalf("shard %d ran startVM %d times, want %d", i, got, wantStart)
		}
	}
	drainAndCheckLocks(t, p, shards)
}

// TestCrossShardBoundedLedgerGC: with checkpointing and terminal-record
// retention configured, a stream of cross-shard transactions leaves
// each shard's record set BOUNDED — parents and children are reaped
// once (and only once) their cross-shard ledger is fully terminal — and
// TTL-swept idempotency claims do not accumulate.
func TestCrossShardBoundedLedgerGC(t *testing.T) {
	const shards, hosts, txns = 2, 8, 10
	p, _ := xshardPlatform(t, shards, hosts, 1, func(cfg *tropic.Config) {
		cfg.CheckpointEvery = 2
		cfg.RetainTerminal = 2
		cfg.IdempotencyTTL = 100 * time.Millisecond
		// The stream reuses one pair; capacity must not cap the run.
		cfg.Bootstrap = tcloud.Topology{
			ComputeHosts: hosts, ComputePerStorage: 1,
			StorageCapGB: 1 << 20, HostMemMB: 1 << 20,
		}.BuildModel()
	})
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pairs, _ := crossShardPairs(t, p, hosts)
	storage, compute := pairs[0][0], pairs[0][1]
	for i := 0; i < txns; i++ {
		key := fmt.Sprintf("gc-key-%02d", i)
		id, _, err := cli.SubmitIdempotent(ctx, key, tcloud.ProcSpawnVM,
			storage, compute, fmt.Sprintf("gcvm%02d", i), "1")
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		rec, err := cli.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if rec.State != tropic.StateCommitted {
			t.Fatalf("txn %d = %s (%s)", i, rec.State, rec.Error)
		}
	}

	// Each committed cross-shard transaction left a parent plus one
	// child per participant; with RetainTerminal=2 the sweep must drain
	// them all down to the retention bound (+ records the most recent
	// checkpoint hasn't folded yet). The idempotency claims expire by
	// TTL at the same sweeps.
	count := func(shard int, path string) int {
		c := p.ShardEnsemble(shard).Connect()
		defer c.Close()
		names, err := c.Children(path)
		if err != nil {
			return 0
		}
		return len(names)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		recs, claims := 0, 0
		for s := 0; s < shards; s++ {
			recs += count(s, proto.TxnsPath)
			claims += count(s, proto.IdempotencyPath)
		}
		// Retention bound per shard plus slack for the tail the last
		// checkpoint hasn't folded (checkpoints fire every 2 commits).
		if recs <= shards*5 && claims == 0 {
			t.Logf("ledger bounded: %d records, %d claims across %d shards", recs, claims, shards)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ledger not bounded: %d records, %d claims remain", recs, claims)
		}
		// Keep the pipeline ticking so checkpoints keep firing.
		rec, err := cli.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
			storage, compute, fmt.Sprintf("gctick%d", time.Now().UnixNano()), "1")
		if err != nil || rec.State != tropic.StateCommitted {
			t.Fatalf("tick spawn: %v %v", rec, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	drainAndCheckLocks(t, p, shards)
}

// TestCrossShardDurableRestart: the coordinator's decision record and
// the children's states live in each shard's durable store, so a full
// process restart (every shard's WAL replayed by internal/store/persist)
// preserves the committed cross-shard transaction end to end, and the
// restarted platform keeps executing new cross-shard work.
func TestCrossShardDurableRestart(t *testing.T) {
	const shards, hosts = 2, 8
	dir := t.TempDir()
	build := func() *tropic.Platform {
		p, err := tropic.New(tropic.Config{
			Schema:      tcloud.NewSchema(),
			Procedures:  tcloud.Procedures(),
			Bootstrap:   tcloud.Topology{ComputeHosts: hosts, ComputePerStorage: 1}.BuildModel(),
			Controllers: 1,
			Shards:      shards,
			DataDir:     dir,
			SyncPolicy:  tropic.SyncNone,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := p.Start(ctx); err != nil {
			t.Fatal(err)
		}
		return p
	}

	p := build()
	cli := p.Client()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	pairs, _ := crossShardPairs(t, p, hosts)
	storage, compute := pairs[0][0], pairs[0][1]
	rec, err := cli.SubmitAndWait(ctx, tcloud.ProcSpawnVM, storage, compute, "xdurvm", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("cross-shard spawn: %v %v", rec, err)
	}
	id := rec.ID
	childIDs := make([]string, len(rec.Children))
	for i, ref := range rec.Children {
		childIDs[i] = ref.ID
	}
	cli.Close()
	if err := p.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	p2 := build()
	t.Cleanup(func() { p2.Stop() })
	cli2 := p2.Client()
	defer cli2.Close()
	got, err := cli2.Get(id)
	if err != nil {
		t.Fatalf("get parent after restart: %v", err)
	}
	if got.State != tropic.StateCommitted || got.Decision != "commit" {
		t.Fatalf("restarted parent = %s decision %q", got.State, got.Decision)
	}
	for _, cid := range childIDs {
		child, err := cli2.Get(cid)
		if err != nil {
			t.Fatalf("get child %s after restart: %v", cid, err)
		}
		if child.State != tropic.StateCommitted || child.Parent != id {
			t.Fatalf("restarted child %s = %s parent %q", cid, child.State, child.Parent)
		}
	}
	rec2, err := cli2.SubmitAndWait(ctx, tcloud.ProcSpawnVM, storage, compute, "xdurvm2", "1024")
	if err != nil || rec2.State != tropic.StateCommitted {
		t.Fatalf("post-restart cross-shard spawn: %v %v", rec2, err)
	}
}

// TestConfigShardsValidation: a negative shard count is rejected at
// construction with a typed api.bad_request-style error instead of a
// runtime panic or a silent single-shard fallback; 0 still selects the
// documented default of one shard.
func TestConfigShardsValidation(t *testing.T) {
	base := tropic.Config{
		Schema:     tcloud.NewSchema(),
		Procedures: tcloud.Procedures(),
		Bootstrap:  tcloud.Topology{ComputeHosts: 2}.BuildModel(),
	}
	bad := base
	bad.Shards = -1
	if _, err := tropic.New(bad); !errors.Is(err, trerr.APIBadRequest) {
		t.Fatalf("New(Shards: -1) = %v, want %s", err, trerr.APIBadRequest)
	}
	ok := base
	ok.Shards = 0
	p, err := tropic.New(ok)
	if err != nil {
		t.Fatalf("New(Shards: 0) = %v, want default single shard", err)
	}
	if p.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", p.NumShards())
	}
	_ = p.Stop()
}
