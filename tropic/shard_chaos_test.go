package tropic_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/tcloud"
	"repro/tropic"
)

// countingExecutor wraps a device cloud and counts every Execute
// invocation by its full (action, path, args) signature. The chaos
// workload gives every transaction globally unique VM and image names,
// so each signature belongs to exactly one transaction's log record —
// a count above 1 means a phyQ entry was executed more than once.
type countingExecutor struct {
	inner tropic.Executor

	mu     sync.Mutex
	counts map[string]int
}

func newCountingExecutor(inner tropic.Executor) *countingExecutor {
	return &countingExecutor{inner: inner, counts: make(map[string]int)}
}

func (e *countingExecutor) Execute(path, action string, args []string) error {
	key := action + " " + path + " " + strings.Join(args, ",")
	e.mu.Lock()
	e.counts[key]++
	e.mu.Unlock()
	return e.inner.Execute(path, action, args)
}

// duplicates returns every signature executed more than once.
func (e *countingExecutor) duplicates() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for k, n := range e.counts {
		if n > 1 {
			out = append(out, fmt.Sprintf("%s ×%d", k, n))
		}
	}
	return out
}

func (e *countingExecutor) count(key string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counts[key]
}

// chaosFaultActions is the pool the per-shard schedules draw from:
// forward spawn actions (clean aborts via successful undos) AND one
// undo action (turning some aborts into failed + inconsistency marks),
// the full §4 volatility menu.
var chaosFaultActions = []string{"cloneImage", "importImage", "createVM", "startVM", "unimportImage"}

// TestShardedChaos is the cross-shard chaos suite: a sharded platform
// under per-shard seeded device-fault schedules plus a mid-run leader
// kill on EVERY shard. Invariants checked per shard afterwards:
//
//   - every submitted transaction reaches a terminal state;
//   - exactly-once phyQ execution: no device-action signature runs
//     twice (no duplicated or replayed phyQ entries across failover);
//   - committed transactions' effects are present in the recovered
//     leader's logical model; aborted ones' are absent;
//   - no orphaned locks on any shard's recovered lock table;
//   - all queues drain to empty.
func TestShardedChaos(t *testing.T) {
	const (
		shards = 3
		hosts  = 12
		rounds = 4
		seed   = 2012
	)
	tp := tcloud.Topology{ComputeHosts: hosts, ComputePerStorage: 1}

	// Per-shard device clouds with per-shard seeded fault schedules.
	// Each shard's schedule is drawn independently: two probabilistic
	// rules over the action pool plus one delay rule, so shards abort,
	// fail, and stall differently but reproducibly.
	rng := rand.New(rand.NewSource(seed))
	execs := make([]tropic.Executor, shards)
	counters := make([]*countingExecutor, shards)
	for i := 0; i < shards; i++ {
		cloud, err := tp.BuildCloud()
		if err != nil {
			t.Fatal(err)
		}
		cloud.SetActionLatency(2 * time.Millisecond)
		inj := device.NewInjector(rng.Int63())
		for r := 0; r < 2; r++ {
			inj.Add(device.FaultRule{
				Action:      chaosFaultActions[rng.Intn(len(chaosFaultActions))],
				Probability: 0.05 + 0.10*rng.Float64(),
				Err:         fmt.Sprintf("chaos s%d r%d", i, r),
			})
		}
		inj.Add(device.FaultRule{
			Action: chaosFaultActions[rng.Intn(len(chaosFaultActions))],
			Delay:  time.Duration(1+rng.Intn(4)) * time.Millisecond,
		})
		cloud.SetFaultInjector(inj)
		counters[i] = newCountingExecutor(cloud)
		execs[i] = counters[i]
	}

	p, err := tropic.New(tropic.Config{
		Schema:         tcloud.NewSchema(),
		Procedures:     tcloud.Procedures(),
		Bootstrap:      tp.BuildModel(),
		ShardExecutors: execs,
		Shards:         shards,
		Controllers:    3, // kills need hot standbys on every shard
		SessionTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	cli := p.Client()
	defer cli.Close()

	// Shard-local spawn workload: rounds × (every spawnable host), each
	// VM name globally unique.
	storage, compute, covered := shardLocalSpawns(t, p, hosts)
	if len(covered) < 2 {
		t.Fatalf("workload covers %d shards, want ≥ 2", len(covered))
	}
	type spawn struct {
		id, vm, host string
		shard        int
	}
	var spawns []spawn
	for r := 0; r < rounds; r++ {
		for i := range compute {
			vm := fmt.Sprintf("cvm%d_%d", r, i)
			id, err := cli.Submit(tcloud.ProcSpawnVM, storage[i], compute[i], vm, "1024")
			if err != nil {
				t.Fatalf("submit round %d host %d: %v", r, i, err)
			}
			s, _ := p.ShardOf(tcloud.ProcSpawnVM, compute[i])
			spawns = append(spawns, spawn{id: id, vm: vm, host: compute[i], shard: s})
		}
	}

	// Mid-run: once the pipeline is demonstrably flowing, crash every
	// shard's lead controller. The kills land between grouped flushes of
	// live batch streams; each shard's followers must take over while
	// the other shards are themselves failing over.
	deadline := time.Now().Add(30 * time.Second)
	for p.WorkerStats().Committed+p.WorkerStats().Aborted+p.WorkerStats().Failed < int64(len(spawns))/4 {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never got going")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < shards; i++ {
		if name := p.KillShardLeader(i); name != "" {
			t.Logf("killed shard %d leader %s", i, name)
		}
	}

	// Every transaction reaches a terminal state on every shard.
	states := make(map[tropic.State]int)
	recs := make(map[string]*tropic.Txn, len(spawns))
	for _, sp := range spawns {
		rec, err := cli.Wait(ctx, sp.id)
		if err != nil {
			t.Fatalf("wait %s: %v", sp.id, err)
		}
		if !rec.State.Terminal() {
			t.Fatalf("txn %s non-terminal: %s", sp.id, rec.State)
		}
		states[rec.State]++
		recs[sp.id] = rec
	}
	t.Logf("terminal states across %d txns on %d shards: %v", len(spawns), shards, states)
	if states[tropic.StateCommitted] == 0 {
		t.Fatal("chaos schedule committed nothing; faults are implausibly aggressive")
	}

	// Exactly-once phyQ execution: no action signature ran twice on any
	// shard, despite the leader kills.
	for i, ce := range counters {
		if dups := ce.duplicates(); len(dups) != 0 {
			t.Fatalf("shard %d executed %d signatures more than once (phyQ duplicated work):\n%s",
				i, len(dups), strings.Join(dups, "\n"))
		}
	}

	// Queues drain on every shard (result notices from the tail of the
	// run are consumed asynchronously).
	deadline = time.Now().Add(15 * time.Second)
	for {
		d := p.QueueDepths()
		if d.InQ == 0 && d.PhyQ == 0 && d.TodoQ == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queues never drained: %+v", d)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Recovered leaders: correct committed effects, no orphaned locks.
	for i := 0; i < shards; i++ {
		lead := p.ShardLeader(i)
		if lead == nil {
			t.Fatalf("shard %d has no post-chaos leader", i)
		}
		if n := lead.LockManager().LockCount(); n != 0 {
			t.Fatalf("shard %d leaked %d locks across chaos", i, n)
		}
	}
	for _, sp := range spawns {
		lead := p.ShardLeader(sp.shard)
		got := lead.LogicalTree().Exists(sp.host + "/" + sp.vm)
		want := recs[sp.id].State == tropic.StateCommitted
		if got != want {
			t.Fatalf("txn %s (%s): logical model Exists(%s/%s) = %v, want %v",
				sp.id, recs[sp.id].State, sp.host, sp.vm, got, want)
		}
		// A committed spawn's five actions each ran exactly once.
		if want {
			key := "startVM " + sp.host + " " + sp.vm
			if n := counters[sp.shard].count(key); n != 1 {
				t.Fatalf("committed txn %s: startVM executed %d times", sp.id, n)
			}
		}
	}
}
