package tropic_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/reconcile"
	"repro/tcloud"
	"repro/tropic"
)

// newHATCloud builds a platform with a short failure-detection interval
// for failover experiments.
func newHATCloud(t *testing.T, tp tcloud.Topology, checkpointEvery int) (*tropic.Platform, *device.Cloud) {
	t.Helper()
	cloud, err := tp.BuildCloud()
	if err != nil {
		t.Fatal(err)
	}
	p, err := tropic.New(tropic.Config{
		Schema:          tcloud.NewSchema(),
		Procedures:      tcloud.Procedures(),
		Bootstrap:       cloud.Snapshot(),
		Executor:        cloud,
		Reconciler:      reconcile.New(cloud, cloud, tcloud.RepairRules()),
		SessionTimeout:  150 * time.Millisecond,
		CheckpointEvery: checkpointEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	return p, cloud
}

// TestFailoverNoTransactionLost is the §6.4 experiment: kill the lead
// controller mid-workload; a follower takes over and every transaction
// submitted before and during recovery reaches a terminal state —
// "No transaction submitted during the recovery time is lost."
func TestFailoverNoTransactionLost(t *testing.T) {
	const hosts = 8
	p, cloud := newHATCloud(t, tcloud.Topology{ComputeHosts: hosts}, 0)
	// Slow the devices slightly so transactions are in flight when the
	// leader dies.
	cloud.SetActionLatency(5 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	c := p.Client()
	defer c.Close()
	var ids []string
	for i := 0; i < hosts; i++ {
		id, err := c.Submit(tcloud.ProcSpawnVM,
			tcloud.StorageHostPath(i/4), tcloud.ComputeHostPath(i), fmt.Sprintf("vm%d", i), "1024")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Let some transactions get in flight, then crash the leader.
	time.Sleep(20 * time.Millisecond)
	killed := p.KillLeader()
	if killed == "" {
		t.Fatal("no leader to kill")
	}
	// Submissions during recovery must not be lost either.
	for i := 0; i < 3; i++ {
		id, err := c.Submit(tcloud.ProcSpawnVM,
			tcloud.StorageHostPath(0), tcloud.ComputeHostPath(i), fmt.Sprintf("vmR%d", i), "1024")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	start := time.Now()
	if err := p.WaitLeader(ctx); err != nil {
		t.Fatalf("no new leader: %v", err)
	}
	if got := p.Leader().Name(); got == killed {
		t.Fatalf("killed leader %s still leads", got)
	}
	t.Logf("failover to %s in %v (session timeout 150ms)", p.Leader().Name(), time.Since(start))

	committed := 0
	for _, id := range ids {
		rec, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if !rec.State.Terminal() {
			t.Fatalf("txn %s non-terminal after recovery: %s", id, rec.State)
		}
		if rec.State == tropic.StateCommitted {
			committed++
		} else {
			t.Logf("txn %s: %s (%s)", id, rec.State, rec.Error)
		}
	}
	if committed != len(ids) {
		t.Fatalf("committed %d/%d transactions across failover", committed, len(ids))
	}
	// The new leader's logical layer matches the physical layer.
	if err := c.Repair(ctx, tcloud.VMRoot); err != nil {
		t.Fatalf("post-failover repair (should be a no-op): %v", err)
	}
	if n := p.Leader().LockManager().LockCount(); n != 0 {
		t.Fatalf("%d locks leaked after recovery", n)
	}
}

// TestFailoverRecoveryTimeDominatedByDetection verifies the §6.4
// finding that recovery time is dominated by the store's
// failure-detection (session timeout) interval.
func TestFailoverRecoveryTimeDominatedByDetection(t *testing.T) {
	p, _ := newHATCloud(t, tcloud.Topology{ComputeHosts: 2}, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	killedAt := time.Now()
	if p.KillLeader() == "" {
		t.Fatal("no leader")
	}
	if err := p.WaitLeader(ctx); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(killedAt)
	// Failure detection needs at least ~ the 150ms session timeout, and
	// full recovery should complete well within a few multiples of it.
	if elapsed < 100*time.Millisecond {
		t.Errorf("failover in %v — faster than failure detection allows", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("failover took %v — recovery should be dominated by the 150ms detection interval", elapsed)
	}
}

// TestDoubleFailover kills two leaders in sequence; the third replica
// must still serve.
func TestDoubleFailover(t *testing.T) {
	p, _ := newHATCloud(t, tcloud.Topology{ComputeHosts: 4}, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := p.Client()
	defer c.Close()

	for round := 0; round < 2; round++ {
		rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
			tcloud.StorageHostPath(0), tcloud.ComputeHostPath(round), fmt.Sprintf("vm%d", round), "1024")
		if err != nil || rec.State != tropic.StateCommitted {
			t.Fatalf("round %d spawn: %v %v", round, rec, err)
		}
		if p.KillLeader() == "" {
			t.Fatalf("round %d: no leader", round)
		}
		if err := p.WaitLeader(ctx); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// Third leader serves normally and sees all prior state.
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(2), "vmLast", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("final spawn: %v %v", rec, err)
	}
	lt := p.Leader().LogicalTree()
	for _, path := range []string{
		tcloud.ComputeHostPath(0) + "/vm0",
		tcloud.ComputeHostPath(1) + "/vm1",
		tcloud.ComputeHostPath(2) + "/vmLast",
	} {
		if !lt.Exists(path) {
			t.Fatalf("recovered model missing %s", path)
		}
	}
}

// TestFailoverWithCheckpointing exercises recovery from snapshot +
// commit-log suffix rather than full replay.
func TestFailoverWithCheckpointing(t *testing.T) {
	p, _ := newHATCloud(t, tcloud.Topology{ComputeHosts: 8}, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := p.Client()
	defer c.Close()

	for i := 0; i < 8; i++ {
		rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
			tcloud.StorageHostPath(i/4), tcloud.ComputeHostPath(i), fmt.Sprintf("vm%d", i), "1024")
		if err != nil || rec.State != tropic.StateCommitted {
			t.Fatalf("spawn %d: %v %v", i, rec, err)
		}
	}
	if p.KillLeader() == "" {
		t.Fatal("no leader")
	}
	if err := p.WaitLeader(ctx); err != nil {
		t.Fatal(err)
	}
	lt := p.Leader().LogicalTree()
	for i := 0; i < 8; i++ {
		if !lt.Exists(tcloud.ComputeHostPath(i) + fmt.Sprintf("/vm%d", i)) {
			t.Fatalf("recovered model missing vm%d", i)
		}
	}
	// Still serving.
	rec, err := c.SubmitAndWait(ctx, tcloud.ProcDestroyVM,
		tcloud.ComputeHostPath(0), "vm0", tcloud.StorageHostPath(0))
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("destroy after checkpointed recovery: %v %v", rec, err)
	}
}

// TestFailedStateSurvivesFailover: inconsistency marks persist across
// leader changes, so a new leader keeps denying transactions on
// divergent subtrees.
func TestInconsistencyMarksSurviveFailover(t *testing.T) {
	p, cloud := newHATCloud(t, tcloud.Topology{ComputeHosts: 8}, 0)
	inj := device.NewInjector(5)
	inj.Add(device.FaultRule{Action: "createVM", Err: "xen error"})
	inj.Add(device.FaultRule{Action: "unimportImage", Err: "stuck"})
	cloud.SetFaultInjector(inj)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := p.Client()
	defer c.Close()

	rec, err := c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024")
	if err != nil || rec.State != tropic.StateFailed {
		t.Fatalf("want failed: %v %v", rec, err)
	}
	inj.Clear()
	if p.KillLeader() == "" {
		t.Fatal("no leader")
	}
	if err := p.WaitLeader(ctx); err != nil {
		t.Fatal(err)
	}
	// New leader still denies the marked subtree.
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm2", "1024")
	if err != nil || rec.State != tropic.StateAborted {
		t.Fatalf("txn on marked subtree after failover: %v %v", rec, err)
	}
	// Repair under the new leader clears it (compute side and storage
	// side), after which transactions flow again.
	if err := c.Repair(ctx, tcloud.ComputeHostPath(0)); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if err := c.Repair(ctx, tcloud.StorageHostPath(0)); err != nil {
		t.Fatalf("repair storage: %v", err)
	}
	rec, err = c.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm2", "1024")
	if err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("spawn after failover repair: %v %v", rec, err)
	}
}
