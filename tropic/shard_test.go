package tropic_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/tcloud"
	"repro/tropic"
	"repro/tropic/trerr"
)

// shardedPlatform starts a logical-only sharded platform. The topology
// uses one storage host per compute host so that (almost) every shard
// owns at least one colocated storage/compute pair to spawn on.
func shardedPlatform(t *testing.T, shards, hosts, controllers int) *tropic.Platform {
	t.Helper()
	p, err := tropic.New(tropic.Config{
		Schema:      tcloud.NewSchema(),
		Procedures:  tcloud.Procedures(),
		Bootstrap:   tcloud.Topology{ComputeHosts: hosts, ComputePerStorage: 1}.BuildModel(),
		Controllers: controllers,
		Shards:      shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	return p
}

// shardLocalSpawns builds one spawnVM op per compute host whose shard
// also owns a storage host, pairing each host with a same-shard storage
// host. Returns parallel slices of (storagePath, hostPath) and the set
// of shards covered.
func shardLocalSpawns(t *testing.T, p *tropic.Platform, hosts int) (storage, compute []string, covered map[int]bool) {
	t.Helper()
	storageByShard := make(map[int][]string)
	for i := 0; i < hosts; i++ { // ComputePerStorage 1 → one storage host per compute host
		sp := tcloud.StorageHostPath(i)
		s, err := p.ShardOf(tcloud.ProcSpawnVM, sp)
		if err != nil {
			t.Fatal(err)
		}
		storageByShard[s] = append(storageByShard[s], sp)
	}
	covered = make(map[int]bool)
	for i := 0; i < hosts; i++ {
		hp := tcloud.ComputeHostPath(i)
		s, err := p.ShardOf(tcloud.ProcSpawnVM, hp)
		if err != nil {
			t.Fatal(err)
		}
		pool := storageByShard[s]
		if len(pool) == 0 {
			continue // this shard owns no storage host; skip its hosts
		}
		storage = append(storage, pool[i%len(pool)])
		compute = append(compute, hp)
		covered[s] = true
	}
	if len(compute) < hosts/2 {
		t.Fatalf("only %d of %d hosts are spawnable (degenerate shard layout)", len(compute), hosts)
	}
	return storage, compute, covered
}

// TestShardedLifecycle: submissions route to their resource roots'
// shard, ids are shard-qualified, and Get/Wait/WatchTxn/List/Signal all
// resolve through the id prefix. Work spreads over more than one shard.
func TestShardedLifecycle(t *testing.T) {
	const shards, hosts = 3, 12
	p := shardedPlatform(t, shards, hosts, 1)
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	storage, compute, covered := shardLocalSpawns(t, p, hosts)
	if len(covered) < 2 {
		t.Fatalf("workload covers %d shards, want ≥ 2", len(covered))
	}

	ids := make([]string, len(compute))
	for i := range compute {
		id, err := cli.Submit(tcloud.ProcSpawnVM, storage[i], compute[i], fmt.Sprintf("svm%d", i), "1024")
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		want, _ := p.ShardOf(tcloud.ProcSpawnVM, compute[i])
		if !strings.HasPrefix(id, fmt.Sprintf("s%d-", want)) {
			t.Fatalf("id %q not qualified with owning shard %d", id, want)
		}
		ids[i] = id
	}
	for _, id := range ids {
		rec, err := cli.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if rec.State != tropic.StateCommitted {
			t.Fatalf("txn %s: %s (%s)", id, rec.State, rec.Error)
		}
		if rec.ID != id {
			t.Fatalf("record id %q != submitted id %q", rec.ID, id)
		}
	}

	// Get resolves by prefix; an unqualified id is a typed not-found.
	if rec, err := cli.Get(ids[0]); err != nil || rec.ID != ids[0] {
		t.Fatalf("get %s: %v %v", ids[0], rec, err)
	}
	if _, err := cli.Get("t-0000000000"); !errors.Is(err, trerr.TxnNotFound) {
		t.Fatalf("unqualified id error = %v, want txn.not_found", err)
	}

	// WatchTxn delivers the terminal record with the qualified id.
	ch, err := cli.WatchTxn(ctx, ids[1])
	if err != nil {
		t.Fatal(err)
	}
	var last *tropic.Txn
	for rec := range ch {
		last = rec
	}
	if last == nil || last.ID != ids[1] || !last.State.Terminal() {
		t.Fatalf("watch ended with %+v", last)
	}

	// List walks every shard exactly once via composite cursors.
	seen := make(map[string]bool)
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 100 {
			t.Fatal("list cursor does not terminate")
		}
		page, err := cli.List(tropic.ListOptions{Cursor: cursor, Limit: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range page.Txns {
			if seen[rec.ID] {
				t.Fatalf("list returned %s twice", rec.ID)
			}
			seen[rec.ID] = true
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) != len(ids) {
		t.Fatalf("list found %d records, want %d", len(seen), len(ids))
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("list missed %s", id)
		}
	}

	// Signal on a terminal transaction is a no-op that still resolves
	// the shard (no "not found" from mis-routing).
	if err := cli.Signal(ids[0], tropic.SignalTerm); err != nil {
		t.Fatalf("signal routed wrong: %v", err)
	}

	// All queues drain on every shard (the signal notice above is
	// consumed asynchronously).
	deadline := time.Now().Add(5 * time.Second)
	for {
		depths := p.QueueDepths()
		if depths.InQ == 0 && depths.PhyQ == 0 && depths.TodoQ == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depths never drained: %+v", depths)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShardedCrossShardRejected: with cross-shard execution DISABLED
// (Config.CrossShard, the PR-4 single-shard-only ablation), a
// submission whose resource roots land on different shards fails
// synchronously with shard.cross_shard, and no transaction record is
// created anywhere. (With it enabled — the default — the same
// submission executes atomically; see xshard_test.go.)
func TestShardedCrossShardRejected(t *testing.T) {
	const shards, hosts = 4, 16
	p, err := tropic.New(tropic.Config{
		Schema:      tcloud.NewSchema(),
		Procedures:  tcloud.Procedures(),
		Bootstrap:   tcloud.Topology{ComputeHosts: hosts, ComputePerStorage: 1}.BuildModel(),
		Controllers: 1,
		Shards:      shards,
		CrossShard:  tropic.CrossShardDisabled,
	})
	if err != nil {
		t.Fatal(err)
	}
	startCtx, startCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer startCancel()
	if err := p.Start(startCtx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	cli := p.Client()
	defer cli.Close()

	// Find a storage host and compute host on different shards.
	var storagePath, hostPath string
	for i := 0; i < hosts && storagePath == ""; i++ {
		for j := 0; j < hosts; j++ {
			ss, _ := p.ShardOf(tcloud.ProcSpawnVM, tcloud.StorageHostPath(i))
			hs, _ := p.ShardOf(tcloud.ProcSpawnVM, tcloud.ComputeHostPath(j))
			if ss != hs {
				storagePath, hostPath = tcloud.StorageHostPath(i), tcloud.ComputeHostPath(j)
				break
			}
		}
	}
	if storagePath == "" {
		t.Fatal("no cross-shard pair found (degenerate layout)")
	}
	_, err = cli.Submit(tcloud.ProcSpawnVM, storagePath, hostPath, "xvm", "1024")
	if !errors.Is(err, trerr.ShardCrossShard) {
		t.Fatalf("cross-shard submit error = %v, want %s", err, trerr.ShardCrossShard)
	}
	// Idempotent submissions reject the same way before claiming a key.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, _, err := cli.SubmitIdempotent(ctx, "xkey", tcloud.ProcSpawnVM, storagePath, hostPath, "xvm", "1024"); !errors.Is(err, trerr.ShardCrossShard) {
		t.Fatalf("cross-shard idempotent submit error = %v, want %s", err, trerr.ShardCrossShard)
	}
	page, err := cli.List(tropic.ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for page.NextCursor != "" && len(page.Txns) == 0 {
		if page, err = cli.List(tropic.ListOptions{Cursor: page.NextCursor}); err != nil {
			t.Fatal(err)
		}
	}
	if len(page.Txns) != 0 {
		t.Fatalf("rejected submission left %d records behind", len(page.Txns))
	}
}

// TestShardedRestartPreservesState: a durable sharded platform keeps
// one WAL per shard under DataDir/shard-NN; stopping the whole process
// and restarting from the same directory preserves every committed
// transaction record — on every shard, with its shard-qualified id
// intact.
func TestShardedRestartPreservesState(t *testing.T) {
	const shards, hosts = 3, 12
	dir := t.TempDir()
	build := func() *tropic.Platform {
		p, err := tropic.New(tropic.Config{
			Schema:      tcloud.NewSchema(),
			Procedures:  tcloud.Procedures(),
			Bootstrap:   tcloud.Topology{ComputeHosts: hosts, ComputePerStorage: 1}.BuildModel(),
			Controllers: 1,
			Shards:      shards,
			DataDir:     dir,
			SyncPolicy:  tropic.SyncNone, // process-crash durability is what's under test
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := p.Start(ctx); err != nil {
			t.Fatal(err)
		}
		return p
	}

	p := build()
	cli := p.Client()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	storage, compute, covered := shardLocalSpawns(t, p, hosts)
	if len(covered) < 2 {
		t.Fatalf("workload covers %d shards, want ≥ 2", len(covered))
	}
	var ids []string
	for i := range compute {
		rec, err := cli.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
			storage[i], compute[i], fmt.Sprintf("pvm%d", i), "1024")
		if err != nil || rec.State != tropic.StateCommitted {
			t.Fatalf("spawn %d: %v %v", i, rec, err)
		}
		ids = append(ids, rec.ID)
	}
	cli.Close()
	if err := p.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	// Restart from the same directory: every shard recovers its own WAL.
	p2 := build()
	t.Cleanup(func() { p2.Stop() })
	cli2 := p2.Client()
	defer cli2.Close()
	for _, id := range ids {
		rec, err := cli2.Get(id)
		if err != nil {
			t.Fatalf("get %s after restart: %v", id, err)
		}
		if rec.State != tropic.StateCommitted || rec.ID != id {
			t.Fatalf("restarted record %s = %s (id %s)", id, rec.State, rec.ID)
		}
	}
	// The recovered platform still serves new work on every shard.
	for i := range compute[:3] {
		rec, err := cli2.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
			storage[i], compute[i], fmt.Sprintf("pvm2_%d", i), "1024")
		if err != nil || rec.State != tropic.StateCommitted {
			t.Fatalf("post-restart spawn %d: %v %v", i, rec, err)
		}
	}
}

// TestShardedIdempotency: resubmitting the same key+args dedups through
// the owning shard; reusing the key for different same-shard args is a
// typed reuse error.
func TestShardedIdempotency(t *testing.T) {
	const shards, hosts = 3, 12
	p := shardedPlatform(t, shards, hosts, 1)
	cli := p.Client()
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	storage, compute, _ := shardLocalSpawns(t, p, hosts)
	id1, deduped, err := cli.SubmitIdempotent(ctx, "ikey", tcloud.ProcSpawnVM, storage[0], compute[0], "ivm", "1024")
	if err != nil || deduped {
		t.Fatalf("first submit: %v deduped=%v", err, deduped)
	}
	id2, deduped, err := cli.SubmitIdempotent(ctx, "ikey", tcloud.ProcSpawnVM, storage[0], compute[0], "ivm", "1024")
	if err != nil || !deduped || id2 != id1 {
		t.Fatalf("resubmit: id=%s deduped=%v err=%v (want %s, true)", id2, deduped, err, id1)
	}
	if _, _, err := cli.SubmitIdempotent(ctx, "ikey", tcloud.ProcSpawnVM, storage[0], compute[0], "OTHER", "1024"); !errors.Is(err, trerr.SubmitIdempotencyReuse) {
		t.Fatalf("reuse error = %v, want submit.idempotency_reuse", err)
	}
	if rec, err := cli.Wait(ctx, id1); err != nil || rec.State != tropic.StateCommitted {
		t.Fatalf("wait %s: %v %v", id1, rec, err)
	}
}
