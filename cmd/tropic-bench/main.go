// Command tropic-bench regenerates the tables and figures of the TROPIC
// paper's evaluation (§6) and prints them in the same form the paper
// reports: per-second series for Figures 3 and 4, a latency CDF for
// Figure 5, the Table 1 execution log, and scalar results for the
// safety (§6.2), robustness (§6.3), availability (§6.4), throughput and
// memory (§6.1) experiments.
//
// Usage:
//
//	tropic-bench -exp all                 # CI-scale pass over everything
//	tropic-bench -exp fig45 -full         # paper-scale: 12,500 hosts, full hour
//	tropic-bench -exp fig45 -hosts 1000 -window 2700:3060 -compression 20
//
// Absolute numbers differ from the paper (simulated store and devices,
// different hardware); the reproduced quantity is the *shape*: linear
// CPU scaling with load until saturation, sub-second median latency at
// low multipliers, rollback/constraint overheads far under their
// bounds, and failover dominated by the failure-detection interval.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		expName      = flag.String("exp", "all", "experiment: table1|fig3|fig4|fig5|fig45|safety|robustness|ha|throughput|mem|ablation|pipeline|shards|xshard|soak|reads|all")
		full         = flag.Bool("full", false, "paper-scale run (12,500 hosts, full 1-hour trace; takes many minutes)")
		hosts        = flag.Int("hosts", 400, "compute hosts (logical-only experiments)")
		mults        = flag.String("mult", "1,2,3,4,5", "comma-separated EC2 load multipliers")
		window       = flag.String("window", "2700:3000", "trace window seconds from:to")
		compression  = flag.Float64("compression", 10, "trace time compression factor")
		commitLat    = flag.Duration("commit-latency", 50*time.Microsecond, "simulated store quorum latency")
		seed         = flag.Int64("seed", 2011, "workload seed")
		timeout      = flag.Duration("timeout", 30*time.Minute, "overall deadline")
		pipeTxns     = flag.Int("pipeline-txns", 256, "transactions per pipeline ablation point")
		pipeBatches  = flag.String("pipeline-batches", "1,8,32", "comma-separated pipeline batch sizes")
		jsonOut      = flag.String("json", "", "write pipeline/shards results as JSON to this file (e.g. BENCH_pipeline.json)")
		shardTxns    = flag.Int("shards-txns", 256, "transactions per sharded-throughput point")
		shardCounts  = flag.String("shard-counts", "1,2,4,8", "comma-separated shard counts for -exp shards")
		xshardTxns   = flag.Int("xshard-txns", 160, "transactions per workload per cross-shard point")
		xshardCounts = flag.String("xshard-counts", "1,2,4", "comma-separated shard counts for -exp xshard")
		xshardReps   = flag.Int("xshard-reps", 1, "measurements per workload per cross-shard point (best kept)")
		soakTxns     = flag.Int("soak-txns", 512, "accepted transactions per soak run")
		soakClients  = flag.Int("soak-clients", 64, "concurrent submitters for -exp soak")
		soakInflight = flag.Int("soak-max-inflight", 8, "admission watermark under soak test")
		soakP99      = flag.Float64("soak-p99-ms", 5000, "soak latency gate: max p99 submit latency (ms)")
		readsOps     = flag.Int("reads-ops", 4096, "timed operations per read-mix configuration")
		readsRecords = flag.Int("reads-records", 64, "seeded records the read mix targets")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	run := func(name string, fn func(context.Context) error) {
		fmt.Printf("\n==================== %s ====================\n", name)
		start := time.Now()
		if err := fn(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	p45 := exp.Fig45Params{
		Multipliers:   parseMults(*mults),
		Hosts:         *hosts,
		CommitLatency: *commitLat,
		Compression:   *compression,
		Seed:          *seed,
	}
	p45.WindowFrom, p45.WindowTo = parseWindow(*window)
	if *full {
		p45.Hosts = 12500
		p45.WindowFrom, p45.WindowTo = 0, 3600
		p45.Compression = 1
	}

	all := *expName == "all"
	if all || *expName == "table1" {
		run("Table 1: spawnVM execution log", runTable1)
	}
	if all || *expName == "fig3" {
		run("Figure 3: VMs launched per second (EC2 workload)", func(ctx context.Context) error {
			return runFig3(*seed)
		})
	}
	if all || *expName == "fig4" || *expName == "fig5" || *expName == "fig45" {
		run("Figures 4 & 5: controller CPU and transaction latency (EC2 replay)", func(ctx context.Context) error {
			return runFig45(ctx, p45)
		})
	}
	if all || *expName == "safety" {
		run("§6.2 Safety: constraint enforcement overhead", func(ctx context.Context) error {
			return runSafety(ctx, *hosts, *seed)
		})
	}
	if all || *expName == "robustness" {
		run("§6.3 Robustness: transaction rollback overhead", func(ctx context.Context) error {
			return runRobustness(ctx, *seed)
		})
	}
	if all || *expName == "ha" {
		run("§6.4 High availability: controller failover", runHA)
	}
	if all || *expName == "throughput" {
		run("§6.1 Throughput vs resource scale", func(ctx context.Context) error {
			return runThroughput(ctx, *commitLat)
		})
	}
	if all || *expName == "mem" {
		run("§6.1 Memory footprint vs resource scale", func(ctx context.Context) error {
			return runMemory(*full)
		})
	}
	if all || *expName == "ablation" {
		run("§3.1.1 ablation: FIFO vs aggressive scheduling", runAblation)
	}
	if all || *expName == "pipeline" {
		// In -exp all mode only the pipeline experiment writes -json (the
		// two experiments would otherwise clobber one file).
		pipeJSON := *jsonOut
		run("Batched pipeline: group-commit throughput ablation", func(ctx context.Context) error {
			return runPipeline(ctx, *pipeTxns, parseMults(*pipeBatches), pipeJSON)
		})
	}
	if all || *expName == "shards" {
		shardsJSON := *jsonOut
		if all {
			shardsJSON = ""
		}
		run("Sharded orchestration: committed throughput vs shard count", func(ctx context.Context) error {
			return runShards(ctx, *shardTxns, parseMults(*shardCounts), shardsJSON)
		})
	}
	if all || *expName == "xshard" {
		xshardJSON := *jsonOut
		if all {
			xshardJSON = ""
		}
		run("Cross-shard transactions: 2PC throughput/latency vs single-shard", func(ctx context.Context) error {
			return runCrossShard(ctx, *xshardTxns, *xshardReps, parseMults(*xshardCounts), xshardJSON)
		})
	}
	if all || *expName == "soak" {
		soakJSON := *jsonOut
		if all {
			soakJSON = ""
		}
		run("Soak: sustained overload through admission control", func(ctx context.Context) error {
			return runSoak(ctx, exp.SoakParams{
				Txns:                *soakTxns,
				Submitters:          *soakClients,
				MaxInflightPerShard: *soakInflight,
				MaxP99Ms:            *soakP99,
			}, soakJSON)
		})
	}
	if all || *expName == "reads" {
		readsJSON := *jsonOut
		if all {
			readsJSON = ""
		}
		run("Read path: follower reads + watch-invalidated cache vs leader-only", func(ctx context.Context) error {
			return runReads(ctx, exp.ReadsParams{
				Ops:     *readsOps,
				Records: *readsRecords,
			}, readsJSON)
		})
	}
}

// runReads measures the 95/5 read/write mix on the leader-only baseline
// and with the scalable read path, printing the ablation side by side
// and optionally writing the pair as JSON (CI emits BENCH_reads.json on
// every run — the read-path speedup trajectory).
func runReads(ctx context.Context, p exp.ReadsParams, jsonPath string) error {
	res, err := exp.Reads(ctx, p)
	if err != nil {
		return err
	}
	type jsonDoc struct {
		Generated string          `json:"generated"`
		Result    exp.ReadsResult `json:"result"`
	}
	fmt.Printf("records=%d ops=%d write-every=%d\n", res.Records, res.Ops, res.WriteEvery)
	fmt.Printf("%-26s %-12s %-14s %-14s %s\n",
		"config", "reads/s", "read mean µs", "read p99 µs", "served cache/follower/leader")
	for _, m := range []exp.ReadsModeResult{res.Baseline, res.Enabled} {
		name := "leader-only (baseline)"
		if m.FollowerReads {
			name = fmt.Sprintf("follower+cache(%dMiB)", m.CacheBytes>>20)
		}
		fmt.Printf("%-26s %-12.0f %-14.1f %-14.1f %d/%d/%d\n",
			name, m.ReadsPerSecond, m.MeanReadMicros, m.P99ReadMicros,
			m.ReadStats.CacheServed, m.ReadStats.FollowerServed, m.ReadStats.LeaderServed)
	}
	fmt.Printf("read-path speedup: %.2fx\n", res.Speedup)
	if jsonPath != "" {
		doc := jsonDoc{Generated: time.Now().UTC().Format(time.RFC3339), Result: res}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runSoak drives sustained overload against the admission-controlled
// gateway and enforces the soak gates: p99 submit latency, zero stuck
// transactions, bounded queue depth, and sheds visible in the exported
// metrics. A failed gate is a nonzero exit (CI emits BENCH_soak.json on
// every run — the overload-behavior trajectory).
func runSoak(ctx context.Context, p exp.SoakParams, jsonPath string) error {
	res, err := exp.Soak(ctx, p)
	if err != nil {
		return err
	}
	type jsonDoc struct {
		Generated string         `json:"generated"`
		Result    exp.SoakResult `json:"result"`
	}
	fmt.Printf("shards=%d watermark=%d submitters=%d\n", res.Shards, res.Watermark, p.Submitters)
	fmt.Printf("accepted=%d committed=%d otherTerminal=%d stuck=%d\n",
		res.Txns, res.Committed, res.OtherTerminal, res.Stuck)
	fmt.Printf("sheds=%d exported=%d  peak backlog=%d (bound %d)\n",
		res.Sheds, int64(res.ShedsExported), res.MaxBacklog, res.DepthBound)
	fmt.Printf("throughput=%.0f txns/s  mean=%.1fms  p99=%.0fms (gate %.0fms)\n",
		res.PerSecond, res.MeanLatencyMs, res.P99LatencyMs, res.MaxP99Ms)
	if jsonPath != "" {
		doc := jsonDoc{Generated: time.Now().UTC().Format(time.RFC3339), Result: res}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if !res.Pass {
		return fmt.Errorf("soak gate failed:\n  %s", strings.Join(res.Failures, "\n  "))
	}
	fmt.Println("all soak gates HOLD")
	return nil
}

// runCrossShard sweeps the shard count over the cross-shard 2PC path —
// both message-flow arms (the coalesced fast path and the
// per-message-round-trip slow path) at every multi-shard point —
// printing spanning vs same-shard throughput/latency side by side and
// optionally writing the points as JSON (CI emits BENCH_xshard.json on
// every run — the cross-shard overhead trajectory the fast-path gate
// reads).
func runCrossShard(ctx context.Context, txns, reps int, counts []int, jsonPath string) error {
	if len(counts) == 0 {
		counts = []int{1, 2, 4}
	}
	type jsonDoc struct {
		Generated string                 `json:"generated"`
		Txns      int                    `json:"txns"`
		Results   []exp.CrossShardResult `json:"results"`
	}
	doc := jsonDoc{Generated: time.Now().UTC().Format(time.RFC3339), Txns: txns}
	fmt.Printf("%-8s %-10s %-14s %-14s %-12s %-12s %-12s %s\n",
		"shards", "flow", "cross txns/s", "local txns/s", "overhead", "cross p99", "local p99", "committed (cross/local)")
	for _, n := range counts {
		arms := []bool{false}
		if n > 1 {
			// The message-flow arms only diverge once transactions span
			// shards; the Shards=1 baseline is identical either way.
			arms = []bool{false, true}
		}
		for _, slow := range arms {
			res, err := exp.CrossShard(ctx, exp.CrossShardParams{Shards: n, Txns: txns, Reps: reps, SlowPath: slow})
			if err != nil {
				return err
			}
			flow := "fast"
			if slow {
				flow = "slow"
			}
			fmt.Printf("%-8d %-10s %-14.0f %-14.0f %-12.2f %-12.0f %-12.0f %d/%d of %d\n",
				n, flow, res.Cross.PerSecond, res.Local.PerSecond, res.OverheadX,
				res.Cross.P99LatencyMs, res.Local.P99LatencyMs,
				res.Cross.Committed, res.Local.Committed, res.Cross.Txns)
			doc.Results = append(doc.Results, res)
		}
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runShards sweeps the shard count over the end-to-end batched pipeline
// and optionally writes the points as JSON (CI emits BENCH_shards.json
// on every run — the horizontal-scaling trajectory).
func runShards(ctx context.Context, txns int, counts []int, jsonPath string) error {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	type jsonDoc struct {
		Generated string             `json:"generated"`
		Txns      int                `json:"txns"`
		Results   []exp.ShardsResult `json:"results"`
	}
	doc := jsonDoc{Generated: time.Now().UTC().Format(time.RFC3339), Txns: txns}
	fmt.Printf("%-8s %-12s %-12s %-12s %-14s %s\n",
		"shards", "txns/s", "speedup", "p99 ms", "committed", "spawnable hosts")
	var base float64
	for _, n := range counts {
		res, err := exp.Shards(ctx, exp.ShardsParams{Shards: n, Txns: txns})
		if err != nil {
			return err
		}
		if base == 0 {
			base = res.PerSecond
		}
		fmt.Printf("%-8d %-12.0f %-12.2f %-12.0f %-14s %d\n",
			n, res.PerSecond, res.PerSecond/base, res.P99LatencyMs,
			fmt.Sprintf("%d/%d", res.Committed, res.Txns), res.SpawnableHosts)
		doc.Results = append(doc.Results, res)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runPipeline sweeps the group-commit batch size over the end-to-end
// pipeline and optionally writes the points as JSON for the perf
// trajectory (CI emits BENCH_pipeline.json on every run).
func runPipeline(ctx context.Context, txns int, batches []int, jsonPath string) error {
	if len(batches) == 0 {
		batches = []int{1, 32}
	}
	type jsonDoc struct {
		Generated string               `json:"generated"`
		Txns      int                  `json:"txns"`
		Results   []exp.PipelineResult `json:"results"`
	}
	doc := jsonDoc{Generated: time.Now().UTC().Format(time.RFC3339), Txns: txns}
	fmt.Printf("%-8s %-12s %-12s %-12s %-14s %-14s %s\n",
		"batch", "txns/s", "p99 ms", "commits/txn", "drain items", "flush ms", "max flush ops")
	var base float64
	for _, batch := range batches {
		res, err := exp.Pipeline(ctx, exp.PipelineParams{Txns: txns, BatchMaxOps: batch})
		if err != nil {
			return err
		}
		meanDrain := 0.0
		if res.InBatches > 0 {
			meanDrain = float64(res.InBatchItems) / float64(res.InBatches)
		}
		fmt.Printf("%-8d %-12.0f %-12.0f %-12.1f %-14.1f %-14.2f %d\n",
			batch, res.PerSecond, res.P99LatencyMs,
			float64(res.StoreCommits)/float64(res.Txns), meanDrain, res.MeanFlushMs, res.MaxFlushOps)
		if base == 0 {
			base = res.PerSecond
		}
		doc.Results = append(doc.Results, res)
	}
	if len(doc.Results) > 1 && base > 0 {
		last := doc.Results[len(doc.Results)-1]
		fmt.Printf("group commit at batch %d: %.2fx the unbatched path\n",
			last.BatchMaxOps, last.PerSecond/base)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

func runAblation(ctx context.Context) error {
	results, err := exp.Ablation(ctx, exp.AblationParams{
		Hosts: 8, Txns: 48, ActionLatency: 5 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-12s %-22s %-12s %s\n", "policy", "makespan", "indep-txn latency", "deferrals", "committed")
	for _, r := range results {
		fmt.Printf("%-12s %-12v %-22v %-12d %d\n",
			r.Policy, r.Makespan.Round(time.Millisecond),
			r.IndependentLatency.Round(time.Millisecond), r.Deferrals, r.Committed)
	}
	fmt.Println("FIFO head-of-line blocks independent transactions behind a conflicted head;")
	fmt.Println("the aggressive policy trades re-simulation work (deferrals) for their latency.")
	return nil
}

func parseMults(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var k int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &k); err == nil && k > 0 {
			out = append(out, k)
		}
	}
	return out
}

func parseWindow(s string) (int, int) {
	var from, to int
	if _, err := fmt.Sscanf(s, "%d:%d", &from, &to); err != nil {
		return 0, 3600
	}
	return from, to
}

func runTable1(ctx context.Context) error {
	res, err := exp.Table1(ctx)
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatTable1(res))
	return nil
}

func runFig3(seed int64) error {
	res := exp.Fig3(seed)
	fmt.Printf("total=%d spawns  mean=%.2f/s  peak=%d/s at second %d (%.1f h)\n",
		res.Trace.Total(), res.Trace.Mean(), peakRate(res), peakSec(res), float64(peakSec(res))/3600)
	fmt.Println("\nVMs launched per second, averaged per minute (x-axis: hour fraction):")
	for m, v := range res.PerMinute {
		fmt.Printf("  %.3fh %5.2f/s %s\n", float64(m)/60, v, bar(v, 14, 50))
	}
	return nil
}

func peakSec(r exp.Fig3Result) int  { s, _ := r.Trace.Peak(); return s }
func peakRate(r exp.Fig3Result) int { _, v := r.Trace.Peak(); return v }

func runFig45(ctx context.Context, p exp.Fig45Params) error {
	fmt.Printf("hosts=%d (VM slots=%d)  window=[%d,%d)s  compression=%.0fx  commit-latency=%v\n",
		p.Hosts, p.Hosts*8, p.WindowFrom, p.WindowTo, p.Compression, p.CommitLatency)
	results, err := exp.Fig45(ctx, p)
	if err != nil {
		return err
	}
	fmt.Println("\nFigure 4 — controller busy fraction (CPU utilization proxy) per replayed second:")
	for _, r := range results {
		fmt.Printf("  %dx EC2: mean=%.1f%% peak=%.1f%%  %s\n",
			r.Multiplier, 100*r.MeanCPU, 100*r.PeakCPU,
			sparkline(r.CPUSeries))
	}
	fmt.Println("\nFigure 5 — CDF of transaction latency:")
	fmt.Printf("  %-8s %10s %10s %10s %10s %10s\n", "load", "p10", "p50", "p90", "p99", "max")
	for _, r := range results {
		fmt.Printf("  %dx EC2  %9.0fms %9.0fms %9.0fms %9.0fms %9.0fms   (n=%d, committed=%d)\n",
			r.Multiplier,
			1000*r.Latency.Quantile(0.10), 1000*r.Latency.Quantile(0.50),
			1000*r.Latency.Quantile(0.90), 1000*r.Latency.Quantile(0.99),
			1000*r.Latency.Max(), r.Submitted, r.Committed)
	}
	fmt.Println("\n  CDF points (latency ms : cumulative fraction):")
	for _, r := range results {
		pts := r.Latency.CDF(8)
		var b strings.Builder
		fmt.Fprintf(&b, "  %dx:", r.Multiplier)
		for _, pt := range pts {
			fmt.Fprintf(&b, " %.0fms:%.2f", pt.X*1000, pt.P)
		}
		fmt.Println(b.String())
	}
	return nil
}

func runSafety(ctx context.Context, hosts int, seed int64) error {
	res, err := exp.Safety(ctx, exp.SafetyParams{Hosts: min(hosts, 100), Ops: 500, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("transactions=%d  constraint-check mean=%v/txn  total=%v  violations=%d\n",
		res.Txns, res.MeanConstraintTime, res.TotalConstraint, res.Violations)
	fmt.Printf("paper bound: < 10ms/txn — %s\n", verdict(res.MeanConstraintTime < 10*time.Millisecond))
	return nil
}

func runRobustness(ctx context.Context, seed int64) error {
	res, err := exp.Robustness(ctx, exp.RobustnessParams{Hosts: 8, Ops: 100, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("injected errors: spawn(last step)=%d migrate(last step)=%d  aborted=%d\n",
		res.SpawnErrors, res.MigrateErrors, res.Aborted)
	fmt.Printf("logical rollback mean=%v/txn\n", res.MeanRollbackTime)
	fmt.Printf("paper bound: < 9ms/txn — %s\n", verdict(res.MeanRollbackTime < 9*time.Millisecond))
	return nil
}

func runHA(ctx context.Context) error {
	for _, st := range []time.Duration{100 * time.Millisecond, 400 * time.Millisecond} {
		res, err := exp.HA(ctx, exp.HAParams{
			Hosts: 16, OpsBeforeKill: 24, OpsDuringKill: 8, SessionTimeout: st,
		})
		if err != nil {
			return err
		}
		fmt.Printf("detection interval=%v: recovery=%v  submitted=%d committed=%d lost=%d\n",
			st, res.RecoveryTime.Round(time.Millisecond), res.Submitted, res.Committed, res.Lost)
	}
	fmt.Println("paper: recovery ≈ failure-detection interval (12.5s at their ZooKeeper settings); no transaction lost")
	return nil
}

func runThroughput(ctx context.Context, commitLat time.Duration) error {
	pts, err := exp.Throughput(ctx, []int{100, 1000, 10000}, 200, commitLat)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-12s %-12s %s\n", "hosts", "VM slots", "txns", "throughput")
	for _, p := range pts {
		fmt.Printf("%-12d %-12d %-12d %.1f txns/s\n", p.Hosts, p.Hosts*8, p.Txns, p.PerSecond)
	}
	fmt.Println("paper: throughput stays constant as resources scale (store I/O bound)")
	return nil
}

func runMemory(full bool) error {
	counts := []int{1250, 5000, 12500}
	if full {
		counts = append(counts, 50000)
	}
	pts := exp.Memory(counts)
	fmt.Printf("%-10s %-10s %-12s %-14s %-14s %s\n",
		"hosts", "VM slots", "model nodes", "heap", "bytes/slot", "projected @2M VMs")
	for _, p := range pts {
		fmt.Printf("%-10d %-10d %-12d %-14s %-14.0f %.2f GB\n",
			p.Hosts, p.VMSlots, p.ModelNodes, fmtBytes(p.HeapBytes), p.BytesPerSlot, p.Projected2MVMs)
	}
	fmt.Println("paper: footprint tracks managed-resource count; 2M VMs is the 32GB-machine ceiling")
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "HOLDS"
	}
	return "VIOLATED"
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// bar renders a proportional ASCII bar.
func bar(v, max float64, width int) string {
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// sparkline renders a series as coarse ASCII levels.
func sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	levels := []byte(" .:-=+*#%@")
	max := 0.0
	for _, v := range vs {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	// Downsample to at most 60 chars.
	step := (len(vs) + 59) / 60
	var b strings.Builder
	for i := 0; i < len(vs); i += step {
		sum, n := 0.0, 0
		for j := i; j < i+step && j < len(vs); j++ {
			sum += vs[j]
			n++
		}
		v := sum / float64(n)
		idx := int(v / max * float64(len(levels)-1))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteByte(levels[idx])
	}
	return b.String()
}
