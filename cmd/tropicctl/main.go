// Command tropicctl is the operator CLI for a running tropicd: it
// submits transactional orchestrations, inspects their records, sends
// TERM/KILL signals, and triggers reconciliation (repair/reload).
//
//	tropicctl -addr http://localhost:7077 submit spawnVM \
//	    /storageRoot/storageHost0000 /vmRoot/vmHost00000 vm1 1024
//	tropicctl wait t-0000000001
//	tropicctl signal t-0000000002 TERM
//	tropicctl repair /vmRoot/vmHost00000
//	tropicctl stats
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "http://localhost:7077", "tropicd base URL")
	wait := flag.Bool("wait", true, "submit: wait for the terminal state")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimRight(*addr, "/")}
	var err error
	switch args[0] {
	case "submit":
		if len(args) < 2 {
			err = fmt.Errorf("submit needs a procedure name")
			break
		}
		err = c.submit(args[1], args[2:], *wait)
	case "get":
		err = c.txn("/v1/txn", arg(args, 1))
	case "wait":
		err = c.txn("/v1/wait", arg(args, 1))
	case "signal":
		if len(args) < 3 {
			err = fmt.Errorf("signal needs <id> <TERM|KILL>")
			break
		}
		err = c.post("/v1/signal", map[string]string{"id": args[1], "signal": args[2]})
	case "repair":
		err = c.post("/v1/repair", map[string]string{"target": arg(args, 1)})
	case "reload":
		err = c.post("/v1/reload", map[string]string{"target": arg(args, 1)})
	case "stats":
		err = c.get("/v1/stats", nil)
	default:
		err = fmt.Errorf("unknown command %q", args[0])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tropicctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: tropicctl [-addr URL] <command> [args]

commands:
  submit <proc> [args...]   submit a transaction (waits unless -wait=false)
  get <id>                  fetch a transaction record
  wait <id>                 block until the transaction is terminal
  signal <id> <TERM|KILL>   abort a stalled transaction (§4)
  repair <path>             logical→physical reconciliation
  reload <path>             physical→logical reconciliation
  stats                     controller and worker counters
`)
	flag.PrintDefaults()
}

func arg(args []string, i int) string {
	if i < len(args) {
		return args[i]
	}
	return ""
}

type client struct {
	base string
}

func (c *client) submit(proc string, procArgs []string, wait bool) error {
	body, err := c.request(http.MethodPost, "/v1/submit",
		map[string]any{"proc": proc, "args": procArgs}, nil)
	if err != nil {
		return err
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return err
	}
	fmt.Println("submitted", resp.ID)
	if !wait {
		return nil
	}
	return c.txn("/v1/wait", resp.ID)
}

func (c *client) txn(path, id string) error {
	if id == "" {
		return fmt.Errorf("transaction id required")
	}
	body, err := c.request(http.MethodGet, path, nil, map[string]string{"id": id})
	if err != nil {
		return err
	}
	return prettyPrint(body)
}

func (c *client) post(path string, payload any) error {
	body, err := c.request(http.MethodPost, path, payload, nil)
	if err != nil {
		return err
	}
	if len(bytes.TrimSpace(body)) > 2 { // not just "{}"
		return prettyPrint(body)
	}
	fmt.Println("ok")
	return nil
}

func (c *client) get(path string, query map[string]string) error {
	body, err := c.request(http.MethodGet, path, nil, query)
	if err != nil {
		return err
	}
	return prettyPrint(body)
}

func (c *client) request(method, path string, payload any, query map[string]string) ([]byte, error) {
	url := c.base + path
	if len(query) > 0 {
		sep := "?"
		for k, v := range query {
			url += sep + k + "=" + v
			sep = "&"
		}
	}
	var rd io.Reader
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func prettyPrint(body []byte) error {
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		fmt.Println(string(body))
		return nil
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
