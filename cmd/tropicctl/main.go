// Command tropicctl is the operator CLI for a running tropicd: it
// submits transactional orchestrations, inspects their records, streams
// their state transitions, sends TERM/KILL signals, and triggers
// reconciliation (repair/reload). It is built on repro/tropic/httpclient,
// the same SDK applications use, so it carries the client's zxid
// watermark across requests: a `submit` followed by a `get` in one
// invocation always observes the submission, whichever replica serves
// the read (docs/reads.md).
//
//	tropicctl -addr http://localhost:7077 submit spawnVM \
//	    /storageRoot/storageHost0000 /vmRoot/vmHost00000 vm1 1024
//	tropicctl get t-0000000001
//	tropicctl watch t-0000000001
//	tropicctl wait t-0000000001
//	tropicctl signal t-0000000002 TERM
//	tropicctl repair /vmRoot/vmHost00000
//	tropicctl stats
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/tropic"
	"repro/tropic/httpclient"
)

func main() {
	addr := flag.String("addr", "http://localhost:7077", "tropicd base URL")
	wait := flag.Bool("wait", true, "submit: wait for the terminal state")
	timeout := flag.Duration("timeout", 5*time.Minute, "deadline for wait and watch")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cli := httpclient.New(*addr)
	defer cli.Close()
	// ^C ends a stream cleanly instead of leaving the terminal mid-event.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	var err error
	switch args[0] {
	case "submit":
		if len(args) < 2 {
			err = fmt.Errorf("submit needs a procedure name")
			break
		}
		err = submit(ctx, cli, args[1], args[2:], *wait)
	case "get":
		err = printTxn(cli.Get(arg(args, 1)))
	case "wait":
		err = printTxn(cli.Wait(ctx, arg(args, 1)))
	case "watch":
		err = watch(ctx, cli, arg(args, 1))
	case "list":
		err = list(cli, arg(args, 1))
	case "signal":
		if len(args) < 3 {
			err = fmt.Errorf("signal needs <id> <TERM|KILL>")
			break
		}
		err = ok(cli.Signal(args[1], tropic.Signal(args[2])))
	case "repair":
		err = ok(cli.Repair(ctx, arg(args, 1)))
	case "reload":
		err = ok(cli.Reload(ctx, arg(args, 1)))
	case "stats":
		err = stats(ctx, cli)
	default:
		err = fmt.Errorf("unknown command %q", args[0])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tropicctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: tropicctl [-addr URL] <command> [args]

commands:
  submit <proc> [args...]   submit a transaction (waits unless -wait=false)
  get <id>                  fetch a transaction record
  wait <id>                 block until the transaction is terminal
  watch <id>                stream state transitions until terminal (SSE)
  list [state]              page through records, optionally by state
  signal <id> <TERM|KILL>   abort a stalled transaction (§4)
  repair <path>             logical→physical reconciliation
  reload <path>             physical→logical reconciliation
  stats                     controller and worker counters
`)
	flag.PrintDefaults()
}

func arg(args []string, i int) string {
	if i < len(args) {
		return args[i]
	}
	return ""
}

func submit(ctx context.Context, cli *httpclient.Client, proc string, procArgs []string, wait bool) error {
	id, err := cli.Submit(proc, procArgs...)
	if err != nil {
		return err
	}
	fmt.Println("submitted", id)
	if !wait {
		return nil
	}
	// The client's watermark already covers the submission, so this read
	// is session-consistent even against a follower replica.
	return printTxn(cli.Wait(ctx, id))
}

// watch streams the record's transitions, one JSON line per state, and
// exits once the terminal record has been printed.
func watch(ctx context.Context, cli *httpclient.Client, id string) error {
	if id == "" {
		return fmt.Errorf("transaction id required")
	}
	ch, err := cli.WatchTxn(ctx, id)
	if err != nil {
		return err
	}
	var last *tropic.Txn
	for rec := range ch {
		last = rec
		line, merr := json.Marshal(rec)
		if merr != nil {
			return merr
		}
		fmt.Println(string(line))
	}
	if last == nil || !last.State.Terminal() {
		return fmt.Errorf("watch %s: stream ended before a terminal state", id)
	}
	return nil
}

func list(cli *httpclient.Client, state string) error {
	opts := tropic.ListOptions{State: tropic.State(state)}
	for {
		page, err := cli.List(opts)
		if err != nil {
			return err
		}
		for _, rec := range page.Txns {
			if err := printJSON(rec); err != nil {
				return err
			}
		}
		if page.NextCursor == "" {
			return nil
		}
		opts.Cursor = page.NextCursor
	}
}

func stats(ctx context.Context, cli *httpclient.Client) error {
	doc, err := cli.Stats(ctx)
	if err != nil {
		return err
	}
	return printJSON(doc)
}

func printTxn(rec *tropic.Txn, err error) error {
	if err != nil {
		return err
	}
	return printJSON(rec)
}

func ok(err error) error {
	if err != nil {
		return err
	}
	fmt.Println("ok")
	return nil
}

func printJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
