package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/reconcile"
	"repro/tcloud"
	"repro/tropic"
)

func newTestServer(t *testing.T) (*httptest.Server, *device.Cloud) {
	t.Helper()
	tp := tcloud.Topology{ComputeHosts: 2}
	cloud, err := tp.BuildCloud()
	if err != nil {
		t.Fatal(err)
	}
	p, err := tropic.New(tropic.Config{
		Schema:     tcloud.NewSchema(),
		Procedures: tcloud.Procedures(),
		Bootstrap:  cloud.Snapshot(),
		Executor:   cloud,
		Reconciler: reconcile.New(cloud, cloud, tcloud.RepairRules()),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Stop() })
	srv := httptest.NewServer(newAPI(p, log.New(io.Discard, "", 0)))
	t.Cleanup(srv.Close)
	return srv, cloud
}

func postJSON(t *testing.T, url string, payload any) (int, []byte) {
	t.Helper()
	b, _ := json.Marshal(payload)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func TestAPISubmitWaitLifecycle(t *testing.T) {
	srv, cloud := newTestServer(t)
	code, body := postJSON(t, srv.URL+"/v1/submit", submitReq{
		Proc: tcloud.ProcSpawnVM,
		Args: []string{tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024"},
	})
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	var sr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sr); err != nil || sr.ID == "" {
		t.Fatalf("submit body: %s", body)
	}
	resp, err := http.Get(srv.URL + "/v1/wait?id=" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec struct {
		State string `json:"state"`
		Log   []any  `json:"log"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != "committed" || len(rec.Log) != 5 {
		t.Fatalf("rec = %+v", rec)
	}
	if cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs["vm1"] == nil {
		t.Fatal("device state missing vm1")
	}
	// GET /v1/txn also serves the record.
	resp2, err := http.Get(srv.URL + "/v1/txn?id=" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("txn: %d", resp2.StatusCode)
	}
}

func TestAPIRepair(t *testing.T) {
	srv, cloud := newTestServer(t)
	code, _ := postJSON(t, srv.URL+"/v1/submit", submitReq{
		Proc: tcloud.ProcSpawnVM,
		Args: []string{tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vm1", "1024"},
	})
	if code != http.StatusOK {
		t.Fatal("submit failed")
	}
	// Wait for commit before mutating out-of-band.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := cloud.VMInfo(tcloud.ComputeHostName(0), "vm1"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("vm1 never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cloud.OutOfBandStopVM(tcloud.ComputeHostName(0), "vm1")
	code, body := postJSON(t, srv.URL+"/v1/repair", targetReq{Target: tcloud.ComputeHostPath(0)})
	if code != http.StatusOK {
		t.Fatalf("repair: %d %s", code, body)
	}
	if cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs["vm1"].State != device.VMRunning {
		t.Fatal("repair did not restart vm1")
	}
}

func TestAPIValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	// GET on a POST endpoint.
	resp, err := http.Get(srv.URL + "/v1/submit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET submit: %d", resp.StatusCode)
	}
	// Bad JSON.
	r2, err := http.Post(srv.URL+"/v1/submit", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: %d", r2.StatusCode)
	}
	// Bad signal value.
	code, _ := postJSON(t, srv.URL+"/v1/signal", signalReq{ID: "t-1", Signal: "NUKE"})
	if code != http.StatusBadRequest {
		t.Fatalf("bad signal: %d", code)
	}
	// Missing txn.
	r3, err := http.Get(srv.URL + "/v1/txn?id=t-9999999999")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Fatalf("missing txn: %d", r3.StatusCode)
	}
	// Health and stats.
	for _, path := range []string{"/healthz", "/v1/stats"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, r.StatusCode)
		}
	}
}

func TestAPISignalTERM(t *testing.T) {
	srv, cloud := newTestServer(t)
	inj := device.NewInjector(1)
	inj.Add(device.FaultRule{Action: "importImage", Delay: 400 * time.Millisecond})
	cloud.SetFaultInjector(inj)

	code, body := postJSON(t, srv.URL+"/v1/submit", submitReq{
		Proc: tcloud.ProcSpawnVM,
		Args: []string{tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vmT", "1024"},
	})
	if code != http.StatusOK {
		t.Fatalf("submit: %s", body)
	}
	var sr struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &sr)
	time.Sleep(80 * time.Millisecond)
	if code, b := postJSON(t, srv.URL+"/v1/signal", signalReq{ID: sr.ID, Signal: "TERM"}); code != http.StatusOK {
		t.Fatalf("signal: %d %s", code, b)
	}
	resp, err := http.Get(srv.URL + "/v1/wait?id=" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec struct {
		State string `json:"state"`
	}
	json.NewDecoder(resp.Body).Decode(&rec)
	if rec.State != "aborted" {
		t.Fatalf("state = %s, want aborted", rec.State)
	}
	if got := fmt.Sprint(len(cloud.ComputeHost(tcloud.ComputeHostName(0)).VMs)); got != "0" {
		t.Fatal("TERM left device state behind")
	}
}
