// Command tropicd runs a TROPIC deployment — replicated controllers,
// physical workers, and a simulated device cloud — and exposes the
// orchestration API over HTTP, playing the role of Figure 1's API
// service gateway.
//
//	tropicd -listen :7077 -hosts 16
//	tropicd -listen :7077 -hosts 16 -data-dir /var/lib/tropic -sync always
//
// With -data-dir the coordination store is durable: transactions,
// queues, and counters survive a daemon restart (crash or SIGTERM) and
// the platform resumes from its committed state.
//
// Endpoints (JSON):
//
//	POST /v1/submit   {"proc":"spawnVM","args":[...]}      → {"id":"t-..."}
//	GET  /v1/txn?id=t-...                                  → transaction record
//	GET  /v1/wait?id=t-...                                 → record, blocks until terminal
//	POST /v1/signal   {"id":"t-...","signal":"TERM"}       → {}
//	POST /v1/repair   {"target":"/vmRoot/vmHost00000"}     → {}
//	POST /v1/reload   {"target":"/vmRoot/vmHost00000"}     → {}
//	GET  /v1/stats                                         → controller+worker counters
//	GET  /healthz                                          → "ok"
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/reconcile"
	"repro/tcloud"
	"repro/tropic"
)

func main() {
	var (
		listen      = flag.String("listen", ":7077", "HTTP listen address")
		hosts       = flag.Int("hosts", 16, "simulated compute hosts")
		logicalOnly = flag.Bool("logical-only", false, "bypass device execution (§5 testing mode)")
		controllers = flag.Int("controllers", 3, "controller replicas")
		commitLat   = flag.Duration("commit-latency", 0, "simulated store quorum latency")
		actionLat   = flag.Duration("action-latency", 5*time.Millisecond, "simulated device call latency")
		sessionTO   = flag.Duration("session-timeout", 2*time.Second, "failure-detection interval")
		dataDir     = flag.String("data-dir", "", "coordination-store data directory (empty: in-memory only)")
		syncFlag    = flag.String("sync", "always", "WAL fsync policy with -data-dir: always|none")
		snapEvery   = flag.Int("snapshot-every", 4096, "store writes between snapshots with -data-dir")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "tropicd ", log.LstdFlags|log.Lmicroseconds)
	syncPolicy, err := tropic.ParseSyncPolicy(*syncFlag)
	if err != nil {
		logger.Fatalf("-sync: %v", err)
	}
	cfg := tropic.Config{
		Schema:         tcloud.NewSchema(),
		Procedures:     tcloud.Procedures(),
		Controllers:    *controllers,
		CommitLatency:  *commitLat,
		SessionTimeout: *sessionTO,
		DataDir:        *dataDir,
		SyncPolicy:     syncPolicy,
		SnapshotEvery:  *snapEvery,
		Logf:           logger.Printf,
	}
	tp := tcloud.Topology{ComputeHosts: *hosts}
	if *logicalOnly {
		cfg.Bootstrap = tp.BuildModel()
		cfg.Executor = tropic.NoopExecutor{Latency: *actionLat}
	} else {
		cloud, err := tp.BuildCloud()
		if err != nil {
			logger.Fatalf("build cloud: %v", err)
		}
		cloud.SetActionLatency(*actionLat)
		cfg.Bootstrap = cloud.Snapshot()
		cfg.Executor = cloud
		cfg.Reconciler = reconcile.New(cloud, cloud, tcloud.RepairRules())
	}

	p, err := tropic.New(cfg)
	if err != nil {
		logger.Fatalf("platform: %v", err)
	}
	startCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := p.Start(startCtx); err != nil {
		cancel()
		logger.Fatalf("start: %v", err)
	}
	cancel()
	logger.Printf("platform up: %d compute hosts (%d VM slots), %d storage hosts, leader %s",
		*hosts, *hosts*8, tp.StorageHosts(), p.Leader().Name())
	if *dataDir != "" {
		if ps := p.Ensemble().PersistStats(); ps.Recoveries > 0 {
			logger.Printf("durable store: dir=%s sync=%s recovered in %s",
				*dataDir, syncPolicy, p.Ensemble().LastRecovery())
		} else {
			logger.Printf("durable store: dir=%s sync=%s (fresh)", *dataDir, syncPolicy)
		}
	}

	srv := &http.Server{Addr: *listen, Handler: newAPI(p, logger)}
	go func() {
		logger.Printf("listening on %s", *listen)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("listen: %v", err)
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	<-sigCh
	logger.Printf("shutting down")
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = srv.Shutdown(shutdownCtx)
	// Stop flushes the coordination store's WAL (with -data-dir), so a
	// SIGTERM'd deployment restarts from exactly its committed state.
	err = p.Stop()
	switch {
	case *dataDir == "":
	case err != nil:
		logger.Printf("WARNING: final WAL flush failed, the log tail may not be durable: %v", err)
	default:
		logger.Printf("state flushed to %s", *dataDir)
	}
}

// api serves the orchestration HTTP endpoints.
type api struct {
	p      *tropic.Platform
	cli    *tropic.Client
	logger *log.Logger
	mux    *http.ServeMux
}

func newAPI(p *tropic.Platform, logger *log.Logger) http.Handler {
	a := &api{p: p, cli: p.Client(), logger: logger, mux: http.NewServeMux()}
	a.mux.HandleFunc("/v1/submit", a.handleSubmit)
	a.mux.HandleFunc("/v1/txn", a.handleGet)
	a.mux.HandleFunc("/v1/wait", a.handleWait)
	a.mux.HandleFunc("/v1/signal", a.handleSignal)
	a.mux.HandleFunc("/v1/repair", a.handleReconcile(tropicRepair))
	a.mux.HandleFunc("/v1/reload", a.handleReconcile(tropicReload))
	a.mux.HandleFunc("/v1/stats", a.handleStats)
	a.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return a.mux
}

type submitReq struct {
	Proc string   `json:"proc"`
	Args []string `json:"args"`
}

type signalReq struct {
	ID     string `json:"id"`
	Signal string `json:"signal"`
}

type targetReq struct {
	Target string `json:"target"`
}

func (a *api) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req submitReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := a.cli.Submit(req.Proc, req.Args...)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]string{"id": id})
}

func (a *api) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, err := a.cli.Get(r.URL.Query().Get("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, rec)
}

func (a *api) handleWait(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Minute)
	defer cancel()
	rec, err := a.cli.Wait(ctx, r.URL.Query().Get("id"))
	if err != nil {
		httpError(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	writeJSON(w, rec)
}

func (a *api) handleSignal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req signalReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	switch req.Signal {
	case "TERM", "KILL":
	default:
		httpError(w, http.StatusBadRequest, "signal must be TERM or KILL")
		return
	}
	var err error
	if req.Signal == "TERM" {
		err = a.cli.Signal(req.ID, tropic.SignalTerm)
	} else {
		err = a.cli.Signal(req.ID, tropic.SignalKill)
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]string{})
}

type reconcileKind int

const (
	tropicRepair reconcileKind = iota
	tropicReload
)

func (a *api) handleReconcile(kind reconcileKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		var req targetReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), time.Minute)
		defer cancel()
		var err error
		if kind == tropicRepair {
			err = a.cli.Repair(ctx, req.Target)
		} else {
			err = a.cli.Reload(ctx, req.Target)
		}
		if err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, map[string]string{})
	}
}

func (a *api) handleStats(w http.ResponseWriter, r *http.Request) {
	leaderName := ""
	if l := a.p.Leader(); l != nil {
		leaderName = l.Name()
	}
	writeJSON(w, map[string]any{
		"leader":     leaderName,
		"controller": a.p.ControllerStats(),
		"worker":     a.p.Worker().Stats(),
		"persist":    a.p.Ensemble().PersistStats(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Header already sent; nothing else to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
