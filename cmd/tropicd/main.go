// Command tropicd runs a TROPIC deployment — replicated controllers,
// physical workers, and a simulated device cloud — and exposes the
// orchestration API over HTTP, playing the role of Figure 1's API
// service gateway.
//
//	tropicd -listen :7077 -hosts 16
//	tropicd -listen :7077 -hosts 16 -data-dir /var/lib/tropic -sync always
//	tropicd -listen :7077 -hosts 64 -shards 4
//
// With -data-dir the coordination store is durable: transactions,
// queues, and counters survive a daemon restart (crash or SIGTERM) and
// the platform resumes from its committed state.
//
// With -shards N the platform is partitioned into N independent
// ensembles (each with its own WAL under -data-dir/shard-NN, leader
// election, queues, and workers) behind a consistent-hash router; see
// docs/sharding.md for the routing rules and cross-shard semantics.
//
// The HTTP surface is implemented by internal/api (see its package
// documentation for the endpoint reference); failures are structured
// JSON errors carrying repro/tropic/trerr taxonomy codes, and
// repro/tropic/httpclient is the matching Go SDK. GET /metrics exposes
// the full pipeline's instrumentation in Prometheus text format, and
// -max-inflight arms queue-depth admission control (HTTP 429 +
// Retry-After under overload); docs/observability.md catalogs both.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/reconcile"
	"repro/tcloud"
	"repro/tropic"
	"repro/tropic/trerr"
)

func main() {
	var (
		listen        = flag.String("listen", ":7077", "HTTP listen address")
		hosts         = flag.Int("hosts", 16, "simulated compute hosts")
		logicalOnly   = flag.Bool("logical-only", false, "bypass device execution (§5 testing mode)")
		controllers   = flag.Int("controllers", 3, "controller replicas")
		commitLat     = flag.Duration("commit-latency", 0, "simulated store quorum latency")
		actionLat     = flag.Duration("action-latency", 5*time.Millisecond, "simulated device call latency")
		sessionTO     = flag.Duration("session-timeout", 2*time.Second, "failure-detection interval")
		dataDir       = flag.String("data-dir", "", "coordination-store data directory (empty: in-memory only)")
		syncFlag      = flag.String("sync", "always", "WAL fsync policy with -data-dir: always|none")
		snapEvery     = flag.Int("snapshot-every", 4096, "store writes between snapshots with -data-dir")
		batchOps      = flag.Int("batch-max-ops", 32, "pipeline group-commit batch size (1 disables batching, 0 selects the default 32)")
		batchDelay    = flag.Duration("batch-max-delay", 2*time.Millisecond, "async batch flush-latency ceiling")
		workerClaim   = flag.Int("worker-claim", 4, "phyQ items one worker thread claims per store round trip")
		shards        = flag.Int("shards", 1, "consistent-hash store partitions, each with its own ensemble, controllers, and workers (see docs/sharding.md)")
		crossShard    = flag.Bool("cross-shard", true, "execute submissions spanning shards as atomic two-phase-commit transactions; false rejects them with shard.cross_shard (see docs/cross-shard.md)")
		xshardTO      = flag.Duration("xshard-prepare-timeout", 10*time.Second, "cross-shard vote-collection deadline before an in-doubt transaction aborts")
		xshardFast    = flag.Bool("xshard-fastpath", true, "coalesced cross-shard 2PC message flow (local-child coalescing, piggybacked decisions, per-peer batching, wound-wait); false restores per-message round trips (see docs/cross-shard.md)")
		maxInflight   = flag.Int("max-inflight", 0, "per-shard admission watermark: shed submissions (HTTP 429, api.overloaded) once a shard's queued backlog reaches this (0 disables; see docs/observability.md)")
		followerReads = flag.Bool("follower-reads", true, "serve watermarked reads from caught-up follower replicas instead of the shard leader (see docs/reads.md)")
		readCache     = flag.Int64("read-cache-bytes", 32<<20, "per-shard watch-invalidated read cache budget in bytes (0 disables caching)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "tropicd ", log.LstdFlags|log.Lmicroseconds)
	if *shards < 1 {
		// Reject up front with the same typed code the gateway uses for
		// malformed input, instead of a zero-value surprise at runtime.
		logger.Fatalf("-shards: %v", trerr.Newf(trerr.APIBadRequest,
			"shard count %d must be ≥ 1", *shards))
	}
	syncPolicy, err := tropic.ParseSyncPolicy(*syncFlag)
	if err != nil {
		logger.Fatalf("-sync: %v", err)
	}
	crossShardMode := tropic.CrossShardEnabled
	if !*crossShard {
		crossShardMode = tropic.CrossShardDisabled
	}
	fastPathMode := tropic.XShardFastPathEnabled
	if !*xshardFast {
		fastPathMode = tropic.XShardFastPathDisabled
	}
	cfg := tropic.Config{
		Schema:               tcloud.NewSchema(),
		Procedures:           tcloud.Procedures(),
		Controllers:          *controllers,
		CommitLatency:        *commitLat,
		SessionTimeout:       *sessionTO,
		DataDir:              *dataDir,
		SyncPolicy:           syncPolicy,
		SnapshotEvery:        *snapEvery,
		BatchMaxOps:          *batchOps,
		BatchMaxDelay:        *batchDelay,
		WorkerClaimBatch:     *workerClaim,
		Shards:               *shards,
		CrossShard:           crossShardMode,
		XShardFastPath:       fastPathMode,
		XShardPrepareTimeout: *xshardTO,
		MaxInflightPerShard:  *maxInflight,
		FollowerReads:        *followerReads,
		ReadCacheBytes:       *readCache,
		Logf:                 logger.Printf,
	}
	tp := tcloud.Topology{ComputeHosts: *hosts}
	if *logicalOnly {
		cfg.Bootstrap = tp.BuildModel()
		cfg.Executor = tropic.NoopExecutor{Latency: *actionLat}
	} else {
		cloud, err := tp.BuildCloud()
		if err != nil {
			logger.Fatalf("build cloud: %v", err)
		}
		cloud.SetActionLatency(*actionLat)
		cfg.Bootstrap = cloud.Snapshot()
		cfg.Executor = cloud
		cfg.Reconciler = reconcile.New(cloud, cloud, tcloud.RepairRules())
	}

	p, err := tropic.New(cfg)
	if err != nil {
		logger.Fatalf("platform: %v", err)
	}
	startCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := p.Start(startCtx); err != nil {
		cancel()
		logger.Fatalf("start: %v", err)
	}
	cancel()
	logger.Printf("platform up: %d compute hosts (%d VM slots), %d storage hosts, leader %s",
		*hosts, *hosts*8, tp.StorageHosts(), p.Leader().Name())
	// Log the RESOLVED configuration (0 values select defaults), not the
	// raw flags.
	if info := p.PipelineInfo(); info.BatchMaxOps > 1 {
		logger.Printf("pipeline: group commit on (batch-max-ops=%d batch-max-delay=%.3gms worker-claim=%d)",
			info.BatchMaxOps, info.BatchMaxDelayMs, info.WorkerClaimBatch)
	} else {
		logger.Printf("pipeline: group commit OFF (per-item round trips)")
	}
	if n := p.NumShards(); n > 1 {
		if info := p.PipelineInfo(); info.CrossShard {
			flow := "coalesced fast path"
			if !info.XShardFastPath {
				flow = "per-message round trips (-xshard-fastpath=false)"
			}
			logger.Printf("sharding: %d consistent-hash partitions, cross-shard 2PC on (prepare timeout %s, %s)",
				n, *xshardTO, flow)
		} else {
			logger.Printf("sharding: %d consistent-hash partitions, cross-shard transactions REJECTED (-cross-shard=false)", n)
		}
	}
	if *maxInflight > 0 {
		logger.Printf("admission control: shedding api.overloaded at %d queued per shard", *maxInflight)
	}
	switch info := p.PipelineInfo(); {
	case info.FollowerReads && info.ReadCacheBytes > 0:
		logger.Printf("read path: follower reads on, cache %d MiB per shard, X-Tropic-Zxid watermarks honored",
			info.ReadCacheBytes>>20)
	case info.FollowerReads:
		logger.Printf("read path: follower reads on, cache OFF")
	case info.ReadCacheBytes > 0:
		logger.Printf("read path: leader-only reads (ablation), cache %d MiB per shard", info.ReadCacheBytes>>20)
	default:
		logger.Printf("read path: leader-only reads, cache OFF (ablation baseline)")
	}
	if *dataDir != "" {
		if ps := p.Ensemble().PersistStats(); ps.Recoveries > 0 {
			logger.Printf("durable store: dir=%s sync=%s recovered in %s",
				*dataDir, syncPolicy, p.Ensemble().LastRecovery())
		} else {
			logger.Printf("durable store: dir=%s sync=%s (fresh)", *dataDir, syncPolicy)
		}
	}

	gw := api.New(api.Config{Platform: p, Logf: logger.Printf})
	defer gw.Close()
	srv := &http.Server{Addr: *listen, Handler: gw}
	go func() {
		logger.Printf("listening on %s", *listen)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("listen: %v", err)
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	<-sigCh
	logger.Printf("shutting down")
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = srv.Shutdown(shutdownCtx)
	// Stop flushes the coordination store's WAL (with -data-dir), so a
	// SIGTERM'd deployment restarts from exactly its committed state.
	err = p.Stop()
	switch {
	case *dataDir == "":
	case err != nil:
		logger.Printf("WARNING: final WAL flush failed, the log tail may not be durable: %v", err)
	default:
		logger.Printf("state flushed to %s", *dataDir)
	}
}
