// Package readpath is the platform's scalable read subsystem: one
// per-shard layer that front-ends every Get/List/Wait/watch against the
// coordination store with three mechanisms, composed so that read
// throughput no longer queues behind the shard leader's write pipeline.
//
//  1. Follower reads. The store keeps full replicas per shard; reads
//     carrying a zxid watermark are served from ANY live replica that
//     has applied at least that zxid (store.Client.GetAt/ChildrenAt),
//     bypassing the ensemble commit lock entirely. A client that
//     threads the returned zxid into its next read gets session
//     consistency — never reading behind its own writes — as an API
//     property rather than an accident of replica choice.
//
//  2. Watch-invalidated caching. Records and child listings are cached
//     per shard, bounded in bytes, and invalidated by the store's own
//     persistent watch machinery (NodeWatch/ChildWatch) rather than
//     TTLs: the watch is armed BEFORE the read fills the cache, and a
//     generation counter drops any fill that raced a commit, so a
//     cached entry is never staler than its recorded zxid claims.
//
//  3. Fan-out multiplexing. All subscribers of one record share that
//     record's single store watch (a "hub"): 100k concurrent WatchTxn
//     streams cost O(records) store watches, not O(sessions). The same
//     hub serves cache invalidation, so a record under subscription is
//     also a record whose cache entry is precise.
//
// docs/reads.md describes the consistency model and the invalidation
// protocol in full.
package readpath

import (
	"container/list"
	"errors"
	"sync"

	"repro/internal/metrics"
	"repro/internal/store"
)

// entryOverhead approximates the per-entry bookkeeping cost (hub
// struct, map slot, list element) charged against the byte budget on
// top of the payload itself.
const entryOverhead = 160

// Source identifies which tier served a read, for metrics and the
// ablation experiments.
type Source int

const (
	// SourceCache is a hit in the watch-invalidated cache.
	SourceCache Source = iota
	// SourceFollower is a follower-replica read under the watermark.
	SourceFollower
	// SourceLeader is a fall-through read on the shard leader.
	SourceLeader
)

// String renders the source for logs and stats.
func (s Source) String() string {
	switch s {
	case SourceCache:
		return "cache"
	case SourceFollower:
		return "follower"
	default:
		return "leader"
	}
}

// Config parameterizes one shard's read path.
type Config struct {
	// Client is the store session reads and watches go through. The
	// Shard owns its watches but NOT the client; the caller closes it.
	Client *store.Client
	// FollowerReads serves watermarked reads from any caught-up replica
	// instead of the leader. False is the leader-only ablation baseline.
	FollowerReads bool
	// CacheBytes bounds the resident bytes of the record/listing cache;
	// 0 disables caching (reads always go to the store, the fan-out
	// multiplexer still works).
	CacheBytes int64
	// Registry receives the read-path instrumentation (hit/miss/
	// invalidation/eviction counters, bytes-resident and fan-out
	// gauges). Nil keeps counters process-local.
	Registry *metrics.Registry
	// Shard labels this shard's series in the registry.
	Shard string
}

// hub is the shared state for one watched path: ONE persistent store
// watch serving both the cache entry and every fan-out subscriber.
type hub struct {
	path string
	w    *store.NodeWatch
	subs map[*Sub]struct{}

	// gen increments on every invalidation; a cache fill that armed at
	// an older gen is dropped instead of stored (it may predate the
	// write that fired the watch).
	gen uint64

	data    []byte
	stat    store.Stat
	zxid    int64
	hasData bool
	// negative marks a resident entry that records authoritative ABSENCE:
	// the path did not exist as of zxid. Served as ErrNoNode under the
	// watermark; invalidated by the same watch when the node is created.
	negative bool
	cost     int64
	elem     *list.Element // position in the LRU when hasData
}

// kidsEntry caches one path's sorted child names under its own
// persistent child watch. Listings are invalidated by membership
// changes only; the records behind the names live in their own hubs.
type kidsEntry struct {
	path  string
	w     *store.ChildWatch
	gen   uint64
	names []string
	zxid  int64
	valid bool
	cost  int64
}

// Sub is one fan-out subscription to a path's hub. Its channel carries
// coalesced change notifications (capacity 1, non-blocking sends); a
// CLOSED channel means the hub died with the store session and the
// subscriber's stream is interrupted. Close releases the subscription
// and, when it was the hub's last earner, the store watch itself.
type Sub struct {
	s      *Shard
	h      *hub
	ch     chan struct{}
	closed bool // Close called; guarded by s.mu
	dead   bool // channel closed by hub death; guarded by s.mu
}

// C returns the notification channel.
func (sub *Sub) C() <-chan struct{} { return sub.ch }

// notifyLocked posts a coalesced wakeup. Caller holds s.mu.
func (sub *Sub) notifyLocked() {
	if sub.closed || sub.dead {
		return
	}
	select {
	case sub.ch <- struct{}{}:
	default: // a wakeup is already pending
	}
}

// deadLocked finalizes the channel when the hub dies. Caller holds s.mu.
func (sub *Sub) deadLocked() {
	if sub.closed || sub.dead {
		return
	}
	sub.dead = true
	close(sub.ch)
}

// Close releases the subscription. When it was the last subscriber and
// the hub holds no cached data, the hub's store watch is released too —
// the invariant behind "watch counts return to baseline after all
// subscribers disconnect". Idempotent.
func (sub *Sub) Close() {
	s := sub.s
	var toClose *store.NodeWatch
	s.mu.Lock()
	if sub.closed {
		s.mu.Unlock()
		return
	}
	sub.closed = true
	h := sub.h
	delete(h.subs, sub)
	if !sub.dead {
		sub.dead = true
		close(sub.ch)
	}
	if s.hubs[h.path] == h && len(h.subs) == 0 && !h.hasData {
		delete(s.hubs, h.path)
		toClose = h.w
	}
	s.mu.Unlock()
	if toClose != nil {
		toClose.Close()
	}
}

// Shard is one store partition's read path. All methods are safe for
// concurrent use.
type Shard struct {
	cli      *store.Client
	follower bool
	maxBytes int64

	mu        sync.Mutex
	closed    bool
	hubs      map[string]*hub
	kids      map[string]*kidsEntry
	lru       *list.List // of *hub with hasData, most recent at front
	bytes     int64      // resident record bytes (LRU-bounded)
	kidsBytes int64      // resident listing bytes

	hits, misses, invals, evicts *metrics.Counter
	srcCache, srcFollower        *metrics.Counter
	srcLeader, negHits           *metrics.Counter
}

// New builds one shard's read path over the given store session. Every
// counter series is pre-created at zero so scrapers can rate() them
// from the first scrape.
func New(cfg Config) *Shard {
	s := &Shard{
		cli:      cfg.Client,
		follower: cfg.FollowerReads,
		maxBytes: cfg.CacheBytes,
		hubs:     make(map[string]*hub),
		kids:     make(map[string]*kidsEntry),
		lru:      list.New(),
	}
	if cfg.Registry == nil {
		s.hits = &metrics.Counter{}
		s.misses = &metrics.Counter{}
		s.invals = &metrics.Counter{}
		s.evicts = &metrics.Counter{}
		s.srcCache = &metrics.Counter{}
		s.srcFollower = &metrics.Counter{}
		s.srcLeader = &metrics.Counter{}
		s.negHits = &metrics.Counter{}
		return s
	}
	shard := cfg.Shard
	if shard == "" {
		shard = "0"
	}
	r := cfg.Registry
	s.hits = r.CounterVec("tropic_read_cache_hits_total",
		"Read-path cache hits (records and listings).", "shard").With(shard)
	s.misses = r.CounterVec("tropic_read_cache_misses_total",
		"Read-path cache misses (read went to the store).", "shard").With(shard)
	s.invals = r.CounterVec("tropic_read_cache_invalidations_total",
		"Cache entries dropped by a store watch event.", "shard").With(shard)
	s.evicts = r.CounterVec("tropic_read_cache_evictions_total",
		"Cache entries dropped by the byte-budget LRU.", "shard").With(shard)
	s.negHits = r.CounterVec("tropic_read_cache_negative_hits_total",
		"Reads answered ErrNoNode from a cached negative entry.", "shard").With(shard)
	reads := r.CounterVec("tropic_reads_total",
		"Reads served by the read path, by serving tier.", "shard", "source")
	s.srcCache = reads.With(shard, "cache")
	s.srcFollower = reads.With(shard, "follower")
	s.srcLeader = reads.With(shard, "leader")
	r.GaugeVec("tropic_read_cache_bytes",
		"Resident bytes in the watch-invalidated read cache.", "shard").
		Func(func() float64 { return float64(s.BytesResident()) }, shard)
	r.GaugeVec("tropic_watch_fanout_subscribers",
		"Live fan-out subscriptions multiplexed over shared store watches.", "shard").
		Func(func() float64 { return float64(s.Subscribers()) }, shard)
	r.GaugeVec("tropic_watch_fanout_watches",
		"Store node watches held by the read path (shared hubs).", "shard").
		Func(func() float64 { return float64(s.Hubs()) }, shard)
	return s
}

// Close tears down every hub and listing watch. Reads still pass
// through to the store afterwards (uncached); subscriptions fail.
func (s *Shard) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var nws []*store.NodeWatch
	var cws []*store.ChildWatch
	for path, h := range s.hubs {
		delete(s.hubs, path)
		if h.hasData {
			s.dropDataLocked(h)
		}
		for sub := range h.subs {
			sub.deadLocked()
		}
		nws = append(nws, h.w)
	}
	for path, k := range s.kids {
		delete(s.kids, path)
		cws = append(cws, k.w)
	}
	s.kidsBytes = 0
	s.mu.Unlock()
	for _, w := range nws {
		w.Close()
	}
	for _, w := range cws {
		w.Close()
	}
}

// GetRecord reads path honoring the zxid watermark: served from the
// cache when the resident entry is at least as new as minZxid, else
// read through (follower or leader per config), with the result stored
// back unless a concurrent commit invalidated the generation it was
// read under. The returned zxid is the position the data is current as
// of — thread it into the next read for session consistency.
func (s *Shard) GetRecord(path string, minZxid int64) ([]byte, store.Stat, int64, Source, error) {
	var h *hub
	var gen uint64
	if s.maxBytes > 0 {
		s.mu.Lock()
		if !s.closed {
			if hh := s.hubs[path]; hh != nil && hh.hasData && hh.zxid >= minZxid {
				if hh.negative {
					// Authoritative absence under the watermark: the path
					// did not exist as of hh.zxid, and the hub's watch has
					// not seen it created since.
					z := hh.zxid
					s.lru.MoveToFront(hh.elem)
					s.mu.Unlock()
					s.hits.Inc()
					s.negHits.Inc()
					s.srcCache.Inc()
					return nil, store.Stat{}, z, SourceCache, store.ErrNoNode
				}
				data := append([]byte(nil), hh.data...)
				st, z := hh.stat, hh.zxid
				s.lru.MoveToFront(hh.elem)
				s.mu.Unlock()
				s.hits.Inc()
				s.srcCache.Inc()
				return data, st, z, SourceCache, nil
			}
			// Arm the watch BEFORE the read: any commit landing after
			// this point bumps gen and the fill below is dropped, so the
			// cache can never hold state the watch didn't cover.
			if hh, err := s.ensureHubLocked(path); err == nil {
				h, gen = hh, hh.gen
			}
		}
		s.mu.Unlock()
		s.misses.Inc()
	}
	data, st, z, follower, err := s.readRecord(path, minZxid)
	if h != nil {
		var toClose *store.NodeWatch
		var victims []*store.NodeWatch
		s.mu.Lock()
		if s.hubs[path] == h && h.gen == gen && !s.closed {
			switch {
			case err == nil:
				s.storeLocked(h, data, st, z, false)
				victims = s.evictLocked()
			case errors.Is(err, store.ErrNoNode) && z > 0:
				// Cache the absence itself: the store answered "no such
				// node as of z", and any later create fires the hub's
				// watch (creates fire node watches on the created path),
				// so repeated misses on a hot absent path are hits.
				s.storeLocked(h, nil, store.Stat{}, z, true)
				victims = s.evictLocked()
			case len(h.subs) == 0 && !h.hasData:
				// The read failed (e.g. no such record) and nothing else
				// earns the hub its watch: release it rather than leak a
				// watch per missed path.
				delete(s.hubs, path)
				toClose = h.w
			}
		}
		s.mu.Unlock()
		if toClose != nil {
			toClose.Close()
		}
		for _, w := range victims {
			w.Close()
		}
	}
	if err != nil {
		// ErrNoNode carries the zxid the absence was observed at, so the
		// caller can thread it like any other read watermark.
		return nil, store.Stat{}, z, SourceLeader, err
	}
	src := SourceLeader
	if follower {
		src = SourceFollower
		s.srcFollower.Inc()
	} else {
		s.srcLeader.Inc()
	}
	return data, st, z, src, nil
}

// Children lists path's sorted child names under the same watermark and
// caching contract as GetRecord, with invalidation driven by the
// store's persistent child-watch machinery.
func (s *Shard) Children(path string, minZxid int64) ([]string, int64, Source, error) {
	var k *kidsEntry
	var gen uint64
	if s.maxBytes > 0 {
		s.mu.Lock()
		if !s.closed {
			if kk := s.kids[path]; kk != nil && kk.valid && kk.zxid >= minZxid {
				names := append([]string(nil), kk.names...)
				z := kk.zxid
				s.mu.Unlock()
				s.hits.Inc()
				s.srcCache.Inc()
				return names, z, SourceCache, nil
			}
			if kk, err := s.ensureKidsLocked(path); err == nil {
				k, gen = kk, kk.gen
			}
		}
		s.mu.Unlock()
		s.misses.Inc()
	}
	var names []string
	var z int64
	var follower bool
	var err error
	if s.follower {
		names, z, follower, err = s.cli.ChildrenAt(path, minZxid)
	} else {
		names, z, err = s.cli.ChildrenZ(path)
	}
	if k != nil && err == nil {
		s.mu.Lock()
		if s.kids[path] == k && k.gen == gen && !s.closed && (!k.valid || k.zxid <= z) {
			if k.valid {
				s.kidsBytes -= k.cost
			}
			k.names = append([]string(nil), names...)
			k.zxid, k.valid = z, true
			k.cost = kidsCost(k)
			s.kidsBytes += k.cost
		}
		s.mu.Unlock()
	}
	if err != nil {
		return nil, 0, SourceLeader, err
	}
	src := SourceLeader
	if follower {
		src = SourceFollower
		s.srcFollower.Inc()
	} else {
		s.srcLeader.Inc()
	}
	return names, z, src, nil
}

// Subscribe joins path's hub, creating it (and its single store watch)
// when this is the first interest in the path. Every subscriber of the
// same path shares that one watch.
func (s *Shard) Subscribe(path string) (*Sub, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, store.ErrClosed
	}
	h, err := s.ensureHubLocked(path)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	sub := &Sub{s: s, h: h, ch: make(chan struct{}, 1)}
	h.subs[sub] = struct{}{}
	s.mu.Unlock()
	return sub, nil
}

// readRecord is the store tier of GetRecord: follower read under the
// watermark when enabled, leader read otherwise.
func (s *Shard) readRecord(path string, minZxid int64) ([]byte, store.Stat, int64, bool, error) {
	if s.follower {
		return s.cli.GetAt(path, minZxid)
	}
	data, st, z, err := s.cli.GetZ(path)
	return data, st, z, false, err
}

// ensureHubLocked returns path's hub, creating it — and arming its one
// store watch — on first use. Caller holds s.mu.
func (s *Shard) ensureHubLocked(path string) (*hub, error) {
	if h := s.hubs[path]; h != nil {
		return h, nil
	}
	w, err := s.cli.NodeWatch(path)
	if err != nil {
		return nil, err
	}
	h := &hub{path: path, w: w, subs: make(map[*Sub]struct{})}
	s.hubs[path] = h
	go s.pump(h)
	return h, nil
}

// ensureKidsLocked is ensureHubLocked for child listings. Caller holds
// s.mu.
func (s *Shard) ensureKidsLocked(path string) (*kidsEntry, error) {
	if k := s.kids[path]; k != nil {
		return k, nil
	}
	w, err := s.cli.ChildWatch(path)
	if err != nil {
		return nil, err
	}
	k := &kidsEntry{path: path, w: w}
	s.kids[path] = k
	go s.kidsPump(k)
	return k, nil
}

// pump is a hub's single event loop: every store watch event
// invalidates the cache entry and wakes every subscriber; the channel
// closing (store session gone) kills the hub and interrupts its
// subscribers.
func (s *Shard) pump(h *hub) {
	for range h.w.C() {
		s.invalidate(h)
	}
	s.hubDead(h)
}

// invalidate handles one watch event on h: drop the cached data, bump
// the fill generation, wake subscribers — and when nothing earns the
// hub its watch anymore, tear it down.
func (s *Shard) invalidate(h *hub) {
	var toClose *store.NodeWatch
	s.mu.Lock()
	if s.hubs[h.path] != h {
		s.mu.Unlock()
		return
	}
	h.gen++
	if h.hasData {
		s.dropDataLocked(h)
		s.invals.Inc()
	}
	for sub := range h.subs {
		sub.notifyLocked()
	}
	if len(h.subs) == 0 {
		delete(s.hubs, h.path)
		toClose = h.w
	}
	s.mu.Unlock()
	if toClose != nil {
		// Closing the watch ends the pump's range loop; hubDead then
		// finds the hub already detached and no-ops.
		toClose.Close()
	}
}

// hubDead finalizes a hub whose store watch channel closed underneath
// it (session expired or ensemble shut down): subscribers are
// interrupted by closing their channels.
func (s *Shard) hubDead(h *hub) {
	s.mu.Lock()
	if s.hubs[h.path] != h {
		s.mu.Unlock()
		return
	}
	delete(s.hubs, h.path)
	if h.hasData {
		s.dropDataLocked(h)
	}
	for sub := range h.subs {
		sub.deadLocked()
	}
	s.mu.Unlock()
}

// kidsPump mirrors pump for a listing entry.
func (s *Shard) kidsPump(k *kidsEntry) {
	for range k.w.C() {
		s.mu.Lock()
		if s.kids[k.path] == k {
			k.gen++
			if k.valid {
				k.valid = false
				s.kidsBytes -= k.cost
				k.cost = 0
				s.invals.Inc()
			}
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	if s.kids[k.path] == k {
		delete(s.kids, k.path)
		if k.valid {
			k.valid = false
			s.kidsBytes -= k.cost
		}
	}
	s.mu.Unlock()
}

// storeLocked installs a fill into h and the LRU — negative marks an
// absence fill (ErrNoNode observed at z). A fill older than the
// resident entry is skipped (two same-generation readers may resolve at
// different zxids; data is identical but the watermark must not
// regress). Caller holds s.mu.
func (s *Shard) storeLocked(h *hub, data []byte, st store.Stat, z int64, negative bool) {
	if h.hasData {
		if h.zxid > z {
			return
		}
		s.bytes -= h.cost
		s.lru.Remove(h.elem)
	}
	h.data, h.stat, h.zxid, h.hasData, h.negative = data, st, z, true, negative
	h.cost = int64(len(data)+len(h.path)) + entryOverhead
	h.elem = s.lru.PushFront(h)
	s.bytes += h.cost
}

// dropDataLocked removes h's cached payload from the byte budget and
// LRU. Caller holds s.mu.
func (s *Shard) dropDataLocked(h *hub) {
	s.bytes -= h.cost
	s.lru.Remove(h.elem)
	h.data, h.hasData, h.negative, h.cost, h.elem = nil, false, false, 0, nil
}

// evictLocked enforces the byte budget, least-recently-used first,
// returning the store watches of hubs that no longer earn theirs (to be
// closed after s.mu is released). Caller holds s.mu.
func (s *Shard) evictLocked() []*store.NodeWatch {
	var victims []*store.NodeWatch
	for s.bytes > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			break
		}
		h := back.Value.(*hub)
		s.dropDataLocked(h)
		s.evicts.Inc()
		if len(h.subs) == 0 {
			delete(s.hubs, h.path)
			victims = append(victims, h.w)
		}
	}
	return victims
}

func kidsCost(k *kidsEntry) int64 {
	c := int64(len(k.path)) + entryOverhead
	for _, n := range k.names {
		c += int64(len(n)) + 16
	}
	return c
}

// BytesResident reports the cache's resident payload bytes (records
// plus listings) — the quantity the byte-budget gauge exports.
func (s *Shard) BytesResident() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes + s.kidsBytes
}

// Hubs reports how many store node watches the read path holds.
func (s *Shard) Hubs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.hubs)
}

// Subscribers reports live fan-out subscriptions across all hubs.
func (s *Shard) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, h := range s.hubs {
		n += len(h.subs)
	}
	return n
}

// Stats is the read path's /v1/stats section.
type Stats struct {
	// FollowerReads and CacheBytesMax echo the shard's configuration.
	FollowerReads bool  `json:"followerReads"`
	CacheBytesMax int64 `json:"cacheBytesMax"`
	// CacheBytes and CachedRecords describe residency right now.
	CacheBytes    int64 `json:"cacheBytes"`
	CachedRecords int   `json:"cachedRecords"`
	// Hits/Misses/Invalidations/Evictions are cumulative cache counters;
	// NegativeHits is the subset of Hits answered from a cached absence.
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	NegativeHits  int64 `json:"negativeHits"`
	// CacheServed/FollowerServed/LeaderServed split reads by tier.
	CacheServed    int64 `json:"cacheServed"`
	FollowerServed int64 `json:"followerServed"`
	LeaderServed   int64 `json:"leaderServed"`
	// WatchHubs and Subscribers describe the fan-out multiplexer: how
	// many store watches serve how many subscriptions.
	WatchHubs   int `json:"watchHubs"`
	Subscribers int `json:"subscribers"`
}

// Stats snapshots the shard's read-path counters.
func (s *Shard) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		FollowerReads: s.follower,
		CacheBytesMax: s.maxBytes,
		CacheBytes:    s.bytes + s.kidsBytes,
		CachedRecords: s.lru.Len(),
		WatchHubs:     len(s.hubs),
	}
	for _, h := range s.hubs {
		st.Subscribers += len(h.subs)
	}
	s.mu.Unlock()
	st.Hits = s.hits.Load()
	st.Misses = s.misses.Load()
	st.Invalidations = s.invals.Load()
	st.Evictions = s.evicts.Load()
	st.NegativeHits = s.negHits.Load()
	st.CacheServed = s.srcCache.Load()
	st.FollowerServed = s.srcFollower.Load()
	st.LeaderServed = s.srcLeader.Load()
	return st
}
