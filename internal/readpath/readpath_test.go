package readpath

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
)

func newShard(t *testing.T, cacheBytes int64) (*store.Ensemble, *Shard) {
	t.Helper()
	e := store.NewEnsemble(store.Config{Replicas: 3, SessionTimeout: time.Second})
	cli := e.Connect()
	s := New(Config{Client: cli, FollowerReads: true, CacheBytes: cacheBytes})
	t.Cleanup(func() {
		s.Close()
		cli.Close()
		e.Close()
	})
	return e, s
}

// waitFor polls until cond holds; watch delivery is asynchronous.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	e, s := newShard(t, 1<<20)
	w := e.Connect()
	defer w.Close()
	if _, err := w.Create("/a", []byte("v0"), 0); err != nil {
		t.Fatalf("create: %v", err)
	}

	data, _, z, src, err := s.GetRecord("/a", 0)
	if err != nil {
		t.Fatalf("GetRecord: %v", err)
	}
	if src == SourceCache || string(data) != "v0" {
		t.Fatalf("first read src=%v data=%q, want store-served v0", src, data)
	}
	data, _, z2, src, err := s.GetRecord("/a", z)
	if err != nil {
		t.Fatalf("GetRecord(cached): %v", err)
	}
	if src != SourceCache || string(data) != "v0" || z2 != z {
		t.Errorf("second read src=%v data=%q z=%d, want cache/v0/%d", src, data, z2, z)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if st.CacheBytes <= 0 || st.CachedRecords != 1 {
		t.Errorf("bytes=%d records=%d, want resident entry", st.CacheBytes, st.CachedRecords)
	}
}

func TestWatchInvalidation(t *testing.T) {
	e, s := newShard(t, 1<<20)
	w := e.Connect()
	defer w.Close()
	if _, err := w.Create("/a", []byte("v0"), 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, _, _, _, err := s.GetRecord("/a", 0); err != nil {
		t.Fatalf("fill: %v", err)
	}

	// The write fires the hub's store watch; no TTL is involved.
	if err := w.Set("/a", []byte("v1"), -1); err != nil {
		t.Fatalf("set: %v", err)
	}
	waitFor(t, "invalidation", func() bool { return s.Stats().Invalidations == 1 })

	data, _, _, src, err := s.GetRecord("/a", w.LastWriteZxid())
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if src == SourceCache || string(data) != "v1" {
		t.Errorf("post-invalidation read src=%v data=%q, want fresh v1", src, data)
	}
}

func TestWatermarkRejectsStaleCacheEntry(t *testing.T) {
	e, s := newShard(t, 1<<20)
	w := e.Connect()
	defer w.Close()
	if _, err := w.Create("/a", []byte("v0"), 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	_, _, z, _, err := s.GetRecord("/a", 0)
	if err != nil {
		t.Fatalf("fill: %v", err)
	}
	// A watermark past the entry's zxid must bypass the cache even before
	// the invalidation event has been pumped.
	_, _, _, src, err := s.GetRecord("/a", z+1)
	if err != nil {
		t.Fatalf("watermarked read: %v", err)
	}
	if src == SourceCache {
		t.Errorf("cache served a read demanding zxid %d with entry at %d", z+1, z)
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	e, s := newShard(t, 700) // room for ~2 entries (160B overhead each)
	w := e.Connect()
	defer w.Close()
	for i := 0; i < 4; i++ {
		if _, err := w.Create(fmt.Sprintf("/r%d", i), []byte("0123456789abcdef"), 0); err != nil {
			t.Fatalf("create: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, _, _, _, err := s.GetRecord(fmt.Sprintf("/r%d", i), 0); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions with %d bytes resident of 700 budget", st.CacheBytes)
	}
	if st.CacheBytes > 700 {
		t.Errorf("resident %d bytes exceeds the 700-byte budget", st.CacheBytes)
	}
	// Evicted, unsubscribed hubs must release their store watches.
	if node, _ := e.WatchCounts(); node != st.WatchHubs {
		t.Errorf("store node watches %d != live hubs %d (leak)", node, st.WatchHubs)
	}
}

func TestFanOutSharesOneWatch(t *testing.T) {
	e, s := newShard(t, 0) // cache off: hubs live on subscribers alone
	w := e.Connect()
	defer w.Close()
	if _, err := w.Create("/a", []byte("v0"), 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	baseNode, _ := e.WatchCounts()

	const n = 16
	subs := make([]*Sub, n)
	for i := range subs {
		sub, err := s.Subscribe("/a")
		if err != nil {
			t.Fatalf("subscribe[%d]: %v", i, err)
		}
		subs[i] = sub
	}
	if node, _ := e.WatchCounts(); node != baseNode+1 {
		t.Fatalf("%d subscribers hold %d store watches, want exactly 1", n, node-baseNode)
	}
	if s.Subscribers() != n || s.Hubs() != 1 {
		t.Fatalf("subs=%d hubs=%d, want %d/1", s.Subscribers(), s.Hubs(), n)
	}

	// One write wakes every subscriber.
	if err := w.Set("/a", []byte("v1"), -1); err != nil {
		t.Fatalf("set: %v", err)
	}
	for i, sub := range subs {
		select {
		case <-sub.C():
		case <-time.After(2 * time.Second):
			t.Fatalf("subscriber %d missed the wakeup", i)
		}
	}

	// Disconnect churn: watch count returns to baseline with the last sub.
	for _, sub := range subs {
		sub.Close()
	}
	if node, _ := e.WatchCounts(); node != baseNode {
		t.Errorf("store watches %d after all closes, want baseline %d", node, baseNode)
	}
	if s.Hubs() != 0 || s.Subscribers() != 0 {
		t.Errorf("hubs=%d subs=%d after churn, want 0/0", s.Hubs(), s.Subscribers())
	}
}

func TestSubCloseIdempotentAndCoalesced(t *testing.T) {
	e, s := newShard(t, 0)
	w := e.Connect()
	defer w.Close()
	if _, err := w.Create("/a", nil, 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	sub, err := s.Subscribe("/a")
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	// Multiple writes before the subscriber drains coalesce to ≤ pending+1
	// wakeups — the channel has capacity 1.
	for i := 0; i < 3; i++ {
		if err := w.Set("/a", []byte{byte(i)}, -1); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	waitFor(t, "wakeup", func() bool {
		select {
		case <-sub.C():
			return true
		default:
			return false
		}
	})
	sub.Close()
	sub.Close() // idempotent
	if _, ok := <-sub.C(); ok {
		t.Errorf("closed sub's channel still delivering")
	}
}

func TestHubDiesWithSession(t *testing.T) {
	e := store.NewEnsemble(store.Config{Replicas: 3, SessionTimeout: time.Second})
	defer e.Close()
	cli := e.Connect()
	s := New(Config{Client: cli, FollowerReads: true, CacheBytes: 0})
	defer s.Close()

	w := e.Connect()
	defer w.Close()
	if _, err := w.Create("/a", nil, 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	sub, err := s.Subscribe("/a")
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	cli.Kill() // expire the read path's store session
	select {
	case _, ok := <-sub.C():
		if ok {
			// a pending wakeup may precede the close; drain once more
			if _, ok := <-sub.C(); ok {
				t.Fatalf("sub channel delivered twice after session death without closing")
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("sub channel not closed after session death")
	}
}

func TestLeaderOnlyAblation(t *testing.T) {
	e := store.NewEnsemble(store.Config{Replicas: 3, SessionTimeout: time.Second})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	s := New(Config{Client: cli, FollowerReads: false, CacheBytes: 0})
	defer s.Close()

	w := e.Connect()
	defer w.Close()
	if _, err := w.Create("/a", []byte("v0"), 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	_, _, _, src, err := s.GetRecord("/a", w.LastWriteZxid())
	if err != nil {
		t.Fatalf("GetRecord: %v", err)
	}
	if src != SourceLeader {
		t.Errorf("ablation served from %v, want leader", src)
	}
	st := s.Stats()
	if st.LeaderServed != 1 || st.FollowerServed != 0 || st.CacheServed != 0 {
		t.Errorf("served split %d/%d/%d, want leader-only", st.CacheServed, st.FollowerServed, st.LeaderServed)
	}
}

func TestChildrenCachingAndInvalidation(t *testing.T) {
	e, s := newShard(t, 1<<20)
	w := e.Connect()
	defer w.Close()
	if _, err := w.Create("/dir", nil, 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := w.Create("/dir/a", nil, 0); err != nil {
		t.Fatalf("create child: %v", err)
	}

	names, z, src, err := s.Children("/dir", 0)
	if err != nil {
		t.Fatalf("children: %v", err)
	}
	if src == SourceCache || len(names) != 1 {
		t.Fatalf("first listing src=%v names=%v", src, names)
	}
	names, _, src, err = s.Children("/dir", z)
	if err != nil || src != SourceCache || len(names) != 1 {
		t.Fatalf("second listing src=%v names=%v err=%v, want cached [a]", src, names, err)
	}

	// Membership change invalidates the listing.
	if _, err := w.Create("/dir/b", nil, 0); err != nil {
		t.Fatalf("create child: %v", err)
	}
	waitFor(t, "listing invalidation", func() bool {
		names, _, _, err := s.Children("/dir", 0)
		return err == nil && len(names) == 2
	})
}

func TestMetricsPrecreatedAtZero(t *testing.T) {
	e := store.NewEnsemble(store.Config{Replicas: 3, SessionTimeout: time.Second})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	reg := metrics.NewRegistry()
	s := New(Config{Client: cli, FollowerReads: true, CacheBytes: 1 << 20,
		Registry: reg, Shard: "7"})
	defer s.Close()

	// Satellite requirement: every series exists at zero BEFORE any
	// traffic, so scrapers can rate() from the first scrape.
	text := reg.Text()
	for _, want := range []string{
		`tropic_read_cache_hits_total{shard="7"} 0`,
		`tropic_read_cache_misses_total{shard="7"} 0`,
		`tropic_read_cache_invalidations_total{shard="7"} 0`,
		`tropic_read_cache_evictions_total{shard="7"} 0`,
		`tropic_read_cache_negative_hits_total{shard="7"} 0`,
		`tropic_reads_total{shard="7",source="cache"} 0`,
		`tropic_reads_total{shard="7",source="follower"} 0`,
		`tropic_reads_total{shard="7",source="leader"} 0`,
		`tropic_read_cache_bytes{shard="7"} 0`,
		`tropic_watch_fanout_subscribers{shard="7"} 0`,
		`tropic_watch_fanout_watches{shard="7"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestNegativeCacheServesAuthoritativeAbsence: a miss on an absent path
// caches the absence itself; repeated reads under the watermark are
// ErrNoNode cache hits, and creating the node invalidates the entry
// through the hub's watch so the next read sees the data.
func TestNegativeCacheServesAuthoritativeAbsence(t *testing.T) {
	e, s := newShard(t, 1<<20)
	w := e.Connect()
	defer w.Close()
	// Materialize at least one commit so the ensemble zxid is nonzero.
	if _, err := w.Create("/other", []byte("x"), 0); err != nil {
		t.Fatalf("create: %v", err)
	}

	_, _, z, src, err := s.GetRecord("/a", 0)
	if !errors.Is(err, store.ErrNoNode) {
		t.Fatalf("absent read err=%v, want ErrNoNode", err)
	}
	if src == SourceCache || z <= 0 {
		t.Fatalf("first absent read src=%v z=%d, want store-served with watermark", src, z)
	}

	_, _, z2, src, err := s.GetRecord("/a", z)
	if !errors.Is(err, store.ErrNoNode) {
		t.Fatalf("cached absent read err=%v, want ErrNoNode", err)
	}
	if src != SourceCache || z2 != z {
		t.Errorf("cached absent read src=%v z=%d, want cache at %d", src, z2, z)
	}
	if st := s.Stats(); st.NegativeHits != 1 {
		t.Errorf("NegativeHits=%d, want 1", st.NegativeHits)
	}

	// A watermark past the entry must bypass the cache: absence is only
	// authoritative as of the zxid it was observed at.
	if _, _, _, src, err = s.GetRecord("/a", z+10); errors.Is(err, store.ErrNoNode) && src == SourceCache {
		t.Errorf("cache served absence for a watermark past its zxid")
	}

	// Creation fires the hub's node watch and drops the negative entry.
	if _, err := w.Create("/a", []byte("v0"), 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	waitFor(t, "negative invalidation", func() bool {
		data, _, _, _, err := s.GetRecord("/a", w.LastWriteZxid())
		return err == nil && string(data) == "v0"
	})
	// And the fresh fill is a normal positive entry: next read hits.
	data, _, _, src, err := s.GetRecord("/a", 0)
	if err != nil || src != SourceCache || string(data) != "v0" {
		t.Errorf("post-create read = %q src=%v err=%v, want cached v0", data, src, err)
	}
}
