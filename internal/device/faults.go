package device

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// FaultRule describes one injected failure. Rules model the resource
// volatility of §4: transient API errors, unresponsive devices, and
// crash-like failures.
type FaultRule struct {
	// Action matches the action name; "" matches any action.
	Action string
	// PathPrefix matches the target path by prefix; "" matches any path.
	PathPrefix string
	// FailOn fires the rule only on the Nth matching invocation
	// (1-based); 0 fires on every matching invocation.
	FailOn int
	// Probability fires the rule with the given chance in (0,1]; 0 means
	// deterministic (always, subject to FailOn).
	Probability float64
	// Delay stalls the call before deciding the outcome, for modeling
	// slow or hung devices (the TERM/KILL test bed).
	Delay time.Duration
	// Err is the message of the injected error; "" injects no error
	// (delay-only rule).
	Err string

	invocations int
}

// Injector evaluates fault rules against device calls. It is safe for
// concurrent use.
type Injector struct {
	mu    sync.Mutex
	rules []*FaultRule
	rng   *rand.Rand
}

// NewInjector creates a fault injector seeded deterministically so that
// experiments are reproducible.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Add installs a rule and returns it (so tests can inspect or remove it).
func (in *Injector) Add(rule FaultRule) *FaultRule {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := rule
	in.rules = append(in.rules, &r)
	return &r
}

// Clear removes all rules.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// check consults the rules for a call. It returns a delay to apply and
// an error to inject (nil for none). Only the first matching, firing
// rule applies.
func (in *Injector) check(path, action string) (time.Duration, error) {
	if in == nil {
		return 0, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Action != "" && r.Action != action {
			continue
		}
		if r.PathPrefix != "" && !strings.HasPrefix(path, r.PathPrefix) {
			continue
		}
		r.invocations++
		if r.FailOn != 0 && r.invocations != r.FailOn {
			continue
		}
		if r.Probability > 0 && in.rng.Float64() >= r.Probability {
			continue
		}
		var err error
		if r.Err != "" {
			err = fmt.Errorf("%w: %s %s: %s", ErrInjected, action, path, r.Err)
		}
		return r.Delay, err
	}
	return 0, nil
}
