package device

import "fmt"

// Image is a disk image volume on a storage server: either a template
// (golden image) or a clone serving as a VM's block device. Exported
// images are reachable over the network (GNBD-style) so compute servers
// can import them.
type Image struct {
	Name     string
	SizeGB   int64
	Template bool
	Exported bool
}

// StorageServer simulates a storage host running LVM with GNBD/DRBD
// network export, as in TROPIC's testbed (§5). All methods are called
// with the owning Cloud's lock held.
type StorageServer struct {
	Name       string
	CapacityGB int64
	Images     map[string]*Image
}

func newStorageServer(name string, capacityGB int64) *StorageServer {
	return &StorageServer{Name: name, CapacityGB: capacityGB, Images: make(map[string]*Image)}
}

// usedGB sums the sizes of all volumes on the server.
func (s *StorageServer) usedGB() int64 {
	var sum int64
	for _, img := range s.Images {
		sum += img.SizeGB
	}
	return sum
}

// cloneImage copies a template into a new volume (LVM snapshot+copy).
func (s *StorageServer) cloneImage(template, clone string) error {
	src, ok := s.Images[template]
	if !ok {
		return fmt.Errorf("%w: storage %s has no image %q", ErrNotFound, s.Name, template)
	}
	if _, exists := s.Images[clone]; exists {
		return fmt.Errorf("%w: storage %s already has image %q", ErrExists, s.Name, clone)
	}
	if s.usedGB()+src.SizeGB > s.CapacityGB {
		return fmt.Errorf("%w: storage %s full (%d+%d > %dGB)", ErrCapacity, s.Name, s.usedGB(), src.SizeGB, s.CapacityGB)
	}
	s.Images[clone] = &Image{Name: clone, SizeGB: src.SizeGB}
	return nil
}

// removeImage deletes a volume. Exported volumes must be unexported
// first, mirroring GNBD's refusal to remove a busy export.
func (s *StorageServer) removeImage(name string) error {
	img, ok := s.Images[name]
	if !ok {
		return fmt.Errorf("%w: storage %s has no image %q", ErrNotFound, s.Name, name)
	}
	if img.Exported {
		return fmt.Errorf("%w: image %q still exported", ErrBusy, name)
	}
	if img.Template {
		return fmt.Errorf("%w: image %q is a template", ErrBusy, name)
	}
	delete(s.Images, name)
	return nil
}

// exportImage makes a volume network-visible.
func (s *StorageServer) exportImage(name string) error {
	img, ok := s.Images[name]
	if !ok {
		return fmt.Errorf("%w: storage %s has no image %q", ErrNotFound, s.Name, name)
	}
	if img.Exported {
		return fmt.Errorf("%w: image %q already exported", ErrExists, name)
	}
	img.Exported = true
	return nil
}

// unexportImage withdraws a network export.
func (s *StorageServer) unexportImage(name string) error {
	img, ok := s.Images[name]
	if !ok {
		return fmt.Errorf("%w: storage %s has no image %q", ErrNotFound, s.Name, name)
	}
	if !img.Exported {
		return fmt.Errorf("%w: image %q not exported", ErrNotFound, name)
	}
	img.Exported = false
	return nil
}
