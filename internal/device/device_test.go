package device

import (
	"errors"
	"testing"
	"time"
)

func testCloud(t *testing.T) *Cloud {
	t.Helper()
	c := NewCloud()
	c.AddStorageServer("s1", 100)
	c.AddComputeServer("h1", "xen", 8192)
	c.AddComputeServer("h2", "xen", 4096)
	c.AddComputeServer("hk", "kvm", 8192)
	c.AddSwitch("sw1", 8)
	if err := c.AddImageTemplate("s1", "tmpl", 10); err != nil {
		t.Fatal(err)
	}
	return c
}

// spawnSteps executes the Table 1 spawnVM sequence directly against the
// devices.
func spawnSteps(t *testing.T, c *Cloud, vm string) {
	t.Helper()
	steps := []struct {
		path, action string
		args         []string
	}{
		{"/storageRoot/s1", "cloneImage", []string{"tmpl", vm + "-img"}},
		{"/storageRoot/s1", "exportImage", []string{vm + "-img"}},
		{"/vmRoot/h1", "importImage", []string{vm + "-img"}},
		{"/vmRoot/h1", "createVM", []string{vm, vm + "-img", "1024"}},
		{"/vmRoot/h1", "startVM", []string{vm}},
	}
	for _, s := range steps {
		if err := c.Execute(s.path, s.action, s.args); err != nil {
			t.Fatalf("%s %s: %v", s.action, s.args, err)
		}
	}
}

func TestSpawnSequence(t *testing.T) {
	c := testCloud(t)
	spawnSteps(t, c, "vm1")
	h := c.ComputeHost("h1")
	if h.VMs["vm1"] == nil || h.VMs["vm1"].State != VMRunning {
		t.Fatalf("vm1 = %+v", h.VMs["vm1"])
	}
	if got := c.Calls("createVM"); got != 1 {
		t.Fatalf("createVM calls = %d", got)
	}
}

func TestUndoSequenceRestoresState(t *testing.T) {
	c := testCloud(t)
	spawnSteps(t, c, "vm1")
	// Execute the Table 1 undo actions in reverse order.
	undos := []struct {
		path, action string
		args         []string
	}{
		{"/vmRoot/h1", "stopVM", []string{"vm1"}},
		{"/vmRoot/h1", "removeVM", []string{"vm1"}},
		{"/vmRoot/h1", "unimportImage", []string{"vm1-img"}},
		{"/storageRoot/s1", "unexportImage", []string{"vm1-img"}},
		{"/storageRoot/s1", "removeImage", []string{"vm1-img"}},
	}
	for _, u := range undos {
		if err := c.Execute(u.path, u.action, u.args); err != nil {
			t.Fatalf("undo %s: %v", u.action, err)
		}
	}
	if len(c.ComputeHost("h1").VMs) != 0 || len(c.ComputeHost("h1").Imports) != 0 {
		t.Fatal("compute state not restored")
	}
	s := c.StorageHost("s1")
	if len(s.Images) != 1 || s.Images["tmpl"] == nil {
		t.Fatalf("storage state not restored: %v", s.Images)
	}
}

func TestStorageErrors(t *testing.T) {
	c := testCloud(t)
	cases := []struct {
		action string
		args   []string
		want   error
	}{
		{"cloneImage", []string{"missing", "x"}, ErrNotFound},
		{"cloneImage", []string{"tmpl", "tmpl"}, ErrExists},
		{"removeImage", []string{"missing"}, ErrNotFound},
		{"removeImage", []string{"tmpl"}, ErrBusy}, // template protected
		{"exportImage", []string{"missing"}, ErrNotFound},
		{"unexportImage", []string{"tmpl"}, ErrNotFound}, // not exported
		{"bogusAction", nil, ErrUnknownAction},
		{"cloneImage", []string{"justone"}, ErrInvalidArg},
	}
	for _, tc := range cases {
		err := c.Execute("/storageRoot/s1", tc.action, tc.args)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s %v: err = %v, want %v", tc.action, tc.args, err, tc.want)
		}
	}
}

func TestStorageCapacity(t *testing.T) {
	c := NewCloud()
	c.AddStorageServer("s1", 25)
	c.AddImageTemplate("s1", "tmpl", 10)
	if err := c.Execute("/storageRoot/s1", "cloneImage", []string{"tmpl", "a"}); err != nil {
		t.Fatal(err)
	}
	// 10 (tmpl) + 10 (a) = 20; one more 10GB clone exceeds 25.
	err := c.Execute("/storageRoot/s1", "cloneImage", []string{"tmpl", "b"})
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
}

func TestExportedImageCannotBeRemoved(t *testing.T) {
	c := testCloud(t)
	c.Execute("/storageRoot/s1", "cloneImage", []string{"tmpl", "img"})
	c.Execute("/storageRoot/s1", "exportImage", []string{"img"})
	if err := c.Execute("/storageRoot/s1", "removeImage", []string{"img"}); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
}

func TestComputeErrors(t *testing.T) {
	c := testCloud(t)
	cases := []struct {
		action string
		args   []string
		want   error
	}{
		{"createVM", []string{"vm1", "noimport"}, ErrNotFound},
		{"removeVM", []string{"missing"}, ErrNotFound},
		{"startVM", []string{"missing"}, ErrNotFound},
		{"stopVM", []string{"missing"}, ErrNotFound},
		{"unimportImage", []string{"missing"}, ErrNotFound},
		{"createVM", []string{"vm1", "img", "notanumber"}, ErrInvalidArg},
	}
	for _, tc := range cases {
		err := c.Execute("/vmRoot/h1", tc.action, tc.args)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s %v: err = %v, want %v", tc.action, tc.args, err, tc.want)
		}
	}
}

func TestComputeMemoryCapacity(t *testing.T) {
	c := testCloud(t)
	c.Execute("/storageRoot/s1", "cloneImage", []string{"tmpl", "i1"})
	c.Execute("/storageRoot/s1", "exportImage", []string{"i1"})
	c.Execute("/vmRoot/h2", "importImage", []string{"i1"})
	if err := c.Execute("/vmRoot/h2", "createVM", []string{"vm1", "i1", "4096"}); err != nil {
		t.Fatal(err)
	}
	c.Execute("/storageRoot/s1", "cloneImage", []string{"tmpl", "i2"})
	c.Execute("/storageRoot/s1", "exportImage", []string{"i2"})
	c.Execute("/vmRoot/h2", "importImage", []string{"i2"})
	err := c.Execute("/vmRoot/h2", "createVM", []string{"vm2", "i2", "1"})
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity (h2 is full)", err)
	}
}

func TestRunningVMProtections(t *testing.T) {
	c := testCloud(t)
	spawnSteps(t, c, "vm1")
	if err := c.Execute("/vmRoot/h1", "removeVM", []string{"vm1"}); !errors.Is(err, ErrBusy) {
		t.Fatalf("remove running: %v", err)
	}
	if err := c.Execute("/vmRoot/h1", "unimportImage", []string{"vm1-img"}); !errors.Is(err, ErrBusy) {
		t.Fatalf("unimport in use: %v", err)
	}
	if err := c.Execute("/vmRoot/h1", "startVM", []string{"vm1"}); !errors.Is(err, ErrExists) {
		t.Fatalf("double start: %v", err)
	}
}

func TestMigrate(t *testing.T) {
	c := testCloud(t)
	spawnSteps(t, c, "vm1")
	if err := c.Execute("/vmRoot/h1", "migrateVM", []string{"vm1", "/vmRoot/h2"}); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if c.ComputeHost("h1").VMs["vm1"] != nil {
		t.Fatal("vm1 still on h1")
	}
	vm := c.ComputeHost("h2").VMs["vm1"]
	if vm == nil || vm.State != VMRunning {
		t.Fatalf("vm1 on h2 = %+v", vm)
	}
	if !c.ComputeHost("h2").Imports["vm1-img"] || c.ComputeHost("h1").Imports["vm1-img"] {
		t.Fatal("disk import did not move with the VM")
	}
}

func TestMigrateCrossHypervisorRefused(t *testing.T) {
	c := testCloud(t)
	spawnSteps(t, c, "vm1")
	err := c.Execute("/vmRoot/h1", "migrateVM", []string{"vm1", "/vmRoot/hk"})
	if !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("cross-hypervisor migrate err = %v", err)
	}
}

func TestMigrateCapacityRefused(t *testing.T) {
	c := testCloud(t)
	spawnSteps(t, c, "vm1") // 1024MB on h1
	// Fill h2 to the brim first.
	c.Execute("/storageRoot/s1", "cloneImage", []string{"tmpl", "i2"})
	c.Execute("/storageRoot/s1", "exportImage", []string{"i2"})
	c.Execute("/vmRoot/h2", "importImage", []string{"i2"})
	if err := c.Execute("/vmRoot/h2", "createVM", []string{"big", "i2", "4096"}); err != nil {
		t.Fatal(err)
	}
	err := c.Execute("/vmRoot/h1", "migrateVM", []string{"vm1", "/vmRoot/h2"})
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
}

func TestNetworkActions(t *testing.T) {
	c := testCloud(t)
	if err := c.Execute("/netRoot/sw1", "createVLAN", []string{"100"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Execute("/netRoot/sw1", "attachPort", []string{"100", "vm1.eth0"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Execute("/netRoot/sw1", "deleteVLAN", []string{"100"}); !errors.Is(err, ErrBusy) {
		t.Fatalf("delete with ports: %v", err)
	}
	if err := c.Execute("/netRoot/sw1", "detachPort", []string{"100", "vm1.eth0"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Execute("/netRoot/sw1", "deleteVLAN", []string{"100"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Execute("/netRoot/sw1", "createVLAN", []string{"9999"}); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("vlan range: %v", err)
	}
}

func TestVLANTableCapacity(t *testing.T) {
	c := NewCloud()
	c.AddSwitch("sw", 2)
	c.Execute("/netRoot/sw", "createVLAN", []string{"1"})
	c.Execute("/netRoot/sw", "createVLAN", []string{"2"})
	if err := c.Execute("/netRoot/sw", "createVLAN", []string{"3"}); !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
}

func TestPowerOff(t *testing.T) {
	c := testCloud(t)
	spawnSteps(t, c, "vm1")
	if err := c.PowerOffHost("h1"); err != nil {
		t.Fatal(err)
	}
	if c.ComputeHost("h1").VMs["vm1"].State != VMStopped {
		t.Fatal("VM still running after host power-off")
	}
	if err := c.Execute("/vmRoot/h1", "startVM", []string{"vm1"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("API on dead host: %v", err)
	}
	c.PowerOnHost("h1")
	if err := c.Execute("/vmRoot/h1", "startVM", []string{"vm1"}); err != nil {
		t.Fatalf("start after power-on: %v", err)
	}
}

func TestFaultInjectionNthCall(t *testing.T) {
	c := testCloud(t)
	in := NewInjector(1)
	in.Add(FaultRule{Action: "startVM", FailOn: 2, Err: "flaky hypervisor"})
	c.SetFaultInjector(in)
	spawnSteps(t, c, "vm1") // first startVM succeeds
	c.Execute("/vmRoot/h1", "stopVM", []string{"vm1"})
	err := c.Execute("/vmRoot/h1", "startVM", []string{"vm1"}) // second fails
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Injected failure must not change device state.
	if c.ComputeHost("h1").VMs["vm1"].State != VMStopped {
		t.Fatal("state changed by injected failure")
	}
	if err := c.Execute("/vmRoot/h1", "startVM", []string{"vm1"}); err != nil {
		t.Fatalf("third call: %v", err)
	}
}

func TestFaultInjectionEveryCall(t *testing.T) {
	c := testCloud(t)
	in := NewInjector(1)
	in.Add(FaultRule{Action: "cloneImage", Err: "disk error"})
	c.SetFaultInjector(in)
	for i := 0; i < 3; i++ {
		if err := c.Execute("/storageRoot/s1", "cloneImage", []string{"tmpl", "x"}); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	in.Clear()
	if err := c.Execute("/storageRoot/s1", "cloneImage", []string{"tmpl", "x"}); err != nil {
		t.Fatalf("after clear: %v", err)
	}
}

func TestFaultInjectionDelay(t *testing.T) {
	c := testCloud(t)
	in := NewInjector(1)
	in.Add(FaultRule{Action: "exportImage", Delay: 50 * time.Millisecond})
	c.SetFaultInjector(in)
	c.Execute("/storageRoot/s1", "cloneImage", []string{"tmpl", "img"})
	start := time.Now()
	if err := c.Execute("/storageRoot/s1", "exportImage", []string{"img"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("delay not applied: %v", elapsed)
	}
}

func TestSnapshotReflectsState(t *testing.T) {
	c := testCloud(t)
	spawnSteps(t, c, "vm1")
	c.Execute("/netRoot/sw1", "createVLAN", []string{"7"})
	snap := c.Snapshot()
	vm, err := snap.Get("/vmRoot/h1/vm1")
	if err != nil {
		t.Fatalf("snapshot missing vm1: %v", err)
	}
	if vm.GetString("state") != VMRunning || vm.GetInt("memMB") != 1024 {
		t.Fatalf("vm node = %+v", vm.Attrs)
	}
	img, err := snap.Get("/storageRoot/s1/vm1-img")
	if err != nil {
		t.Fatal(err)
	}
	if !img.GetBool("exported") {
		t.Fatal("image not marked exported in snapshot")
	}
	if _, err := snap.Get("/netRoot/sw1/7"); err != nil {
		t.Fatal("snapshot missing VLAN")
	}
	// Out-of-band change shows up in the next snapshot.
	c.OutOfBandStopVM("h1", "vm1")
	snap2 := c.Snapshot()
	vm2, _ := snap2.Get("/vmRoot/h1/vm1")
	if vm2.GetString("state") != VMStopped {
		t.Fatal("out-of-band stop not visible in snapshot")
	}
}

func TestSnapshotHost(t *testing.T) {
	c := testCloud(t)
	n, err := c.SnapshotHost(VMRoot, "h1")
	if err != nil || n.Type != TypeVMHost {
		t.Fatalf("n=%+v err=%v", n, err)
	}
	if _, err := c.SnapshotHost(VMRoot, "nope"); err == nil {
		t.Fatal("missing host snapshotted")
	}
}

func TestUnknownDevicePaths(t *testing.T) {
	c := testCloud(t)
	for _, p := range []string{"/bogusRoot/x", "/storageRoot", "/"} {
		if err := c.Execute(p, "cloneImage", []string{"a", "b"}); !errors.Is(err, ErrInvalidArg) && !errors.Is(err, ErrNotFound) {
			t.Errorf("Execute(%q): %v", p, err)
		}
	}
	if err := c.Execute("/storageRoot/ghost", "cloneImage", []string{"a", "b"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost host: %v", err)
	}
}
