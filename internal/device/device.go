// Package device simulates the physical substrate TROPIC orchestrates:
// compute servers (Xen hypervisors), storage servers (LVM volumes with
// GNBD/DRBD network export), and a programmable switch layer with VLANs
// (paper §5). The simulators expose exactly the device-API surface that
// TROPIC's physical-layer actions invoke, plus the failure modes §4
// reasons about: injectable API errors, latency, host power-off, and
// out-of-band state changes behind the platform's back.
//
// The package deliberately contains no TROPIC logic — it is the
// substitute for real hardware, so the orchestration code paths above it
// are identical to a deployment against physical devices.
package device

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Error categories for device API failures.
var (
	// ErrNotFound: the target object does not exist on the device.
	ErrNotFound = errors.New("device: not found")
	// ErrExists: the object already exists.
	ErrExists = errors.New("device: already exists")
	// ErrCapacity: the device is out of the relevant resource.
	ErrCapacity = errors.New("device: capacity exceeded")
	// ErrBusy: the object is in use and cannot be changed.
	ErrBusy = errors.New("device: busy")
	// ErrUnreachable: the device does not respond (powered off,
	// partitioned).
	ErrUnreachable = errors.New("device: unreachable")
	// ErrInvalidArg: malformed action arguments.
	ErrInvalidArg = errors.New("device: invalid argument")
	// ErrInjected: a fault-injection rule fired.
	ErrInjected = errors.New("device: injected fault")
	// ErrUnknownAction: the action is not part of the device API.
	ErrUnknownAction = errors.New("device: unknown action")
)

// Well-known model-path roots for the three device classes.
const (
	StorageRoot = "/storageRoot"
	VMRoot      = "/vmRoot"
	NetRoot     = "/netRoot"
)

// Cloud is the collection of simulated devices making up one data
// center. It implements the physical executor interface the workers
// drive. A single mutex serializes device mutations; per-call simulated
// latency happens outside the lock so concurrent workers overlap in
// time, as real device calls would.
type Cloud struct {
	mu      sync.Mutex
	storage map[string]*StorageServer
	compute map[string]*ComputeServer
	network map[string]*Switch

	faults        *Injector
	actionLatency time.Duration

	calls map[string]int // per-action invocation counters
}

// NewCloud creates an empty simulated data center.
func NewCloud() *Cloud {
	return &Cloud{
		storage: make(map[string]*StorageServer),
		compute: make(map[string]*ComputeServer),
		network: make(map[string]*Switch),
		calls:   make(map[string]int),
	}
}

// SetFaultInjector installs (or clears, with nil) the fault injector.
func (c *Cloud) SetFaultInjector(in *Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = in
}

// SetActionLatency sets a fixed simulated duration for every device API
// call, modeling how slow physical state changes are relative to
// logical simulation (§2.2).
func (c *Cloud) SetActionLatency(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.actionLatency = d
}

// AddStorageServer provisions a storage host.
func (c *Cloud) AddStorageServer(name string, capacityGB int64) *StorageServer {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := newStorageServer(name, capacityGB)
	c.storage[name] = s
	return s
}

// AddComputeServer provisions a compute host.
func (c *Cloud) AddComputeServer(name, hypervisor string, memMB int64) *ComputeServer {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := newComputeServer(name, hypervisor, memMB)
	c.compute[name] = s
	return s
}

// AddSwitch provisions a switch.
func (c *Cloud) AddSwitch(name string, maxVLANs int) *Switch {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw := newSwitch(name, maxVLANs)
	c.network[name] = sw
	return sw
}

// AddImageTemplate installs a golden image on a storage host.
func (c *Cloud) AddImageTemplate(storageHost, name string, sizeGB int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.storage[storageHost]
	if !ok {
		return fmt.Errorf("%w: storage host %q", ErrNotFound, storageHost)
	}
	if _, exists := s.Images[name]; exists {
		return fmt.Errorf("%w: image %q", ErrExists, name)
	}
	s.Images[name] = &Image{Name: name, SizeGB: sizeGB, Template: true}
	return nil
}

// Calls reports how many times an action has been executed.
func (c *Cloud) Calls(action string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[action]
}

// Execute performs one physical action: the device-API invocation behind
// a LogRecord. path addresses the node the action was recorded on (a
// host or switch, per Table 1), action is the API name, and args its
// parameters.
func (c *Cloud) Execute(path, action string, args []string) error {
	// Fault evaluation and latency happen before touching device state,
	// modeling network/API time; injected errors leave state unchanged
	// (the call "never reached" the device).
	c.mu.Lock()
	inj := c.faults
	lat := c.actionLatency
	c.mu.Unlock()
	delay, injErr := inj.check(path, action)
	if lat+delay > 0 {
		time.Sleep(lat + delay)
	}
	if injErr != nil {
		return injErr
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls[action]++

	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(parts) < 2 || parts[0] == "" {
		return fmt.Errorf("%w: path %q does not address a device", ErrInvalidArg, path)
	}
	root, host := "/"+parts[0], parts[1]
	switch root {
	case StorageRoot:
		s, ok := c.storage[host]
		if !ok {
			return fmt.Errorf("%w: storage host %q", ErrNotFound, host)
		}
		return c.execStorage(s, action, args)
	case VMRoot:
		h, ok := c.compute[host]
		if !ok {
			return fmt.Errorf("%w: compute host %q", ErrNotFound, host)
		}
		return c.execCompute(h, action, args)
	case NetRoot:
		sw, ok := c.network[host]
		if !ok {
			return fmt.Errorf("%w: switch %q", ErrNotFound, host)
		}
		return c.execNetwork(sw, action, args)
	default:
		return fmt.Errorf("%w: unknown device root %q", ErrInvalidArg, root)
	}
}

func needArgs(action string, args []string, n int) error {
	if len(args) < n {
		return fmt.Errorf("%w: %s needs %d args, got %v", ErrInvalidArg, action, n, args)
	}
	return nil
}

func (c *Cloud) execStorage(s *StorageServer, action string, args []string) error {
	switch action {
	case "cloneImage":
		if err := needArgs(action, args, 2); err != nil {
			return err
		}
		return s.cloneImage(args[0], args[1])
	case "removeImage":
		if err := needArgs(action, args, 1); err != nil {
			return err
		}
		return s.removeImage(args[0])
	case "exportImage":
		if err := needArgs(action, args, 1); err != nil {
			return err
		}
		return s.exportImage(args[0])
	case "unexportImage":
		if err := needArgs(action, args, 1); err != nil {
			return err
		}
		return s.unexportImage(args[0])
	default:
		return fmt.Errorf("%w: storage action %q", ErrUnknownAction, action)
	}
}

func (c *Cloud) execCompute(h *ComputeServer, action string, args []string) error {
	switch action {
	case "importImage":
		if err := needArgs(action, args, 1); err != nil {
			return err
		}
		return h.importImage(args[0])
	case "unimportImage":
		if err := needArgs(action, args, 1); err != nil {
			return err
		}
		return h.unimportImage(args[0])
	case "createVM":
		if err := needArgs(action, args, 2); err != nil {
			return err
		}
		mem := int64(1024)
		if len(args) >= 3 {
			m, err := strconv.ParseInt(args[2], 10, 64)
			if err != nil || m <= 0 {
				return fmt.Errorf("%w: createVM memMB %q", ErrInvalidArg, args[2])
			}
			mem = m
		}
		return h.createVM(args[0], args[1], mem)
	case "removeVM":
		if err := needArgs(action, args, 1); err != nil {
			return err
		}
		return h.removeVM(args[0])
	case "startVM":
		if err := needArgs(action, args, 1); err != nil {
			return err
		}
		return h.startVM(args[0])
	case "stopVM":
		if err := needArgs(action, args, 1); err != nil {
			return err
		}
		return h.stopVM(args[0])
	case "setVMMem":
		if err := needArgs(action, args, 2); err != nil {
			return err
		}
		mem, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil || mem <= 0 {
			return fmt.Errorf("%w: setVMMem memMB %q", ErrInvalidArg, args[1])
		}
		return h.setVMMem(args[0], mem)
	case "migrateVM":
		if err := needArgs(action, args, 2); err != nil {
			return err
		}
		return c.migrateVM(h, args[0], args[1])
	default:
		return fmt.Errorf("%w: compute action %q", ErrUnknownAction, action)
	}
}

// migrateVM live-migrates a VM from src to the compute host addressed by
// dstHostPath (a /vmRoot/<host> model path). Caller holds c.mu.
func (c *Cloud) migrateVM(src *ComputeServer, vmName, dstHostPath string) error {
	parts := strings.Split(strings.TrimPrefix(dstHostPath, "/"), "/")
	if len(parts) != 2 || "/"+parts[0] != VMRoot {
		return fmt.Errorf("%w: migrate destination %q", ErrInvalidArg, dstHostPath)
	}
	dst, ok := c.compute[parts[1]]
	if !ok {
		return fmt.Errorf("%w: compute host %q", ErrNotFound, parts[1])
	}
	if err := src.checkPower(); err != nil {
		return err
	}
	if err := dst.checkPower(); err != nil {
		return err
	}
	vm, ok := src.VMs[vmName]
	if !ok {
		return fmt.Errorf("%w: host %s has no VM %q", ErrNotFound, src.Name, vmName)
	}
	if src == dst {
		return fmt.Errorf("%w: VM %q already on %s", ErrExists, vmName, dst.Name)
	}
	if _, exists := dst.VMs[vmName]; exists {
		return fmt.Errorf("%w: host %s already has VM %q", ErrExists, dst.Name, vmName)
	}
	if src.Hypervisor != dst.Hypervisor {
		// Real hypervisors refuse cross-type migration; TROPIC's VM-type
		// constraint exists to catch this in the logical layer first.
		return fmt.Errorf("%w: cannot migrate %s VM to %s host", ErrInvalidArg, src.Hypervisor, dst.Hypervisor)
	}
	if dst.usedMemMB()+vm.MemMB > dst.MemMB {
		return fmt.Errorf("%w: host %s memory %d+%d > %dMB", ErrCapacity, dst.Name, dst.usedMemMB(), vm.MemMB, dst.MemMB)
	}
	// The VM's disk is network-attached, so migration moves the import
	// along with the guest.
	delete(src.VMs, vmName)
	delete(src.Imports, vm.Image)
	dst.VMs[vmName] = vm
	dst.Imports[vm.Image] = true
	return nil
}

func (c *Cloud) execNetwork(sw *Switch, action string, args []string) error {
	switch action {
	case "createVLAN":
		if err := needArgs(action, args, 1); err != nil {
			return err
		}
		id, err := parseVLANID(args[0])
		if err != nil {
			return err
		}
		return sw.createVLAN(id)
	case "deleteVLAN":
		if err := needArgs(action, args, 1); err != nil {
			return err
		}
		id, err := parseVLANID(args[0])
		if err != nil {
			return err
		}
		return sw.deleteVLAN(id)
	case "attachPort":
		if err := needArgs(action, args, 2); err != nil {
			return err
		}
		id, err := parseVLANID(args[0])
		if err != nil {
			return err
		}
		return sw.attachPort(id, args[1])
	case "detachPort":
		if err := needArgs(action, args, 2); err != nil {
			return err
		}
		id, err := parseVLANID(args[0])
		if err != nil {
			return err
		}
		return sw.detachPort(id, args[1])
	default:
		return fmt.Errorf("%w: network action %q", ErrUnknownAction, action)
	}
}
