package device

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/model"
)

// joinSorted renders a string set deterministically ("a,b,c"), the
// canonical encoding shared by the logical model so the two layers
// compare equal attribute-by-attribute.
func joinSorted(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// Entity type names shared between the physical snapshot and the logical
// data model, so the two layers are directly comparable (§4).
const (
	TypeStorageRoot = "root.storage"
	TypeVMRoot      = "root.vm"
	TypeNetRoot     = "root.net"
	TypeStorageHost = "storageHost"
	TypeVMHost      = "vmHost"
	TypeSwitch      = "switch"
	TypeImage       = "image"
	TypeVM          = "vm"
	TypeVLAN        = "vlan"
)

// Snapshot exports the devices' current state as a data model tree: the
// physical data model the workers maintain (§2.2). Reconciliation
// (reload/repair) compares this against the controller's logical tree.
func (c *Cloud) Snapshot() *model.Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := model.NewTree()
	sr, _ := t.Create(StorageRoot, TypeStorageRoot, nil)
	vr, _ := t.Create(VMRoot, TypeVMRoot, nil)
	nr, _ := t.Create(NetRoot, TypeNetRoot, nil)

	for name, s := range c.storage {
		hn := model.NewNode(name, TypeStorageHost)
		hn.Attrs["capGB"] = s.CapacityGB
		for iname, img := range s.Images {
			in := model.NewNode(iname, TypeImage)
			in.Attrs["sizeGB"] = img.SizeGB
			in.Attrs["template"] = img.Template
			in.Attrs["exported"] = img.Exported
			hn.Children[iname] = in
		}
		sr.Children[name] = hn
	}
	for name, h := range c.compute {
		hn := model.NewNode(name, TypeVMHost)
		hn.Attrs["hypervisor"] = h.Hypervisor
		hn.Attrs["memMB"] = h.MemMB
		hn.Attrs["imports"] = joinSorted(h.Imports)
		for vname, vm := range h.VMs {
			vn := model.NewNode(vname, TypeVM)
			vn.Attrs["image"] = vm.Image
			vn.Attrs["memMB"] = vm.MemMB
			vn.Attrs["state"] = vm.State
			vn.Attrs["hypervisor"] = h.Hypervisor
			hn.Children[vname] = vn
		}
		vr.Children[name] = hn
	}
	for name, sw := range c.network {
		sn := model.NewNode(name, TypeSwitch)
		sn.Attrs["maxVLANs"] = int64(sw.MaxVLANs)
		for id, v := range sw.VLANs {
			vname := strconv.Itoa(id)
			vn := model.NewNode(vname, TypeVLAN)
			vn.Attrs["ports"] = int64(len(v.Ports))
			sn.Children[vname] = vn
		}
		nr.Children[name] = sn
	}
	return t
}

// SnapshotHost exports a single host's subtree, for targeted reload.
// root must be StorageRoot or VMRoot.
func (c *Cloud) SnapshotHost(root, host string) (*model.Node, error) {
	full := c.Snapshot()
	n, err := full.Get(model.Join(root, host))
	if err != nil {
		return nil, fmt.Errorf("device: snapshot %s/%s: %w", root, host, err)
	}
	return n, nil
}

// --- Out-of-band mutations (§4's volatility scenarios) ---------------
//
// These bypass TROPIC entirely, modeling operators logging into devices
// directly, crashes, and power events. They are the inputs to the
// reconciliation experiments.

// PowerOffHost simulates an unexpected compute-host reboot or outage:
// every running VM on it stops, and until powered on the host rejects
// API calls.
func (c *Cloud) PowerOffHost(host string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.compute[host]
	if !ok {
		return fmt.Errorf("%w: compute host %q", ErrNotFound, host)
	}
	h.PoweredOff = true
	for _, vm := range h.VMs {
		vm.State = VMStopped
	}
	return nil
}

// PowerOnHost restores a powered-off host (VMs stay stopped, as after a
// real reboot).
func (c *Cloud) PowerOnHost(host string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.compute[host]
	if !ok {
		return fmt.Errorf("%w: compute host %q", ErrNotFound, host)
	}
	h.PoweredOff = false
	return nil
}

// OutOfBandStopVM models an operator stopping a VM via the hypervisor
// CLI without going through TROPIC.
func (c *Cloud) OutOfBandStopVM(host, vm string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.compute[host]
	if !ok {
		return fmt.Errorf("%w: compute host %q", ErrNotFound, host)
	}
	v, ok := h.VMs[vm]
	if !ok {
		return fmt.Errorf("%w: VM %q", ErrNotFound, vm)
	}
	v.State = VMStopped
	return nil
}

// OutOfBandRemoveImage models an operator deleting a volume directly.
func (c *Cloud) OutOfBandRemoveImage(host, image string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.storage[host]
	if !ok {
		return fmt.Errorf("%w: storage host %q", ErrNotFound, host)
	}
	if _, ok := s.Images[image]; !ok {
		return fmt.Errorf("%w: image %q", ErrNotFound, image)
	}
	delete(s.Images, image)
	return nil
}

// VMInfo returns a copy of one VM's state under the device lock — the
// safe way to observe a VM while workers are executing; ok=false when
// the host or VM is absent.
func (c *Cloud) VMInfo(host, vm string) (VM, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.compute[host]
	if !ok {
		return VM{}, false
	}
	v, ok := h.VMs[vm]
	if !ok {
		return VM{}, false
	}
	return *v, true
}

// ComputeHost returns a compute server for white-box inspection in
// tests. The returned struct is NOT synchronized: only read it while
// no worker is executing (e.g. after transactions reach terminal
// states); use VMInfo to observe live execution. Nil when absent.
func (c *Cloud) ComputeHost(name string) *ComputeServer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compute[name]
}

// StorageHost returns a storage server for white-box inspection; nil
// when absent.
func (c *Cloud) StorageHost(name string) *StorageServer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.storage[name]
}

// NetworkSwitch returns a switch for white-box inspection; nil when
// absent.
func (c *Cloud) NetworkSwitch(name string) *Switch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.network[name]
}
