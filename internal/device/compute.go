package device

import "fmt"

// VM states mirror the hypervisor's view.
const (
	VMStopped = "stopped"
	VMRunning = "running"
)

// VM is a virtual machine instance on a compute server.
type VM struct {
	Name  string
	Image string // imported image backing the VM's disk
	MemMB int64
	State string
}

// ComputeServer simulates a virtualized compute host (Xen in TROPIC's
// testbed). All methods are called with the owning Cloud's lock held.
type ComputeServer struct {
	Name       string
	Hypervisor string // e.g. "xen", "kvm" — the VM-type constraint's input
	MemMB      int64  // physical memory available to guests
	VMs        map[string]*VM
	Imports    map[string]bool // network block devices currently imported
	PoweredOff bool            // set by out-of-band failure injection
}

func newComputeServer(name, hypervisor string, memMB int64) *ComputeServer {
	return &ComputeServer{
		Name:       name,
		Hypervisor: hypervisor,
		MemMB:      memMB,
		VMs:        make(map[string]*VM),
		Imports:    make(map[string]bool),
	}
}

// usedMemMB sums guest memory of all VMs placed on the host (running or
// not), the quantity the host-memory constraint bounds.
func (c *ComputeServer) usedMemMB() int64 {
	var sum int64
	for _, vm := range c.VMs {
		sum += vm.MemMB
	}
	return sum
}

func (c *ComputeServer) checkPower() error {
	if c.PoweredOff {
		return fmt.Errorf("%w: host %s is powered off", ErrUnreachable, c.Name)
	}
	return nil
}

// importImage attaches a network block device exported by a storage
// server.
func (c *ComputeServer) importImage(image string) error {
	if err := c.checkPower(); err != nil {
		return err
	}
	if c.Imports[image] {
		return fmt.Errorf("%w: host %s already imported %q", ErrExists, c.Name, image)
	}
	c.Imports[image] = true
	return nil
}

// unimportImage detaches a network block device. It must not be in use
// by any VM.
func (c *ComputeServer) unimportImage(image string) error {
	if err := c.checkPower(); err != nil {
		return err
	}
	if !c.Imports[image] {
		return fmt.Errorf("%w: host %s has no import %q", ErrNotFound, c.Name, image)
	}
	for _, vm := range c.VMs {
		if vm.Image == image {
			return fmt.Errorf("%w: import %q used by VM %s", ErrBusy, image, vm.Name)
		}
	}
	delete(c.Imports, image)
	return nil
}

// createVM defines a stopped VM backed by an imported image.
func (c *ComputeServer) createVM(name, image string, memMB int64) error {
	if err := c.checkPower(); err != nil {
		return err
	}
	if _, exists := c.VMs[name]; exists {
		return fmt.Errorf("%w: host %s already has VM %q", ErrExists, c.Name, name)
	}
	if !c.Imports[image] {
		return fmt.Errorf("%w: host %s has not imported %q", ErrNotFound, c.Name, image)
	}
	if c.usedMemMB()+memMB > c.MemMB {
		return fmt.Errorf("%w: host %s memory %d+%d > %dMB", ErrCapacity, c.Name, c.usedMemMB(), memMB, c.MemMB)
	}
	c.VMs[name] = &VM{Name: name, Image: image, MemMB: memMB, State: VMStopped}
	return nil
}

// removeVM deletes a stopped VM's configuration.
func (c *ComputeServer) removeVM(name string) error {
	if err := c.checkPower(); err != nil {
		return err
	}
	vm, ok := c.VMs[name]
	if !ok {
		return fmt.Errorf("%w: host %s has no VM %q", ErrNotFound, c.Name, name)
	}
	if vm.State == VMRunning {
		return fmt.Errorf("%w: VM %q is running", ErrBusy, name)
	}
	delete(c.VMs, name)
	return nil
}

// setVMMem changes a stopped VM's memory reservation.
func (c *ComputeServer) setVMMem(name string, memMB int64) error {
	if err := c.checkPower(); err != nil {
		return err
	}
	vm, ok := c.VMs[name]
	if !ok {
		return fmt.Errorf("%w: host %s has no VM %q", ErrNotFound, c.Name, name)
	}
	if vm.State == VMRunning {
		return fmt.Errorf("%w: VM %q must be stopped to resize", ErrBusy, name)
	}
	if c.usedMemMB()-vm.MemMB+memMB > c.MemMB {
		return fmt.Errorf("%w: host %s memory %d-%d+%d > %dMB", ErrCapacity,
			c.Name, c.usedMemMB(), vm.MemMB, memMB, c.MemMB)
	}
	vm.MemMB = memMB
	return nil
}

// startVM boots a VM.
func (c *ComputeServer) startVM(name string) error {
	if err := c.checkPower(); err != nil {
		return err
	}
	vm, ok := c.VMs[name]
	if !ok {
		return fmt.Errorf("%w: host %s has no VM %q", ErrNotFound, c.Name, name)
	}
	if vm.State == VMRunning {
		return fmt.Errorf("%w: VM %q already running", ErrExists, name)
	}
	vm.State = VMRunning
	return nil
}

// stopVM shuts a VM down.
func (c *ComputeServer) stopVM(name string) error {
	if err := c.checkPower(); err != nil {
		return err
	}
	vm, ok := c.VMs[name]
	if !ok {
		return fmt.Errorf("%w: host %s has no VM %q", ErrNotFound, c.Name, name)
	}
	if vm.State == VMStopped {
		return fmt.Errorf("%w: VM %q already stopped", ErrNotFound, name)
	}
	vm.State = VMStopped
	return nil
}
