package device

import (
	"fmt"
	"strconv"
)

// VLAN is one virtual LAN configured on a switch, with the ports (VM
// interfaces) attached to it.
type VLAN struct {
	ID    int
	Ports map[string]bool
}

// Switch simulates the programmable switch layer (Juniper routers in
// TROPIC's testbed) that provides VLANs for inter-VM communication. All
// methods are called with the owning Cloud's lock held.
type Switch struct {
	Name     string
	MaxVLANs int
	VLANs    map[int]*VLAN
}

func newSwitch(name string, maxVLANs int) *Switch {
	if maxVLANs <= 0 {
		maxVLANs = 4094
	}
	return &Switch{Name: name, MaxVLANs: maxVLANs, VLANs: make(map[int]*VLAN)}
}

func parseVLANID(s string) (int, error) {
	id, err := strconv.Atoi(s)
	if err != nil || id < 1 || id > 4094 {
		return 0, fmt.Errorf("%w: VLAN id %q out of range 1-4094", ErrInvalidArg, s)
	}
	return id, nil
}

// createVLAN provisions a VLAN on the switch.
func (sw *Switch) createVLAN(id int) error {
	if _, exists := sw.VLANs[id]; exists {
		return fmt.Errorf("%w: switch %s already has VLAN %d", ErrExists, sw.Name, id)
	}
	if len(sw.VLANs) >= sw.MaxVLANs {
		return fmt.Errorf("%w: switch %s VLAN table full (%d)", ErrCapacity, sw.Name, sw.MaxVLANs)
	}
	sw.VLANs[id] = &VLAN{ID: id, Ports: make(map[string]bool)}
	return nil
}

// deleteVLAN removes a VLAN; it must have no attached ports.
func (sw *Switch) deleteVLAN(id int) error {
	v, ok := sw.VLANs[id]
	if !ok {
		return fmt.Errorf("%w: switch %s has no VLAN %d", ErrNotFound, sw.Name, id)
	}
	if len(v.Ports) > 0 {
		return fmt.Errorf("%w: VLAN %d has %d attached ports", ErrBusy, id, len(v.Ports))
	}
	delete(sw.VLANs, id)
	return nil
}

// attachPort joins a port (VM interface) to a VLAN.
func (sw *Switch) attachPort(id int, port string) error {
	v, ok := sw.VLANs[id]
	if !ok {
		return fmt.Errorf("%w: switch %s has no VLAN %d", ErrNotFound, sw.Name, id)
	}
	if v.Ports[port] {
		return fmt.Errorf("%w: port %q already on VLAN %d", ErrExists, port, id)
	}
	v.Ports[port] = true
	return nil
}

// detachPort removes a port from a VLAN.
func (sw *Switch) detachPort(id int, port string) error {
	v, ok := sw.VLANs[id]
	if !ok {
		return fmt.Errorf("%w: switch %s has no VLAN %d", ErrNotFound, sw.Name, id)
	}
	if !v.Ports[port] {
		return fmt.Errorf("%w: port %q not on VLAN %d", ErrNotFound, port, id)
	}
	delete(v.Ports, port)
	return nil
}
