// Package model implements TROPIC's semi-structured hierarchical data
// model (paper §2.2). Cloud resources form a tree; each tree node is an
// object representing an instance of an entity. Entities define queries
// (read-only inspection), actions (atomic state transitions, defined once
// for logical simulation and once for physical execution), and
// constraints (service and engineering rules enforced at runtime).
//
// The same representation serves both layers: the controller's logical
// data model is a tree of Nodes, and the simulated devices export their
// physical state as a tree of Nodes for reconciliation (§4).
package model

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Node is one object in the hierarchical data model.
type Node struct {
	// Name is the last path component, e.g. "vmHost3".
	Name string
	// Type names the entity this node instantiates, e.g. "vmHost".
	Type string
	// Attrs holds the node's attributes. Values must be JSON-compatible
	// scalars (string, int64/float64, bool); use the typed accessors,
	// which normalize across JSON round trips.
	Attrs map[string]any
	// Children indexes child nodes by name.
	Children map[string]*Node
	// Inconsistent marks the node (and implicitly its subtree) as out of
	// sync between the logical and physical layers; transactions touching
	// it are denied until reconciled (§4).
	Inconsistent bool
	// Unusable marks a node whose repair/reload failed due to hardware
	// faults; future transactions must not use it (§4).
	Unusable bool
}

// NewNode creates a node with no attributes or children.
func NewNode(name, typ string) *Node {
	return &Node{
		Name:     name,
		Type:     typ,
		Attrs:    make(map[string]any),
		Children: make(map[string]*Node),
	}
}

// GetString returns a string attribute ("" when absent).
func (n *Node) GetString(key string) string {
	s, _ := n.Attrs[key].(string)
	return s
}

// GetInt returns an integer attribute, coercing float64 values that
// appear after JSON decoding. Returns 0 when absent.
func (n *Node) GetInt(key string) int64 {
	switch v := n.Attrs[key].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case float64:
		return int64(v)
	default:
		return 0
	}
}

// GetBool returns a boolean attribute (false when absent).
func (n *Node) GetBool(key string) bool {
	b, _ := n.Attrs[key].(bool)
	return b
}

// SortedChildren returns child names in lexicographic order.
func (n *Node) SortedChildren() []string {
	names := make([]string, 0, len(n.Children))
	for name := range n.Children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Clone deep-copies the subtree rooted at n.
func (n *Node) Clone() *Node {
	c := &Node{
		Name:         n.Name,
		Type:         n.Type,
		Attrs:        make(map[string]any, len(n.Attrs)),
		Children:     make(map[string]*Node, len(n.Children)),
		Inconsistent: n.Inconsistent,
		Unusable:     n.Unusable,
	}
	for k, v := range n.Attrs {
		c.Attrs[k] = v
	}
	for name, child := range n.Children {
		c.Children[name] = child.Clone()
	}
	return c
}

// CountNodes returns the number of nodes in the subtree including n.
func (n *Node) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// Tree is a data model instance: a rooted hierarchy addressed by
// slash-separated paths such as /vmRoot/vmHost1/vm3. A Tree is not
// internally synchronized — the controller serializes all access to its
// logical tree, matching TROPIC's single-leader execution model.
type Tree struct {
	Root *Node
}

// NewTree creates an empty tree whose root has type "root".
func NewTree() *Tree {
	return &Tree{Root: NewNode("", "root")}
}

// SplitPath validates a model path and returns its components.
func SplitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("model: path %q must start with '/'", path)
	}
	if path == "/" {
		return nil, nil
	}
	if strings.HasSuffix(path, "/") {
		return nil, fmt.Errorf("model: path %q must not end with '/'", path)
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("model: path %q has empty component", path)
		}
	}
	return parts, nil
}

// ParentPath returns the parent of a validated path ("/" for top-level).
func ParentPath(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// Ancestors returns all proper ancestor paths of path from the root down,
// excluding "/" itself. For /a/b/c it returns [/a, /a/b].
func Ancestors(path string) []string {
	var out []string
	for i := 1; i < len(path); i++ {
		if path[i] == '/' {
			out = append(out, path[:i])
		}
	}
	return out
}

// Join appends a child name to a path.
func Join(path, name string) string {
	if path == "/" {
		return "/" + name
	}
	return path + "/" + name
}

// Get returns the node at path, or an error naming the missing path.
func (t *Tree) Get(path string) (*Node, error) {
	parts, err := SplitPath(path)
	if err != nil {
		return nil, err
	}
	n := t.Root
	for _, p := range parts {
		child, ok := n.Children[p]
		if !ok {
			return nil, fmt.Errorf("model: no node at %s", path)
		}
		n = child
	}
	return n, nil
}

// Exists reports whether a node exists at path.
func (t *Tree) Exists(path string) bool {
	n, err := t.Get(path)
	return err == nil && n != nil
}

// Create inserts a new node at path. The parent must exist and the name
// must be free.
func (t *Tree) Create(path, typ string, attrs map[string]any) (*Node, error) {
	parts, err := SplitPath(path)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("model: cannot create root")
	}
	parent, err := t.Get(ParentPath(path))
	if err != nil {
		return nil, fmt.Errorf("model: create %s: %w", path, err)
	}
	name := parts[len(parts)-1]
	if _, exists := parent.Children[name]; exists {
		return nil, fmt.Errorf("model: node %s already exists", path)
	}
	n := NewNode(name, typ)
	for k, v := range attrs {
		n.Attrs[k] = v
	}
	parent.Children[name] = n
	return n, nil
}

// Delete removes the node at path and its subtree.
func (t *Tree) Delete(path string) error {
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("model: cannot delete root")
	}
	parent, err := t.Get(ParentPath(path))
	if err != nil {
		return fmt.Errorf("model: delete %s: %w", path, err)
	}
	name := parts[len(parts)-1]
	if _, ok := parent.Children[name]; !ok {
		return fmt.Errorf("model: no node at %s", path)
	}
	delete(parent.Children, name)
	return nil
}

// Clone deep-copies the whole tree.
func (t *Tree) Clone() *Tree {
	return &Tree{Root: t.Root.Clone()}
}

// Size returns the total node count (excluding the synthetic root).
func (t *Tree) Size() int {
	return t.Root.CountNodes() - 1
}

// Walk visits every node (excluding the root) in depth-first order with
// its full path. Returning a non-nil error from fn stops the walk.
func (t *Tree) Walk(fn func(path string, n *Node) error) error {
	var walk func(prefix string, n *Node) error
	walk = func(prefix string, n *Node) error {
		for _, name := range n.SortedChildren() {
			child := n.Children[name]
			p := prefix + "/" + name
			if err := fn(p, child); err != nil {
				return err
			}
			if err := walk(p, child); err != nil {
				return err
			}
		}
		return nil
	}
	return walk("", t.Root)
}

// nodeJSON is the serialized node form used for snapshots and
// reconciliation transfers.
type nodeJSON struct {
	Name         string               `json:"name"`
	Type         string               `json:"type"`
	Attrs        map[string]any       `json:"attrs,omitempty"`
	Children     map[string]*nodeJSON `json:"children,omitempty"`
	Inconsistent bool                 `json:"inconsistent,omitempty"`
	Unusable     bool                 `json:"unusable,omitempty"`
}

func toJSONNode(n *Node) *nodeJSON {
	j := &nodeJSON{
		Name:         n.Name,
		Type:         n.Type,
		Attrs:        n.Attrs,
		Inconsistent: n.Inconsistent,
		Unusable:     n.Unusable,
	}
	if len(n.Children) > 0 {
		j.Children = make(map[string]*nodeJSON, len(n.Children))
		for name, c := range n.Children {
			j.Children[name] = toJSONNode(c)
		}
	}
	return j
}

func fromJSONNode(j *nodeJSON) *Node {
	n := NewNode(j.Name, j.Type)
	for k, v := range j.Attrs {
		n.Attrs[k] = normalizeValue(v)
	}
	for name, c := range j.Children {
		n.Children[name] = fromJSONNode(c)
	}
	n.Inconsistent = j.Inconsistent
	n.Unusable = j.Unusable
	return n
}

// normalizeValue coerces JSON-decoded numbers to int64 when they are
// integral, so attribute comparisons behave identically before and after
// a snapshot round trip.
func normalizeValue(v any) any {
	if f, ok := v.(float64); ok {
		if f == float64(int64(f)) {
			return int64(f)
		}
	}
	return v
}

// MarshalSnapshot serializes the tree for persistence in the
// coordination store (checkpointing) or transfer between layers.
func (t *Tree) MarshalSnapshot() ([]byte, error) {
	return json.Marshal(toJSONNode(t.Root))
}

// UnmarshalSnapshot restores a tree serialized by MarshalSnapshot.
func UnmarshalSnapshot(data []byte) (*Tree, error) {
	var j nodeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("model: decode snapshot: %w", err)
	}
	return &Tree{Root: fromJSONNode(&j)}, nil
}

// Equal reports whether two subtrees have identical structure, types and
// attributes (ignoring Inconsistent/Unusable marks, which are control
// metadata rather than resource state).
func Equal(a, b *Node) bool {
	if a.Name != b.Name || a.Type != b.Type {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for k, av := range a.Attrs {
		bv, ok := b.Attrs[k]
		if !ok || !valueEqual(av, bv) {
			return false
		}
	}
	for name, ac := range a.Children {
		bc, ok := b.Children[name]
		if !ok || !Equal(ac, bc) {
			return false
		}
	}
	return true
}

func valueEqual(a, b any) bool {
	return fmt.Sprint(normalizeValue(a)) == fmt.Sprint(normalizeValue(b))
}
