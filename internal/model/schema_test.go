package model

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	s.Entity("root.vm")
	s.Entity("vm").
		Action(&ActionDef{
			Name: "startVM",
			Simulate: func(tr *Tree, path string, args []string) error {
				n, err := tr.Get(path)
				if err != nil {
					return err
				}
				n.Attrs["state"] = "running"
				return nil
			},
			Undo: "stopVM",
		}).
		Action(&ActionDef{
			Name: "stopVM",
			Simulate: func(tr *Tree, path string, args []string) error {
				n, err := tr.Get(path)
				if err != nil {
					return err
				}
				n.Attrs["state"] = "stopped"
				return nil
			},
			Undo: "startVM",
		})
	s.Entity("vmHost").
		Action(&ActionDef{
			Name: "createVM",
			Simulate: func(tr *Tree, path string, args []string) error {
				_, err := tr.Create(Join(path, args[0]), "vm",
					map[string]any{"state": "stopped", "memMB": int64(2048)})
				return err
			},
			Undo:     "removeVM",
			UndoArgs: func(tr *Tree, path string, args []string) []string { return args[:1] },
		}).
		Constrain(Constraint{
			Name: "vm-memory",
			Check: func(tr *Tree, path string, n *Node) error {
				var sum int64
				for _, c := range n.Children {
					sum += c.GetInt("memMB")
				}
				if cap := n.GetInt("memMB"); sum > cap {
					return fmt.Errorf("VM memory %d exceeds host capacity %d", sum, cap)
				}
				return nil
			},
		})
	return s
}

func TestActionForResolution(t *testing.T) {
	s := testSchema(t)
	tr := buildSampleTree(t)
	ent, def, err := s.ActionFor(tr, "/vmRoot/host1/vm1", "startVM")
	if err != nil {
		t.Fatalf("ActionFor: %v", err)
	}
	if ent.Name != "vm" || def.Undo != "stopVM" {
		t.Fatalf("resolved %s/%s", ent.Name, def.Undo)
	}
	if _, _, err := s.ActionFor(tr, "/vmRoot/host1/vm1", "noSuch"); err == nil {
		t.Fatal("unknown action resolved")
	}
	if _, _, err := s.ActionFor(tr, "/missing", "startVM"); err == nil {
		t.Fatal("missing node resolved")
	}
	if _, _, err := s.ActionFor(tr, "/storageRoot/s1", "startVM"); err == nil {
		t.Fatal("unregistered entity type resolved")
	}
}

func TestConstraintCheck(t *testing.T) {
	s := testSchema(t)
	tr := buildSampleTree(t)
	// host1 has 8192 cap, vm1 uses 1024 — fine.
	if err := s.CheckConstraints(tr, "/vmRoot/host1/vm1"); err != nil {
		t.Fatalf("check: %v", err)
	}
	// Blow the budget.
	n, _ := tr.Get("/vmRoot/host1/vm1")
	n.Attrs["memMB"] = int64(9000)
	err := s.CheckConstraints(tr, "/vmRoot/host1/vm1")
	if err == nil || !strings.Contains(err.Error(), "vm-memory") {
		t.Fatalf("violation not reported: %v", err)
	}
}

func TestCheckConstraintsAfterDelete(t *testing.T) {
	s := testSchema(t)
	tr := buildSampleTree(t)
	tr.Delete("/vmRoot/host1/vm1")
	// Checking the deleted path must still validate surviving ancestors.
	if err := s.CheckConstraints(tr, "/vmRoot/host1/vm1"); err != nil {
		t.Fatalf("check after delete: %v", err)
	}
}

func TestHighestConstrainedAncestor(t *testing.T) {
	s := testSchema(t)
	tr := buildSampleTree(t)
	if got := s.HighestConstrainedAncestor(tr, "/vmRoot/host1/vm1"); got != "/vmRoot/host1" {
		t.Fatalf("HCA = %q, want /vmRoot/host1", got)
	}
	if got := s.HighestConstrainedAncestor(tr, "/storageRoot/s1/img1"); got != "" {
		t.Fatalf("HCA = %q, want empty (no constraints on storage)", got)
	}
}

func TestSimulateCreateAndConstraint(t *testing.T) {
	s := testSchema(t)
	tr := buildSampleTree(t)
	_, def, err := s.ActionFor(tr, "/vmRoot/host1", "createVM")
	if err != nil {
		t.Fatal(err)
	}
	if err := def.Simulate(tr, "/vmRoot/host1", []string{"vm2", "img"}); err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !tr.Exists("/vmRoot/host1/vm2") {
		t.Fatal("createVM did not create node")
	}
	if got := def.UndoArgs(tr, "/vmRoot/host1", []string{"vm2", "img"}); len(got) != 1 || got[0] != "vm2" {
		t.Fatalf("undo args = %v", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	s := NewSchema()
	e := s.Entity("x")
	e.Action(&ActionDef{Name: "a", Simulate: func(*Tree, string, []string) error { return nil }})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate action registration did not panic")
		}
	}()
	e.Action(&ActionDef{Name: "a", Simulate: func(*Tree, string, []string) error { return nil }})
}

func TestEntityNames(t *testing.T) {
	s := testSchema(t)
	names := s.EntityNames()
	want := []string{"root.vm", "vm", "vmHost"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

var errSentinel = errors.New("sentinel")

func TestWalkStopsOnError(t *testing.T) {
	tr := buildSampleTree(t)
	count := 0
	err := tr.Walk(func(p string, n *Node) error {
		count++
		return errSentinel
	})
	if !errors.Is(err, errSentinel) || count != 1 {
		t.Fatalf("walk err=%v count=%d", err, count)
	}
}
