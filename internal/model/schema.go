package model

import (
	"fmt"
	"sort"
)

// SimulateFunc applies an action's state transition to the logical data
// model. It receives the tree and the full path of the target node so
// that actions may create or delete nodes (e.g. createVM adds a child
// under the compute host). Args carry the action's parameters.
type SimulateFunc func(t *Tree, path string, args []string) error

// UndoArgsFunc derives the arguments of the undo action from the forward
// action's arguments, as in Table 1 (cloneImage [template, image] is
// undone by removeImage [image]). It is evaluated against the tree
// *before* the forward action applies, so it can capture pre-state the
// undo must restore (e.g. removeVM's undo re-creates the VM with its
// original image and memory).
type UndoArgsFunc func(t *Tree, path string, args []string) []string

// ActionDef defines an atomic state transition of an entity (paper
// §2.2). The logical definition (Simulate) runs in the controller; the
// physical definition is supplied by the device layer and invoked by
// workers. Undo names the compensating action used for rollback; actions
// without an Undo cannot be rolled back once physically executed, so
// TROPIC requires one for every reversible action.
type ActionDef struct {
	Name string
	// Simulate applies the transition to the logical tree.
	Simulate SimulateFunc
	// Undo is the name of the compensating action ("" if irreversible).
	Undo string
	// UndoArgs derives undo arguments; nil means "same args".
	UndoArgs UndoArgsFunc
	// UndoAt derives the path the undo action must execute at; nil
	// means the forward action's own path. migrateVM's reverse runs at
	// the destination host, for example.
	UndoAt func(path string, args []string) string
	// Touches returns additional model paths the action writes besides
	// its target — e.g. migrateVM on a source host also writes the
	// destination host. The scheduler write-locks and constraint-checks
	// these paths too. Nil when the action only writes its target.
	Touches func(path string, args []string) []string
}

// Constraint is a service or engineering rule attached to an entity.
// Check inspects the node (and typically its descendants) and returns a
// descriptive error when the rule is violated. TROPIC enforces
// constraints automatically during logical simulation; a violation
// aborts the transaction before any physical action runs.
type Constraint struct {
	Name  string
	Check func(t *Tree, path string, n *Node) error
}

// Entity describes one node type in the data model: its actions and
// constraints. Queries need no registration — any read through the
// transaction context is a query and takes read locks.
type Entity struct {
	Name        string
	Actions     map[string]*ActionDef
	Constraints []Constraint
}

// Schema is the registry of entities. It is immutable once the platform
// starts, so lookups are unsynchronized.
type Schema struct {
	entities map[string]*Entity
}

// NewSchema creates an empty schema.
func NewSchema() *Schema {
	return &Schema{entities: make(map[string]*Entity)}
}

// Entity registers (or returns the existing) entity with the given name.
func (s *Schema) Entity(name string) *Entity {
	e, ok := s.entities[name]
	if !ok {
		e = &Entity{Name: name, Actions: make(map[string]*ActionDef)}
		s.entities[name] = e
	}
	return e
}

// Lookup returns the entity definition for a type name.
func (s *Schema) Lookup(name string) (*Entity, bool) {
	e, ok := s.entities[name]
	return e, ok
}

// EntityNames lists registered entity types in sorted order.
func (s *Schema) EntityNames() []string {
	names := make([]string, 0, len(s.entities))
	for n := range s.entities {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Action registers an action on the entity. It panics on duplicate
// registration, which is a programming error during service definition.
func (e *Entity) Action(def *ActionDef) *Entity {
	if def.Name == "" || def.Simulate == nil {
		panic(fmt.Sprintf("model: action on %s needs name and simulate", e.Name))
	}
	if _, dup := e.Actions[def.Name]; dup {
		panic(fmt.Sprintf("model: duplicate action %s.%s", e.Name, def.Name))
	}
	e.Actions[def.Name] = def
	return e
}

// Constrain attaches a constraint to the entity.
func (e *Entity) Constrain(c Constraint) *Entity {
	if c.Name == "" || c.Check == nil {
		panic(fmt.Sprintf("model: constraint on %s needs name and check", e.Name))
	}
	e.Constraints = append(e.Constraints, c)
	return e
}

// HasConstraints reports whether the entity has any constraints; the
// lock manager uses this to find the highest constrained ancestor of a
// written node (paper §3.1.3).
func (e *Entity) HasConstraints() bool { return len(e.Constraints) > 0 }

// ActionFor resolves an action on the node at path, returning the node's
// entity and action definitions.
func (s *Schema) ActionFor(t *Tree, path, action string) (*Entity, *ActionDef, error) {
	n, err := t.Get(path)
	if err != nil {
		return nil, nil, err
	}
	ent, ok := s.Lookup(n.Type)
	if !ok {
		return nil, nil, fmt.Errorf("model: node %s has unregistered type %q", path, n.Type)
	}
	def, ok := ent.Actions[action]
	if !ok {
		return nil, nil, fmt.Errorf("model: entity %q has no action %q", n.Type, action)
	}
	return ent, def, nil
}

// CheckConstraints validates every constraint relevant to a mutation at
// path: the constraints of the node itself and of each ancestor, since
// constraints typically aggregate over descendants (e.g. a host memory
// cap aggregates its VMs). The first violation is returned.
//
// If the mutation deleted the node, callers pass the parent path.
func (s *Schema) CheckConstraints(t *Tree, path string) error {
	paths := append(Ancestors(path), path)
	for _, p := range paths {
		n, err := t.Get(p)
		if err != nil {
			continue // node vanished (deleted); ancestors still checked
		}
		ent, ok := s.Lookup(n.Type)
		if !ok {
			continue
		}
		for _, c := range ent.Constraints {
			if err := c.Check(t, p, n); err != nil {
				return fmt.Errorf("constraint %q violated at %s: %w", c.Name, p, err)
			}
		}
	}
	return nil
}

// HighestConstrainedAncestor returns the closest-to-root path among
// {ancestors of path, path itself} whose entity defines constraints, or
// "" when none do. Per §3.1.3, a write acquires a read lock on this node
// so concurrent transactions cannot change descendant state that the
// constraint check depended on.
func (s *Schema) HighestConstrainedAncestor(t *Tree, path string) string {
	for _, p := range append(Ancestors(path), path) {
		n, err := t.Get(p)
		if err != nil {
			continue
		}
		if ent, ok := s.Lookup(n.Type); ok && ent.HasConstraints() {
			return p
		}
	}
	return ""
}
