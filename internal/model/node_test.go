package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCreateGetDelete(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Create("/vmRoot", "root.vm", nil); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := tr.Create("/vmRoot/host1", "vmHost", map[string]any{"memMB": int64(8192)}); err != nil {
		t.Fatalf("create child: %v", err)
	}
	n, err := tr.Get("/vmRoot/host1")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if n.Type != "vmHost" || n.GetInt("memMB") != 8192 {
		t.Fatalf("node = %+v", n)
	}
	if err := tr.Delete("/vmRoot/host1"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if tr.Exists("/vmRoot/host1") {
		t.Fatal("node still exists after delete")
	}
}

func TestCreateErrors(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Create("/a/b", "t", nil); err == nil {
		t.Fatal("create under missing parent succeeded")
	}
	if _, err := tr.Create("/", "t", nil); err == nil {
		t.Fatal("create root succeeded")
	}
	tr.Create("/a", "t", nil)
	if _, err := tr.Create("/a", "t", nil); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if err := tr.Delete("/missing"); err == nil {
		t.Fatal("delete missing succeeded")
	}
}

func TestPathHelpers(t *testing.T) {
	if got := ParentPath("/a/b/c"); got != "/a/b" {
		t.Errorf("ParentPath = %q", got)
	}
	if got := ParentPath("/a"); got != "/" {
		t.Errorf("ParentPath(/a) = %q", got)
	}
	anc := Ancestors("/a/b/c")
	if len(anc) != 2 || anc[0] != "/a" || anc[1] != "/a/b" {
		t.Errorf("Ancestors = %v", anc)
	}
	if len(Ancestors("/a")) != 0 {
		t.Errorf("Ancestors(/a) = %v", Ancestors("/a"))
	}
	if Join("/", "x") != "/x" || Join("/a", "x") != "/a/x" {
		t.Error("Join misbehaves")
	}
}

func TestBadPaths(t *testing.T) {
	for _, p := range []string{"", "a", "/a/", "//x", "/a//b"} {
		if _, err := SplitPath(p); err == nil {
			t.Errorf("SplitPath(%q) accepted", p)
		}
	}
}

func TestAttrAccessors(t *testing.T) {
	n := NewNode("x", "t")
	n.Attrs["s"] = "str"
	n.Attrs["i"] = int64(7)
	n.Attrs["f"] = float64(9) // as after JSON decode
	n.Attrs["b"] = true
	if n.GetString("s") != "str" || n.GetInt("i") != 7 || n.GetInt("f") != 9 || !n.GetBool("b") {
		t.Fatalf("accessors: %+v", n.Attrs)
	}
	if n.GetString("missing") != "" || n.GetInt("missing") != 0 || n.GetBool("missing") {
		t.Fatal("missing attrs should zero")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tr := buildSampleTree(t)
	data, err := tr.MarshalSnapshot()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !Equal(tr.Root, back.Root) {
		t.Fatal("round-tripped tree differs")
	}
	// Integer attributes must stay comparable after the round trip.
	n, _ := back.Get("/vmRoot/host1")
	if n.GetInt("memMB") != 8192 {
		t.Fatalf("memMB = %v", n.Attrs["memMB"])
	}
}

func TestCloneIsolation(t *testing.T) {
	tr := buildSampleTree(t)
	cp := tr.Clone()
	n, _ := cp.Get("/vmRoot/host1")
	n.Attrs["memMB"] = int64(1)
	cp.Delete("/vmRoot/host1/vm1")
	orig, _ := tr.Get("/vmRoot/host1")
	if orig.GetInt("memMB") != 8192 {
		t.Fatal("clone shares attrs with original")
	}
	if !tr.Exists("/vmRoot/host1/vm1") {
		t.Fatal("clone shares children with original")
	}
}

func TestWalkOrderAndSize(t *testing.T) {
	tr := buildSampleTree(t)
	var paths []string
	err := tr.Walk(func(p string, n *Node) error {
		paths = append(paths, p)
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	if len(paths) != tr.Size() {
		t.Fatalf("walk visited %d, size %d", len(paths), tr.Size())
	}
	// Depth-first: parent before child.
	idx := make(map[string]int)
	for i, p := range paths {
		idx[p] = i
	}
	for _, p := range paths {
		pp := ParentPath(p)
		if pp == "/" {
			continue
		}
		if idx[pp] > idx[p] {
			t.Fatalf("parent %s visited after child %s", pp, p)
		}
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := buildSampleTree(t)
	b := buildSampleTree(t)
	if !Equal(a.Root, b.Root) {
		t.Fatal("identical trees reported unequal")
	}
	n, _ := b.Get("/vmRoot/host1/vm1")
	n.Attrs["state"] = "stopped"
	if Equal(a.Root, b.Root) {
		t.Fatal("attr difference missed")
	}
	b = buildSampleTree(t)
	b.Delete("/vmRoot/host1/vm1")
	if Equal(a.Root, b.Root) {
		t.Fatal("structural difference missed")
	}
}

// Property: snapshot round trip preserves Equal for arbitrary-ish trees.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(names []string, mem uint16) bool {
		tr := NewTree()
		tr.Create("/r", "root.vm", nil)
		for _, raw := range names {
			name := sanitize(raw)
			if name == "" {
				continue
			}
			tr.Create("/r/"+name, "vmHost", map[string]any{"memMB": int64(mem)})
		}
		data, err := tr.MarshalSnapshot()
		if err != nil {
			return false
		}
		back, err := UnmarshalSnapshot(data)
		if err != nil {
			return false
		}
		return Equal(tr.Root, back.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	if b.Len() > 8 {
		return b.String()[:8]
	}
	return b.String()
}

func buildSampleTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree()
	mustCreate := func(path, typ string, attrs map[string]any) {
		if _, err := tr.Create(path, typ, attrs); err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
	}
	mustCreate("/vmRoot", "root.vm", nil)
	mustCreate("/vmRoot/host1", "vmHost", map[string]any{"memMB": int64(8192), "hypervisor": "xen"})
	mustCreate("/vmRoot/host1/vm1", "vm", map[string]any{"state": "running", "memMB": int64(1024)})
	mustCreate("/vmRoot/host2", "vmHost", map[string]any{"memMB": int64(4096), "hypervisor": "kvm"})
	mustCreate("/storageRoot", "root.storage", nil)
	mustCreate("/storageRoot/s1", "storageHost", map[string]any{"capGB": int64(500)})
	mustCreate("/storageRoot/s1/img1", "image", map[string]any{"sizeGB": int64(10)})
	return tr
}
