package controller

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/election"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/queue"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/tropic/trerr"
)

// Config parameterizes a controller instance.
type Config struct {
	// Name identifies the controller in the leader election.
	Name string
	// Ensemble is the coordination store backing queues, election, and
	// persistent transaction state.
	Ensemble *store.Ensemble
	// Schema defines the data model's entities.
	Schema *model.Schema
	// Procedures is the stored-procedure registry.
	Procedures map[string]Procedure
	// Bootstrap is the initial logical data model, written as the first
	// snapshot if the store has none (typically the device layer's
	// snapshot, or a synthetic tree in logical-only mode).
	Bootstrap *model.Tree
	// CheckpointEvery folds the commit log into a fresh snapshot after
	// this many commits, when no transaction is in flight. 0 disables
	// checkpointing.
	CheckpointEvery int
	// RetainTerminal bounds how many terminal transaction records are
	// kept after a checkpoint (oldest are garbage-collected; their
	// effects live on in the snapshot). 0 keeps all records forever.
	RetainTerminal int
	// IdempotencyTTL bounds how long idempotency entries survive: at
	// checkpoint time, unresolved claims and resolved key→txn mappings
	// older than the TTL are swept, so a submitter that died mid-claim
	// (or a long-gone retry storm) cannot grow the ledger forever. 0
	// disables the sweep.
	IdempotencyTTL time.Duration
	// Reconciler handles reload/repair requests (§4); nil rejects them.
	Reconciler Reconciler
	// Policy selects the todoQ scheduling strategy (§3.1.1). The paper
	// ships FIFO and names the aggressive strategy as future work; both
	// are implemented here (see the scheduling-policy ablation bench).
	Policy SchedulingPolicy
	// BatchMaxOps caps how many inputQ items the leader drains per event
	// round; the round's grouped Multi carries those items' staged
	// effects plus the scheduling pass's admissions, typically a few ops
	// per item (Stats.MaxFlushOps reports the realized sizes). Values
	// ≤ 1 disable batching: the leader processes one item per round with
	// one store round trip per effect, exactly the pre-batching pipeline
	// (kept runnable for the ablation benchmarks).
	BatchMaxOps int
	// XShard wires the controller into the cross-shard transaction
	// layer: as coordinator for parents whose plan names this shard
	// first, and as participant for child prepares. Nil (the default,
	// and always on unsharded platforms) rejects cross-shard work.
	XShard *XShardConfig
	// Registry receives the controller's exported instruments (event
	// rounds, flush latency, per-stage counters, 2PC phase timings). Nil
	// uses a private registry, so instrumentation is always live.
	Registry *metrics.Registry
	// Shard is the label value for this controller's exported series
	// ("0" when empty). Replicas of one shard share their series through
	// the registry, so counters stay monotone across failovers.
	Shard string
	// Logf receives diagnostic output; nil silences it.
	Logf func(format string, args ...any)
}

// SchedulingPolicy picks how schedule() treats a deferred transaction.
type SchedulingPolicy int

const (
	// ScheduleFIFO is the paper's policy: a transaction deferred on a
	// resource conflict returns to the front of todoQ and scheduling
	// stalls until the next event — simple and fair, but one conflicted
	// transaction head-of-line-blocks everything behind it.
	ScheduleFIFO SchedulingPolicy = iota
	// ScheduleAggressive is the §3.1.1 future-work strategy: when the
	// head defers, the scheduler keeps going and tries the transactions
	// queued behind it. Independent transactions proceed at the cost of
	// extra simulation work (deferred transactions are re-simulated on
	// retry) and possible head-of-queue starvation under persistent
	// conflicts.
	ScheduleAggressive
)

// Stats counts controller activity. Retrieve a consistent copy with
// Controller.Stats.
type Stats struct {
	Accepted   int64
	Committed  int64
	Aborted    int64
	Failed     int64
	Deferrals  int64
	Violations int64
	// BusyNanos accumulates time spent executing logical-layer work
	// (acceptance, simulation, scheduling, cleanup); the Figure 4 CPU
	// metric is BusyNanos over wall time.
	BusyNanos int64
	// ConstraintNanos accumulates time spent in constraint checking
	// during simulation — the §6.2 safety-overhead metric.
	ConstraintNanos int64
	// RollbackNanos accumulates time spent rolling the logical layer
	// back on aborts — the §6.3 robustness-overhead metric.
	RollbackNanos int64
	// Rollbacks counts logical rollbacks performed.
	Rollbacks int64

	// Batch-pipeline counters (zero when BatchMaxOps ≤ 1).
	//
	// InBatches counts inputQ drain rounds and InBatchItems the items
	// they carried; their ratio is the achieved event-batch size.
	InBatches    int64
	InBatchItems int64
	// MaxInBatch is the largest single drain.
	MaxInBatch int64
	// Flushes counts grouped Multi commits (staged accepts/cleanups and
	// admission rounds), FlushedOps the store operations they carried,
	// and MaxFlushOps the largest single flush.
	Flushes     int64
	FlushedOps  int64
	MaxFlushOps int64
	// FlushNanos is wall time spent inside grouped flush commits — the
	// group-commit latency the BatchMaxDelay knob bounds upstream.
	FlushNanos int64
}

// ctrlInstruments is the controller's registry-backed instrument
// bundle. The registry is get-or-create, so every replica of a shard
// resolves the same underlying series: whichever replica leads
// increments the shared counters, and a failover continues them
// monotonically instead of restarting from zero.
type ctrlInstruments struct {
	shard      string
	rounds     *metrics.Counter         // event rounds drained from inputQ
	roundItems *metrics.BucketHistogram // items carried per drain round
	flushLat   *metrics.BucketHistogram // grouped Multi commit wall time
	flushOps   *metrics.BucketHistogram // store ops per grouped commit
	stages     *metrics.CounterVec      // {shard, stage} lifecycle outcomes

	xPhase   *metrics.HistogramVec // {shard, phase} 2PC phase durations
	xInDoubt *metrics.Counter      // in-doubt resolutions on this shard
	xParents *metrics.CounterVec   // {shard, outcome} finalized parents

	// Fast-path (coalesced 2PC message flow) instruments.
	xLocalKids *metrics.Counter         // coordinator-local children coalesced into the parent's accept
	xPiggy     *metrics.Counter         // decisions delivered without a decide-notice round trip
	xWounds    *metrics.Counter         // wound-wait aborts written to peer coordinator records
	xPeerBatch *metrics.BucketHistogram // store ops per per-peer fan-out Multi
}

// mark bumps the exported per-stage counter for this shard.
func (m *ctrlInstruments) mark(stage string) { m.stages.With(m.shard, stage).Inc() }

// newCtrlInstruments resolves the controller's series in reg.
func newCtrlInstruments(reg *metrics.Registry, shard string) ctrlInstruments {
	return ctrlInstruments{
		shard: shard,
		rounds: reg.CounterVec("tropic_controller_rounds_total",
			"Event rounds the lead controller drained from inputQ.", "shard").With(shard),
		roundItems: reg.HistogramVec("tropic_controller_round_items",
			"inputQ items carried by one event round of the lead controller.",
			metrics.DefSizeBuckets, "shard").With(shard),
		flushLat: reg.HistogramVec("tropic_controller_flush_seconds",
			"Wall time of one grouped Multi commit (staged accepts, cleanups, and admission rounds).",
			nil, "shard").With(shard),
		flushOps: reg.HistogramVec("tropic_controller_flush_ops",
			"Store operations carried by one grouped Multi commit.",
			metrics.DefSizeBuckets, "shard").With(shard),
		stages: reg.CounterVec("tropic_controller_stage_total",
			"Logical-layer stage outcomes: accepted, committed, aborted, failed, deferred, violation.",
			"shard", "stage"),
		xPhase: reg.HistogramVec("tropic_xshard_phase_seconds",
			"Coordinator-side 2PC phase durations: vote is one participant's prepare round trip, prepare is fan-out to durable decision, decide is decision to finalized parent.",
			nil, "shard", "phase"),
		xInDoubt: reg.CounterVec("tropic_xshard_indoubt_total",
			"In-doubt cross-shard resolutions: prepare deadlines forcing a presumed-abort decision, and recovered prepared children consulting the coordinator record.",
			"shard").With(shard),
		xParents: reg.CounterVec("tropic_xshard_parents_total",
			"Finalized cross-shard parent transactions by terminal outcome.",
			"shard", "outcome"),
		xLocalKids: reg.CounterVec("tropic_xshard_local_children_total",
			"Coordinator-local children created in the same grouped Multi as their parent's accept, skipping the cross-store prepare round (fast path).",
			"shard").With(shard),
		xPiggy: reg.CounterVec("tropic_xshard_piggyback_total",
			"2PC decisions applied without a decide-notice round trip: read off the parent record by the vote-ack watch, or delivered in memory to a coordinator-local child (fast path).",
			"shard").With(shard),
		xWounds: reg.CounterVec("tropic_xshard_wounds_total",
			"Wound-wait resolutions: abort decisions this participant wrote into peer coordinator records to break cross-shard lock-order inversions (fast path).",
			"shard").With(shard),
		xPeerBatch: reg.HistogramVec("tropic_xshard_peer_batch_ops",
			"Store operations carried by one per-peer cross-shard fan-out Multi (fast path).",
			metrics.DefSizeBuckets, "shard").With(shard),
	}
}

// countStage bumps one Stats field under the mutex and mirrors it into
// the exported per-stage counter.
func (c *Controller) countStage(stat *int64, stage string) {
	c.mu.Lock()
	*stat++
	c.mu.Unlock()
	c.met.mark(stage)
}

// Controller is one TROPIC controller replica. All replicas run Run;
// the elected leader executes the logical layer while followers stand
// by to take over (§2.3).
type Controller struct {
	cfg    Config
	cli    *store.Client
	inputQ *queue.Queue
	phyQ   *queue.Queue
	cand   *election.Candidate

	// Leader-only state, rebuilt by recover() on election.
	ltree    *model.Tree
	locks    *lock.Manager
	todo     []*txn.Txn
	inFlight map[string]*txn.Txn
	// prepared tracks cross-shard children that voted yes and hold their
	// locks awaiting the coordinator's 2PC decision. Like inFlight, it
	// is leader-only state rebuilt by recover().
	prepared map[string]*txn.Txn
	// admitPending holds runnable transactions staged by the current
	// scheduling round, group-committed by flushAdmissions.
	admitPending []*txn.Txn

	stats     Stats
	met       ctrlInstruments
	leading   atomic.Bool
	todoDepth metrics.Gauge

	mu     sync.Mutex // guards stats snapshotting
	killed atomic.Bool

	// xtMu guards xTimes, the coordinator-side phase clock for parents
	// in flight: when prepares fanned out and when the decision landed,
	// so the prepare→decide→finalize phase durations can be exported.
	xtMu   sync.Mutex
	xTimes map[string]*xPhaseClock

	// xmu guards the lazily-connected peer-shard sessions used by the
	// cross-shard layer.
	xmu    sync.Mutex
	xpeers map[int]*store.Client

	// lmu guards localMsgs, the in-memory cross-shard messages the fast
	// path delivers to this controller's own leader loop (a coordinator-
	// local child's vote, a piggybacked decision) without an inputQ
	// write. localWake (capacity 1) kicks the leader's blocking drain.
	lmu       sync.Mutex
	localMsgs []proto.InputMsg
	localWake chan struct{}

	// Leader-goroutine-only fast-path round state: resched asks
	// processRound for a post-flush scheduling pass (a coordinator-local
	// child joined todoQ mid-round); peerCollect/peerSends stage
	// cross-shard sends so every message bound for one peer in a round
	// rides a single Multi through that peer's batcher.
	resched     bool
	peerCollect bool
	peerSends   map[int][]peerSend

	// wmu guards wounding, the set of peer parent records with a
	// wound-wait abort in flight (dedup across scheduling rounds).
	wmu      sync.Mutex
	wounding map[string]bool
}

// New connects a controller to the ensemble and ensures the store
// layout exists.
func New(cfg Config) (*Controller, error) {
	if cfg.Ensemble == nil || cfg.Schema == nil {
		return nil, errors.New("controller: Ensemble and Schema are required")
	}
	if cfg.Name == "" {
		return nil, errors.New("controller: Name is required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cli := cfg.Ensemble.Connect()
	for _, p := range []string{proto.TxnsPath, proto.InputQPath, proto.PhyQPath,
		proto.ElectionPath, proto.CommitLogPath, proto.InconsistentPath, proto.UnusablePath} {
		if err := cli.EnsurePath(p); err != nil {
			cli.Close()
			return nil, fmt.Errorf("controller: layout: %w", err)
		}
	}
	inputQ, err := queue.New(cli, proto.InputQPath)
	if err != nil {
		cli.Close()
		return nil, err
	}
	phyQ, err := queue.New(cli, proto.PhyQPath)
	if err != nil {
		cli.Close()
		return nil, err
	}
	cand, err := election.New(cli, proto.ElectionPath, cfg.Name)
	if err != nil {
		cli.Close()
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	shard := cfg.Shard
	if shard == "" {
		shard = "0"
	}
	c := &Controller{
		cfg:       cfg,
		cli:       cli,
		inputQ:    inputQ,
		phyQ:      phyQ,
		cand:      cand,
		met:       newCtrlInstruments(reg, shard),
		localWake: make(chan struct{}, 1),
	}
	if cfg.Bootstrap != nil {
		if err := c.writeBootstrapSnapshot(cfg.Bootstrap); err != nil {
			cli.Close()
			return nil, err
		}
	}
	return c, nil
}

// writeBootstrapSnapshot installs the initial model snapshot unless one
// already exists (only the first controller to boot wins).
func (c *Controller) writeBootstrapSnapshot(t *model.Tree) error {
	data, err := t.MarshalSnapshot()
	if err != nil {
		return fmt.Errorf("controller: bootstrap snapshot: %w", err)
	}
	env := proto.Snapshot{Tree: data}
	_, err = c.cli.Create(proto.SnapshotPath, env.Encode(), 0)
	if errors.Is(err, store.ErrNodeExists) {
		return nil
	}
	return err
}

// Run enrolls in the election and serves: followers block awaiting
// leadership; the leader executes the logical layer until ctx is done,
// its session expires, or the ensemble loses quorum.
func (c *Controller) Run(ctx context.Context) error {
	if err := c.cand.Enroll(); err != nil {
		return err
	}
	if err := c.cand.AwaitLeadership(ctx); err != nil {
		return err
	}
	c.cfg.Logf("controller %s: elected leader", c.cfg.Name)
	if err := c.recover(); err != nil {
		return fmt.Errorf("controller %s: recover: %w", c.cfg.Name, err)
	}
	// Only a fully recovered controller reports itself leading: its
	// logical model, lock table, and todoQ are rebuilt and it is about
	// to serve. (Recovery time as observed by clients therefore
	// includes state reconstruction, as in the paper's measurement.)
	c.leading.Store(true)
	defer c.leading.Store(false)
	return c.lead(ctx)
}

// Leading reports whether this controller is currently the leader. A
// killed (crashed) controller is never leading, even before its session
// expires.
func (c *Controller) Leading() bool { return c.leading.Load() && !c.killed.Load() }

// Name returns the controller's election identity.
func (c *Controller) Name() string { return c.cfg.Name }

// Kill simulates a controller crash: the store session stops
// heartbeating (ephemeral election node lingers until the session
// timeout, exactly like a crashed machine), and the leader loop dies on
// its next store operation.
func (c *Controller) Kill() {
	c.killed.Store(true)
	c.cli.Kill()
	// The crash takes the controller's cross-shard reach with it: a dead
	// coordinator must not keep delivering prepares or decisions.
	c.xKillPeers()
}

// Close releases the controller's session gracefully.
func (c *Controller) Close() {
	_ = c.cand.Resign()
	c.xClosePeers()
	c.cli.Close()
}

// Stats returns a copy of the activity counters. The mutex-guarded
// counters and the atomically-updated timing counters are read with
// their respective disciplines (a whole-struct copy would race with the
// atomic writers).
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	s := Stats{
		Accepted:     c.stats.Accepted,
		Committed:    c.stats.Committed,
		Aborted:      c.stats.Aborted,
		Failed:       c.stats.Failed,
		Deferrals:    c.stats.Deferrals,
		Violations:   c.stats.Violations,
		InBatches:    c.stats.InBatches,
		InBatchItems: c.stats.InBatchItems,
		MaxInBatch:   c.stats.MaxInBatch,
		Flushes:      c.stats.Flushes,
		FlushedOps:   c.stats.FlushedOps,
		MaxFlushOps:  c.stats.MaxFlushOps,
		FlushNanos:   c.stats.FlushNanos,
	}
	c.mu.Unlock()
	s.BusyNanos = atomic.LoadInt64(&c.stats.BusyNanos)
	s.ConstraintNanos = atomic.LoadInt64(&c.stats.ConstraintNanos)
	s.RollbackNanos = atomic.LoadInt64(&c.stats.RollbackNanos)
	s.Rollbacks = atomic.LoadInt64(&c.stats.Rollbacks)
	return s
}

// --- Leader loop ------------------------------------------------------

// lead processes inputQ until ctx is done or the session dies. The
// lead controller is the queue's only consumer; each item is deleted
// atomically with the persistent effects of processing it, so a leader
// crash at any point neither loses nor double-applies a message.
//
// With batching enabled (BatchMaxOps > 1) the loop drains up to
// BatchMaxOps items per event round, stages their persistent effects,
// and commits the round in one grouped Multi; the scheduling pass that
// follows group-commits every admitted transaction the same way. Under a
// backlog this amortizes the store round trip that otherwise dominates
// per-transaction cost (§6.1) across the whole batch — the queues fill
// while a flush is in flight, so the pipeline is self-clocking.
func (c *Controller) lead(ctx context.Context) error {
	// Retry backoff for a persistently failing item: exponential from
	// retryBackoffMin to retryBackoffMax, reset on any clean round.
	// Store latency makes each failed attempt cheap for the leader but
	// expensive for the ensemble, so the pause grows with consecutive
	// failures instead of hot-looping at a flat 1ms.
	backoff := time.Duration(0)
	for {
		items, err := c.takeInput(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		start := time.Now()
		c.noteInBatch(len(items))
		roundErr := c.processRound(items)
		if roundErr != nil {
			if errors.Is(roundErr, store.ErrSessionExpired) || errors.Is(roundErr, store.ErrNoQuorum) {
				return roundErr
			}
			if backoff == 0 {
				backoff = retryBackoffMin
			} else if backoff *= 2; backoff > retryBackoffMax {
				backoff = retryBackoffMax
			}
			// The wait is idle time, not work: close the busy window
			// before sleeping and reopen it after, or the Figure 4 CPU
			// proxy would count up to retryBackoffMax per retry as load.
			atomic.AddInt64(&c.stats.BusyNanos, time.Since(start).Nanoseconds())
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			start = time.Now()
		} else {
			backoff = 0
		}
		atomic.AddInt64(&c.stats.BusyNanos, time.Since(start).Nanoseconds())
	}
}

// takeInput blocks for the leader's next work source: drained inputQ
// items, or locally-delivered (in-memory) cross-shard messages, whichever
// is ready first. Local messages exist only on the fast path; a pending
// one wakes the drain out of its store watch via localWake, and the
// round that follows folds it in ahead of the store items.
func (c *Controller) takeInput(ctx context.Context) ([]queue.Item, error) {
	if c.localsPending() {
		return nil, nil
	}
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-c.localWake:
			cancel()
		case <-stop:
		}
	}()
	items, err := c.inputQ.TakeHeadBatch(tctx, c.batchMax())
	if err != nil && errors.Is(err, context.Canceled) && ctx.Err() == nil {
		// Woken for local messages, not cancelled for real. A wake token
		// consumed without pending messages (the race where both a store
		// item and a local message arrived) is harmless: localsPending is
		// re-checked at the top of every take.
		return nil, nil
	}
	return items, err
}

// enqueueLocal delivers a cross-shard message to this controller's own
// leader loop in memory, skipping the store round trip of an inputQ
// write. Safe from any goroutine. Local messages die with the process —
// acceptable because every kind has a durable backstop: lost votes and
// child-dones are recovered by the coordinator's direct ledger sync at
// the prepare deadline, and lost decisions are re-delivered (as real
// notices) until the child reports terminal.
func (c *Controller) enqueueLocal(msg proto.InputMsg) {
	c.lmu.Lock()
	c.localMsgs = append(c.localMsgs, msg)
	c.lmu.Unlock()
	select {
	case c.localWake <- struct{}{}:
	default:
	}
}

// takeLocal drains the pending local messages.
func (c *Controller) takeLocal() []proto.InputMsg {
	c.lmu.Lock()
	msgs := c.localMsgs
	c.localMsgs = nil
	c.lmu.Unlock()
	return msgs
}

// localsPending reports whether local messages await processing.
func (c *Controller) localsPending() bool {
	c.lmu.Lock()
	n := len(c.localMsgs)
	c.lmu.Unlock()
	return n > 0
}

// handleLocal folds locally-delivered cross-shard messages into the
// round ahead of the drained store items: votes, child-dones, and
// piggybacked decisions all stage into the grouped Multi exactly like
// their store-delivered twins. A message colliding with a record
// already staged this round requeues for the next one; one lost to a
// transient store error is left to its durable backstop.
func (c *Controller) handleLocal(r *round) error {
	var firstErr error
	for _, msg := range c.takeLocal() {
		if r.staged[msg.TxnPath] {
			c.enqueueLocal(msg)
			continue
		}
		var err error
		switch msg.Kind {
		case proto.KindXVote:
			err = c.stageXVote(r, msg, "")
		case proto.KindXChildDone:
			err = c.stageXChildDone(r, msg, "")
		case proto.KindXDecide:
			err = c.stageXDecide(r, msg, "")
		default:
			c.cfg.Logf("controller %s: dropping local message kind %q", c.cfg.Name, msg.Kind)
		}
		if err != nil {
			if errFatal(err) {
				return err
			}
			c.cfg.Logf("controller %s: local %s: %v", c.cfg.Name, msg.Kind, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// noticeRemove consumes an inputQ notice, tolerating the empty item path
// of a locally-delivered message (which has no store item to consume).
func (c *Controller) noticeRemove(itemPath string) error {
	if itemPath == "" {
		return nil
	}
	return c.inputQ.Remove(itemPath)
}

// noticeRemoveOps returns the notice-consumption op, or nothing for a
// locally-delivered message.
func (c *Controller) noticeRemoveOps(itemPath string) []store.Op {
	if itemPath == "" {
		return nil
	}
	return []store.Op{c.inputQ.RemoveOp(itemPath)}
}

// processRound handles one drained batch end to end. Unbatched, it is
// the legacy pipeline: per-item commits, then a scheduling pass with
// per-admission commits. Batched, the items' staged effects AND the
// scheduling pass's admissions all ride one grouped Multi — a freshly
// submitted transaction can go accepted→started→phyQ in a single store
// commit shared with the rest of its round. Cross-shard sends triggered
// anywhere in the round are collected per peer shard and flushed as one
// Multi per peer on the way out.
func (c *Controller) processRound(items []queue.Item) error {
	r := &round{staged: make(map[string]bool)}
	c.peerCollect = true
	defer func() {
		c.peerCollect = false
		c.xFlushPeerSends()
	}()
	err := c.handleLocal(r)
	if err != nil && errFatal(err) {
		return err
	}
	if herr := c.handleRound(r, items); herr != nil {
		if errFatal(herr) {
			return herr
		}
		if err == nil {
			err = herr
		}
	}
	if c.batching() {
		c.scheduleInto(r)
		cleanups := r.cleanups
		if ferr := c.flushRound(r); ferr != nil {
			if errFatal(ferr) {
				return ferr
			}
			if err == nil {
				err = ferr
			}
		}
		// The flush's cleanups released locks AFTER the round's
		// scheduling pass ran, and a coordinator-local child may have
		// joined todoQ post-flush (resched). If queued work remains,
		// schedule again now — a deferred transaction must not wait for
		// an input event that may never come to claim locks that are
		// already free.
		resched := c.resched
		c.resched = false
		if (cleanups > 0 || resched) && len(c.todo) > 0 {
			c.schedule()
		}
		c.todoDepth.Set(int64(len(c.todo)))
		return err
	}
	if ferr := c.flushRound(r); ferr != nil {
		if errFatal(ferr) {
			return ferr
		}
		if err == nil {
			err = ferr
		}
	}
	c.resched = false
	c.schedule()
	return err
}

// batchMax returns the per-round drain bound (1 = unbatched).
func (c *Controller) batchMax() int {
	if c.cfg.BatchMaxOps > 1 {
		return c.cfg.BatchMaxOps
	}
	return 1
}

// batching reports whether the grouped-commit pipeline is enabled.
func (c *Controller) batching() bool { return c.cfg.BatchMaxOps > 1 }

func (c *Controller) noteInBatch(n int) {
	c.met.rounds.Inc()
	c.met.roundItems.Observe(float64(n))
	if !c.batching() {
		return
	}
	c.mu.Lock()
	c.stats.InBatches++
	c.stats.InBatchItems += int64(n)
	if int64(n) > c.stats.MaxInBatch {
		c.stats.MaxInBatch = int64(n)
	}
	c.mu.Unlock()
}

// noteFlush records one grouped Multi commit in the batch stats and the
// exported flush histograms. Unbatched mode commits the same legacy
// per-item ops through the same helpers; those are not grouped commits
// and stay out of both.
func (c *Controller) noteFlush(ops int, d time.Duration) {
	if !c.batching() {
		return
	}
	c.met.flushOps.Observe(float64(ops))
	c.met.flushLat.ObserveDuration(d)
	c.mu.Lock()
	c.stats.Flushes++
	c.stats.FlushedOps += int64(ops)
	if int64(ops) > c.stats.MaxFlushOps {
		c.stats.MaxFlushOps = int64(ops)
	}
	c.stats.FlushNanos += d.Nanoseconds()
	c.mu.Unlock()
}

// round accumulates the staged persistent effects of one inputQ drain:
// store operations to group-commit, the in-memory effects to apply once
// the commit lands, and per-item fallbacks replaying the legacy one-
// item-at-a-time path if the grouped commit fails validation (e.g. a
// record's version moved between staging and flush).
type round struct {
	ops      []store.Op
	after    []func()
	fallback []func() error
	// staged tracks transaction paths with staged effects, so a second
	// message touching the same record defers to the next round instead
	// of poisoning the grouped Multi with a stale version.
	staged map[string]bool
	// accepted are transactions optimistically appended to todoQ this
	// round (so the same round's scheduling pass can admit them); undone
	// before fallbacks if the flush fails.
	accepted []*txn.Txn
	// admitted are transactions whose admission (started-state write +
	// phyQ enqueue) is staged in ops; fully unwound — simulation, locks,
	// transition — if the flush fails.
	admitted []*txn.Txn
	// aborted are transactions whose terminal abort write is staged in
	// ops; if the flush fails they revert to accepted and requeue — the
	// state their abort verdict was derived from (e.g. a sibling
	// admission's simulated effects) may have been unwound with the
	// round, so the verdict must be re-derived, not persisted blind.
	aborted []*txn.Txn
	// cleanups counts staged result cleanups, whose deferred lock
	// releases require a post-flush scheduling pass.
	cleanups int
}

func (r *round) stage(ops []store.Op, after func(), fallback func() error) {
	r.ops = append(r.ops, ops...)
	if after != nil {
		r.after = append(r.after, after)
	}
	if fallback != nil {
		r.fallback = append(r.fallback, fallback)
	}
}

// handleRound processes one drained batch of input messages into the
// round. Submit and result notices are staged for the grouped commit;
// signal and reconciliation requests (rare, and with their own write
// patterns) are handled directly after flushing whatever is staged,
// preserving queue order. The returned error, if any, is the first
// retryable failure — session and quorum losses short-circuit
// immediately.
func (c *Controller) handleRound(r *round, items []queue.Item) error {
	var firstErr error
	note := func(kind proto.MsgKind, err error) {
		if err != nil {
			c.cfg.Logf("controller %s: handle %s: %v", c.cfg.Name, kind, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, it := range items {
		msg, err := proto.DecodeInputMsg(it.Data)
		if err != nil {
			c.cfg.Logf("controller %s: dropping bad input item: %v", c.cfg.Name, err)
			itemPath := it.Path
			r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
				func() error { return c.inputQ.Remove(itemPath) })
			continue
		}
		switch msg.Kind {
		case proto.KindSubmit:
			err = c.stageAccept(r, msg, it.Path)
			if errors.Is(err, errHandleDirect) {
				// Flush what is staged (preserving queue order), then drive
				// the message directly.
				if ferr := c.flushRound(r); ferr != nil {
					if errFatal(ferr) {
						return ferr
					}
					note(msg.Kind, ferr)
				}
				err = c.handle(msg, it.Path)
			}
		case proto.KindXVote:
			// Coordinator ledger updates ride the grouped Multi like
			// accepts and cleanups; only decide/timeout messages (rare,
			// with cross-store side effects) are handled directly below.
			err = c.stageXVote(r, msg, it.Path)
		case proto.KindXChildDone:
			err = c.stageXChildDone(r, msg, it.Path)
		case proto.KindResult:
			err = c.stageCleanup(r, msg, it.Path)
		default:
			// Flush staged work first so this item observes (and its own
			// writes serialize after) everything ahead of it in the queue.
			if ferr := c.flushRound(r); ferr != nil {
				if errFatal(ferr) {
					return ferr
				}
				note(msg.Kind, ferr)
			}
			err = c.handle(msg, it.Path)
		}
		if err != nil {
			if errFatal(err) {
				return err
			}
			note(msg.Kind, err)
		}
	}
	return firstErr
}

// errFatal reports errors that must tear the leader loop down.
func errFatal(err error) bool {
	return errors.Is(err, store.ErrSessionExpired) || errors.Is(err, store.ErrNoQuorum)
}

// flushRound group-commits everything staged. On success the deferred
// in-memory effects run in staging order (matching what sequential
// per-item processing would have done). On a validation failure (e.g. a
// record's version moved under a staged write) the round is unwound —
// staged admissions roll their simulations, locks, and transitions back,
// optimistic todoQ appends are removed — and every item is replayed
// through its per-item fallback, which re-reads current state and
// applies the legacy path; a final legacy scheduling pass then re-admits
// whatever can run, so a failed flush never strands runnable work
// waiting for an event that already happened.
func (c *Controller) flushRound(r *round) error {
	if len(r.ops) == 0 {
		return nil
	}
	ops, after, fallback := r.ops, r.after, r.fallback
	accepted, admitted, aborted := r.accepted, r.admitted, r.aborted
	r.ops, r.after, r.fallback = nil, nil, nil
	r.accepted, r.admitted, r.aborted = nil, nil, nil
	r.staged = make(map[string]bool)

	start := time.Now()
	err := c.cli.Multi(ops...)
	c.noteFlush(len(ops), time.Since(start))
	if err == nil {
		for _, f := range after {
			f()
		}
		return nil
	}
	if errFatal(err) {
		return err
	}
	c.cfg.Logf("controller %s: grouped flush of %d ops failed, replaying per item: %v",
		c.cfg.Name, len(ops), err)

	// Unwind staged admissions in reverse admission order. Transactions
	// whose accept rode this same round are dropped entirely — their
	// accept fallback below re-reads the record and requeues a fresh
	// copy; re-admitting the stale copy too would double-execute them.
	acceptedSet := make(map[*txn.Txn]bool, len(accepted))
	for _, t := range accepted {
		acceptedSet[t] = true
	}
	var requeue []*txn.Txn
	for i := len(admitted) - 1; i >= 0; i-- {
		t := admitted[i]
		if rbErr := rollbackLog(c.ltree, c.cfg.Schema, t.Log); rbErr != nil {
			c.cfg.Logf("controller %s: unwind %s: %v", c.cfg.Name, t.ID, rbErr)
			c.locks.ReleaseAll(t.ID)
			c.abortQueued(t, err, nil)
			continue
		}
		c.locks.ReleaseAll(t.ID)
		if n := len(t.History); n > 0 && admissionState(t.History[n-1].State) {
			t.History = t.History[:n-1]
		}
		t.State = txn.StateAccepted
		t.Log = nil
		if !acceptedSet[t] {
			requeue = append([]*txn.Txn{t}, requeue...)
		}
	}
	// Staged aborts revert to accepted and requeue for re-evaluation by
	// the final scheduling pass: their verdicts may have been derived
	// from sibling effects that were just unwound. State-independent
	// verdicts (signals, unknown procedures) simply re-abort there.
	for i := len(aborted) - 1; i >= 0; i-- {
		t := aborted[i]
		if n := len(t.History); n > 0 && t.History[n-1].State == txn.StateAborted {
			t.History = t.History[:n-1]
		}
		t.State = txn.StateAccepted
		t.Error, t.Code = "", ""
		if !acceptedSet[t] {
			requeue = append([]*txn.Txn{t}, requeue...)
		}
	}
	// Remove this round's optimistic todoQ appends; their fallbacks
	// re-accept from the store.
	if len(accepted) > 0 {
		kept := c.todo[:0]
		for _, t := range c.todo {
			if !acceptedSet[t] {
				kept = append(kept, t)
			}
		}
		c.todo = kept
	}
	c.todo = append(requeue, c.todo...)

	var firstErr error
	for _, f := range fallback {
		if ferr := f(); ferr != nil {
			if errFatal(ferr) {
				return ferr
			}
			if firstErr == nil {
				firstErr = ferr
			}
		}
	}
	// Re-schedule through the legacy per-admission path: the unwound and
	// re-accepted transactions must not wait for the next input event.
	c.schedule()
	return firstErr
}

// scheduleInto runs a scheduling pass whose admissions are staged into
// the round instead of committed on their own — the group commit of
// transaction admission.
func (c *Controller) scheduleInto(r *round) {
	c.scheduleWalk(r)
	pending := c.admitPending
	c.admitPending = nil
	for _, t := range pending {
		t := t
		r.ops = append(r.ops, c.admissionOps(t)...)
		r.admitted = append(r.admitted, t)
		r.after = append(r.after, func() { c.admitApply(t) })
	}
}

// Retry backoff bounds for the leader loop: the floor matches the old
// flat pause; the cap keeps a stuck head item from freezing signal and
// reconciliation handling for long stretches.
const (
	retryBackoffMin = time.Millisecond
	retryBackoffMax = 100 * time.Millisecond
)

func (c *Controller) handle(msg proto.InputMsg, itemPath string) error {
	switch msg.Kind {
	case proto.KindSubmit:
		return c.accept(msg, itemPath)
	case proto.KindResult:
		return c.cleanup(msg, itemPath)
	case proto.KindXVote:
		return c.xVote(msg, itemPath)
	case proto.KindXDecide:
		return c.xDecide(msg, itemPath)
	case proto.KindXChildDone:
		return c.xChildDone(msg, itemPath)
	case proto.KindXTimeout:
		return c.xTimeout(msg, itemPath)
	case proto.KindXAdvance:
		return c.xAdvance(msg, itemPath)
	case proto.KindSignal:
		if err := c.signal(msg.TxnPath, txn.Signal(msg.Signal)); err != nil {
			// A signal for a record that does not exist can never
			// succeed; drop it instead of retrying forever at the head
			// of the queue.
			if !errors.Is(err, store.ErrNoNode) {
				return err
			}
			c.cfg.Logf("controller %s: dropping signal for missing record %s", c.cfg.Name, msg.TxnPath)
		}
		return c.inputQ.Remove(itemPath)
	case proto.KindReload, proto.KindRepair:
		var err error
		if c.cfg.Reconciler == nil {
			err = trerr.Newf(trerr.ReconcileUnsupported,
				"%s %s: no reconciler configured", msg.Kind, msg.Target)
		} else if msg.Kind == proto.KindReload {
			err = c.cfg.Reconciler.Reload(c, msg.Target)
		} else {
			err = c.cfg.Reconciler.Repair(c, msg.Target)
		}
		c.reply(msg, err)
		if rerr := c.inputQ.Remove(itemPath); rerr != nil {
			return rerr
		}
		// The request itself is complete even if reconciliation was
		// refused; the refusal went to the reply node.
		if err != nil {
			c.cfg.Logf("controller %s: %s %s: %v", c.cfg.Name, msg.Kind, msg.Target, err)
		}
		return nil
	default:
		if err := c.inputQ.Remove(itemPath); err != nil {
			return err
		}
		return fmt.Errorf("unknown input message kind %q", msg.Kind)
	}
}

// reply delivers a request's outcome to its reply node, if any.
func (c *Controller) reply(msg proto.InputMsg, err error) {
	if msg.Reply == "" {
		return
	}
	r := proto.Reply{OK: err == nil}
	if err != nil {
		r.Error = err.Error()
		code := trerr.CodeOf(err)
		if code == "" {
			// Reconciler implementations return plain errors; classify
			// them under the reconcile area.
			code = trerr.ReconcileConflict
		}
		r.Code = string(code)
	}
	if serr := c.cli.Set(msg.Reply, r.Encode(), -1); serr != nil {
		c.cfg.Logf("controller %s: reply to %s: %v", c.cfg.Name, msg.Reply, serr)
	}
}

// accept moves a submitted transaction into todoQ (Figure 2, ②),
// atomically with consuming its submit notice.
func (c *Controller) accept(msg proto.InputMsg, itemPath string) error {
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return c.inputQ.Remove(itemPath)
		}
		return err
	}
	if rec.State != txn.StateInitialized {
		// Duplicate submit notice (e.g. the record was already accepted
		// by recovery); drop it.
		return c.inputQ.Remove(itemPath)
	}
	if rec.IsParent() {
		// A cross-shard parent: accepted here, then coordinated via the
		// 2PC protocol instead of todoQ.
		return c.xAcceptParent(rec, stat, itemPath)
	}
	if err := rec.Transition(txn.StateAccepted); err != nil {
		return err
	}
	err = c.cli.Multi(
		c.inputQ.RemoveOp(itemPath),
		store.SetOp(msg.TxnPath, rec.Encode(), stat.Version),
	)
	if err != nil {
		return err
	}
	c.countStage(&c.stats.Accepted, "accepted")
	c.todo = append(c.todo, rec)
	return nil
}

// stageAccept is the batched form of accept: it validates the submitted
// record now but defers both the persistent transition (staged into the
// round's grouped Multi) and the in-memory todoQ append (run only after
// the group commits).
func (c *Controller) stageAccept(r *round, msg proto.InputMsg, itemPath string) error {
	if r.staged[msg.TxnPath] {
		// Another message already staged effects on this record this
		// round; leave the item queued — the next drain re-reads it
		// against the flushed state.
		return nil
	}
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
				func() error { return c.inputQ.Remove(itemPath) })
			return nil
		}
		return err
	}
	if rec.State != txn.StateInitialized {
		// Duplicate submit notice (e.g. the record was already accepted
		// by recovery); drop it.
		r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
			func() error { return c.inputQ.Remove(itemPath) })
		return nil
	}
	if rec.IsParent() {
		// A cross-shard parent: its accepted write rides this round's
		// grouped Multi; the prepare fan-out (writes to OTHER shards'
		// stores, which cannot join this Multi) runs post-flush.
		return c.stageXAcceptParent(r, rec, stat, msg, itemPath)
	}
	if err := rec.Transition(txn.StateAccepted); err != nil {
		return err
	}
	r.staged[msg.TxnPath] = true
	// The todoQ append is optimistic — this round's own scheduling pass
	// may admit the transaction, putting accept and admission in the
	// same grouped commit. flushRound undoes the append before running
	// the per-item fallback if the group fails.
	c.todo = append(c.todo, rec)
	r.accepted = append(r.accepted, rec)
	r.stage(
		[]store.Op{
			c.inputQ.RemoveOp(itemPath),
			store.SetOp(msg.TxnPath, rec.Encode(), stat.Version),
		},
		func() {
			c.countStage(&c.stats.Accepted, "accepted")
		},
		func() error { return c.accept(msg, itemPath) },
	)
	return nil
}

// scheduleOutcome classifies one scheduling attempt.
type scheduleOutcome int

const (
	outcomeRunnable scheduleOutcome = iota
	outcomeConflict
	outcomeAborted
)

// schedule works through todoQ. Under the paper's FIFO policy it stops
// at the first transaction deferred on a resource conflict (the
// deferred transaction stays at the front and scheduling resumes on the
// next event); under the aggressive policy it continues past deferred
// transactions so independent work behind them proceeds (§3.1.1).
func (c *Controller) schedule() {
	c.scheduleWalk(nil)
	c.flushAdmissions()
	c.todoDepth.Set(int64(len(c.todo)))
}

// scheduleWalk works through todoQ, leaving any staged admissions in
// admitPending for the caller to commit (grouped or per-item). With a
// non-nil round, terminal writes for aborted transactions are staged
// into it instead of committed on their own — an unstaged write would
// bump a record version under the round's staged accept and fail the
// whole grouped flush.
func (c *Controller) scheduleWalk(r *round) {
	if c.xFastPath() {
		// Deterministic global prepare order: every participant acquires
		// cross-shard child locks in the same order, so two children of
		// different parents contending on two shards cannot deadlock by
		// acquiring in reversed orders (see shard.PrepareLess).
		c.xOrderChildren()
	}
	i := 0
	for i < len(c.todo) {
		t := c.todo[i]
		if t.Signal == txn.SignalTerm || t.Signal == txn.SignalKill {
			c.todo = append(c.todo[:i], c.todo[i+1:]...)
			c.abortQueued(t, trerr.New(trerr.TxnTerminated, "terminated by operator signal"), r)
			continue
		}
		switch c.trySchedule(t, r) {
		case outcomeRunnable, outcomeAborted:
			c.todo = append(c.todo[:i], c.todo[i+1:]...)
		case outcomeConflict:
			c.countStage(&c.stats.Deferrals, "deferred")
			t.State = txn.StateDeferred // in-memory only; persisted as accepted
			if c.cfg.Policy == ScheduleFIFO {
				return
			}
			i++ // aggressive: try the transactions queued behind it
		}
	}
}

// TodoDepth reports the current todoQ length (a gauge updated by the
// leader at the end of every scheduling round).
func (c *Controller) TodoDepth() int64 { return c.todoDepth.Load() }

// trySchedule simulates t against the logical model, checks constraints,
// and attempts to acquire its locks (Figure 2, ③A-③C).
func (c *Controller) trySchedule(t *txn.Txn, r *round) scheduleOutcome {
	t.State = txn.StateAccepted
	t.Log = nil
	cctx := newCtx(c.ltree, c.cfg.Schema, t)
	proc, ok := c.cfg.Procedures[t.Proc]
	var simErr error
	if !ok {
		simErr = trerr.Newf(trerr.TxnUnknownProcedure, "unknown stored procedure %q", t.Proc)
	} else {
		simErr = proc(cctx)
	}
	atomic.AddInt64(&c.stats.ConstraintNanos, cctx.constraintNanos)
	if simErr != nil {
		// Roll back whatever the simulation applied, then abort (③A).
		c.rollbackTimed(t.ID, t.Log)
		if errors.Is(simErr, ErrConstraint) {
			c.countStage(&c.stats.Violations, "violation")
		}
		c.abortQueued(t, simErr, r)
		return outcomeAborted
	}
	reqs := cctx.lockRequests()
	if err := c.locks.Acquire(t.ID, reqs); err != nil {
		// Resource conflict: undo the simulation and defer (③B). A
		// cross-shard child blocked by a prepared child it outranks in
		// the global prepare order wounds the holder — otherwise two
		// shards holding each other's locks in reversed orders would both
		// sit out the prepare deadline.
		c.rollbackTimed(t.ID, t.Log)
		if t.IsChild() && c.xFastPath() {
			c.xMaybeWound(t, reqs)
		}
		t.Log = nil
		return outcomeConflict
	}
	// Runnable (③C): persist state+log and enqueue to phyQ atomically,
	// so a leader crash cannot strand a started transaction outside
	// phyQ or double-enqueue it. With batching the admission is staged
	// and the whole scheduling round's admissions ride one grouped Multi
	// (group commit of transaction admission); the atomicity guarantee
	// is unchanged — the group either commits in full or not at all.
	//
	// A cross-shard CHILD stops at prepared instead: simulation and
	// locks are its yes-vote, and it enters phyQ only when the
	// coordinator's commit decision arrives.
	next := txn.StateStarted
	if t.IsChild() {
		c.xMarkForeign(t)
		next = txn.StatePrepared
	}
	if err := t.Transition(next); err != nil {
		c.locks.ReleaseAll(t.ID)
		c.abortQueued(t, err, r)
		return outcomeAborted
	}
	if c.batching() {
		c.admitPending = append(c.admitPending, t)
		return outcomeRunnable
	}
	return c.admitNow(t)
}

// admissionOps builds the persistent half of one transaction's
// admission: the started-state record write and the phyQ enqueue. Every
// admission path — per-item, grouped, and fallback — commits exactly
// these ops, so the paths cannot diverge. A prepared cross-shard child
// persists only its record: it enters phyQ at decision time, not now.
func (c *Controller) admissionOps(t *txn.Txn) []store.Op {
	txnPath := c.txnPath(t.ID)
	ops := []store.Op{store.SetOp(txnPath, t.Encode(), -1)}
	if t.State != txn.StatePrepared {
		ops = append(ops, c.phyQ.PutOp(proto.PhyMsg{TxnPath: txnPath}.Encode()))
	}
	return ops
}

// admitApply applies the in-memory half of a persisted admission:
// started transactions are tracked in flight; prepared cross-shard
// children are tracked separately and their yes-vote goes out — only
// after the prepared state is durable, so a vote always implies a
// recoverable prepare.
func (c *Controller) admitApply(t *txn.Txn) {
	if t.State == txn.StatePrepared {
		c.prepared[t.ID] = t
		c.xSendVote(t)
		// Fast path: read the decision off the parent record the moment
		// the coordinator's durable decision write lands, instead of
		// waiting for a decide notice through this shard's inputQ.
		if c.xFastPath() {
			c.xWatchDecision(t)
		}
		return
	}
	c.inFlight[t.ID] = t
}

// admitNow persists one runnable transaction's admission (state+log and
// phyQ enqueue, atomically) and tracks it in flight — the unbatched
// admission path, also serving as the per-transaction fallback when a
// grouped admission flush fails.
func (c *Controller) admitNow(t *txn.Txn) scheduleOutcome {
	err := c.cli.Multi(c.admissionOps(t)...)
	if err != nil {
		c.cfg.Logf("controller %s: start %s: %v", c.cfg.Name, t.ID, err)
		c.locks.ReleaseAll(t.ID)
		// The started/prepared transition was never persisted; drop its
		// history stamp so a retry doesn't record it twice.
		if n := len(t.History); n > 0 && admissionState(t.History[n-1].State) {
			t.History = t.History[:n-1]
		}
		// Roll the simulation back; the transaction stays accepted and
		// will be retried on the next event.
		if rbErr := rollbackLog(c.ltree, c.cfg.Schema, t.Log); rbErr == nil {
			t.State = txn.StateAccepted
			t.Log = nil
			return outcomeConflict
		}
		c.abortQueued(t, err, nil)
		return outcomeAborted
	}
	c.admitApply(t)
	return outcomeRunnable
}

// admissionState reports states written by the admission paths
// (unwound together on a failed flush).
func admissionState(s txn.State) bool {
	return s == txn.StateStarted || s == txn.StatePrepared
}

// flushAdmissions group-commits every admission the scheduling round
// staged: all runnable transactions' state+log writes and phyQ enqueues
// in a single Multi. On failure each transaction is replayed through the
// per-item admission path; any that defer (store hiccup with a clean
// simulation rollback) return to the front of todoQ in order, as if they
// had never been popped.
func (c *Controller) flushAdmissions() {
	pending := c.admitPending
	c.admitPending = nil
	if len(pending) == 0 {
		return
	}
	ops := make([]store.Op, 0, 2*len(pending))
	for _, t := range pending {
		ops = append(ops, c.admissionOps(t)...)
	}
	// Coordinator-local children's yes-votes ride the same Multi as
	// their prepare writes (fast path); their post-flush effects run
	// after every admission in the batch is tracked.
	votes := c.xStageLocalVotes(pending, &ops)
	start := time.Now()
	err := c.cli.Multi(ops...)
	c.noteFlush(len(ops), time.Since(start))
	if err == nil {
		for _, t := range pending {
			if _, voted := votes[t.ID]; voted {
				c.prepared[t.ID] = t
				continue
			}
			c.admitApply(t)
		}
		for _, v := range votes {
			c.xPostVote(v.rec, v.eff)
		}
		return
	}
	c.cfg.Logf("controller %s: grouped admission of %d txns failed, replaying per txn: %v",
		c.cfg.Name, len(pending), err)
	var back []*txn.Txn
	for _, t := range pending {
		if c.admitNow(t) == outcomeConflict {
			back = append(back, t)
		}
	}
	if len(back) > 0 {
		c.todo = append(back, c.todo...)
	}
}

// rollbackTimed rolls the logical layer back via the execution log,
// accumulating the §6.3 rollback-overhead metric.
func (c *Controller) rollbackTimed(id string, records []txn.LogRecord) {
	start := time.Now()
	if err := rollbackLog(c.ltree, c.cfg.Schema, records); err != nil {
		c.cfg.Logf("controller %s: logical rollback of %s: %v", c.cfg.Name, id, err)
	}
	atomic.AddInt64(&c.stats.RollbackNanos, time.Since(start).Nanoseconds())
	atomic.AddInt64(&c.stats.Rollbacks, 1)
}

// abortQueued marks a not-yet-started transaction aborted and persists
// the terminal state (③A), recording the failure's taxonomy code
// alongside its message. With a non-nil round the terminal write is
// STAGED — appended after any same-round accept write on the record, so
// the grouped flush's version checks stay intact — instead of committed
// on its own.
func (c *Controller) abortQueued(t *txn.Txn, reason error, r *round) {
	t.Error = reason.Error()
	t.Code = string(trerr.CodeOf(reason))
	t.Log = nil
	t.State = txn.StateAccepted // normalize transient deferred state
	if err := t.Transition(txn.StateAborted); err != nil {
		c.cfg.Logf("controller %s: abort %s: %v", c.cfg.Name, t.ID, err)
		return
	}
	path := c.txnPath(t.ID)
	persist := func() error { return c.cli.Set(path, t.Encode(), -1) }
	count := func() {
		c.countStage(&c.stats.Aborted, "aborted")
		// A cross-shard child aborted before it could prepare is a NO
		// vote; it goes out only after the terminal state is durable.
		if t.IsChild() {
			c.xSendVote(t)
		}
	}
	if r != nil {
		// No per-item fallback: a failed flush reverts the transaction
		// to accepted and requeues it (see flushRound) because the abort
		// verdict may describe unwound state.
		r.stage([]store.Op{store.SetOp(path, t.Encode(), -1)}, count, nil)
		r.aborted = append(r.aborted, t)
		return
	}
	if err := persist(); err != nil {
		c.cfg.Logf("controller %s: persist abort %s: %v", c.cfg.Name, t.ID, err)
	}
	count()
}

// cleanup finishes a transaction whose physical execution completed
// (Figure 2, ⑤A/⑤B).
func (c *Controller) cleanup(msg proto.InputMsg, itemPath string) error {
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return c.inputQ.Remove(itemPath)
		}
		return err
	}
	t, tracked := c.inFlight[rec.ID]
	if !tracked || rec.State.Terminal() {
		// A transaction this leader does not own (already finalized —
		// e.g. KILLed — or cleaned up before a failover): drop the
		// notice.
		return c.inputQ.Remove(itemPath)
	}
	outcome := txn.State(msg.Outcome)
	switch outcome {
	case txn.StateCommitted, txn.StateAborted, txn.StateFailed:
	default:
		if err := c.inputQ.Remove(itemPath); err != nil {
			return err
		}
		return fmt.Errorf("result notice for %s with outcome %q", rec.ID, msg.Outcome)
	}

	// Persist the terminal state atomically with consuming the notice —
	// and, for commits, with the commit-log entry recovery replays. The
	// in-memory effects follow only after persistence succeeds, so a
	// retried cleanup never rolls the logical layer back twice.
	rec.Error = msg.Error
	rec.Code = msg.Code
	rec.UndoneThrough = msg.UndoneThrough
	if err := rec.Transition(outcome); err != nil {
		return err
	}
	ops := []store.Op{
		c.inputQ.RemoveOp(itemPath),
		store.SetOp(msg.TxnPath, rec.Encode(), stat.Version),
	}
	if outcome == txn.StateCommitted {
		ops = append(ops, store.CreateOp(proto.CommitLogPrefix,
			proto.CommitLogEntry{TxnPath: msg.TxnPath}.Encode(), store.FlagSequence))
	}
	if err := c.cli.Multi(ops...); err != nil {
		return err
	}
	c.finishCleanup(t, rec, outcome)
	return nil
}

// stageCleanup is the batched form of cleanup: the terminal-state write,
// notice consumption, and (for commits) commit-log entry are staged into
// the round's grouped Multi, and the in-memory effects — lock release,
// logical rollback, inconsistency marks, counters — run only after the
// group commits, so a failed flush never rolls the logical layer back
// for a transaction whose record still says started.
func (c *Controller) stageCleanup(r *round, msg proto.InputMsg, itemPath string) error {
	if r.staged[msg.TxnPath] {
		return nil // defer to the next round; see stageAccept
	}
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
				func() error { return c.inputQ.Remove(itemPath) })
			return nil
		}
		return err
	}
	t, tracked := c.inFlight[rec.ID]
	if !tracked || rec.State.Terminal() {
		// A transaction this leader does not own (already finalized —
		// e.g. KILLed — or cleaned up before a failover): drop the
		// notice.
		r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
			func() error { return c.inputQ.Remove(itemPath) })
		return nil
	}
	outcome := txn.State(msg.Outcome)
	switch outcome {
	case txn.StateCommitted, txn.StateAborted, txn.StateFailed:
	default:
		r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
			func() error { return c.inputQ.Remove(itemPath) })
		return fmt.Errorf("result notice for %s with outcome %q", rec.ID, msg.Outcome)
	}

	rec.Error = msg.Error
	rec.Code = msg.Code
	rec.UndoneThrough = msg.UndoneThrough
	if err := rec.Transition(outcome); err != nil {
		return err
	}
	ops := []store.Op{
		c.inputQ.RemoveOp(itemPath),
		store.SetOp(msg.TxnPath, rec.Encode(), stat.Version),
	}
	if outcome == txn.StateCommitted {
		ops = append(ops, store.CreateOp(proto.CommitLogPrefix,
			proto.CommitLogEntry{TxnPath: msg.TxnPath}.Encode(), store.FlagSequence))
	}
	r.staged[msg.TxnPath] = true
	if outcome == txn.StateCommitted {
		// Early lock handoff (⑤A): a committed transaction's logical
		// effects are already final in ltree and its physical execution
		// has finished, so nothing the locks protect can still change.
		// Releasing before this round's scheduling pass lets a waiting
		// transaction's admission ride the SAME grouped commit as this
		// terminal write — the lock handoff costs zero extra store
		// rounds. If the flush fails, the per-item fallback re-persists
		// and re-releases (idempotent); admissions that used the freed
		// locks were in the same failed Multi and are unwound with it.
		c.locks.ReleaseAll(rec.ID)
		doneInline := false
		r.stage(ops,
			func() {
				delete(c.inFlight, rec.ID)
				c.countStage(&c.stats.Committed, "committed")
				if rec.IsChild() && !doneInline {
					c.xSendChildDone(rec)
				}
				c.maybeCheckpoint()
			},
			func() error { return c.cleanup(msg, itemPath) },
		)
		if rec.IsChild() {
			// A coordinator-local child's done-report can ride this same
			// round: the ledger write (and the parent's finalize, when
			// this report completes the set) joins the grouped Multi that
			// persists the child's terminal state. Staged after the
			// cleanup stage so a failed flush re-finalizes the child
			// before the fallback re-applies the ledger.
			doneInline = c.stageXChildDoneLocal(r, rec)
		}
		return nil
	}
	// Aborted/failed outcomes roll the logical layer back, which must
	// not happen before the terminal state is persisted; their lock
	// releases therefore land post-flush, and the round schedules once
	// more afterwards (r.cleanups) so freed locks are claimable without
	// waiting for another input event.
	r.cleanups++
	r.stage(ops,
		func() { c.finishCleanup(t, rec, outcome) },
		func() error { return c.cleanup(msg, itemPath) },
	)
	return nil
}

// finishCleanup applies the in-memory half of a persisted terminal
// transition (Figure 2, ⑤A/⑤B), shared by the per-item and batched
// cleanup paths.
func (c *Controller) finishCleanup(t, rec *txn.Txn, outcome txn.State) {
	delete(c.inFlight, rec.ID)
	// A cross-shard child's terminal outcome feeds the coordinator's
	// ledger (the parent finalizes when every child has reported).
	if rec.IsChild() {
		defer c.xSendChildDone(rec)
	}
	switch outcome {
	case txn.StateCommitted:
		// ⑤A: logical effects are already in the tree from simulation.
		c.countStage(&c.stats.Committed, "committed")
		c.locks.ReleaseAll(rec.ID)
		c.maybeCheckpoint()
	case txn.StateAborted:
		// ⑤B: physical execution failed and was fully undone; roll the
		// logical layer back too.
		c.rollbackTimed(t.ID, t.Log)
		c.countStage(&c.stats.Aborted, "aborted")
		c.locks.ReleaseAll(rec.ID)
	case txn.StateFailed:
		// Undo failed partway: the logical layer rolls back, but the
		// physical layer is only partially rolled back — a cross-layer
		// inconsistency. Mark every path the transaction wrote so
		// further transactions are denied until reconciliation (§4).
		c.rollbackTimed(t.ID, t.Log)
		c.markInconsistentFromLog(t.Log)
		c.countStage(&c.stats.Failed, "failed")
		c.locks.ReleaseAll(rec.ID)
	}
}

// signal applies a TERM/KILL operator signal (§4).
func (c *Controller) signal(txnPath string, sig txn.Signal) error {
	rec, _, err := c.loadTxn(txnPath)
	if err != nil {
		return err
	}
	switch {
	case rec.State.Terminal():
		return nil
	case rec.State == txn.StatePrepared:
		// A prepared cross-shard child voted yes and may not abort
		// unilaterally; the client rejects these signals synchronously,
		// and one racing past that check (prepare landed in between) is
		// dropped here — the 2PC decision resolves the child either way.
		c.cfg.Logf("controller %s: dropping %s signal for prepared child %s", c.cfg.Name, sig, rec.ID)
		return nil
	case rec.State == txn.StateInitialized || rec.State == txn.StateAccepted:
		// Not started yet: mark the in-memory copy so schedule() aborts
		// it before simulation.
		for _, t := range c.todo {
			if t.ID == rec.ID {
				t.Signal = sig
				return nil
			}
		}
		// Not in todo yet (still in inputQ): persist the signal so
		// accept() sees it. The record's Signal field rides along.
		return c.updateTxn(txnPath, func(r *txn.Txn) error {
			r.Signal = sig
			return nil
		})
	case rec.State == txn.StateStarted:
		if rec.IsChild() {
			// Past the commit decision a cross-shard child MUST commit —
			// honoring a TERM/KILL here would abort one participant while
			// its siblings commit, silently breaking the transaction's
			// atomicity. The client rejects these synchronously; drop the
			// racer.
			c.cfg.Logf("controller %s: dropping %s signal for executing cross-shard child %s",
				c.cfg.Name, sig, rec.ID)
			return nil
		}
		if sig == txn.SignalTerm {
			// Graceful: ask the worker to stop and roll back; cleanup
			// happens when its aborted result arrives.
			return c.updateTxn(txnPath, func(r *txn.Txn) error {
				r.Signal = txn.SignalTerm
				return nil
			})
		}
		// KILL: abort immediately in the logical layer only. The
		// worker may still be executing; any divergence is reconciled
		// by repair later (§4).
		t, tracked := c.inFlight[rec.ID]
		if !tracked {
			return nil
		}
		delete(c.inFlight, rec.ID)
		c.rollbackTimed(t.ID, t.Log)
		c.markInconsistentFromLog(t.Log)
		c.locks.ReleaseAll(rec.ID)
		c.countStage(&c.stats.Aborted, "aborted")
		return c.updateTxn(txnPath, func(r *txn.Txn) error {
			r.Signal = txn.SignalKill
			if r.State.Terminal() {
				return nil
			}
			r.Error = "killed by operator"
			r.Code = string(trerr.TxnTerminated)
			return r.Transition(txn.StateAborted)
		})
	}
	return nil
}

// markInconsistentFromLog flags every path written by an execution log
// as inconsistent, in memory and persistently.
func (c *Controller) markInconsistentFromLog(records []txn.LogRecord) {
	seen := make(map[string]bool)
	for _, r := range records {
		def, _ := resolveDef(c.ltree, c.cfg.Schema, r)
		for _, p := range touchedPathsRecord(def, r) {
			if seen[p] {
				continue
			}
			seen[p] = true
			c.MarkInconsistent(p)
		}
	}
}

// Reconciler handles the two §4 reconciliation mechanisms on behalf of
// the lead controller. Implementations run on the controller's event
// goroutine, serialized with scheduling, and must respect the lock
// table (no reconciliation under subtrees with in-flight transactions).
type Reconciler interface {
	// Reload performs physical→logical synchronization of the target
	// subtree.
	Reload(c *Controller, target string) error
	// Repair performs logical→physical synchronization of the target
	// subtree.
	Repair(c *Controller, target string) error
}

// Schema exposes the data model schema for reconciliation.
func (c *Controller) Schema() *model.Schema { return c.cfg.Schema }

// MarkUnusable flags a node whose reconciliation failed due to hardware
// faults; future transactions must not use it (§4).
func (c *Controller) MarkUnusable(path string) {
	if n, err := c.ltree.Get(path); err == nil {
		n.Unusable = true
	}
	zpath := proto.UnusablePath + "/" + proto.EncodePath(path)
	if _, err := c.cli.Create(zpath, nil, 0); err != nil && !errors.Is(err, store.ErrNodeExists) {
		c.cfg.Logf("controller %s: persist unusable %s: %v", c.cfg.Name, path, err)
	}
}

// ClearUnusable removes the unusable mark (e.g. after hardware
// replacement and reload).
func (c *Controller) ClearUnusable(path string) {
	if n, err := c.ltree.Get(path); err == nil {
		n.Unusable = false
	}
	zpath := proto.UnusablePath + "/" + proto.EncodePath(path)
	if err := c.cli.Delete(zpath, -1); err != nil && !errors.Is(err, store.ErrNoNode) {
		c.cfg.Logf("controller %s: clear unusable %s: %v", c.cfg.Name, path, err)
	}
}

// MarkInconsistent flags a model path as diverged between layers. The
// mark denies transactions on the node and its descendants until a
// reload/repair clears it.
func (c *Controller) MarkInconsistent(path string) {
	if n, err := c.ltree.Get(path); err == nil {
		n.Inconsistent = true
	}
	zpath := proto.InconsistentPath + "/" + proto.EncodePath(path)
	if _, err := c.cli.Create(zpath, nil, 0); err != nil && !errors.Is(err, store.ErrNodeExists) {
		c.cfg.Logf("controller %s: persist inconsistent %s: %v", c.cfg.Name, path, err)
	}
}

// ClearInconsistent removes the divergence mark after reconciliation.
func (c *Controller) ClearInconsistent(path string) {
	if n, err := c.ltree.Get(path); err == nil {
		n.Inconsistent = false
	}
	zpath := proto.InconsistentPath + "/" + proto.EncodePath(path)
	if err := c.cli.Delete(zpath, -1); err != nil && !errors.Is(err, store.ErrNoNode) {
		c.cfg.Logf("controller %s: clear inconsistent %s: %v", c.cfg.Name, path, err)
	}
}

// --- Checkpointing ----------------------------------------------------

// maybeCheckpoint folds the commit log into a fresh snapshot when
// enough commits accumulated and no transaction is in flight (the
// logical tree then contains exactly the committed state).
func (c *Controller) maybeCheckpoint() {
	// Prepared cross-shard children block checkpointing like in-flight
	// transactions: their (uncommitted) simulated effects are in the
	// tree, and a snapshot must contain exactly the committed state.
	if c.cfg.CheckpointEvery <= 0 || len(c.inFlight) > 0 || len(c.prepared) > 0 {
		return
	}
	entries, err := c.cli.Children(proto.CommitLogPath)
	if err != nil || len(entries) < c.cfg.CheckpointEvery {
		return
	}
	if err := c.checkpoint(entries); err != nil {
		c.cfg.Logf("controller %s: checkpoint: %v", c.cfg.Name, err)
	}
}

func (c *Controller) checkpoint(entries []string) error {
	data, err := c.ltree.MarshalSnapshot()
	if err != nil {
		return err
	}
	sort.Strings(entries)
	env := proto.Snapshot{Tree: data, LastCommitSeq: entries[len(entries)-1]}
	if err := c.cli.Set(proto.SnapshotPath, env.Encode(), -1); err != nil {
		return err
	}
	// Prune folded commit-log entries.
	for _, name := range entries {
		if err := c.cli.Delete(proto.CommitLogPath+"/"+name, -1); err != nil && !errors.Is(err, store.ErrNoNode) {
			return err
		}
	}
	if c.cfg.RetainTerminal > 0 {
		if err := c.gcTxnRecords(); err != nil {
			return err
		}
	}
	c.gcIdempotencyClaims()
	return nil
}

// gcTxnRecords deletes the oldest terminal transaction records beyond
// the retention bound. Safe only after a checkpoint: the records'
// effects are folded into the snapshot, so recovery no longer needs
// them (non-terminal records are never touched). Cross-shard records
// additionally respect the 2PC ledger across shards — see gcReapable.
func (c *Controller) gcTxnRecords() error {
	ids, err := c.cli.Children(proto.TxnsPath)
	if err != nil {
		return err
	}
	sort.Strings(ids)
	var terminal []string
	for _, id := range ids {
		rec, _, err := c.loadTxn(proto.TxnsPath + "/" + id)
		if err != nil {
			if errors.Is(err, store.ErrNoNode) {
				continue
			}
			return err
		}
		if rec.State.Terminal() && c.gcReapable(rec) {
			terminal = append(terminal, id)
		}
	}
	if len(terminal) <= c.cfg.RetainTerminal {
		return nil
	}
	for _, id := range terminal[:len(terminal)-c.cfg.RetainTerminal] {
		if err := c.cli.Delete(proto.TxnsPath+"/"+id, -1); err != nil && !errors.Is(err, store.ErrNoNode) {
			return err
		}
	}
	return nil
}

// gcIdempotencyClaims sweeps idempotency entries past the configured
// TTL: unresolved claims whose submitter died between claiming the key
// and registering its transaction, and resolved key→txn mappings old
// enough that any retry storm has surely passed (their transaction
// record is typically GC'd by then anyway). Deletes are version-checked
// so a racing re-claim of the key is never clobbered; failures are
// ignored — the next checkpoint sweeps again.
func (c *Controller) gcIdempotencyClaims() {
	ttl := c.cfg.IdempotencyTTL
	if ttl <= 0 {
		return
	}
	keys, err := c.cli.Children(proto.IdempotencyPath)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-ttl)
	for _, key := range keys {
		path := proto.IdempotencyPath + "/" + key
		data, stat, err := c.cli.Get(path)
		if err != nil {
			continue
		}
		var ent struct {
			ClaimedAt time.Time `json:"claimedAt"`
		}
		if json.Unmarshal(data, &ent) != nil || ent.ClaimedAt.IsZero() {
			continue
		}
		if ent.ClaimedAt.After(cutoff) {
			continue
		}
		_ = c.cli.Delete(path, stat.Version)
	}
}

// --- Recovery (§2.3) --------------------------------------------------

// recover rebuilds the leader's in-memory state from persistent storage:
// logical tree = snapshot + commit-log replay + re-simulation of
// in-flight transactions; lock table = write sets of in-flight
// transactions; todoQ = accepted (and orphaned initialized) records in
// submission order.
func (c *Controller) recover() error {
	c.locks = lock.NewManager()
	c.inFlight = make(map[string]*txn.Txn)
	c.prepared = make(map[string]*txn.Txn)
	c.todo = nil

	// 1. Base snapshot.
	data, _, err := c.cli.Get(proto.SnapshotPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return errors.New("no model snapshot: platform was never bootstrapped")
		}
		return err
	}
	env, err := proto.DecodeSnapshot(data)
	if err != nil {
		return err
	}
	c.ltree, err = model.UnmarshalSnapshot(env.Tree)
	if err != nil {
		return err
	}

	// 2. Replay committed transactions newer than the snapshot, in
	// commit order.
	entries, err := c.cli.Children(proto.CommitLogPath)
	if err != nil {
		return err
	}
	sort.Strings(entries)
	for _, name := range entries {
		if env.LastCommitSeq != "" && name <= env.LastCommitSeq {
			continue
		}
		edata, _, err := c.cli.Get(proto.CommitLogPath + "/" + name)
		if err != nil {
			if errors.Is(err, store.ErrNoNode) {
				continue
			}
			return err
		}
		entry, err := proto.DecodeCommitLogEntry(edata)
		if err != nil {
			return err
		}
		rec, _, err := c.loadTxn(entry.TxnPath)
		if err != nil {
			return err
		}
		if err := replayLog(c.ltree, c.cfg.Schema, rec.Log); err != nil {
			return fmt.Errorf("replay committed %s: %w", rec.ID, err)
		}
	}

	// 3. Restore inconsistency and unusable marks.
	marks, err := c.cli.Children(proto.InconsistentPath)
	if err != nil {
		return err
	}
	for _, name := range marks {
		if n, err := c.ltree.Get(proto.DecodePath(name)); err == nil {
			n.Inconsistent = true
		}
	}
	marks, err = c.cli.Children(proto.UnusablePath)
	if err != nil {
		return err
	}
	for _, name := range marks {
		if n, err := c.ltree.Get(proto.DecodePath(name)); err == nil {
			n.Unusable = true
		}
	}

	// 4. Scan transaction records.
	ids, err := c.cli.Children(proto.TxnsPath)
	if err != nil {
		return err
	}
	sort.Strings(ids)
	var xParents, xInDoubt []*txn.Txn
	for _, id := range ids {
		path := proto.TxnsPath + "/" + id
		rec, _, err := c.loadTxn(path)
		if err != nil {
			if errors.Is(err, store.ErrNoNode) {
				continue
			}
			return err
		}
		if rec.IsParent() {
			// Cross-shard parents never enter todoQ; the coordinator
			// resumes them once local state is rebuilt.
			if !rec.State.Terminal() {
				xParents = append(xParents, rec)
			}
			continue
		}
		switch rec.State {
		case txn.StateInitialized:
			// The old leader may have consumed the submit notice without
			// accepting; re-accept directly. A still-pending submit
			// notice becomes a harmless duplicate.
			if err := rec.Transition(txn.StateAccepted); err == nil {
				if err := c.cli.Set(path, rec.Encode(), -1); err != nil {
					return err
				}
				c.countStage(&c.stats.Accepted, "accepted")
				c.todo = append(c.todo, rec)
			}
		case txn.StateAccepted, txn.StateDeferred:
			rec.State = txn.StateAccepted
			c.todo = append(c.todo, rec)
		case txn.StateStarted:
			// Re-apply the simulated effects and re-take the locks; the
			// worker will (or already did) deliver a result notice.
			if err := replayLog(c.ltree, c.cfg.Schema, rec.Log); err != nil {
				return fmt.Errorf("replay in-flight %s: %w", rec.ID, err)
			}
			reqs := lockRequestsFromLog(c.ltree, c.cfg.Schema, rec.Log)
			if err := c.locks.Acquire(rec.ID, reqs); err != nil {
				return fmt.Errorf("re-lock in-flight %s: %w", rec.ID, err)
			}
			c.inFlight[rec.ID] = rec
		case txn.StatePrepared:
			// An in-doubt cross-shard child: re-apply its simulation and
			// re-take its locks exactly like a started transaction, then
			// resolve it against the coordinator record below.
			if err := replayLog(c.ltree, c.cfg.Schema, rec.Log); err != nil {
				return fmt.Errorf("replay prepared %s: %w", rec.ID, err)
			}
			reqs := lockRequestsFromLog(c.ltree, c.cfg.Schema, rec.Log)
			if err := c.locks.Acquire(rec.ID, reqs); err != nil {
				return fmt.Errorf("re-lock prepared %s: %w", rec.ID, err)
			}
			c.prepared[rec.ID] = rec
			xInDoubt = append(xInDoubt, rec)
		}
	}
	// Resolve in-doubt prepares against their coordinator records BEFORE
	// the scheduling pass, so locks released by abort decisions are
	// immediately claimable; then resume coordination of local parents.
	for _, rec := range xInDoubt {
		c.xResolveInDoubt(rec)
	}
	for _, rec := range xParents {
		c.xRecoverParent(rec)
	}
	c.schedule()
	c.cfg.Logf("controller %s: recovered %d in-flight, %d prepared, %d queued, model %d nodes",
		c.cfg.Name, len(c.inFlight), len(c.prepared), len(c.todo), c.ltree.Size())
	return nil
}

// --- Store helpers ----------------------------------------------------

func (c *Controller) txnPath(id string) string {
	if strings.HasPrefix(id, proto.TxnsPath) {
		return id
	}
	return proto.TxnsPath + "/" + id
}

func (c *Controller) loadTxn(path string) (*txn.Txn, store.Stat, error) {
	data, stat, err := c.cli.Get(path)
	if err != nil {
		return nil, stat, err
	}
	rec, err := txn.Decode(data)
	if err != nil {
		return nil, stat, err
	}
	// The record's identity is its store node name; fill it in so
	// submitters don't need a second write after sequence allocation.
	rec.ID = path[strings.LastIndexByte(path, '/')+1:]
	return rec, stat, nil
}

// updateTxn applies a mutation to a transaction record with
// compare-and-set retry, so concurrent controller/worker updates never
// lose writes.
func (c *Controller) updateTxn(path string, mutate func(*txn.Txn) error) error {
	for i := 0; i < 64; i++ {
		rec, stat, err := c.loadTxn(path)
		if err != nil {
			return err
		}
		if err := mutate(rec); err != nil {
			return err
		}
		err = c.cli.Set(path, rec.Encode(), stat.Version)
		if err == nil {
			return nil
		}
		if !errors.Is(err, store.ErrBadVersion) {
			return err
		}
	}
	return fmt.Errorf("controller: update %s: too many CAS conflicts", path)
}

// LogicalTree exposes the leader's logical model for reconciliation and
// tests. It must only be accessed while the controller is quiescent or
// from reconciliation hooks running on the leader goroutine.
func (c *Controller) LogicalTree() *model.Tree { return c.ltree }

// LockManager exposes the leader's lock table for tests.
func (c *Controller) LockManager() *lock.Manager { return c.locks }

// Client exposes the controller's store client for platform plumbing.
func (c *Controller) Client() *store.Client { return c.cli }
