package controller_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/worker"
)

// counterSchema is a minimal data model: counter nodes with inc/dec
// actions and a non-negative, bounded-value constraint.
func counterSchema() *model.Schema {
	s := model.NewSchema()
	s.Entity("root")
	s.Entity("counter").
		Action(&model.ActionDef{
			Name: "inc",
			Simulate: func(t *model.Tree, path string, args []string) error {
				n, err := t.Get(path)
				if err != nil {
					return err
				}
				n.Attrs["value"] = n.GetInt("value") + 1
				return nil
			},
			Undo: "dec",
		}).
		Action(&model.ActionDef{
			Name: "dec",
			Simulate: func(t *model.Tree, path string, args []string) error {
				n, err := t.Get(path)
				if err != nil {
					return err
				}
				n.Attrs["value"] = n.GetInt("value") - 1
				return nil
			},
			Undo: "inc",
		}).
		Constrain(model.Constraint{
			Name: "max-3",
			Check: func(t *model.Tree, path string, n *model.Node) error {
				if n.GetInt("value") > 3 {
					return fmt.Errorf("value %d > 3", n.GetInt("value"))
				}
				return nil
			},
		})
	return s
}

func counterModel(counters int) *model.Tree {
	t := model.NewTree()
	for i := 0; i < counters; i++ {
		if _, err := t.Create(fmt.Sprintf("/c%d", i), "counter", map[string]any{"value": int64(0)}); err != nil {
			panic(err)
		}
	}
	return t
}

// counterProcs: "incN <path> <times>" increments a counter repeatedly;
// "touchTwo <a> <b>" increments two counters in one transaction.
func counterProcs() map[string]controller.Procedure {
	return map[string]controller.Procedure{
		"incN": func(c *controller.Ctx) error {
			times := 1
			fmt.Sscanf(c.Arg(1), "%d", &times)
			for i := 0; i < times; i++ {
				if err := c.Do(c.Arg(0), "inc"); err != nil {
					return err
				}
			}
			return nil
		},
		"touchTwo": func(c *controller.Ctx) error {
			if err := c.Do(c.Arg(0), "inc"); err != nil {
				return err
			}
			return c.Do(c.Arg(1), "inc")
		},
		"readThenInc": func(c *controller.Ctx) error {
			if _, err := c.Read(c.Arg(0)); err != nil {
				return err
			}
			return c.Do(c.Arg(1), "inc")
		},
	}
}

// rig is a single-controller, single-worker harness over the counter
// schema with a scriptable executor.
type rig struct {
	ens    *store.Ensemble
	ctrl   *controller.Controller
	wrk    *worker.Worker
	cli    *store.Client
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// scriptedExecutor lets tests fail specific physical actions.
type scriptedExecutor struct {
	mu   sync.Mutex
	fail map[string]error // "action" -> error
}

func (s *scriptedExecutor) Execute(path, action string, args []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fail[action]; err != nil {
		return err
	}
	return nil
}

func (s *scriptedExecutor) setFail(action string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail == nil {
		s.fail = map[string]error{}
	}
	s.fail[action] = err
}

func newRig(t *testing.T, counters int, exec worker.Executor) *rig {
	t.Helper()
	ens := store.NewEnsemble(store.Config{Replicas: 3, SessionTimeout: 200 * time.Millisecond})
	if exec == nil {
		exec = worker.NoopExecutor{}
	}
	c, err := controller.New(controller.Config{
		Name:       "ctrl-0",
		Ensemble:   ens,
		Schema:     counterSchema(),
		Procedures: counterProcs(),
		Bootstrap:  counterModel(counters),
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := worker.New(worker.Config{Name: "w0", Ensemble: ens, Executor: exec, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &rig{ens: ens, ctrl: c, wrk: w, cli: ens.Connect(), cancel: cancel}
	r.wg.Add(2)
	go func() { defer r.wg.Done(); _ = c.Run(ctx) }()
	go func() { defer r.wg.Done(); _ = w.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for !c.Leading() {
		if time.Now().After(deadline) {
			t.Fatal("controller never led")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		cancel()
		r.wg.Wait()
		r.cli.Close()
		c.Close()
		w.Close()
		ens.Close()
	})
	return r
}

func (r *rig) submit(t *testing.T, proc string, args ...string) string {
	t.Helper()
	rec := &txn.Txn{Proc: proc, Args: args, State: txn.StateInitialized, SubmittedAt: time.Now()}
	path, err := r.cli.Create(proto.TxnPrefix, rec.Encode(), store.FlagSequence)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.cli.Create(proto.InputQPath+"/item-",
		proto.InputMsg{Kind: proto.KindSubmit, TxnPath: path}.Encode(), store.FlagSequence)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func (r *rig) wait(t *testing.T, path string) *txn.Txn {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		data, _, err := r.cli.Get(path)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := txn.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State.Terminal() {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("txn %s stuck in %s", path, rec.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestLifecycleCommit(t *testing.T) {
	r := newRig(t, 2, nil)
	rec := r.wait(t, r.submit(t, "incN", "/c0", "2"))
	if rec.State != txn.StateCommitted {
		t.Fatalf("state = %s (%s)", rec.State, rec.Error)
	}
	if len(rec.Log) != 2 || rec.Log[0].Action != "inc" || rec.Log[0].Undo != "dec" {
		t.Fatalf("log = %v", rec.Log)
	}
	if got := r.ctrl.LogicalTree(); !got.Exists("/c0") {
		t.Fatal("model lost c0")
	}
	n, _ := r.ctrl.LogicalTree().Get("/c0")
	if n.GetInt("value") != 2 {
		t.Fatalf("c0 = %d, want 2", n.GetInt("value"))
	}
}

func TestLifecycleConstraintAbort(t *testing.T) {
	r := newRig(t, 1, nil)
	// 5 increments blow the max-3 constraint at step 4; the logical
	// layer must be fully rolled back and no lock held.
	rec := r.wait(t, r.submit(t, "incN", "/c0", "5"))
	if rec.State != txn.StateAborted {
		t.Fatalf("state = %s", rec.State)
	}
	n, _ := r.ctrl.LogicalTree().Get("/c0")
	if n.GetInt("value") != 0 {
		t.Fatalf("c0 = %d after abort, want 0", n.GetInt("value"))
	}
	if r.ctrl.LockManager().LockCount() != 0 {
		t.Fatal("locks leaked")
	}
	st := r.ctrl.Stats()
	if st.Violations != 1 || st.Aborted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLifecyclePhysicalAbort(t *testing.T) {
	exec := &scriptedExecutor{}
	exec.setFail("inc", errors.New("device down"))
	r := newRig(t, 1, exec)
	rec := r.wait(t, r.submit(t, "incN", "/c0", "2"))
	if rec.State != txn.StateAborted {
		t.Fatalf("state = %s (%s)", rec.State, rec.Error)
	}
	n, _ := r.ctrl.LogicalTree().Get("/c0")
	if n.GetInt("value") != 0 {
		t.Fatalf("c0 = %d after physical abort", n.GetInt("value"))
	}
	// Next transaction on the same counter still works.
	exec.setFail("inc", nil)
	rec = r.wait(t, r.submit(t, "incN", "/c0", "1"))
	if rec.State != txn.StateCommitted {
		t.Fatalf("followup = %s", rec.State)
	}
}

func TestLifecycleUndoFailureMarksFailed(t *testing.T) {
	// The transaction's first inc succeeds physically, its second inc
	// fails, and the compensating dec fails too → terminal state
	// "failed" and both touched counters quarantined (§4).
	ce := &countingExecutor{failOn: map[string]int{"inc": 2}, alwaysFail: map[string]bool{"dec": true}}
	r := newRig(t, 2, ce)
	rec := r.wait(t, r.submit(t, "touchTwo", "/c0", "/c1"))
	if rec.State != txn.StateFailed {
		t.Fatalf("state = %s (%s)", rec.State, rec.Error)
	}
	// Follow-up transactions on the quarantined nodes abort.
	rec = r.wait(t, r.submit(t, "incN", "/c0", "1"))
	if rec.State != txn.StateAborted {
		t.Fatalf("txn on inconsistent node = %s", rec.State)
	}
}

// countingExecutor fails the Nth invocation of an action, and any
// action listed in alwaysFail.
type countingExecutor struct {
	mu         sync.Mutex
	counts     map[string]int
	failOn     map[string]int
	alwaysFail map[string]bool
}

func (c *countingExecutor) Execute(path, action string, args []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.counts == nil {
		c.counts = map[string]int{}
	}
	c.counts[action]++
	if c.alwaysFail[action] {
		return fmt.Errorf("injected permanent failure on %s", action)
	}
	if n := c.failOn[action]; n != 0 && c.counts[action] == n {
		return fmt.Errorf("injected failure on %s #%d", action, n)
	}
	return nil
}

func TestFIFOConflictDeferral(t *testing.T) {
	// Two transactions on the same counter: the second defers while the
	// first holds the lock, then runs. Both commit; final value 2.
	slow := &slowExecutor{delay: 60 * time.Millisecond}
	r := newRig(t, 1, slow)
	p1 := r.submit(t, "incN", "/c0", "1")
	p2 := r.submit(t, "incN", "/c0", "1")
	rec1, rec2 := r.wait(t, p1), r.wait(t, p2)
	if rec1.State != txn.StateCommitted || rec2.State != txn.StateCommitted {
		t.Fatalf("states = %s/%s", rec1.State, rec2.State)
	}
	n, _ := r.ctrl.LogicalTree().Get("/c0")
	if n.GetInt("value") != 2 {
		t.Fatalf("c0 = %d, want 2", n.GetInt("value"))
	}
	if r.ctrl.Stats().Deferrals == 0 {
		t.Fatal("no deferral recorded despite conflict")
	}
}

type slowExecutor struct{ delay time.Duration }

func (s *slowExecutor) Execute(path, action string, args []string) error {
	time.Sleep(s.delay)
	return nil
}

func TestIndependentTxnsOverlap(t *testing.T) {
	// Transactions on distinct counters must not defer each other.
	r := newRig(t, 4, &slowExecutor{delay: 30 * time.Millisecond})
	var paths []string
	for i := 0; i < 4; i++ {
		paths = append(paths, r.submit(t, "incN", fmt.Sprintf("/c%d", i), "1"))
	}
	for _, p := range paths {
		if rec := r.wait(t, p); rec.State != txn.StateCommitted {
			t.Fatalf("state = %s", rec.State)
		}
	}
	if d := r.ctrl.Stats().Deferrals; d != 0 {
		t.Fatalf("deferrals = %d, want 0 for disjoint txns", d)
	}
}

func TestReadLockBlocksWriter(t *testing.T) {
	// readThenInc reads /c0 and writes /c1; while it is in flight, a
	// writer of /c0 must defer (R ‖ W conflict) — the §3.1.3 isolation.
	r := newRig(t, 2, &slowExecutor{delay: 80 * time.Millisecond})
	p1 := r.submit(t, "readThenInc", "/c0", "/c1")
	time.Sleep(20 * time.Millisecond)
	p2 := r.submit(t, "incN", "/c0", "1")
	if rec := r.wait(t, p1); rec.State != txn.StateCommitted {
		t.Fatalf("reader = %s", rec.State)
	}
	if rec := r.wait(t, p2); rec.State != txn.StateCommitted {
		t.Fatalf("writer = %s", rec.State)
	}
	if r.ctrl.Stats().Deferrals == 0 {
		t.Fatal("writer was not deferred behind reader")
	}
}

func TestUnknownProcedureAborts(t *testing.T) {
	r := newRig(t, 1, nil)
	rec := r.wait(t, r.submit(t, "nope"))
	if rec.State != txn.StateAborted || rec.Error == "" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestDuplicateSubmitNoticeIgnored(t *testing.T) {
	r := newRig(t, 1, nil)
	path := r.submit(t, "incN", "/c0", "1")
	// Duplicate notice for the same record.
	if _, err := r.cli.Create(proto.InputQPath+"/item-",
		proto.InputMsg{Kind: proto.KindSubmit, TxnPath: path}.Encode(), store.FlagSequence); err != nil {
		t.Fatal(err)
	}
	rec := r.wait(t, path)
	if rec.State != txn.StateCommitted {
		t.Fatalf("state = %s", rec.State)
	}
	time.Sleep(50 * time.Millisecond) // let the duplicate drain
	n, _ := r.ctrl.LogicalTree().Get("/c0")
	if n.GetInt("value") != 1 {
		t.Fatalf("c0 = %d, want 1 (duplicate executed?)", n.GetInt("value"))
	}
}

func TestCheckpointGCsTerminalRecords(t *testing.T) {
	ens := store.NewEnsemble(store.Config{Replicas: 3, SessionTimeout: 200 * time.Millisecond})
	c, err := controller.New(controller.Config{
		Name:            "ctrl-0",
		Ensemble:        ens,
		Schema:          counterSchema(),
		Procedures:      counterProcs(),
		Bootstrap:       counterModel(2),
		CheckpointEvery: 2,
		RetainTerminal:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := worker.New(worker.Config{Name: "w", Ensemble: ens, Executor: worker.NoopExecutor{}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = c.Run(ctx) }()
	go func() { defer wg.Done(); _ = w.Run(ctx) }()
	cli := ens.Connect()
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		cli.Close()
		c.Close()
		w.Close()
		ens.Close()
	})
	deadline := time.Now().Add(5 * time.Second)
	for !c.Leading() {
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(time.Millisecond)
	}
	r := &rig{ens: ens, ctrl: c, wrk: w, cli: cli}
	for i := 0; i < 6; i++ {
		rec := r.wait(t, r.submit(t, "incN", fmt.Sprintf("/c%d", i%2), "1"))
		if rec.State != txn.StateCommitted {
			t.Fatalf("txn %d: %s (%s)", i, rec.State, rec.Error)
		}
	}
	// Let the last checkpoint settle, then count records and log
	// entries.
	time.Sleep(50 * time.Millisecond)
	ids, err := cli.Children(proto.TxnsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) > 3 { // retained 2 + possibly one not yet folded
		t.Fatalf("txn records not GCed: %d remain (%v)", len(ids), ids)
	}
	entries, err := cli.Children(proto.CommitLogPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) >= 6 {
		t.Fatalf("commit log not pruned: %d entries", len(entries))
	}
	// The model still reflects all six commits (via the snapshot).
	n0, _ := c.LogicalTree().Get("/c0")
	n1, _ := c.LogicalTree().Get("/c1")
	if n0.GetInt("value")+n1.GetInt("value") != 6 {
		t.Fatalf("c0+c1 = %d, want 6", n0.GetInt("value")+n1.GetInt("value"))
	}
}

func TestStatsAccounting(t *testing.T) {
	r := newRig(t, 2, nil)
	r.wait(t, r.submit(t, "incN", "/c0", "1"))
	r.wait(t, r.submit(t, "incN", "/c0", "9")) // constraint abort
	st := r.ctrl.Stats()
	if st.Accepted != 2 || st.Committed != 1 || st.Aborted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusyNanos <= 0 || st.ConstraintNanos <= 0 {
		t.Fatalf("timing stats not accumulated: %+v", st)
	}
	if st.Rollbacks == 0 || st.RollbackNanos <= 0 {
		t.Fatalf("rollback stats not accumulated: %+v", st)
	}
}
