package controller_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/proto"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/worker"
)

// batchRig is a two-controller, one-worker harness with the batched
// pipeline enabled, for failover tests under grouped commits.
type batchRig struct {
	ens   *store.Ensemble
	ctrls []*controller.Controller
	wrk   *worker.Worker
	cli   *store.Client
	wg    sync.WaitGroup
}

func newBatchRig(t *testing.T, counters, batchMaxOps, claimBatch int, policy controller.SchedulingPolicy, exec worker.Executor) *batchRig {
	t.Helper()
	ens := store.NewEnsemble(store.Config{Replicas: 3, SessionTimeout: 150 * time.Millisecond})
	if exec == nil {
		exec = worker.NoopExecutor{}
	}
	r := &batchRig{ens: ens, cli: ens.Connect()}
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 2; i++ {
		c, err := controller.New(controller.Config{
			Name:        fmt.Sprintf("ctrl-%d", i),
			Ensemble:    ens,
			Schema:      counterSchema(),
			Procedures:  counterProcs(),
			Bootstrap:   counterModel(counters),
			Policy:      policy,
			BatchMaxOps: batchMaxOps,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.ctrls = append(r.ctrls, c)
		r.wg.Add(1)
		go func() { defer r.wg.Done(); _ = c.Run(ctx) }()
	}
	w, err := worker.New(worker.Config{
		Name: "w0", Ensemble: ens, Executor: exec, Threads: 4,
		ClaimBatch: claimBatch, BatchMaxOps: batchMaxOps,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.wrk = w
	r.wg.Add(1)
	go func() { defer r.wg.Done(); _ = w.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for r.leader() == nil {
		if time.Now().After(deadline) {
			t.Fatal("no controller ever led")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		cancel()
		r.wg.Wait()
		r.cli.Close()
		for _, c := range r.ctrls {
			c.Close()
		}
		w.Close()
		ens.Close()
	})
	return r
}

func (r *batchRig) leader() *controller.Controller {
	for _, c := range r.ctrls {
		if c.Leading() {
			return c
		}
	}
	return nil
}

func (r *batchRig) submit(t *testing.T, proc string, args ...string) string {
	t.Helper()
	rec := &txn.Txn{Proc: proc, Args: args, State: txn.StateInitialized, SubmittedAt: time.Now()}
	path, err := r.cli.Create(proto.TxnPrefix, rec.Encode(), store.FlagSequence)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = r.cli.Create(proto.InputQPath+"/item-",
		proto.InputMsg{Kind: proto.KindSubmit, TxnPath: path}.Encode(), store.FlagSequence); err != nil {
		t.Fatal(err)
	}
	return path
}

func (r *batchRig) wait(t *testing.T, path string) *txn.Txn {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		data, _, err := r.cli.Get(path)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := txn.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State.Terminal() {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("txn %s stuck in %s", path, rec.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestScheduleAggressiveConflictHeavy drives the §3.1.1 aggressive
// policy through a conflict-heavy workload under the batched pipeline: a
// chain of transactions serialized on one counter (each deferring while
// its predecessor executes) plus independent transactions behind them in
// todoQ. The independent work must commit without waiting for the whole
// chain (no head-of-line blocking), the deferred head must not starve
// (the chain completes), and every deferral's re-simulation must leave
// the logical layer exact — any leaked or double-applied simulation
// shows up in the final counter values.
func TestScheduleAggressiveConflictHeavy(t *testing.T) {
	const chainLen, indep = 3, 4 // the max-3 constraint caps the chain
	// Claim size 1: the property under test is the CONTROLLER's policy;
	// a worker thread hoarding a claimed batch would blur the timing.
	r := newBatchRig(t, 1+indep, 16, 1, controller.ScheduleAggressive,
		&slowExecutor{delay: 80 * time.Millisecond})

	// The chain serializes on /c0; the independent set spreads over the
	// rest. Everything is submitted up front, chain first, so the
	// independent transactions sit BEHIND the conflicted head in todoQ.
	var chain, others []string
	for i := 0; i < chainLen; i++ {
		chain = append(chain, r.submit(t, "incN", "/c0", "1"))
	}
	for i := 0; i < indep; i++ {
		others = append(others, r.submit(t, "incN", fmt.Sprintf("/c%d", 1+i), "1"))
	}

	finishedAt := func(rec *txn.Txn) time.Time {
		for _, st := range rec.History {
			if st.State == rec.State {
				return st.At
			}
		}
		t.Fatalf("txn %s history lacks terminal stamp: %+v", rec.ID, rec.History)
		return time.Time{}
	}
	var indepDone, chainDone time.Time
	for _, p := range others {
		rec := r.wait(t, p)
		if rec.State != txn.StateCommitted {
			t.Fatalf("independent txn %s: %s (%s)", p, rec.State, rec.Error)
		}
		if at := finishedAt(rec); at.After(indepDone) {
			indepDone = at
		}
	}
	for _, p := range chain {
		rec := r.wait(t, p)
		if rec.State != txn.StateCommitted {
			t.Fatalf("chain txn %s: %s (%s)", p, rec.State, rec.Error)
		}
		if at := finishedAt(rec); at.After(chainDone) {
			chainDone = at
		}
	}
	// No head-of-line blocking: every independent transaction finished
	// before the serialized chain did (the chain alone needs
	// chainLen × 80ms of lock-serialized physical time; the independent
	// set fans out over the worker threads in a fraction of that).
	if !indepDone.Before(chainDone) {
		t.Fatalf("independent work (done %v) waited for the conflicted chain (done %v)",
			indepDone, chainDone)
	}
	lead := r.leader()
	if lead == nil {
		t.Fatal("no leader")
	}
	if st := lead.Stats(); st.Deferrals == 0 {
		t.Fatal("conflict-heavy workload produced no deferrals")
	}
	// Re-simulation correctness: exact final values.
	tree := lead.LogicalTree()
	if n, err := tree.Get("/c0"); err != nil || n.GetInt("value") != chainLen {
		t.Fatalf("/c0 = %v (%v), want %d", n, err, chainLen)
	}
	for i := 0; i < indep; i++ {
		p := fmt.Sprintf("/c%d", 1+i)
		if n, err := tree.Get(p); err != nil || n.GetInt("value") != 1 {
			t.Fatalf("%s = %v (%v), want 1", p, n, err)
		}
	}
}

// TestBatchBoundaryCrashRecovery kills the lead controller in the middle
// of a grouped-commit workload and checks the batch-atomicity invariant
// across failover: every transaction reaches exactly one terminal state,
// no phyQ entry is lost (nothing stuck in started) or duplicated (no
// device action runs twice), and the recovered logical model equals the
// committed effects exactly.
func TestBatchBoundaryCrashRecovery(t *testing.T) {
	const counters, perCounter = 8, 3
	r := newBatchRig(t, counters, 16, 4, controller.ScheduleFIFO,
		&slowExecutor{delay: 3 * time.Millisecond})

	var paths []string
	for round := 0; round < perCounter; round++ {
		for c := 0; c < counters; c++ {
			paths = append(paths, r.submit(t, "incN", fmt.Sprintf("/c%d", c), "1"))
		}
	}
	total := len(paths)

	// Let the pipeline get mid-flight, then crash the leader: the kill
	// lands between grouped flushes of a live batch stream.
	deadline := time.Now().Add(5 * time.Second)
	for r.wrk.Stats().Committed < int64(total)/4 {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never got going")
		}
		time.Sleep(time.Millisecond)
	}
	old := r.leader()
	if old == nil {
		t.Fatal("no leader to kill")
	}
	old.Kill()

	for _, p := range paths {
		rec := r.wait(t, p)
		if rec.State != txn.StateCommitted {
			t.Fatalf("txn %s: %s (%s)", p, rec.State, rec.Error)
		}
	}
	// No duplicated phyQ entries: each transaction's single action ran
	// exactly once on the devices.
	if got := r.wrk.Stats().Actions; got != int64(total) {
		t.Fatalf("device actions = %d, want exactly %d (phyQ duplicated or lost work)", got, total)
	}
	// The new leader's recovered model carries exactly the committed
	// effects.
	deadline = time.Now().Add(5 * time.Second)
	var lead *controller.Controller
	for lead == nil || lead == old {
		if time.Now().After(deadline) {
			t.Fatal("no failover leader")
		}
		time.Sleep(time.Millisecond)
		lead = r.leader()
	}
	tree := lead.LogicalTree()
	for c := 0; c < counters; c++ {
		p := fmt.Sprintf("/c%d", c)
		if n, err := tree.Get(p); err != nil || n.GetInt("value") != perCounter {
			t.Fatalf("%s = %v (%v), want %d", p, n, err, perCounter)
		}
	}
	// Queues fully drained: nothing stranded by the crash.
	for _, qp := range []string{proto.InputQPath, proto.PhyQPath} {
		names, err := r.cli.Children(qp)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 0 {
			t.Fatalf("%s still holds %v", qp, names)
		}
	}
}
