package controller

// Cross-shard two-phase commit (2PC). A submission whose resource roots
// hash to different shards is split by the client into one PARENT
// record on the coordinator shard (the lowest-numbered participant)
// plus one CHILD per participant shard. The coordinator shard's lead
// controller drives the protocol over the shards' independent
// coordination stores:
//
//	accept parent  → create child records + prepare notices on every
//	                 participant (one grouped Multi per shard)
//	participants   → simulate the full procedure, acquire locks, persist
//	                 state "prepared" (vote yes) or abort (vote no), and
//	                 report the vote to the coordinator's inputQ
//	coordinator    → all votes in: write the durable COMMIT/ABORT
//	                 decision into the parent record (state "deciding"),
//	                 then deliver it to every prepared child
//	participants   → commit: prepared → started + phyQ (physical
//	                 execution of the child's own-shard actions);
//	                 abort: roll back, release locks
//	coordinator    → all children terminal: finalize the parent
//	                 (committed iff every child committed)
//
// Crash safety: the decision lives in the parent record, which each
// shard's store persists and replays like any znode, so a participant
// leader elected after a crash resolves its in-doubt prepared children
// by reading the coordinator record (xResolveInDoubt), and a
// coordinator leader resumes undecided or undelivered parents from its
// record scan (xRecoverParent). An undecided parent past its prepare
// deadline is aborted with xshard.indoubt_timeout — the standard 2PC
// presumed-abort escape hatch — so crashed participants can never
// strand locks on the survivors.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/lock"
	"repro/internal/proto"
	"repro/internal/queue"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/tropic/trerr"
)

// XShardConfig wires a controller into the cross-shard transaction
// layer. Nil disables it: parents and 2PC messages are then rejected
// (the PR-4 single-shard-only ablation).
type XShardConfig struct {
	// Self is this controller's shard index.
	Self int
	// Router resolves which shard owns a resource root (foreign-action
	// marking, parent id parsing).
	Router *shard.Router
	// Connect opens a store session on another shard's ensemble. The
	// controller caches one session per peer shard and closes them with
	// its own.
	Connect func(shard int) *store.Client
	// PrepareTimeout bounds how long an undecided parent may wait for
	// participant votes before the coordinator aborts it
	// (xshard.indoubt_timeout). It also paces re-delivery of decisions
	// to children that have not reported terminal. 0 selects
	// DefaultPrepareTimeout.
	PrepareTimeout time.Duration
	// Hook, when non-nil, observes coordinator protocol milestones
	// ("prepare_sent" after the prepare fan-out, "decided" after the
	// durable decision write). Chaos tests use it to crash the leader at
	// exact protocol points; nil in production.
	Hook func(event, parentID string)
	// FastPath enables the coalesced 2PC message flow: coordinator-local
	// children skip the cross-store prepare round, participants read
	// decisions off the (watched) parent record instead of waiting for
	// decide notices, per-peer sends batch into one Multi per round, and
	// children prepare in a deterministic global order with wound-wait
	// resolving inversions. Off is the slow-path ablation: every message
	// takes its own store round trip, exactly the pre-fast-path flow.
	// Correctness is identical either way — the fast path only changes
	// how (and how often) messages travel, never what is durable.
	FastPath bool
}

// DefaultPrepareTimeout is the default vote-collection deadline.
const DefaultPrepareTimeout = 10 * time.Second

// Coordinator protocol events delivered to XShardConfig.Hook.
const (
	XEventPrepareSent = "prepare_sent"
	XEventDecided     = "decided"
)

// errHandleDirect tells handleRound a message needs direct (unstaged)
// handling: flush the round, then route it through handle().
var errHandleDirect = errors.New("controller: handle message directly")

// xEnabled reports whether this controller participates in cross-shard
// transactions.
func (c *Controller) xEnabled() bool { return c.cfg.XShard != nil }

// xFastPath reports whether the coalesced 2PC message flow is on.
func (c *Controller) xFastPath() bool { return c.xEnabled() && c.cfg.XShard.FastPath }

// xTimeoutDur returns the resolved prepare deadline.
func (c *Controller) xTimeoutDur() time.Duration {
	if c.cfg.XShard.PrepareTimeout > 0 {
		return c.cfg.XShard.PrepareTimeout
	}
	return DefaultPrepareTimeout
}

// xHook fires a coordinator protocol event.
func (c *Controller) xHook(event, parentID string) {
	if c.cfg.XShard != nil && c.cfg.XShard.Hook != nil {
		c.cfg.XShard.Hook(event, parentID)
	}
}

// xPeer returns a (cached) store session on shard i's ensemble — the
// controller's own session for its own shard, so a Kill()ed controller
// loses its cross-shard reach exactly like its local one.
func (c *Controller) xPeer(i int) (*store.Client, error) {
	x := c.cfg.XShard
	if x == nil {
		return nil, errors.New("controller: cross-shard transactions not configured")
	}
	if i == x.Self {
		return c.cli, nil
	}
	c.xmu.Lock()
	defer c.xmu.Unlock()
	if c.killed.Load() {
		return nil, errors.New("controller: killed")
	}
	if cli, ok := c.xpeers[i]; ok {
		return cli, nil
	}
	if x.Connect == nil {
		return nil, fmt.Errorf("controller: no connector for peer shard %d", i)
	}
	cli := x.Connect(i)
	if cli == nil {
		return nil, fmt.Errorf("controller: cannot connect to peer shard %d", i)
	}
	if c.xpeers == nil {
		c.xpeers = make(map[int]*store.Client)
	}
	c.xpeers[i] = cli
	return cli, nil
}

// xKillPeers simulates the crash of this controller's cross-shard
// sessions alongside its own.
func (c *Controller) xKillPeers() {
	c.xmu.Lock()
	defer c.xmu.Unlock()
	for _, cli := range c.xpeers {
		cli.Kill()
	}
}

// xClosePeers releases cached peer sessions.
func (c *Controller) xClosePeers() {
	c.xmu.Lock()
	defer c.xmu.Unlock()
	for i, cli := range c.xpeers {
		cli.Close()
		delete(c.xpeers, i)
	}
}

// xEnqueue appends one inputQ item on the given session (a peer shard's
// queue, or this shard's own for self-addressed deadline checks).
func xEnqueue(cli *store.Client, msg proto.InputMsg) error {
	_, err := cli.Create(proto.InputQPath+"/"+queue.ItemPrefix, msg.Encode(), store.FlagSequence)
	return err
}

// peerSend is one staged cross-shard send: the ops of one logical
// message (or one message group, e.g. a child record plus its prepare
// notice) and its error disposition. onErr must tolerate a nil client
// (the peer was unreachable at flush time).
type peerSend struct {
	ops   []store.Op
	onErr func(cli *store.Client, err error)
}

// xPeerSend dispatches ops to shard i's store. Mid-round (the leader
// processing an event round) the send is staged, so every message bound
// for one peer this round — several parents' prepares, decisions, votes
// — rides a single Multi through that peer's batcher at round end.
// Outside a round (recovery, deadline timers) it goes out immediately,
// asynchronously through the session's batcher, never blocking the
// caller on the peer's quorum latency. Failures route to onErr (or the
// log): every cross-shard message has a recovery backstop (the
// coordinator's direct ledger sync, the prepare deadline, participant
// in-doubt resolution), so a lost message costs latency, never
// correctness.
func (c *Controller) xPeerSend(i int, what string, onErr func(cli *store.Client, err error), ops ...store.Op) {
	if onErr == nil {
		onErr = func(_ *store.Client, err error) {
			c.cfg.Logf("controller %s: %s: %v", c.cfg.Name, what, err)
		}
	}
	cli, err := c.xPeer(i)
	if err != nil {
		onErr(nil, err)
		return
	}
	if c.peerCollect {
		if c.peerSends == nil {
			c.peerSends = make(map[int][]peerSend)
		}
		c.peerSends[i] = append(c.peerSends[i], peerSend{ops: ops, onErr: onErr})
		return
	}
	ch := cli.MultiAsync(ops...)
	go func() {
		if err := <-ch; err != nil {
			onErr(cli, err)
		}
	}()
}

// xSendMsg stages one inputQ item for shard i (the common peerSend
// shape: votes, child-dones, decisions).
func (c *Controller) xSendMsg(i int, msg proto.InputMsg, what string) {
	c.xPeerSend(i, what, nil,
		store.CreateOp(proto.InputQPath+"/"+queue.ItemPrefix, msg.Encode(), store.FlagSequence))
}

// xFlushPeerSends commits every send staged during the round, one
// grouped Multi per peer shard. A failed group degrades to per-message
// sends so one bad op (a prepare's ErrNodeExists on a coordinator
// retry) cannot veto the rest of its peer's traffic.
func (c *Controller) xFlushPeerSends() {
	sends := c.peerSends
	c.peerSends = nil
	for i, group := range sends {
		cli, err := c.xPeer(i)
		if err != nil {
			for _, s := range group {
				s.onErr(nil, err)
			}
			continue
		}
		var ops []store.Op
		for _, s := range group {
			ops = append(ops, s.ops...)
		}
		c.met.xPeerBatch.Observe(float64(len(ops)))
		group := group
		ch := cli.MultiAsync(ops...)
		go func() {
			if err := <-ch; err == nil {
				return
			}
			for _, s := range group {
				s := s
				sch := cli.MultiAsync(s.ops...)
				go func() {
					if err := <-sch; err != nil {
						s.onErr(cli, err)
					}
				}()
			}
		}()
	}
}

// --- Coordinator ------------------------------------------------------

// xAcceptParent accepts a cross-shard parent submission and starts the
// prepare phase: the accepted state is persisted atomically with
// consuming the submit notice, then child records and prepare notices
// fan out to every participant shard and the vote-collection deadline
// is armed.
func (c *Controller) xAcceptParent(rec *txn.Txn, stat store.Stat, itemPath string) error {
	if !c.xEnabled() {
		// A parent record on a platform without the cross-shard layer can
		// never execute; abort it instead of wedging the queue head.
		c.cfg.Logf("controller %s: parent %s without cross-shard config, aborting", c.cfg.Name, rec.ID)
		rec.Error = "platform is not configured for cross-shard transactions"
		rec.Code = string(trerr.XShardPrepareFailed)
		if err := rec.Transition(txn.StateAccepted); err != nil {
			return err
		}
		if err := rec.Transition(txn.StateAborted); err != nil {
			return err
		}
		return c.cli.Multi(
			c.inputQ.RemoveOp(itemPath),
			store.SetOp(c.txnPath(rec.ID), rec.Encode(), stat.Version),
		)
	}
	if err := rec.Transition(txn.StateAccepted); err != nil {
		return err
	}
	if err := c.cli.Multi(
		c.inputQ.RemoveOp(itemPath),
		store.SetOp(c.txnPath(rec.ID), rec.Encode(), stat.Version),
	); err != nil {
		return err
	}
	c.countStage(&c.stats.Accepted, "accepted")
	c.xStartPrepares(rec, false)
	return nil
}

// stageXAcceptParent is the batched form of xAcceptParent: the accepted
// transition and notice consumption ride the round's grouped Multi, and
// the prepare fan-out (cross-store writes that cannot join this shard's
// Multi) runs after the flush lands. A failed flush discards the
// in-memory transition and replays through the direct path.
func (c *Controller) stageXAcceptParent(r *round, rec *txn.Txn, stat store.Stat, msg proto.InputMsg, itemPath string) error {
	if !c.xEnabled() {
		return errHandleDirect // rare mis-config; the direct path aborts it
	}
	if err := rec.Transition(txn.StateAccepted); err != nil {
		return err
	}
	ops := []store.Op{
		c.inputQ.RemoveOp(itemPath),
		store.SetOp(msg.TxnPath, rec.Encode(), stat.Version),
	}
	var localKid *txn.Txn
	if c.xFastPath() {
		for k, ref := range rec.Children {
			if ref.Shard != c.cfg.XShard.Self {
				continue
			}
			// Coordinator-local coalescing: the child this shard owns
			// skips the cross-store prepare round entirely — its record
			// rides the SAME grouped Multi as the parent's accept, and it
			// joins todoQ post-flush so this round's own scheduling pass
			// can prepare it. A 2-shard transaction thus pays one remote
			// prepare, not two.
			localKid = c.xBuildChild(rec, k)
			localKid.ID = ref.ID
			ops = append(ops, store.CreateOp(proto.TxnsPath+"/"+ref.ID, localKid.Encode(), 0))
			break
		}
	}
	r.staged[msg.TxnPath] = true
	r.stage(ops,
		func() {
			c.countStage(&c.stats.Accepted, "accepted")
			if localKid != nil {
				// The durable record says initialized — recovery re-accepts
				// initialized records, so a crash here loses nothing. In
				// memory it is accepted directly; no submit notice exists.
				if err := localKid.Transition(txn.StateAccepted); err == nil {
					c.todo = append(c.todo, localKid)
					c.resched = true
					c.met.xLocalKids.Inc()
					c.countStage(&c.stats.Accepted, "accepted")
				}
			}
			c.xStartPrepares(rec, localKid != nil)
		},
		func() error { return c.accept(msg, itemPath) },
	)
	return nil
}

// xStartPrepares fans the prepare phase out to every participant and
// arms the vote-collection deadline. Called with the parent's accepted
// state already durable. skipLocal marks the coordinator-local child as
// already created (coalesced into the parent's accept); the slow path
// and every recovery/fallback path pass false and prepare it like any
// remote participant.
func (c *Controller) xStartPrepares(rec *txn.Txn, skipLocal bool) {
	c.xClockStart(rec.ID)
	for k := range rec.Children {
		if skipLocal && rec.Children[k].Shard == c.cfg.XShard.Self {
			continue
		}
		c.xSendPrepare(rec, k)
	}
	c.xHook(XEventPrepareSent, rec.ID)
	c.xArmTimeout(rec.ID)
}

// xBuildChild materializes the k'th child record of a parent: the full
// procedure invocation (every child keeps a whole-transaction view and
// simulates it all; foreign-action marking at prepare time restricts
// what it executes physically), linked back to the parent and carrying
// the participant set.
func (c *Controller) xBuildChild(parent *txn.Txn, k int) *txn.Txn {
	participants := make([]int, len(parent.Children))
	for i, ref := range parent.Children {
		participants[i] = ref.Shard
	}
	return &txn.Txn{
		Proc:         parent.Proc,
		Args:         parent.Args,
		State:        txn.StateInitialized,
		SubmittedAt:  parent.SubmittedAt,
		History:      []txn.StateStamp{{State: txn.StateInitialized, At: time.Now()}},
		Parent:       shard.FormatID(c.cfg.XShard.Self, parent.ID),
		Participants: participants,
	}
}

// xSendPrepare ships the k'th child record and its prepare notice to
// the participant shard in one grouped Multi (staged per peer mid-round,
// asynchronous through that shard's batcher otherwise — the leader never
// blocks on a peer's quorum latency). Idempotent: if the child already
// exists (coordinator retry or recovery resume), only a fresh notice is
// sent, which the participant drops if the child has moved past
// initialized. A send lost to a crash is re-driven by coordinator
// recovery or resolved by the prepare deadline.
func (c *Controller) xSendPrepare(parent *txn.Txn, k int) {
	ref := parent.Children[k]
	childPath := proto.TxnsPath + "/" + ref.ID
	notice := proto.InputMsg{Kind: proto.KindSubmit, TxnPath: childPath}
	what := fmt.Sprintf("prepare %s to shard %d", ref.ID, ref.Shard)
	c.xPeerSend(ref.Shard,
		what,
		func(cli *store.Client, err error) {
			if errors.Is(err, store.ErrNodeExists) && cli != nil {
				err = xEnqueue(cli, notice)
			}
			if err != nil {
				c.cfg.Logf("controller %s: %s: %v", c.cfg.Name, what, err)
			}
		},
		store.CreateOp(childPath, c.xBuildChild(parent, k).Encode(), 0),
		store.CreateOp(proto.InputQPath+"/"+queue.ItemPrefix, notice.Encode(), store.FlagSequence),
	)
}

// xArmTimeout schedules a deadline check for a parent into this shard's
// own inputQ. The check is processed by whichever controller leads when
// it fires (the enqueue is just a store write), so a deadline armed by
// a leader that later crashed still protects the transaction.
func (c *Controller) xArmTimeout(parentID string) {
	path := c.txnPath(parentID)
	time.AfterFunc(c.xTimeoutDur(), func() {
		if c.killed.Load() {
			return
		}
		// Free local read before the store write: a parent that
		// finalized long ago (the overwhelmingly common case) costs no
		// inputQ commit. Any read failure other than a reaped record
		// falls through to the enqueue — the deadline check errs toward
		// firing.
		data, _, err := c.cli.Get(path)
		switch {
		case errors.Is(err, store.ErrNoNode):
			return // record already reaped: long terminal
		case err == nil:
			if rec, derr := txn.Decode(data); derr == nil && rec.State.Terminal() {
				return
			}
		}
		if err := xEnqueue(c.cli, proto.InputMsg{Kind: proto.KindXTimeout, TxnPath: path}); err != nil {
			c.cfg.Logf("controller %s: arm xshard timeout for %s: %v", c.cfg.Name, parentID, err)
		}
	})
}

// xPhaseClock is the coordinator's in-memory phase timer for one parent
// in flight: when prepares fanned out and when the decision landed. It
// feeds the exported tropic_xshard_phase_seconds histogram; it is NOT
// persisted, so a parent coordinated across a failover simply goes
// untimed — timing is an observability aid, never a correctness input.
type xPhaseClock struct {
	prepStart time.Time
	decidedAt time.Time
}

// xClockStart stamps the prepare fan-out time for a parent, once.
func (c *Controller) xClockStart(id string) {
	c.xtMu.Lock()
	if c.xTimes == nil {
		c.xTimes = make(map[string]*xPhaseClock)
	}
	if _, ok := c.xTimes[id]; !ok {
		c.xTimes[id] = &xPhaseClock{prepStart: time.Now()}
	}
	c.xtMu.Unlock()
}

// xClockVote observes one participant's prepare round trip: fan-out to
// its first vote arriving at the coordinator.
func (c *Controller) xClockVote(id string) {
	c.xtMu.Lock()
	clk := c.xTimes[id]
	c.xtMu.Unlock()
	if clk != nil {
		c.met.xPhase.With(c.met.shard, "vote").ObserveDuration(time.Since(clk.prepStart))
	}
}

// xClockDecided closes the prepare phase: fan-out to durable decision.
func (c *Controller) xClockDecided(id string) {
	c.xtMu.Lock()
	clk := c.xTimes[id]
	if clk != nil && !clk.decidedAt.IsZero() {
		clk = nil // already timed by an earlier decide path
	} else if clk != nil {
		clk.decidedAt = time.Now()
	}
	c.xtMu.Unlock()
	if clk != nil {
		c.met.xPhase.With(c.met.shard, "prepare").ObserveDuration(clk.decidedAt.Sub(clk.prepStart))
	}
}

// xClockFinalized closes the decide phase (decision to finalized
// parent) and drops the clock entry.
func (c *Controller) xClockFinalized(id string) {
	c.xtMu.Lock()
	clk := c.xTimes[id]
	delete(c.xTimes, id)
	c.xtMu.Unlock()
	if clk != nil && !clk.decidedAt.IsZero() {
		c.met.xPhase.With(c.met.shard, "decide").ObserveDuration(time.Since(clk.decidedAt))
	}
}

// xAllVoted reports whether every child has a ledger entry (vote or
// terminal outcome).
func xAllVoted(rec *txn.Txn) bool {
	for _, ref := range rec.Children {
		if ref.State == "" {
			return false
		}
	}
	return true
}

// xAllTerminal reports whether every child's ledger entry is terminal.
func xAllTerminal(rec *txn.Txn) bool {
	for _, ref := range rec.Children {
		if !ref.State.Terminal() {
			return false
		}
	}
	return true
}

// xRecordDecision derives and records the 2PC decision from the
// parent's ledger, transitioning it to deciding. The caller persists
// the record — that write IS the durable decision. timeout marks a
// deadline-driven decision: children that never voted abort the parent
// with xshard.indoubt_timeout instead of xshard.prepare_failed.
func (c *Controller) xRecordDecision(rec *txn.Txn, timeout bool) error {
	noVote, abortVote := -1, -1
	for k, ref := range rec.Children {
		switch {
		case ref.State == "":
			if noVote == -1 {
				noVote = k
			}
		case ref.State != txn.StatePrepared:
			if abortVote == -1 {
				abortVote = k
			}
		}
	}
	switch {
	case noVote == -1 && abortVote == -1:
		rec.Decision = txn.DecisionCommit
	case abortVote >= 0:
		ref := rec.Children[abortVote]
		rec.Decision = txn.DecisionAbort
		rec.Code = string(trerr.XShardPrepareFailed)
		if ref.Code != "" {
			// Keep the participant's own classification reachable.
			rec.Error = fmt.Sprintf("child %s aborted during prepare (%s): %s", ref.ID, ref.Code, ref.Error)
		} else {
			rec.Error = fmt.Sprintf("child %s aborted during prepare: %s", ref.ID, ref.Error)
		}
	default:
		if !timeout {
			return fmt.Errorf("controller: decision for %s requested with child %s unvoted",
				rec.ID, rec.Children[noVote].ID)
		}
		rec.Decision = txn.DecisionAbort
		rec.Code = string(trerr.XShardInDoubtTimeout)
		rec.Error = fmt.Sprintf("child %s did not vote before the prepare deadline", rec.Children[noVote].ID)
		c.met.xInDoubt.Inc()
	}
	return rec.Transition(txn.StateDeciding)
}

// xFanOutDecides delivers the recorded decision to every child the
// ledger shows prepared (aborted voters are already terminal; started
// and terminal children have the decision already). eager marks the
// first fan-out, straight after the durable decision write: on the fast
// path remote participants are then SKIPPED — each armed a watch on the
// parent record at vote time and reads the decision off the write
// itself (the piggyback). Re-deliveries (deadline, recovery, wound
// advance) pass eager=false and send real notices, covering any
// participant whose watch died with a crash.
func (c *Controller) xFanOutDecides(rec *txn.Txn, eager bool) {
	for k, ref := range rec.Children {
		if ref.State != txn.StatePrepared {
			continue
		}
		if eager && c.xFastPath() && ref.Shard != c.cfg.XShard.Self {
			continue
		}
		c.xSendDecide(rec, k)
	}
}

// xSendDecide delivers the decision for child k to its shard's inputQ —
// or, for a coordinator-local child on the fast path, straight to this
// controller's own leader loop in memory (no store round trip; a crash
// loses only the in-memory copy, and recovery's in-doubt resolution
// reads the decision off the parent record).
func (c *Controller) xSendDecide(rec *txn.Txn, k int) {
	ref := rec.Children[k]
	msg := proto.InputMsg{
		Kind:     proto.KindXDecide,
		TxnPath:  proto.TxnsPath + "/" + ref.ID,
		Decision: rec.Decision,
	}
	if rec.Decision == txn.DecisionAbort {
		msg.Error, msg.Code = rec.Error, rec.Code
	}
	if c.xFastPath() && ref.Shard == c.cfg.XShard.Self {
		if _, tracked := c.prepared[ref.ID]; !tracked {
			// Already applied (e.g. the inline piggyback staged it into
			// the decision round) — a delivery would just be consumed.
			return
		}
		msg.Via = "local"
		c.enqueueLocal(msg)
		return
	}
	c.xSendMsg(ref.Shard, msg, "decide for "+ref.ID)
}

// xWatchDecision is the participant half of decision piggybacking: arm
// a watch on the coordinator's parent record and deliver the 2PC
// decision to this shard's leader loop the moment the durable decision
// write lands — the decision rides the (watched) vote-ack instead of a
// decide notice through this shard's inputQ. Best-effort: on any
// failure or after two prepare-timeout windows the goroutine exits and
// the coordinator's paced re-delivery (real notices) resolves the
// child.
func (c *Controller) xWatchDecision(t *txn.Txn) {
	x := c.cfg.XShard
	coord, parentLocal, ok := shard.ParseID(t.Parent, x.Router.Shards())
	if !ok || coord == x.Self {
		return // local children get their decision delivered in memory
	}
	cli, err := c.xPeer(coord)
	if err != nil {
		return
	}
	parentPath := proto.TxnsPath + "/" + parentLocal
	childPath := c.txnPath(t.ID)
	deadline := time.Now().Add(2 * c.xTimeoutDur())
	go func() {
		for time.Now().Before(deadline) {
			if c.killed.Load() {
				return
			}
			// Arm before reading, so a decision landing between the read
			// and the wait still fires the watch.
			w, err := cli.NodeWatch(parentPath)
			if err != nil {
				return
			}
			data, _, gerr := cli.Get(parentPath)
			if gerr != nil {
				w.Close()
				return
			}
			parent, derr := txn.Decode(data)
			if derr != nil {
				w.Close()
				return
			}
			if parent.Decision != "" {
				w.Close()
				msg := proto.InputMsg{
					Kind:     proto.KindXDecide,
					TxnPath:  childPath,
					Decision: parent.Decision,
					Via:      "ack",
				}
				if parent.Decision == txn.DecisionAbort {
					msg.Error, msg.Code = parent.Error, parent.Code
				}
				c.enqueueLocal(msg)
				return
			}
			select {
			case _, open := <-w.C():
				w.Close()
				if !open {
					return // session expired; redelivery covers us
				}
			case <-time.After(time.Until(deadline)):
				w.Close()
				return
			}
		}
	}()
}

// xFinalizeParent folds the completed ledger into the parent's own
// terminal state: committed iff every child committed; failed if any
// child failed (a cross-layer inconsistency on that shard); aborted
// otherwise. Decision-time Error/Code (prepare_failed, indoubt_timeout)
// are preserved; a post-decision physical failure adopts the child's.
func (c *Controller) xFinalizeParent(rec *txn.Txn) error {
	outcome := txn.StateCommitted
	carry := -1
	for k, ref := range rec.Children {
		switch ref.State {
		case txn.StateFailed:
			outcome = txn.StateFailed
			carry = k
		case txn.StateAborted:
			if outcome == txn.StateCommitted {
				outcome = txn.StateAborted
				if carry == -1 {
					carry = k
				}
			}
		}
	}
	if outcome != txn.StateCommitted && rec.Error == "" && carry >= 0 {
		ref := rec.Children[carry]
		rec.Error = fmt.Sprintf("child %s: %s", ref.ID, ref.Error)
		rec.Code = ref.Code
		if rec.Code == "" {
			rec.Code = string(trerr.XShardPrepareFailed)
		}
	}
	// Stats are NOT counted here: finalization may be staged into a
	// grouped Multi whose flush can fail and replay through the per-item
	// fallback — the caller counts via xCountParent only after the
	// terminal write is durable.
	return rec.Transition(outcome)
}

// xCountParent tallies a parent's terminal outcome once its finalize
// write committed, closes the decide-phase timer, and exports the
// outcome-labeled parent counter.
func (c *Controller) xCountParent(rec *txn.Txn) {
	var outcome string
	switch rec.State {
	case txn.StateCommitted:
		c.countStage(&c.stats.Committed, "committed")
		outcome = "committed"
	case txn.StateAborted:
		c.countStage(&c.stats.Aborted, "aborted")
		outcome = "aborted"
	case txn.StateFailed:
		c.countStage(&c.stats.Failed, "failed")
		outcome = "failed"
	default:
		return
	}
	c.met.xParents.With(c.met.shard, outcome).Inc()
	c.xClockFinalized(rec.ID)
}

// xEffects describes what one ledger message (vote or child-done) did
// to a parent record and what must happen after its write is durable.
type xEffects struct {
	// changed: the record was mutated (ledger entry, decision, or
	// finalization) and must be persisted.
	changed bool
	// decided: THIS message completed the vote set; after the durable
	// decision write, fan it out and re-arm the deadline.
	decided bool
	// finalized: THIS message completed the ledger and the parent's
	// terminal transition rode the write; count it once durable.
	finalized bool
	// lateAbort: a prepared vote arrived at (or after) an abort
	// decision; its shard holds locks nobody will release unless told —
	// deliver the abort to child.
	lateAbort bool
	child     int
}

// xApplyVote folds one participant vote into the parent's ledger,
// deciding when the last vote lands and finalizing when the decision's
// children are already all terminal. ok=false consumes a malformed
// message without touching the record.
func (c *Controller) xApplyVote(rec *txn.Txn, msg proto.InputMsg) (eff xEffects, ok bool, err error) {
	k := msg.ChildIndex
	eff.child = k
	if k < 0 || k >= len(rec.Children) {
		c.cfg.Logf("controller %s: vote for %s with child index %d out of range", c.cfg.Name, rec.ID, k)
		return eff, false, nil
	}
	vote := txn.State(msg.Outcome)
	if vote != txn.StatePrepared && !vote.Terminal() {
		c.cfg.Logf("controller %s: vote for %s/%d with outcome %q", c.cfg.Name, rec.ID, k, msg.Outcome)
		return eff, false, nil
	}
	ref := &rec.Children[k]
	if ref.State == "" || (ref.State == txn.StatePrepared && vote.Terminal()) {
		if ref.State == "" {
			// First word from this participant: one prepare round trip.
			c.xClockVote(rec.ID)
		}
		ref.State, ref.Error, ref.Code = vote, msg.Error, msg.Code
		eff.changed = true
	}
	if rec.State == txn.StateAccepted && xAllVoted(rec) {
		if err := c.xRecordDecision(rec, false); err != nil {
			return eff, false, err
		}
		eff.decided, eff.changed = true, true
	}
	if rec.State == txn.StateDeciding && xAllTerminal(rec) {
		if err := c.xFinalizeParent(rec); err != nil {
			return eff, false, err
		}
		eff.finalized, eff.changed = true, true
	}
	if !eff.decided && vote == txn.StatePrepared && rec.Decision == txn.DecisionAbort {
		eff.lateAbort = true
	}
	return eff, true, nil
}

// xPostVote runs a vote's post-persist effects.
func (c *Controller) xPostVote(rec *txn.Txn, eff xEffects) {
	if eff.finalized {
		c.xCountParent(rec)
	}
	if eff.decided {
		c.xClockDecided(rec.ID)
		c.xHook(XEventDecided, rec.ID)
		c.xFanOutDecides(rec, true)
		c.xArmTimeout(rec.ID)
		return
	}
	if eff.lateAbort {
		// A late voter may have missed the piggybacked decision window
		// (its watch fired before the decision landed and the redelivery
		// pace is slow) — send it a real notice.
		c.xSendDecide(rec, eff.child)
	}
}

// xVote processes one participant vote on the coordinator directly:
// record it in the parent's ledger atomically with consuming the
// notice, decide once the last vote lands, and free latecomers prepared
// after an abort decision. (The hot path is stageXVote, which commits
// the same write inside the round's grouped Multi; this is its per-item
// fallback and the unstaged path.)
func (c *Controller) xVote(msg proto.InputMsg, itemPath string) error {
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return c.noticeRemove(itemPath)
		}
		return err
	}
	eff, ok, err := c.xApplyVote(rec, msg)
	if err != nil {
		return err
	}
	if !ok || !eff.changed {
		if err := c.noticeRemove(itemPath); err != nil {
			return err
		}
		c.xPostVote(rec, eff)
		return nil
	}
	ops := append(c.noticeRemoveOps(itemPath),
		store.SetOp(msg.TxnPath, rec.Encode(), stat.Version))
	if err := c.cli.Multi(ops...); err != nil {
		return err
	}
	c.xPostVote(rec, eff)
	return nil
}

// stageXVote is the batched vote path: the ledger write and notice
// consumption join the round's grouped Multi; fan-outs run post-flush.
// A second message touching the same parent this round stays queued for
// the next drain (the staged-path discipline shared with stageAccept).
func (c *Controller) stageXVote(r *round, msg proto.InputMsg, itemPath string) error {
	if r.staged[msg.TxnPath] {
		if itemPath == "" {
			// Local message colliding with an already-staged parent write:
			// requeue in memory for the next round (the staged-path
			// discipline; a store-queued item just stays queued).
			c.enqueueLocal(msg)
		}
		return nil
	}
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			if itemPath == "" {
				return nil
			}
			r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
				func() error { return c.inputQ.Remove(itemPath) })
			return nil
		}
		return err
	}
	eff, ok, err := c.xApplyVote(rec, msg)
	if err != nil {
		return err
	}
	if !ok || !eff.changed {
		if itemPath == "" {
			// Nothing to persist and no notice to consume: flushRound skips
			// op-less stages, so run the effects directly.
			c.xPostVote(rec, eff)
			return nil
		}
		r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)},
			func() { c.xPostVote(rec, eff) },
			func() error { return c.inputQ.Remove(itemPath) })
		return nil
	}
	if eff.decided {
		// The final vote decided the parent: piggyback the
		// coordinator-local child's decision apply onto this same round,
		// so the durable decision write and the child's promote (or
		// abort) commit in one atomic Multi — no extra round trip.
		if err := c.stageXDecideLocal(r, rec); err != nil {
			return err
		}
	}
	r.staged[msg.TxnPath] = true
	r.stage(
		append(c.noticeRemoveOps(itemPath),
			store.SetOp(msg.TxnPath, rec.Encode(), stat.Version)),
		func() { c.xPostVote(rec, eff) },
		func() error { return c.xVote(msg, itemPath) },
	)
	return nil
}

// stageXDecideLocal stages the decision apply for any coordinator-local
// prepared child into the round that is about to write the parent's
// durable decision (stageXVote's decided branch). Delivery is
// Via="inline": if the shared Multi fails, the child stage only unwinds
// its in-memory transition — the vote stage's own fallback (xVote →
// xPostVote → eager fan-out) redelivers the decision once it IS durable.
func (c *Controller) stageXDecideLocal(r *round, rec *txn.Txn) error {
	if !c.xFastPath() {
		return nil
	}
	for k := range rec.Children {
		ref := rec.Children[k]
		if ref.Shard != c.cfg.XShard.Self || ref.State != txn.StatePrepared {
			continue
		}
		if _, tracked := c.prepared[ref.ID]; !tracked {
			continue
		}
		msg := proto.InputMsg{
			Kind:     proto.KindXDecide,
			TxnPath:  proto.TxnsPath + "/" + ref.ID,
			Decision: rec.Decision,
			Via:      "inline",
		}
		if rec.Decision == txn.DecisionAbort {
			msg.Error, msg.Code = rec.Error, rec.Code
		}
		if err := c.stageXDecide(r, msg, ""); err != nil {
			return err
		}
	}
	return nil
}

// xApplyChildDone folds one terminal child outcome into the ledger and
// finalizes the parent once every child has reported.
func (c *Controller) xApplyChildDone(rec *txn.Txn, msg proto.InputMsg) (changed, finalized bool, err error) {
	k := msg.ChildIndex
	outcome := txn.State(msg.Outcome)
	if k < 0 || k >= len(rec.Children) || !outcome.Terminal() {
		c.cfg.Logf("controller %s: child-done for %s: index %d outcome %q", c.cfg.Name, rec.ID, k, msg.Outcome)
		return false, false, nil
	}
	ref := &rec.Children[k]
	if !ref.State.Terminal() {
		ref.State, ref.Error, ref.Code = outcome, msg.Error, msg.Code
		changed = true
	}
	if rec.State == txn.StateDeciding && xAllTerminal(rec) {
		if err := c.xFinalizeParent(rec); err != nil {
			return changed, false, err
		}
		changed, finalized = true, true
	}
	return changed, finalized, nil
}

// xChildDone records a child's terminal outcome on the coordinator
// directly (stageXChildDone's per-item fallback and the unstaged path).
func (c *Controller) xChildDone(msg proto.InputMsg, itemPath string) error {
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return c.noticeRemove(itemPath)
		}
		return err
	}
	changed, finalized, err := c.xApplyChildDone(rec, msg)
	if err != nil {
		return err
	}
	if !changed {
		return c.noticeRemove(itemPath)
	}
	ops := append(c.noticeRemoveOps(itemPath),
		store.SetOp(msg.TxnPath, rec.Encode(), stat.Version))
	if err := c.cli.Multi(ops...); err != nil {
		return err
	}
	if finalized {
		c.xCountParent(rec)
	}
	return nil
}

// stageXChildDone is the batched child-done path: ledger write (and,
// when it completes the set, the parent's terminal transition) inside
// the round's grouped Multi.
func (c *Controller) stageXChildDone(r *round, msg proto.InputMsg, itemPath string) error {
	if r.staged[msg.TxnPath] {
		if itemPath == "" {
			c.enqueueLocal(msg)
		}
		return nil
	}
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			if itemPath == "" {
				return nil
			}
			r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
				func() error { return c.inputQ.Remove(itemPath) })
			return nil
		}
		return err
	}
	changed, finalized, err := c.xApplyChildDone(rec, msg)
	if err != nil {
		return err
	}
	if !changed {
		if itemPath == "" {
			return nil
		}
		r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
			func() error { return c.inputQ.Remove(itemPath) })
		return nil
	}
	r.staged[msg.TxnPath] = true
	var after func()
	if finalized {
		after = func() { c.xCountParent(rec) }
	}
	r.stage(
		append(c.noticeRemoveOps(itemPath),
			store.SetOp(msg.TxnPath, rec.Encode(), stat.Version)),
		after,
		func() error { return c.xChildDone(msg, itemPath) },
	)
	return nil
}

// xTimeout processes a parent deadline check: an undecided parent is
// resolved — by its ledger if every vote is actually visible (direct
// child reads cover votes whose notices were lost), by presumed abort
// otherwise — and a decided parent re-delivers its decision to children
// still outstanding, re-arming itself until the ledger completes.
func (c *Controller) xTimeout(msg proto.InputMsg, itemPath string) error {
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return c.inputQ.Remove(itemPath)
		}
		return err
	}
	if rec.State.Terminal() || !rec.IsParent() {
		// Terminal (or not a parent): the deadline is moot.
		return c.inputQ.Remove(itemPath)
	}
	return c.xAdvanceParent(rec, c.xSyncLedger(rec), true, func(changed bool) error {
		if !changed {
			return c.inputQ.Remove(itemPath)
		}
		return c.cli.Multi(
			c.inputQ.RemoveOp(itemPath),
			store.SetOp(msg.TxnPath, rec.Encode(), stat.Version),
		)
	})
}

// xAdvance processes an advance nudge for a parent — enqueued by a
// wound-wait aborter after it CAS-wrote an abort decision into the
// parent record from another shard. The nudge makes the coordinator
// notice the foreign write now (sync the ledger, deliver the abort to
// prepared children, finalize) instead of at its next deadline.
func (c *Controller) xAdvance(msg proto.InputMsg, itemPath string) error {
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return c.noticeRemove(itemPath)
		}
		return err
	}
	if rec.State.Terminal() || !rec.IsParent() {
		return c.noticeRemove(itemPath)
	}
	return c.xAdvanceParent(rec, c.xSyncLedger(rec), false, func(changed bool) error {
		if !changed {
			return c.noticeRemove(itemPath)
		}
		ops := append(c.noticeRemoveOps(itemPath),
			store.SetOp(msg.TxnPath, rec.Encode(), stat.Version))
		return c.cli.Multi(ops...)
	})
}

// xAdvanceParent drives a non-terminal parent as far as its ledger
// allows — decide (when every vote is in, or unconditionally on a
// deadline), finalize when every child is terminal — persists through
// the caller's closure, and runs the post-persist effects: outcome
// counting, the decided hook, decision (re-)delivery, and the next
// deadline. The single state machine behind the timeout and recovery
// paths, so they cannot diverge.
func (c *Controller) xAdvanceParent(rec *txn.Txn, changed, deadline bool, persist func(changed bool) error) error {
	decided, finalized := false, false
	if rec.State == txn.StateAccepted && (deadline || xAllVoted(rec)) {
		if err := c.xRecordDecision(rec, deadline); err != nil {
			return err
		}
		changed, decided = true, true
	}
	if rec.State == txn.StateDeciding && xAllTerminal(rec) {
		if err := c.xFinalizeParent(rec); err != nil {
			return err
		}
		changed, finalized = true, true
	}
	if err := persist(changed); err != nil {
		return err
	}
	if finalized {
		c.xCountParent(rec)
	}
	if rec.Decision != "" {
		if decided {
			c.xClockDecided(rec.ID)
			c.xHook(XEventDecided, rec.ID)
		}
		// Re-delivery to children the ledger still shows prepared; a
		// no-op once everything reported. Never eager: redelivery must
		// reach participants whose piggyback watch died with a crash.
		c.xFanOutDecides(rec, false)
	}
	if !rec.State.Terminal() {
		c.xArmTimeout(rec.ID)
	}
	return nil
}

// xSyncLedger refreshes a parent's ledger by reading child records
// directly from their shards, covering votes and outcomes whose notices
// were lost in transit. Read failures leave entries untouched — the
// message path and the next deadline remain as backstops.
func (c *Controller) xSyncLedger(rec *txn.Txn) (changed bool) {
	for k := range rec.Children {
		ref := &rec.Children[k]
		if ref.State.Terminal() {
			continue
		}
		cli, err := c.xPeer(ref.Shard)
		if err != nil {
			continue
		}
		data, _, err := cli.Get(proto.TxnsPath + "/" + ref.ID)
		if err != nil {
			if errors.Is(err, store.ErrNoNode) && ref.State == "" &&
				rec.State == txn.StateDeciding && rec.Decision == txn.DecisionAbort {
				// The decision is abort and this child was never created
				// (its prepare send was lost): it can never prepare, so
				// record it aborted — otherwise the ledger never completes
				// and the parent re-arms its deadline forever. If the
				// prepare lands late after all, the child's vote meets the
				// abort decision and is aborted through the late-vote path.
				ref.State = txn.StateAborted
				ref.Error = "never prepared before the abort decision"
				ref.Code = string(trerr.XShardInDoubtTimeout)
				changed = true
			}
			continue
		}
		child, err := txn.Decode(data)
		if err != nil {
			continue
		}
		if child.State != txn.StatePrepared && !child.State.Terminal() {
			continue
		}
		if ref.State != child.State {
			ref.State, ref.Error, ref.Code = child.State, child.Error, child.Code
			changed = true
		}
	}
	return changed
}

// --- Participant ------------------------------------------------------

// xMarkForeign assigns each of a child's log records to exactly one
// executing shard: the owner of the record's path, or the coordinator's
// child for paths no participant owns (a procedure touching a path
// outside its arguments' roots). Foreign records still simulate, lock,
// and roll back here — only physical execution is elsewhere.
func (c *Controller) xMarkForeign(t *txn.Txn) {
	x := c.cfg.XShard
	if x == nil || !t.IsChild() {
		return
	}
	coordinator := x.Self
	inPlan := make(map[int]bool, len(t.Participants))
	for _, s := range t.Participants {
		inPlan[s] = true
	}
	if len(t.Participants) > 0 {
		coordinator = t.Participants[0]
	}
	for i := range t.Log {
		owner := x.Router.RouteTarget(t.Log[i].Path)
		executes := owner == x.Self || (!inPlan[owner] && x.Self == coordinator)
		t.Log[i].Foreign = !executes
	}
}

// xSendVote reports a child's vote — its prepared or aborted state — to
// the coordinator's inputQ, or, when this shard IS the coordinator and
// the fast path is on, straight to the local leader loop in memory (the
// coordinator-local child's vote never leaves the process). Best-effort
// either way: a lost vote is recovered by the coordinator's direct
// ledger sync or, failing that, the prepare deadline.
func (c *Controller) xSendVote(t *txn.Txn) {
	x := c.cfg.XShard
	if x == nil {
		return
	}
	coord, parentLocal, ok := shard.ParseID(t.Parent, x.Router.Shards())
	if !ok {
		c.cfg.Logf("controller %s: child %s has malformed parent id %q", c.cfg.Name, t.ID, t.Parent)
		return
	}
	_, k, ok := shard.ParseChildID(t.ID)
	if !ok {
		c.cfg.Logf("controller %s: malformed child id %q", c.cfg.Name, t.ID)
		return
	}
	msg := proto.InputMsg{
		Kind:       proto.KindXVote,
		TxnPath:    proto.TxnsPath + "/" + parentLocal,
		ChildIndex: k,
		Outcome:    string(t.State),
		Error:      t.Error,
		Code:       t.Code,
	}
	if coord == x.Self && c.xFastPath() {
		c.enqueueLocal(msg)
		return
	}
	c.xSendMsg(coord, msg, "vote for "+t.ID)
}

// stagedVote is one coordinator-local yes-vote folded into a grouped
// admission flush (xStageLocalVotes): the parent record with the vote
// applied and the effects to run once the flush is durable.
type stagedVote struct {
	rec *txn.Txn
	eff xEffects
}

// xStageLocalVotes folds the yes-vote of every coordinator-local
// prepared child in the admission batch into the batch's own Multi:
// the parent-ledger vote write commits atomically with the child's
// durable prepare, so the local vote costs no separate store commit
// and no extra leader round. Returns the applied votes keyed by child
// ID (the caller tracks those children directly and skips the message
// vote, then runs each vote's post-flush effects). On a failed flush
// the mutated parent copies are simply discarded — the per-item replay
// path re-reads the records and votes by message as before.
func (c *Controller) xStageLocalVotes(pending []*txn.Txn, ops *[]store.Op) map[string]*stagedVote {
	if !c.xFastPath() {
		return nil
	}
	x := c.cfg.XShard
	var votes map[string]*stagedVote
	for _, t := range pending {
		if t.State != txn.StatePrepared {
			continue
		}
		coord, parentLocal, ok := shard.ParseID(t.Parent, x.Router.Shards())
		if !ok || coord != x.Self {
			continue
		}
		_, k, ok := shard.ParseChildID(t.ID)
		if !ok {
			continue
		}
		parentPath := proto.TxnsPath + "/" + parentLocal
		rec, stat, err := c.loadTxn(parentPath)
		if err != nil {
			continue // vote by message instead
		}
		msg := proto.InputMsg{
			Kind:       proto.KindXVote,
			TxnPath:    parentPath,
			ChildIndex: k,
			Outcome:    string(t.State),
		}
		eff, applied, err := c.xApplyVote(rec, msg)
		if err != nil || !applied {
			continue
		}
		if eff.changed {
			*ops = append(*ops, store.SetOp(parentPath, rec.Encode(), stat.Version))
		}
		if votes == nil {
			votes = make(map[string]*stagedVote)
		}
		votes[t.ID] = &stagedVote{rec: rec, eff: eff}
	}
	return votes
}

// xSendChildDone reports a child's terminal outcome to the coordinator
// (in memory when this shard coordinates and the fast path is on).
func (c *Controller) xSendChildDone(t *txn.Txn) {
	x := c.cfg.XShard
	if x == nil {
		return
	}
	coord, parentLocal, ok := shard.ParseID(t.Parent, x.Router.Shards())
	if !ok {
		return
	}
	_, k, ok := shard.ParseChildID(t.ID)
	if !ok {
		return
	}
	msg := proto.InputMsg{
		Kind:       proto.KindXChildDone,
		TxnPath:    proto.TxnsPath + "/" + parentLocal,
		ChildIndex: k,
		Outcome:    string(t.State),
		Error:      t.Error,
		Code:       t.Code,
	}
	if coord == x.Self && c.xFastPath() {
		c.enqueueLocal(msg)
		return
	}
	c.xSendMsg(coord, msg, "child-done for "+t.ID)
}

// stageXChildDoneLocal stages a terminal local child's child-done
// ledger write (and, when it completes the set, the parent's finalize)
// into the round that persists the child's own terminal state
// (stageCleanup's committed branch), when this shard coordinates the
// parent on the fast path. Returns true when the report was staged or
// queued — the caller then skips xSendChildDone.
func (c *Controller) stageXChildDoneLocal(r *round, t *txn.Txn) bool {
	x := c.cfg.XShard
	if x == nil || !c.xFastPath() {
		return false
	}
	coord, parentLocal, ok := shard.ParseID(t.Parent, x.Router.Shards())
	if !ok || coord != x.Self {
		return false
	}
	_, k, ok := shard.ParseChildID(t.ID)
	if !ok {
		return false
	}
	msg := proto.InputMsg{
		Kind:       proto.KindXChildDone,
		TxnPath:    proto.TxnsPath + "/" + parentLocal,
		ChildIndex: k,
		Outcome:    string(t.State),
		Error:      t.Error,
		Code:       t.Code,
	}
	if err := c.stageXChildDone(r, msg, ""); err != nil {
		c.cfg.Logf("controller %s: inline child-done for %s: %v", c.cfg.Name, t.ID, err)
		c.enqueueLocal(msg)
	}
	return true
}

// xDecide applies a coordinator decision to a prepared child: commit
// promotes it to started and enqueues it to phyQ atomically with
// consuming the notice (the only path by which a cross-shard child
// enters phyQ, so physical execution stays exactly-once); abort rolls
// its simulation back and releases its locks.
func (c *Controller) xDecide(msg proto.InputMsg, itemPath string) error {
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			return c.noticeRemove(itemPath)
		}
		return err
	}
	if rec.State != txn.StatePrepared {
		// Late or duplicate delivery: the child already moved on.
		return c.noticeRemove(itemPath)
	}
	t, ok := c.prepared[rec.ID]
	if !ok {
		// Prepared on disk but untracked in memory can only mean a bug in
		// recovery; refusing to act blind keeps the store consistent.
		c.cfg.Logf("controller %s: decide for untracked prepared child %s", c.cfg.Name, rec.ID)
		return c.noticeRemove(itemPath)
	}
	if msg.Via != "" {
		// The decision skipped the decide-notice round trip: it rode the
		// coordinator's own event round ("local") or the vote-ack watch on
		// the parent record ("ack").
		c.met.xPiggy.Inc()
		t.DecisionVia = msg.Via
	}
	switch msg.Decision {
	case txn.DecisionCommit:
		return c.xPromotePrepared(t, stat.Version, c.noticeRemoveOps(itemPath)...)
	case txn.DecisionAbort:
		errStr, code := msg.Error, msg.Code
		if errStr == "" {
			errStr = "cross-shard transaction aborted"
		}
		if code == "" {
			code = string(trerr.XShardPrepareFailed)
		}
		return c.xAbortPrepared(t, errStr, code, c.noticeRemoveOps(itemPath)...)
	default:
		c.cfg.Logf("controller %s: decide for %s with decision %q", c.cfg.Name, rec.ID, msg.Decision)
		return c.noticeRemove(itemPath)
	}
}

// stageXDecide is the batched form of xDecide for locally-delivered
// (piggybacked) decisions: the prepared child's promotion — the
// started-state write and phyQ enqueue — or its abort rides the round's
// grouped Multi, so decisions for many transactions share one store
// commit instead of paying one each. A failed flush unwinds the
// in-memory transition and replays through the direct path.
func (c *Controller) stageXDecide(r *round, msg proto.InputMsg, itemPath string) error {
	if r.staged[msg.TxnPath] {
		if itemPath == "" {
			c.enqueueLocal(msg)
		}
		return nil
	}
	rec, stat, err := c.loadTxn(msg.TxnPath)
	if err != nil {
		if errors.Is(err, store.ErrNoNode) {
			if itemPath == "" {
				return nil
			}
			r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
				func() error { return c.inputQ.Remove(itemPath) })
			return nil
		}
		return err
	}
	t, tracked := c.prepared[rec.ID]
	if rec.State != txn.StatePrepared || !tracked ||
		(msg.Decision != txn.DecisionCommit && msg.Decision != txn.DecisionAbort) {
		// Late, duplicate, malformed, or untracked: consume without acting
		// (the direct path's logging cases).
		if rec.State == txn.StatePrepared && !tracked {
			c.cfg.Logf("controller %s: decide for untracked prepared child %s", c.cfg.Name, rec.ID)
		}
		if itemPath == "" {
			return nil
		}
		r.stage([]store.Op{c.inputQ.RemoveOp(itemPath)}, nil,
			func() error { return c.inputQ.Remove(itemPath) })
		return nil
	}
	if msg.Via != "" {
		c.met.xPiggy.Inc()
		t.DecisionVia = msg.Via
	}
	if msg.Decision == txn.DecisionCommit {
		if err := t.Transition(txn.StateStarted); err != nil {
			return err
		}
		txnPath := c.txnPath(t.ID)
		r.staged[msg.TxnPath] = true
		r.stage(
			append(c.noticeRemoveOps(itemPath),
				store.SetOp(txnPath, t.Encode(), stat.Version),
				c.phyQ.PutOp(proto.PhyMsg{TxnPath: txnPath}.Encode())),
			func() {
				delete(c.prepared, t.ID)
				c.inFlight[t.ID] = t
			},
			func() error {
				if n := len(t.History); n > 0 && t.History[n-1].State == txn.StateStarted {
					t.History = t.History[:n-1]
				}
				t.State = txn.StatePrepared
				if msg.Via == "inline" {
					// The decision write shared this round and may not be
					// durable: the vote stage's own fallback redelivers.
					return nil
				}
				return c.xDecide(msg, itemPath)
			},
		)
		return nil
	}
	errStr, code := msg.Error, msg.Code
	if errStr == "" {
		errStr = "cross-shard transaction aborted"
	}
	if code == "" {
		code = string(trerr.XShardPrepareFailed)
	}
	t.Error, t.Code = errStr, code
	if err := t.Transition(txn.StateAborted); err != nil {
		t.Error, t.Code = "", ""
		return err
	}
	r.staged[msg.TxnPath] = true
	r.stage(
		append(c.noticeRemoveOps(itemPath),
			store.SetOp(c.txnPath(t.ID), t.Encode(), -1)),
		func() {
			c.rollbackTimed(t.ID, t.Log)
			c.locks.ReleaseAll(t.ID)
			delete(c.prepared, t.ID)
			c.countStage(&c.stats.Aborted, "aborted")
			// The freed locks may unblock deferred work this round's
			// scheduling pass already skipped.
			c.resched = true
			c.xSendChildDone(t)
		},
		func() error {
			if n := len(t.History); n > 0 && t.History[n-1].State == txn.StateAborted {
				t.History = t.History[:n-1]
			}
			t.State = txn.StatePrepared
			t.Error, t.Code = "", ""
			if msg.Via == "inline" {
				return nil // vote-stage fallback redelivers (see commit branch)
			}
			return c.xDecide(msg, itemPath)
		},
	)
	return nil
}

// xPromotePrepared moves a prepared child into physical execution:
// started-state write and phyQ enqueue in one Multi (plus any extra
// ops, e.g. the decide-notice removal). On failure the transition is
// unwound in memory and the caller retries.
func (c *Controller) xPromotePrepared(t *txn.Txn, version int32, extra ...store.Op) error {
	if err := t.Transition(txn.StateStarted); err != nil {
		return err
	}
	txnPath := c.txnPath(t.ID)
	ops := append(extra,
		store.SetOp(txnPath, t.Encode(), version),
		c.phyQ.PutOp(proto.PhyMsg{TxnPath: txnPath}.Encode()),
	)
	if err := c.cli.Multi(ops...); err != nil {
		if n := len(t.History); n > 0 && t.History[n-1].State == txn.StateStarted {
			t.History = t.History[:n-1]
		}
		t.State = txn.StatePrepared
		return err
	}
	delete(c.prepared, t.ID)
	c.inFlight[t.ID] = t
	return nil
}

// xAbortPrepared aborts a prepared child: the terminal state is
// persisted first (with any extra ops), and only then are the logical
// rollback and lock release applied — the same persist-before-rollback
// discipline as cleanup. The coordinator is notified afterwards.
func (c *Controller) xAbortPrepared(t *txn.Txn, errStr, code string, extra ...store.Op) error {
	t.Error, t.Code = errStr, code
	if err := t.Transition(txn.StateAborted); err != nil {
		return err
	}
	ops := append(extra, store.SetOp(c.txnPath(t.ID), t.Encode(), -1))
	if err := c.cli.Multi(ops...); err != nil {
		if n := len(t.History); n > 0 && t.History[n-1].State == txn.StateAborted {
			t.History = t.History[:n-1]
		}
		t.State = txn.StatePrepared
		t.Error, t.Code = "", ""
		return err
	}
	c.rollbackTimed(t.ID, t.Log)
	c.locks.ReleaseAll(t.ID)
	delete(c.prepared, t.ID)
	c.countStage(&c.stats.Aborted, "aborted")
	c.xSendChildDone(t)
	return nil
}

// --- Recovery ---------------------------------------------------------

// xResolveInDoubt resolves one recovered prepared child by consulting
// the coordinator record — the §2.3 recovery protocol extended across
// shards. Commit decisions promote the child into phyQ (it was never
// enqueued: prepared children enter phyQ only via promotion, so
// execution stays exactly-once across the failover); abort decisions
// roll it back; an undecided parent gets the vote re-sent and keeps the
// child prepared, locks held, until the coordinator decides.
func (c *Controller) xResolveInDoubt(t *txn.Txn) {
	x := c.cfg.XShard
	if x == nil {
		c.cfg.Logf("controller %s: prepared child %s without cross-shard config", c.cfg.Name, t.ID)
		return
	}
	c.met.xInDoubt.Inc()
	coord, parentLocal, ok := shard.ParseID(t.Parent, x.Router.Shards())
	if !ok {
		c.cfg.Logf("controller %s: child %s has malformed parent id %q", c.cfg.Name, t.ID, t.Parent)
		return
	}
	cli, err := c.xPeer(coord)
	if err != nil {
		c.cfg.Logf("controller %s: resolve in-doubt %s: %v", c.cfg.Name, t.ID, err)
		return
	}
	data, _, err := cli.Get(proto.TxnsPath + "/" + parentLocal)
	if errors.Is(err, store.ErrNoNode) {
		// A prepared child always has a coordinator record (the parent is
		// created before any child and outlives them all); a missing one
		// is unreachable state — abort rather than hold locks forever.
		c.cfg.Logf("controller %s: in-doubt child %s has no coordinator record %s; aborting",
			c.cfg.Name, t.ID, t.Parent)
		if aerr := c.xAbortPrepared(t, "coordinator record missing", string(trerr.XShardPrepareFailed)); aerr != nil {
			c.cfg.Logf("controller %s: abort in-doubt %s: %v", c.cfg.Name, t.ID, aerr)
		}
		return
	}
	if err != nil {
		// Coordinator shard unreachable: stay prepared, re-vote so a
		// recovered coordinator sees us, and let its deadline decide.
		c.cfg.Logf("controller %s: resolve in-doubt %s: %v", c.cfg.Name, t.ID, err)
		c.xSendVote(t)
		return
	}
	parent, err := txn.Decode(data)
	if err != nil {
		c.cfg.Logf("controller %s: decode coordinator record for %s: %v", c.cfg.Name, t.ID, err)
		return
	}
	switch parent.Decision {
	case txn.DecisionCommit:
		if err := c.xPromotePrepared(t, -1); err != nil {
			c.cfg.Logf("controller %s: promote in-doubt %s: %v", c.cfg.Name, t.ID, err)
		}
	case txn.DecisionAbort:
		errStr, code := parent.Error, parent.Code
		if errStr == "" {
			errStr = "cross-shard transaction aborted"
		}
		if code == "" {
			code = string(trerr.XShardPrepareFailed)
		}
		if err := c.xAbortPrepared(t, errStr, code); err != nil {
			c.cfg.Logf("controller %s: abort in-doubt %s: %v", c.cfg.Name, t.ID, err)
		}
	default:
		// Undecided: hold the prepare (locks and all) and re-vote — the
		// old leader's vote may never have left this shard. On the fast
		// path, re-arm the decision watch too (the old leader's died with
		// it); the coordinator skips the eager decide notice assuming a
		// watch exists.
		c.xSendVote(t)
		if c.xFastPath() {
			c.xWatchDecision(t)
		}
	}
}

// xRecoverParent resumes coordination of a non-terminal parent after a
// leader change: re-sending prepares that may never have landed,
// syncing the ledger from direct child reads, (re)recording the
// decision when complete, re-delivering it, and re-arming the deadline.
// Failures are logged, never fatal to recovery — the armed deadline
// retries everything.
func (c *Controller) xRecoverParent(rec *txn.Txn) {
	if !c.xEnabled() {
		c.cfg.Logf("controller %s: parent %s without cross-shard config", c.cfg.Name, rec.ID)
		return
	}
	path := c.txnPath(rec.ID)
	if rec.State == txn.StateInitialized {
		// The old leader consumed (or never saw) the submit notice; a
		// pending one becomes a harmless duplicate.
		if err := rec.Transition(txn.StateAccepted); err != nil {
			c.cfg.Logf("controller %s: recover parent %s: %v", c.cfg.Name, rec.ID, err)
			return
		}
		if err := c.cli.Set(path, rec.Encode(), -1); err != nil {
			c.cfg.Logf("controller %s: recover parent %s: %v", c.cfg.Name, rec.ID, err)
			return
		}
		c.countStage(&c.stats.Accepted, "accepted")
	}
	if rec.State.Terminal() {
		return
	}
	changed := c.xSyncLedger(rec)
	if rec.State == txn.StateAccepted {
		// Re-send prepares that may never have landed; idempotent.
		for k := range rec.Children {
			if rec.Children[k].State != "" {
				continue
			}
			c.xSendPrepare(rec, k)
		}
	}
	err := c.xAdvanceParent(rec, changed, false, func(changed bool) error {
		if !changed {
			return nil
		}
		return c.cli.Set(path, rec.Encode(), -1)
	})
	if err != nil {
		c.cfg.Logf("controller %s: resume parent %s: %v", c.cfg.Name, rec.ID, err)
	}
}

// --- Deterministic prepare order & wound-wait -------------------------

// xOrderChildren sorts the cross-shard children waiting in todoQ into
// the deterministic global prepare order (shard.PrepareLess: by parent
// id, then child index), leaving single-shard work in place. Every
// participant scheduling its children in the same order makes the
// classic 2PC lock-order inversion — shard A prepares t1 then t2, shard
// B prepares t2 then t1, both stuck until the prepare deadline — simply
// not arise between transactions that are both still waiting; wound-wait
// (xMaybeWound) covers the races that slip through interleaved rounds.
func (c *Controller) xOrderChildren() {
	idx := make([]int, 0, len(c.todo))
	for i, t := range c.todo {
		if t.IsChild() {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		return
	}
	kids := make([]*txn.Txn, len(idx))
	for j, i := range idx {
		kids[j] = c.todo[i]
	}
	sort.SliceStable(kids, func(a, b int) bool {
		return shard.PrepareLess(kids[a].ID, kids[b].ID)
	})
	for j, i := range idx {
		c.todo[i] = kids[j]
	}
}

// xMaybeWound runs when a cross-shard child's lock acquisition
// conflicted: if any conflicting holder is a PREPARED child of a
// YOUNGER cross-shard transaction (later in the global prepare order),
// this is a lock-order inversion that local ordering could not prevent
// — the younger transaction won its locks on this shard before the
// older one arrived. Waiting resolves nothing (the younger one's own
// prepare is blocked on another shard by the older one), so wound it:
// abort the younger transaction at its coordinator, freeing its locks
// everywhere within one message round instead of an indoubt-timeout
// window. Holders that are merely in-flight (already executing) finish
// on their own; only prepared holders — parked awaiting a decision —
// can deadlock.
func (c *Controller) xMaybeWound(t *txn.Txn, reqs []lock.Request) {
	for _, conflict := range c.locks.Conflicts(t.ID, reqs) {
		victim, ok := c.prepared[conflict.Holder]
		if !ok || !shard.PrepareLess(t.ID, conflict.Holder) {
			continue
		}
		c.xWound(t.ID, victim)
	}
}

// xWound aborts the (younger) victim's cross-shard transaction by
// CAS-writing an abort decision into its parent record on the
// coordinator shard, then nudging that coordinator's inputQ to act on
// it now. The write targets the PARENT, never the prepared child: a
// prepared child may only abort on a durable parent decision, and the
// CAS (give up if a decision exists or the parent left accepted)
// guarantees we never overwrite a commit. The coordinator's own staged
// writes lose the version race and fall back through a re-read that
// sees the abort. Asynchronous and best-effort — a lost wound costs the
// indoubt-timeout window, never correctness.
func (c *Controller) xWound(aggressor string, victim *txn.Txn) {
	x := c.cfg.XShard
	coord, parentLocal, ok := shard.ParseID(victim.Parent, x.Router.Shards())
	if !ok {
		return
	}
	parentPath := proto.TxnsPath + "/" + parentLocal
	c.wmu.Lock()
	if c.wounding == nil {
		c.wounding = make(map[string]bool)
	}
	if c.wounding[parentPath] {
		c.wmu.Unlock()
		return // a wound for this parent is already in flight
	}
	c.wounding[parentPath] = true
	c.wmu.Unlock()
	unmark := func() {
		c.wmu.Lock()
		delete(c.wounding, parentPath)
		c.wmu.Unlock()
	}
	cli, err := c.xPeer(coord)
	if err != nil {
		unmark()
		return
	}
	go func() {
		defer unmark()
		for try := 0; try < 8; try++ {
			if c.killed.Load() {
				return
			}
			data, stat, err := cli.Get(parentPath)
			if err != nil {
				return
			}
			parent, err := txn.Decode(data)
			if err != nil {
				return
			}
			if parent.Decision != "" || parent.State != txn.StateAccepted {
				return // already decided (or deciding); nothing to wound
			}
			parent.ID = parentLocal
			parent.Decision = txn.DecisionAbort
			parent.Error = fmt.Sprintf("wounded by older cross-shard transaction %s", aggressor)
			parent.Code = string(trerr.XShardWounded)
			if err := parent.Transition(txn.StateDeciding); err != nil {
				return
			}
			nudge := proto.InputMsg{Kind: proto.KindXAdvance, TxnPath: parentPath}
			err = cli.Multi(
				store.SetOp(parentPath, parent.Encode(), stat.Version),
				store.CreateOp(proto.InputQPath+"/"+queue.ItemPrefix, nudge.Encode(), store.FlagSequence),
			)
			if err == nil {
				c.met.xWounds.Inc()
				return
			}
			if !errors.Is(err, store.ErrBadVersion) {
				return
			}
			// Lost a CAS race (a vote landed, or the coordinator decided);
			// re-read and re-check.
		}
	}()
}

// gcReapable guards the terminal-record sweep against breaking 2PC
// recovery: a PARENT may be reaped only once every ledger entry is
// terminal (children still resolve their in-doubt state by reading it),
// and a CHILD only once its parent is terminal or gone (an in-flight
// parent's ledger sync still reads child records directly). Peer-read
// failures err toward keeping the record — the next checkpoint retries.
func (c *Controller) gcReapable(rec *txn.Txn) bool {
	if rec.IsParent() {
		if !c.xEnabled() {
			// The unconfigured-platform abort path leaves an empty ledger.
			return true
		}
		return xAllTerminal(rec)
	}
	if !rec.IsChild() {
		return true
	}
	x := c.cfg.XShard
	if x == nil {
		return true
	}
	coord, parentLocal, ok := shard.ParseID(rec.Parent, x.Router.Shards())
	if !ok {
		return true
	}
	cli, err := c.xPeer(coord)
	if err != nil {
		return false
	}
	data, _, err := cli.Get(proto.TxnsPath + "/" + parentLocal)
	if errors.Is(err, store.ErrNoNode) {
		return true // parent already reaped: its ledger completed
	}
	if err != nil {
		return false
	}
	parent, err := txn.Decode(data)
	if err != nil {
		return false
	}
	return parent.State.Terminal()
}
