package controller

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/lock"
	"repro/internal/model"
	"repro/internal/txn"
)

func ctxSchema() *model.Schema {
	s := model.NewSchema()
	s.Entity("box").
		Action(&model.ActionDef{
			Name: "put",
			Simulate: func(t *model.Tree, path string, args []string) error {
				n, err := t.Get(path)
				if err != nil {
					return err
				}
				n.Attrs["item"] = args[0]
				return nil
			},
			Undo: "take",
			UndoArgs: func(t *model.Tree, path string, args []string) []string {
				n, err := t.Get(path)
				if err != nil {
					return args
				}
				return []string{n.GetString("item")} // capture pre-state
			},
		}).
		Action(&model.ActionDef{
			Name: "take",
			Simulate: func(t *model.Tree, path string, args []string) error {
				n, err := t.Get(path)
				if err != nil {
					return err
				}
				n.Attrs["item"] = args[0]
				return nil
			},
			Undo: "put",
		}).
		Action(&model.ActionDef{
			Name: "link",
			Simulate: func(t *model.Tree, path string, args []string) error {
				if _, err := t.Get(args[0]); err != nil {
					return err
				}
				return nil
			},
			Undo: "link",
			Touches: func(path string, args []string) []string {
				return []string{args[0]}
			},
		}).
		Constrain(model.Constraint{
			Name: "no-bomb",
			Check: func(t *model.Tree, path string, n *model.Node) error {
				if n.GetString("item") == "bomb" {
					return fmt.Errorf("bomb in %s", path)
				}
				return nil
			},
		})
	return s
}

func ctxTree() *model.Tree {
	t := model.NewTree()
	t.Create("/b1", "box", map[string]any{"item": "pear"})
	t.Create("/b2", "box", map[string]any{"item": "plum"})
	return t
}

func newTestCtx() (*Ctx, *model.Tree) {
	tree := ctxTree()
	rec := &txn.Txn{ID: "t-1", Proc: "p"}
	return newCtx(tree, ctxSchema(), rec), tree
}

func TestCtxDoRecordsLogAndWrites(t *testing.T) {
	c, tree := newTestCtx()
	if err := c.Do("/b1", "put", "apple"); err != nil {
		t.Fatal(err)
	}
	n, _ := tree.Get("/b1")
	if n.GetString("item") != "apple" {
		t.Fatal("simulate not applied")
	}
	if len(c.rec.Log) != 1 {
		t.Fatalf("log = %v", c.rec.Log)
	}
	r := c.rec.Log[0]
	if r.Undo != "take" || len(r.UndoArgs) != 1 || r.UndoArgs[0] != "pear" {
		t.Fatalf("undo = %s %v, want take [pear] (pre-state)", r.Undo, r.UndoArgs)
	}
	if !c.writes["/b1"] {
		t.Fatal("write set missing /b1")
	}
}

func TestCtxDoConstraintViolationStillLogged(t *testing.T) {
	c, _ := newTestCtx()
	err := c.Do("/b1", "put", "bomb")
	if !errors.Is(err, ErrConstraint) {
		t.Fatalf("err = %v", err)
	}
	// The mutation is already applied and logged, so rollback can undo
	// it.
	if len(c.rec.Log) != 1 {
		t.Fatalf("violating action not logged: %v", c.rec.Log)
	}
	if err := rollbackLog(c.tree, c.schema, c.rec.Log); err != nil {
		t.Fatal(err)
	}
	n, _ := c.tree.Get("/b1")
	if n.GetString("item") != "pear" {
		t.Fatalf("rollback left %q", n.GetString("item"))
	}
}

func TestCtxTouchesExtendWriteSet(t *testing.T) {
	c, _ := newTestCtx()
	if err := c.Do("/b1", "link", "/b2"); err != nil {
		t.Fatal(err)
	}
	if !c.writes["/b1"] || !c.writes["/b2"] {
		t.Fatalf("writes = %v, want both boxes", c.writes)
	}
	reqs := c.lockRequests()
	var wPaths []string
	for _, r := range reqs {
		if r.Mode == lock.W {
			wPaths = append(wPaths, r.Path)
		}
	}
	if len(wPaths) != 2 {
		t.Fatalf("W locks = %v", wPaths)
	}
}

func TestCtxReadRecordsReadLock(t *testing.T) {
	c, _ := newTestCtx()
	if _, err := c.Read("/b2"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range c.lockRequests() {
		if r.Path == "/b2" && r.Mode == lock.R {
			found = true
		}
	}
	if !found {
		t.Fatalf("no R lock for read: %v", c.lockRequests())
	}
}

func TestCtxConstrainedAncestorReadLock(t *testing.T) {
	// Writes under a constrained entity acquire R on the highest
	// constrained ancestor — here the box itself is constrained.
	c, _ := newTestCtx()
	if err := c.Do("/b1", "put", "apple"); err != nil {
		t.Fatal(err)
	}
	hasR := false
	for _, r := range c.lockRequests() {
		if r.Path == "/b1" && r.Mode == lock.R {
			hasR = true
		}
	}
	if !hasR {
		t.Fatalf("no constraint R lock: %v", c.lockRequests())
	}
}

func TestCtxInconsistentNodeDenied(t *testing.T) {
	c, tree := newTestCtx()
	n, _ := tree.Get("/b1")
	n.Inconsistent = true
	if err := c.Do("/b1", "put", "x"); !errors.Is(err, ErrAbort) {
		t.Fatalf("Do on inconsistent node: %v", err)
	}
	if _, err := c.Read("/b1"); !errors.Is(err, ErrAbort) {
		t.Fatalf("Read on inconsistent node: %v", err)
	}
	n.Inconsistent = false
	n.Unusable = true
	if err := c.Do("/b1", "put", "x"); !errors.Is(err, ErrAbort) {
		t.Fatalf("Do on unusable node: %v", err)
	}
}

func TestCtxUnknownActionAndPath(t *testing.T) {
	c, _ := newTestCtx()
	if err := c.Do("/b1", "explode"); err == nil {
		t.Fatal("unknown action accepted")
	}
	if err := c.Do("/ghost", "put", "x"); err == nil {
		t.Fatal("missing node accepted")
	}
	if c.Exists("/ghost") {
		t.Fatal("ghost exists")
	}
	if !c.Exists("/b1") {
		t.Fatal("b1 missing")
	}
}

func TestReplayLogReproducesEffects(t *testing.T) {
	c, tree := newTestCtx()
	if err := c.Do("/b1", "put", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := c.Do("/b2", "put", "fig"); err != nil {
		t.Fatal(err)
	}
	// Replay the log onto a fresh tree: same result.
	fresh := ctxTree()
	if err := replayLog(fresh, ctxSchema(), c.rec.Log); err != nil {
		t.Fatal(err)
	}
	if !model.Equal(tree.Root, fresh.Root) {
		t.Fatal("replayed tree differs from simulated tree")
	}
}

func TestLockRequestsFromLogMatchesWrites(t *testing.T) {
	c, tree := newTestCtx()
	if err := c.Do("/b1", "link", "/b2"); err != nil {
		t.Fatal(err)
	}
	reqs := lockRequestsFromLog(tree, ctxSchema(), c.rec.Log)
	paths := map[string]bool{}
	for _, r := range reqs {
		if r.Mode == lock.W {
			paths[r.Path] = true
		}
	}
	if !paths["/b1"] || !paths["/b2"] {
		t.Fatalf("recovered W locks = %v", paths)
	}
}

func TestRollbackLogFailsWithoutUndo(t *testing.T) {
	tree := ctxTree()
	records := []txn.LogRecord{{Seq: 1, Path: "/b1", Action: "put", Args: []string{"x"}}}
	if err := rollbackLog(tree, ctxSchema(), records); err == nil {
		t.Fatal("rollback without undo succeeded")
	}
}
