// Package controller implements TROPIC's logical layer (paper §3.1): the
// lead controller accepts transactions from inputQ, schedules them from
// todoQ, simulates their stored procedures against the logical data
// model with constraint checking, runs multi-granularity concurrency
// control, hands runnable transactions to the physical layer via phyQ,
// and performs cleanup (commit bookkeeping or undo-based rollback) when
// results come back. It also implements the replicated-state recovery
// protocol that lets a newly elected leader resume exactly where the
// failed one stopped (§2.3).
package controller

import (
	"fmt"
	"time"

	"repro/internal/lock"
	"repro/internal/model"
	"repro/internal/txn"
	"repro/tropic/trerr"
)

// Procedure is a stored procedure: orchestration logic composed of
// queries (Ctx.Read and friends) and actions (Ctx.Do). It runs during
// logical simulation; the actions it records are later replayed against
// physical devices by a worker.
type Procedure func(c *Ctx) error

// ErrConstraint wraps constraint violations detected during simulation;
// they abort the transaction (Figure 2, ③A). It carries the
// txn.constraint_violation taxonomy code through to the API.
var ErrConstraint = trerr.New(trerr.TxnConstraintViolation, "constraint violation")

// ErrAbort lets a stored procedure abort its own transaction with a
// domain reason (e.g. "no host has capacity"). It carries the
// txn.procedure_abort taxonomy code through to the API.
var ErrAbort = trerr.New(trerr.TxnProcedureAbort, "aborted by procedure")

// Ctx is the execution context a stored procedure runs in. It tracks
// the reads and writes of the simulation so the scheduler can derive
// lock requests, and records the execution log (Table 1).
type Ctx struct {
	tree   *model.Tree
	schema *model.Schema
	rec    *txn.Txn

	reads  map[string]bool
	writes map[string]bool

	// constraintNanos measures time spent in constraint checks, the
	// §6.2 per-transaction safety overhead.
	constraintNanos int64
}

func newCtx(tree *model.Tree, schema *model.Schema, rec *txn.Txn) *Ctx {
	return &Ctx{
		tree:   tree,
		schema: schema,
		rec:    rec,
		reads:  make(map[string]bool),
		writes: make(map[string]bool),
	}
}

// Args returns the transaction's arguments.
func (c *Ctx) Args() []string { return c.rec.Args }

// Arg returns the i'th argument or "" when absent.
func (c *Ctx) Arg(i int) string {
	if i < 0 || i >= len(c.rec.Args) {
		return ""
	}
	return c.rec.Args[i]
}

// Read is a query: it returns the node at path and records a read lock
// intent on it. The returned node must not be mutated by procedures —
// all mutations go through Do.
func (c *Ctx) Read(path string) (*model.Node, error) {
	n, err := c.tree.Get(path)
	if err != nil {
		return nil, err
	}
	if err := c.checkUsable(path, n); err != nil {
		return nil, err
	}
	c.reads[path] = true
	return n, nil
}

// Exists is a query testing node existence (records a read on the
// parent, whose membership was inspected).
func (c *Ctx) Exists(path string) bool {
	c.reads[model.ParentPath(path)] = true
	return c.tree.Exists(path)
}

// Children is a query returning the sorted child names of path.
func (c *Ctx) Children(path string) ([]string, error) {
	n, err := c.Read(path)
	if err != nil {
		return nil, err
	}
	return n.SortedChildren(), nil
}

// checkUsable denies access to nodes marked inconsistent or unusable by
// reconciliation (§4): transactions involving inconsistent data abort.
func (c *Ctx) checkUsable(path string, n *model.Node) error {
	if n.Inconsistent {
		return fmt.Errorf("%w: node %s is inconsistent pending reconciliation", ErrAbort, path)
	}
	if n.Unusable {
		return fmt.Errorf("%w: node %s is marked unusable", ErrAbort, path)
	}
	for _, anc := range model.Ancestors(path) {
		an, err := c.tree.Get(anc)
		if err != nil {
			continue
		}
		if an.Inconsistent || an.Unusable {
			return fmt.Errorf("%w: ancestor %s of %s is inconsistent/unusable", ErrAbort, anc, path)
		}
	}
	return nil
}

// Do simulates one action at path and appends it to the execution log.
// The action's entity definition supplies the logical state transition,
// the undo action, and any additional touched paths (e.g. the
// destination host of a migration). After the transition, every
// constraint relevant to the touched paths is checked; a violation
// returns ErrConstraint and the caller (the scheduler) rolls the whole
// transaction back.
func (c *Ctx) Do(path, action string, args ...string) error {
	n, err := c.tree.Get(path)
	if err != nil {
		return fmt.Errorf("action %s at %s: %w", action, path, err)
	}
	if err := c.checkUsable(path, n); err != nil {
		return err
	}
	_, def, err := c.schema.ActionFor(c.tree, path, action)
	if err != nil {
		return err
	}
	touched := touchedPaths(def, path, args)
	for _, p := range touched[1:] { // [0] is path itself, already checked
		if tn, err := c.tree.Get(p); err == nil {
			if err := c.checkUsable(p, tn); err != nil {
				return err
			}
		}
	}
	// Derive the undo before applying the action so it can capture the
	// pre-state it must restore.
	undoArgs := args
	if def.UndoArgs != nil {
		undoArgs = def.UndoArgs(c.tree, path, args)
	}
	undoPath := ""
	if def.UndoAt != nil {
		undoPath = def.UndoAt(path, args)
	}
	if err := def.Simulate(c.tree, path, args); err != nil {
		return fmt.Errorf("action %s at %s: %w", action, path, err)
	}
	// Record the action as soon as it applied: if the constraint check
	// below fails, the scheduler rolls back *via this log*, so the
	// mutation must already be in it.
	c.rec.Log = append(c.rec.Log, txn.LogRecord{
		Seq:      len(c.rec.Log) + 1,
		Path:     path,
		Action:   action,
		Args:     append([]string(nil), args...),
		Undo:     def.Undo,
		UndoArgs: append([]string(nil), undoArgs...),
		UndoPath: undoPath,
	})
	for _, p := range touched {
		c.writes[p] = true
	}
	checkStart := time.Now()
	for _, p := range touched {
		if err := c.schema.CheckConstraints(c.tree, p); err != nil {
			c.constraintNanos += time.Since(checkStart).Nanoseconds()
			return fmt.Errorf("%w: %v", ErrConstraint, err)
		}
	}
	c.constraintNanos += time.Since(checkStart).Nanoseconds()
	return nil
}

// touchedPaths returns the action's write set: its target path plus any
// extra paths the definition declares (always with path first).
func touchedPaths(def *model.ActionDef, path string, args []string) []string {
	out := []string{path}
	if def.Touches != nil {
		out = append(out, def.Touches(path, args)...)
	}
	return out
}

// lockRequests derives the transaction's lock set per §3.1.3: W on every
// written object, R on every queried object, and R on the highest
// constrained ancestor of each write (ancestor intention locks are added
// by the lock manager itself).
func (c *Ctx) lockRequests() []lock.Request {
	var reqs []lock.Request
	for p := range c.writes {
		reqs = append(reqs, lock.Request{Path: p, Mode: lock.W})
		if hca := c.schema.HighestConstrainedAncestor(c.tree, p); hca != "" {
			reqs = append(reqs, lock.Request{Path: hca, Mode: lock.R})
		}
	}
	for p := range c.reads {
		reqs = append(reqs, lock.Request{Path: p, Mode: lock.R})
	}
	return reqs
}

// rollbackLog undoes simulated actions in reverse chronological order by
// simulating each record's undo action (§3.1.2). records is the prefix
// of the execution log that was applied.
func rollbackLog(tree *model.Tree, schema *model.Schema, records []txn.LogRecord) error {
	for i := len(records) - 1; i >= 0; i-- {
		r := records[i]
		if r.Undo == "" {
			return fmt.Errorf("controller: action %s at %s has no undo", r.Action, r.Path)
		}
		at := r.UndoTarget()
		_, def, err := schema.ActionFor(tree, at, r.Undo)
		if err != nil {
			return fmt.Errorf("controller: resolve undo %s at %s: %w", r.Undo, at, err)
		}
		if err := def.Simulate(tree, at, r.UndoArgs); err != nil {
			return fmt.Errorf("controller: simulate undo %s at %s: %w", r.Undo, at, err)
		}
	}
	return nil
}

// replayLog re-applies a persisted execution log to a tree, used by
// recovery (re-simulating committed and in-flight transactions) without
// re-running the stored procedure. Constraints are not re-checked: the
// log was generated under a successful simulation and isolation
// guarantees its effects still apply.
func replayLog(tree *model.Tree, schema *model.Schema, records []txn.LogRecord) error {
	for _, r := range records {
		_, def, err := schema.ActionFor(tree, r.Path, r.Action)
		if err != nil {
			return fmt.Errorf("controller: replay %s at %s: %w", r.Action, r.Path, err)
		}
		if err := def.Simulate(tree, r.Path, r.Args); err != nil {
			return fmt.Errorf("controller: replay %s at %s: %w", r.Action, r.Path, err)
		}
	}
	return nil
}

// lockRequestsFromLog rebuilds a started transaction's lock set from its
// persisted execution log during recovery. Read locks are not
// reconstructed — the transaction's simulation is already done, so only
// its writes still matter for isolation against new transactions.
func lockRequestsFromLog(tree *model.Tree, schema *model.Schema, records []txn.LogRecord) []lock.Request {
	var reqs []lock.Request
	seen := make(map[string]bool)
	for _, r := range records {
		def, _ := resolveDef(tree, schema, r)
		for _, p := range touchedPathsRecord(def, r) {
			if seen[p] {
				continue
			}
			seen[p] = true
			reqs = append(reqs, lock.Request{Path: p, Mode: lock.W})
			if hca := schema.HighestConstrainedAncestor(tree, p); hca != "" {
				reqs = append(reqs, lock.Request{Path: hca, Mode: lock.R})
			}
		}
	}
	return reqs
}

func resolveDef(tree *model.Tree, schema *model.Schema, r txn.LogRecord) (*model.ActionDef, error) {
	_, def, err := schema.ActionFor(tree, r.Path, r.Action)
	return def, err
}

func touchedPathsRecord(def *model.ActionDef, r txn.LogRecord) []string {
	if def == nil {
		return []string{r.Path}
	}
	return touchedPaths(def, r.Path, r.Args)
}
