package shard

import (
	"sort"
	"strconv"
	"strings"
)

// Planner turns a submission into a cross-shard execution plan: which
// shards participate (the owners of the submission's resource roots),
// which of them coordinates the two-phase commit (the lowest-numbered
// participant), and how the per-shard sub-transactions — "children" —
// are named. Where Router.Route answers "which single shard owns this
// submission, if any", Planner.Split answers the general question and
// never rejects: a single-shard submission yields a one-participant
// plan, identical to Route's answer.
type Planner struct {
	m *Map
}

// NewPlanner wraps a Map.
func NewPlanner(m *Map) *Planner { return &Planner{m: m} }

// Split is a submission's placement plan.
type Split struct {
	// Shards are the participating shard indexes in ascending order.
	// Shards[0] is the coordinator: the durable parent record (and the
	// 2PC decision) live on it.
	Shards []int
	// Roots maps each participating shard to the resource roots it owns
	// among the submission's path arguments, in first-appearance order.
	Roots map[int][]string
}

// CrossShard reports whether the plan spans more than one shard.
func (s Split) CrossShard() bool { return len(s.Shards) > 1 }

// Coordinator returns the default coordinating shard: the
// lowest-numbered participant.
func (s Split) Coordinator() int { return s.Shards[0] }

// CoordinatorFor picks the participant that coordinates a submission
// with the given identity (its procedure and arguments): an FNV-1a
// hash spreads the 2PC hot path — parent record, vote ledger, decision
// write, finalize — across the participants instead of concentrating
// every plan's coordination on its lowest-numbered shard (at two
// shards that would make shard 0 coordinate ALL spanning work). The
// choice is deterministic per (proc, args), so idempotent
// resubmissions place their key claim on the same shard; every other
// component derives the coordinator from the parent id prefix and
// needs no policy agreement.
func (s Split) CoordinatorFor(proc string, args []string) int {
	if len(s.Shards) == 1 {
		return s.Shards[0]
	}
	h := uint32(2166136261)
	mix := func(str string) {
		for i := 0; i < len(str); i++ {
			h ^= uint32(str[i])
			h *= 16777619
		}
		h ^= 0xff // separator: ("ab","c") != ("a","bc")
		h *= 16777619
	}
	mix(proc)
	for _, a := range args {
		mix(a)
	}
	return s.Shards[h%uint32(len(s.Shards))]
}

// Split derives the plan of a submission from its path-shaped
// arguments: every argument with a leading '/' contributes its resource
// root, and each distinct root is assigned to the shard owning it. A
// submission with no path arguments routes by its procedure name,
// exactly like Router.Route, so repeated invocations land on one
// deterministic shard.
func (p *Planner) Split(proc string, args []string) Split {
	roots := make(map[int][]string)
	seen := make(map[string]bool)
	var shards []int
	add := func(key string) {
		s := p.m.Shard(key)
		if len(roots[s]) == 0 {
			shards = append(shards, s)
		}
		roots[s] = append(roots[s], key)
	}
	for _, a := range args {
		if len(a) == 0 || a[0] != '/' {
			continue
		}
		root := RootOf(a)
		if seen[root] {
			continue
		}
		seen[root] = true
		add(root)
	}
	if len(shards) == 0 {
		add(proc)
	}
	sort.Ints(shards)
	return Split{Shards: shards, Roots: roots}
}

// ParentLocalPrefix prefixes the client-generated local id of every
// cross-shard parent ("t-x<session>c<seq>"). Single-shard local ids are
// store-sequence ("t-0000000042") or batched client-generated
// ("t-s<session>c<seq>") and never start with it, so a parent is
// recognizable from its id alone — no record read needed.
const ParentLocalPrefix = "t-x"

// IsParentLocal reports whether a shard-local id names a cross-shard
// parent.
func IsParentLocal(local string) bool {
	return strings.HasPrefix(local, ParentLocalPrefix)
}

// childSep separates a parent transaction id from a child index. Parent
// ids never contain a dot, so the rightmost ".c<digits>" suffix is
// unambiguous.
const childSep = ".c"

// ChildID names the k'th child of a cross-shard parent. The parent id
// is the shard-qualified id returned by Submit ("s0-t-ab12c00000001"),
// so child ids are platform-unique and deterministic: every component —
// client, coordinator, participants — derives the same names from the
// plan without further coordination. The child's record is stored under
// this full id on its PARTICIPANT shard (which the parent record's
// child ledger names); the "s<coordinator>-" prefix locates the parent,
// not the child.
func ChildID(parent string, k int) string {
	return parent + childSep + strconv.Itoa(k)
}

// ParseChildID splits a child id into its parent id and child index.
// ok is false for ids without a well-formed ".c<digits>" suffix.
func ParseChildID(id string) (parent string, k int, ok bool) {
	i := strings.LastIndex(id, childSep)
	if i <= 0 || i+len(childSep) >= len(id) {
		return "", 0, false
	}
	digits := id[i+len(childSep):]
	for j := 0; j < len(digits); j++ {
		if digits[j] < '0' || digits[j] > '9' {
			return "", 0, false
		}
	}
	n, err := strconv.Atoi(digits)
	if err != nil {
		return "", 0, false
	}
	return id[:i], n, true
}

// IsChildID reports whether id names a cross-shard child.
func IsChildID(id string) bool {
	_, _, ok := ParseChildID(id)
	return ok
}

// PrepareLess defines the deterministic global prepare order over
// cross-shard children: by parent id (lexicographic — parent ids embed
// their coordinator shard and a client-unique sequence, so the order is
// total and identical on every shard), then by child index. Every
// participant acquiring child locks in this order cannot create a
// cross-shard lock-order inversion with another participant doing the
// same; the wound-wait path only has to resolve races that slipped in
// before both children were queued.
func PrepareLess(aID, bID string) bool {
	ap, ak, aok := ParseChildID(aID)
	bp, bk, bok := ParseChildID(bID)
	if !aok || !bok {
		return aID < bID
	}
	if ap != bp {
		return ap < bp
	}
	return ak < bk
}
