package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/tropic/trerr"
)

// randomLocalID generates ids shaped like the platform's real local
// ids: store-sequence ("t-0000000042"), batched client-generated
// ("t-s3fc00000007"), and cross-shard parent ("t-xa1c00000003") forms.
func randomLocalID(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("t-%010d", rng.Intn(1_000_000))
	case 1:
		return fmt.Sprintf("t-s%xc%08d", rng.Int63n(1<<20), rng.Intn(1_000_000))
	default:
		return fmt.Sprintf("t-x%xc%08d", rng.Int63n(1<<20), rng.Intn(1_000_000))
	}
}

// TestIDRoundTripProperty: FormatID/ParseID round-trip every realistic
// (shard, local) pair, and ParseID rejects what FormatID never emits.
func TestIDRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		shards := 1 + rng.Intn(16)
		s := rng.Intn(shards)
		local := randomLocalID(rng)
		id := FormatID(s, local)
		gs, glocal, ok := ParseID(id, shards)
		if !ok || gs != s || glocal != local {
			t.Fatalf("round-trip (%d, %q) → %q → (%d, %q, %v)", s, local, id, gs, glocal, ok)
		}
		// A shard index at or beyond the shard count never parses.
		if _, _, ok := ParseID(FormatID(shards, local), shards); ok {
			t.Fatalf("ParseID accepted out-of-range shard %d of %d", shards, shards)
		}
	}
	for _, bad := range []string{"", "t-42", "s-t-1", "sx-t-1", "s1", "s1-", "1-t-5"} {
		if _, _, ok := ParseID(bad, 8); ok {
			t.Errorf("ParseID(%q) = ok, want reject", bad)
		}
	}
}

// TestChildIDRoundTripProperty: ChildID/ParseChildID round-trip over
// random parents and indexes, and plain ids never parse as children.
func TestChildIDRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 2000; i++ {
		parent := FormatID(rng.Intn(8), randomLocalID(rng))
		k := rng.Intn(64)
		id := ChildID(parent, k)
		gp, gk, ok := ParseChildID(id)
		if !ok || gp != parent || gk != k {
			t.Fatalf("round-trip (%q, %d) → %q → (%q, %d, %v)", parent, k, id, gp, gk, ok)
		}
		if !IsChildID(id) {
			t.Fatalf("IsChildID(%q) = false", id)
		}
		// The parent itself is never a child id.
		if IsChildID(parent) {
			t.Fatalf("IsChildID(%q) = true for a parent", parent)
		}
	}
	for _, bad := range []string{"", "t-42", "s0-t-42", ".c1", "x.c", "x.c-1", "x.c1x", "t-s3c00000007"} {
		if _, _, ok := ParseChildID(bad); ok {
			t.Errorf("ParseChildID(%q) = ok, want reject", bad)
		}
	}
}

// TestRouteByProcDeterministic: submissions with no path-shaped
// arguments route deterministically by procedure name — equal inputs
// agree across independently built routers, and Split concurs.
func TestRouteByProcDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 200; i++ {
		shards := 1 + rng.Intn(12)
		proc := fmt.Sprintf("proc%d", rng.Intn(50))
		args := []string{"novalue", fmt.Sprint(rng.Intn(100))} // nothing path-shaped
		a := NewRouter(NewMap(shards))
		b := NewRouter(NewMap(shards))
		sa, err := a.Route(proc, args)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Route(proc, args)
		if err != nil {
			t.Fatal(err)
		}
		if sa != sb {
			t.Fatalf("proc %q routed to %d and %d on identical maps", proc, sa, sb)
		}
		split := NewPlanner(a.Map()).Split(proc, args)
		if len(split.Shards) != 1 || split.Shards[0] != sa {
			t.Fatalf("Split(%q) = %v, Route = %d", proc, split.Shards, sa)
		}
	}
}

// randomPaths builds arg lists mixing path-shaped and opaque arguments.
func randomPaths(rng *rand.Rand) []string {
	n := 1 + rng.Intn(5)
	args := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			args = append(args, fmt.Sprintf("opaque%d", rng.Intn(10)))
			continue
		}
		root := fmt.Sprintf("/vmRoot/host%05d", rng.Intn(40))
		if rng.Intn(2) == 0 {
			root += fmt.Sprintf("/vm%d", rng.Intn(8))
		}
		args = append(args, root)
	}
	return args
}

// TestRouteAgreesWithSplit: for every input, Route and Split agree —
// single-shard plans route to exactly Split's coordinator, and
// cross-shard plans are exactly the inputs Route rejects with
// shard.cross_shard.
func TestRouteAgreesWithSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	crossSeen := 0
	for i := 0; i < 3000; i++ {
		shards := 1 + rng.Intn(8)
		m := NewMap(shards)
		r, p := NewRouter(m), NewPlanner(m)
		proc := fmt.Sprintf("proc%d", rng.Intn(10))
		args := randomPaths(rng)
		split := p.Split(proc, args)
		routed, err := r.Route(proc, args)
		if split.CrossShard() {
			crossSeen++
			if !errors.Is(err, trerr.ShardCrossShard) {
				t.Fatalf("Split spans %v but Route(%q, %v) = (%d, %v)", split.Shards, proc, args, routed, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Route(%q, %v) = %v with single-shard split %v", proc, args, err, split.Shards)
		}
		if routed != split.Coordinator() {
			t.Fatalf("Route(%q, %v) = %d, Split coordinator = %d", proc, args, routed, split.Coordinator())
		}
	}
	if crossSeen == 0 {
		t.Fatal("generator produced no cross-shard inputs; property vacuous")
	}
}

// TestSplitPartition: Split assigns every distinct resource root to
// exactly the shard the map owns it by, participants are ascending with
// no duplicates, and the coordinator is the lowest.
func TestSplitPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for i := 0; i < 1000; i++ {
		shards := 1 + rng.Intn(8)
		m := NewMap(shards)
		p := NewPlanner(m)
		args := randomPaths(rng)
		split := p.Split("proc", args)
		for j := 1; j < len(split.Shards); j++ {
			if split.Shards[j] <= split.Shards[j-1] {
				t.Fatalf("participants %v not strictly ascending", split.Shards)
			}
		}
		if split.Coordinator() != split.Shards[0] {
			t.Fatalf("coordinator %d != lowest participant %d", split.Coordinator(), split.Shards[0])
		}
		seen := make(map[string]bool)
		for _, a := range args {
			if len(a) == 0 || a[0] != '/' {
				continue
			}
			root := RootOf(a)
			if seen[root] {
				continue
			}
			seen[root] = true
			owner := m.Shard(root)
			found := false
			for _, r := range split.Roots[owner] {
				if r == root {
					found = true
				}
			}
			if !found {
				t.Fatalf("root %q (owner %d) missing from Roots[%d] = %v", root, owner, owner, split.Roots[owner])
			}
		}
		total := 0
		for _, roots := range split.Roots {
			total += len(roots)
		}
		if len(seen) == 0 {
			// Path-free submissions: one pseudo-root (the proc name).
			if total != 1 {
				t.Fatalf("path-free split has %d roots, want 1", total)
			}
		} else if total != len(seen) {
			t.Fatalf("split holds %d roots, want %d distinct", total, len(seen))
		}
	}
}
