// Package shard partitions the orchestration platform horizontally: a
// consistent-hash Map assigns transaction resource-root paths to N
// independent shards (each a full ensemble + controller + worker
// pipeline), and a Router derives the owning shard of a submission from
// its arguments and formats/parses shard-qualified transaction ids.
//
// The unit of placement is the RESOURCE ROOT — the host-level node of a
// model path ("/vmRoot/vmHost00003/vm7" roots at "/vmRoot/vmHost00003")
// — so every transaction on a host lands on the same shard regardless
// of which of its descendants it touches. A transaction whose resource
// roots map to different shards is rejected with
// trerr.ShardCrossShard: each shard is an independent ACID domain, and
// refusing to half-run a transaction keeps the paper's single-ensemble
// atomicity invariant explicit instead of silently weakening it.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// DefaultVirtualNodes is the ring points each shard contributes. More
// virtual nodes flatten the key distribution (the balance property
// test pins the achieved tolerance) at the cost of a larger ring; 128
// keeps per-shard load within a few percent of uniform for realistic
// host counts.
const DefaultVirtualNodes = 128

// Map consistent-hashes string keys (resource roots) onto shard
// indexes [0, Shards). It is immutable after construction and safe for
// concurrent use.
//
// The ring construction is growth-stable: shard i's virtual nodes hash
// the same positions regardless of how many shards exist, so resizing
// N→N+1 only moves the keys the new shard's points capture (≈ 1/(N+1)
// of the space) — everything else stays put. The minimal-movement
// property test pins this.
type Map struct {
	shards int
	ring   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewMap builds a map over n shards with DefaultVirtualNodes ring
// points per shard. n < 1 is treated as 1.
func NewMap(n int) *Map { return NewMapVirtual(n, DefaultVirtualNodes) }

// NewMapVirtual builds a map with an explicit virtual-node count per
// shard (for tests probing the balance/vnode trade-off).
func NewMapVirtual(n, vnodes int) *Map {
	if n < 1 {
		n = 1
	}
	if vnodes < 1 {
		vnodes = 1
	}
	m := &Map{shards: n, ring: make([]ringPoint, 0, n*vnodes)}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			m.ring = append(m.ring, ringPoint{
				hash:  hashKey(fmt.Sprintf("shard-%d#vn-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		// Ties (astronomically rare with 64-bit hashes) break
		// deterministically toward the lower shard so every Map built
		// with the same parameters routes identically.
		return m.ring[i].shard < m.ring[j].shard
	})
	return m
}

// Shards returns the shard count.
func (m *Map) Shards() int { return m.shards }

// Shard maps a key to its owning shard: the first ring point at or
// clockwise-after the key's hash.
func (m *Map) Shard(key string) int {
	if m.shards == 1 {
		return 0
	}
	h := hashKey(key)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0 // wrap around the ring
	}
	return m.ring[i].shard
}

// hashKey is FNV-1a 64 with a murmur-style finalizer. FNV alone
// clusters its high bits on short, similar strings (host names, vnode
// labels), which skews ring arcs badly; the avalanche mix spreads the
// points uniformly. Deliberately seed-free and process-independent:
// ids and cursors embed shard indexes, so routing must be a pure
// function of the key.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return fmix64(h.Sum64())
}

// fmix64 is MurmurHash3's 64-bit finalizer.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// RootOf extracts the resource root of a model path: its first two
// components ("/vmRoot/vmHost00003/vm7" → "/vmRoot/vmHost00003"). A
// single-component path roots at itself; non-path strings (no leading
// slash) are returned unchanged and hash as opaque keys.
func RootOf(path string) string {
	if len(path) == 0 || path[0] != '/' {
		return path
	}
	// Skip the leading slash, then keep through the second component.
	i := strings.IndexByte(path[1:], '/')
	if i < 0 {
		return path // "/vmRoot"
	}
	j := strings.IndexByte(path[i+2:], '/')
	if j < 0 {
		return path // "/vmRoot/vmHost00003"
	}
	return path[:i+2+j]
}
