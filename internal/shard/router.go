package shard

import (
	"strconv"
	"strings"

	"repro/tropic/trerr"
)

// Router makes the platform's routing decisions over a Map: which
// shard owns a submission (from its path-shaped arguments), which owns
// a reconciliation target, and how shard-qualified transaction ids are
// formatted and parsed.
type Router struct {
	m *Map
}

// NewRouter wraps a Map.
func NewRouter(m *Map) *Router { return &Router{m: m} }

// Map exposes the underlying shard map.
func (r *Router) Map() *Map { return r.m }

// Shards returns the shard count.
func (r *Router) Shards() int { return r.m.Shards() }

// Route derives the owning shard of a submission. Every path-shaped
// argument (leading '/') contributes its resource root; all roots must
// map to the same shard or the submission is rejected with
// trerr.ShardCrossShard — a sharded platform cannot execute one
// transaction atomically across two independent ensembles. A
// submission with no path arguments routes by its procedure name, so
// repeated invocations still land on one deterministic shard.
func (r *Router) Route(proc string, args []string) (int, error) {
	shard := -1
	var firstRoot string
	for _, a := range args {
		if len(a) == 0 || a[0] != '/' {
			continue
		}
		root := RootOf(a)
		s := r.m.Shard(root)
		if shard == -1 {
			shard, firstRoot = s, root
			continue
		}
		if s != shard {
			return 0, trerr.Newf(trerr.ShardCrossShard,
				"shard: transaction spans shards %d (%s) and %d (%s); "+
					"a transaction must address resources of a single shard",
				shard, firstRoot, s, root).
				With("proc", proc).With("rootA", firstRoot).With("rootB", root)
		}
	}
	if shard == -1 {
		return r.m.Shard(proc), nil
	}
	return shard, nil
}

// RouteTarget returns the shard owning a reconciliation target path.
func (r *Router) RouteTarget(target string) int {
	return r.m.Shard(RootOf(target))
}

// idSep separates the shard prefix from the shard-local id. Local ids
// ("t-0000000042", "t-s3c00000007") never start with a bare "s<digits>-"
// prefix, so the format is unambiguous.
const idPrefix = "s"

// FormatID qualifies a shard-local transaction id with its shard
// ("t-0000000042" on shard 2 → "s2-t-0000000042"). Shard-local ids are
// sequence counters scoped to one ensemble, so the same local id exists
// on every shard; the prefix is what makes ids platform-unique.
func FormatID(shard int, local string) string {
	return idPrefix + strconv.Itoa(shard) + "-" + local
}

// ParseID splits a shard-qualified id into its shard index and local
// id. ok is false for ids without a well-formed "s<shard>-" prefix or
// with a shard index outside [0, shards).
func ParseID(id string, shards int) (shard int, local string, ok bool) {
	if !strings.HasPrefix(id, idPrefix) {
		return 0, "", false
	}
	rest := id[len(idPrefix):]
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 || dash == len(rest)-1 {
		return 0, "", false
	}
	n, err := strconv.Atoi(rest[:dash])
	if err != nil || n < 0 || n >= shards {
		return 0, "", false
	}
	return n, rest[dash+1:], true
}
