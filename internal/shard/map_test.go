package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/tropic/trerr"
)

// syntheticRoots generates n host-style resource roots, the key
// population the map partitions in production.
func syntheticRoots(n int) []string {
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, fmt.Sprintf("/vmRoot/vmHost%05d", i))
	}
	return keys
}

// TestMapBalance: with the default virtual-node count, keys spread
// across shards within a bounded tolerance of perfect uniformity. The
// property holds across shard counts and seeded random key sets, not
// just the synthetic host naming.
func TestMapBalance(t *testing.T) {
	const keys = 20000
	rng := rand.New(rand.NewSource(42))
	populations := map[string][]string{
		"host-roots": syntheticRoots(keys),
		"random":     nil,
	}
	for i := 0; i < keys; i++ {
		populations["random"] = append(populations["random"],
			fmt.Sprintf("/r%d/n%d", rng.Intn(1000), rng.Int63()))
	}
	for name, pop := range populations {
		for _, shards := range []int{2, 3, 4, 8, 16} {
			m := NewMap(shards)
			counts := make([]int, shards)
			for _, k := range pop {
				s := m.Shard(k)
				if s < 0 || s >= shards {
					t.Fatalf("%s/%d shards: Shard(%q) = %d out of range", name, shards, k, s)
				}
				counts[s]++
			}
			mean := float64(len(pop)) / float64(shards)
			for s, c := range counts {
				dev := (float64(c) - mean) / mean
				if dev < -0.35 || dev > 0.35 {
					t.Errorf("%s/%d shards: shard %d holds %d keys (%.0f mean, %+.0f%% deviation)",
						name, shards, s, c, mean, 100*dev)
				}
			}
		}
	}
}

// TestMapDeterminism: two maps with identical parameters route every
// key identically (ids and cursors embed shard indexes, so routing must
// be a pure function of the configuration).
func TestMapDeterminism(t *testing.T) {
	a, b := NewMap(5), NewMap(5)
	for _, k := range syntheticRoots(1000) {
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("Shard(%q) differs between identically configured maps", k)
		}
	}
}

// TestMapMinimalMovementOnResize: growing N→N+1 shards moves only the
// keys the new shard captures — every moved key lands on the NEW shard,
// and the moved fraction is close to the ideal 1/(N+1).
func TestMapMinimalMovementOnResize(t *testing.T) {
	keys := syntheticRoots(20000)
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		before, after := NewMap(n), NewMap(n+1)
		moved := 0
		for _, k := range keys {
			b, a := before.Shard(k), after.Shard(k)
			if b == a {
				continue
			}
			moved++
			if a != n {
				t.Fatalf("%d→%d shards: key %q moved %d→%d, not to the new shard %d",
					n, n+1, k, b, a, n)
			}
		}
		ideal := float64(len(keys)) / float64(n+1)
		frac := float64(moved) / float64(len(keys))
		if float64(moved) > 1.6*ideal {
			t.Errorf("%d→%d shards: %d keys moved (%.1f%%), ideal ≈ %.1f%% — movement is not minimal",
				n, n+1, moved, 100*frac, 100/float64(n+1))
		}
		if moved == 0 {
			t.Errorf("%d→%d shards: no key moved; the new shard owns nothing", n, n+1)
		}
	}
}

func TestRootOf(t *testing.T) {
	cases := map[string]string{
		"/vmRoot/vmHost00003/vm7":      "/vmRoot/vmHost00003",
		"/vmRoot/vmHost00003/vm7/disk": "/vmRoot/vmHost00003",
		"/vmRoot/vmHost00003":          "/vmRoot/vmHost00003",
		"/vmRoot":                      "/vmRoot",
		"/":                            "/",
		"vm7":                          "vm7",
		"":                             "",
	}
	for in, want := range cases {
		if got := RootOf(in); got != want {
			t.Errorf("RootOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRouteSingleAndCrossShard: all-same-shard args route cleanly;
// mixed-shard args are rejected with the typed cross-shard code; no
// path args fall back to hashing the procedure name.
func TestRouteSingleAndCrossShard(t *testing.T) {
	m := NewMap(4)
	r := NewRouter(m)

	// Find two roots on different shards and one more on the first's.
	roots := syntheticRoots(64)
	var a, b, a2 string
	for _, k := range roots {
		switch {
		case a == "":
			a = k
		case m.Shard(k) == m.Shard(a) && a2 == "":
			a2 = k
		case m.Shard(k) != m.Shard(a) && b == "":
			b = k
		}
	}
	if a == "" || a2 == "" || b == "" {
		t.Fatal("could not find suitable roots (degenerate hash distribution?)")
	}

	s, err := r.Route("spawnVM", []string{a, a2 + "/vm1", "vm1", "1024"})
	if err != nil {
		t.Fatalf("single-shard route: %v", err)
	}
	if s != m.Shard(a) {
		t.Fatalf("routed to %d, want %d", s, m.Shard(a))
	}

	if _, err := r.Route("spawnVM", []string{a, b, "vm1"}); !errors.Is(err, trerr.ShardCrossShard) {
		t.Fatalf("cross-shard route error = %v, want code %q", err, trerr.ShardCrossShard)
	}

	s1, err := r.Route("noPaths", []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Route("noPaths", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("path-less routing is not deterministic: %d vs %d", s1, s2)
	}
}

func TestIDRoundTrip(t *testing.T) {
	const shards = 8
	for _, local := range []string{"t-0000000042", "t-s3c00000007"} {
		for s := 0; s < shards; s++ {
			id := FormatID(s, local)
			gs, gl, ok := ParseID(id, shards)
			if !ok || gs != s || gl != local {
				t.Fatalf("ParseID(FormatID(%d, %q)) = (%d, %q, %v)", s, local, gs, gl, ok)
			}
		}
	}
	for _, bad := range []string{"", "t-0000000042", "s-t-1", "s9-t-1", "sx-t-1", "s2-", "s2"} {
		if _, _, ok := ParseID(bad, 8); ok {
			t.Errorf("ParseID(%q) unexpectedly ok", bad)
		}
	}
}
