package metrics

import (
	"strings"
	"testing"
	"time"
)

// TestPromTextCounterGauge pins the exposition basics: HELP/TYPE
// preamble, label rendering, Func overrides, and integer formatting.
func TestPromTextCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterVec("tropic_test_total", "A test counter.", "shard", "stage")
	c.With("0", "committed").Inc()
	c.With("0", "committed").Inc()
	c.With("1", "aborted").Inc()
	g := reg.GaugeVec("tropic_test_depth", "A test gauge.", "queue")
	g.Func(func() float64 { return 7 }, "inputq")

	text := reg.Text()
	for _, want := range []string{
		"# HELP tropic_test_total A test counter.\n",
		"# TYPE tropic_test_total counter\n",
		`tropic_test_total{shard="0",stage="committed"} 2` + "\n",
		`tropic_test_total{shard="1",stage="aborted"} 1` + "\n",
		"# TYPE tropic_test_depth gauge\n",
		`tropic_test_depth{queue="inputq"} 7` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestPromLabelEscaping pins the v0.0.4 escaping rules: backslash,
// double quote, and newline in label values; backslash and newline in
// HELP text.
func TestPromLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterVec("esc_total", "line one\nline\\two", "path")
	c.With(`C:\dir "x"` + "\n").Inc()

	text := reg.Text()
	if want := `# HELP esc_total line one\nline\\two` + "\n"; !strings.Contains(text, want) {
		t.Errorf("HELP escaping: missing %q in:\n%s", want, text)
	}
	if want := `esc_total{path="C:\\dir \"x\"\n"} 1` + "\n"; !strings.Contains(text, want) {
		t.Errorf("label escaping: missing %q in:\n%s", want, text)
	}
}

// TestPromHistogramInvariants pins the histogram triple: _bucket series
// are cumulative and monotone, the +Inf bucket equals _count, and _sum
// is the exact sum of observations.
func TestPromHistogramInvariants(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramVec("lat_seconds", "Latency.", []float64{0.01, 0.1, 1}, "shard")
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.With("0").Observe(v)
	}
	// Boundary rule: le is inclusive (v ≤ bound lands in the bucket).
	h.With("0").Observe(0.1)

	text := reg.Text()
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{shard="0",le="0.01"} 1` + "\n",
		`lat_seconds_bucket{shard="0",le="0.1"} 4` + "\n",
		`lat_seconds_bucket{shard="0",le="1"} 5` + "\n",
		`lat_seconds_bucket{shard="0",le="+Inf"} 6` + "\n",
		`lat_seconds_count{shard="0"} 6` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, text)
		}
	}
	if got, want := h.With("0").Sum(), 0.005+0.05+0.05+0.5+5+0.1; got != want {
		t.Errorf("Sum() = %v, want %v", got, want)
	}
	if got := h.With("0").Count(); got != 6 {
		t.Errorf("Count() = %d, want 6", got)
	}
	h.With("0").ObserveDuration(50 * time.Millisecond)
	if got := h.With("0").Count(); got != 7 {
		t.Errorf("Count() after ObserveDuration = %d, want 7", got)
	}
}

// TestPromDeterministicOrdering pins the golden-testability contract:
// families render sorted by name, series by label values, and repeated
// renders are byte-identical.
func TestPromDeterministicOrdering(t *testing.T) {
	reg := NewRegistry()
	// Register out of order, touch series out of order.
	reg.CounterVec("zzz_total", "Last.", "s").With("1").Inc()
	reg.CounterVec("aaa_total", "First.", "s").With("9").Inc()
	reg.CounterVec("aaa_total", "First.", "s").With("0").Inc()

	text := reg.Text()
	iA := strings.Index(text, "# HELP aaa_total")
	iZ := strings.Index(text, "# HELP zzz_total")
	if iA < 0 || iZ < 0 || iA > iZ {
		t.Errorf("families not sorted by name:\n%s", text)
	}
	if i0, i9 := strings.Index(text, `aaa_total{s="0"}`), strings.Index(text, `aaa_total{s="9"}`); i0 < 0 || i9 < 0 || i0 > i9 {
		t.Errorf("series not sorted by label values:\n%s", text)
	}
	for i := 0; i < 3; i++ {
		if again := reg.Text(); again != text {
			t.Fatalf("render %d not deterministic:\n--- first ---\n%s--- again ---\n%s", i, text, again)
		}
	}
}

// TestPromGetOrCreateShares pins the failover-continuity contract:
// re-opening a family with an identical schema returns the SAME series,
// so controller replicas of one shard continue each other's counters.
func TestPromGetOrCreateShares(t *testing.T) {
	reg := NewRegistry()
	a := reg.CounterVec("shared_total", "Shared.", "shard")
	b := reg.CounterVec("shared_total", "Shared.", "shard")
	a.With("0").Inc()
	b.With("0").Inc()
	if got := a.With("0").Load(); got != 2 {
		t.Errorf("shared series = %d increments, want 2", got)
	}
}

// TestPromSchemaMismatchPanics pins the consistency guard: re-opening a
// family under a different kind or label schema is a programmer error.
func TestPromSchemaMismatchPanics(t *testing.T) {
	for name, reopen := range map[string]func(r *Registry){
		"kind":        func(r *Registry) { r.GaugeVec("m_total", "M.", "shard") },
		"label count": func(r *Registry) { r.CounterVec("m_total", "M.", "shard", "stage") },
		"label names": func(r *Registry) { r.CounterVec("m_total", "M.", "queue") },
	} {
		t.Run(name, func(t *testing.T) {
			reg := NewRegistry()
			reg.CounterVec("m_total", "M.", "shard")
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			reopen(reg)
		})
	}
}

// TestPromEmptyFamiliesOmitted: a family with no series contributes no
// output (no HELP/TYPE orphans in the scrape).
func TestPromEmptyFamiliesOmitted(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("unused_total", "Never touched.", "shard")
	if text := reg.Text(); text != "" {
		t.Errorf("empty registry rendered %q, want empty", text)
	}
}

// TestHistogramReservoirBounded pins the satellite contract for the
// raw-sample Histogram: exact count/sum/extremes past the cap, bounded
// retention, and quantile estimates within the documented rank error.
func TestHistogramReservoirBounded(t *testing.T) {
	const cap, n = 1024, 100000
	h := NewHistogramCap(cap)
	for i := 1; i <= n; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != n {
		t.Errorf("Count() = %d, want exact %d past the cap", got, n)
	}
	if got, want := h.Mean(), float64(n+1)/2; got != want {
		t.Errorf("Mean() = %v, want exact %v", got, want)
	}
	if h.Min() != 1 || h.Max() != n {
		t.Errorf("extremes = [%v, %v], want exact [1, %d]", h.Min(), h.Max(), n)
	}
	// Rank error is O(1/√cap) ≈ 0.03 at cap 1024; a ±0.1 rank window is
	// >6σ, far beyond flake territory.
	if p50 := h.Quantile(0.5); p50 < 0.4*n || p50 > 0.6*n {
		t.Errorf("reservoir p50 = %v, want within [%v, %v]", p50, 0.4*n, 0.6*n)
	}
	if p99 := h.Quantile(0.99); p99 < 0.89*n {
		t.Errorf("reservoir p99 = %v, want ≥ %v", p99, 0.89*n)
	}
}

// TestHistogramExactBelowCap: below the cap the histogram is the exact
// structure the CI-scale experiments rely on.
func TestHistogramExactBelowCap(t *testing.T) {
	h := NewHistogramCap(16)
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("exact p50 = %v, want 3", got)
	}
	if got := h.Quantile(0.99); got != 5 {
		t.Errorf("exact p99 = %v, want 5", got)
	}
}
