package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("median = %v", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram()
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h.Observe(v)
			}
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if h.Count() > 0 && cur < prev {
				return false
			}
			if h.Count() > 0 {
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFShape(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.ObserveDuration(time.Duration(i+1) * time.Millisecond)
	}
	cdf := h.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("points = %d", len(cdf))
	}
	prev := -1.0
	for _, p := range cdf {
		if p.P < prev || p.P < 0 || p.P > 1 {
			t.Fatalf("CDF not monotone in [0,1]: %+v", cdf)
		}
		prev = p.P
	}
	if cdf[len(cdf)-1].P != 1 {
		t.Fatalf("CDF does not reach 1: %v", cdf[len(cdf)-1])
	}
	if h.CDF(0) != nil || NewHistogram().CDF(10) != nil {
		t.Fatal("degenerate CDFs should be nil")
	}
}

func TestTimeSeries(t *testing.T) {
	start := time.Unix(1000, 0)
	ts := NewTimeSeries(start, time.Second)
	ts.Add(start, 1)
	ts.Add(start.Add(1500*time.Millisecond), 2)
	ts.Add(start.Add(1700*time.Millisecond), 3)
	ts.Add(start.Add(4*time.Second), 1)
	ts.Add(start.Add(-5*time.Second), 7) // before start folds into bucket 0
	v := ts.Values()
	want := []float64{8, 5, 0, 0, 1}
	if len(v) != len(want) {
		t.Fatalf("values = %v", v)
	}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("values = %v, want %v", v, want)
		}
	}
	idx, peak := ts.Peak()
	if idx != 0 || peak != 8 {
		t.Fatalf("peak = %d@%d", int(peak), idx)
	}
}

func TestBusyMeter(t *testing.T) {
	t0 := time.Unix(0, 0)
	m := NewBusyMeter(t0, 0)
	// 1s wall, 250ms busy → 0.25.
	if got := m.Sample(t0.Add(time.Second), int64(250*time.Millisecond)); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("fraction = %v", got)
	}
	// Next interval: another 1s wall, 750ms more busy → 0.75.
	if got := m.Sample(t0.Add(2*time.Second), int64(time.Second)); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("fraction = %v", got)
	}
	// Zero wall clamps to 0.
	if got := m.Sample(t0.Add(2*time.Second), int64(time.Second)); got != 0 {
		t.Fatalf("zero-wall fraction = %v", got)
	}
}

func TestSummaryAndFormat(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)
	h.Observe(2)
	s := h.Summary("s")
	if s == "" || h.Count() != 2 {
		t.Fatalf("summary = %q", s)
	}
	out := FormatSeries("x", []float64{1, 2.5}, "%.1f")
	if out != "x 1.0 2.5" {
		t.Fatalf("FormatSeries = %q", out)
	}
}
