// Package metrics provides the measurement primitives behind the
// paper's evaluation (§6): latency histograms and CDFs (Figure 5),
// per-second time series (Figures 3 and 4), busy-fraction gauges (the
// controller CPU utilization proxy), and throughput counters.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter, for throughput
// and event totals (WAL appends, fsyncs, snapshots, commits).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add accumulates n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current total.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-value metric (e.g. the duration of the most recent
// recovery), settable from any goroutine.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the most recently set value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// QueueGauges tracks the depths of the orchestration pipeline's three
// queues: inputQ (client submissions and worker results awaiting the
// lead controller), todoQ (accepted transactions awaiting scheduling,
// leader-memory only), and phyQ (admitted transactions awaiting a
// worker). Depths are the canonical back-pressure signal — a growing
// gauge names the stage that is saturating.
type QueueGauges struct {
	InQ   Gauge
	TodoQ Gauge
	PhyQ  Gauge
}

// QueueDepths is a point-in-time, JSON-friendly snapshot of QueueGauges.
type QueueDepths struct {
	InQ   int64 `json:"inQ"`
	TodoQ int64 `json:"todoQ"`
	PhyQ  int64 `json:"phyQ"`
}

// Snapshot reads all three gauges.
func (g *QueueGauges) Snapshot() QueueDepths {
	return QueueDepths{
		InQ:   g.InQ.Load(),
		TodoQ: g.TodoQ.Load(),
		PhyQ:  g.PhyQ.Load(),
	}
}

// DefaultHistogramCap bounds how many raw samples a Histogram retains.
// 8192 keeps quantile estimates within ~1% absolute rank error at p99
// (reservoir error is O(1/√cap)) while capping memory at 64 KiB per
// histogram no matter how long a soak runs.
const DefaultHistogramCap = 8192

// Histogram collects float64 samples and answers distribution queries.
// Up to its cap it retains raw samples (exact quantiles, the regime of
// the paper's CI-scale experiments); past the cap it switches to
// uniform reservoir sampling (Vitter's algorithm R), so unbounded
// observation streams — long soaks, live gateways — cost fixed memory.
// Count, Mean, Min, and Max stay exact throughout; Quantile and CDF
// answer from the reservoir with the documented rank error.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
	cap     int
	n       int64   // total observations (exact)
	sum     float64 // exact running sum
	min     float64
	max     float64
}

// NewHistogram creates an empty histogram with the default sample cap.
func NewHistogram() *Histogram { return NewHistogramCap(DefaultHistogramCap) }

// NewHistogramCap creates an empty histogram retaining at most cap raw
// samples (cap ≤ 0 selects DefaultHistogramCap).
func NewHistogramCap(cap int) *Histogram {
	if cap <= 0 {
		cap = DefaultHistogramCap
	}
	return &Histogram{cap: cap}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cap <= 0 {
		h.cap = DefaultHistogramCap // zero-value Histograms stay usable
	}
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if h.n == 1 || v > h.max {
		h.max = v
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, v)
		h.sorted = false
		return
	}
	// Reservoir full: replace a uniformly random slot with probability
	// cap/n, so every observation so far is retained equiprobably.
	if j := rand.Int63n(h.n); j < int64(h.cap) {
		h.samples[j] = v
		h.sorted = false
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Count returns the total number of observations (exact, even past the
// sample cap).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.n)
}

// Mean returns the exact sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the q'th quantile (0 ≤ q ≤ 1) using the
// nearest-rank method over the retained samples; 0 when empty. Exact
// below the cap; a reservoir estimate past it (rank error O(1/√cap)).
// The q=0 and q=1 extremes are always exact.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	h.ensureSorted()
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Min and Max return sample extremes (0 when empty; exact always).
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample (0 when empty; exact always).
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	P float64 // cumulative probability in [0, 1]
}

// CDF returns an empirical CDF evaluated at n logarithmically spaced
// points between the min and max samples — the shape of the paper's
// Figure 5 (log-scaled latency axis). Returns nil when empty.
func (h *Histogram) CDF(n int) []CDFPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 || n <= 0 {
		return nil
	}
	h.ensureSorted()
	lo, hi := h.min, h.max
	if lo <= 0 {
		lo = 1e-6
	}
	if hi <= lo {
		hi = lo * 10
	}
	out := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		x := lo * math.Pow(hi/lo, float64(i)/float64(n-1))
		// count samples <= x
		idx := sort.SearchFloat64s(h.samples, math.Nextafter(x, math.Inf(1)))
		out = append(out, CDFPoint{X: x, P: float64(idx) / float64(len(h.samples))})
	}
	return out
}

// Summary renders count/mean/median/p99/max, for experiment reports.
func (h *Histogram) Summary(unit string) string {
	return fmt.Sprintf("n=%d mean=%.4g%s median=%.4g%s p99=%.4g%s max=%.4g%s",
		h.Count(), h.Mean(), unit, h.Quantile(0.5), unit, h.Quantile(0.99), unit, h.Max(), unit)
}

// TimeSeries accumulates values into fixed-width time buckets, for
// per-second plots like Figures 3 and 4.
type TimeSeries struct {
	mu     sync.Mutex
	start  time.Time
	width  time.Duration
	values []float64
}

// NewTimeSeries creates a series bucketed at the given width, starting
// at start.
func NewTimeSeries(start time.Time, width time.Duration) *TimeSeries {
	return &TimeSeries{start: start, width: width}
}

// Add accumulates v into the bucket containing t. Times before start
// fold into bucket 0.
func (ts *TimeSeries) Add(t time.Time, v float64) {
	idx := int(t.Sub(ts.start) / ts.width)
	if idx < 0 {
		idx = 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for len(ts.values) <= idx {
		ts.values = append(ts.values, 0)
	}
	ts.values[idx] += v
}

// Values returns a copy of the bucket values.
func (ts *TimeSeries) Values() []float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]float64(nil), ts.values...)
}

// Peak returns the maximum bucket value and its index (-1 when empty).
func (ts *TimeSeries) Peak() (idx int, v float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	idx = -1
	for i, x := range ts.values {
		if idx == -1 || x > v {
			idx, v = i, x
		}
	}
	return idx, v
}

// BusyMeter converts accumulated busy time into a utilization fraction
// over sampling intervals — the proxy for the paper's controller CPU
// utilization (Figure 4): a single-threaded controller that spends
// busyNanos of each interval executing logical-layer work uses that
// fraction of one core.
type BusyMeter struct {
	mu        sync.Mutex
	lastBusy  int64
	lastStamp time.Time
}

// NewBusyMeter starts a meter at time now with the given initial busy
// counter.
func NewBusyMeter(now time.Time, busyNanos int64) *BusyMeter {
	return &BusyMeter{lastBusy: busyNanos, lastStamp: now}
}

// Sample returns the busy fraction since the previous sample, given the
// current cumulative busy counter, and advances the meter.
func (b *BusyMeter) Sample(now time.Time, busyNanos int64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	wall := now.Sub(b.lastStamp).Nanoseconds()
	busy := busyNanos - b.lastBusy
	b.lastBusy = busyNanos
	b.lastStamp = now
	if wall <= 0 {
		return 0
	}
	f := float64(busy) / float64(wall)
	if f < 0 {
		return 0
	}
	return f
}

// FormatSeries renders a float series as a compact single-line table
// for experiment output.
func FormatSeries(label string, values []float64, format string) string {
	var b strings.Builder
	b.WriteString(label)
	for _, v := range values {
		fmt.Fprintf(&b, " "+format, v)
	}
	return b.String()
}
