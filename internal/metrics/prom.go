// Prometheus exposition: a dependency-free labeled-metric registry
// rendering text format v0.0.4, the scrape surface behind GET /metrics.
// The package's raw primitives (Counter, Gauge, Histogram) serve the
// experiment harnesses; the registry organizes the same kinds of
// measurements into named, labeled families a standard scrape/alert
// stack can consume. Three family kinds are supported — counter, gauge,
// and bucketed histogram — each instantiated per label-value tuple:
//
//	reg := metrics.NewRegistry()
//	sheds := reg.CounterVec("tropic_admission_shed_total",
//	    "Submissions rejected by admission control.", "shard")
//	sheds.With("0").Inc()
//	reg.WriteText(w) // deterministic, scrape-ready
//
// Output ordering is deterministic (families by name, series by label
// values), so the encoding is golden-testable and diffs are stable.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the fixed histogram bounds (seconds) used by
// every pipeline latency family: 500µs to 10s in roughly 1-2.5-5 steps,
// covering simulated quorum rounds up through cross-shard 2PC under
// overload.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets are the fixed bounds for size-shaped families (event
// round items, group-commit ops): powers of two through 256, matching
// the BatchMaxOps ablation range.
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// famKind is a family's Prometheus metric type.
type famKind int

const (
	kindCounter famKind = iota
	kindGauge
	kindHistogram
)

func (k famKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family with a fixed label schema.
type family struct {
	name   string
	help   string
	kind   famKind
	labels []string
	bounds []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
}

// series is one label-value instantiation of a family. Exactly one of
// the value fields is used, per the family kind; fn (gauges and
// counters only) overrides the stored value with a live read, which is
// how queue depths and lifted subsystem counters export without a
// sampling loop.
type series struct {
	values []string
	ctr    *Counter
	gauge  *Gauge
	hist   *BucketHistogram
	fn     func() float64
}

// seriesKey joins label values into a map key (0xff never appears in
// well-formed label values' UTF-8).
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; create with NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// lookup returns the named family, creating it on first use. Re-opening
// an existing family with a different kind or label schema is a
// programmer error and panics — the scrape surface must be internally
// consistent.
func (r *Registry) lookup(name, help string, kind famKind, bounds []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: family %q re-registered as %s%v (was %s%v)",
				name, kind, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: family %q re-registered with labels %v (was %v)",
					name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		series: make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

// child returns the series for the given label values, creating it on
// first use. The value count must match the family's label schema.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: family %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := seriesKey(values)
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.ctr = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newBucketHistogram(f.bounds)
	}
	f.series[key] = s
	return s
}

// --- Vec handles ------------------------------------------------------

// CounterVec is a family of monotonically increasing counters keyed by
// label values.
type CounterVec struct{ f *family }

// CounterVec opens (or creates) a counter family. Registering the same
// name again returns the same family, so shards and controller replicas
// can share one set of series.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, kindCounter, nil, labels)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).ctr }

// Func exports the given label values as a live read of fn instead of a
// stored counter — for lifting cumulative totals maintained elsewhere
// (WAL fsync counts, batcher flush totals) into the scrape surface.
func (v *CounterVec) Func(fn func() float64, values ...string) {
	s := v.f.child(values)
	v.f.mu.Lock()
	s.fn = fn
	v.f.mu.Unlock()
}

// GaugeVec is a family of last-value metrics keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec opens (or creates) a gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, kindGauge, nil, labels)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).gauge }

// Func exports the given label values as a live read of fn — the
// idiomatic shape for queue depths, which are sampled at scrape time
// rather than pushed.
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	s := v.f.child(values)
	v.f.mu.Lock()
	s.fn = fn
	v.f.mu.Unlock()
}

// HistogramVec is a family of fixed-bucket histograms keyed by label
// values.
type HistogramVec struct{ f *family }

// HistogramVec opens (or creates) a histogram family with the given
// bucket upper bounds (ascending; +Inf is implicit). Nil bounds select
// DefLatencyBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, bounds, labels)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *BucketHistogram { return v.f.child(values).hist }

// BucketHistogram is a Prometheus-style cumulative-bucket histogram:
// atomic per-bucket counts plus an exact sum and count. Unlike the
// package's raw-sample Histogram it answers no quantile queries itself
// — rank estimation happens in the scrape stack — so its memory is
// fixed regardless of observation volume.
type BucketHistogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newBucketHistogram(bounds []float64) *BucketHistogram {
	return &BucketHistogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *BucketHistogram) Observe(v float64) {
	// Buckets are few (≤ ~16): linear scan beats binary search overhead.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *BucketHistogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *BucketHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *BucketHistogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// --- Text rendering ---------------------------------------------------

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// formatValue renders a sample value ('g' keeps integers undecorated).
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelPairs renders {name="value",...} for the given schema; extra
// appends one more pair (the histogram "le" label). Empty label sets
// render as no braces at all.
func labelPairs(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders every family in Prometheus text format v0.0.4:
// families sorted by name, series sorted by label values, histogram
// series as cumulative _bucket/_sum/_count triples.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.renderTo(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders the registry to a string (tests and smoke checks).
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

func (f *family) renderTo(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]*series, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, f.series[k])
	}
	f.mu.Unlock()
	if len(ordered) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range ordered {
		switch f.kind {
		case kindCounter:
			v := float64(s.ctr.Load())
			if s.fn != nil {
				v = s.fn()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelPairs(f.labels, s.values, "", ""), formatValue(v))
		case kindGauge:
			v := float64(s.gauge.Load())
			if s.fn != nil {
				v = s.fn()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelPairs(f.labels, s.values, "", ""), formatValue(v))
		case kindHistogram:
			h := s.hist
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelPairs(f.labels, s.values, "le", formatValue(bound)), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelPairs(f.labels, s.values, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				labelPairs(f.labels, s.values, "", ""), formatValue(h.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				labelPairs(f.labels, s.values, "", ""), h.Count())
		}
	}
}
