// Package reconcile implements TROPIC's two eventual-consistency
// mechanisms for cross-layer divergence (paper §4):
//
//   - reload — physical→logical synchronization: device state is
//     retrieved and replaces the corresponding logical subtree, subject
//     to constraint validation and non-interference with outstanding
//     transactions;
//   - repair — logical→physical synchronization: device state is
//     retrieved, diffed against the logical subtree, and pre-defined
//     repair actions drive the devices back to the logical state (e.g.
//     startVM for every VM a host reboot powered off).
//
// Divergence arises from failed undo rollbacks, out-of-band changes by
// operators, and crashes. Nodes found divergent are marked inconsistent
// (denying transactions) until a reconciliation succeeds; resources
// whose reconciliation fails are marked unusable.
package reconcile

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/controller"
	"repro/internal/lock"
	"repro/internal/model"
)

// Snapshotter exposes the physical data model: the device layer's
// current truth. device.Cloud implements it.
type Snapshotter interface {
	Snapshot() *model.Tree
}

// Executor performs physical repair actions; device.Cloud implements it.
type Executor interface {
	Execute(path, action string, args []string) error
}

// Phase orders a repair action relative to the node's descendants.
type Phase int

const (
	// PhasePre actions run before the node's children are repaired
	// (e.g. adding a missing disk import a child VM will need).
	PhasePre Phase = iota
	// PhasePost actions run after the children (e.g. dropping an
	// orphan import only once the orphan VM using it is removed).
	PhasePost
)

// Action is one physical repair step.
type Action struct {
	Path   string
	Name   string
	Args   []string
	UndoOf string // human-readable cause, for logs
	Phase  Phase
}

// RepairRule derives the repair actions for one divergent node.
// logical is nil when the node exists only physically (an orphan to
// decommission); physical is nil when it exists only logically (a
// resource to re-create). Both non-nil means attributes differ.
type RepairRule func(path string, logical, physical *model.Node) []Action

// Rules maps entity type names to their repair rules.
type Rules map[string]RepairRule

// Reconciler implements controller.Reconciler over a simulated (or
// real) device substrate.
type Reconciler struct {
	phys  Snapshotter
	exec  Executor
	rules Rules
	logf  func(string, ...any)
}

// Option configures a Reconciler.
type Option func(*Reconciler)

// WithLogf sets a diagnostic logger.
func WithLogf(f func(string, ...any)) Option {
	return func(r *Reconciler) { r.logf = f }
}

// New builds a reconciler. phys supplies physical snapshots, exec
// performs repair actions, rules derive per-entity repairs.
func New(phys Snapshotter, exec Executor, rules Rules, opts ...Option) *Reconciler {
	r := &Reconciler{phys: phys, exec: exec, rules: rules, logf: func(string, ...any) {}}
	for _, o := range opts {
		o(r)
	}
	return r
}

var _ controller.Reconciler = (*Reconciler)(nil)

// ErrBusy reports that outstanding transactions hold locks under the
// reconciliation target; retry after they complete.
var ErrBusy = errors.New("reconcile: target busy with outstanding transactions")

// checkIdle refuses to reconcile under in-flight transactions: the
// controller grants us an exclusive view by construction (we run on its
// event goroutine), but started transactions already hold locks whose
// simulated effects would be clobbered.
func checkIdle(c *controller.Controller, target string) error {
	if ce := c.LockManager().WouldConflict("__reconcile__",
		[]lock.Request{{Path: target, Mode: lock.W}}); ce != nil {
		return fmt.Errorf("%w: %v", ErrBusy, ce)
	}
	return nil
}

// Reload replaces the logical subtree at target with the physical
// state. Constraints are validated on the result; on violation the
// previous logical state is restored and the reload aborts (§4).
func (r *Reconciler) Reload(c *controller.Controller, target string) error {
	if err := checkIdle(c, target); err != nil {
		return err
	}
	phys := r.phys.Snapshot()
	pnode, perr := phys.Get(target)
	ltree := c.LogicalTree()
	lnode, lerr := ltree.Get(target)

	switch {
	case perr != nil && lerr != nil:
		return fmt.Errorf("reconcile: reload %s: unknown on both layers", target)
	case perr != nil:
		// Device decommissioned out-of-band: drop the logical node.
		if err := ltree.Delete(target); err != nil {
			return err
		}
		clearMarks(c, target, nil)
		return nil
	}

	// Install the physical subtree, keeping the old one for restore.
	parent := model.ParentPath(target)
	pn, err := ltree.Get(parent)
	if err != nil {
		return fmt.Errorf("reconcile: reload %s: logical parent missing: %w", target, err)
	}
	replacement := pnode.Clone()
	var old *model.Node
	if lerr == nil {
		old = lnode
	}
	pn.Children[replacement.Name] = replacement

	// Validate constraints over the replaced subtree and its ancestors.
	if err := checkSubtreeConstraints(c, target); err != nil {
		if old != nil {
			pn.Children[old.Name] = old
		} else {
			delete(pn.Children, replacement.Name)
		}
		return fmt.Errorf("reconcile: reload %s aborted: %w", target, err)
	}
	clearMarks(c, target, replacement)
	r.logf("reconcile: reloaded %s (%d nodes)", target, replacement.CountNodes())
	return nil
}

// checkSubtreeConstraints validates every constrained node at or under
// target, plus target's ancestors.
func checkSubtreeConstraints(c *controller.Controller, target string) error {
	ltree, schema := c.LogicalTree(), c.Schema()
	if err := schema.CheckConstraints(ltree, target); err != nil {
		return err
	}
	n, err := ltree.Get(target)
	if err != nil {
		return err
	}
	return walkConstraints(schema, ltree, target, n)
}

func walkConstraints(schema *model.Schema, t *model.Tree, path string, n *model.Node) error {
	if ent, ok := schema.Lookup(n.Type); ok {
		for _, con := range ent.Constraints {
			if err := con.Check(t, path, n); err != nil {
				return fmt.Errorf("constraint %q at %s: %w", con.Name, path, err)
			}
		}
	}
	for _, name := range n.SortedChildren() {
		if err := walkConstraints(schema, t, model.Join(path, name), n.Children[name]); err != nil {
			return err
		}
	}
	return nil
}

// clearMarks removes inconsistency marks for target and its descendants
// after a successful reconciliation.
func clearMarks(c *controller.Controller, target string, n *model.Node) {
	c.ClearInconsistent(target)
	if n == nil {
		return
	}
	var walk func(path string, n *model.Node)
	walk = func(path string, n *model.Node) {
		n.Inconsistent = false
		c.ClearInconsistent(path)
		for _, name := range n.SortedChildren() {
			walk(model.Join(path, name), n.Children[name])
		}
	}
	walk(target, n)
}

// Repair drives the physical state of the target subtree back to the
// logical state. The logical layer is authoritative and stays intact
// (§4: "After repair the logical layer is intact and hence no
// constraint violation should be found"). Failed repair actions mark
// the target unusable.
func (r *Reconciler) Repair(c *controller.Controller, target string) error {
	if err := checkIdle(c, target); err != nil {
		return err
	}
	phys := r.phys.Snapshot()
	ltree := c.LogicalTree()
	lnode, lerr := ltree.Get(target)
	if lerr != nil {
		return fmt.Errorf("reconcile: repair %s: no logical node: %w", target, lerr)
	}
	pnode, perr := phys.Get(target)
	if perr != nil {
		return fmt.Errorf("reconcile: repair %s: no physical node (reload to decommission): %w", target, perr)
	}
	actions := r.diff(target, lnode, pnode)
	for _, a := range actions {
		if err := r.exec.Execute(a.Path, a.Name, a.Args); err != nil {
			c.MarkUnusable(target)
			return fmt.Errorf("reconcile: repair %s: %s %s%v: %w (target marked unusable)",
				target, a.UndoOf, a.Name, a.Args, err)
		}
	}
	// Verify convergence and clear the marks.
	phys = r.phys.Snapshot()
	pnode, perr = phys.Get(target)
	if perr != nil || !model.Equal(lnode, pnode) {
		c.MarkUnusable(target)
		return fmt.Errorf("reconcile: repair %s: layers still diverge after %d actions (target marked unusable)",
			target, len(actions))
	}
	clearMarks(c, target, lnode)
	r.logf("reconcile: repaired %s with %d actions", target, len(actions))
	return nil
}

// diff walks the logical (authoritative) and physical subtrees in
// parallel, emitting repair actions from the registered rules.
func (r *Reconciler) diff(path string, logical, physical *model.Node) []Action {
	var out, post []Action
	typ := ""
	if logical != nil {
		typ = logical.Type
	} else if physical != nil {
		typ = physical.Type
	}
	if rule, ok := r.rules[typ]; ok {
		if logical == nil || physical == nil || !attrsEqual(logical, physical) {
			for _, a := range rule(path, logical, physical) {
				if a.Phase == PhasePost {
					post = append(post, a)
				} else {
					out = append(out, a)
				}
			}
		}
	}
	if logical == nil || physical == nil {
		return append(out, post...)
	}
	names := make(map[string]bool)
	for n := range logical.Children {
		names[n] = true
	}
	for n := range physical.Children {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		out = append(out, r.diff(model.Join(path, name),
			logical.Children[name], physical.Children[name])...)
	}
	return append(out, post...)
}

func attrsEqual(a, b *model.Node) bool {
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for k, av := range a.Attrs {
		bv, ok := b.Attrs[k]
		if !ok || fmt.Sprint(av) != fmt.Sprint(bv) {
			return false
		}
	}
	return true
}

// Diverged reports the paths at or under target whose logical and
// physical states differ — the periodic detection probe (§4: divergence
// "can be detected by periodically comparing the data between the two
// layers").
func (r *Reconciler) Diverged(c *controller.Controller, target string) ([]string, error) {
	phys := r.phys.Snapshot()
	ltree := c.LogicalTree()
	lnode, lerr := ltree.Get(target)
	pnode, perr := phys.Get(target)
	if lerr != nil && perr != nil {
		return nil, fmt.Errorf("reconcile: %s unknown on both layers", target)
	}
	var out []string
	var walk func(path string, l, p *model.Node)
	walk = func(path string, l, p *model.Node) {
		switch {
		case l == nil || p == nil:
			out = append(out, path)
			return
		case !attrsEqual(l, p) || l.Type != p.Type:
			out = append(out, path)
		}
		names := make(map[string]bool)
		for n := range l.Children {
			names[n] = true
		}
		for n := range p.Children {
			names[n] = true
		}
		ordered := make([]string, 0, len(names))
		for n := range names {
			ordered = append(ordered, n)
		}
		sort.Strings(ordered)
		for _, name := range ordered {
			walk(model.Join(path, name), l.Children[name], p.Children[name])
		}
	}
	var l, p *model.Node
	if lerr == nil {
		l = lnode
	}
	if perr == nil {
		p = pnode
	}
	walk(target, l, p)
	return out, nil
}
