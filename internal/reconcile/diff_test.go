package reconcile

import (
	"testing"

	"repro/internal/model"
)

// buildPair returns logical and physical trees sharing a host with
// configurable children.
func buildPair() (*model.Tree, *model.Tree) {
	l := model.NewTree()
	l.Create("/hosts", "root", nil)
	l.Create("/hosts/h1", "host", map[string]any{"imports": "a,b"})
	l.Create("/hosts/h1/vm1", "vm", map[string]any{"state": "running"})

	p := model.NewTree()
	p.Create("/hosts", "root", nil)
	p.Create("/hosts/h1", "host", map[string]any{"imports": "a,b"})
	p.Create("/hosts/h1/vm1", "vm", map[string]any{"state": "running"})
	return l, p
}

func testRules(log *[]string) Rules {
	return Rules{
		"host": func(path string, logical, physical *model.Node) []Action {
			return []Action{
				{Path: path, Name: "host-pre", Phase: PhasePre},
				{Path: path, Name: "host-post", Phase: PhasePost},
			}
		},
		"vm": func(path string, logical, physical *model.Node) []Action {
			return []Action{{Path: path, Name: "vm-fix"}}
		},
	}
}

func names(actions []Action) []string {
	var out []string
	for _, a := range actions {
		out = append(out, a.Name)
	}
	return out
}

func TestDiffNoDivergenceNoActions(t *testing.T) {
	l, p := buildPair()
	r := New(nil, nil, testRules(nil))
	ln, _ := l.Get("/hosts/h1")
	pn, _ := p.Get("/hosts/h1")
	if acts := r.diff("/hosts/h1", ln, pn); len(acts) != 0 {
		t.Fatalf("actions = %v", names(acts))
	}
}

func TestDiffPhaseOrdering(t *testing.T) {
	l, p := buildPair()
	// Diverge the host attrs AND the child: pre actions must precede
	// child fixes, post actions must follow them.
	pn, _ := p.Get("/hosts/h1")
	pn.Attrs["imports"] = "a"
	pvm, _ := p.Get("/hosts/h1/vm1")
	pvm.Attrs["state"] = "stopped"

	r := New(nil, nil, testRules(nil))
	ln, _ := l.Get("/hosts/h1")
	acts := r.diff("/hosts/h1", ln, pn)
	got := names(acts)
	want := []string{"host-pre", "vm-fix", "host-post"}
	if len(got) != len(want) {
		t.Fatalf("actions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("actions = %v, want %v", got, want)
		}
	}
}

func TestDiffOrphanAndMissingChildren(t *testing.T) {
	l, p := buildPair()
	// vm1 exists only logically (recreate); vm2 only physically
	// (decommission).
	p.Delete("/hosts/h1/vm1")
	p.Create("/hosts/h1/vm2", "vm", map[string]any{"state": "running"})

	var calls []struct {
		path     string
		logical  bool
		physical bool
	}
	rules := Rules{
		"vm": func(path string, logical, physical *model.Node) []Action {
			calls = append(calls, struct {
				path     string
				logical  bool
				physical bool
			}{path, logical != nil, physical != nil})
			return nil
		},
	}
	r := New(nil, nil, rules)
	ln, _ := l.Get("/hosts/h1")
	pn, _ := p.Get("/hosts/h1")
	r.diff("/hosts/h1", ln, pn)
	if len(calls) != 2 {
		t.Fatalf("calls = %+v", calls)
	}
	// Sorted child order: vm1 (logical-only), vm2 (physical-only).
	if calls[0].path != "/hosts/h1/vm1" || !calls[0].logical || calls[0].physical {
		t.Fatalf("call 0 = %+v", calls[0])
	}
	if calls[1].path != "/hosts/h1/vm2" || calls[1].logical || !calls[1].physical {
		t.Fatalf("call 1 = %+v", calls[1])
	}
}

func TestDiffUnregisteredTypeIgnored(t *testing.T) {
	l, p := buildPair()
	pn, _ := p.Get("/hosts/h1/vm1")
	pn.Attrs["state"] = "stopped"
	r := New(nil, nil, Rules{}) // no rules at all
	ln, _ := l.Get("/hosts/h1")
	phn, _ := p.Get("/hosts/h1")
	if acts := r.diff("/hosts/h1", ln, phn); len(acts) != 0 {
		t.Fatalf("actions = %v", names(acts))
	}
}

func TestAttrsEqualSemantics(t *testing.T) {
	a := model.NewNode("x", "t")
	b := model.NewNode("x", "t")
	a.Attrs["n"] = int64(5)
	b.Attrs["n"] = float64(5) // JSON round-trip form
	if !attrsEqual(a, b) {
		t.Fatal("numeric forms should compare equal")
	}
	b.Attrs["n"] = int64(6)
	if attrsEqual(a, b) {
		t.Fatal("different values compared equal")
	}
	b.Attrs["n"] = int64(5)
	b.Attrs["extra"] = true
	if attrsEqual(a, b) {
		t.Fatal("extra attr missed")
	}
}
