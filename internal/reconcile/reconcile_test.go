package reconcile_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/reconcile"
	"repro/internal/store"
	"repro/tcloud"
)

// leaderRig spins up one leading controller over a simulated cloud so
// Reload/Repair can be called directly.
type leaderRig struct {
	ctrl  *controller.Controller
	cloud *device.Cloud
}

func newLeaderRig(t *testing.T) *leaderRig {
	t.Helper()
	tp := tcloud.Topology{ComputeHosts: 2}
	cloud, err := tp.BuildCloud()
	if err != nil {
		t.Fatal(err)
	}
	ens := store.NewEnsemble(store.Config{Replicas: 3, SessionTimeout: 300 * time.Millisecond})
	c, err := controller.New(controller.Config{
		Name:       "ctrl-0",
		Ensemble:   ens,
		Schema:     tcloud.NewSchema(),
		Procedures: tcloud.Procedures(),
		Bootstrap:  cloud.Snapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = c.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for !c.Leading() {
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		c.Close()
		ens.Close()
	})
	return &leaderRig{ctrl: c, cloud: cloud}
}

func TestReloadUnknownEverywhere(t *testing.T) {
	rig := newLeaderRig(t)
	r := reconcile.New(rig.cloud, rig.cloud, tcloud.RepairRules())
	err := r.Reload(rig.ctrl, "/vmRoot/ghost")
	if err == nil || !strings.Contains(err.Error(), "unknown on both layers") {
		t.Fatalf("err = %v", err)
	}
}

func TestRepairNoLogicalNode(t *testing.T) {
	rig := newLeaderRig(t)
	r := reconcile.New(rig.cloud, rig.cloud, tcloud.RepairRules())
	if err := r.Repair(rig.ctrl, "/vmRoot/ghost"); err == nil {
		t.Fatal("repair of unknown logical node succeeded")
	}
}

func TestRepairNoPhysicalNode(t *testing.T) {
	rig := newLeaderRig(t)
	r := reconcile.New(rig.cloud, rig.cloud, tcloud.RepairRules())
	// Plant a logical-only host: repair must refuse (reload territory).
	if _, err := rig.ctrl.LogicalTree().Create("/vmRoot/phantom", tcloud.TypeVMHost,
		map[string]any{"hypervisor": "xen", "memMB": int64(8192), "imports": ""}); err != nil {
		t.Fatal(err)
	}
	if err := r.Repair(rig.ctrl, "/vmRoot/phantom"); err == nil {
		t.Fatal("repair without physical node succeeded")
	}
}

func TestRepairFailureMarksUnusable(t *testing.T) {
	rig := newLeaderRig(t)
	r := reconcile.New(rig.cloud, rig.cloud, tcloud.RepairRules())
	host := tcloud.ComputeHostPath(0)
	hostName := tcloud.ComputeHostName(0)
	// Diverge: logical says a VM exists, physical doesn't — and the
	// repair's createVM will fail against a powered-off host.
	if _, err := rig.ctrl.LogicalTree().Create(host+"/vmz", tcloud.TypeVM, map[string]any{
		"image": "x-img", "memMB": int64(1024), "state": "stopped", "hypervisor": "xen",
	}); err != nil {
		t.Fatal(err)
	}
	if err := rig.cloud.PowerOffHost(hostName); err != nil {
		t.Fatal(err)
	}
	err := r.Repair(rig.ctrl, host)
	if err == nil || !errors.Is(deepUnwrap(err), device.ErrUnreachable) &&
		!strings.Contains(err.Error(), "unusable") {
		t.Fatalf("err = %v", err)
	}
	n, _ := rig.ctrl.LogicalTree().Get(host)
	if !n.Unusable {
		t.Fatal("target not marked unusable after failed repair")
	}
	// ClearUnusable restores usability.
	rig.ctrl.ClearUnusable(host)
	n, _ = rig.ctrl.LogicalTree().Get(host)
	if n.Unusable {
		t.Fatal("unusable mark not cleared")
	}
}

func deepUnwrap(err error) error {
	for {
		u := errors.Unwrap(err)
		if u == nil {
			return err
		}
		err = u
	}
}

func TestRepairConvergenceCheckCatchesUnfixable(t *testing.T) {
	rig := newLeaderRig(t)
	r := reconcile.New(rig.cloud, rig.cloud, tcloud.RepairRules())
	// Diverge the VLAN port count, which the rules cannot repair
	// (port identities are not modeled): Repair must detect
	// non-convergence and mark unusable rather than claim success.
	sw := tcloud.SwitchPath(0)
	if err := rig.cloud.Execute("/netRoot/"+tcloud.SwitchName(0), "createVLAN", []string{"5"}); err != nil {
		t.Fatal(err)
	}
	if err := rig.cloud.Execute("/netRoot/"+tcloud.SwitchName(0), "attachPort", []string{"5", "p1"}); err != nil {
		t.Fatal(err)
	}
	// Logical side: VLAN exists but with zero ports.
	if _, err := rig.ctrl.LogicalTree().Create(sw+"/5", tcloud.TypeVLAN,
		map[string]any{"ports": int64(0)}); err != nil {
		t.Fatal(err)
	}
	err := r.Repair(rig.ctrl, sw)
	if err == nil || !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("err = %v", err)
	}
}

func TestReloadRestoresOldStateOnViolation(t *testing.T) {
	rig := newLeaderRig(t)
	r := reconcile.New(rig.cloud, rig.cloud, tcloud.RepairRules())
	host := tcloud.ComputeHostPath(0)
	// Physical host carries an over-committed VM (hand-planted).
	dev := rig.cloud.ComputeHost(tcloud.ComputeHostName(0))
	dev.VMs["huge"] = &device.VM{Name: "huge", Image: "x", MemMB: 1 << 20, State: device.VMStopped}

	err := r.Reload(rig.ctrl, host)
	if err == nil || !strings.Contains(err.Error(), "vm-memory") {
		t.Fatalf("err = %v", err)
	}
	// Old logical subtree intact.
	if rig.ctrl.LogicalTree().Exists(host + "/huge") {
		t.Fatal("violating subtree installed")
	}
	n, _ := rig.ctrl.LogicalTree().Get(host)
	if n == nil || n.Type != tcloud.TypeVMHost {
		t.Fatal("old host node lost")
	}
}

func TestReloadFreshNodeInstalls(t *testing.T) {
	rig := newLeaderRig(t)
	r := reconcile.New(rig.cloud, rig.cloud, tcloud.RepairRules())
	rig.cloud.AddComputeServer("newbie", "xen", 4096)
	if err := r.Reload(rig.ctrl, "/vmRoot/newbie"); err != nil {
		t.Fatal(err)
	}
	n, err := rig.ctrl.LogicalTree().Get("/vmRoot/newbie")
	if err != nil || n.GetInt("memMB") != 4096 {
		t.Fatalf("installed node: %v %v", n, err)
	}
}
