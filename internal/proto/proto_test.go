package proto

import (
	"testing"
	"testing/quick"
)

func TestInputMsgRoundTrip(t *testing.T) {
	cases := []InputMsg{
		{Kind: KindSubmit, TxnPath: TxnsPath + "/t-0000000001"},
		{Kind: KindResult, TxnPath: TxnsPath + "/t-0000000002", Outcome: "aborted",
			Error: "device down", UndoneThrough: 3},
		{Kind: KindSignal, TxnPath: TxnsPath + "/t-0000000003", Signal: "KILL"},
		{Kind: KindRepair, Target: "/vmRoot/h1", Reply: RepliesPath + "/r-0000000001"},
		{Kind: KindReload, Target: "/storageRoot/s1"},
	}
	for _, m := range cases {
		back, err := DecodeInputMsg(m.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if back != m {
			t.Fatalf("round trip: %+v != %+v", back, m)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeInputMsg([]byte("nope")); err == nil {
		t.Error("input msg garbage decoded")
	}
	if _, err := DecodePhyMsg([]byte("{")); err == nil {
		t.Error("phy msg garbage decoded")
	}
	if _, err := DecodeCommitLogEntry([]byte("[]")); err == nil {
		t.Error("commit entry garbage decoded")
	}
	if _, err := DecodeReply([]byte("x")); err == nil {
		t.Error("reply garbage decoded")
	}
	if _, err := DecodeSnapshot([]byte("-")); err == nil {
		t.Error("snapshot garbage decoded")
	}
}

func TestPhyMsgAndCommitEntry(t *testing.T) {
	pm, err := DecodePhyMsg(PhyMsg{TxnPath: "/tropic/txns/t-1"}.Encode())
	if err != nil || pm.TxnPath != "/tropic/txns/t-1" {
		t.Fatalf("phy: %+v %v", pm, err)
	}
	ce, err := DecodeCommitLogEntry(CommitLogEntry{TxnPath: "/tropic/txns/t-2"}.Encode())
	if err != nil || ce.TxnPath != "/tropic/txns/t-2" {
		t.Fatalf("entry: %+v %v", ce, err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	r, err := DecodeReply(Reply{OK: false, Error: "busy"}.Encode())
	if err != nil || r.OK || r.Error != "busy" {
		t.Fatalf("reply: %+v %v", r, err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := Snapshot{Tree: []byte(`{"name":"","type":"root"}`), LastCommitSeq: "c-0000000009"}
	back, err := DecodeSnapshot(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.LastCommitSeq != s.LastCommitSeq || string(back.Tree) != string(s.Tree) {
		t.Fatalf("snapshot: %+v", back)
	}
}

// Property: EncodePath/DecodePath invert each other for slash-separated
// model paths, and encoded names never contain '/'.
func TestPathEncodingProperty(t *testing.T) {
	f := func(segs []string) bool {
		path := ""
		for _, s := range segs {
			clean := ""
			for _, r := range s {
				if r != '/' && r != '|' && r > 31 && r < 127 {
					clean += string(r)
				}
			}
			if clean == "" {
				clean = "x"
			}
			path += "/" + clean
		}
		if path == "" {
			path = "/a"
		}
		enc := EncodePath(path)
		for i := 0; i < len(enc); i++ {
			if enc[i] == '/' {
				return false
			}
		}
		return DecodePath(enc) == path
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPathEncodingKnown(t *testing.T) {
	if got := EncodePath("/vmRoot/h1/vm2"); got != "|vmRoot|h1|vm2" {
		t.Fatalf("encode = %q", got)
	}
	if got := DecodePath("|vmRoot|h1"); got != "/vmRoot/h1" {
		t.Fatalf("decode = %q", got)
	}
}
