// Package proto pins down the shared coordination-store layout and the
// message formats exchanged between TROPIC's clients, controllers, and
// workers. Everything here is persisted, so all components — including a
// freshly elected leader — agree on where transaction state lives.
package proto

import (
	"encoding/json"
	"fmt"
)

// Store layout. All TROPIC state hangs under Root.
const (
	// Root is the base path of all TROPIC znodes.
	Root = "/tropic"
	// TxnsPath holds one sequence node per transaction record.
	TxnsPath = Root + "/txns"
	// TxnPrefix is the sequence-node prefix of transaction records.
	TxnPrefix = TxnsPath + "/t-"
	// InputQPath is the queue feeding the lead controller: client
	// submissions and worker completion notices (Figure 1's inputQ).
	InputQPath = Root + "/inputQ"
	// PhyQPath is the queue feeding the physical workers (phyQ).
	PhyQPath = Root + "/phyQ"
	// ElectionPath hosts the controller leader election.
	ElectionPath = Root + "/election"
	// SnapshotPath stores the latest committed logical-model checkpoint.
	SnapshotPath = Root + "/model-snapshot"
	// CommitLogPath holds one sequence node per committed transaction,
	// in commit order; replayed over the snapshot during recovery.
	CommitLogPath = Root + "/commitLog"
	// CommitLogPrefix is the sequence-node prefix of commit-log entries.
	CommitLogPrefix = CommitLogPath + "/c-"
	// InconsistentPath records model paths currently marked inconsistent
	// (cross-layer divergence, §4), so the marks survive controller
	// failover. Child names are EncodePath-encoded model paths.
	InconsistentPath = Root + "/inconsistent"
	// UnusablePath records model paths marked unusable after failed
	// reconciliation (§4). Same encoding as InconsistentPath.
	UnusablePath = Root + "/unusable"
	// RepliesPath hosts reply nodes for request/response exchanges
	// (reconciliation results).
	RepliesPath = Root + "/replies"
	// IdempotencyPath maps client-supplied idempotency keys to the
	// transaction id a key's first submission produced, so resubmissions
	// dedup instead of double-executing. Child names are the keys.
	IdempotencyPath = Root + "/idempotency"
)

// EncodePath turns a model path into a legal znode name (slashes are not
// allowed inside names).
func EncodePath(modelPath string) string {
	out := make([]byte, 0, len(modelPath))
	for i := 0; i < len(modelPath); i++ {
		if modelPath[i] == '/' {
			out = append(out, '|')
		} else {
			out = append(out, modelPath[i])
		}
	}
	return string(out)
}

// DecodePath reverses EncodePath.
func DecodePath(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		if name[i] == '|' {
			out = append(out, '/')
		} else {
			out = append(out, name[i])
		}
	}
	return string(out)
}

// MsgKind discriminates inputQ messages.
type MsgKind string

const (
	// KindSubmit: a client submitted a new transaction (Figure 2, ①).
	KindSubmit MsgKind = "submit"
	// KindResult: a worker finished a transaction's physical execution
	// (Figure 2, step 4 feeding step 5).
	KindResult MsgKind = "result"
	// KindSignal: an operator sent TERM/KILL to a transaction (§4).
	KindSignal MsgKind = "signal"
	// KindReload: an operator requested physical→logical reconciliation
	// for a subtree (§4).
	KindReload MsgKind = "reload"
	// KindRepair: an operator requested logical→physical reconciliation
	// (§4).
	KindRepair MsgKind = "repair"

	// Cross-shard two-phase-commit messages. PREPARE requests reuse
	// KindSubmit pointed at the child record (a child is accepted and
	// scheduled like any submission; its Parent field makes the
	// scheduler stop at prepared instead of started).

	// KindXVote: a participant reports its child's vote to the
	// coordinator (TxnPath = parent record, ChildIndex = which child,
	// Outcome = "prepared" for yes / "aborted" for no).
	KindXVote MsgKind = "xvote"
	// KindXDecide: the coordinator delivers the durable COMMIT/ABORT
	// decision to a prepared child (TxnPath = child record, Decision =
	// commit|abort).
	KindXDecide MsgKind = "xdecide"
	// KindXChildDone: a participant reports a child's terminal outcome
	// to the coordinator (TxnPath = parent record, ChildIndex, Outcome).
	KindXChildDone MsgKind = "xchilddone"
	// KindXTimeout: a coordinator-local deadline check for a cross-shard
	// parent (TxnPath = parent record): an undecided parent past its
	// prepare deadline is aborted; a decided one re-delivers its
	// decision to children still outstanding.
	KindXTimeout MsgKind = "xtimeout"
	// KindXAdvance: a peer shard mutated a parent record out of band (a
	// wound-wait abort decision written by a participant) and asks the
	// coordinator to advance it now — exactly the deadline check's state
	// machine, minus the presumed-abort escalation.
	KindXAdvance MsgKind = "xadvance"
)

// InputMsg is one inputQ item.
type InputMsg struct {
	Kind MsgKind `json:"kind"`
	// TxnPath locates the transaction record (submit/result/signal).
	TxnPath string `json:"txnPath,omitempty"`
	// Target is the model subtree for reload/repair requests.
	Target string `json:"target,omitempty"`
	// Signal carries "TERM" or "KILL" for KindSignal.
	Signal string `json:"signal,omitempty"`
	// Reply, when set, names a znode the controller writes a Reply
	// into once the request completes (reload/repair).
	Reply string `json:"reply,omitempty"`
	// Outcome is the physical execution result for KindResult:
	// "committed", "aborted", or "failed". The controller, not the
	// worker, writes the terminal state to the record during cleanup
	// (Figure 2, step 5).
	Outcome string `json:"outcome,omitempty"`
	// Error is the failure description accompanying aborted/failed
	// outcomes.
	Error string `json:"error,omitempty"`
	// Code is the trerr taxonomy code classifying Error.
	Code string `json:"code,omitempty"`
	// UndoneThrough counts the undo actions that succeeded during
	// physical rollback.
	UndoneThrough int `json:"undoneThrough,omitempty"`
	// ChildIndex identifies which child of a cross-shard parent a
	// KindXVote/KindXChildDone message concerns.
	ChildIndex int `json:"childIndex,omitempty"`
	// Decision carries the coordinator's 2PC decision for KindXDecide
	// (txn.DecisionCommit or txn.DecisionAbort).
	Decision string `json:"decision,omitempty"`
	// Via records how a KindXDecide reached the participant when it
	// skipped the decide-notice round trip: "local" for a coordinator-
	// local child whose decision rode the coordinator's own event round,
	// "ack" for a decision read off the parent record by the vote-ack
	// watch. Empty for a store-delivered decide notice.
	Via string `json:"via,omitempty"`
}

// Reply reports the outcome of a reload/repair request.
type Reply struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code is the trerr taxonomy code classifying Error.
	Code string `json:"code,omitempty"`
}

// Encode serializes the reply.
func (r Reply) Encode() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("proto: encode reply: %v", err))
	}
	return b
}

// DecodeReply parses a reply.
func DecodeReply(data []byte) (Reply, error) {
	var r Reply
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("proto: decode reply: %w", err)
	}
	return r, nil
}

// Encode serializes the message.
func (m InputMsg) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("proto: encode input msg: %v", err))
	}
	return b
}

// DecodeInputMsg parses an inputQ item.
func DecodeInputMsg(data []byte) (InputMsg, error) {
	var m InputMsg
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("proto: decode input msg: %w", err)
	}
	return m, nil
}

// PhyMsg is one phyQ item: a transaction ready for physical execution.
type PhyMsg struct {
	TxnPath string `json:"txnPath"`
}

// Encode serializes the message.
func (m PhyMsg) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("proto: encode phy msg: %v", err))
	}
	return b
}

// DecodePhyMsg parses a phyQ item.
func DecodePhyMsg(data []byte) (PhyMsg, error) {
	var m PhyMsg
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("proto: decode phy msg: %w", err)
	}
	return m, nil
}

// CommitLogEntry records one committed transaction in commit order.
type CommitLogEntry struct {
	TxnPath string `json:"txnPath"`
}

// Encode serializes the entry.
func (e CommitLogEntry) Encode() []byte {
	b, err := json.Marshal(e)
	if err != nil {
		panic(fmt.Sprintf("proto: encode commit entry: %v", err))
	}
	return b
}

// DecodeCommitLogEntry parses a commit-log entry.
func DecodeCommitLogEntry(data []byte) (CommitLogEntry, error) {
	var e CommitLogEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return e, fmt.Errorf("proto: decode commit entry: %w", err)
	}
	return e, nil
}

// Snapshot is the persisted logical-model checkpoint: the committed tree
// plus the commit-log sequence number it already includes, so recovery
// replays only later entries.
type Snapshot struct {
	// Tree is a model snapshot (model.Tree.MarshalSnapshot output).
	Tree json.RawMessage `json:"tree"`
	// LastCommitSeq names the last commit-log entry folded into Tree
	// ("" when none).
	LastCommitSeq string `json:"lastCommitSeq,omitempty"`
}

// Encode serializes the snapshot envelope.
func (s Snapshot) Encode() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("proto: encode snapshot: %v", err))
	}
	return b
}

// DecodeSnapshot parses a snapshot envelope.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("proto: decode snapshot: %w", err)
	}
	return s, nil
}
