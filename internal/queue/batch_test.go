package queue

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// TestPutAllTakeBatch: a batched put lands atomically in order; a
// batched take drains up to max without waiting for more.
func TestPutAllTakeBatch(t *testing.T) {
	e := store.NewEnsemble(store.Config{})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	q, err := New(cli, "/q")
	if err != nil {
		t.Fatal(err)
	}
	var items [][]byte
	for i := 0; i < 10; i++ {
		items = append(items, []byte(fmt.Sprintf("m%02d", i)))
	}
	if err := q.PutAll(items); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	got, err := q.TakeBatch(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || string(got[0]) != "m00" || string(got[3]) != "m03" {
		t.Fatalf("first batch = %q", got)
	}
	got, err = q.TakeBatch(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || string(got[0]) != "m04" {
		t.Fatalf("drain = %q", got)
	}
	if n, _ := q.Len(); n != 0 {
		t.Fatalf("len = %d after drain", n)
	}
}

// TestTakeBatchBlocksUntilPut: an empty queue's batched take waits on
// the child watch (no polling) and wakes on the first put.
func TestTakeBatchBlocksUntilPut(t *testing.T) {
	e := store.NewEnsemble(store.Config{})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	q, err := New(cli, "/q")
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		batch [][]byte
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		b, err := q.TakeBatch(context.Background(), 8)
		ch <- res{b, err}
	}()
	select {
	case r := <-ch:
		t.Fatalf("take returned early: %v %v", r.batch, r.err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := q.Put([]byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.err != nil || len(r.batch) != 1 || string(r.batch[0]) != "wake" {
			t.Fatalf("take = %q, %v", r.batch, r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("take never woke")
	}
}

// TestTakeBatchContention: competing batch consumers never lose or
// duplicate an item, even when their atomic claims collide and fall
// back to item-by-item claiming.
func TestTakeBatchContention(t *testing.T) {
	e := store.NewEnsemble(store.Config{})
	defer e.Close()
	producer := e.Connect()
	defer producer.Close()
	pq, err := New(producer, "/q")
	if err != nil {
		t.Fatal(err)
	}
	const total = 60
	for i := 0; i < total; i++ {
		if _, err := pq.Put([]byte(fmt.Sprintf("i%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	const consumers = 4
	var mu sync.Mutex
	seen := make(map[string]int)
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := e.Connect()
			defer cli.Close()
			q, err := New(cli, "/q")
			if err != nil {
				t.Error(err)
				return
			}
			for {
				mu.Lock()
				done := len(seen) >= total
				mu.Unlock()
				if done {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
				batch, err := q.TakeBatch(ctx, 5)
				cancel()
				if err != nil {
					return // timeout: queue drained
				}
				mu.Lock()
				for _, item := range batch {
					seen[string(item)]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != total {
		t.Fatalf("consumed %d distinct items, want %d", len(seen), total)
	}
	for item, n := range seen {
		if n != 1 {
			t.Fatalf("item %s consumed %d times", item, n)
		}
	}
}

// TestTakeHeadBatchOrderAndNonRemoval: the controller-side drain returns
// head items in order without consuming them.
func TestTakeHeadBatchOrderAndNonRemoval(t *testing.T) {
	e := store.NewEnsemble(store.Config{})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	q, err := New(cli, "/q")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := q.Put([]byte(fmt.Sprintf("h%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	items, err := q.TakeHeadBatch(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 || string(items[0].Data) != "h0" || string(items[2].Data) != "h2" {
		t.Fatalf("items = %v", items)
	}
	if n, _ := q.Len(); n != 5 {
		t.Fatalf("len = %d, TakeHeadBatch must not remove", n)
	}
	// Consuming the heads exposes the tail on the next drain.
	for _, it := range items {
		if err := q.Remove(it.Path); err != nil {
			t.Fatal(err)
		}
	}
	items, err = q.TakeHeadBatch(context.Background(), 10)
	if err != nil || len(items) != 2 || string(items[0].Data) != "h3" {
		t.Fatalf("tail = %v (%v)", items, err)
	}
}

// TestBlockingTakeLeaksNoWatches: every blocking take path arms exactly
// one reusable watch and releases it on return — the ensemble's watch
// table returns to its baseline, even for takes that raced competitors
// or were cancelled.
func TestBlockingTakeLeaksNoWatches(t *testing.T) {
	e := store.NewEnsemble(store.Config{})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	q, err := New(cli, "/q")
	if err != nil {
		t.Fatal(err)
	}
	baseNode, baseChild := e.WatchCounts()
	for i := 0; i < 10; i++ {
		if _, err := q.Put([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Take(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Put([]byte("y")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := q.TakeHead(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := q.TryTake(); !ok {
			t.Fatal("TryTake found nothing")
		}
	}
	// Cancelled waits release their watch too.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	_, err = q.Take(ctx)
	cancel()
	if err == nil {
		t.Fatal("expected context error")
	}
	node, child := e.WatchCounts()
	if node != baseNode || child != baseChild {
		t.Fatalf("watch counts = (%d, %d), want baseline (%d, %d)", node, child, baseNode, baseChild)
	}
}
