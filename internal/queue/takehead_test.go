package queue

import (
	"context"
	"testing"
	"time"

	"repro/internal/store"
)

func TestTakeHeadDoesNotRemove(t *testing.T) {
	e := newEnsemble(t)
	c := e.Connect()
	defer c.Close()
	q, _ := New(c, "/q")
	q.Put([]byte("first"))
	q.Put([]byte("second"))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	data, path, err := q.TakeHead(ctx)
	if err != nil || string(data) != "first" {
		t.Fatalf("head = %q err=%v", data, err)
	}
	// Still there: a second TakeHead returns the same item.
	data2, path2, err := q.TakeHead(ctx)
	if err != nil || string(data2) != "first" || path2 != path {
		t.Fatalf("second head = %q @%s", data2, path2)
	}
	if n, _ := q.Len(); n != 2 {
		t.Fatalf("len = %d", n)
	}
	// Remove advances the head.
	if err := q.Remove(path); err != nil {
		t.Fatal(err)
	}
	data3, _, err := q.TakeHead(ctx)
	if err != nil || string(data3) != "second" {
		t.Fatalf("head after remove = %q", data3)
	}
	// Remove is idempotent.
	if err := q.Remove(path); err != nil {
		t.Fatal(err)
	}
}

func TestTakeHeadBlocksUntilPut(t *testing.T) {
	e := newEnsemble(t)
	c := e.Connect()
	defer c.Close()
	q, _ := New(c, "/q")

	got := make(chan string, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		data, _, err := q.TakeHead(ctx)
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- string(data)
	}()
	time.Sleep(20 * time.Millisecond)
	q.Put([]byte("wake"))
	select {
	case v := <-got:
		if v != "wake" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TakeHead never woke")
	}
}

func TestTakeHeadContextCancel(t *testing.T) {
	e := newEnsemble(t)
	c := e.Connect()
	defer c.Close()
	q, _ := New(c, "/q")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := q.TakeHead(ctx); err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoveOpInMulti(t *testing.T) {
	// The controller consumes the head atomically with its effects.
	e := newEnsemble(t)
	c := e.Connect()
	defer c.Close()
	q, _ := New(c, "/q")
	q.Put([]byte("msg"))
	c.EnsurePath("/fx")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, path, err := q.TakeHead(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Atomic: remove item + record effect. A failing sibling op must
	// leave the item queued.
	err = c.Multi(
		q.RemoveOp(path),
		store.DeleteOp("/missing", -1),
	)
	if err == nil {
		t.Fatal("bad multi succeeded")
	}
	if n, _ := q.Len(); n != 1 {
		t.Fatal("item lost by failed multi")
	}
	err = c.Multi(
		q.RemoveOp(path),
		store.CreateOp("/fx/done", nil, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := q.Len(); n != 0 {
		t.Fatal("item not consumed")
	}
	if ok, _, _ := c.Exists("/fx/done"); !ok {
		t.Fatal("effect missing")
	}
}
