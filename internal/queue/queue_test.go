package queue

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

func newEnsemble(t *testing.T) *store.Ensemble {
	t.Helper()
	e := store.NewEnsemble(store.Config{Replicas: 3, SessionTimeout: 200 * time.Millisecond})
	t.Cleanup(func() { e.Close() })
	return e
}

func TestFIFOOrder(t *testing.T) {
	e := newEnsemble(t)
	c := e.Connect()
	defer c.Close()
	q, err := New(c, "/tropic/inputQ")
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := q.Put([]byte(fmt.Sprint(i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if n, _ := q.Len(); n != 10 {
		t.Fatalf("len = %d, want 10", n)
	}
	for i := 0; i < 10; i++ {
		data, ok, err := q.TryTake()
		if err != nil || !ok {
			t.Fatalf("take %d: ok=%v err=%v", i, ok, err)
		}
		if string(data) != fmt.Sprint(i) {
			t.Fatalf("take %d = %q, want %d (FIFO violated)", i, data, i)
		}
	}
	if _, ok, _ := q.TryTake(); ok {
		t.Fatal("take from empty queue returned an item")
	}
}

func TestPeek(t *testing.T) {
	e := newEnsemble(t)
	c := e.Connect()
	defer c.Close()
	q, _ := New(c, "/q")
	if _, ok, _ := q.Peek(); ok {
		t.Fatal("peek on empty returned item")
	}
	q.Put([]byte("head"))
	q.Put([]byte("tail"))
	data, ok, err := q.Peek()
	if err != nil || !ok || string(data) != "head" {
		t.Fatalf("peek = %q ok=%v err=%v, want head", data, ok, err)
	}
	if n, _ := q.Len(); n != 2 {
		t.Fatalf("peek consumed: len = %d", n)
	}
}

func TestBlockingTake(t *testing.T) {
	e := newEnsemble(t)
	c := e.Connect()
	defer c.Close()
	q, _ := New(c, "/q")

	got := make(chan string, 1)
	go func() {
		data, err := q.Take(context.Background())
		if err != nil {
			t.Errorf("take: %v", err)
			got <- ""
			return
		}
		got <- string(data)
	}()
	time.Sleep(20 * time.Millisecond) // let the taker block
	if _, err := q.Put([]byte("wake")); err != nil {
		t.Fatalf("put: %v", err)
	}
	select {
	case v := <-got:
		if v != "wake" {
			t.Fatalf("take = %q, want wake", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking take never woke")
	}
}

func TestTakeContextCancel(t *testing.T) {
	e := newEnsemble(t)
	c := e.Connect()
	defer c.Close()
	q, _ := New(c, "/q")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := q.Take(ctx); err != context.DeadlineExceeded {
		t.Fatalf("take err = %v, want DeadlineExceeded", err)
	}
}

func TestCompetingConsumersExactlyOnce(t *testing.T) {
	e := newEnsemble(t)
	producer := e.Connect()
	defer producer.Close()
	pq, _ := New(producer, "/q")

	const items = 60
	for i := 0; i < items; i++ {
		if _, err := pq.Put([]byte(fmt.Sprint(i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	const consumers = 6
	var mu sync.Mutex
	seen := make(map[string]int)
	var wg sync.WaitGroup
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := e.Connect()
			defer c.Close()
			q, err := New(c, "/q")
			if err != nil {
				t.Errorf("new: %v", err)
				return
			}
			for {
				data, ok, err := q.TryTake()
				if err != nil {
					t.Errorf("take: %v", err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				seen[string(data)]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != items {
		t.Fatalf("consumed %d distinct items, want %d", len(seen), items)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("item %s consumed %d times", k, n)
		}
	}
}

func TestPutOpInMulti(t *testing.T) {
	e := newEnsemble(t)
	c := e.Connect()
	defer c.Close()
	q, _ := New(c, "/q")
	if err := c.EnsurePath("/state"); err != nil {
		t.Fatal(err)
	}
	// Atomically enqueue and write a state marker, as the controller does
	// when moving a transaction to phyQ.
	err := c.Multi(
		q.PutOp([]byte("job")),
		store.CreateOp("/state/t1", []byte("started"), 0),
	)
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	data, ok, _ := q.TryTake()
	if !ok || string(data) != "job" {
		t.Fatalf("take = %q ok=%v, want job", data, ok)
	}
	if ok, _, _ := c.Exists("/state/t1"); !ok {
		t.Fatal("state marker missing")
	}
}
