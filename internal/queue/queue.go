// Package queue implements distributed FIFO queues on top of the
// coordination store, following the ZooKeeper queue recipe TROPIC uses
// for inputQ and phyQ: each item is a persistent sequence node under the
// queue path, consumers take the lowest-numbered child, and a successful
// delete is what claims the item, so every item is consumed exactly once
// even with many competing consumers.
//
// The batched entry points (PutAll, TakeBatch, TakeHeadBatch) move many
// items per store round trip, and every blocking take waits on one
// reusable child watch instead of polling — the two halves of the
// pipeline's event-driven redesign.
package queue

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/store"
)

// ItemPrefix names queue entries under a queue path. Exported so depth
// gauges counting a queue's children recognize its items without
// duplicating the constant.
const ItemPrefix = "item-"

const itemPrefix = ItemPrefix

// Queue is a handle to one distributed FIFO queue. Multiple Queue values
// (across clients) may point at the same path and safely compete.
type Queue struct {
	cli  *store.Client
	path string
}

// Item is one queued entry, addressed by its znode path.
type Item struct {
	Path string
	Data []byte
}

// New opens (creating if needed) the queue rooted at path.
func New(cli *store.Client, path string) (*Queue, error) {
	if err := cli.EnsurePath(path); err != nil {
		return nil, fmt.Errorf("queue: ensure %s: %w", path, err)
	}
	return &Queue{cli: cli, path: path}, nil
}

// Path returns the queue's znode path.
func (q *Queue) Path() string { return q.path }

// Put appends an item and returns its absolute znode path.
func (q *Queue) Put(data []byte) (string, error) {
	p, err := q.cli.Create(q.path+"/"+itemPrefix, data, store.FlagSequence)
	if err != nil {
		return "", fmt.Errorf("queue: put on %s: %w", q.path, err)
	}
	return p, nil
}

// PutAll appends several items atomically, in order, in one store round
// trip. Either every item enqueues or none does.
func (q *Queue) PutAll(items [][]byte) error {
	if len(items) == 0 {
		return nil
	}
	ops := make([]store.Op, len(items))
	for i, data := range items {
		ops[i] = q.PutOp(data)
	}
	if err := q.cli.Multi(ops...); err != nil {
		return fmt.Errorf("queue: put %d items on %s: %w", len(items), q.path, err)
	}
	return nil
}

// PutOp returns the store operation that appends an item, for inclusion
// in an atomic Multi batch (e.g. enqueue to phyQ and update transaction
// state in one commit).
func (q *Queue) PutOp(data []byte) store.Op {
	return store.CreateOp(q.path+"/"+itemPrefix, data, store.FlagSequence)
}

// TryTake removes and returns the head item, or ok=false when the queue
// is empty.
func (q *Queue) TryTake() (data []byte, ok bool, err error) {
	for {
		names, err := q.cli.Children(q.path)
		if err != nil {
			return nil, false, fmt.Errorf("queue: list %s: %w", q.path, err)
		}
		claimed, data, err := q.claimFirst(names)
		if err != nil {
			return nil, false, err
		}
		if claimed {
			return data, true, nil
		}
		if len(names) == 0 {
			return nil, false, nil
		}
		// Every listed item was claimed by a competitor; re-list.
	}
}

// Take blocks until an item is available or ctx is done.
func (q *Queue) Take(ctx context.Context) ([]byte, error) {
	batch, err := q.TakeBatch(ctx, 1)
	if err != nil {
		return nil, err
	}
	return batch[0], nil
}

// TakeBatch blocks until at least one item is available and claims up to
// max of them (it never waits for a full batch — it drains what is there
// and returns). The wait is watch-driven: one reusable child watch is
// armed for the whole call and released on return, so there is neither a
// poll loop nor a leaked one-shot watch per wakeup, even when competing
// consumers win every claim (their deletions re-fire the same watch).
func (q *Queue) TakeBatch(ctx context.Context, max int) ([][]byte, error) {
	return q.takeBatch(ctx, max, q.cli.Multi)
}

// TakeBatchVia is TakeBatch with the claim commit routed through the
// caller's batcher, so the claim can share a group commit with whatever
// the batcher's other users have pending (e.g. a worker thread's claim
// riding alongside its siblings' outcome reports).
func (q *Queue) TakeBatchVia(ctx context.Context, max int, b *store.Batcher) ([][]byte, error) {
	return q.takeBatch(ctx, max, b.Multi)
}

func (q *Queue) takeBatch(ctx context.Context, max int, commit func(...store.Op) error) ([][]byte, error) {
	if max <= 0 {
		max = 1
	}
	w, err := q.cli.ChildWatch(q.path)
	if err != nil {
		return nil, fmt.Errorf("queue: watch %s: %w", q.path, err)
	}
	defer w.Close()
	for {
		names, err := q.cli.Children(q.path)
		if err != nil {
			return nil, fmt.Errorf("queue: list %s: %w", q.path, err)
		}
		claimed, err := q.claimBatch(names, max, commit)
		if err != nil {
			return nil, err
		}
		if len(claimed) > 0 {
			return claimed, nil
		}
		// Nothing claimable right now — either the queue is empty or
		// competitors won every race. Both cases end with a committed
		// mutation under q.path that fires the armed watch, so waiting
		// (rather than spinning) is lossless.
		if err := q.wait(ctx, w); err != nil {
			return nil, err
		}
	}
}

// wait blocks on the armed child watch until a membership change, ctx
// cancellation, or session expiry.
func (q *Queue) wait(ctx context.Context, w *store.ChildWatch) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case ev, ok := <-w.C():
		if !ok || ev.Type == store.EventSessionExpired {
			return store.ErrSessionExpired
		}
		return nil
	}
}

// claimBatch claims up to max prefix-matching items from the listed
// names. It reads the candidates, then tries to claim them all in one
// atomic delete batch (one store round trip, or one shared group-commit
// slot when routed through a batcher); if a competitor stole any
// candidate first, it falls back to claiming item by item.
func (q *Queue) claimBatch(names []string, max int, commit func(...store.Op) error) ([][]byte, error) {
	type candidate struct {
		path string
		data []byte
	}
	var cands []candidate
	for _, name := range names {
		if len(cands) >= max {
			break
		}
		if !strings.HasPrefix(name, itemPrefix) {
			continue
		}
		itemPath := q.path + "/" + name
		data, _, err := q.cli.Get(itemPath)
		if errors.Is(err, store.ErrNoNode) {
			continue // another consumer won
		}
		if err != nil {
			return nil, fmt.Errorf("queue: get %s: %w", itemPath, err)
		}
		cands = append(cands, candidate{path: itemPath, data: data})
	}
	if len(cands) == 0 {
		return nil, nil
	}
	ops := make([]store.Op, len(cands))
	for i, c := range cands {
		ops[i] = store.DeleteOp(c.path, -1)
	}
	if err := commit(ops...); err == nil {
		out := make([][]byte, len(cands))
		for i, c := range cands {
			out[i] = c.data
		}
		return out, nil
	} else if !errors.Is(err, store.ErrNoNode) {
		return nil, fmt.Errorf("queue: claim batch on %s: %w", q.path, err)
	}
	// At least one candidate was claimed by a competitor, which fails
	// the whole atomic delete; claim the survivors one by one.
	var out [][]byte
	for _, c := range cands {
		err := q.cli.Delete(c.path, -1)
		if errors.Is(err, store.ErrNoNode) {
			continue // lost this one
		}
		if err != nil {
			return nil, fmt.Errorf("queue: claim %s: %w", c.path, err)
		}
		out = append(out, c.data)
	}
	return out, nil
}

// claimFirst walks the sorted item names and attempts to claim each in
// turn; delete-wins arbitration makes this safe under contention.
func (q *Queue) claimFirst(names []string) (bool, []byte, error) {
	for _, name := range names {
		if !strings.HasPrefix(name, itemPrefix) {
			continue
		}
		itemPath := q.path + "/" + name
		data, _, err := q.cli.Get(itemPath)
		if errors.Is(err, store.ErrNoNode) {
			continue // another consumer won
		}
		if err != nil {
			return false, nil, fmt.Errorf("queue: get %s: %w", itemPath, err)
		}
		err = q.cli.Delete(itemPath, -1)
		if errors.Is(err, store.ErrNoNode) {
			continue // lost the race after reading
		}
		if err != nil {
			return false, nil, fmt.Errorf("queue: claim %s: %w", itemPath, err)
		}
		return true, data, nil
	}
	return false, nil, nil
}

// TakeHead blocks until an item is available and returns it WITHOUT
// removing it, along with its znode path. For single-consumer queues
// (TROPIC's inputQ is consumed only by the lead controller): the
// consumer deletes the item atomically with the effects of processing
// it, so a crash between read and processing loses nothing.
func (q *Queue) TakeHead(ctx context.Context) (data []byte, itemPath string, err error) {
	items, err := q.TakeHeadBatch(ctx, 1)
	if err != nil {
		return nil, "", err
	}
	return items[0].Data, items[0].Path, nil
}

// TakeHeadBatch blocks until at least one item is available and returns
// up to max head items WITHOUT removing them, in queue order. It is the
// batched drain of the lead controller's event loop: the controller
// processes the run and deletes each item atomically with the persistent
// effects of handling it, so a crash at any point neither loses nor
// double-applies a message. Like TakeBatch, the wait is watch-driven
// through one reusable child watch.
func (q *Queue) TakeHeadBatch(ctx context.Context, max int) ([]Item, error) {
	if max <= 0 {
		max = 1
	}
	w, err := q.cli.ChildWatch(q.path)
	if err != nil {
		return nil, fmt.Errorf("queue: watch %s: %w", q.path, err)
	}
	defer w.Close()
	for {
		names, err := q.cli.Children(q.path)
		if err != nil {
			return nil, fmt.Errorf("queue: list %s: %w", q.path, err)
		}
		var items []Item
		for _, name := range names {
			if len(items) >= max {
				break
			}
			if !strings.HasPrefix(name, itemPrefix) {
				continue
			}
			p := q.path + "/" + name
			data, _, err := q.cli.Get(p)
			if errors.Is(err, store.ErrNoNode) {
				continue
			}
			if err != nil {
				return nil, err
			}
			items = append(items, Item{Path: p, Data: data})
		}
		if len(items) > 0 {
			return items, nil
		}
		if err := q.wait(ctx, w); err != nil {
			return nil, err
		}
	}
}

// Remove deletes a specific item (by the path TakeHead returned).
func (q *Queue) Remove(itemPath string) error {
	err := q.cli.Delete(itemPath, -1)
	if errors.Is(err, store.ErrNoNode) {
		return nil
	}
	return err
}

// RemoveOp returns the store op deleting a specific item, for atomic
// consume-and-apply batches.
func (q *Queue) RemoveOp(itemPath string) store.Op {
	return store.DeleteOp(itemPath, -1)
}

// Peek returns the head item without removing it, or ok=false when
// empty.
func (q *Queue) Peek() (data []byte, ok bool, err error) {
	names, err := q.cli.Children(q.path)
	if err != nil {
		return nil, false, err
	}
	for _, name := range names {
		if !strings.HasPrefix(name, itemPrefix) {
			continue
		}
		data, _, err := q.cli.Get(q.path + "/" + name)
		if errors.Is(err, store.ErrNoNode) {
			continue
		}
		if err != nil {
			return nil, false, err
		}
		return data, true, nil
	}
	return nil, false, nil
}

// Len reports the number of queued items.
func (q *Queue) Len() (int, error) {
	names, err := q.cli.Children(q.path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, name := range names {
		if strings.HasPrefix(name, itemPrefix) {
			n++
		}
	}
	return n, nil
}
