// Package queue implements distributed FIFO queues on top of the
// coordination store, following the ZooKeeper queue recipe TROPIC uses
// for inputQ and phyQ: each item is a persistent sequence node under the
// queue path, consumers take the lowest-numbered child, and a successful
// delete is what claims the item, so every item is consumed exactly once
// even with many competing consumers.
package queue

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/store"
)

const itemPrefix = "item-"

// Queue is a handle to one distributed FIFO queue. Multiple Queue values
// (across clients) may point at the same path and safely compete.
type Queue struct {
	cli  *store.Client
	path string
}

// New opens (creating if needed) the queue rooted at path.
func New(cli *store.Client, path string) (*Queue, error) {
	if err := cli.EnsurePath(path); err != nil {
		return nil, fmt.Errorf("queue: ensure %s: %w", path, err)
	}
	return &Queue{cli: cli, path: path}, nil
}

// Path returns the queue's znode path.
func (q *Queue) Path() string { return q.path }

// Put appends an item and returns its absolute znode path.
func (q *Queue) Put(data []byte) (string, error) {
	p, err := q.cli.Create(q.path+"/"+itemPrefix, data, store.FlagSequence)
	if err != nil {
		return "", fmt.Errorf("queue: put on %s: %w", q.path, err)
	}
	return p, nil
}

// PutOp returns the store operation that appends an item, for inclusion
// in an atomic Multi batch (e.g. enqueue to phyQ and update transaction
// state in one commit).
func (q *Queue) PutOp(data []byte) store.Op {
	return store.CreateOp(q.path+"/"+itemPrefix, data, store.FlagSequence)
}

// TryTake removes and returns the head item, or ok=false when the queue
// is empty.
func (q *Queue) TryTake() (data []byte, ok bool, err error) {
	for {
		names, err := q.cli.Children(q.path)
		if err != nil {
			return nil, false, fmt.Errorf("queue: list %s: %w", q.path, err)
		}
		claimed, data, err := q.claimFirst(names)
		if err != nil {
			return nil, false, err
		}
		if claimed {
			return data, true, nil
		}
		if len(names) == 0 {
			return nil, false, nil
		}
		// Every listed item was claimed by a competitor; re-list.
	}
}

// Take blocks until an item is available or ctx is done.
func (q *Queue) Take(ctx context.Context) ([]byte, error) {
	for {
		names, watch, err := q.cli.ChildrenW(q.path)
		if err != nil {
			return nil, fmt.Errorf("queue: list %s: %w", q.path, err)
		}
		claimed, data, err := q.claimFirst(names)
		if err != nil {
			return nil, err
		}
		if claimed {
			return data, nil
		}
		if len(names) > 0 {
			// Lost every race; spin again without waiting.
			continue
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case ev := <-watch:
			if ev.Type == store.EventSessionExpired {
				return nil, store.ErrSessionExpired
			}
		}
	}
}

// claimFirst walks the sorted item names and attempts to claim each in
// turn; delete-wins arbitration makes this safe under contention.
func (q *Queue) claimFirst(names []string) (bool, []byte, error) {
	for _, name := range names {
		if !strings.HasPrefix(name, itemPrefix) {
			continue
		}
		itemPath := q.path + "/" + name
		data, _, err := q.cli.Get(itemPath)
		if errors.Is(err, store.ErrNoNode) {
			continue // another consumer won
		}
		if err != nil {
			return false, nil, fmt.Errorf("queue: get %s: %w", itemPath, err)
		}
		err = q.cli.Delete(itemPath, -1)
		if errors.Is(err, store.ErrNoNode) {
			continue // lost the race after reading
		}
		if err != nil {
			return false, nil, fmt.Errorf("queue: claim %s: %w", itemPath, err)
		}
		return true, data, nil
	}
	return false, nil, nil
}

// TakeHead blocks until an item is available and returns it WITHOUT
// removing it, along with its znode path. For single-consumer queues
// (TROPIC's inputQ is consumed only by the lead controller): the
// consumer deletes the item atomically with the effects of processing
// it, so a crash between read and processing loses nothing.
func (q *Queue) TakeHead(ctx context.Context) (data []byte, itemPath string, err error) {
	for {
		names, watch, err := q.cli.ChildrenW(q.path)
		if err != nil {
			return nil, "", fmt.Errorf("queue: list %s: %w", q.path, err)
		}
		for _, name := range names {
			if !strings.HasPrefix(name, itemPrefix) {
				continue
			}
			p := q.path + "/" + name
			data, _, err := q.cli.Get(p)
			if errors.Is(err, store.ErrNoNode) {
				continue
			}
			if err != nil {
				return nil, "", err
			}
			return data, p, nil
		}
		select {
		case <-ctx.Done():
			return nil, "", ctx.Err()
		case ev := <-watch:
			if ev.Type == store.EventSessionExpired {
				return nil, "", store.ErrSessionExpired
			}
		}
	}
}

// Remove deletes a specific item (by the path TakeHead returned).
func (q *Queue) Remove(itemPath string) error {
	err := q.cli.Delete(itemPath, -1)
	if errors.Is(err, store.ErrNoNode) {
		return nil
	}
	return err
}

// RemoveOp returns the store op deleting a specific item, for atomic
// consume-and-apply batches.
func (q *Queue) RemoveOp(itemPath string) store.Op {
	return store.DeleteOp(itemPath, -1)
}

// Peek returns the head item without removing it, or ok=false when
// empty.
func (q *Queue) Peek() (data []byte, ok bool, err error) {
	names, err := q.cli.Children(q.path)
	if err != nil {
		return nil, false, err
	}
	for _, name := range names {
		if !strings.HasPrefix(name, itemPrefix) {
			continue
		}
		data, _, err := q.cli.Get(q.path + "/" + name)
		if errors.Is(err, store.ErrNoNode) {
			continue
		}
		if err != nil {
			return nil, false, err
		}
		return data, true, nil
	}
	return nil, false, nil
}

// Len reports the number of queued items.
func (q *Queue) Len() (int, error) {
	names, err := q.cli.Children(q.path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, name := range names {
		if strings.HasPrefix(name, itemPrefix) {
			n++
		}
	}
	return n, nil
}
