package exp

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/device"
	"repro/internal/workload"
	"repro/tcloud"
	"repro/tropic"
)

// --- §6.2 Safety: constraint-enforcement overhead ----------------------

// SafetyParams drives the constraint-overhead experiment.
type SafetyParams struct {
	Hosts int
	Ops   int
	Seed  int64
}

// SafetyResult reports the per-transaction cost of enforcing the two
// TCloud constraints (VM type and VM memory) in the logical layer. The
// paper reports < 10ms per transaction.
type SafetyResult struct {
	Txns               int
	MeanConstraintTime time.Duration
	TotalConstraint    time.Duration
	Violations         int64
}

// Safety replays a hosting workload (spawn/start/stop/migrate mix) and
// measures time spent in constraint checks per transaction.
func Safety(ctx context.Context, p SafetyParams) (SafetyResult, error) {
	if p.Hosts <= 0 {
		p.Hosts = 50
	}
	if p.Ops <= 0 {
		p.Ops = 500
	}
	env, err := Start(ctx, PlatformParams{
		Topology:    tcloud.Topology{ComputeHosts: p.Hosts},
		LogicalOnly: true,
	})
	if err != nil {
		return SafetyResult{}, err
	}
	defer env.Stop()

	gen := workload.NewHostingGen(tcloud.Topology{ComputeHosts: p.Hosts}, workload.DefaultHostingMix(), p.Seed)
	ops := gen.Generate(p.Ops)
	if _, _, err := runOps(ctx, env.Platform, ops, 32); err != nil {
		return SafetyResult{}, err
	}
	st := env.Platform.ControllerStats()
	n := int(st.Accepted)
	if n == 0 {
		return SafetyResult{}, fmt.Errorf("no transactions accepted")
	}
	return SafetyResult{
		Txns:               n,
		MeanConstraintTime: time.Duration(st.ConstraintNanos / int64(n)),
		TotalConstraint:    time.Duration(st.ConstraintNanos),
		Violations:         st.Violations,
	}, nil
}

// --- §6.3 Robustness: rollback overhead --------------------------------

// RobustnessParams drives the error-injection experiment.
type RobustnessParams struct {
	Hosts int
	Ops   int
	Seed  int64
}

// RobustnessResult reports the logical-layer rollback cost when
// transactions fail in their last physical action. The paper reports
// < 9ms per transaction.
type RobustnessResult struct {
	Aborted          int64
	MeanRollbackTime time.Duration
	// SpawnErrors and MigrateErrors count the two injected scenarios.
	SpawnErrors, MigrateErrors int
}

// Robustness runs spawn and migrate transactions whose *last* physical
// action fails (the paper's two error scenarios: VM spawning error and
// VM migration error) and measures the logical rollback overhead.
func Robustness(ctx context.Context, p RobustnessParams) (RobustnessResult, error) {
	if p.Hosts <= 0 {
		p.Hosts = 8
	}
	if p.Ops <= 0 {
		p.Ops = 100
	}
	env, err := Start(ctx, PlatformParams{
		Topology: tcloud.Topology{ComputeHosts: p.Hosts},
	})
	if err != nil {
		return RobustnessResult{}, err
	}
	defer env.Stop()

	// Fail the last step of each scenario deterministically.
	inj := device.NewInjector(p.Seed)
	inj.Add(device.FaultRule{Action: "startVM", Err: "injected spawn error"})
	inj.Add(device.FaultRule{Action: "migrateVM", Err: "injected migrate error"})
	env.Cloud.SetFaultInjector(inj)

	cli := env.Platform.Client()
	defer cli.Close()
	res := RobustnessResult{}
	for i := 0; i < p.Ops; i++ {
		host := i % p.Hosts
		if i%2 == 0 {
			// Spawn that fails at startVM (record #5 of Table 1).
			rec, err := cli.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
				tcloud.StorageHostPath(host/4), tcloud.ComputeHostPath(host),
				fmt.Sprintf("rvm%05d", i), "1024")
			if err != nil {
				return res, err
			}
			if rec.State != tropic.StateAborted {
				return res, fmt.Errorf("spawn %d: state %s, want aborted", i, rec.State)
			}
			res.SpawnErrors++
		} else {
			// Spawn a VM cleanly (suspend injection), then migrate it;
			// the migrate's only action fails.
			inj.Clear()
			name := fmt.Sprintf("mvm%05d", i)
			rec, err := cli.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
				tcloud.StorageHostPath(host/4), tcloud.ComputeHostPath(host), name, "1024")
			if err != nil || rec.State != tropic.StateCommitted {
				return res, fmt.Errorf("setup spawn %d: %v %v", i, rec, err)
			}
			inj.Add(device.FaultRule{Action: "migrateVM", Err: "injected migrate error"})
			dst := (host + 1) % p.Hosts
			rec, err = cli.SubmitAndWait(ctx, tcloud.ProcMigrateVM,
				tcloud.ComputeHostPath(host), name, tcloud.ComputeHostPath(dst))
			if err != nil {
				return res, err
			}
			if rec.State != tropic.StateAborted {
				return res, fmt.Errorf("migrate %d: state %s, want aborted", i, rec.State)
			}
			res.MigrateErrors++
			// Clean up so hosts don't fill.
			inj.Clear()
			if _, err := cli.SubmitAndWait(ctx, tcloud.ProcDestroyVM,
				tcloud.ComputeHostPath(host), name, tcloud.StorageHostPath(host/4)); err != nil {
				return res, err
			}
			inj.Add(device.FaultRule{Action: "startVM", Err: "injected spawn error"})
			inj.Add(device.FaultRule{Action: "migrateVM", Err: "injected migrate error"})
		}
	}
	st := env.Platform.ControllerStats()
	res.Aborted = st.Aborted
	if st.Rollbacks > 0 {
		res.MeanRollbackTime = time.Duration(st.RollbackNanos / st.Rollbacks)
	}
	return res, nil
}

// --- §6.4 High availability: failover ----------------------------------

// HAParams drives the failover experiment.
type HAParams struct {
	Hosts          int
	OpsBeforeKill  int
	OpsDuringKill  int
	SessionTimeout time.Duration
	Seed           int64
}

// HAResult reports failover behavior: recovery time (dominated by the
// failure-detection interval) and whether any transaction was lost. The
// paper reports recovery within 12.5s — their ZooKeeper session
// timeout — and zero lost transactions.
type HAResult struct {
	SessionTimeout time.Duration
	RecoveryTime   time.Duration
	Submitted      int
	Terminal       int
	Committed      int
	Lost           int
}

// HA kills the lead controller mid-workload and verifies that a
// follower resumes every outstanding transaction.
func HA(ctx context.Context, p HAParams) (HAResult, error) {
	if p.Hosts <= 0 {
		p.Hosts = 16
	}
	if p.OpsBeforeKill <= 0 {
		p.OpsBeforeKill = 24
	}
	if p.OpsDuringKill <= 0 {
		p.OpsDuringKill = 8
	}
	if p.SessionTimeout <= 0 {
		p.SessionTimeout = 150 * time.Millisecond
	}
	env, err := Start(ctx, PlatformParams{
		Topology:       tcloud.Topology{ComputeHosts: p.Hosts},
		SessionTimeout: p.SessionTimeout,
		ActionLatency:  2 * time.Millisecond,
	})
	if err != nil {
		return HAResult{}, err
	}
	defer env.Stop()
	pl := env.Platform
	cli := pl.Client()
	defer cli.Close()

	res := HAResult{SessionTimeout: p.SessionTimeout}
	var ids []string
	submit := func(i int, tag string) error {
		host := i % p.Hosts
		id, err := cli.Submit(tcloud.ProcSpawnVM,
			tcloud.StorageHostPath(host/4), tcloud.ComputeHostPath(host),
			fmt.Sprintf("%s%05d", tag, i), "1024")
		if err != nil {
			return err
		}
		ids = append(ids, id)
		return nil
	}
	for i := 0; i < p.OpsBeforeKill; i++ {
		if err := submit(i, "pre"); err != nil {
			return res, err
		}
	}
	time.Sleep(10 * time.Millisecond) // let some reach the physical layer
	killedAt := time.Now()
	if pl.KillLeader() == "" {
		return res, fmt.Errorf("no leader to kill")
	}
	for i := 0; i < p.OpsDuringKill; i++ {
		if err := submit(i, "dur"); err != nil {
			return res, err
		}
	}
	if err := pl.WaitLeader(ctx); err != nil {
		return res, err
	}
	res.RecoveryTime = time.Since(killedAt)
	res.Submitted = len(ids)
	for _, id := range ids {
		rec, err := cli.Wait(ctx, id)
		if err != nil {
			return res, err
		}
		if rec.State.Terminal() {
			res.Terminal++
		}
		if rec.State == tropic.StateCommitted {
			res.Committed++
		}
	}
	res.Lost = res.Submitted - res.Terminal
	return res, nil
}

// --- §6.1 Throughput scaling -------------------------------------------

// ThroughputPoint is one sweep measurement.
type ThroughputPoint struct {
	Hosts     int
	Txns      int
	Duration  time.Duration
	PerSecond float64
}

// Throughput measures committed transactions per second while the
// resource scale grows, reproducing the §6.1 finding that throughput
// stays roughly constant as resources and transactions increase (the
// bottleneck is store I/O, not model size).
func Throughput(ctx context.Context, hostCounts []int, txns int, commitLatency time.Duration) ([]ThroughputPoint, error) {
	if len(hostCounts) == 0 {
		hostCounts = []int{100, 1000, 10000}
	}
	if txns <= 0 {
		txns = 200
	}
	var out []ThroughputPoint
	for _, hosts := range hostCounts {
		env, err := Start(ctx, PlatformParams{
			Topology:      tcloud.Topology{ComputeHosts: hosts},
			LogicalOnly:   true,
			CommitLatency: commitLatency,
		})
		if err != nil {
			return out, err
		}
		ops := make([]workload.Op, txns)
		for i := range ops {
			host := i % hosts
			ops[i] = workload.Op{Proc: tcloud.ProcSpawnVM, Args: []string{
				tcloud.StorageHostPath(host / 4), tcloud.ComputeHostPath(host),
				fmt.Sprintf("tvm%06d", i), "1024",
			}}
		}
		begin := time.Now()
		_, states, err := runOps(ctx, env.Platform, ops, 64)
		dur := time.Since(begin)
		env.Stop()
		if err != nil {
			return out, err
		}
		if states[tropic.StateCommitted] != txns {
			return out, fmt.Errorf("hosts=%d: %d/%d committed", hosts, states[tropic.StateCommitted], txns)
		}
		out = append(out, ThroughputPoint{
			Hosts: hosts, Txns: txns, Duration: dur,
			PerSecond: float64(txns) / dur.Seconds(),
		})
	}
	return out, nil
}

// --- §6.1 Memory footprint ----------------------------------------------

// MemoryPoint reports model memory at one scale.
type MemoryPoint struct {
	Hosts          int
	VMSlots        int
	ModelNodes     int
	HeapBytes      uint64
	BytesPerSlot   float64
	Projected2MVMs float64 // GB projected at the paper's 2M-VM ceiling
}

// Memory measures the logical data model's heap footprint as the
// resource count scales — the §6.1 observation that memory tracks the
// quantity of managed resources, not the active workload, with a 2M-VM
// ceiling on the paper's 32GB machines.
func Memory(hostCounts []int) []MemoryPoint {
	if len(hostCounts) == 0 {
		hostCounts = []int{1250, 12500}
	}
	var out []MemoryPoint
	for _, hosts := range hostCounts {
		// Incremental measurement: hold one tree, then add copies and
		// divide the heap delta by the copy count. Both readings are
		// post-GC with live trees, so unrelated garbage collected in
		// between cannot skew (or underflow) the difference.
		const copies = 4
		first := tcloud.Topology{ComputeHosts: hosts}.BuildModel()
		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		extra := make([]any, 0, copies)
		for i := 0; i < copies; i++ {
			extra = append(extra, tcloud.Topology{ComputeHosts: hosts}.BuildModel())
		}
		runtime.GC()
		var m2 runtime.MemStats
		runtime.ReadMemStats(&m2)
		heap := uint64(0)
		if m2.HeapAlloc > m1.HeapAlloc {
			heap = (m2.HeapAlloc - m1.HeapAlloc) / copies
		}
		slots := hosts * 8
		bps := float64(heap) / float64(slots)
		out = append(out, MemoryPoint{
			Hosts:          hosts,
			VMSlots:        slots,
			ModelNodes:     first.Size(),
			HeapBytes:      heap,
			BytesPerSlot:   bps,
			Projected2MVMs: bps * 2e6 / 1e9,
		})
		runtime.KeepAlive(first)
		runtime.KeepAlive(extra)
	}
	return out
}
