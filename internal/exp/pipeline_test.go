package exp

import (
	"context"
	"testing"
	"time"
)

// TestPipelineSmoke runs a miniature pipeline point at both ends of the
// ablation axis: everything commits, the batched run records grouped
// flushes, and flush latency stays under the BatchMaxDelay ceiling.
func TestPipelineSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, batch := range []int{1, 8} {
		res, err := Pipeline(ctx, PipelineParams{
			Hosts: 8, Txns: 32, Inflight: 16, BatchMaxOps: batch,
			CommitLatency: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != 32 {
			t.Fatalf("batch=%d: committed %d of 32", batch, res.Committed)
		}
		if res.PerSecond <= 0 || res.StoreCommits <= 0 {
			t.Fatalf("batch=%d: degenerate result %+v", batch, res)
		}
		if batch == 1 && res.InBatches != 0 {
			t.Fatalf("unbatched run recorded %d drain batches", res.InBatches)
		}
		if batch > 1 {
			if res.Flushes == 0 || res.InBatches == 0 {
				t.Fatalf("batched run recorded no grouped activity: %+v", res)
			}
			if res.MeanFlushMs > 2 {
				t.Fatalf("mean flush %.2fms exceeds the 2ms BatchMaxDelay ceiling", res.MeanFlushMs)
			}
		}
	}
}
