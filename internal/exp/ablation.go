package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/workload"
	"repro/tcloud"
	"repro/tropic"
)

// AblationParams drives the scheduling-policy ablation: the §3.1.1
// design-choice study the paper leaves as future work. The workload
// interleaves transactions that all contend on one host with
// transactions on otherwise-idle hosts; FIFO head-of-line blocks the
// independent work behind each conflict, the aggressive policy does
// not.
type AblationParams struct {
	// Hosts is the number of compute hosts (>= 2).
	Hosts int
	// Txns is the total transaction count (half contended, half
	// independent).
	Txns int
	// ActionLatency stretches physical execution so conflicts actually
	// overlap.
	ActionLatency time.Duration
}

// AblationResult compares one policy's run.
type AblationResult struct {
	Policy string
	// Makespan is the full-batch completion time (dominated by the
	// contended chain under both policies).
	Makespan time.Duration
	// IndependentLatency is the mean latency of the *uncontended*
	// transactions — the quantity head-of-line blocking hurts.
	IndependentLatency time.Duration
	Deferrals          int64
	Committed          int64
}

// Ablation runs the same contended workload under both scheduling
// policies and reports makespan and deferral counts.
func Ablation(ctx context.Context, p AblationParams) ([]AblationResult, error) {
	if p.Hosts < 2 {
		p.Hosts = 8
	}
	if p.Txns <= 0 {
		p.Txns = 32
	}
	if p.ActionLatency <= 0 {
		p.ActionLatency = 5 * time.Millisecond
	}
	var out []AblationResult
	for _, pol := range []struct {
		name   string
		policy controller.SchedulingPolicy
	}{
		{"fifo", controller.ScheduleFIFO},
		{"aggressive", controller.ScheduleAggressive},
	} {
		res, err := ablationRun(ctx, p, pol.policy)
		if err != nil {
			return out, fmt.Errorf("%s: %w", pol.name, err)
		}
		res.Policy = pol.name
		out = append(out, res)
	}
	return out, nil
}

func ablationRun(ctx context.Context, p AblationParams, policy controller.SchedulingPolicy) (AblationResult, error) {
	// One storage server per compute host, so the odd ("independent")
	// transactions share nothing with the contended host-0 stream.
	tp := tcloud.Topology{
		ComputeHosts: p.Hosts, ComputePerStorage: 1,
		HostMemMB: 1 << 30, StorageCapGB: 1 << 30,
	}
	cfg := tropic.Config{
		Schema:     tcloud.NewSchema(),
		Procedures: tcloud.Procedures(),
		Bootstrap:  tp.BuildModel(),
		Executor:   tropic.NoopExecutor{Latency: p.ActionLatency},
		Policy:     policy,
	}
	pl, err := tropic.New(cfg)
	if err != nil {
		return AblationResult{}, err
	}
	if err := pl.Start(ctx); err != nil {
		pl.Stop()
		return AblationResult{}, err
	}
	defer pl.Stop()

	// Interleave: even transactions pile onto host 0, odd ones spread
	// across the remaining hosts with disjoint storage.
	type slot struct {
		op          workload.Op
		independent bool
	}
	slots := make([]slot, p.Txns)
	for i := range slots {
		host := 0
		if i%2 == 1 {
			host = 1 + (i/2)%(p.Hosts-1)
		}
		slots[i] = slot{
			op: workload.Op{Proc: tcloud.ProcSpawnVM, Args: []string{
				tcloud.StorageHostPath(tp.StorageFor(host)),
				tcloud.ComputeHostPath(host),
				fmt.Sprintf("ab%04d", i), "1024",
			}},
			independent: host != 0,
		}
	}
	begin := time.Now()
	cli := pl.Client()
	defer cli.Close()
	// Submit everything up front (the contention scenario), then wait.
	ids := make([]string, len(slots))
	for i, s := range slots {
		id, err := cli.Submit(s.op.Proc, s.op.Args...)
		if err != nil {
			return AblationResult{}, err
		}
		ids[i] = id
	}
	res := AblationResult{}
	var indepSum time.Duration
	indepN := 0
	for i, id := range ids {
		rec, err := cli.Wait(ctx, id)
		if err != nil {
			return AblationResult{}, err
		}
		if rec.State == tropic.StateCommitted {
			res.Committed++
		}
		if slots[i].independent {
			indepSum += rec.Latency()
			indepN++
		}
	}
	res.Makespan = time.Since(begin)
	if indepN > 0 {
		res.IndependentLatency = indepSum / time.Duration(indepN)
	}
	res.Deferrals = pl.ControllerStats().Deferrals
	return res, nil
}
