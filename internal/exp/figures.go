package exp

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/txn"
	"repro/internal/workload"
	"repro/tcloud"
	"repro/tropic"
)

// --- Table 1 ----------------------------------------------------------

// Table1Result is the spawnVM execution log.
type Table1Result struct {
	Records []txn.LogRecord
}

// Table1 runs one spawnVM transaction end to end and returns its
// execution log — the exact five rows of the paper's Table 1.
func Table1(ctx context.Context) (Table1Result, error) {
	env, err := Start(ctx, PlatformParams{
		Topology: tcloud.Topology{ComputeHosts: 1},
	})
	if err != nil {
		return Table1Result{}, err
	}
	defer env.Stop()
	cli := env.Platform.Client()
	defer cli.Close()
	rec, err := cli.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
		tcloud.StorageHostPath(0), tcloud.ComputeHostPath(0), "vmName", "1024")
	if err != nil {
		return Table1Result{}, err
	}
	if rec.State != tropic.StateCommitted {
		return Table1Result{}, fmt.Errorf("spawnVM did not commit: %s (%s)", rec.State, rec.Error)
	}
	return Table1Result{Records: rec.Log}, nil
}

// FormatTable1 renders the log like the paper's Table 1.
func FormatTable1(r Table1Result) string {
	out := fmt.Sprintf("%-5s %-30s %-14s %-34s %-14s %s\n",
		"log#", "resource object path", "action", "args", "undo action", "undo args")
	for _, rec := range r.Records {
		out += fmt.Sprintf("%-5d %-30s %-14s %-34s %-14s [%s]\n",
			rec.Seq, rec.Path, rec.Action,
			"["+strings.Join(rec.Args, ", ")+"]",
			rec.Undo, strings.Join(rec.UndoArgs, ", "))
	}
	return out
}

// --- Figure 3 ---------------------------------------------------------

// Fig3Result is the EC2 workload series.
type Fig3Result struct {
	Trace workload.EC2Trace
	// PerMinute is the per-minute average launch rate, the plottable
	// downsampling of the per-second series.
	PerMinute []float64
}

// Fig3 synthesizes the EC2 workload (VMs launched per second over one
// hour).
func Fig3(seed int64) Fig3Result {
	tr := workload.GenerateEC2Trace(seed)
	perMin := make([]float64, 0, 60)
	for m := 0; m < len(tr.PerSecond)/60; m++ {
		sum := 0
		for s := 0; s < 60; s++ {
			sum += tr.PerSecond[m*60+s]
		}
		perMin = append(perMin, float64(sum)/60)
	}
	return Fig3Result{Trace: tr, PerMinute: perMin}
}

// --- Figures 4 & 5 ----------------------------------------------------

// Fig45Params drives the EC2 replay experiments.
type Fig45Params struct {
	// Multipliers are the load scale factors (paper: 1×–5×).
	Multipliers []int
	// Hosts is the compute-server count (paper: 12,500 → 100k VMs).
	Hosts int
	// WindowFrom/WindowTo select trace seconds to replay (the full
	// hour is [0, 3600); benchmarks replay a window around the peak).
	WindowFrom, WindowTo int
	// Compression divides the timeline: 60 replays each trace minute in
	// one second.
	Compression float64
	// CommitLatency models the store quorum round.
	CommitLatency time.Duration
	// Seed fixes the trace.
	Seed int64
}

func (p Fig45Params) withDefaults() Fig45Params {
	if len(p.Multipliers) == 0 {
		p.Multipliers = []int{1, 2, 3, 4, 5}
	}
	if p.Hosts <= 0 {
		p.Hosts = 12500
	}
	if p.WindowTo <= p.WindowFrom {
		p.WindowFrom, p.WindowTo = 0, workload.EC2TraceSeconds
	}
	if p.Compression <= 0 {
		p.Compression = 1
	}
	if p.Seed == 0 {
		p.Seed = 2011
	}
	return p
}

// Fig45Result carries one multiplier's measurements: the CPU-utilization
// series (Figure 4) and the transaction latency distribution (Figure 5).
type Fig45Result struct {
	Multiplier int
	// CPUSeries is the controller busy fraction per replayed-second
	// bucket (0..1).
	CPUSeries []float64
	// PeakCPU is the series maximum.
	PeakCPU float64
	// MeanCPU is the series average.
	MeanCPU float64
	// Latency is the per-transaction latency histogram.
	Latency *metrics.Histogram
	// Submitted and Committed count transactions.
	Submitted, Committed int
}

// Fig45 replays the (windowed, compressed) EC2 trace at each multiplier
// against a logical-only platform of the configured size, measuring
// controller utilization and per-transaction latency. One fresh
// platform per multiplier, as in the paper's runs.
func Fig45(ctx context.Context, p Fig45Params) ([]Fig45Result, error) {
	p = p.withDefaults()
	trace := workload.GenerateEC2Trace(p.Seed).Window(p.WindowFrom, p.WindowTo)
	var results []Fig45Result
	for _, mult := range p.Multipliers {
		r, err := fig45Run(ctx, p, trace.Scale(mult), mult)
		if err != nil {
			return results, fmt.Errorf("multiplier %d: %w", mult, err)
		}
		results = append(results, r)
	}
	return results, nil
}

func fig45Run(ctx context.Context, p Fig45Params, trace workload.EC2Trace, mult int) (Fig45Result, error) {
	env, err := Start(ctx, PlatformParams{
		Topology:      tcloud.Topology{ComputeHosts: p.Hosts},
		LogicalOnly:   true,
		CommitLatency: p.CommitLatency,
		// Failure detection is not under test here, and compressed
		// replays saturate the (possibly single-core) machine; a
		// generous timeout keeps heartbeat starvation from expiring
		// sessions mid-experiment.
		SessionTimeout: 30 * time.Second,
	})
	if err != nil {
		return Fig45Result{}, err
	}
	defer env.Stop()
	pl := env.Platform
	cli := pl.Client()
	defer cli.Close()

	secondDur := time.Duration(float64(time.Second) / p.Compression)
	start := time.Now()

	// Sample the leader's busy counter once per replayed second.
	cpu := metrics.NewTimeSeries(start, secondDur)
	stopSampling := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		meter := metrics.NewBusyMeter(time.Now(), pl.ControllerStats().BusyNanos)
		tick := time.NewTicker(secondDur)
		defer tick.Stop()
		for {
			select {
			case <-stopSampling:
				return
			case now := <-tick.C:
				cpu.Add(now, meter.Sample(now, pl.ControllerStats().BusyNanos))
			}
		}
	}()

	lat := metrics.NewHistogram()
	var mu sync.Mutex
	committed := 0
	var wg sync.WaitGroup
	vmSeq := 0
	submitted := 0

	// Replay: second s's spawns are submitted at start + s*secondDur.
	for s, count := range trace.PerSecond {
		if count == 0 {
			continue
		}
		target := start.Add(time.Duration(s) * secondDur)
		if d := time.Until(target); d > 0 {
			select {
			case <-ctx.Done():
				return Fig45Result{}, ctx.Err()
			case <-time.After(d):
			}
		}
		for i := 0; i < count; i++ {
			host := vmSeq % p.Hosts
			name := fmt.Sprintf("vm%07d", vmSeq)
			vmSeq++
			id, err := cli.Submit(tcloud.ProcSpawnVM,
				tcloud.StorageHostPath(host/4), tcloud.ComputeHostPath(host), name, "1024")
			if err != nil {
				return Fig45Result{}, err
			}
			submitted++
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				rec, err := cli.Wait(ctx, id)
				if err != nil {
					return
				}
				lat.ObserveDuration(rec.Latency())
				if rec.State == tropic.StateCommitted {
					mu.Lock()
					committed++
					mu.Unlock()
				}
			}(id)
		}
	}
	wg.Wait()
	close(stopSampling)
	samplerWG.Wait()

	series := cpu.Values()
	res := Fig45Result{
		Multiplier: mult,
		CPUSeries:  series,
		Latency:    lat,
		Submitted:  submitted,
		Committed:  committed,
	}
	var sum float64
	for _, v := range series {
		if v > res.PeakCPU {
			res.PeakCPU = v
		}
		sum += v
	}
	if len(series) > 0 {
		res.MeanCPU = sum / float64(len(series))
	}
	return res, nil
}
