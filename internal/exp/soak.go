package exp

import (
	"bufio"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/tcloud"
	"repro/tropic"
	"repro/tropic/trerr"
)

// SoakParams drives the sustained-overload experiment: many more
// concurrent submitters than the admission watermark allows, so the
// gateway must shed (api.overloaded) while the pipeline keeps draining.
// The run gates on the three properties admission control exists to
// protect — bounded submit latency, bounded queue depth, and no
// transaction left stuck — plus the observability contract that every
// shed is visible in the exported metrics.
type SoakParams struct {
	// Shards is the partition count under load (default 2).
	Shards int
	// Hosts sizes the logical-only topology (default 64).
	Hosts int
	// Txns is how many transactions must be accepted AND reach a
	// terminal state (default 512). Shed submissions are retried with
	// backoff until accepted, so the load offered exceeds this.
	Txns int
	// Submitters is the concurrent client count (default 64). It must
	// exceed MaxInflightPerShard for the run to actually overload.
	Submitters int
	// MaxInflightPerShard is the admission watermark under test
	// (default 8 — far below Submitters, so shedding is guaranteed).
	MaxInflightPerShard int
	// CommitLatency simulates one store quorum round (default 200µs).
	CommitLatency time.Duration
	// BatchMaxOps sizes group commits (default 8).
	BatchMaxOps int
	// Backoff is the base retry delay after a shed (default 500µs);
	// each consecutive shed of the same op doubles it up to 16x.
	Backoff time.Duration
	// MaxP99Ms is the latency gate: p99 submit→terminal latency of
	// accepted transactions must stay under this (default 5000ms —
	// generous for CI machines; the point is "bounded", not "fast").
	MaxP99Ms float64
}

func (p SoakParams) withDefaults() SoakParams {
	if p.Shards <= 0 {
		p.Shards = 2
	}
	if p.Hosts <= 0 {
		p.Hosts = 64
	}
	if p.Txns <= 0 {
		p.Txns = 512
	}
	if p.Submitters <= 0 {
		p.Submitters = 64
	}
	if p.MaxInflightPerShard <= 0 {
		p.MaxInflightPerShard = 8
	}
	if p.CommitLatency == 0 {
		p.CommitLatency = 200 * time.Microsecond
	}
	if p.BatchMaxOps <= 0 {
		p.BatchMaxOps = 8
	}
	if p.Backoff <= 0 {
		p.Backoff = 500 * time.Microsecond
	}
	if p.MaxP99Ms <= 0 {
		p.MaxP99Ms = 5000
	}
	return p
}

// SoakResult reports one soak run and its gate verdicts.
type SoakResult struct {
	// Shards and Watermark echo the configuration under test.
	Shards    int `json:"shards"`
	Watermark int `json:"watermark"`
	// Txns, Committed, OtherTerminal count accepted transactions by
	// final state; Stuck counts accepted submissions that never
	// reached an observed terminal state (gate: zero).
	Txns          int `json:"txns"`
	Committed     int `json:"committed"`
	OtherTerminal int `json:"otherTerminal"`
	Stuck         int `json:"stuck"`
	// Sheds counts api.overloaded rejections observed by clients;
	// ShedsExported is the tropic_admission_shed_total sum scraped
	// from the platform registry (gate: both nonzero, and the
	// exported count covers every client-observed shed).
	Sheds         int64   `json:"sheds"`
	ShedsExported float64 `json:"shedsExported"`
	// MaxBacklog is the peak sampled per-shard backlog
	// (inputq+todoq+phyq); DepthBound is the gate ceiling
	// (watermark + submitters: each admitted submitter may add one
	// item past a stale admission sample).
	MaxBacklog int64 `json:"maxBacklog"`
	DepthBound int64 `json:"depthBound"`
	// Elapsed and PerSecond measure accepted-transaction throughput
	// under overload.
	Elapsed   time.Duration `json:"elapsedNanos"`
	PerSecond float64       `json:"perSecond"`
	// MeanLatencyMs and P99LatencyMs are accepted-transaction
	// submit→terminal latencies; MaxP99Ms is the gate.
	MeanLatencyMs float64 `json:"meanLatencyMs"`
	P99LatencyMs  float64 `json:"p99LatencyMs"`
	MaxP99Ms      float64 `json:"maxP99Ms"`
	// Pass is the overall gate verdict; Failures lists each gate that
	// failed, in human-readable form.
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// Soak drives sustained overload through the admission-controlled
// gateway and evaluates the gates. A failed gate is reported in the
// result, not as an error; the error return is for runs that could not
// execute at all.
func Soak(ctx context.Context, p SoakParams) (SoakResult, error) {
	p = p.withDefaults()
	env, err := Start(ctx, PlatformParams{
		Topology: tcloud.Topology{
			ComputeHosts:      p.Hosts,
			ComputePerStorage: 1,
			StorageCapGB:      1 << 20,
			HostMemMB:         1 << 20,
		},
		LogicalOnly:         true,
		SessionTimeout:      2 * time.Second,
		CommitLatency:       p.CommitLatency,
		BatchMaxOps:         p.BatchMaxOps,
		Shards:              p.Shards,
		Controllers:         1,
		MaxInflightPerShard: p.MaxInflightPerShard,
	})
	if err != nil {
		return SoakResult{}, err
	}
	defer env.Stop()
	pl := env.Platform

	ops, _, err := shardLocalSpawnOps(pl, p.Hosts, p.Txns)
	if err != nil {
		return SoakResult{}, err
	}

	// Depth sampler: the queue-depth gate is evaluated against the
	// peak per-shard backlog observed while load is offered.
	var maxBacklog int64
	sampleDone := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleDone:
				return
			case <-tick.C:
				for i := 0; i < pl.NumShards(); i++ {
					d := pl.ShardQueueDepths(i)
					maxBacklogRaise(&maxBacklog, d.InQ+d.TodoQ+d.PhyQ)
				}
			}
		}
	}()

	var (
		sheds    int64
		stuck    int64
		mu       sync.Mutex
		states   = make(map[tropic.State]int)
		lat      = metrics.NewHistogram()
		work     = make(chan workload.Op)
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	cli := pl.Client()
	defer cli.Close()

	start := time.Now()
	for s := 0; s < p.Submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range work {
				backoff := p.Backoff
				for {
					rec, err := cli.SubmitAndWait(ctx, op.Proc, op.Args...)
					if err == nil {
						mu.Lock()
						states[rec.State]++
						mu.Unlock()
						lat.ObserveDuration(rec.Latency())
						break
					}
					if trerr.CodeOf(err) == trerr.APIOverloaded {
						atomic.AddInt64(&sheds, 1)
						select {
						case <-ctx.Done():
							atomic.AddInt64(&stuck, 1)
							return
						case <-time.After(backoff):
						}
						if backoff < 16*p.Backoff {
							backoff *= 2
						}
						continue
					}
					if ctx.Err() != nil {
						// Accepted but never observed terminal before
						// the deadline: the stuck gate's quarry.
						atomic.AddInt64(&stuck, 1)
						return
					}
					errOnce.Do(func() { firstErr = fmt.Errorf("%s: %w", op, err) })
					atomic.AddInt64(&stuck, 1)
					break
				}
			}
		}()
	}
	for _, op := range ops {
		work <- op
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(sampleDone)
	sampleWG.Wait()

	if firstErr != nil {
		return SoakResult{}, firstErr
	}

	res := SoakResult{
		Shards:        p.Shards,
		Watermark:     p.MaxInflightPerShard,
		Txns:          len(ops),
		Committed:     states[tropic.StateCommitted],
		Stuck:         int(atomic.LoadInt64(&stuck)),
		Sheds:         atomic.LoadInt64(&sheds),
		ShedsExported: scrapeCounterTotal(pl.Metrics().Text(), "tropic_admission_shed_total"),
		MaxBacklog:    atomic.LoadInt64(&maxBacklog),
		DepthBound:    int64(p.MaxInflightPerShard + p.Submitters),
		Elapsed:       elapsed,
		PerSecond:     float64(len(ops)) / elapsed.Seconds(),
		MeanLatencyMs: lat.Mean() * 1000,
		P99LatencyMs:  lat.Quantile(0.99) * 1000,
		MaxP99Ms:      p.MaxP99Ms,
	}
	for st, n := range states {
		if st != tropic.StateCommitted {
			res.OtherTerminal += n
		}
	}

	if res.Stuck != 0 {
		res.Failures = append(res.Failures,
			fmt.Sprintf("stuck gate: %d accepted transactions never reached a terminal state", res.Stuck))
	}
	if res.P99LatencyMs > res.MaxP99Ms {
		res.Failures = append(res.Failures,
			fmt.Sprintf("latency gate: p99 %.0fms exceeds the %.0fms bound", res.P99LatencyMs, res.MaxP99Ms))
	}
	if res.MaxBacklog > res.DepthBound {
		res.Failures = append(res.Failures,
			fmt.Sprintf("depth gate: peak backlog %d exceeds watermark+submitters bound %d", res.MaxBacklog, res.DepthBound))
	}
	if res.Sheds == 0 {
		res.Failures = append(res.Failures,
			"overload gate: no submission was shed — the run never overloaded the gateway")
	}
	if res.ShedsExported <= 0 {
		res.Failures = append(res.Failures,
			"metrics gate: tropic_admission_shed_total absent or zero in the exported registry")
	}
	res.Pass = len(res.Failures) == 0
	return res, nil
}

// maxBacklogRaise atomically raises *max to v if v is larger.
func maxBacklogRaise(max *int64, v int64) {
	for {
		cur := atomic.LoadInt64(max)
		if v <= cur || atomic.CompareAndSwapInt64(max, cur, v) {
			return
		}
	}
}

// scrapeCounterTotal sums every series of the named family in a
// Prometheus text exposition — the soak gate's proof that sheds are
// visible to an external scraper, not just to in-process callers.
func scrapeCounterTotal(text, family string) float64 {
	var total float64
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		total += v
	}
	return total
}
