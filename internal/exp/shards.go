package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/workload"
	"repro/tcloud"
	"repro/tropic"
)

// ShardsParams drives the horizontal-scaling experiment: end-to-end
// committed throughput of the batched pipeline as the platform is
// partitioned into 1, 2, 4, 8… consistent-hash shards. Where the
// pipeline experiment amortizes the store round trip (one ensemble,
// bigger batches), this one multiplies it (N independent ensembles,
// N lead controllers, N worker pools).
type ShardsParams struct {
	// Shards is the partition count under test (1 = the unsharded
	// baseline every other experiment measures).
	Shards int
	// Hosts sizes the logical-only topology (default 64). The topology
	// uses one storage host per compute host so nearly every shard owns
	// colocated spawn targets.
	Hosts int
	// Txns is how many single-shard spawnVM transactions to push
	// through (default 256).
	Txns int
	// Inflight bounds submission concurrency (default 256 — the
	// many-clients regime where per-shard pipelines stay saturated).
	Inflight int
	// CommitLatency simulates one store quorum round per shard ensemble
	// (default 500µs) — the store-I/O-bound regime sharding multiplies.
	CommitLatency time.Duration
	// BatchMaxOps sizes each shard pipeline's group commits (default
	// 32, the batched hot path; sharding composes with batching).
	BatchMaxOps int
}

func (p ShardsParams) withDefaults() ShardsParams {
	if p.Shards <= 0 {
		p.Shards = 1
	}
	if p.Hosts <= 0 {
		p.Hosts = 64
	}
	if p.Txns <= 0 {
		p.Txns = 256
	}
	if p.Inflight <= 0 {
		p.Inflight = 256
	}
	if p.CommitLatency == 0 {
		p.CommitLatency = 500 * time.Microsecond
	}
	if p.BatchMaxOps <= 0 {
		p.BatchMaxOps = 32
	}
	return p
}

// ShardsResult reports one sharded-throughput run.
type ShardsResult struct {
	// Shards echoes the partition count under test.
	Shards int `json:"shards"`
	// Txns and Committed count submitted and committed transactions.
	Txns      int `json:"txns"`
	Committed int `json:"committed"`
	// SpawnableHosts is how many compute hosts had a same-shard storage
	// host (the routable workload's spread).
	SpawnableHosts int `json:"spawnableHosts"`
	// Elapsed is the wall time from first submission to last commit.
	Elapsed time.Duration `json:"elapsedNanos"`
	// PerSecond is committed transactions per second — the number
	// sharding exists to multiply.
	PerSecond float64 `json:"perSecond"`
	// MeanLatencyMs and P99LatencyMs are per-transaction
	// submit→terminal latencies.
	MeanLatencyMs float64 `json:"meanLatencyMs"`
	P99LatencyMs  float64 `json:"p99LatencyMs"`
}

// Shards measures end-to-end committed throughput at the given shard
// count. Every submission is shard-local (each compute host is paired
// with a storage host owned by the same shard), so the run measures the
// sharded hot path, not cross-shard rejections.
func Shards(ctx context.Context, p ShardsParams) (ShardsResult, error) {
	p = p.withDefaults()
	env, err := Start(ctx, PlatformParams{
		// One storage host per compute host, with storage and memory
		// capacity far above what the run needs: shard-skewed pairings
		// must never turn into capacity aborts — this experiment
		// measures throughput, not placement.
		Topology: tcloud.Topology{
			ComputeHosts:      p.Hosts,
			ComputePerStorage: 1,
			StorageCapGB:      1 << 20,
			HostMemMB:         1 << 20,
		},
		// Logical-only with per-shard simulated quorum latency: the
		// §6.1 regime where the coordination store, not simulation CPU,
		// bounds throughput.
		LogicalOnly:    true,
		SessionTimeout: 2 * time.Second,
		CommitLatency:  p.CommitLatency,
		BatchMaxOps:    p.BatchMaxOps,
		Shards:         p.Shards,
		// Throughput runs need no hot standbys; one controller per
		// shard keeps the goroutine count proportional to shards.
		Controllers: 1,
	})
	if err != nil {
		return ShardsResult{}, err
	}
	defer env.Stop()

	ops, spawnable, err := shardLocalSpawnOps(env.Platform, p.Hosts, p.Txns)
	if err != nil {
		return ShardsResult{}, err
	}
	start := time.Now()
	lat, states, err := runOps(ctx, env.Platform, ops, p.Inflight)
	if err != nil {
		return ShardsResult{}, err
	}
	elapsed := time.Since(start)

	res := ShardsResult{
		Shards:         p.Shards,
		Txns:           len(ops),
		Committed:      states[tropic.StateCommitted],
		SpawnableHosts: spawnable,
		Elapsed:        elapsed,
		PerSecond:      float64(states[tropic.StateCommitted]) / elapsed.Seconds(),
		MeanLatencyMs:  lat.Mean() * 1000,
		P99LatencyMs:   lat.Quantile(0.99) * 1000,
	}
	return res, nil
}

// shardLocalSpawnOps builds n spawnVM submissions, each pairing a
// compute host with a storage host the SAME shard owns. Load is dealt
// EQUALLY across the shards that own spawnable pairs (shard-major
// round-robin, then round-robin over the shard's hosts): the experiment
// measures how throughput multiplies with per-shard pipelines, so every
// pipeline gets the same work — how evenly consistent hashing spreads
// an organic keyspace is pinned separately by the ShardMap balance
// property test. Hosts whose shard owns no storage host are skipped
// (consistent hashing cannot guarantee every shard a storage host; the
// skipped fraction is tiny at one storage host per compute host).
func shardLocalSpawnOps(pl *tropic.Platform, hosts, n int) ([]workload.Op, int, error) {
	storageByShard := make(map[int][]string)
	for i := 0; i < hosts; i++ {
		sp := tcloud.StorageHostPath(i)
		s, err := pl.ShardOf(tcloud.ProcSpawnVM, sp)
		if err != nil {
			return nil, 0, err
		}
		storageByShard[s] = append(storageByShard[s], sp)
	}
	type target struct{ storage, compute string }
	targetsByShard := make(map[int][]target)
	nextStorage := make(map[int]int) // per-shard round-robin over its storage pool
	var shardOrder []int
	spawnable := 0
	for i := 0; i < hosts; i++ {
		hp := tcloud.ComputeHostPath(i)
		s, err := pl.ShardOf(tcloud.ProcSpawnVM, hp)
		if err != nil {
			return nil, 0, err
		}
		pool := storageByShard[s]
		if len(pool) == 0 {
			continue
		}
		if len(targetsByShard[s]) == 0 {
			shardOrder = append(shardOrder, s)
		}
		targetsByShard[s] = append(targetsByShard[s], target{
			storage: pool[nextStorage[s]%len(pool)], compute: hp,
		})
		nextStorage[s]++
		spawnable++
	}
	if len(shardOrder) == 0 {
		return nil, 0, fmt.Errorf("exp: no shard owns both a storage and a compute host")
	}
	ops := make([]workload.Op, 0, n)
	nextTarget := make(map[int]int)
	for i := 0; i < n; i++ {
		s := shardOrder[i%len(shardOrder)]
		pool := targetsByShard[s]
		tg := pool[nextTarget[s]%len(pool)]
		nextTarget[s]++
		ops = append(ops, workload.Op{
			Proc: tcloud.ProcSpawnVM,
			Args: []string{tg.storage, tg.compute, fmt.Sprintf("shvm%06d", i), "1024"},
		})
	}
	return ops, spawnable, nil
}
