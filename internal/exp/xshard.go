package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/workload"
	"repro/tcloud"
	"repro/tropic"
)

// CrossShardParams drives the cross-shard transaction experiment:
// committed throughput and latency of spanning submissions — each split
// into per-shard children and two-phase-committed by a coordinator —
// against the same-shard fast path, at a given shard count. At one
// shard every submission is trivially same-shard, so the Shards=1 point
// is the unsharded baseline the cross-shard overhead is measured from.
type CrossShardParams struct {
	// Shards is the partition count under test.
	Shards int
	// Hosts sizes the logical-only topology (default 192, one storage
	// host per compute host — enough that the default workload touches
	// each host at most once, so the run measures PROTOCOL overhead,
	// not lock contention; cross-shard locks are held across the whole
	// prepare→decide exchange, and a hot shared root convoys every
	// transaction behind it).
	Hosts int
	// Txns is how many transactions to push through PER WORKLOAD
	// (default 160): once all cross-shard, once all same-shard.
	Txns int
	// Inflight bounds submission concurrency (default 64).
	Inflight int
	// CommitLatency simulates one store quorum round per shard ensemble
	// (default 500µs). Cross-shard transactions pay it several times
	// (prepare, vote, decide, execute, report) across two ensembles.
	CommitLatency time.Duration
	// BatchMaxOps sizes each shard pipeline's group commits (default 32).
	BatchMaxOps int
	// SlowPath disables the coalesced 2PC message flow, measuring the
	// per-message-round-trip ablation arm instead of the fast path.
	SlowPath bool
	// Reps measures each workload this many times on the same platform
	// (default 1), keeping the best-throughput run per workload. On a
	// CPU-starved CI box a single draw confounds scheduler interference
	// with protocol cost; the best of a few reps is a far more stable
	// capability measurement for both arms of the overhead ratio.
	Reps int
}

func (p CrossShardParams) withDefaults() CrossShardParams {
	if p.Shards <= 0 {
		p.Shards = 1
	}
	if p.Hosts <= 0 {
		p.Hosts = 192
	}
	if p.Txns <= 0 {
		p.Txns = 160
	}
	if p.Inflight <= 0 {
		p.Inflight = 64
	}
	if p.CommitLatency == 0 {
		p.CommitLatency = 500 * time.Microsecond
	}
	if p.BatchMaxOps <= 0 {
		p.BatchMaxOps = 32
	}
	if p.Reps <= 0 {
		p.Reps = 1
	}
	return p
}

// CrossShardLoadResult reports one workload's half of a run.
type CrossShardLoadResult struct {
	// Txns and Committed count submitted and committed transactions.
	Txns      int `json:"txns"`
	Committed int `json:"committed"`
	// Elapsed is first-submit to last-terminal wall time.
	Elapsed time.Duration `json:"elapsedNanos"`
	// PerSecond is committed transactions per second.
	PerSecond float64 `json:"perSecond"`
	// MeanLatencyMs and P99LatencyMs are submit→terminal latencies.
	MeanLatencyMs float64 `json:"meanLatencyMs"`
	P99LatencyMs  float64 `json:"p99LatencyMs"`
}

// CrossShardResult reports one cross-shard experiment point.
type CrossShardResult struct {
	// Shards echoes the partition count under test.
	Shards int `json:"shards"`
	// FastPath reports which 2PC message-flow arm this point measured
	// (true: coalesced flow; false: per-message round trips).
	FastPath bool `json:"fastPath"`
	// CrossPairs is how many distinct cross-shard (storage, compute)
	// pairings the topology offered (0 at one shard).
	CrossPairs int `json:"crossPairs"`
	// Cross is the spanning workload (two-phase commit per submission);
	// at Shards=1 it degenerates to the same-shard workload.
	Cross CrossShardLoadResult `json:"cross"`
	// Local is the same-shard workload on the identical platform — the
	// fast path the 2PC overhead is measured against.
	Local CrossShardLoadResult `json:"local"`
	// OverheadX is Local.PerSecond / Cross.PerSecond (1.0 at one shard):
	// how many single-shard transactions one cross-shard transaction
	// costs in steady-state throughput.
	OverheadX float64 `json:"overheadX"`
}

// CrossShard measures cross-shard transaction throughput and latency
// against the same-shard fast path at the given shard count. Both
// workloads run on one platform (cross first, then local) so they see
// identical ensembles, pipelines, and simulated store latency.
func CrossShard(ctx context.Context, p CrossShardParams) (CrossShardResult, error) {
	p = p.withDefaults()
	env, err := Start(ctx, PlatformParams{
		Topology: tcloud.Topology{
			ComputeHosts:      p.Hosts,
			ComputePerStorage: 1,
			StorageCapGB:      1 << 20,
			HostMemMB:         1 << 20,
		},
		LogicalOnly:    true,
		SessionTimeout: 2 * time.Second,
		CommitLatency:  p.CommitLatency,
		BatchMaxOps:    p.BatchMaxOps,
		Shards:         p.Shards,
		Controllers:    1,
		XShardSlowPath: p.SlowPath,
	})
	if err != nil {
		return CrossShardResult{}, err
	}
	defer env.Stop()

	run := func(ops []workload.Op) (CrossShardLoadResult, error) {
		start := time.Now()
		lat, states, err := runOps(ctx, env.Platform, ops, p.Inflight)
		if err != nil {
			return CrossShardLoadResult{}, err
		}
		elapsed := time.Since(start)
		return CrossShardLoadResult{
			Txns:          len(ops),
			Committed:     states[tropic.StateCommitted],
			Elapsed:       elapsed,
			PerSecond:     float64(states[tropic.StateCommitted]) / elapsed.Seconds(),
			MeanLatencyMs: lat.Mean() * 1000,
			P99LatencyMs:  lat.Quantile(0.99) * 1000,
		}, nil
	}
	// best reruns a workload Reps times (fresh VM names each rep — spawns
	// are creations and must not collide) and keeps the fastest run.
	best := func(build func(rep int) ([]workload.Op, error)) (CrossShardLoadResult, error) {
		var out CrossShardLoadResult
		for rep := 0; rep < p.Reps; rep++ {
			ops, err := build(rep)
			if err != nil {
				return out, err
			}
			r, err := run(ops)
			if err != nil {
				return out, err
			}
			if rep == 0 || r.PerSecond > out.PerSecond {
				out = r
			}
		}
		return out, nil
	}

	crossPairs := 0
	res := CrossShardResult{Shards: p.Shards, FastPath: !p.SlowPath}
	res.Cross, err = best(func(rep int) ([]workload.Op, error) {
		ops, pairs, err := crossShardSpawnOps(env.Platform, p.Hosts, p.Txns, fmt.Sprintf("x%d", rep))
		crossPairs = pairs
		return ops, err
	})
	if err != nil {
		return res, err
	}
	res.CrossPairs = crossPairs
	res.Local, err = best(func(rep int) ([]workload.Op, error) {
		ops, _, err := shardLocalSpawnOps(env.Platform, p.Hosts, p.Txns)
		for i := range ops {
			ops[i].Args[2] = fmt.Sprintf("l%dvm%06d", rep, i)
		}
		return ops, err
	})
	if err != nil {
		return res, err
	}
	if res.Cross.PerSecond > 0 {
		res.OverheadX = res.Local.PerSecond / res.Cross.PerSecond
	}
	return res, nil
}

// crossShardSpawnOps builds n spawnVM submissions each pairing a
// compute host with a storage host a DIFFERENT shard owns, spread
// round-robin over the distinct cross pairings. At one shard no cross
// pairing exists and the workload degenerates to same-shard spawns (the
// baseline point). VM names are prefixed so the two workloads of a run
// never collide.
func crossShardSpawnOps(pl *tropic.Platform, hosts, n int, prefix string) ([]workload.Op, int, error) {
	type hostShard struct {
		path  string
		shard int
	}
	storage := make([]hostShard, 0, hosts)
	compute := make([]hostShard, 0, hosts)
	for i := 0; i < hosts; i++ {
		sp := tcloud.StorageHostPath(i)
		ss, err := pl.ShardOf(tcloud.ProcSpawnVM, sp)
		if err != nil {
			return nil, 0, err
		}
		storage = append(storage, hostShard{sp, ss})
		hp := tcloud.ComputeHostPath(i)
		hs, err := pl.ShardOf(tcloud.ProcSpawnVM, hp)
		if err != nil {
			return nil, 0, err
		}
		compute = append(compute, hostShard{hp, hs})
	}
	// Count distinct spanning pairings (reported, not enumerated into
	// the workload) and detect the degenerate single-shard layout.
	crossPairs := 0
	for _, s := range storage {
		for _, h := range compute {
			if s.shard != h.shard {
				crossPairs++
			}
		}
	}
	if crossPairs == 0 {
		// Single shard (or degenerate map): fall back to same-shard pairs
		// so the Shards=1 baseline still measures the identical procedure.
		ops, _, err := shardLocalSpawnOps(pl, hosts, n)
		for i := range ops {
			ops[i].Args[2] = fmt.Sprintf("%svm%06d", prefix, i)
		}
		return ops, 0, err
	}
	// Rotate BOTH sides so locks spread evenly: op i takes the next
	// storage host in round-robin order and pairs it with the next
	// compute host owned by a different shard. Hot-host contention would
	// otherwise dominate the measurement (the locks are held across the
	// 2PC exchange, so a shared storage host serializes the whole run).
	ops := make([]workload.Op, 0, n)
	hc := 0
	for i := 0; i < n; i++ {
		s := storage[i%len(storage)]
		var h hostShard
		for tries := 0; ; tries++ {
			h = compute[hc%len(compute)]
			hc++
			if h.shard != s.shard {
				break
			}
			if tries > len(compute) {
				return nil, 0, fmt.Errorf("exp: no cross-shard partner for %s", s.path)
			}
		}
		ops = append(ops, workload.Op{
			Proc: tcloud.ProcSpawnVM,
			Args: []string{s.path, h.path, fmt.Sprintf("%svm%06d", prefix, i), "1024"},
		})
	}
	return ops, crossPairs, nil
}
