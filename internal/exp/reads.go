package exp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/readpath"
	"repro/tcloud"
	"repro/tropic"
)

// ReadsParams drives the read-path experiment: throughput and latency
// of a read-heavy operation mix (the 95/5 read/write regime a control
// plane serves once its fleet is up) with the scalable read path on
// versus the leader-only baseline. The baseline forces every Get
// through the shard leader's commit lock, so reads queue behind the
// write pipeline's group commits; follower reads bypass that lock and
// cache hits bypass the store entirely.
type ReadsParams struct {
	// Hosts sizes the logical-only topology (default 16).
	Hosts int
	// Records is how many transactions to seed before the timed mix;
	// reads are spread round-robin across them (default 64).
	Records int
	// Ops is the total timed operation count (default 4096).
	Ops int
	// WriteEvery makes every Nth op a SubmitAndWait instead of a Get
	// (default 20 — the 95/5 mix). 0 disables writes.
	WriteEvery int
	// Inflight bounds operation concurrency (default 64).
	Inflight int
	// CommitLatency simulates one store quorum round (default 5ms — a
	// disk-backed ZooKeeper write, the cost the paper identifies as
	// dominant). This is the regime where leader reads visibly serialize
	// behind writes: the leader holds the commit lock for the quorum
	// round, so baseline reads stall for its duration while follower
	// reads proceed.
	CommitLatency time.Duration
	// CacheBytes is the enabled run's per-shard cache budget (default
	// 32 MiB). The baseline run always uses 0.
	CacheBytes int64
}

func (p ReadsParams) withDefaults() ReadsParams {
	if p.Hosts <= 0 {
		p.Hosts = 16
	}
	if p.Records <= 0 {
		p.Records = 64
	}
	if p.Ops <= 0 {
		p.Ops = 4096
	}
	if p.WriteEvery == 0 {
		p.WriteEvery = 20
	}
	if p.WriteEvery < 0 {
		p.WriteEvery = 0
	}
	if p.Inflight <= 0 {
		p.Inflight = 64
	}
	if p.CommitLatency == 0 {
		p.CommitLatency = 5 * time.Millisecond
	}
	if p.CacheBytes <= 0 {
		p.CacheBytes = 32 << 20
	}
	return p
}

// ReadsModeResult reports one configuration's timed mix.
type ReadsModeResult struct {
	// FollowerReads and CacheBytes identify the configuration.
	FollowerReads bool  `json:"followerReads"`
	CacheBytes    int64 `json:"cacheBytes"`
	// Reads and Writes count the mix's operations by kind.
	Reads  int `json:"reads"`
	Writes int `json:"writes"`
	// Elapsed is the read stream's wall time: how long the Reads take to
	// complete while the Writes run concurrently against the same shard.
	// Write orchestration drains to terminal states off the clock — it
	// costs the same in both modes and would only dilute the read-path
	// ratio the ablation exists to measure.
	Elapsed time.Duration `json:"elapsedNanos"`
	// ReadsPerSecond is read throughput under the concurrent write load
	// — the read path's headline number.
	ReadsPerSecond float64 `json:"readsPerSecond"`
	// MeanReadMicros and P99ReadMicros are per-Get latencies.
	MeanReadMicros float64 `json:"meanReadMicros"`
	P99ReadMicros  float64 `json:"p99ReadMicros"`
	// ReadStats is the shard's read-path counter snapshot after the
	// run (hit/miss/serving-source attribution).
	ReadStats readpath.Stats `json:"readStats"`
}

// ReadsResult reports the ablation pair and their ratio.
type ReadsResult struct {
	// Records and the mix shape echo the parameters.
	Records    int `json:"records"`
	Ops        int `json:"ops"`
	WriteEvery int `json:"writeEvery"`
	// Baseline is leader-only reads, cache off; Enabled is follower
	// reads plus the watch-invalidated cache.
	Baseline ReadsModeResult `json:"baseline"`
	Enabled  ReadsModeResult `json:"enabled"`
	// Speedup is Enabled.ReadsPerSecond / Baseline.ReadsPerSecond.
	Speedup float64 `json:"speedup"`
}

// Reads measures the read-heavy mix twice — leader-only baseline, then
// follower reads + cache — on otherwise identical platforms, and
// reports the throughput ratio.
func Reads(ctx context.Context, p ReadsParams) (ReadsResult, error) {
	p = p.withDefaults()
	baseline, err := readMix(ctx, p, false, 0)
	if err != nil {
		return ReadsResult{}, fmt.Errorf("exp: reads baseline: %w", err)
	}
	enabled, err := readMix(ctx, p, true, p.CacheBytes)
	if err != nil {
		return ReadsResult{}, fmt.Errorf("exp: reads enabled: %w", err)
	}
	res := ReadsResult{
		Records:    p.Records,
		Ops:        p.Ops,
		WriteEvery: p.WriteEvery,
		Baseline:   baseline,
		Enabled:    enabled,
	}
	if baseline.ReadsPerSecond > 0 {
		res.Speedup = enabled.ReadsPerSecond / baseline.ReadsPerSecond
	}
	return res, nil
}

// readMix seeds Records committed transactions, then runs the timed
// 1-in-WriteEvery write mix against them on one platform configuration.
func readMix(ctx context.Context, p ReadsParams, followerReads bool, cacheBytes int64) (ReadsModeResult, error) {
	env, err := Start(ctx, PlatformParams{
		Topology: tcloud.Topology{
			ComputeHosts:      p.Hosts,
			ComputePerStorage: 1,
			StorageCapGB:      1 << 20,
			HostMemMB:         1 << 20,
		},
		LogicalOnly:    true,
		SessionTimeout: 2 * time.Second,
		CommitLatency:  p.CommitLatency,
		// Unbatched (the exp default): each write op is its own quorum
		// round holding the commit lock, the regime where the leader-only
		// read path visibly queues behind the write pipeline.
		BatchMaxOps:    1,
		Controllers:    1,
		FollowerReads:  followerReads,
		ReadCacheBytes: cacheBytes,
	})
	if err != nil {
		return ReadsModeResult{}, err
	}
	defer env.Stop()
	pl := env.Platform
	cli := pl.Client()
	defer cli.Close()

	spawn := func(i int, name string) (*tropic.Txn, error) {
		return cli.SubmitAndWait(ctx, tcloud.ProcSpawnVM,
			tcloud.StorageHostPath(i%p.Hosts), tcloud.ComputeHostPath(i%p.Hosts),
			name, "1024")
	}

	// Seed the record population the reads will target.
	ids := make([]string, 0, p.Records)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, p.Inflight)
	errCh := make(chan error, 1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for i := 0; i < p.Records; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rec, err := spawn(i, fmt.Sprintf("rdseed%06d", i))
			if err != nil {
				fail(err)
				return
			}
			mu.Lock()
			ids = append(ids, rec.ID)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return ReadsModeResult{}, err
	default:
	}

	// The timed mix. The write share (1 in WriteEvery of Ops) runs in its
	// own closed-loop pool of submitters so the leader's commit lock is
	// under genuine write pressure for the whole read window — that
	// contention is precisely what the baseline's leader reads queue
	// behind. Each write is durably accepted inside the window (Submit
	// returns after the creation commit); its orchestration to a
	// terminal state drains off the clock below, where it costs the same
	// in both modes (see ReadsModeResult.Elapsed).
	nWrites := 0
	if p.WriteEvery > 0 {
		nWrites = p.Ops / p.WriteEvery
	}
	nReads := p.Ops - nWrites
	writeIDs := make([]string, nWrites)
	writers := p.Inflight / 4
	if writers < 4 {
		writers = 4
	}
	var wwg sync.WaitGroup
	wsem := make(chan struct{}, writers)
	for j := 0; j < nWrites; j++ {
		wsem <- struct{}{}
		wwg.Add(1)
		go func(j int) {
			defer wwg.Done()
			defer func() { <-wsem }()
			id, err := cli.Submit(tcloud.ProcSpawnVM,
				tcloud.StorageHostPath(j%p.Hosts), tcloud.ComputeHostPath(j%p.Hosts),
				fmt.Sprintf("rdmix%06d", j), "1024")
			if err != nil {
				fail(err)
				return
			}
			writeIDs[j] = id
		}(j)
	}

	// A fixed pool of Inflight readers issuing back-to-back, so the
	// measurement is completion-bound (the read path) rather than
	// issue-bound (goroutine spawn overhead).
	readLat := metrics.NewHistogram()
	res := ReadsModeResult{FollowerReads: followerReads, CacheBytes: cacheBytes}
	var next atomic.Int64
	start := time.Now()
	for w := 0; w < p.Inflight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nReads {
					return
				}
				t0 := time.Now()
				if _, err := cli.Get(ids[i%len(ids)]); err != nil {
					fail(err)
					return
				}
				readLat.ObserveDuration(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	wwg.Wait()
	select {
	case err := <-errCh:
		return ReadsModeResult{}, err
	default:
	}

	// Drain the mix's writes to terminal states (untimed) so both modes
	// tear down from the same quiesced platform.
	for _, id := range writeIDs {
		if id == "" {
			continue
		}
		if _, err := cli.Wait(ctx, id); err != nil {
			return ReadsModeResult{}, fmt.Errorf("exp: reads drain %s: %w", id, err)
		}
	}

	res.Reads = readLat.Count()
	res.Writes = nWrites
	res.ReadsPerSecond = float64(res.Reads) / res.Elapsed.Seconds()
	res.MeanReadMicros = readLat.Mean() * 1e6
	res.P99ReadMicros = readLat.Quantile(0.99) * 1e6
	res.ReadStats = pl.ReadStats()[0]
	return res, nil
}
