package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/workload"
	"repro/tcloud"
	"repro/tropic"
)

// PipelineParams drives the batched-pipeline throughput experiment: the
// submit→schedule→execute hot path under concurrent load, with the
// group-commit batch size as the ablation axis.
type PipelineParams struct {
	// Hosts sizes the logical-only topology (default 64; each host has
	// 8 VM slots, bounding Txns).
	Hosts int
	// Txns is how many spawnVM transactions to push through (default
	// 256).
	Txns int
	// Inflight bounds submission concurrency (default 128) — the many-
	// clients regime where group commit pays.
	Inflight int
	// CommitLatency simulates one store quorum round (default 200µs),
	// reproducing the store-I/O-bound regime of the paper's §6.1.
	CommitLatency time.Duration
	// BatchMaxOps is the pipeline batch size under test: 1 is the
	// unbatched per-item pipeline, >1 enables group commit.
	BatchMaxOps int
	// BatchMaxDelay bounds asynchronous flush latency (default 2ms).
	BatchMaxDelay time.Duration
	// WorkerClaimBatch is the per-thread phyQ claim size (default:
	// BatchMaxOps/4, min 1, so claims scale with the ablation axis).
	WorkerClaimBatch int
}

func (p PipelineParams) withDefaults() PipelineParams {
	if p.Hosts <= 0 {
		p.Hosts = 64
	}
	if p.Txns <= 0 {
		p.Txns = 256
	}
	if p.Inflight <= 0 {
		p.Inflight = 128
	}
	if p.CommitLatency == 0 {
		p.CommitLatency = 200 * time.Microsecond
	}
	if p.BatchMaxOps <= 0 {
		p.BatchMaxOps = 1
	}
	if p.WorkerClaimBatch <= 0 {
		p.WorkerClaimBatch = p.BatchMaxOps / 4
		if p.WorkerClaimBatch < 1 {
			p.WorkerClaimBatch = 1
		}
	}
	return p
}

// PipelineResult reports one pipeline run.
type PipelineResult struct {
	// BatchMaxOps echoes the batch size under test.
	BatchMaxOps int `json:"batchMaxOps"`
	// Txns and Committed count submitted and committed transactions.
	Txns      int `json:"txns"`
	Committed int `json:"committed"`
	// Elapsed is the wall time from first submission to last commit.
	Elapsed time.Duration `json:"elapsedNanos"`
	// PerSecond is committed transactions per second — the Figure 4/5
	// companion number the batching refactor moves.
	PerSecond float64 `json:"perSecond"`
	// MeanLatencyMs and P99LatencyMs are per-transaction submit→terminal
	// latencies, showing batching does not trade throughput for latency
	// beyond the BatchMaxDelay bound.
	MeanLatencyMs float64 `json:"meanLatencyMs"`
	P99LatencyMs  float64 `json:"p99LatencyMs"`
	// InBatches/InBatchItems/MaxInBatch: achieved event-batch sizes.
	InBatches    int64 `json:"inBatches"`
	InBatchItems int64 `json:"inBatchItems"`
	MaxInBatch   int64 `json:"maxInBatch"`
	// Flushes/FlushedOps/MaxFlushOps/MeanFlushMs: grouped-commit shape.
	Flushes     int64   `json:"flushes"`
	FlushedOps  int64   `json:"flushedOps"`
	MaxFlushOps int64   `json:"maxFlushOps"`
	MeanFlushMs float64 `json:"meanFlushMs"`
	// StoreCommits counts ensemble commit rounds consumed by the run —
	// the round trips batching exists to amortize.
	StoreCommits int64 `json:"storeCommits"`
}

// Pipeline measures end-to-end committed throughput of the
// submit→schedule→execute pipeline at the given batch size. Both the
// batched and unbatched paths run the same code with one config knob, so
// a pair of runs is the group-commit ablation.
func Pipeline(ctx context.Context, p PipelineParams) (PipelineResult, error) {
	p = p.withDefaults()
	if p.Txns > p.Hosts*8 {
		return PipelineResult{}, fmt.Errorf("pipeline: %d txns exceed %d VM slots", p.Txns, p.Hosts*8)
	}
	env, err := Start(ctx, PlatformParams{
		Topology:    tcloud.Topology{ComputeHosts: p.Hosts},
		LogicalOnly: true,
		// Saturating the commit pipeline queues sessions behind the
		// simulated quorum rounds; a failure-detection interval sized for
		// experiments (150ms) would read that backlog as a crash. Use a
		// production-scale timeout so the run measures throughput, not
		// failover.
		SessionTimeout:   2 * time.Second,
		CommitLatency:    p.CommitLatency,
		BatchMaxOps:      p.BatchMaxOps,
		BatchMaxDelay:    p.BatchMaxDelay,
		WorkerClaimBatch: p.WorkerClaimBatch,
	})
	if err != nil {
		return PipelineResult{}, err
	}
	defer env.Stop()

	ops := spawnOps(p.Hosts, p.Txns)
	baseCommits := env.Platform.Ensemble().Commits()
	start := time.Now()
	lat, states, err := runOps(ctx, env.Platform, ops, p.Inflight)
	if err != nil {
		return PipelineResult{}, err
	}
	elapsed := time.Since(start)

	st := env.Platform.ControllerStats()
	res := PipelineResult{
		BatchMaxOps:  p.BatchMaxOps,
		Txns:         p.Txns,
		Committed:    states[tropic.StateCommitted],
		Elapsed:      elapsed,
		PerSecond:    float64(states[tropic.StateCommitted]) / elapsed.Seconds(),
		InBatches:    st.InBatches,
		InBatchItems: st.InBatchItems,
		MaxInBatch:   st.MaxInBatch,
		Flushes:      st.Flushes,
		FlushedOps:   st.FlushedOps,
		MaxFlushOps:  st.MaxFlushOps,
		StoreCommits: env.Platform.Ensemble().Commits() - baseCommits,
	}
	res.MeanLatencyMs = lat.Mean() * 1000
	res.P99LatencyMs = lat.Quantile(0.99) * 1000
	if st.Flushes > 0 {
		res.MeanFlushMs = float64(st.FlushNanos) / float64(st.Flushes) / 1e6
	}
	return res, nil
}

// spawnOps builds n spawnVM submissions spread round-robin over the
// hosts, each VM named uniquely so no two transactions conflict.
func spawnOps(hosts, n int) []workload.Op {
	ops := make([]workload.Op, 0, n)
	for i := 0; i < n; i++ {
		host := i % hosts
		ops = append(ops, workload.Op{
			Proc: tcloud.ProcSpawnVM,
			Args: []string{
				tcloud.StorageHostPath(host / 4),
				tcloud.ComputeHostPath(host),
				fmt.Sprintf("plvm%06d", i),
				"1024",
			},
		})
	}
	return ops
}
