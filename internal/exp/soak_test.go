package exp

import (
	"context"
	"testing"
	"time"
)

// TestSoakGatesHold: a CI-sized soak run overloads the gateway (sheds
// occur and are exported) yet every gate holds — the tentpole claim of
// admission control: shed at the watermark, never collapse, never
// strand a transaction.
func TestSoakGatesHold(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Soak(ctx, SoakParams{Txns: 128, Submitters: 32, MaxInflightPerShard: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("soak gates failed: %v\n%+v", res.Failures, res)
	}
	if res.Sheds == 0 || res.ShedsExported <= 0 {
		t.Fatalf("run never overloaded: sheds=%d exported=%v", res.Sheds, res.ShedsExported)
	}
	if res.Stuck != 0 {
		t.Fatalf("stuck = %d, want 0", res.Stuck)
	}
	if got := res.Committed + res.OtherTerminal; got != res.Txns {
		t.Fatalf("terminal = %d, want all %d accepted", got, res.Txns)
	}
}
