// Package exp contains the experiment harnesses that regenerate every
// table and figure of the paper's evaluation (§6). Each experiment is a
// plain function returning a result struct, shared between the
// `tropic-bench` command (full-scale runs, figure-style output) and the
// root-level testing.B benchmarks (compressed runs, CI-sized).
//
// Scale note: the paper evaluates on three 8-core Xeon machines over a
// one-hour trace. These harnesses run the same code paths in-process
// with simulated quorum latency, and expose time compression and
// topology knobs so each experiment can run full-scale (minutes) or
// CI-scale (seconds). EXPERIMENTS.md records the mapping.
package exp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/reconcile"
	"repro/internal/workload"
	"repro/tcloud"
	"repro/tropic"
)

// PlatformParams sizes the platform under test.
type PlatformParams struct {
	// Topology is the data center layout; Topology.ComputeHosts is the
	// main scale knob (paper: 12,500 hosts → 100,000 VM slots).
	Topology tcloud.Topology
	// LogicalOnly bypasses device execution (§5's testing mode, used by
	// the paper's scale experiments). When false, a simulated device
	// cloud backs the platform.
	LogicalOnly bool
	// CommitLatency simulates one store quorum round (the ZooKeeper I/O
	// the paper identifies as the dominant per-transaction cost).
	CommitLatency time.Duration
	// ActionLatency is the per-device-call latency in physical mode.
	ActionLatency time.Duration
	// WorkerThreads sizes the physical layer (default 4).
	WorkerThreads int
	// SessionTimeout is the failure-detection interval (default 150ms
	// here; the paper's deployment detects in seconds).
	SessionTimeout time.Duration
	// CheckpointEvery enables snapshot compaction.
	CheckpointEvery int
	// BatchMaxOps sizes the pipeline's group commits (tropic.Config
	// semantics). The experiment default is 1 — UNBATCHED — because the
	// paper's figures measure the per-item pipeline; the pipeline
	// experiments opt in explicitly to measure the batching win.
	BatchMaxOps int
	// BatchMaxDelay bounds asynchronous batch flushes.
	BatchMaxDelay time.Duration
	// WorkerClaimBatch is the per-thread phyQ claim size.
	WorkerClaimBatch int
	// Shards partitions the platform into independent consistent-hash
	// shards (default 1, the paper's single-ensemble deployment).
	Shards int
	// Controllers is the per-shard controller replica count (default 3).
	Controllers int
	// MaxInflightPerShard is the gateway admission watermark
	// (tropic.Config semantics; 0 disables shedding — the default, so
	// every existing experiment measures the unshed pipeline).
	MaxInflightPerShard int
	// XShardSlowPath disables the coalesced cross-shard 2PC message flow
	// (tropic.XShardFastPathDisabled): every 2PC message takes its own
	// store round trip — the fast-path ablation arm. False (the default)
	// keeps the fast path on, matching production.
	XShardSlowPath bool
	// FollowerReads serves watermarked reads from caught-up replicas
	// (tropic.Config semantics; false is the leader-only baseline).
	FollowerReads bool
	// ReadCacheBytes is the per-shard watch-invalidated read cache
	// budget (0 disables caching).
	ReadCacheBytes int64
}

func (p PlatformParams) withDefaults() PlatformParams {
	if p.SessionTimeout <= 0 {
		p.SessionTimeout = 150 * time.Millisecond
	}
	if p.WorkerThreads <= 0 {
		p.WorkerThreads = 4
	}
	if p.BatchMaxOps == 0 {
		p.BatchMaxOps = 1
	}
	return p
}

// Env is a running platform plus the handles experiments need.
type Env struct {
	Platform *tropic.Platform
	Cloud    *device.Cloud // nil in logical-only mode
	Params   PlatformParams
}

// Start builds and starts a platform per the params.
func Start(ctx context.Context, p PlatformParams) (*Env, error) {
	p = p.withDefaults()
	env := &Env{Params: p}
	cfg := tropic.Config{
		Schema:              tcloud.NewSchema(),
		Procedures:          tcloud.Procedures(),
		CommitLatency:       p.CommitLatency,
		SessionTimeout:      p.SessionTimeout,
		WorkerThreads:       p.WorkerThreads,
		CheckpointEvery:     p.CheckpointEvery,
		BatchMaxOps:         p.BatchMaxOps,
		BatchMaxDelay:       p.BatchMaxDelay,
		WorkerClaimBatch:    p.WorkerClaimBatch,
		Shards:              p.Shards,
		Controllers:         p.Controllers,
		MaxInflightPerShard: p.MaxInflightPerShard,
		FollowerReads:       p.FollowerReads,
		ReadCacheBytes:      p.ReadCacheBytes,
	}
	if p.XShardSlowPath {
		cfg.XShardFastPath = tropic.XShardFastPathDisabled
	}
	if p.LogicalOnly {
		cfg.Bootstrap = p.Topology.BuildModel()
		cfg.Executor = tropic.NoopExecutor{Latency: p.ActionLatency}
	} else {
		cloud, err := p.Topology.BuildCloud()
		if err != nil {
			return nil, err
		}
		cloud.SetActionLatency(p.ActionLatency)
		env.Cloud = cloud
		cfg.Bootstrap = cloud.Snapshot()
		cfg.Executor = cloud
		cfg.Reconciler = reconcile.New(cloud, cloud, tcloud.RepairRules())
	}
	pl, err := tropic.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := pl.Start(ctx); err != nil {
		pl.Stop()
		return nil, err
	}
	env.Platform = pl
	return env, nil
}

// Stop shuts the environment down.
func (e *Env) Stop() { e.Platform.Stop() }

// runOps submits ops and waits for all of them, returning per-txn
// latencies and final states. Concurrency is bounded by inflight.
func runOps(ctx context.Context, pl *tropic.Platform, ops []workload.Op, inflight int) (*metrics.Histogram, map[tropic.State]int, error) {
	if inflight <= 0 {
		inflight = 64
	}
	lat := metrics.NewHistogram()
	states := make(map[tropic.State]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, inflight)
	errCh := make(chan error, 1)

	cli := pl.Client()
	defer cli.Close()
	for _, op := range ops {
		select {
		case err := <-errCh:
			return nil, nil, err
		default:
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(op workload.Op) {
			defer wg.Done()
			defer func() { <-sem }()
			rec, err := cli.SubmitAndWait(ctx, op.Proc, op.Args...)
			if err != nil {
				select {
				case errCh <- fmt.Errorf("%s: %w", op, err):
				default:
				}
				return
			}
			mu.Lock()
			states[rec.State]++
			mu.Unlock()
			lat.ObserveDuration(rec.Latency())
		}(op)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, nil, err
	default:
	}
	return lat, states, nil
}
