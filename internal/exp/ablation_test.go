package exp

import (
	"testing"
	"time"
)

func TestAblationPolicies(t *testing.T) {
	results, err := Ablation(testCtx(t, 120*time.Second), AblationParams{
		Hosts: 8, Txns: 24, ActionLatency: 8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	fifo, aggr := results[0], results[1]
	if fifo.Policy != "fifo" || aggr.Policy != "aggressive" {
		t.Fatalf("order: %+v", results)
	}
	// Correctness first: both policies commit everything.
	if fifo.Committed != 24 || aggr.Committed != 24 {
		t.Fatalf("committed: fifo=%d aggr=%d", fifo.Committed, aggr.Committed)
	}
	// The ablation's point: under contention the aggressive policy
	// spares independent transactions from head-of-line blocking, so
	// their mean latency must drop substantially.
	if aggr.IndependentLatency >= fifo.IndependentLatency {
		t.Errorf("aggressive did not help independents: fifo=%v aggressive=%v",
			fifo.IndependentLatency, aggr.IndependentLatency)
	}
	t.Logf("fifo: makespan=%v indep-latency=%v (%d deferrals); aggressive: makespan=%v indep-latency=%v (%d deferrals)",
		fifo.Makespan, fifo.IndependentLatency, fifo.Deferrals,
		aggr.Makespan, aggr.IndependentLatency, aggr.Deferrals)
}
