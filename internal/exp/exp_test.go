package exp

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/tcloud"
	"repro/tropic"
)

func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestTable1MatchesPaper(t *testing.T) {
	res, err := Table1(testCtx(t, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 {
		t.Fatalf("records = %d, want 5", len(res.Records))
	}
	want := []struct{ action, undo string }{
		{"cloneImage", "removeImage"},
		{"exportImage", "unexportImage"},
		{"importImage", "unimportImage"},
		{"createVM", "removeVM"},
		{"startVM", "stopVM"},
	}
	for i, w := range want {
		if res.Records[i].Action != w.action || res.Records[i].Undo != w.undo {
			t.Errorf("record %d = %s/%s, want %s/%s",
				i+1, res.Records[i].Action, res.Records[i].Undo, w.action, w.undo)
		}
	}
	// First two records act on storage, last three on the compute host,
	// as in Table 1.
	for i, r := range res.Records {
		wantRoot := "/storageRoot"
		if i >= 2 {
			wantRoot = "/vmRoot"
		}
		if !strings.HasPrefix(r.Path, wantRoot) {
			t.Errorf("record %d path %s, want under %s", i+1, r.Path, wantRoot)
		}
	}
	out := FormatTable1(res)
	if !strings.Contains(out, "cloneImage") || !strings.Contains(out, "undo action") {
		t.Errorf("FormatTable1 output:\n%s", out)
	}
}

func TestFig3Stats(t *testing.T) {
	res := Fig3(2011)
	if res.Trace.Total() != 8417 {
		t.Errorf("total = %d", res.Trace.Total())
	}
	if len(res.PerMinute) != 60 {
		t.Errorf("minutes = %d", len(res.PerMinute))
	}
	// The per-minute peak must land in minute 48 (0.8 hours).
	peakMin, peak := 0, 0.0
	for m, v := range res.PerMinute {
		if v > peak {
			peakMin, peak = m, v
		}
	}
	// The surge is centered on second 2880, the boundary between
	// minutes 47 and 48; either may carry the per-minute peak.
	if peakMin != 47 && peakMin != 48 {
		t.Errorf("peak minute = %d, want 47 or 48 (0.8h)", peakMin)
	}
}

func TestFig45SmallScale(t *testing.T) {
	// CI-scale: 2 multipliers, 30-second window around the peak at 30×
	// compression (1s wall each). 200 hosts = 1600 VM slots comfortably
	// hold the ~350 spawns of the 2× peak window.
	results, err := Fig45(testCtx(t, 120*time.Second), Fig45Params{
		Multipliers:   []int{1, 2},
		Hosts:         200,
		WindowFrom:    2855,
		WindowTo:      2885,
		Compression:   30,
		CommitLatency: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Submitted == 0 || r.Committed != r.Submitted {
			t.Errorf("mult %d: %d/%d committed", r.Multiplier, r.Committed, r.Submitted)
		}
		if r.Latency.Count() != r.Submitted {
			t.Errorf("mult %d: %d latency samples", r.Multiplier, r.Latency.Count())
		}
	}
	// The paper's headline shape: utilization rises with the multiplier.
	// Meaningful only when the baseline run is not already saturated
	// (e.g. by other processes sharing the machine's cores).
	if results[0].MeanCPU < 0.4 {
		if results[1].MeanCPU <= results[0].MeanCPU {
			t.Errorf("CPU did not rise with load: 1x=%.4f 2x=%.4f",
				results[0].MeanCPU, results[1].MeanCPU)
		}
	} else {
		t.Logf("baseline saturated (%.2f); skipping shape assertion", results[0].MeanCPU)
	}
}

func TestSafetyOverheadUnderPaperBound(t *testing.T) {
	res, err := Safety(testCtx(t, 60*time.Second), SafetyParams{Hosts: 16, Ops: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns < 120 {
		t.Errorf("txns = %d", res.Txns)
	}
	// Paper: constraint checking < 10ms per transaction. Our logical
	// layer should be far below on modern hardware.
	if res.MeanConstraintTime > 10*time.Millisecond {
		t.Errorf("mean constraint time %v exceeds the paper's 10ms bound", res.MeanConstraintTime)
	}
}

func TestRobustnessOverheadUnderPaperBound(t *testing.T) {
	res, err := Robustness(testCtx(t, 60*time.Second), RobustnessParams{Hosts: 4, Ops: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpawnErrors == 0 || res.MigrateErrors == 0 {
		t.Fatalf("scenarios not exercised: %+v", res)
	}
	if res.Aborted < int64(res.SpawnErrors+res.MigrateErrors) {
		t.Errorf("aborted = %d", res.Aborted)
	}
	// Paper: logical rollback < 9ms per transaction.
	if res.MeanRollbackTime > 9*time.Millisecond {
		t.Errorf("mean rollback %v exceeds the paper's 9ms bound", res.MeanRollbackTime)
	}
}

func TestHANoLostTransactions(t *testing.T) {
	res, err := HA(testCtx(t, 120*time.Second), HAParams{
		Hosts: 8, OpsBeforeKill: 12, OpsDuringKill: 4,
		SessionTimeout: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Errorf("lost %d transactions", res.Lost)
	}
	if res.Committed != res.Submitted {
		t.Errorf("committed %d/%d", res.Committed, res.Submitted)
	}
	// Recovery is dominated by failure detection: at least roughly the
	// session timeout, well under the test budget.
	if res.RecoveryTime < res.SessionTimeout/2 {
		t.Errorf("recovery %v faster than detection %v allows", res.RecoveryTime, res.SessionTimeout)
	}
}

func TestThroughputRoughlyConstant(t *testing.T) {
	points, err := Throughput(testCtx(t, 120*time.Second), []int{50, 500, 2000}, 120, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// §6.1: throughput stays constant as resources scale. Allow wide
	// slack for CI noise: the largest scale must retain at least a
	// third of the smallest scale's throughput.
	if points[2].PerSecond < points[0].PerSecond/3 {
		t.Errorf("throughput collapsed with scale: %v", points)
	}
}

func TestMemoryScalesWithResources(t *testing.T) {
	points := Memory([]int{500, 2000})
	if len(points) != 2 {
		t.Fatal("points")
	}
	if points[1].HeapBytes < points[0].HeapBytes {
		t.Errorf("heap did not grow with scale: %+v", points)
	}
	for _, pt := range points {
		if pt.BytesPerSlot <= 0 || pt.BytesPerSlot > 1<<20 {
			t.Errorf("bytes/slot = %v", pt.BytesPerSlot)
		}
		if pt.ModelNodes < pt.Hosts {
			t.Errorf("model nodes = %d for %d hosts", pt.ModelNodes, pt.Hosts)
		}
	}
}

func TestRunOpsPropagatesFailure(t *testing.T) {
	env, err := Start(testCtx(t, 30*time.Second), PlatformParams{
		Topology:    tcloud.Topology{ComputeHosts: 1},
		LogicalOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Stop()
	// A procedure that aborts during simulation (missing args) still
	// counts as a terminal outcome, not a transport error.
	_, states, err := runOps(testCtx(t, 30*time.Second), env.Platform, []workload.Op{
		{Proc: tcloud.ProcStartVM},
	}, 4)
	if err != nil {
		t.Fatalf("runOps transport error: %v", err)
	}
	if states[tropic.StateAborted] != 1 {
		t.Fatalf("states = %v", states)
	}
	// An unknown procedure is rejected synchronously at submit and does
	// surface as a transport error.
	if _, _, err := runOps(testCtx(t, 30*time.Second), env.Platform, []workload.Op{
		{Proc: "definitely-not-a-proc"},
	}, 4); err == nil {
		t.Fatal("unknown procedure should fail submission")
	}
}
