// Package lock implements TROPIC's pessimistic concurrency control: a
// multi-granularity locking scheme over the hierarchical data model
// (paper §3.1.3, following Gray's intention-lock protocol).
//
// A transaction acquires W (write) or R (read) locks on the objects its
// actions and queries touch, and intention locks (IW/IR) on every
// ancestor of those objects. Intention locks summarize descendant
// locking so conflicts are detected high in the tree: IW conflicts with
// R and W, IR conflicts with W, and W conflicts with everything. A
// transaction additionally takes an R lock on the highest constrained
// ancestor of each written object, freezing the subtree a constraint
// check depends on.
//
// Acquisition is all-or-nothing at schedule time: either every requested
// lock is granted atomically or none are and the transaction is deferred
// (requeued at the front of todoQ). Because transactions never wait
// while holding locks, deadlock is impossible by construction.
package lock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mode is a lock mode.
type Mode int

const (
	// IR is an intention-read lock taken on ancestors of R-locked nodes.
	IR Mode = iota
	// IW is an intention-write lock taken on ancestors of W-locked nodes.
	IW
	// R is a shared read lock.
	R
	// W is an exclusive write lock.
	W
)

// String renders the mode like the paper ("R", "W", "IR", "IW").
func (m Mode) String() string {
	switch m {
	case IR:
		return "IR"
	case IW:
		return "IW"
	case R:
		return "R"
	case W:
		return "W"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compatible reports whether two modes held by different transactions
// can coexist on the same node.
//
//	   | IR | IW | R | W
//	IR | ✓  | ✓  | ✓ | ✗
//	IW | ✓  | ✓  | ✗ | ✗
//	R  | ✓  | ✗  | ✓ | ✗
//	W  | ✗  | ✗  | ✗ | ✗
func compatible(a, b Mode) bool {
	switch {
	case a == W || b == W:
		return false
	case a == IW && b == R, a == R && b == IW:
		return false
	default:
		return true
	}
}

// Request asks for one lock.
type Request struct {
	Path string
	Mode Mode
}

// holder records the modes one transaction holds on one node.
type holder struct {
	modes map[Mode]int // mode -> acquisition count (for idempotent re-requests)
}

// Manager tracks all locks. It is safe for concurrent use, though in
// TROPIC only the lead controller calls it.
type Manager struct {
	mu sync.Mutex
	// nodes maps path -> owner -> holder.
	nodes map[string]map[string]*holder
	// owned maps owner -> set of paths, for O(owned) release.
	owned map[string]map[string]bool
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		nodes: make(map[string]map[string]*holder),
		owned: make(map[string]map[string]bool),
	}
}

// ConflictError reports the first conflicting lock found during Acquire.
type ConflictError struct {
	Path      string
	Requested Mode
	Holder    string
	Held      Mode
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("lock conflict at %s: requested %s, %s holds %s",
		e.Path, e.Requested, e.Holder, e.Held)
}

// ExpandRequests converts object-level lock intents into the full
// multi-granularity request set: each R/W on a path implies IR/IW on all
// ancestors. Per path the mode set is then reduced: W subsumes all other
// modes, R or IW subsume IR, and {R, IW} is kept as a pair (the classic
// SIX combination — a transaction that reads a subtree while writing
// inside it must hold both so that neither concurrent readers of the
// subtree nor concurrent writers below it are admitted).
func ExpandRequests(reqs []Request) []Request {
	modes := make(map[string]map[Mode]bool)
	add := func(path string, m Mode) {
		set, ok := modes[path]
		if !ok {
			set = make(map[Mode]bool, 2)
			modes[path] = set
		}
		set[m] = true
	}
	for _, r := range reqs {
		add(r.Path, r.Mode)
		intent := IR
		if r.Mode == W || r.Mode == IW {
			intent = IW
		}
		for _, anc := range ancestors(r.Path) {
			add(anc, intent)
		}
	}
	var out []Request
	for p, set := range modes {
		switch {
		case set[W]:
			out = append(out, Request{Path: p, Mode: W})
		default:
			if set[R] {
				out = append(out, Request{Path: p, Mode: R})
			}
			if set[IW] {
				out = append(out, Request{Path: p, Mode: IW})
			}
			if set[IR] && !set[R] && !set[IW] {
				out = append(out, Request{Path: p, Mode: IR})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Mode < out[j].Mode
	})
	return out
}

func ancestors(path string) []string {
	var out []string
	for i := 1; i < len(path); i++ {
		if path[i] == '/' {
			out = append(out, path[:i])
		}
	}
	return out
}

// Acquire grants every request to owner atomically, or grants nothing
// and returns a *ConflictError naming the first conflict. Requests are
// expanded to include ancestor intention locks. Re-acquiring locks the
// owner already holds is permitted (a transaction never conflicts with
// itself).
func (m *Manager) Acquire(owner string, reqs []Request) error {
	full := ExpandRequests(reqs)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range full {
		for other, h := range m.nodes[r.Path] {
			if other == owner {
				continue
			}
			for held := range h.modes {
				if !compatible(r.Mode, held) {
					return &ConflictError{Path: r.Path, Requested: r.Mode, Holder: other, Held: held}
				}
			}
		}
	}
	for _, r := range full {
		byOwner, ok := m.nodes[r.Path]
		if !ok {
			byOwner = make(map[string]*holder)
			m.nodes[r.Path] = byOwner
		}
		h, ok := byOwner[owner]
		if !ok {
			h = &holder{modes: make(map[Mode]int)}
			byOwner[owner] = h
		}
		h.modes[r.Mode]++
		paths, ok := m.owned[owner]
		if !ok {
			paths = make(map[string]bool)
			m.owned[owner] = paths
		}
		paths[r.Path] = true
	}
	return nil
}

// WouldConflict reports whether Acquire would fail, without acquiring.
// The controller uses this during simulation replay on recovery.
func (m *Manager) WouldConflict(owner string, reqs []Request) *ConflictError {
	full := ExpandRequests(reqs)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range full {
		for other, h := range m.nodes[r.Path] {
			if other == owner {
				continue
			}
			for held := range h.modes {
				if !compatible(r.Mode, held) {
					return &ConflictError{Path: r.Path, Requested: r.Mode, Holder: other, Held: held}
				}
			}
		}
	}
	return nil
}

// Conflicts returns every conflicting (path, holder) pair Acquire would
// trip over, one ConflictError per distinct pair, without acquiring
// anything. Where Acquire and WouldConflict stop at the first conflict,
// this enumerates them all — the wound-wait path needs every holder
// standing between a high-priority cross-shard child and its locks, not
// just the first one found.
func (m *Manager) Conflicts(owner string, reqs []Request) []*ConflictError {
	full := ExpandRequests(reqs)
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[string]bool)
	var out []*ConflictError
	for _, r := range full {
		for other, h := range m.nodes[r.Path] {
			if other == owner {
				continue
			}
			for held := range h.modes {
				if compatible(r.Mode, held) {
					continue
				}
				key := r.Path + "\x00" + other
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, &ConflictError{Path: r.Path, Requested: r.Mode, Holder: other, Held: held})
			}
		}
	}
	return out
}

// ReleaseAll frees every lock held by owner (transaction cleanup, step 5
// in Figure 2).
func (m *Manager) ReleaseAll(owner string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for path := range m.owned[owner] {
		byOwner := m.nodes[path]
		delete(byOwner, owner)
		if len(byOwner) == 0 {
			delete(m.nodes, path)
		}
	}
	delete(m.owned, owner)
}

// Holds reports whether owner holds mode on path.
func (m *Manager) Holds(owner, path string, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.nodes[path][owner]
	return ok && h.modes[mode] > 0
}

// OwnerCount reports how many distinct transactions hold locks.
func (m *Manager) OwnerCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.owned)
}

// LockCount reports the total number of (path, owner) lock entries, for
// tests asserting lock hygiene.
func (m *Manager) LockCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, byOwner := range m.nodes {
		n += len(byOwner)
	}
	return n
}

// Dump renders the lock table for debugging.
func (m *Manager) Dump() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	paths := make([]string, 0, len(m.nodes))
	for p := range m.nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "%s:", p)
		owners := make([]string, 0, len(m.nodes[p]))
		for o := range m.nodes[p] {
			owners = append(owners, o)
		}
		sort.Strings(owners)
		for _, o := range owners {
			for mode, cnt := range m.nodes[p][o].modes {
				if cnt > 0 {
					fmt.Fprintf(&b, " %s=%s", o, mode)
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
