package lock

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestCompatibilityMatrix(t *testing.T) {
	// Paper footnote 1: IW conflicts with R/W; IR conflicts with W.
	cases := []struct {
		a, b Mode
		ok   bool
	}{
		{IR, IR, true}, {IR, IW, true}, {IR, R, true}, {IR, W, false},
		{IW, IR, true}, {IW, IW, true}, {IW, R, false}, {IW, W, false},
		{R, IR, true}, {R, IW, false}, {R, R, true}, {R, W, false},
		{W, IR, false}, {W, IW, false}, {W, R, false}, {W, W, false},
	}
	for _, c := range cases {
		if got := compatible(c.a, c.b); got != c.ok {
			t.Errorf("compatible(%s,%s) = %v, want %v", c.a, c.b, got, c.ok)
		}
	}
}

func TestExpandAddsIntentionLocks(t *testing.T) {
	reqs := ExpandRequests([]Request{{Path: "/a/b/c", Mode: W}})
	want := map[string]Mode{"/a": IW, "/a/b": IW, "/a/b/c": W}
	if len(reqs) != len(want) {
		t.Fatalf("expanded = %v", reqs)
	}
	for _, r := range reqs {
		if want[r.Path] != r.Mode {
			t.Errorf("got %s on %s, want %s", r.Mode, r.Path, want[r.Path])
		}
	}
}

func TestExpandSIXCombination(t *testing.T) {
	// R on a subtree + W inside it must keep both R and IW on the
	// subtree root (SIX), not collapse to one.
	reqs := ExpandRequests([]Request{
		{Path: "/a/b", Mode: R},
		{Path: "/a/b/c", Mode: W},
	})
	var modes []Mode
	for _, r := range reqs {
		if r.Path == "/a/b" {
			modes = append(modes, r.Mode)
		}
	}
	if len(modes) != 2 {
		t.Fatalf("modes on /a/b = %v, want [R IW] pair", modes)
	}
	hasR, hasIW := false, false
	for _, m := range modes {
		hasR = hasR || m == R
		hasIW = hasIW || m == IW
	}
	if !hasR || !hasIW {
		t.Fatalf("modes on /a/b = %v, want R and IW", modes)
	}
}

func TestExpandWSubsumes(t *testing.T) {
	reqs := ExpandRequests([]Request{
		{Path: "/a", Mode: W},
		{Path: "/a", Mode: R},
		{Path: "/a", Mode: IR},
	})
	if len(reqs) != 1 || reqs[0].Mode != W {
		t.Fatalf("expanded = %v, want single W", reqs)
	}
}

func TestAcquireConflictAndRelease(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("t1", []Request{{Path: "/vmRoot/h1/vm1", Mode: W}}); err != nil {
		t.Fatalf("t1 acquire: %v", err)
	}
	// Same leaf: conflict.
	err := m.Acquire("t2", []Request{{Path: "/vmRoot/h1/vm1", Mode: W}})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("t2 acquire err = %v, want ConflictError", err)
	}
	if ce.Holder != "t1" {
		t.Fatalf("conflict holder = %s", ce.Holder)
	}
	// Sibling leaf: compatible via intention locks.
	if err := m.Acquire("t2", []Request{{Path: "/vmRoot/h1/vm2", Mode: W}}); err != nil {
		t.Fatalf("sibling acquire: %v", err)
	}
	// Subtree read conflicts with existing descendant write.
	if err := m.Acquire("t3", []Request{{Path: "/vmRoot/h1", Mode: R}}); err == nil {
		t.Fatal("R over written subtree granted")
	}
	m.ReleaseAll("t1")
	m.ReleaseAll("t2")
	if err := m.Acquire("t3", []Request{{Path: "/vmRoot/h1", Mode: R}}); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	m.ReleaseAll("t3")
	if m.LockCount() != 0 || m.OwnerCount() != 0 {
		t.Fatalf("locks leaked: %s", m.Dump())
	}
}

func TestAllOrNothingAcquire(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("t1", []Request{{Path: "/a/x", Mode: W}}); err != nil {
		t.Fatal(err)
	}
	before := m.LockCount()
	// t2 wants a free leaf AND a conflicting one: nothing may be granted.
	err := m.Acquire("t2", []Request{
		{Path: "/a/free", Mode: W},
		{Path: "/a/x", Mode: R},
	})
	if err == nil {
		t.Fatal("conflicting batch granted")
	}
	if m.LockCount() != before {
		t.Fatalf("partial grant: %s", m.Dump())
	}
}

func TestSelfCompatibility(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("t1", []Request{{Path: "/a/b", Mode: W}}); err != nil {
		t.Fatal(err)
	}
	// Same owner re-requests overlapping and stronger locks: fine.
	if err := m.Acquire("t1", []Request{{Path: "/a/b", Mode: R}, {Path: "/a", Mode: R}}); err != nil {
		t.Fatalf("self re-acquire: %v", err)
	}
}

func TestReadersShareWritersDont(t *testing.T) {
	m := NewManager()
	for i := 0; i < 5; i++ {
		owner := fmt.Sprintf("r%d", i)
		if err := m.Acquire(owner, []Request{{Path: "/a/b", Mode: R}}); err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	if err := m.Acquire("w", []Request{{Path: "/a/b", Mode: W}}); err == nil {
		t.Fatal("writer admitted among readers")
	}
	if err := m.Acquire("w", []Request{{Path: "/a/c", Mode: W}}); err != nil {
		t.Fatalf("writer on free sibling: %v", err)
	}
}

func TestConstraintAncestorReadLockBlocksDescendantWrites(t *testing.T) {
	// The scheduler takes R on the highest constrained ancestor of a
	// write (e.g. the vmHost for a VM spawn). Another transaction
	// writing any descendant must then be deferred.
	m := NewManager()
	err := m.Acquire("t1", []Request{
		{Path: "/vmRoot/h1", Mode: R},     // constraint ancestor
		{Path: "/vmRoot/h1/vm1", Mode: W}, // the write itself
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("t2", []Request{{Path: "/vmRoot/h1/vm2", Mode: W}}); err == nil {
		t.Fatal("descendant write admitted under constraint R lock")
	}
	// A pure reader of another VM is fine (R ‖ R, IR ‖ IW-free).
	if err := m.Acquire("t3", []Request{{Path: "/vmRoot/h1/vm1", Mode: R}}); err == nil {
		t.Fatal("read of W-locked vm admitted")
	}
	if err := m.Acquire("t4", []Request{{Path: "/vmRoot/h2/vmX", Mode: W}}); err != nil {
		t.Fatalf("unrelated host write: %v", err)
	}
}

func TestWouldConflictDoesNotAcquire(t *testing.T) {
	m := NewManager()
	m.Acquire("t1", []Request{{Path: "/a", Mode: W}})
	if ce := m.WouldConflict("t2", []Request{{Path: "/a", Mode: R}}); ce == nil {
		t.Fatal("WouldConflict missed conflict")
	}
	if ce := m.WouldConflict("t1", []Request{{Path: "/a", Mode: R}}); ce != nil {
		t.Fatalf("self WouldConflict: %v", ce)
	}
	// WouldConflict must not change the lock table: only t1's W on /a.
	if m.LockCount() != 1 {
		t.Fatalf("WouldConflict acquired locks: %s", m.Dump())
	}
}

// Property: after any sequence of acquires and releases, no two distinct
// owners hold incompatible modes on the same path.
func TestInvariantNoIncompatibleHolders(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewManager()
		paths := []string{"/a", "/a/b", "/a/b/c", "/a/d", "/e", "/e/f"}
		modes := []Mode{R, W, IR, IW}
		owners := []string{"t1", "t2", "t3"}
		for i := 0; i < 200; i++ {
			owner := owners[rng.Intn(len(owners))]
			if rng.Intn(5) == 0 {
				m.ReleaseAll(owner)
				continue
			}
			req := Request{Path: paths[rng.Intn(len(paths))], Mode: modes[rng.Intn(len(modes))]}
			_ = m.Acquire(owner, []Request{req}) // conflicts allowed to fail
		}
		// Verify invariant over the final table.
		m.mu.Lock()
		defer m.mu.Unlock()
		for _, byOwner := range m.nodes {
			type hm struct {
				owner string
				mode  Mode
			}
			var all []hm
			for o, h := range byOwner {
				for mode, cnt := range h.modes {
					if cnt > 0 {
						all = append(all, hm{o, mode})
					}
				}
			}
			for i := 0; i < len(all); i++ {
				for j := i + 1; j < len(all); j++ {
					if all[i].owner != all[j].owner && !compatible(all[i].mode, all[j].mode) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAcquireRelease(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			owner := fmt.Sprintf("t%d", id)
			path := fmt.Sprintf("/root/h%d/vm", id%4)
			for i := 0; i < 100; i++ {
				if err := m.Acquire(owner, []Request{{Path: path, Mode: W}}); err == nil {
					m.ReleaseAll(owner)
				}
			}
		}(w)
	}
	wg.Wait()
	// At most the final holders remain; release them all.
	for w := 0; w < 8; w++ {
		m.ReleaseAll(fmt.Sprintf("t%d", w))
	}
	if m.LockCount() != 0 {
		t.Fatalf("locks leaked: %s", m.Dump())
	}
}
