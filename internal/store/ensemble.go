package store

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store/persist"
)

// Config parameterizes an ensemble.
type Config struct {
	// Replicas is the ensemble size; writes require a strict majority of
	// replicas alive. Defaults to 3, matching TROPIC's deployment.
	Replicas int
	// SessionTimeout is how long a session survives without heartbeats
	// before the ensemble expires it and reaps its ephemeral nodes. This
	// is TROPIC's failure-detection knob: controller failover time is
	// dominated by it (paper §6.4). Defaults to 500ms.
	SessionTimeout time.Duration
	// CommitLatency simulates the I/O cost of one quorum round
	// (proposal + majority acknowledgment). The paper observes that
	// ZooKeeper API calls, not logical simulation, dominate transaction
	// overhead; setting this non-zero reproduces that regime. Defaults
	// to 0 (no artificial latency).
	CommitLatency time.Duration
	// TickInterval is how often the ensemble checks for expired
	// sessions. Defaults to SessionTimeout/4.
	TickInterval time.Duration
	// DataDir, when non-empty, makes the ensemble durable: every
	// committed write is appended to a write-ahead log in this directory
	// before it is applied, and on startup the ensemble recovers from
	// the latest snapshot plus the WAL tail (pre-crash sessions are
	// expired so ephemeral cleanup and re-election fire exactly as on
	// failover). Empty (the default) keeps the ensemble purely
	// in-memory with no disk I/O.
	DataDir string
	// SyncPolicy selects when the WAL is fsynced (SyncAlways, the
	// default, or SyncNone). Ignored without DataDir.
	SyncPolicy SyncPolicy
	// SnapshotEvery writes a full-tree snapshot and truncates the WAL
	// after this many logged writes. Defaults to 4096 when DataDir is
	// set; negative disables snapshotting. Ignored without DataDir.
	SnapshotEvery int
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 500 * time.Millisecond
	}
	if c.TickInterval <= 0 {
		c.TickInterval = c.SessionTimeout / 4
	}
	if c.DataDir != "" && c.SnapshotEvery == 0 {
		c.SnapshotEvery = 4096
	}
	return c
}

// opKind enumerates the write operations sequenced by the ensemble.
type opKind int

const (
	opCreate opKind = iota
	opSet
	opDelete
	opExpireSession
	opMulti
)

// Op is a single write in a Multi batch.
type Op struct {
	kind    opKind
	Path    string
	Data    []byte
	Flags   int
	Version int32
	ops     []Op
	session int64
	// resolvedName is filled in during validation for sequence nodes so
	// that every replica applies the identical, fully determined op.
	resolvedName string
}

// CreateOp builds a create operation for Multi.
func CreateOp(path string, data []byte, flags int) Op {
	return Op{kind: opCreate, Path: path, Data: data, Flags: flags}
}

// SetOp builds a conditional set for Multi. Version -1 disables the check.
func SetOp(path string, data []byte, version int32) Op {
	return Op{kind: opSet, Path: path, Data: data, Version: version}
}

// DeleteOp builds a conditional delete for Multi. Version -1 disables the
// check.
func DeleteOp(path string, version int32) Op {
	return Op{kind: opDelete, Path: path, Version: version}
}

// logEntry is one committed operation with its position in the total
// order.
type logEntry struct {
	op   Op
	zxid int64
}

// replica is one member of the ensemble. All live replicas apply the same
// committed sequence; a stopped replica stops applying and catches up from
// a live peer on restart.
//
// Writers (commit, catch-up, recovery) mutate the tree holding e.mu AND
// r.mu; follower reads take only r.mu.RLock, so they never contend with
// the ensemble commit lock — the whole point of the follower read path.
// The lock order is always e.mu → r.mu.
type replica struct {
	id    int
	alive atomic.Bool
	// mu guards tree and appliedZxid against lock-free follower reads.
	mu          sync.RWMutex
	tree        *tree
	appliedZxid int64 // zxid of the last op applied to tree
	applyIdx    int64 // index into ensemble.log of the next op to apply
}

// session tracks one client connection.
type session struct {
	id        int64
	timeout   time.Duration
	lastBeat  time.Time
	expired   bool
	closed    bool
	expiredCh chan struct{}
}

// Ensemble is the replicated coordination service.
type Ensemble struct {
	cfg Config

	mu       sync.Mutex
	replicas []*replica
	log      []logEntry // committed totally ordered operation log
	zxid     int64
	sessions map[int64]*session
	nextSess int64
	watches  *watchTable
	closed   bool

	// readSeq rotates follower reads round-robin across replicas; it is
	// deliberately outside e.mu — follower reads must not touch the
	// commit lock.
	readSeq atomic.Int64

	stopTick chan struct{}
	tickDone chan struct{}

	// Durability (nil without Config.DataDir).
	pstore    *persist.Store
	sinceSnap int // WAL appends since the last snapshot

	// stats
	commits int64
}

// NewEnsemble creates and starts an ensemble with all replicas alive.
// It is the in-memory constructor: cfg.DataDir must be empty (durable
// ensembles recover from disk and can fail — use OpenEnsemble).
func NewEnsemble(cfg Config) *Ensemble {
	e, err := OpenEnsemble(cfg)
	if err != nil {
		// Only reachable with a DataDir, whose callers must use
		// OpenEnsemble and handle the error.
		panic("store: NewEnsemble with DataDir: " + err.Error())
	}
	return e
}

// OpenEnsemble creates and starts an ensemble. With cfg.DataDir set it
// first recovers all persistent state from the directory (snapshot +
// WAL tail) and expires every pre-crash session, then serves with every
// committed write logged before it is applied.
func OpenEnsemble(cfg Config) (*Ensemble, error) {
	cfg = cfg.withDefaults()
	e := &Ensemble{
		cfg:      cfg,
		sessions: make(map[int64]*session),
		watches:  newWatchTable(),
		stopTick: make(chan struct{}),
		tickDone: make(chan struct{}),
	}
	for i := 0; i < cfg.Replicas; i++ {
		r := &replica{id: i, tree: newTree()}
		r.alive.Store(true)
		e.replicas = append(e.replicas, r)
	}
	if cfg.DataDir != "" {
		ps, err := persist.Open(cfg.DataDir, cfg.SyncPolicy)
		if err != nil {
			return nil, err
		}
		e.pstore = ps
		if err := e.recoverFromDisk(); err != nil {
			ps.Close()
			return nil, fmt.Errorf("store: recover %s: %w", cfg.DataDir, err)
		}
	}
	go e.tickLoop()
	return e, nil
}

// Close shuts the ensemble down. All subsequent operations fail with
// ErrClosed. The returned error reports a failed final WAL flush — the
// shutdown itself always completes, but a caller that persists state
// must not tell its operator the tail is durable when it is not.
func (e *Ensemble) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for _, s := range e.sessions {
		if !s.expired {
			s.expired = true
			close(s.expiredCh)
		}
	}
	e.mu.Unlock()
	close(e.stopTick)
	<-e.tickDone
	if e.pstore != nil {
		// No further commits are possible (closed is set); flush the WAL
		// tail so everything committed survives the shutdown.
		return e.pstore.Close()
	}
	return nil
}

func (e *Ensemble) tickLoop() {
	defer close(e.tickDone)
	t := time.NewTicker(e.cfg.TickInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stopTick:
			return
		case now := <-t.C:
			e.expireSessions(now)
		}
	}
}

// expireSessions reaps sessions whose heartbeat lapsed. Reaping a session
// is itself a committed operation so that every replica deletes the same
// ephemeral nodes at the same point in the total order.
func (e *Ensemble) expireSessions(now time.Time) {
	e.mu.Lock()
	var victims []int64
	for id, s := range e.sessions {
		if !s.expired && !s.closed && now.Sub(s.lastBeat) > s.timeout {
			victims = append(victims, id)
		}
	}
	e.mu.Unlock()
	for _, id := range victims {
		e.ExpireSession(id)
	}
}

// ExpireSession forcibly expires a session, deleting its ephemeral nodes.
// Exposed for fault-injection in tests and the failover benchmarks.
func (e *Ensemble) ExpireSession(id int64) {
	e.mu.Lock()
	s, ok := e.sessions[id]
	if !ok || s.expired {
		e.mu.Unlock()
		return
	}
	s.expired = true
	op := Op{kind: opExpireSession, session: id}
	if err := e.commitLocked(op); err != nil {
		// Without quorum we cannot reap ephemerals; the session stays
		// marked expired and its client errors out, matching ZooKeeper
		// behavior during ensemble unavailability.
		s.expired = true
	}
	close(s.expiredCh)
	e.mu.Unlock()
	e.watches.expireSession(id)
}

// aliveCount returns how many replicas are alive.
func (e *Ensemble) aliveCount() int {
	n := 0
	for _, r := range e.replicas {
		if r.alive.Load() {
			n++
		}
	}
	return n
}

// leaderTree returns the tree of the lowest-index live replica, which is
// always fully caught up because commits apply synchronously to all live
// replicas.
func (e *Ensemble) leaderTree() (*tree, error) {
	for _, r := range e.replicas {
		if r.alive.Load() {
			return r.tree, nil
		}
	}
	return nil, ErrNoQuorum
}

// StopReplica simulates a replica crash. Pending state is retained; the
// replica no longer applies committed operations.
func (e *Ensemble) StopReplica(i int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i >= 0 && i < len(e.replicas) {
		e.replicas[i].alive.Store(false)
	}
}

// StartReplica restarts a stopped replica and catches it up by replaying
// the committed log suffix it missed.
func (e *Ensemble) StartReplica(i int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= len(e.replicas) {
		return
	}
	r := e.replicas[i]
	if r.alive.Load() {
		return
	}
	r.mu.Lock()
	for r.applyIdx < int64(len(e.log)) {
		entry := e.log[r.applyIdx]
		applyOp(r.tree, entry.op, entry.zxid, nil)
		r.appliedZxid = entry.zxid
		r.applyIdx++
	}
	r.mu.Unlock()
	r.alive.Store(true)
}

// Zxid reports the id of the most recently sequenced write. A client
// that has observed state as of Zxid can demand it back from any
// replica via the watermark argument of the follower-read API.
func (e *Ensemble) Zxid() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.zxid
}

// followerRead serves fn against any live replica that has applied at
// least minZxid, WITHOUT taking the ensemble commit lock. Candidates
// rotate round-robin so concurrent readers spread across the ensemble.
// The replica's read lock is held for the duration of fn, so fn sees a
// tree frozen exactly at the returned zxid. served=false means no
// replica satisfies the watermark (all behind it, or none alive) and
// the caller must fall through to a leader read; fn's own error (e.g.
// ErrNoNode) is a real result, not a reason to try another replica —
// replicas at ≥ minZxid answer a session-consistent read identically
// for the session's own writes.
func (e *Ensemble) followerRead(minZxid int64, fn func(*tree) error) (zxid int64, served bool, err error) {
	n := len(e.replicas)
	start := int(e.readSeq.Add(1) % int64(n))
	for k := 0; k < n; k++ {
		r := e.replicas[(start+k)%n]
		if !r.alive.Load() {
			continue
		}
		r.mu.RLock()
		if r.appliedZxid < minZxid {
			r.mu.RUnlock()
			continue
		}
		err = fn(r.tree)
		zxid = r.appliedZxid
		r.mu.RUnlock()
		return zxid, true, err
	}
	return 0, false, nil
}

// commitLocked validates op against the current (leader) tree, sequences
// it, and applies it to every live replica. Caller holds e.mu.
func (e *Ensemble) commitLocked(op Op) error {
	if e.closed {
		return ErrClosed
	}
	if e.aliveCount()*2 <= len(e.replicas) {
		return ErrNoQuorum
	}
	lt, err := e.leaderTree()
	if err != nil {
		return err
	}
	resolved, err := validateOp(lt, op)
	if err != nil {
		return err
	}
	if e.cfg.CommitLatency > 0 {
		// One quorum round: proposal broadcast + majority ack. Simulated
		// under the commit lock because ZooKeeper serializes writes
		// through its leader pipeline; this is what makes store I/O the
		// throughput bottleneck, as observed in the paper.
		time.Sleep(e.cfg.CommitLatency)
	}
	e.zxid++
	if e.pstore != nil {
		// Log-before-apply: the record must be on the log (and, under
		// SyncAlways, on stable storage) before any replica observes the
		// mutation. On failure the write is rejected — no replica applied
		// it — and the persist layer goes fail-stop, so every later write
		// fails too. The zxid is NOT reused: the failed record's frame
		// may be fully on disk (e.g. write ok, fsync failed) and will
		// then reappear on recovery, so its id must stay unique.
		if err := e.pstore.Append(e.zxid, encodeOp(resolved)); err != nil {
			return err
		}
	}
	e.log = append(e.log, logEntry{op: resolved, zxid: e.zxid})
	fired := &firedWatches{}
	first := true
	for _, r := range e.replicas {
		if !r.alive.Load() {
			continue
		}
		r.mu.Lock()
		if first {
			// Collect watch events only once; live replica trees are
			// identical so the events would be identical too.
			applyOp(r.tree, resolved, e.zxid, fired)
			first = false
		} else {
			applyOp(r.tree, resolved, e.zxid, nil)
		}
		r.appliedZxid = e.zxid
		r.applyIdx = int64(len(e.log))
		r.mu.Unlock()
	}
	e.commits++
	if e.pstore != nil {
		e.maybeSnapshotLocked()
	}
	e.watches.fire(fired)
	return nil
}

// commitAllLocked commits several independent op groups in ONE proposal
// round: one quorum-latency charge, one WAL fsync, and one watch-delivery
// pass, instead of one of each per group. This is the same amortization
// the WAL layer's group fsync applies to disk writes, lifted to the
// ensemble's commit pipeline — the ZooKeeper round trips the paper
// identifies as the dominant per-transaction cost (§6.1).
//
// Each group is atomic on its own (validated exactly like a Multi); a
// group that fails validation is skipped with its error demultiplexed to
// its slot, without affecting its siblings. Later groups observe the
// effects of earlier successful groups, exactly as if the groups had
// committed back-to-back.
//
// Durability ordering: every group's record is written to the WAL before
// the group is applied, but the single fsync happens after the whole run
// is applied. On the happy path no client can observe the relaxation —
// reads and watch deliveries happen only after the run is synced and
// e.mu released. If the sync itself fails, the whole round is reported
// failed, its watches are NOT fired, no snapshot is taken, and the
// persist layer goes fail-stop: the round's effects linger in the
// replicas' memory (they cannot be unapplied), but no later write can
// commit behind the indeterminate tail, so the divergence is terminal —
// including for callers that retry, whose retries fail too. This is one
// step weaker than the single-op path (which rejects before applying);
// it is the price of validating each group against its predecessors'
// effects. Caller holds e.mu.
func (e *Ensemble) commitAllLocked(groups [][]Op) []GroupResult {
	results := make([]GroupResult, len(groups))
	fill := func(err error) []GroupResult {
		for i := range results {
			results[i] = GroupResult{Err: err}
		}
		return results
	}
	if e.closed {
		return fill(ErrClosed)
	}
	if e.aliveCount()*2 <= len(e.replicas) {
		return fill(ErrNoQuorum)
	}
	if e.cfg.CommitLatency > 0 {
		// ONE quorum round for the whole batch: proposal broadcast +
		// majority ack, with every group riding the same proposal.
		time.Sleep(e.cfg.CommitLatency)
	}
	fired := &firedWatches{}
	var applied []int
	var walFailed error
	for gi, ops := range groups {
		if walFailed != nil {
			// Fail-stop: nothing may commit behind a torn WAL frame.
			results[gi].Err = walFailed
			continue
		}
		lt, err := e.leaderTree()
		if err != nil {
			results[gi].Err = err
			continue
		}
		resolved, err := validateOp(lt, Op{kind: opMulti, ops: ops})
		if err != nil {
			results[gi].Err = err
			continue
		}
		e.zxid++
		if e.pstore != nil {
			if err := e.pstore.AppendNoSync(e.zxid, encodeOp(resolved)); err != nil {
				results[gi].Err = err
				walFailed = err
				continue
			}
		}
		e.log = append(e.log, logEntry{op: resolved, zxid: e.zxid})
		first := true
		for _, r := range e.replicas {
			if !r.alive.Load() {
				continue
			}
			r.mu.Lock()
			if first {
				applyOp(r.tree, resolved, e.zxid, fired)
				first = false
			} else {
				applyOp(r.tree, resolved, e.zxid, nil)
			}
			r.appliedZxid = e.zxid
			r.applyIdx = int64(len(e.log))
			r.mu.Unlock()
		}
		e.commits++
		paths := make([]string, len(resolved.ops))
		for i, sub := range resolved.ops {
			if sub.kind == opCreate {
				paths[i] = childFullPath(sub.Path, sub.resolvedName)
			}
		}
		results[gi].Paths = paths
		results[gi].Zxid = e.zxid
		applied = append(applied, gi)
	}
	if e.pstore != nil && len(applied) > 0 {
		if err := e.pstore.SyncGroup(); err != nil {
			// Report the round failed and surface none of it: no watch
			// fires, no snapshot of state whose log record may not be
			// durable. Fail-stop prevents anything committing after it.
			for _, gi := range applied {
				results[gi] = GroupResult{Err: err}
			}
			return results
		}
		for range applied {
			e.maybeSnapshotLocked()
		}
	}
	e.watches.fire(fired)
	return results
}

// validateOp checks an op against the authoritative tree and resolves
// sequence-node names so the op applies deterministically on every
// replica.
func validateOp(t *tree, op Op) (Op, error) {
	switch op.kind {
	case opCreate:
		parts, err := splitPath(op.Path)
		if err != nil {
			return op, err
		}
		if len(parts) == 0 {
			return op, fmt.Errorf("%w: cannot create root", ErrBadPath)
		}
		parent, err := t.lookup(parentPath(op.Path))
		if err != nil {
			return op, err
		}
		if parent.ephemeralOwner != 0 {
			return op, fmt.Errorf("%w: parent of %s", ErrEphemeralChildren, op.Path)
		}
		name := parts[len(parts)-1]
		if op.Flags&FlagSequence != 0 {
			name = fmt.Sprintf("%s%010d", name, parent.seqCounter)
		}
		if _, exists := parent.children[name]; exists {
			return op, fmt.Errorf("%w: %s", ErrNodeExists, parentPath(op.Path)+"/"+name)
		}
		op.resolvedName = name
		return op, nil
	case opSet:
		n, err := t.lookup(op.Path)
		if err != nil {
			return op, err
		}
		if op.Version >= 0 && n.version != op.Version {
			return op, fmt.Errorf("%w: %s has version %d, want %d", ErrBadVersion, op.Path, n.version, op.Version)
		}
		return op, nil
	case opDelete:
		n, err := t.lookup(op.Path)
		if err != nil {
			return op, err
		}
		if op.Version >= 0 && n.version != op.Version {
			return op, fmt.Errorf("%w: %s has version %d, want %d", ErrBadVersion, op.Path, n.version, op.Version)
		}
		if len(n.children) > 0 {
			return op, fmt.Errorf("%w: %s", ErrNotEmpty, op.Path)
		}
		return op, nil
	case opExpireSession:
		return op, nil
	case opMulti:
		// Validate sub-ops so later ops see the effects of earlier ones
		// (exactly as ZooKeeper's multi does) using a lightweight
		// overlay — copying the tree would make every Multi O(tree),
		// which at cloud scale is the difference between microseconds
		// and seconds per transaction.
		mv := newMultiValidator(t)
		resolved := make([]Op, len(op.ops))
		for i, sub := range op.ops {
			r, err := mv.validate(sub)
			if err != nil {
				return op, fmt.Errorf("multi op %d: %w", i, err)
			}
			resolved[i] = r
		}
		op.ops = resolved
		return op, nil
	default:
		return op, fmt.Errorf("store: unknown op kind %d", op.kind)
	}
}

// applyOp applies a validated, resolved op to a tree. When fired is
// non-nil, watch events triggered by the mutation are recorded in it.
func applyOp(t *tree, op Op, zxid int64, fired *firedWatches) {
	switch op.kind {
	case opCreate:
		parent, err := t.lookup(parentPath(op.Path))
		if err != nil {
			return // cannot happen for validated ops
		}
		if op.Flags&FlagSequence != 0 {
			parent.seqCounter++
		}
		n := newZnode(op.resolvedName)
		n.data = append([]byte(nil), op.Data...)
		n.czxid, n.mzxid = zxid, zxid
		n.ephemeralOwner = op.session
		parent.children[op.resolvedName] = n
		if fired != nil {
			full := childFullPath(op.Path, op.resolvedName)
			fired.add(full, EventCreated)
			fired.addChild(parentPath(op.Path))
		}
	case opSet:
		n, err := t.lookup(op.Path)
		if err != nil {
			return
		}
		n.data = append([]byte(nil), op.Data...)
		n.version++
		n.mzxid = zxid
		if fired != nil {
			fired.add(op.Path, EventDataChanged)
		}
	case opDelete:
		parent, err := t.lookup(parentPath(op.Path))
		if err != nil {
			return
		}
		parts, _ := splitPath(op.Path)
		name := parts[len(parts)-1]
		delete(parent.children, name)
		if fired != nil {
			fired.add(op.Path, EventDeleted)
			fired.addChild(parentPath(op.Path))
		}
	case opExpireSession:
		var eph []string
		collectEphemerals(t.root, "", op.session, &eph)
		// Delete deepest-first so parents empty out before removal.
		for i := len(eph) - 1; i >= 0; i-- {
			applyOp(t, Op{kind: opDelete, Path: eph[i], Version: -1}, zxid, fired)
		}
	case opMulti:
		for _, sub := range op.ops {
			applyOp(t, sub, zxid, fired)
		}
	}
}

// childFullPath joins the parent-derived path of a create op with the
// resolved (possibly sequence-suffixed) final name.
func childFullPath(requested, resolvedName string) string {
	pp := parentPath(requested)
	if pp == "/" {
		return "/" + resolvedName
	}
	return pp + "/" + resolvedName
}

// Health summarizes ensemble availability for readiness probes.
type Health struct {
	// Replicas is the configured ensemble size.
	Replicas int `json:"replicas"`
	// Alive is how many replicas are currently applying commits.
	Alive int `json:"alive"`
	// Quorum reports whether a strict majority is alive (writes can
	// commit).
	Quorum bool `json:"quorum"`
	// Sessions is the number of live client sessions.
	Sessions int `json:"sessions"`
}

// Health returns a snapshot of ensemble availability.
func (e *Ensemble) Health() Health {
	e.mu.Lock()
	defer e.mu.Unlock()
	alive := e.aliveCount()
	return Health{
		Replicas: len(e.replicas),
		Alive:    alive,
		Quorum:   alive*2 > len(e.replicas),
		Sessions: len(e.sessions),
	}
}

// WatchCounts reports outstanding node and child watch registrations,
// for leak tests and the stats surface.
func (e *Ensemble) WatchCounts() (node, child int) {
	return e.watches.counts()
}

// Commits reports how many write operations the ensemble has committed.
func (e *Ensemble) Commits() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commits
}

// DumpPaths returns all paths in the current tree, for debugging and
// tests.
func (e *Ensemble) DumpPaths() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	lt, err := e.leaderTree()
	if err != nil {
		return nil
	}
	var out []string
	var walk func(n *znode, prefix string)
	walk = func(n *znode, prefix string) {
		for _, name := range n.sortedChildren() {
			p := prefix + "/" + name
			out = append(out, p)
			walk(n.children[name], p)
		}
	}
	walk(lt.root, "")
	return out
}

// String summarizes ensemble state for debugging.
func (e *Ensemble) String() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "ensemble{replicas=%d alive=%d zxid=%d sessions=%d}",
		len(e.replicas), e.aliveCount(), e.zxid, len(e.sessions))
	return b.String()
}
