package store

import "sync"

// EventType identifies what happened to a watched znode.
type EventType int

const (
	// EventCreated fires when the watched path is created.
	EventCreated EventType = iota
	// EventDeleted fires when the watched path is deleted.
	EventDeleted
	// EventDataChanged fires when the watched path's data is set.
	EventDataChanged
	// EventChildrenChanged fires when a child of the watched path is
	// created or deleted.
	EventChildrenChanged
	// EventSessionExpired is delivered to all of a client's outstanding
	// watches when its session expires.
	EventSessionExpired
)

// String renders the event type for logs.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventDeleted:
		return "deleted"
	case EventDataChanged:
		return "data-changed"
	case EventChildrenChanged:
		return "children-changed"
	case EventSessionExpired:
		return "session-expired"
	default:
		return "unknown"
	}
}

// Event notifies a watcher of a change.
type Event struct {
	Type EventType
	Path string
}

// watcher is a one-shot watch registration. The channel has capacity 1
// and is closed after delivery, matching ZooKeeper's one-shot watch
// semantics.
type watcher struct {
	ch      chan Event
	session int64
}

// watchTable indexes outstanding watches by path. Node watches observe
// create/delete/set on the path itself; child watches observe membership
// changes of the path's children.
type watchTable struct {
	mu    sync.Mutex
	node  map[string][]*watcher
	child map[string][]*watcher
}

func newWatchTable() *watchTable {
	return &watchTable{
		node:  make(map[string][]*watcher),
		child: make(map[string][]*watcher),
	}
}

func (wt *watchTable) addNode(path string, w *watcher) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	wt.node[path] = append(wt.node[path], w)
}

func (wt *watchTable) addChild(path string, w *watcher) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	wt.child[path] = append(wt.child[path], w)
}

// cancelNode removes an armed node watch that will not be consumed,
// identified by its channel, and closes the channel without delivering
// an event. A watch that already fired (and was therefore removed) is
// left alone — each watcher is finalized by exactly one path, since
// both fire and cancel detach it from the table under the mutex before
// touching the channel.
func (wt *watchTable) cancelNode(path string, ch <-chan Event) {
	wt.mu.Lock()
	var victim *watcher
	ws := wt.node[path]
	for i, w := range ws {
		if w.ch == ch {
			victim = w
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(wt.node, path)
	} else if victim != nil {
		wt.node[path] = ws
	}
	wt.mu.Unlock()
	if victim != nil {
		close(victim.ch)
	}
}

// firedWatches accumulates the events produced while applying one
// committed operation; fire delivers them after the tree mutation is
// complete.
type firedWatches struct {
	node  []Event
	child []string
}

func (f *firedWatches) add(path string, t EventType) {
	if f != nil {
		f.node = append(f.node, Event{Type: t, Path: path})
	}
}

func (f *firedWatches) addChild(path string) {
	if f != nil {
		f.child = append(f.child, path)
	}
}

// fire delivers accumulated events to matching watchers and removes them
// (one-shot).
func (wt *watchTable) fire(f *firedWatches) {
	if f == nil {
		return
	}
	wt.mu.Lock()
	var deliveries []struct {
		w  *watcher
		ev Event
	}
	for _, ev := range f.node {
		if ws := wt.node[ev.Path]; len(ws) > 0 {
			for _, w := range ws {
				deliveries = append(deliveries, struct {
					w  *watcher
					ev Event
				}{w, ev})
			}
			delete(wt.node, ev.Path)
		}
	}
	for _, path := range f.child {
		if ws := wt.child[path]; len(ws) > 0 {
			ev := Event{Type: EventChildrenChanged, Path: path}
			for _, w := range ws {
				deliveries = append(deliveries, struct {
					w  *watcher
					ev Event
				}{w, ev})
			}
			delete(wt.child, path)
		}
	}
	wt.mu.Unlock()
	for _, d := range deliveries {
		d.w.ch <- d.ev
		close(d.w.ch)
	}
}

// expireSession delivers EventSessionExpired to all watches registered by
// the session and removes them.
func (wt *watchTable) expireSession(session int64) {
	wt.mu.Lock()
	var victims []*watcher
	for path, ws := range wt.node {
		var keep []*watcher
		for _, w := range ws {
			if w.session == session {
				victims = append(victims, w)
			} else {
				keep = append(keep, w)
			}
		}
		if len(keep) == 0 {
			delete(wt.node, path)
		} else {
			wt.node[path] = keep
		}
	}
	for path, ws := range wt.child {
		var keep []*watcher
		for _, w := range ws {
			if w.session == session {
				victims = append(victims, w)
			} else {
				keep = append(keep, w)
			}
		}
		if len(keep) == 0 {
			delete(wt.child, path)
		} else {
			wt.child[path] = keep
		}
	}
	wt.mu.Unlock()
	for _, w := range victims {
		w.ch <- Event{Type: EventSessionExpired}
		close(w.ch)
	}
}
