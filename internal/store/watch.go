package store

import "sync"

// EventType identifies what happened to a watched znode.
type EventType int

const (
	// EventCreated fires when the watched path is created.
	EventCreated EventType = iota
	// EventDeleted fires when the watched path is deleted.
	EventDeleted
	// EventDataChanged fires when the watched path's data is set.
	EventDataChanged
	// EventChildrenChanged fires when a child of the watched path is
	// created or deleted.
	EventChildrenChanged
	// EventSessionExpired is delivered to all of a client's outstanding
	// watches when its session expires.
	EventSessionExpired
)

// String renders the event type for logs.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventDeleted:
		return "deleted"
	case EventDataChanged:
		return "data-changed"
	case EventChildrenChanged:
		return "children-changed"
	case EventSessionExpired:
		return "session-expired"
	default:
		return "unknown"
	}
}

// Event notifies a watcher of a change.
type Event struct {
	Type EventType
	Path string
}

// watcher is a watch registration. One-shot watchers (the default,
// matching ZooKeeper semantics) have a capacity-1 channel that delivers
// exactly one event and is then closed. Persistent watchers stay
// registered across events: deliveries are non-blocking into the same
// capacity-1 channel, so back-to-back changes coalesce into one pending
// wakeup — exactly the level-triggered semantics a queue consumer needs
// (one pending event means "re-list", however many changes produced it).
type watcher struct {
	ch         chan Event
	session    int64
	persistent bool
}

// watchTable indexes outstanding watches by path. Node watches observe
// create/delete/set on the path itself; child watches observe membership
// changes of the path's children.
type watchTable struct {
	mu    sync.Mutex
	node  map[string][]*watcher
	child map[string][]*watcher
}

func newWatchTable() *watchTable {
	return &watchTable{
		node:  make(map[string][]*watcher),
		child: make(map[string][]*watcher),
	}
}

func (wt *watchTable) addNode(path string, w *watcher) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	wt.node[path] = append(wt.node[path], w)
}

func (wt *watchTable) addChild(path string, w *watcher) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	wt.child[path] = append(wt.child[path], w)
}

// cancelNode removes an armed node watch that will not be consumed,
// identified by its channel, and closes the channel without delivering
// an event. A watch that already fired (and was therefore removed) is
// left alone — each watcher is finalized by exactly one path, since
// both fire and cancel detach it from the table under the mutex before
// touching the channel.
func (wt *watchTable) cancelNode(path string, ch <-chan Event) {
	wt.mu.Lock()
	var victim *watcher
	ws := wt.node[path]
	for i, w := range ws {
		if w.ch == ch {
			victim = w
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(wt.node, path)
	} else if victim != nil {
		wt.node[path] = ws
	}
	wt.mu.Unlock()
	if victim != nil {
		close(victim.ch)
	}
}

// firedWatches accumulates the events produced while applying one
// committed operation; fire delivers them after the tree mutation is
// complete.
type firedWatches struct {
	node  []Event
	child []string
}

func (f *firedWatches) add(path string, t EventType) {
	if f != nil {
		f.node = append(f.node, Event{Type: t, Path: path})
	}
}

func (f *firedWatches) addChild(path string) {
	if f != nil {
		f.child = append(f.child, path)
	}
}

// fire delivers accumulated events. One-shot watchers are detached under
// the mutex and finalized (delivered + closed) after it, so exactly one
// path ever touches their channel. Persistent watchers are delivered
// non-blockingly while the mutex is held — they stay in the table, and
// holding the mutex means a concurrent cancel cannot close the channel
// mid-send.
func (wt *watchTable) fire(f *firedWatches) {
	if f == nil {
		return
	}
	wt.mu.Lock()
	var deliveries []struct {
		w  *watcher
		ev Event
	}
	deliver := func(m map[string][]*watcher, path string, ev Event) {
		ws := m[path]
		if len(ws) == 0 {
			return
		}
		var keep []*watcher
		for _, w := range ws {
			if w.persistent {
				select {
				case w.ch <- ev:
				default: // coalesce: a wakeup is already pending
				}
				keep = append(keep, w)
				continue
			}
			deliveries = append(deliveries, struct {
				w  *watcher
				ev Event
			}{w, ev})
		}
		if len(keep) == 0 {
			delete(m, path)
		} else {
			m[path] = keep
		}
	}
	for _, ev := range f.node {
		deliver(wt.node, ev.Path, ev)
	}
	for _, path := range f.child {
		deliver(wt.child, path, Event{Type: EventChildrenChanged, Path: path})
	}
	wt.mu.Unlock()
	for _, d := range deliveries {
		d.w.ch <- d.ev
		close(d.w.ch)
	}
}

// expireSession delivers EventSessionExpired to all watches registered by
// the session and removes them.
func (wt *watchTable) expireSession(session int64) {
	wt.mu.Lock()
	var victims []*watcher
	for path, ws := range wt.node {
		var keep []*watcher
		for _, w := range ws {
			if w.session == session {
				victims = append(victims, w)
			} else {
				keep = append(keep, w)
			}
		}
		if len(keep) == 0 {
			delete(wt.node, path)
		} else {
			wt.node[path] = keep
		}
	}
	for path, ws := range wt.child {
		var keep []*watcher
		for _, w := range ws {
			if w.session == session {
				victims = append(victims, w)
			} else {
				keep = append(keep, w)
			}
		}
		if len(keep) == 0 {
			delete(wt.child, path)
		} else {
			wt.child[path] = keep
		}
	}
	wt.mu.Unlock()
	for _, w := range victims {
		if w.persistent {
			// The slot may hold a coalesced event; the closed channel
			// itself signals expiry to the consumer either way.
			select {
			case w.ch <- Event{Type: EventSessionExpired}:
			default:
			}
		} else {
			w.ch <- Event{Type: EventSessionExpired}
		}
		close(w.ch)
	}
}

// cancelChild removes a child watcher (persistent or one-shot) that will
// not be consumed further and closes its channel. Safe against
// concurrent fire: the watcher is detached under the mutex before the
// channel is touched, and persistent deliveries happen under the same
// mutex, so exactly one path finalizes it.
func (wt *watchTable) cancelChild(path string, w *watcher) {
	wt.mu.Lock()
	ws := wt.child[path]
	found := false
	for i, x := range ws {
		if x == w {
			found = true
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(wt.child, path)
	} else if found {
		wt.child[path] = ws
	}
	wt.mu.Unlock()
	if found {
		close(w.ch)
	}
}

// cancelNodeWatcher is cancelChild for the node map: it removes a node
// watcher (persistent or one-shot) by identity and closes its channel,
// with the same detach-under-mutex finalization guarantee.
func (wt *watchTable) cancelNodeWatcher(path string, w *watcher) {
	wt.mu.Lock()
	ws := wt.node[path]
	found := false
	for i, x := range ws {
		if x == w {
			found = true
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(wt.node, path)
	} else if found {
		wt.node[path] = ws
	}
	wt.mu.Unlock()
	if found {
		close(w.ch)
	}
}

// counts reports outstanding watch registrations, for leak tests and the
// stats surface.
func (wt *watchTable) counts() (node, child int) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	for _, ws := range wt.node {
		node += len(ws)
	}
	for _, ws := range wt.child {
		child += len(ws)
	}
	return node, child
}

// ChildWatch is a reusable child watch: unlike the one-shot
// WatchChildren, it stays armed across events, with back-to-back
// membership changes coalescing into one pending wakeup. A closed
// channel means the session expired (an EventSessionExpired may precede
// the close when the slot was free). Close releases the registration;
// queue consumers arm one ChildWatch per blocking take instead of
// leaking a fresh one-shot watch per poll round.
type ChildWatch struct {
	path string
	w    *watcher
	wt   *watchTable
}

// C returns the event channel.
func (cw *ChildWatch) C() <-chan Event { return cw.w.ch }

// Close releases the watch and closes its channel. Idempotent.
func (cw *ChildWatch) Close() { cw.wt.cancelChild(cw.path, cw.w) }

// NodeWatch is ChildWatch's node-level sibling: a reusable watch on
// create/delete/set of one path, coalescing back-to-back changes into
// one pending wakeup. A closed channel means the session expired. One
// NodeWatch fans out to arbitrarily many read-path subscribers, which
// is what keeps 100k concurrent watch streams at O(records) store
// watches instead of O(sessions).
type NodeWatch struct {
	path string
	w    *watcher
	wt   *watchTable
}

// C returns the event channel.
func (nw *NodeWatch) C() <-chan Event { return nw.w.ch }

// Close releases the watch and closes its channel. Idempotent.
func (nw *NodeWatch) Close() { nw.wt.cancelNodeWatcher(nw.path, nw.w) }
