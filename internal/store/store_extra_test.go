package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestWatchCreateBeforeNodeExists(t *testing.T) {
	// The election recipe watches a predecessor path that may be
	// created later; the watch must fire on creation.
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	ch, err := c.WatchNode("/later")
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, c, "/later", "v")
	if ev := recvEvent(t, ch); ev.Type != EventCreated || ev.Path != "/later" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestExistsWArmsAtomically(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	mustCreate(t, c, "/a", "")
	ok, ch, err := c.ExistsW("/a")
	if err != nil || !ok {
		t.Fatalf("existsW: %v %v", ok, err)
	}
	if err := c.Delete("/a", -1); err != nil {
		t.Fatal(err)
	}
	if ev := recvEvent(t, ch); ev.Type != EventDeleted {
		t.Fatalf("event = %+v", ev)
	}
	// Non-existent path: watch fires on later create.
	ok, ch2, err := c.ExistsW("/b")
	if err != nil || ok {
		t.Fatalf("existsW missing: %v %v", ok, err)
	}
	mustCreate(t, c, "/b", "")
	if ev := recvEvent(t, ch2); ev.Type != EventCreated {
		t.Fatalf("event = %+v", ev)
	}
}

func TestEphemeralSequenceCombination(t *testing.T) {
	// Election candidates are ephemeral AND sequential.
	e := newTestEnsemble(t)
	c1, c2 := e.Connect(), e.Connect()
	defer c2.Close()
	mustCreate(t, c1, "/el", "")
	p1, err := c1.Create("/el/n-", []byte("a"), FlagEphemeral|FlagSequence)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c2.Create("/el/n-", []byte("b"), FlagEphemeral|FlagSequence)
	if err != nil {
		t.Fatal(err)
	}
	if p1 >= p2 {
		t.Fatalf("sequence order: %s >= %s", p1, p2)
	}
	c1.Close() // reaps only c1's node
	names, err := c2.Children("/el")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || "/el/"+names[0] != p2 {
		t.Fatalf("children = %v", names)
	}
}

func TestMultiWithSequenceResolution(t *testing.T) {
	// The controller's cleanup batches a sequence create (commit-log
	// entry) with sets and deletes; every replica must resolve the same
	// name.
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	mustCreate(t, c, "/log", "")
	mustCreate(t, c, "/state", "0")
	err := c.Multi(
		CreateOp("/log/c-", []byte("entry"), FlagSequence),
		SetOp("/state", []byte("1"), -1),
	)
	if err != nil {
		t.Fatal(err)
	}
	names, _ := c.Children("/log")
	if len(names) != 1 || names[0] != "c-0000000000" {
		t.Fatalf("children = %v", names)
	}
	// All replicas agree (route reads to a different replica by
	// stopping earlier ones).
	e.StopReplica(0)
	names2, _ := c.Children("/log")
	if len(names2) != 1 || names2[0] != names[0] {
		t.Fatalf("replica divergence: %v vs %v", names2, names)
	}
}

func TestWatchFiresOnceAcrossMultipleChanges(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	mustCreate(t, c, "/q", "")
	_, ch, err := c.ChildrenW("/q")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustCreate(t, c, fmt.Sprintf("/q/x%d", i), "")
	}
	// Exactly one event is delivered, then the channel closes.
	ev := recvEvent(t, ch)
	if ev.Type != EventChildrenChanged {
		t.Fatalf("event = %+v", ev)
	}
	if _, open := <-ch; open {
		t.Fatal("watch channel not closed after one-shot delivery")
	}
}

func TestSessionWatchExpiry(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	mustCreate(t, c, "/a", "")
	ch, err := c.WatchNode("/a")
	if err != nil {
		t.Fatal(err)
	}
	e.ExpireSession(c.SessionID())
	select {
	case ev := <-ch:
		if ev.Type != EventSessionExpired {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no session-expired event")
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	e := newTestEnsemble(t)
	setup := e.Connect()
	mustCreate(t, setup, "/c", "")
	setup.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := e.Connect()
			defer c.Close()
			for i := 0; i < 30; i++ {
				path := fmt.Sprintf("/c/w%d-%d", id, i)
				if _, err := c.Create(path, []byte("x"), 0); err != nil {
					errCh <- err
					return
				}
				if err := c.Set(path, []byte("y"), 0); err != nil {
					errCh <- err
					return
				}
				if _, _, err := c.Get(path); err != nil {
					errCh <- err
					return
				}
				if i%2 == 0 {
					if err := c.Delete(path, -1); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	cli := e.Connect()
	defer cli.Close()
	names, err := cli.Children("/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6*15 {
		t.Fatalf("surviving children = %d, want 90", len(names))
	}
}

// Property: any sequence of creates and deletes leaves the tree
// consistent with a map-based oracle.
func TestTreeOracleProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		e := NewEnsemble(Config{Replicas: 3})
		defer e.Close()
		c := e.Connect()
		defer c.Close()
		oracle := map[string]bool{}
		paths := []string{"/a", "/b", "/a/x", "/b/y"}
		for _, op := range ops {
			p := paths[int(op)%len(paths)]
			if op%2 == 0 {
				_, err := c.Create(p, nil, 0)
				parentOK := parentPath(p) == "/" || oracle[parentPath(p)]
				wantOK := parentOK && !oracle[p]
				if (err == nil) != wantOK {
					return false
				}
				if err == nil {
					oracle[p] = true
				}
			} else {
				err := c.Delete(p, -1)
				hasChild := false
				for o := range oracle {
					if o != p && len(o) > len(p) && o[:len(p)] == p && o[len(p)] == '/' {
						hasChild = true
					}
				}
				wantOK := oracle[p] && !hasChild
				if (err == nil) != wantOK {
					return false
				}
				if err == nil {
					delete(oracle, p)
				}
			}
		}
		for p, want := range map[string]bool{
			"/a": oracle["/a"], "/b": oracle["/b"], "/a/x": oracle["/a/x"], "/b/y": oracle["/b/y"],
		} {
			ok, _, err := c.Exists(p)
			if err != nil || ok != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionCASLoop(t *testing.T) {
	// The updateTxn CAS pattern: concurrent writers using version CAS
	// never lose an increment.
	e := newTestEnsemble(t)
	setup := e.Connect()
	mustCreate(t, setup, "/n", "0")
	setup.Close()

	const writers, per = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := e.Connect()
			defer c.Close()
			for i := 0; i < per; i++ {
				for {
					data, stat, err := c.Get("/n")
					if err != nil {
						t.Error(err)
						return
					}
					var v int
					fmt.Sscanf(string(data), "%d", &v)
					err = c.Set("/n", []byte(fmt.Sprint(v+1)), stat.Version)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBadVersion) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	c := e.Connect()
	defer c.Close()
	data, _, _ := c.Get("/n")
	var v int
	fmt.Sscanf(string(data), "%d", &v)
	if v != writers*per {
		t.Fatalf("n = %d, want %d", v, writers*per)
	}
}
