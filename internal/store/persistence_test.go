package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openDurable(t *testing.T, dir string, snapEvery int) *Ensemble {
	t.Helper()
	e, err := OpenEnsemble(Config{
		DataDir:       dir,
		SyncPolicy:    SyncNone,
		SnapshotEvery: snapEvery,
		// Long timeout so background expiry never interferes with the
		// restart scenarios under test.
		SessionTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRestartPreservesPersistentState(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, -1)
	c := e.Connect()
	createOrFail(t, c, "/app", []byte("root"), 0)
	createOrFail(t, c, "/app/config", []byte("v1"), 0)
	if err := c.Set("/app/config", []byte("v2"), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("/app/config", []byte("v3"), 1); err != nil {
		t.Fatal(err)
	}
	seq1, err := c.Create("/app/item-", []byte("a"), FlagSequence)
	if err != nil {
		t.Fatal(err)
	}
	createOrFail(t, c, "/app/gone", nil, 0)
	if err := c.Delete("/app/gone", -1); err != nil {
		t.Fatal(err)
	}
	if err := c.Multi(
		CreateOp("/app/m1", []byte("multi"), 0),
		SetOp("/app/config", []byte("v4"), 2),
	); err != nil {
		t.Fatal(err)
	}
	c.Close()
	e.Close()

	e2 := openDurable(t, dir, -1)
	defer e2.Close()
	c2 := e2.Connect()
	defer c2.Close()

	data, st, err := c2.Get("/app/config")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v4" || st.Version != 3 {
		t.Fatalf("config = %q v%d, want v4 v3", data, st.Version)
	}
	if data, _, err = c2.Get("/app/m1"); err != nil || string(data) != "multi" {
		t.Fatalf("multi-created node: %q, %v", data, err)
	}
	if ok, _, _ := c2.Exists("/app/gone"); ok {
		t.Fatal("deleted node resurrected by recovery")
	}
	// Sequence numbering continues where the previous incarnation left
	// off — committed transaction IDs can never be reissued.
	seq2, err := c2.Create("/app/item-", []byte("b"), FlagSequence)
	if err != nil {
		t.Fatal(err)
	}
	if !(seq2 > seq1) {
		t.Fatalf("sequence regressed across restart: %s then %s", seq1, seq2)
	}
	if seq1 != "/app/item-0000000000" || seq2 != "/app/item-0000000001" {
		t.Fatalf("unexpected sequence names %s, %s", seq1, seq2)
	}
}

func TestRestartExpiresStaleEphemeralOwners(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, -1)
	c := e.Connect()
	createOrFail(t, c, "/election", nil, 0)
	if _, err := c.Create("/election/leader", []byte("ctrl-0"), FlagEphemeral); err != nil {
		t.Fatal(err)
	}
	// Crash the client (heartbeats stop, session NOT expired) and then
	// the whole ensemble: the ephemeral is still in the tree, and in the
	// WAL, when the process dies.
	c.Kill()
	if ok, _, _ := e.Connect().Exists("/election/leader"); !ok {
		t.Fatal("precondition: ephemeral should still exist before crash")
	}
	e.Close()

	e2 := openDurable(t, dir, -1)
	defer e2.Close()
	c2 := e2.Connect()
	defer c2.Close()
	if ok, _, _ := c2.Exists("/election/leader"); ok {
		t.Fatal("pre-crash ephemeral resurrected after restart")
	}
	if ok, _, _ := c2.Exists("/election"); !ok {
		t.Fatal("persistent parent lost")
	}
	// A new contender can claim leadership immediately.
	if _, err := c2.Create("/election/leader", []byte("ctrl-1"), FlagEphemeral); err != nil {
		t.Fatalf("re-election blocked: %v", err)
	}
	// New sessions must not collide with the pre-crash ephemeral owner's
	// id (which would make recovery misattribute ephemeral ownership).
	if c2.SessionID() <= c.SessionID() {
		t.Fatalf("session counter not resumed: new session id %d after owner %d",
			c2.SessionID(), c.SessionID())
	}
}

func TestRestartFromSnapshotPlusWALTail(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, 10)
	c := e.Connect()
	createOrFail(t, c, "/data", nil, 0)
	for i := 0; i < 37; i++ {
		createOrFail(t, c, fmt.Sprintf("/data/n%02d", i), []byte{byte(i)}, 0)
	}
	if got := e.PersistStats().Snapshots; got < 3 {
		t.Fatalf("Snapshots = %d, want ≥ 3 with SnapshotEvery=10", got)
	}
	c.Close()
	e.Close()

	e2 := openDurable(t, dir, 10)
	defer e2.Close()
	c2 := e2.Connect()
	defer c2.Close()
	kids, err := c2.Children("/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 37 {
		t.Fatalf("recovered %d children, want 37", len(kids))
	}
	for i := 0; i < 37; i++ {
		data, _, err := c2.Get(fmt.Sprintf("/data/n%02d", i))
		if err != nil || len(data) != 1 || data[0] != byte(i) {
			t.Fatalf("node n%02d: %v %v", i, data, err)
		}
	}
	if e2.PersistStats().Recoveries != 1 || e2.LastRecovery() <= 0 {
		t.Fatalf("recovery not observed: %+v", e2.PersistStats())
	}
}

func TestRestartSnapshotWithEmptyWALTail(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, 1) // snapshot (and rotate) after every write
	c := e.Connect()
	createOrFail(t, c, "/only", []byte("x"), 0)
	c.Close() // expiry commits are snapshotted too
	e.Close()

	e2 := openDurable(t, dir, 1)
	defer e2.Close()
	c2 := e2.Connect()
	defer c2.Close()
	if data, _, err := c2.Get("/only"); err != nil || string(data) != "x" {
		t.Fatalf("recovery from snapshot alone: %q, %v", data, err)
	}
}

func TestRestartTornWALTail(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, -1)
	c := e.Connect()
	createOrFail(t, c, "/a", []byte("1"), 0)
	createOrFail(t, c, "/b", []byte("2"), 0)
	createOrFail(t, c, "/c", []byte("3"), 0)
	c.Kill() // no graceful expiry: the last WAL record is /c's create
	e.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	seg := segs[len(segs)-1]
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	e2 := openDurable(t, dir, -1)
	defer e2.Close()
	c2 := e2.Connect()
	defer c2.Close()
	for path, want := range map[string]string{"/a": "1", "/b": "2"} {
		if data, _, err := c2.Get(path); err != nil || string(data) != want {
			t.Fatalf("%s = %q, %v; want %q", path, data, err, want)
		}
	}
	if ok, _, _ := c2.Exists("/c"); ok {
		t.Fatal("torn final record was not dropped")
	}
	// The store keeps serving and logging after the torn-tail recovery —
	// and writes made after it survive a FURTHER restart (recovery
	// compacted the damaged segment away, so it cannot shadow the new
	// records on the next replay).
	createOrFail(t, c2, "/c", []byte("again"), 0)
	c2.Kill()
	e2.Close()

	e3 := openDurable(t, dir, -1)
	defer e3.Close()
	c3 := e3.Connect()
	defer c3.Close()
	if data, _, err := c3.Get("/c"); err != nil || string(data) != "again" {
		t.Fatalf("post-recovery write lost on second restart: %q, %v", data, err)
	}
}

func TestRestartTornHeadOfActiveSegment(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, -1)
	c := e.Connect()
	createOrFail(t, c, "/a", []byte("1"), 0)
	c.Kill()
	e.Close()

	// Restart once so recovery compacts to a snapshot and rotates to a
	// fresh active segment...
	e2 := openDurable(t, dir, -1)
	e2.Close()
	// ...then simulate a crash that tore the very FIRST record of that
	// active segment, so the next recovery accepts nothing from it and
	// resolves the same segment name for new appends.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e3 := openDurable(t, dir, -1)
	c3 := e3.Connect()
	createOrFail(t, c3, "/b", []byte("2"), 0)
	c3.Kill()
	e3.Close()

	// Both the pre-tear and post-tear commits must survive.
	e4 := openDurable(t, dir, -1)
	defer e4.Close()
	c4 := e4.Connect()
	defer c4.Close()
	for path, want := range map[string]string{"/a": "1", "/b": "2"} {
		if data, _, err := c4.Get(path); err != nil || string(data) != want {
			t.Fatalf("%s = %q, %v; want %q", path, data, err, want)
		}
	}
}

func TestRestartCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir, -1)
	c := e.Connect()
	createOrFail(t, c, "/keep", []byte("k"), 0)
	createOrFail(t, c, "/last", []byte("l"), 0)
	c.Kill()
	e.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // damage the final record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := openDurable(t, dir, -1)
	defer e2.Close()
	c2 := e2.Connect()
	defer c2.Close()
	if data, _, err := c2.Get("/keep"); err != nil || string(data) != "k" {
		t.Fatalf("/keep = %q, %v", data, err)
	}
	if ok, _, _ := c2.Exists("/last"); ok {
		t.Fatal("record with corrupt CRC was applied")
	}
}

func TestInMemoryPathHasNoPersistence(t *testing.T) {
	e := NewEnsemble(Config{})
	defer e.Close()
	c := e.Connect()
	defer c.Close()
	createOrFail(t, c, "/x", nil, 0)
	if got := e.PersistStats(); got != (PersistStats{}) {
		t.Fatalf("in-memory ensemble reported persistence activity: %+v", got)
	}
	if e.LastRecovery() != 0 {
		t.Fatal("in-memory ensemble reported a recovery")
	}
}

func TestOpenEnsembleBadDataDir(t *testing.T) {
	// A file where the data dir should be must fail loudly, not silently
	// run without durability.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEnsemble(Config{DataDir: f}); err == nil {
		t.Fatal("OpenEnsemble on a non-directory path succeeded")
	}
}

func TestOpCodecRoundTrip(t *testing.T) {
	ops := []Op{
		{kind: opCreate, Path: "/a/b", Data: []byte("payload"), Flags: FlagEphemeral, Version: -1, session: 7, resolvedName: "b"},
		{kind: opSet, Path: "/x", Data: nil, Version: 12},
		{kind: opDelete, Path: "/y", Version: -1},
		{kind: opExpireSession, session: 42},
		{kind: opMulti, ops: []Op{
			{kind: opCreate, Path: "/q/item-", Data: []byte("m"), Flags: FlagSequence, Version: -1, resolvedName: "item-0000000003"},
			{kind: opDelete, Path: "/q/item-0000000001", Version: 2},
		}},
	}
	for i, op := range ops {
		got, err := decodeOp(encodeOp(op))
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", op) {
			t.Fatalf("op %d round-trip:\n got %+v\nwant %+v", i, got, op)
		}
	}
	if _, err := decodeOp(nil); err == nil {
		t.Fatal("decodeOp(nil) succeeded")
	}
	if _, err := decodeOp([]byte{codecVersion, 0}); err == nil {
		t.Fatal("decodeOp(truncated) succeeded")
	}
	if _, err := decodeOp(append(encodeOp(ops[0]), 0xEE)); err == nil {
		t.Fatal("decodeOp with trailing bytes succeeded")
	}
}

func TestTreeSnapshotCodecSkipsEphemerals(t *testing.T) {
	tr := newTree()
	apply := func(op Op) {
		resolved, err := validateOp(tr, op)
		if err != nil {
			t.Fatal(err)
		}
		applyOp(tr, resolved, 1, nil)
	}
	apply(Op{kind: opCreate, Path: "/p", Data: []byte("persistent")})
	apply(Op{kind: opCreate, Path: "/p/child", Data: []byte("c")})
	apply(Op{kind: opCreate, Path: "/p/eph", session: 9})
	apply(Op{kind: opCreate, Path: "/p/seq-", Flags: FlagSequence})

	got, nextSess, err := decodeTreeSnapshot(encodeTreeSnapshot(tr, 123))
	if err != nil {
		t.Fatal(err)
	}
	if nextSess != 123 {
		t.Fatalf("nextSess = %d", nextSess)
	}
	if _, err := got.lookup("/p/eph"); !errors.Is(err, ErrNoNode) {
		t.Fatal("ephemeral node crossed the snapshot boundary")
	}
	n, err := got.lookup("/p")
	if err != nil || string(n.data) != "persistent" {
		t.Fatalf("/p: %v", err)
	}
	if n.seqCounter != 1 {
		t.Fatalf("/p seqCounter = %d, want 1", n.seqCounter)
	}
	if _, err := got.lookup("/p/seq-0000000000"); err != nil {
		t.Fatalf("sequence child: %v", err)
	}
	if _, _, err := decodeTreeSnapshot([]byte{9}); err == nil {
		t.Fatal("decodeTreeSnapshot with bad version succeeded")
	}
}

func createOrFail(t *testing.T, c *Client, path string, data []byte, flags int) {
	t.Helper()
	if _, err := c.Create(path, data, flags); err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
}
