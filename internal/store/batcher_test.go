package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestMultiAllResolvedDemux: independent groups commit in one round with
// per-group error demultiplexing — a failing group affects neither its
// siblings nor the ordering of later groups' effects.
func TestMultiAllResolvedDemux(t *testing.T) {
	e := NewEnsemble(Config{})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	if _, err := cli.Create("/q", nil, 0); err != nil {
		t.Fatal(err)
	}
	results := cli.MultiAllResolved(
		[]Op{CreateOp("/q/a-", []byte("1"), FlagSequence)},
		[]Op{CreateOp("/missing/child", nil, 0)}, // parent does not exist
		[]Op{CreateOp("/q/a-", []byte("2"), FlagSequence)},
	)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("sibling groups failed: %v / %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, ErrNoNode) {
		t.Fatalf("bad group error = %v, want ErrNoNode", results[1].Err)
	}
	if results[0].Paths[0] == results[2].Paths[0] {
		t.Fatalf("sequence collision: %q", results[0].Paths[0])
	}
	// Later group saw the earlier group's sequence bump.
	if results[0].Paths[0] != "/q/a-0000000000" || results[2].Paths[0] != "/q/a-0000000001" {
		t.Fatalf("resolved paths = %q, %q", results[0].Paths[0], results[2].Paths[0])
	}
	names, err := cli.Children("/q")
	if err != nil || len(names) != 2 {
		t.Fatalf("children = %v (%v)", names, err)
	}
}

// TestGroupCommitSingleFsync: one MultiAll round over K groups costs one
// WAL fsync under SyncAlways — the group-commit amortization.
func TestGroupCommitSingleFsync(t *testing.T) {
	e, err := OpenEnsemble(Config{DataDir: t.TempDir(), SyncPolicy: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	if _, err := cli.Create("/n", nil, 0); err != nil {
		t.Fatal(err)
	}
	base := e.PersistStats().Fsyncs
	var groups [][]Op
	for i := 0; i < 16; i++ {
		groups = append(groups, []Op{SetOp("/n", []byte{byte(i)}, -1)})
	}
	for i, err := range cli.MultiAll(groups...) {
		if err != nil {
			t.Fatalf("group %d: %v", i, err)
		}
	}
	if d := e.PersistStats().Fsyncs - base; d != 1 {
		t.Fatalf("fsyncs = %d for 16 groups, want 1", d)
	}
	if got := e.PersistStats().WALAppends; got < 16 {
		t.Fatalf("wal appends = %d, want ≥ 16 (one record per group)", got)
	}
}

// TestGroupCommitSurvivesRestart: records written by the group-commit
// path (AppendNoSync + SyncGroup) recover exactly like per-op appends.
func TestGroupCommitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenEnsemble(Config{DataDir: dir, SyncPolicy: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	cli := e.Connect()
	if _, err := cli.Create("/g", nil, 0); err != nil {
		t.Fatal(err)
	}
	var groups [][]Op
	for i := 0; i < 8; i++ {
		groups = append(groups, []Op{CreateOp(fmt.Sprintf("/g/n%d", i), []byte("x"), 0)})
	}
	for _, err := range cli.MultiAll(groups...) {
		if err != nil {
			t.Fatal(err)
		}
	}
	cli.Kill() // crash, no graceful close
	e.Close()
	e2, err := OpenEnsemble(Config{DataDir: dir, SyncPolicy: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	cli2 := e2.Connect()
	defer cli2.Close()
	names, err := cli2.Children("/g")
	if err != nil || len(names) != 8 {
		t.Fatalf("recovered children = %v (%v), want 8", names, err)
	}
}

// TestBatcherCoalesces: concurrent submissions through one batcher land
// in fewer commits than callers, and every one applies.
func TestBatcherCoalesces(t *testing.T) {
	e := NewEnsemble(Config{CommitLatency: 200 * time.Microsecond})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	if _, err := cli.Create("/q", nil, 0); err != nil {
		t.Fatal(err)
	}
	b := cli.NewBatcher(BatcherConfig{MaxOps: 64})
	defer b.Close()
	const callers = 48
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = b.Multi(CreateOp("/q/item-", []byte{byte(i)}, FlagSequence))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	names, err := cli.Children("/q")
	if err != nil || len(names) != callers {
		t.Fatalf("children = %d (%v), want %d", len(names), err, callers)
	}
	st := b.Stats()
	if st.Groups != callers || st.Ops != callers {
		t.Fatalf("stats = %+v, want %d groups", st, callers)
	}
	if st.Flushes >= callers {
		t.Fatalf("no coalescing: %d flushes for %d callers", st.Flushes, callers)
	}
	if st.MaxGroupOps < 2 {
		t.Fatalf("max flush carried %d ops, want ≥ 2", st.MaxGroupOps)
	}
}

// TestBatcherCreateAsyncResolvesPath: the async create learns its
// sequence-resolved path, and concurrent creates get distinct ones.
func TestBatcherCreateAsyncResolvesPath(t *testing.T) {
	e := NewEnsemble(Config{})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	if _, err := cli.Create("/q", nil, 0); err != nil {
		t.Fatal(err)
	}
	a := cli.CreateAsync("/q/n-", []byte("a"), FlagSequence)
	b := cli.CreateAsync("/q/n-", []byte("b"), FlagSequence)
	ra, rb := <-a, <-b
	if ra.Err != nil || rb.Err != nil {
		t.Fatalf("errs: %v / %v", ra.Err, rb.Err)
	}
	if ra.Path == rb.Path {
		t.Fatalf("duplicate resolved path %q", ra.Path)
	}
	for _, r := range []CreateResult{ra, rb} {
		if ok, _, _ := cli.Exists(r.Path); !ok {
			t.Fatalf("resolved path %q does not exist", r.Path)
		}
	}
}

// TestBatcherCloseFlushesPending: Close delivers every pending result.
func TestBatcherCloseFlushesPending(t *testing.T) {
	e := NewEnsemble(Config{})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	if _, err := cli.Create("/q", nil, 0); err != nil {
		t.Fatal(err)
	}
	// A huge MaxDelay: only Close (or a kick-driven drain) can flush.
	b := cli.NewBatcher(BatcherConfig{MaxOps: 1 << 20, MaxDelay: time.Hour})
	ch := b.MultiAsync(CreateOp("/q/x", nil, 0))
	b.Close()
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	if err := <-b.MultiAsync(CreateOp("/q/y", nil, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit = %v, want ErrClosed", err)
	}
}

// TestChildWatchReusable: one registration observes many membership
// changes, coalesces bursts instead of blocking the committer, and Close
// releases it.
func TestChildWatchReusable(t *testing.T) {
	e := NewEnsemble(Config{})
	defer e.Close()
	cli := e.Connect()
	defer cli.Close()
	if _, err := cli.Create("/q", nil, 0); err != nil {
		t.Fatal(err)
	}
	_, baseChild := e.WatchCounts()
	w, err := cli.ChildWatch("/q")
	if err != nil {
		t.Fatal(err)
	}
	// Multiple rounds of change → wakeup → consume, with NO re-arming.
	for round := 0; round < 3; round++ {
		if _, err := cli.Create(fmt.Sprintf("/q/c%d", round), nil, 0); err != nil {
			t.Fatal(err)
		}
		select {
		case ev, ok := <-w.C():
			if !ok || ev.Type != EventChildrenChanged {
				t.Fatalf("round %d: event %v ok=%v", round, ev, ok)
			}
		case <-time.After(time.Second):
			t.Fatalf("round %d: no wakeup", round)
		}
	}
	// A burst while nobody reads coalesces into one pending wakeup and
	// never blocks the committing writer.
	for i := 0; i < 5; i++ {
		if err := cli.Delete(fmt.Sprintf("/q/c%d", i%3), -1); err != nil && !errors.Is(err, ErrNoNode) {
			t.Fatal(err)
		}
	}
	select {
	case <-w.C():
	case <-time.After(time.Second):
		t.Fatal("burst produced no wakeup")
	}
	w.Close()
	w.Close() // idempotent
	if _, child := e.WatchCounts(); child != baseChild {
		t.Fatalf("child watches = %d after Close, want %d", child, baseChild)
	}
	// Closed watch delivers no further events; channel reads see closed.
	if _, err := cli.Create("/q/after", nil, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, ok := <-w.C():
		if ok {
			t.Fatalf("event %v after Close", ev)
		}
	case <-time.After(100 * time.Millisecond):
		t.Fatal("channel not closed after Close")
	}
}

// TestChildWatchSessionExpiry: expiring the session closes the watch so
// blocked consumers wake with a session-expired signal.
func TestChildWatchSessionExpiry(t *testing.T) {
	e := NewEnsemble(Config{})
	defer e.Close()
	cli := e.Connect()
	if _, err := cli.Create("/q", nil, 0); err != nil {
		t.Fatal(err)
	}
	w, err := cli.ChildWatch("/q")
	if err != nil {
		t.Fatal(err)
	}
	e.ExpireSession(cli.SessionID())
	select {
	case ev, ok := <-w.C():
		if ok && ev.Type != EventSessionExpired {
			t.Fatalf("event = %v, want session expiry or closed channel", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no expiry signal")
	}
}
