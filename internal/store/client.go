package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a session-scoped handle to the ensemble. It corresponds to a
// ZooKeeper client connection: ephemeral nodes created through it live
// exactly as long as its session, and it heartbeats automatically until
// closed or killed.
type Client struct {
	ens       *Ensemble
	sessionID int64
	sess      *session // for lock-free expiry checks on the read path
	stopBeat  chan struct{}
	beatDone  chan struct{}
	killed    atomic.Bool

	// lastWrite is the zxid of this session's most recent committed
	// write — the session-consistency watermark follower reads carry.
	lastWrite atomic.Int64

	// batcher backs MultiAsync/CreateAsync; created lazily (with
	// batcherCfg when set, package defaults otherwise) and torn down
	// with the session.
	batcherMu  sync.Mutex
	batcher    *Batcher
	batcherCfg BatcherConfig
}

// Connect opens a new session against the ensemble with the ensemble's
// configured session timeout.
func (e *Ensemble) Connect() *Client {
	e.mu.Lock()
	e.nextSess++
	id := e.nextSess
	s := &session{
		id:        id,
		timeout:   e.cfg.SessionTimeout,
		lastBeat:  time.Now(),
		expiredCh: make(chan struct{}),
	}
	e.sessions[id] = s
	e.mu.Unlock()

	c := &Client{
		ens:       e,
		sessionID: id,
		sess:      s,
		stopBeat:  make(chan struct{}),
		beatDone:  make(chan struct{}),
	}
	go c.heartbeatLoop(s)
	return c
}

func (c *Client) heartbeatLoop(s *session) {
	defer close(c.beatDone)
	interval := s.timeout / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopBeat:
			return
		case <-s.expiredCh:
			return
		case now := <-t.C:
			c.ens.mu.Lock()
			if !s.expired && !s.closed {
				s.lastBeat = now
			}
			c.ens.mu.Unlock()
		}
	}
}

// SessionID returns the client's session id.
func (c *Client) SessionID() int64 { return c.sessionID }

// Expired reports whether the session has been expired by the ensemble.
func (c *Client) Expired() bool {
	c.ens.mu.Lock()
	defer c.ens.mu.Unlock()
	s, ok := c.ens.sessions[c.sessionID]
	return !ok || s.expired
}

// ExpiredCh is closed when the ensemble expires this session.
func (c *Client) ExpiredCh() <-chan struct{} {
	c.ens.mu.Lock()
	defer c.ens.mu.Unlock()
	s, ok := c.ens.sessions[c.sessionID]
	if !ok {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return s.expiredCh
}

// ConfigureBatcher sets the bounds the default batcher (behind
// MultiAsync/CreateAsync) is created with. It must be called before the
// first async submission; afterwards it is a no-op — the running
// batcher keeps its bounds.
func (c *Client) ConfigureBatcher(cfg BatcherConfig) {
	c.batcherMu.Lock()
	defer c.batcherMu.Unlock()
	if c.batcher == nil {
		c.batcherCfg = cfg
	}
}

// defaultBatcher lazily creates the batcher behind MultiAsync.
func (c *Client) defaultBatcher() *Batcher {
	c.batcherMu.Lock()
	defer c.batcherMu.Unlock()
	if c.batcher == nil {
		c.batcher = c.NewBatcher(c.batcherCfg)
	}
	return c.batcher
}

// closeBatcher flushes and stops the default batcher, if one was made.
func (c *Client) closeBatcher() {
	c.batcherMu.Lock()
	b := c.batcher
	c.batcher = nil
	c.batcherMu.Unlock()
	if b != nil {
		b.Close()
	}
}

// Close ends the session gracefully: ephemeral nodes are reaped
// immediately and the heartbeat loop stops.
func (c *Client) Close() {
	c.closeBatcher()
	c.ens.ExpireSession(c.sessionID)
	select {
	case <-c.stopBeat:
	default:
		close(c.stopBeat)
	}
	<-c.beatDone
}

// Kill simulates a client crash: all further operations through this
// client fail immediately (the process is dead), heartbeats stop, and
// the session is left to expire on its own — so ephemeral nodes linger
// for up to the session timeout, exactly the failure-detection delay
// that dominates TROPIC's controller recovery time (§6.4).
func (c *Client) Kill() {
	c.killed.Store(true)
	c.closeBatcher()
	select {
	case <-c.stopBeat:
	default:
		close(c.stopBeat)
	}
	<-c.beatDone
}

// checkSession returns ErrSessionExpired if the session is gone or the
// client crashed. Caller holds e.mu.
func (c *Client) checkSessionLocked() error {
	if c.killed.Load() {
		return ErrSessionExpired
	}
	s, ok := c.ens.sessions[c.sessionID]
	if !ok || s.expired {
		return ErrSessionExpired
	}
	return nil
}

// checkSessionFast is checkSessionLocked without the ensemble lock, for
// the follower-read path: crash flag plus the session's expiry channel,
// both safe to consult lock-free.
func (c *Client) checkSessionFast() error {
	if c.killed.Load() {
		return ErrSessionExpired
	}
	select {
	case <-c.sess.expiredCh:
		return ErrSessionExpired
	default:
		return nil
	}
}

// noteWrite records a committed write's zxid as the session watermark.
// Caller holds e.mu (so reading e.zxid is safe); the watermark itself is
// atomic because the read path consults it lock-free.
func (c *Client) noteWriteLocked() {
	if z := c.ens.zxid; z > c.lastWrite.Load() {
		c.lastWrite.Store(z)
	}
}

// LastWriteZxid reports the zxid of the session's most recent committed
// write — the minimum position a session-consistent read must observe.
func (c *Client) LastWriteZxid() int64 { return c.lastWrite.Load() }

// Create creates a znode and returns its final path (which differs from
// the requested path for sequence nodes).
func (c *Client) Create(path string, data []byte, flags int) (string, error) {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return "", err
	}
	op := Op{kind: opCreate, Path: path, Data: data, Flags: flags}
	if flags&FlagEphemeral != 0 {
		op.session = c.sessionID
	}
	if err := e.commitLocked(op); err != nil {
		return "", err
	}
	c.noteWriteLocked()
	final := childFullPath(path, e.log[len(e.log)-1].op.resolvedName)
	return final, nil
}

// Set updates a znode's data. version -1 skips the compare-and-set check.
func (c *Client) Set(path string, data []byte, version int32) error {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return err
	}
	if err := e.commitLocked(Op{kind: opSet, Path: path, Data: data, Version: version}); err != nil {
		return err
	}
	c.noteWriteLocked()
	return nil
}

// Delete removes a znode. version -1 skips the compare-and-set check.
func (c *Client) Delete(path string, version int32) error {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return err
	}
	if err := e.commitLocked(Op{kind: opDelete, Path: path, Version: version}); err != nil {
		return err
	}
	c.noteWriteLocked()
	return nil
}

// Multi atomically applies a batch of write operations: either all apply
// in order or none do.
func (c *Client) Multi(ops ...Op) error {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return err
	}
	for i := range ops {
		if ops[i].kind == opCreate && ops[i].Flags&FlagEphemeral != 0 {
			ops[i].session = c.sessionID
		}
	}
	if err := e.commitLocked(Op{kind: opMulti, ops: ops}); err != nil {
		return err
	}
	c.noteWriteLocked()
	return nil
}

// MultiAllResolved commits several independent Multi batches in one
// ensemble proposal round, returning one result per batch (position-
// matched): the demultiplexed error, or the resolved final path of every
// create in the batch. Each batch is atomic on its own; a failed batch
// does not affect its siblings, and later batches see the effects of
// earlier successful ones. This is the group-commit primitive behind
// MultiAsync and the Batcher: one quorum round and one WAL fsync
// amortized over every batch in the group.
func (c *Client) MultiAllResolved(groups ...[]Op) []GroupResult {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		results := make([]GroupResult, len(groups))
		for i := range results {
			results[i] = GroupResult{Err: err}
		}
		return results
	}
	for _, ops := range groups {
		for i := range ops {
			if ops[i].kind == opCreate && ops[i].Flags&FlagEphemeral != 0 {
				ops[i].session = c.sessionID
			}
		}
	}
	results := e.commitAllLocked(groups)
	for _, r := range results {
		if r.Err == nil {
			c.noteWriteLocked()
			break
		}
	}
	return results
}

// MultiAll is MultiAllResolved reduced to the per-batch errors.
func (c *Client) MultiAll(groups ...[]Op) []error {
	results := c.MultiAllResolved(groups...)
	errs := make([]error, len(results))
	for i, r := range results {
		errs[i] = r.Err
	}
	return errs
}

// MultiAsync submits a Multi batch through the client's default batcher
// and returns a channel that delivers the batch's outcome once it has
// been group-committed (buffered: the result never blocks on the
// caller). Concurrent MultiAsync calls — from any goroutine sharing the
// client — coalesce into one ensemble proposal. Callers needing
// different bounds create their own Batcher with NewBatcher.
func (c *Client) MultiAsync(ops ...Op) <-chan error {
	return c.defaultBatcher().MultiAsync(ops...)
}

// CreateAsync creates a znode through the client's default batcher,
// delivering the resolved final path (sequence suffixes included) once
// the group commit lands. Concurrent submitters sharing the client pay
// one proposal round between them instead of one each.
func (c *Client) CreateAsync(path string, data []byte, flags int) <-chan CreateResult {
	return c.defaultBatcher().CreateAsync(path, data, flags)
}

// Get returns a znode's data and stat.
func (c *Client) Get(path string) ([]byte, Stat, error) {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return nil, Stat{}, err
	}
	t, err := e.leaderTree()
	if err != nil {
		return nil, Stat{}, err
	}
	n, err := t.lookup(path)
	if err != nil {
		return nil, Stat{}, err
	}
	return append([]byte(nil), n.data...), n.stat(), nil
}

// GetZ is Get plus the position of the read: the zxid the returned
// state is current as of. It reads the leader tree under the commit
// lock, so the zxid is the ensemble's latest.
func (c *Client) GetZ(path string) ([]byte, Stat, int64, error) {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return nil, Stat{}, 0, err
	}
	t, err := e.leaderTree()
	if err != nil {
		return nil, Stat{}, 0, err
	}
	n, err := t.lookup(path)
	if err != nil {
		return nil, Stat{}, e.zxid, err
	}
	return append([]byte(nil), n.data...), n.stat(), e.zxid, nil
}

// GetAt is the follower read: it serves path from ANY live replica that
// has applied at least minZxid — without touching the ensemble commit
// lock, so reads do not queue behind writes — and falls through to a
// leader read when no replica satisfies the watermark. The returned
// zxid is the position the read is current as of (≥ minZxid); a caller
// that threads it into its next read gets session consistency across
// the whole replica set. fromFollower reports which path served, for
// metrics and the ablation experiments.
func (c *Client) GetAt(path string, minZxid int64) (data []byte, st Stat, zxid int64, fromFollower bool, err error) {
	if err := c.checkSessionFast(); err != nil {
		return nil, Stat{}, 0, false, err
	}
	z, served, rerr := c.ens.followerRead(minZxid, func(t *tree) error {
		n, lerr := t.lookup(path)
		if lerr != nil {
			return lerr
		}
		data = append([]byte(nil), n.data...)
		st = n.stat()
		return nil
	})
	if served {
		return data, st, z, true, rerr
	}
	data, st, z, err = c.GetZ(path)
	return data, st, z, false, err
}

// Exists reports whether a znode exists.
func (c *Client) Exists(path string) (bool, Stat, error) {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return false, Stat{}, err
	}
	t, err := e.leaderTree()
	if err != nil {
		return false, Stat{}, err
	}
	n, err := t.lookup(path)
	if err != nil {
		return false, Stat{}, nil
	}
	return true, n.stat(), nil
}

// Children returns the sorted child names of a znode.
func (c *Client) Children(path string) ([]string, error) {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return nil, err
	}
	t, err := e.leaderTree()
	if err != nil {
		return nil, err
	}
	n, err := t.lookup(path)
	if err != nil {
		return nil, err
	}
	return n.sortedChildren(), nil
}

// ChildrenZ is Children plus the zxid the listing is current as of.
func (c *Client) ChildrenZ(path string) ([]string, int64, error) {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return nil, 0, err
	}
	t, err := e.leaderTree()
	if err != nil {
		return nil, 0, err
	}
	n, err := t.lookup(path)
	if err != nil {
		return nil, e.zxid, err
	}
	return n.sortedChildren(), e.zxid, nil
}

// ChildrenAt is the follower read for listings: sorted child names from
// any live replica at ≥ minZxid, falling through to the leader when
// none qualifies. Same watermark contract as GetAt.
func (c *Client) ChildrenAt(path string, minZxid int64) (names []string, zxid int64, fromFollower bool, err error) {
	if err := c.checkSessionFast(); err != nil {
		return nil, 0, false, err
	}
	z, served, rerr := c.ens.followerRead(minZxid, func(t *tree) error {
		n, lerr := t.lookup(path)
		if lerr != nil {
			return lerr
		}
		names = n.sortedChildren()
		return nil
	})
	if served {
		return names, z, true, rerr
	}
	names, z, err = c.ChildrenZ(path)
	return names, z, false, err
}

// WatchNode registers a one-shot watch for create/delete/set on path.
// The returned channel delivers exactly one event and is then closed.
func (c *Client) WatchNode(path string) (<-chan Event, error) {
	if _, err := splitPath(path); err != nil {
		return nil, err
	}
	w := &watcher{ch: make(chan Event, 1), session: c.sessionID}
	c.ens.watches.addNode(path, w)
	return w.ch, nil
}

// Unwatch cancels an armed node watch that the caller will not consume
// (e.g. Wait discovering the record is already terminal after arming).
// The channel is closed without an event. Without this, one-shot
// watches on nodes that never change again would accumulate in the
// ensemble's watch table for the life of the session.
func (c *Client) Unwatch(path string, ch <-chan Event) {
	c.ens.watches.cancelNode(path, ch)
}

// WatchChildren registers a one-shot watch for membership changes of
// path's children.
func (c *Client) WatchChildren(path string) (<-chan Event, error) {
	if _, err := splitPath(path); err != nil {
		return nil, err
	}
	w := &watcher{ch: make(chan Event, 1), session: c.sessionID}
	c.ens.watches.addChild(path, w)
	return w.ch, nil
}

// NodeWatch registers a REUSABLE watch on create/delete/set of path: it
// stays armed across events (coalescing back-to-back changes into one
// pending wakeup) until Close. This is the fan-out primitive the read
// path multiplexes SSE subscribers onto — one NodeWatch per watched
// record regardless of how many sessions stream it.
func (c *Client) NodeWatch(path string) (*NodeWatch, error) {
	if _, err := splitPath(path); err != nil {
		return nil, err
	}
	w := &watcher{ch: make(chan Event, 1), session: c.sessionID, persistent: true}
	c.ens.watches.addNode(path, w)
	return &NodeWatch{path: path, w: w, wt: c.ens.watches}, nil
}

// ChildWatch registers a REUSABLE watch on membership changes of path's
// children: it stays armed across events (coalescing back-to-back
// changes into one pending wakeup) until Close. This is the queue-wakeup
// primitive — a blocking take arms one ChildWatch for its whole wait
// instead of burning a fresh one-shot watch per poll round.
func (c *Client) ChildWatch(path string) (*ChildWatch, error) {
	if _, err := splitPath(path); err != nil {
		return nil, err
	}
	w := &watcher{ch: make(chan Event, 1), session: c.sessionID, persistent: true}
	c.ens.watches.addChild(path, w)
	return &ChildWatch{path: path, w: w, wt: c.ens.watches}, nil
}

// ChildrenW returns the children of path and a one-shot watch armed
// atomically with the read, so no membership change can slip between the
// read and the watch registration.
func (c *Client) ChildrenW(path string) ([]string, <-chan Event, error) {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return nil, nil, err
	}
	t, err := e.leaderTree()
	if err != nil {
		return nil, nil, err
	}
	n, err := t.lookup(path)
	if err != nil {
		return nil, nil, err
	}
	w := &watcher{ch: make(chan Event, 1), session: c.sessionID}
	e.watches.addChild(path, w)
	return n.sortedChildren(), w.ch, nil
}

// ExistsW reports whether path exists and arms a one-shot node watch
// atomically with the read.
func (c *Client) ExistsW(path string) (bool, <-chan Event, error) {
	e := c.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := c.checkSessionLocked(); err != nil {
		return false, nil, err
	}
	t, err := e.leaderTree()
	if err != nil {
		return false, nil, err
	}
	w := &watcher{ch: make(chan Event, 1), session: c.sessionID}
	e.watches.addNode(path, w)
	_, lookErr := t.lookup(path)
	return lookErr == nil, w.ch, nil
}

// EnsurePath creates path and any missing ancestors as persistent nodes.
// It is idempotent.
func (c *Client) EnsurePath(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur += "/" + p
		if _, err := c.Create(cur, nil, 0); err != nil && !isNodeExists(err) {
			return err
		}
	}
	return nil
}

func isNodeExists(err error) bool {
	return errors.Is(err, ErrNodeExists)
}
