package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestEnsemble(t *testing.T) *Ensemble {
	t.Helper()
	e := NewEnsemble(Config{Replicas: 3, SessionTimeout: 200 * time.Millisecond})
	t.Cleanup(func() { e.Close() })
	return e
}

func TestCreateGet(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	p, err := c.Create("/a", []byte("hello"), 0)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if p != "/a" {
		t.Fatalf("created path = %q, want /a", p)
	}
	data, st, err := c.Get("/a")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if string(data) != "hello" {
		t.Errorf("data = %q, want hello", data)
	}
	if st.Version != 0 {
		t.Errorf("version = %d, want 0", st.Version)
	}
}

func TestCreateDuplicate(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	if _, err := c.Create("/a", nil, 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Create("/a", nil, 0); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate create err = %v, want ErrNodeExists", err)
	}
}

func TestCreateMissingParent(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	if _, err := c.Create("/a/b", nil, 0); !errors.Is(err, ErrNoNode) {
		t.Fatalf("create orphan err = %v, want ErrNoNode", err)
	}
}

func TestBadPaths(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	for _, p := range []string{"", "a", "/a/", "//", "/a//b", "/a/./b", "/a/../b"} {
		if _, err := c.Create(p, nil, 0); !errors.Is(err, ErrBadPath) {
			t.Errorf("create(%q) err = %v, want ErrBadPath", p, err)
		}
	}
}

func TestSetVersioning(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	mustCreate(t, c, "/a", "v0")
	if err := c.Set("/a", []byte("v1"), 0); err != nil {
		t.Fatalf("set v0->v1: %v", err)
	}
	if err := c.Set("/a", []byte("vX"), 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale set err = %v, want ErrBadVersion", err)
	}
	if err := c.Set("/a", []byte("v2"), -1); err != nil {
		t.Fatalf("unconditional set: %v", err)
	}
	data, st, err := c.Get("/a")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if string(data) != "v2" || st.Version != 2 {
		t.Fatalf("got %q v%d, want v2 v2", data, st.Version)
	}
}

func TestDelete(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	mustCreate(t, c, "/a", "")
	mustCreate(t, c, "/a/b", "")
	if err := c.Delete("/a", -1); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty err = %v, want ErrNotEmpty", err)
	}
	if err := c.Delete("/a/b", -1); err != nil {
		t.Fatalf("delete child: %v", err)
	}
	if err := c.Delete("/a", -1); err != nil {
		t.Fatalf("delete parent: %v", err)
	}
	if err := c.Delete("/a", -1); !errors.Is(err, ErrNoNode) {
		t.Fatalf("double delete err = %v, want ErrNoNode", err)
	}
}

func TestSequenceNodes(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	mustCreate(t, c, "/q", "")
	var paths []string
	for i := 0; i < 3; i++ {
		p, err := c.Create("/q/item-", []byte(fmt.Sprint(i)), FlagSequence)
		if err != nil {
			t.Fatalf("create seq %d: %v", i, err)
		}
		paths = append(paths, p)
	}
	want := []string{"/q/item-0000000000", "/q/item-0000000001", "/q/item-0000000002"}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("seq path %d = %q, want %q", i, paths[i], want[i])
		}
	}
	// Sequence counter survives deletes (monotonic per parent).
	if err := c.Delete(paths[2], -1); err != nil {
		t.Fatalf("delete: %v", err)
	}
	p, err := c.Create("/q/item-", nil, FlagSequence)
	if err != nil {
		t.Fatalf("create after delete: %v", err)
	}
	if p != "/q/item-0000000003" {
		t.Errorf("seq path after delete = %q, want /q/item-0000000003", p)
	}
}

func TestEphemeralLifecycle(t *testing.T) {
	e := newTestEnsemble(t)
	owner := e.Connect()
	observer := e.Connect()
	defer observer.Close()

	if _, err := owner.Create("/lock", []byte("me"), FlagEphemeral); err != nil {
		t.Fatalf("create ephemeral: %v", err)
	}
	if _, err := owner.Create("/lock/child", nil, 0); !errors.Is(err, ErrEphemeralChildren) {
		t.Fatalf("child of ephemeral err = %v, want ErrEphemeralChildren", err)
	}
	owner.Close() // graceful close reaps ephemerals immediately
	if ok, _, err := observer.Exists("/lock"); err != nil || ok {
		t.Fatalf("after close: exists=%v err=%v, want gone", ok, err)
	}
}

func TestEphemeralExpiresAfterKill(t *testing.T) {
	e := NewEnsemble(Config{Replicas: 3, SessionTimeout: 100 * time.Millisecond, TickInterval: 10 * time.Millisecond})
	defer e.Close()
	owner := e.Connect()
	observer := e.Connect()
	defer observer.Close()

	if _, err := owner.Create("/lock", nil, FlagEphemeral); err != nil {
		t.Fatalf("create: %v", err)
	}
	owner.Kill() // crash: no cleanup, session must time out
	if ok, _, _ := observer.Exists("/lock"); !ok {
		t.Fatal("ephemeral vanished before session timeout")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		ok, _, err := observer.Exists("/lock")
		if err != nil {
			t.Fatalf("exists: %v", err)
		}
		if !ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("ephemeral not reaped after session timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestWatchData(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	mustCreate(t, c, "/a", "v0")
	ch, err := c.WatchNode("/a")
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if err := c.Set("/a", []byte("v1"), -1); err != nil {
		t.Fatalf("set: %v", err)
	}
	ev := recvEvent(t, ch)
	if ev.Type != EventDataChanged || ev.Path != "/a" {
		t.Fatalf("event = %+v, want data-changed /a", ev)
	}
	// One-shot: second set must not fire the same watch.
	if err := c.Set("/a", []byte("v2"), -1); err != nil {
		t.Fatalf("set: %v", err)
	}
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("unexpected second event %+v", ev)
		}
	case <-time.After(50 * time.Millisecond):
	}
}

func TestWatchChildren(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	mustCreate(t, c, "/q", "")
	names, ch, err := c.ChildrenW("/q")
	if err != nil {
		t.Fatalf("childrenW: %v", err)
	}
	if len(names) != 0 {
		t.Fatalf("children = %v, want empty", names)
	}
	mustCreate(t, c, "/q/x", "")
	ev := recvEvent(t, ch)
	if ev.Type != EventChildrenChanged || ev.Path != "/q" {
		t.Fatalf("event = %+v, want children-changed /q", ev)
	}
}

func TestWatchDelete(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	mustCreate(t, c, "/a", "")
	ch, err := c.WatchNode("/a")
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if err := c.Delete("/a", -1); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if ev := recvEvent(t, ch); ev.Type != EventDeleted {
		t.Fatalf("event = %+v, want deleted", ev)
	}
}

func TestMultiAtomicity(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	mustCreate(t, c, "/a", "v0")
	// Second op fails validation; first must not apply.
	err := c.Multi(
		SetOp("/a", []byte("v1"), -1),
		DeleteOp("/missing", -1),
	)
	if !errors.Is(err, ErrNoNode) {
		t.Fatalf("multi err = %v, want ErrNoNode", err)
	}
	data, _, _ := c.Get("/a")
	if string(data) != "v0" {
		t.Fatalf("partial multi applied: data = %q", data)
	}
	// A valid batch applies all ops.
	err = c.Multi(
		SetOp("/a", []byte("v1"), -1),
		CreateOp("/b", []byte("new"), 0),
	)
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	if data, _, _ := c.Get("/a"); string(data) != "v1" {
		t.Fatalf("a = %q, want v1", data)
	}
	if data, _, _ := c.Get("/b"); string(data) != "new" {
		t.Fatalf("b = %q, want new", data)
	}
}

func TestMultiSeesEarlierOps(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	// Create parent and child in the same batch: the child create must
	// see the parent created by the earlier op.
	err := c.Multi(
		CreateOp("/p", nil, 0),
		CreateOp("/p/c", nil, 0),
	)
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	if ok, _, _ := c.Exists("/p/c"); !ok {
		t.Fatal("/p/c missing after multi")
	}
}

func TestQuorumLoss(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	mustCreate(t, c, "/a", "v0")
	e.StopReplica(1)
	if err := c.Set("/a", []byte("v1"), -1); err != nil {
		t.Fatalf("set with 2/3 alive: %v", err)
	}
	e.StopReplica(2)
	if err := c.Set("/a", []byte("v2"), -1); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("set with 1/3 alive err = %v, want ErrNoQuorum", err)
	}
	if _, _, err := c.Get("/a"); err != nil {
		t.Fatalf("read with 1/3 alive: %v", err) // reads still served
	}
	e.StartReplica(1)
	if err := c.Set("/a", []byte("v2"), -1); err != nil {
		t.Fatalf("set after quorum restored: %v", err)
	}
}

func TestReplicaCatchUp(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	e.StopReplica(2)
	for i := 0; i < 10; i++ {
		mustCreate(t, c, fmt.Sprintf("/n%d", i), "x")
	}
	e.StartReplica(2)
	// Stop the other two so replica 2's tree serves reads; it must have
	// caught up, though writes now lack quorum.
	e.StopReplica(0)
	e.StopReplica(1)
	for i := 0; i < 10; i++ {
		if ok, _, err := c.Exists(fmt.Sprintf("/n%d", i)); err != nil || !ok {
			t.Fatalf("replica 2 missing /n%d after catch-up (ok=%v err=%v)", i, ok, err)
		}
	}
}

func TestSessionExpiredOperations(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	e.ExpireSession(c.SessionID())
	if _, err := c.Create("/x", nil, 0); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("create err = %v, want ErrSessionExpired", err)
	}
	if _, _, err := c.Get("/"); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("get err = %v, want ErrSessionExpired", err)
	}
	select {
	case <-c.ExpiredCh():
	case <-time.After(time.Second):
		t.Fatal("ExpiredCh not closed")
	}
}

func TestEnsurePath(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()

	if err := c.EnsurePath("/a/b/c"); err != nil {
		t.Fatalf("ensure: %v", err)
	}
	if ok, _, _ := c.Exists("/a/b/c"); !ok {
		t.Fatal("/a/b/c missing")
	}
	if err := c.EnsurePath("/a/b/c"); err != nil {
		t.Fatalf("ensure idempotent: %v", err)
	}
}

func TestConcurrentSequenceCreates(t *testing.T) {
	e := newTestEnsemble(t)
	setup := e.Connect()
	mustCreate(t, setup, "/q", "")
	setup.Close()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	pathCh := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := e.Connect()
			defer c.Close()
			for i := 0; i < perWorker; i++ {
				p, err := c.Create("/q/item-", nil, FlagSequence)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				pathCh <- p
			}
		}()
	}
	wg.Wait()
	close(pathCh)
	seen := make(map[string]bool)
	for p := range pathCh {
		if seen[p] {
			t.Fatalf("duplicate sequence path %s", p)
		}
		seen[p] = true
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("created %d unique nodes, want %d", len(seen), workers*perWorker)
	}
}

func TestEnsembleClose(t *testing.T) {
	e := NewEnsemble(Config{Replicas: 3})
	c := e.Connect()
	e.Close()
	if _, err := c.Create("/x", nil, 0); err == nil {
		t.Fatal("create after close succeeded")
	}
	e.Close() // double close must not panic
}

func mustCreate(t *testing.T, c *Client, path, data string) {
	t.Helper()
	if _, err := c.Create(path, []byte(data), 0); err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
}

func recvEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for watch event")
		return Event{}
	}
}
