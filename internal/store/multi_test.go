package store

import (
	"errors"
	"testing"
)

func TestMultiCreateThenDeleteSamePath(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	err := c.Multi(
		CreateOp("/x", []byte("v"), 0),
		DeleteOp("/x", -1),
	)
	if err != nil {
		t.Fatalf("create+delete: %v", err)
	}
	if ok, _, _ := c.Exists("/x"); ok {
		t.Fatal("/x should not survive the batch")
	}
	// And the node can be created again afterwards.
	if _, err := c.Create("/x", nil, 0); err != nil {
		t.Fatalf("recreate: %v", err)
	}
}

func TestMultiDeleteThenRecreate(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	mustCreate(t, c, "/x", "old")
	err := c.Multi(
		DeleteOp("/x", -1),
		CreateOp("/x", []byte("new"), 0),
	)
	if err != nil {
		t.Fatalf("delete+recreate: %v", err)
	}
	data, st, _ := c.Get("/x")
	if string(data) != "new" || st.Version != 0 {
		t.Fatalf("node = %q v%d", data, st.Version)
	}
}

func TestMultiSequenceNamesUniqueWithinBatch(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	mustCreate(t, c, "/q", "")
	err := c.Multi(
		CreateOp("/q/item-", []byte("1"), FlagSequence),
		CreateOp("/q/item-", []byte("2"), FlagSequence),
		CreateOp("/q/item-", []byte("3"), FlagSequence),
	)
	if err != nil {
		t.Fatalf("multi seq: %v", err)
	}
	names, _ := c.Children("/q")
	if len(names) != 3 {
		t.Fatalf("children = %v", names)
	}
	want := []string{"item-0000000000", "item-0000000001", "item-0000000002"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	// Counter continues past the batch.
	p, _ := c.Create("/q/item-", nil, FlagSequence)
	if p != "/q/item-0000000003" {
		t.Fatalf("next = %s", p)
	}
}

func TestMultiVersionTracksEarlierSets(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	mustCreate(t, c, "/x", "v0") // version 0
	// Second set must use the post-first-set version.
	err := c.Multi(
		SetOp("/x", []byte("v1"), 0),
		SetOp("/x", []byte("v2"), 1),
	)
	if err != nil {
		t.Fatalf("chained sets: %v", err)
	}
	data, st, _ := c.Get("/x")
	if string(data) != "v2" || st.Version != 2 {
		t.Fatalf("node = %q v%d", data, st.Version)
	}
	// Wrong in-batch version is rejected and nothing applies.
	err = c.Multi(
		SetOp("/x", []byte("v3"), 2),
		SetOp("/x", []byte("v4"), 2), // stale: first set bumped to 3
	)
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
	if data, _, _ := c.Get("/x"); string(data) != "v2" {
		t.Fatalf("partial apply: %q", data)
	}
}

func TestMultiDeleteParentWithBatchChildren(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	mustCreate(t, c, "/p", "")
	// Creating a child then deleting the parent must fail (not empty).
	err := c.Multi(
		CreateOp("/p/c", nil, 0),
		DeleteOp("/p", -1),
	)
	if !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
	// Deleting the batch child first makes it legal.
	err = c.Multi(
		CreateOp("/p/c", nil, 0),
		DeleteOp("/p/c", -1),
		DeleteOp("/p", -1),
	)
	if err != nil {
		t.Fatalf("ordered teardown: %v", err)
	}
	if ok, _, _ := c.Exists("/p"); ok {
		t.Fatal("/p survived")
	}
}

func TestMultiCreateUnderBatchCreatedEphemeralFails(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	err := c.Multi(
		CreateOp("/e", nil, FlagEphemeral),
		CreateOp("/e/child", nil, 0),
	)
	if !errors.Is(err, ErrEphemeralChildren) {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiExpireRejected(t *testing.T) {
	e := newTestEnsemble(t)
	c := e.Connect()
	defer c.Close()
	// opExpireSession is internal; clients cannot smuggle it into a
	// batch (no constructor), but defense in depth: validate rejects
	// unknown kinds.
	mv := newMultiValidator(newTree())
	if _, err := mv.validate(Op{kind: opExpireSession}); err == nil {
		t.Fatal("expire accepted in multi")
	}
}
