package store

import (
	"fmt"
	"sort"
	"strings"
)

// Stat carries metadata about a znode, in the style of ZooKeeper's Stat.
type Stat struct {
	// Version counts data changes; Create leaves it at 0.
	Version int32
	// Czxid and Mzxid are the total-order ids of the transactions that
	// created and last modified the node.
	Czxid int64
	Mzxid int64
	// EphemeralOwner is the session id that owns the node, or 0 for
	// persistent nodes.
	EphemeralOwner int64
	// NumChildren is the number of direct children.
	NumChildren int
}

// Create flags.
const (
	// FlagEphemeral nodes are deleted automatically when the owning
	// session ends or expires.
	FlagEphemeral = 1 << iota
	// FlagSequence appends a monotonically increasing, zero-padded
	// counter (scoped to the parent) to the node name.
	FlagSequence
)

// znode is one node in a replica's tree. Replicas never share znodes;
// each replica owns an independent tree mutated only by applying the
// ensemble's committed operation sequence.
type znode struct {
	name           string
	data           []byte
	version        int32
	czxid          int64
	mzxid          int64
	ephemeralOwner int64
	seqCounter     uint64
	children       map[string]*znode
}

func newZnode(name string) *znode {
	return &znode{name: name, children: make(map[string]*znode)}
}

func (z *znode) stat() Stat {
	return Stat{
		Version:        z.version,
		Czxid:          z.czxid,
		Mzxid:          z.mzxid,
		EphemeralOwner: z.ephemeralOwner,
		NumChildren:    len(z.children),
	}
}

// deepCopy clones the subtree rooted at z. Kept for snapshot-style
// catch-up strategies and white-box tests; the hot paths (Multi
// validation) deliberately avoid it — see multiValidator.
func (z *znode) deepCopy() *znode {
	c := &znode{
		name:           z.name,
		data:           append([]byte(nil), z.data...),
		version:        z.version,
		czxid:          z.czxid,
		mzxid:          z.mzxid,
		ephemeralOwner: z.ephemeralOwner,
		seqCounter:     z.seqCounter,
		children:       make(map[string]*znode, len(z.children)),
	}
	for name, child := range z.children {
		c.children[name] = child.deepCopy()
	}
	return c
}

// splitPath validates a znode path and returns its components. The root
// path "/" yields an empty slice.
func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: %q must start with '/'", ErrBadPath, path)
	}
	if path == "/" {
		return nil, nil
	}
	if strings.HasSuffix(path, "/") {
		return nil, fmt.Errorf("%w: %q must not end with '/'", ErrBadPath, path)
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, fmt.Errorf("%w: %q contains empty or relative component", ErrBadPath, path)
		}
	}
	return parts, nil
}

// parentPath returns the path of the parent of a validated path.
func parentPath(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// tree is a replica's znode hierarchy plus the bookkeeping needed to apply
// committed operations deterministically.
type tree struct {
	root *znode
}

func newTree() *tree {
	return &tree{root: newZnode("")}
}

// lookup walks to the znode at path, or returns ErrNoNode.
func (t *tree) lookup(path string) (*znode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	n := t.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoNode, path)
		}
		n = child
	}
	return n, nil
}

// sortedChildren returns the child names of a znode in lexicographic
// order, which for sequence nodes is also creation order.
func (z *znode) sortedChildren() []string {
	names := make([]string, 0, len(z.children))
	for name := range z.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// collectEphemerals appends the paths of all ephemeral nodes owned by the
// session under (and including) the subtree rooted at path prefix.
func collectEphemerals(n *znode, prefix string, session int64, out *[]string) {
	for name, child := range n.children {
		childPath := prefix + "/" + name
		if child.ephemeralOwner == session {
			*out = append(*out, childPath)
		}
		collectEphemerals(child, childPath, session, out)
	}
}
