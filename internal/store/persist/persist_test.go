package persist

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// replayAll collects every decodable record after afterZxid.
func replayAll(t *testing.T, s *Store, afterZxid int64) (zxids []int64, payloads []string) {
	t.Helper()
	last, err := s.Replay(afterZxid, func(z int64, p []byte) error {
		zxids = append(zxids, z)
		payloads = append(payloads, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(zxids) > 0 && last != zxids[len(zxids)-1] {
		t.Fatalf("Replay returned last=%d, want %d", last, zxids[len(zxids)-1])
	}
	return zxids, payloads
}

func appendN(t *testing.T, s *Store, from, n int64) {
	t.Helper()
	for z := from; z < from+n; z++ {
		if err := s.Append(z, []byte(fmt.Sprintf("op-%d", z))); err != nil {
			t.Fatal(err)
		}
	}
}

// newestWAL returns the path of the newest log segment.
func newestWAL(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil || len(names) == 0 {
		t.Fatalf("no wal segments in %s (err=%v)", dir, err)
	}
	return names[len(names)-1]
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Append(1, []byte("x")); err != ErrNotAppending {
		t.Fatalf("Append before StartAppending: err=%v, want ErrNotAppending", err)
	}
	if err := s.StartAppending(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 100)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	zxids, payloads := replayAll(t, s2, 0)
	if len(zxids) != 100 {
		t.Fatalf("replayed %d records, want 100", len(zxids))
	}
	for i, z := range zxids {
		if z != int64(i+1) || payloads[i] != fmt.Sprintf("op-%d", z) {
			t.Fatalf("record %d: zxid=%d payload=%q", i, z, payloads[i])
		}
	}
	// Replay with afterZxid skips the covered prefix.
	zxids, _ = replayAll(t, s2, 90)
	if len(zxids) != 10 || zxids[0] != 91 {
		t.Fatalf("tail replay: got %v", zxids)
	}
}

func TestTornFinalRecordIsDropped(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.StartAppending(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop a few bytes off the segment, as if the
	// process died mid-write.
	seg := newestWAL(t, dir)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	zxids, _ := replayAll(t, s2, 0)
	if len(zxids) != 9 || zxids[len(zxids)-1] != 9 {
		t.Fatalf("after torn tail: replayed %v, want 1..9", zxids)
	}
}

func TestCorruptCRCEndsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.StartAppending(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the segment: records from the
	// damaged one on are all suspect and must be ignored.
	seg := newestWAL(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	zxids, _ := replayAll(t, s2, 0)
	if len(zxids) >= 10 {
		t.Fatalf("corrupt record not detected: replayed %d records", len(zxids))
	}
	for i, z := range zxids { // the undamaged prefix must be intact
		if z != int64(i+1) {
			t.Fatalf("prefix damaged: %v", zxids)
		}
	}
}

func TestCorruptLengthFieldEndsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.StartAppending(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Overwrite the last record's length with an absurd value; replay
	// must stop rather than attempt a giant allocation.
	seg := newestWAL(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	rec := len("op-1") + 8 + 8 // body + frame
	off := len(data) - rec + 4 // length field of the last record
	binary.BigEndian.PutUint32(data[off:], 1<<30)
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	zxids, _ := replayAll(t, s2, 0)
	if len(zxids) != 2 {
		t.Fatalf("replayed %v, want 1..2", zxids)
	}
}

func TestTornHeadSegmentIsNotReused(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.StartAppending(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a previous incarnation that rotated to segment wal-2 and
	// crashed mid-first-append: the file exists but holds only a torn
	// frame. StartAppending(2) resolves to the same name and must NOT
	// append behind the torn bytes (replay would stop at them and lose
	// every new record).
	torn := filepath.Join(dir, walName(2))
	if err := os.WriteFile(torn, append([]byte(walMagic), 0xDE, 0xAD, 0xBE), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	last, err := s2.Replay(0, func(int64, []byte) error { return nil })
	if err != nil || last != 1 {
		t.Fatalf("replay over torn-head segment: last=%d err=%v", last, err)
	}
	if err := s2.StartAppending(2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(2, []byte("op-2")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3 := openStore(t, dir)
	zxids, _ := replayAll(t, s3, 0)
	if len(zxids) != 2 || zxids[1] != 2 {
		t.Fatalf("record appended after torn head was lost: replayed %v, want [1 2]", zxids)
	}
}

func TestSnapshotRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.StartAppending(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 50)
	if err := s.Snapshot(50, []byte("state@50")); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 51, 25)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	payload, zxid, err := s2.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "state@50" || zxid != 50 {
		t.Fatalf("snapshot = %q@%d, want state@50@50", payload, zxid)
	}
	zxids, _ := replayAll(t, s2, zxid)
	if len(zxids) != 25 || zxids[0] != 51 || zxids[24] != 75 {
		t.Fatalf("tail replay after snapshot: %v", zxids)
	}
	// The pre-snapshot segment must be gone.
	segs, _ := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment after rotation, have %v", segs)
	}

	stats := s.Stats()
	if stats.Snapshots != 1 || stats.WALAppends != 75 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestSnapshotRetention(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.StartAppending(1); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := s.Append(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := s.Snapshot(i, fmt.Appendf(nil, "state@%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	if len(snaps) != snapRetain {
		t.Fatalf("retained %d snapshots, want %d: %v", len(snaps), snapRetain, snaps)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptNewestSnapshotRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.StartAppending(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 2)
	if err := s.Snapshot(1, []byte("older")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(2, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot's payload. Rotation already deleted
	// the WAL segments it covered, so the retained older snapshot plus
	// the surviving tail can NOT reconstruct a real state — recovery
	// must refuse, not silently serve a gap.
	newest := filepath.Join(dir, snapName(2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	if _, _, err := s2.LoadSnapshot(); err == nil {
		t.Fatal("LoadSnapshot silently fell back past a corrupt newest snapshot")
	}
}

func TestAppendFailureIsFailStop(t *testing.T) {
	s := openStore(t, t.TempDir())
	if err := s.StartAppending(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 3)
	// Force an I/O error on the next append by closing the segment file
	// out from under the store.
	s.active.Close()
	err := s.Append(4, []byte("doomed"))
	if err == nil {
		t.Fatal("append to a closed segment succeeded")
	}
	// Every later append must fail with the original error — appending
	// past a possibly-torn frame would strand valid records behind it.
	if err2 := s.Append(5, []byte("after")); err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("append after failure: %v, want sticky %v", err2, err)
	}
	if err2 := s.StartAppending(6); err2 == nil {
		t.Fatal("StartAppending after failure succeeded")
	}
	if err2 := s.Snapshot(5, []byte("x")); err2 == nil {
		t.Fatal("Snapshot after failure succeeded")
	}
}

func TestEmptyDirRecovers(t *testing.T) {
	s := openStore(t, t.TempDir())
	payload, zxid, err := s.LoadSnapshot()
	if err != nil || payload != nil || zxid != 0 {
		t.Fatalf("LoadSnapshot on empty dir = %q,%d,%v", payload, zxid, err)
	}
	zxids, _ := replayAll(t, s, 0)
	if len(zxids) != 0 {
		t.Fatalf("replayed %v from empty dir", zxids)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"ALWAYS", SyncAlways, true},
		{"none", SyncNone, true},
		{"sometimes", SyncAlways, false},
		{"", SyncAlways, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SyncAlways.String() != "always" || SyncNone.String() != "none" {
		t.Errorf("String() round-trip broken")
	}
}

func TestSyncAlwaysCountsFsyncs(t *testing.T) {
	s, err := Open(t.TempDir(), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StartAppending(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 8)
	if got := s.Stats().Fsyncs; got < 8 {
		t.Fatalf("Fsyncs = %d, want ≥ 8 under SyncAlways", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
