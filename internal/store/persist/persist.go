// Package persist is the durability layer of the coordination store: a
// CRC-framed binary write-ahead log plus periodic full-tree snapshots,
// giving the store the "replicated persistent storage" role it plays in
// TROPIC's safety argument (paper §2.3, §5) across full process crashes.
//
// The layering is deliberate: this package moves opaque payloads — it
// knows framing, checksums, fsync policy, rotation, and recovery order,
// while the store package owns the encoding of its operations and tree.
// That keeps the WAL format independent of store internals and avoids
// an import cycle.
//
// Data directory layout:
//
//	wal-<firstZxid:016x>.log   log segments, named by the zxid of the
//	                           first record they may contain
//	snap-<zxid:016x>.snap      full-tree snapshots, named by the zxid
//	                           they cover
//
// Protocol: Open → LoadSnapshot → Replay → StartAppending → Append...,
// with Snapshot called at any point after appending begins. A snapshot
// rotates the log: all prior segments cover only zxids ≤ the snapshot's
// and are deleted, bounding both disk usage and recovery time.
package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// SyncPolicy selects when the WAL is fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a committed write survives
	// both process and machine crashes. This is the default and the
	// policy matching ZooKeeper's forceSync=yes.
	SyncAlways SyncPolicy = iota
	// SyncNone never fsyncs during appends (the OS flushes on its own
	// schedule, and Close flushes explicitly): committed writes survive
	// process crashes but the tail may be lost on machine failure.
	SyncNone
)

// String renders the policy for flags and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses a -sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return SyncAlways, fmt.Errorf("persist: unknown sync policy %q (want always|none)", s)
	}
}

// Stats are the persistence counters exposed through the store's stats
// surface and tropicd's GET /v1/stats.
type Stats struct {
	// WALAppends counts records appended to the log.
	WALAppends int64 `json:"walAppends"`
	// WALBytes counts bytes written to log segments (frames included).
	WALBytes int64 `json:"walBytes"`
	// Fsyncs counts explicit fsync calls on log segments.
	Fsyncs int64 `json:"fsyncs"`
	// FsyncNanos is cumulative wall time spent inside fsync calls — with
	// Fsyncs, the fsync-latency signal the metrics registry exports.
	FsyncNanos int64 `json:"fsyncNanos"`
	// Snapshots counts snapshots successfully written.
	Snapshots int64 `json:"snapshots"`
	// Recoveries counts completed recovery passes (1 after a restart
	// from a non-empty data dir).
	Recoveries int64 `json:"recoveries"`
	// LastRecoveryNanos is the wall time of the most recent recovery.
	LastRecoveryNanos int64 `json:"lastRecoveryNanos"`
}

// Store owns one data directory: the active WAL segment, the segment and
// snapshot inventory, and the persistence counters.
type Store struct {
	dir    string
	policy SyncPolicy

	mu     sync.Mutex
	active *os.File // current append segment; nil until StartAppending
	closed bool
	// failErr makes the store fail-stop: once a WAL append or rotation
	// errors, the on-disk log structure is in doubt (a torn frame may
	// sit in front of anything written later, silently discarding it on
	// replay), so every subsequent append fails with the original error
	// until the process restarts and recovery re-establishes a clean
	// tail.
	failErr error

	appends    metrics.Counter
	bytes      metrics.Counter
	fsyncs     metrics.Counter
	fsyncNs    metrics.Counter
	snapshots  metrics.Counter
	recoveries metrics.Counter
	lastRec    metrics.Gauge
}

// Open prepares a data directory for recovery and appending, creating it
// if needed and clearing leftover temporary files from an interrupted
// snapshot write.
func Open(dir string, policy SyncPolicy) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		return nil, err
	}
	for _, t := range tmps {
		_ = os.Remove(t)
	}
	return &Store{dir: dir, policy: policy}, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the persistence counters.
func (s *Store) Stats() Stats {
	return Stats{
		WALAppends:        s.appends.Load(),
		WALBytes:          s.bytes.Load(),
		Fsyncs:            s.fsyncs.Load(),
		FsyncNanos:        s.fsyncNs.Load(),
		Snapshots:         s.snapshots.Load(),
		Recoveries:        s.recoveries.Load(),
		LastRecoveryNanos: s.lastRec.Load(),
	}
}

// ObserveRecovery records a completed recovery pass and its duration.
func (s *Store) ObserveRecovery(d time.Duration) {
	s.recoveries.Inc()
	s.lastRec.Set(d.Nanoseconds())
}

// LastRecovery returns the duration of the most recent recovery pass.
func (s *Store) LastRecovery() time.Duration {
	return time.Duration(s.lastRec.Load())
}

// fail records the first unrecoverable error and returns it. Caller
// holds s.mu.
func (s *Store) fail(err error) error {
	if s.failErr == nil {
		s.failErr = err
	}
	return err
}

// Sync flushes the active segment to stable storage regardless of
// policy, for shutdown paths (tropicd's SIGTERM handler).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.active == nil {
		return nil
	}
	s.fsyncs.Inc()
	start := time.Now()
	err := s.active.Sync()
	s.fsyncNs.Add(time.Since(start).Nanoseconds())
	return err
}

// Close flushes and closes the active segment. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active == nil {
		return nil
	}
	err := s.syncLocked()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	return err
}

// syncDir fsyncs the data directory so renames and creates are durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	s.fsyncs.Inc()
	start := time.Now()
	err = d.Sync()
	s.fsyncNs.Add(time.Since(start).Nanoseconds())
	return err
}

// sortedMatches lists files in dir matching prefix/suffix, sorted by
// name — which, with zero-padded hex zxids, is also zxid order.
func (s *Store) sortedMatches(prefix, suffix string) ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}
