package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshot file format:
//
//	[8]  magic "TROPSNP1"
//	[8]  zxid covered by the snapshot (big-endian)
//	[4]  crc32 (IEEE) of payload
//	[4]  payload length
//	[n]  payload (opaque to this package)
//
// Snapshots are written to a temporary file, fsynced, and renamed into
// place, so a crash mid-snapshot leaves the previous snapshot intact.
// LoadSnapshot reads ONLY the newest snapshot and fails loudly when it
// is unreadable: rotation deletes the WAL segments a snapshot covers,
// so recovering from an older snapshot plus the surviving tail would
// silently skip every operation between the two — a state that never
// existed. The older retained snapshot is kept strictly as material
// for manual (operator) recovery.

const (
	snapMagic  = "TROPSNP1"
	snapSuffix = ".snap"
	snapPrefix = "snap-"
	// snapRetain is how many snapshots are kept: the latest, which
	// recovery uses, plus one older file retained only as material for
	// manual recovery should the latest be damaged (recovery never
	// falls back to it automatically — see LoadSnapshot).
	snapRetain = 2
)

func snapName(zxid int64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, uint64(zxid), snapSuffix)
}

// Snapshot durably writes a full-state snapshot covering every record
// up to and including zxid, then rotates the WAL: a fresh segment
// becomes active and all prior segments — whose records are all ≤ zxid,
// since the caller sequences Snapshot with appends — are deleted, along
// with all but the last snapRetain snapshots. This is what bounds
// recovery time and disk usage.
//
// A failure before the snapshot file lands is harmless (the WAL still
// holds everything; the caller may retry later). A failure during the
// rotation that follows is fail-stop, like a failed append: the store
// would otherwise be left with no usable active segment.
func (s *Store) Snapshot(zxid int64, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failErr != nil {
		return s.failErr
	}
	if err := s.writeSnapshotLocked(zxid, payload); err != nil {
		return err
	}
	s.snapshots.Inc()
	// Rotate: records from zxid+1 on go to a fresh segment.
	if s.active != nil {
		if err := s.active.Close(); err != nil {
			s.active = nil
			return s.fail(err)
		}
		s.active = nil
	}
	if err := s.openSegmentLocked(zxid + 1); err != nil {
		return s.fail(err)
	}
	// Prune failures are non-fatal: leftover segments only hold records
	// the snapshot covers, which replay skips; the next rotation retries
	// their removal.
	return s.pruneLocked(zxid)
}

func (s *Store) writeSnapshotLocked(zxid int64, payload []byte) error {
	tmp, err := os.CreateTemp(s.dir, snapName(zxid)+".*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	hdr := make([]byte, 0, 24)
	hdr = append(hdr, snapMagic...)
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(zxid))
	hdr = binary.BigEndian.AppendUint32(hdr, crc32.ChecksumIEEE(payload))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(payload)))
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	s.fsyncs.Inc()
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, snapName(zxid))); err != nil {
		return err
	}
	return s.syncDir()
}

// pruneLocked removes WAL segments fully covered by the snapshot at
// zxid (every segment except the just-opened active one) and old
// snapshots beyond the retention count.
func (s *Store) pruneLocked(zxid int64) error {
	segs, err := s.sortedMatches(walPrefix, walSuffix)
	if err != nil {
		return err
	}
	activeName := walName(zxid + 1)
	for _, name := range segs {
		if name != activeName {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return err
			}
		}
	}
	snaps, err := s.sortedMatches(snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	for len(snaps) > snapRetain {
		if err := os.Remove(filepath.Join(s.dir, snaps[0])); err != nil {
			return err
		}
		snaps = snaps[1:]
	}
	return nil
}

// LoadSnapshot returns the payload and zxid of the newest snapshot, or
// (nil, 0, nil) when the directory holds none. An unreadable newest
// snapshot is an error, never a silent fallback: the WAL segments it
// covered are gone, so no combination of older snapshot + surviving
// tail reconstructs a state that ever existed.
func (s *Store) LoadSnapshot() ([]byte, int64, error) {
	names, err := s.sortedMatches(snapPrefix, snapSuffix)
	if err != nil {
		return nil, 0, err
	}
	if len(names) == 0 {
		return nil, 0, nil
	}
	newest := names[len(names)-1]
	payload, zxid, ok := readSnapshot(filepath.Join(s.dir, newest))
	if !ok {
		return nil, 0, fmt.Errorf(
			"persist: snapshot %s is unreadable; refusing automatic recovery (older files in %s are retained for manual repair)",
			newest, s.dir)
	}
	return payload, zxid, nil
}

func readSnapshot(path string) (payload []byte, zxid int64, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false
	}
	defer f.Close()
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, 0, false
	}
	if string(hdr[:8]) != snapMagic {
		return nil, 0, false
	}
	zxid = int64(binary.BigEndian.Uint64(hdr[8:16]))
	crc := binary.BigEndian.Uint32(hdr[16:20])
	n := binary.BigEndian.Uint32(hdr[20:24])
	if n > maxRecordBytes*16 {
		return nil, 0, false
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, 0, false
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, zxid, true
}
