package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Segment file format:
//
//	[8]  magic "TROPWAL1"
//	then zero or more records:
//	[4]  crc32 (IEEE) of body
//	[4]  body length
//	[n]  body = [8] zxid (big-endian) + payload
//
// A record is readable iff its frame is complete and the CRC matches.
// Recovery treats the first unreadable record as the end of the log:
// a torn final record (crash mid-write) is silently dropped, and
// anything after a corrupt record is suspect and ignored.

const (
	walMagic  = "TROPWAL1"
	walSuffix = ".log"
	walPrefix = "wal-"
	// maxRecordBytes bounds a single record so a corrupt length field
	// cannot trigger a huge allocation during recovery.
	maxRecordBytes = 1 << 26 // 64 MiB
)

// ErrNotAppending is returned by Append before StartAppending.
var ErrNotAppending = errors.New("persist: no active WAL segment (call StartAppending)")

func walName(firstZxid int64) string {
	return fmt.Sprintf("%s%016x%s", walPrefix, uint64(firstZxid), walSuffix)
}

// StartAppending opens a fresh active segment for records from nextZxid
// on. Recovery always rotates to a new segment rather than appending to
// the last one, so a torn tail from the previous run can never sit in
// front of new records.
func (s *Store) StartAppending(nextZxid int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store closed")
	}
	if s.failErr != nil {
		return s.failErr
	}
	if s.active != nil {
		if err := s.active.Close(); err != nil {
			return err
		}
		s.active = nil
	}
	return s.openSegmentLocked(nextZxid)
}

func (s *Store) openSegmentLocked(firstZxid int64) error {
	path := filepath.Join(s.dir, walName(firstZxid))
	// Always a FRESH segment: O_TRUNC discards any same-named file left
	// by a previous incarnation. A name collision can only happen when
	// that old segment contributed no records to replay (e.g. its first
	// frame was torn by a crash) — had it contributed any, the next zxid
	// would be past its name. Appending behind leftover torn bytes would
	// strand every new record where replay never reaches it.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return err
	}
	s.bytes.Add(int64(len(walMagic)))
	if s.policy == SyncAlways {
		s.fsyncs.Inc()
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := s.syncDir(); err != nil {
			f.Close()
			return err
		}
	}
	s.active = f
	return nil
}

// Append frames payload under zxid and writes it to the active segment,
// fsyncing per policy. It returns only after the record is handed to
// the OS (SyncNone) or on stable storage (SyncAlways) — the caller
// applies the operation to its in-memory state strictly afterwards
// (log-before-apply).
//
// A failed append is fail-stop: the frame may be partially on disk, so
// appending anything after it would put valid records behind a torn one
// where replay never reaches them. The store refuses all further
// appends with the original error; the failing record's own outcome is
// indeterminate (a fully written frame whose fsync failed can still
// surface after recovery), which is why the caller must also never
// reuse its zxid.
func (s *Store) Append(zxid int64, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failErr != nil {
		return s.failErr
	}
	if s.active == nil {
		return ErrNotAppending
	}
	frame := appendFrame(make([]byte, 0, 16+len(payload)), zxid, payload)
	if _, err := s.active.Write(frame); err != nil {
		return s.fail(fmt.Errorf("persist: wal append: %w", err))
	}
	s.appends.Inc()
	s.bytes.Add(int64(len(frame)))
	if s.policy == SyncAlways {
		s.fsyncs.Inc()
		if err := s.active.Sync(); err != nil {
			return s.fail(fmt.Errorf("persist: wal fsync: %w", err))
		}
	}
	return nil
}

// AppendNoSync frames payload under zxid and writes it to the active
// segment WITHOUT fsyncing, regardless of policy. It is the group-commit
// half of Append: the caller writes a run of records and then makes the
// whole run durable with one SyncGroup call, amortizing the fsync that
// dominates SyncAlways throughput. Failure semantics are identical to
// Append (fail-stop: a torn frame may sit in front of later records).
func (s *Store) AppendNoSync(zxid int64, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failErr != nil {
		return s.failErr
	}
	if s.active == nil {
		return ErrNotAppending
	}
	frame := appendFrame(make([]byte, 0, 16+len(payload)), zxid, payload)
	if _, err := s.active.Write(frame); err != nil {
		return s.fail(fmt.Errorf("persist: wal append: %w", err))
	}
	s.appends.Inc()
	s.bytes.Add(int64(len(frame)))
	return nil
}

// SyncGroup completes a run of AppendNoSync records: under SyncAlways it
// fsyncs the active segment once for the whole run; under SyncNone it is
// a no-op (the OS flushes on its own schedule, as for Append). A failed
// sync is fail-stop — the run's durability is indeterminate and nothing
// may be appended behind it.
func (s *Store) SyncGroup() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failErr != nil {
		return s.failErr
	}
	if s.policy != SyncAlways || s.active == nil {
		return nil
	}
	s.fsyncs.Inc()
	if err := s.active.Sync(); err != nil {
		return s.fail(fmt.Errorf("persist: wal group fsync: %w", err))
	}
	return nil
}

func appendFrame(b []byte, zxid int64, payload []byte) []byte {
	body := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(body, uint64(zxid))
	copy(body[8:], payload)
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(body))
	b = binary.BigEndian.AppendUint32(b, uint32(len(body)))
	return append(b, body...)
}

// Replay streams every decodable record with zxid > afterZxid, in log
// order, to apply. It stops cleanly at the first torn or corrupt record
// and returns the zxid of the last record delivered (afterZxid when
// none were). An error from apply aborts the replay.
func (s *Store) Replay(afterZxid int64, apply func(zxid int64, payload []byte) error) (int64, error) {
	names, err := s.sortedMatches(walPrefix, walSuffix)
	if err != nil {
		return afterZxid, err
	}
	last := afterZxid
	for _, name := range names {
		done, err := s.replaySegment(filepath.Join(s.dir, name), afterZxid, &last, apply)
		if err != nil {
			return last, err
		}
		if done {
			// The segment ended at a torn or corrupt record; everything
			// after that point (including later segments) is suspect.
			break
		}
	}
	return last, nil
}

// replaySegment reads one segment. It returns done=true when the
// segment terminated at an unreadable record, meaning replay must not
// continue into later segments.
func (s *Store) replaySegment(path string, afterZxid int64, last *int64, apply func(int64, []byte) error) (done bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != walMagic {
		// Not a segment this version wrote (or truncated before the
		// header finished): treat as end of log.
		return true, nil
	}
	hdr := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			// Clean end of segment (EOF) or torn frame header.
			return !errors.Is(err, io.EOF), nil
		}
		crc := binary.BigEndian.Uint32(hdr[:4])
		n := binary.BigEndian.Uint32(hdr[4:])
		if n < 8 || n > maxRecordBytes {
			return true, nil // corrupt length
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(f, body); err != nil {
			return true, nil // torn record
		}
		if crc32.ChecksumIEEE(body) != crc {
			return true, nil // corrupt record
		}
		zxid := int64(binary.BigEndian.Uint64(body[:8]))
		if zxid <= afterZxid {
			continue // already covered by the snapshot
		}
		if err := apply(zxid, body[8:]); err != nil {
			return false, err
		}
		*last = zxid
	}
}
