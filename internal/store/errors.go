// Package store implements a replicated, hierarchical coordination store
// modeled on ZooKeeper. TROPIC uses it for its distributed queues (inputQ,
// phyQ), leader election among controllers, and as the highly available
// persistent storage for transaction states and logs.
//
// The store is an in-process ensemble of replica state machines. Every
// write is sequenced by the ensemble into a single total order (a
// simplified atomic broadcast), applied to all live replicas, and succeeds
// only while a majority of replicas are alive. Sessions expire when a
// client stops heartbeating, at which point the ensemble deletes the
// session's ephemeral nodes — the failure-detection primitive TROPIC's
// controller failover builds on.
package store

import "repro/tropic/trerr"

// Errors returned by store operations. They mirror the ZooKeeper error
// codes TROPIC's recipes (queues, election) depend on. Each sentinel
// carries its trerr taxonomy code, so a store failure that escapes to
// the HTTP gateway keeps a stable machine-readable identity
// (errors.Is against these sentinels continues to work as before).
var (
	// ErrNoNode is returned when the target znode does not exist.
	ErrNoNode = trerr.New(trerr.StoreNoNode, "store: node does not exist")
	// ErrNodeExists is returned by Create when the znode already exists.
	ErrNodeExists = trerr.New(trerr.StoreNodeExists, "store: node already exists")
	// ErrBadVersion is returned when a conditional Set/Delete specifies a
	// version that does not match the znode's current version.
	ErrBadVersion = trerr.New(trerr.StoreBadVersion, "store: version conflict")
	// ErrNotEmpty is returned by Delete when the znode still has children.
	ErrNotEmpty = trerr.New(trerr.StoreNotEmpty, "store: node has children")
	// ErrNoQuorum is returned when fewer than a majority of replicas are
	// alive and the ensemble cannot commit writes.
	ErrNoQuorum = trerr.New(trerr.StoreNoQuorum, "store: no quorum")
	// ErrSessionExpired is returned on any operation through a client whose
	// session the ensemble has expired.
	ErrSessionExpired = trerr.New(trerr.StoreSessionExpired, "store: session expired")
	// ErrEphemeralChildren is returned when creating a child under an
	// ephemeral znode, which ZooKeeper forbids.
	ErrEphemeralChildren = trerr.New(trerr.StoreEphemeralChildren, "store: ephemeral nodes may not have children")
	// ErrBadPath is returned for malformed znode paths.
	ErrBadPath = trerr.New(trerr.StoreBadPath, "store: invalid path")
	// ErrClosed is returned when the ensemble has been shut down.
	ErrClosed = trerr.New(trerr.StoreClosed, "store: ensemble closed")
)
