package store

import "fmt"

// multiValidator validates the sub-ops of a Multi batch sequentially,
// overlaying the hypothetical effects of earlier sub-ops on the real
// tree instead of copying it. It tracks:
//
//   - created: paths created earlier in the batch (with their parent, so
//     later children can hang off them);
//   - deleted: paths deleted earlier in the batch;
//   - setCount: extra version bumps from earlier sets;
//   - seqOffset: extra sequence-counter increments per parent.
//
// Only validation happens here — the resolved ops are applied to every
// replica by applyOp afterwards, exactly as for single operations.
type multiValidator struct {
	t         *tree
	created   map[string]*createdNode
	deleted   map[string]bool
	setCount  map[string]int32
	seqOffset map[string]uint64
	childAdds map[string]int // net child-count delta per parent
}

// createdNode records what the batch created at a path.
type createdNode struct {
	ephemeralOwner int64
}

func newMultiValidator(t *tree) *multiValidator {
	return &multiValidator{
		t:         t,
		created:   make(map[string]*createdNode),
		deleted:   make(map[string]bool),
		setCount:  make(map[string]int32),
		seqOffset: make(map[string]uint64),
		childAdds: make(map[string]int),
	}
}

// exists reports whether a path exists in the overlaid view, returning
// the ephemeral owner for parent checks.
func (mv *multiValidator) exists(path string) (bool, int64) {
	if mv.deleted[path] {
		return false, 0
	}
	if cn, ok := mv.created[path]; ok {
		return true, cn.ephemeralOwner
	}
	n, err := mv.t.lookup(path)
	if err != nil {
		return false, 0
	}
	return true, n.ephemeralOwner
}

// version returns the overlaid version of an existing tree node (batch
// creations have version 0 and cannot have pre-existing versions).
func (mv *multiValidator) version(path string) (int32, bool) {
	if mv.deleted[path] {
		return 0, false
	}
	if _, ok := mv.created[path]; ok {
		return mv.setCount[path], true
	}
	n, err := mv.t.lookup(path)
	if err != nil {
		return 0, false
	}
	return n.version + mv.setCount[path], true
}

// childCount returns the overlaid child count.
func (mv *multiValidator) childCount(path string) int {
	base := 0
	if n, err := mv.t.lookup(path); err == nil {
		base = len(n.children)
	}
	return base + mv.childAdds[path]
}

func (mv *multiValidator) validate(op Op) (Op, error) {
	switch op.kind {
	case opCreate:
		parts, err := splitPath(op.Path)
		if err != nil {
			return op, err
		}
		if len(parts) == 0 {
			return op, fmt.Errorf("%w: cannot create root", ErrBadPath)
		}
		parent := parentPath(op.Path)
		if parent != "/" {
			ok, eph := mv.exists(parent)
			if !ok {
				return op, fmt.Errorf("%w: %s", ErrNoNode, parent)
			}
			if eph != 0 {
				return op, fmt.Errorf("%w: parent of %s", ErrEphemeralChildren, op.Path)
			}
		}
		name := parts[len(parts)-1]
		if op.Flags&FlagSequence != 0 {
			base := uint64(0)
			if pn, err := mv.t.lookup(parent); err == nil {
				base = pn.seqCounter
			}
			name = fmt.Sprintf("%s%010d", name, base+mv.seqOffset[parent])
			mv.seqOffset[parent]++
		}
		full := childFullPath(op.Path, name)
		if ok, _ := mv.exists(full); ok {
			return op, fmt.Errorf("%w: %s", ErrNodeExists, full)
		}
		op.resolvedName = name
		mv.created[full] = &createdNode{ephemeralOwner: op.session}
		delete(mv.deleted, full)
		mv.childAdds[parent]++
		return op, nil

	case opSet:
		v, ok := mv.version(op.Path)
		if !ok {
			return op, fmt.Errorf("%w: %s", ErrNoNode, op.Path)
		}
		if op.Version >= 0 && v != op.Version {
			return op, fmt.Errorf("%w: %s has version %d, want %d", ErrBadVersion, op.Path, v, op.Version)
		}
		mv.setCount[op.Path]++
		return op, nil

	case opDelete:
		v, ok := mv.version(op.Path)
		if !ok {
			return op, fmt.Errorf("%w: %s", ErrNoNode, op.Path)
		}
		if op.Version >= 0 && v != op.Version {
			return op, fmt.Errorf("%w: %s has version %d, want %d", ErrBadVersion, op.Path, v, op.Version)
		}
		if mv.childCount(op.Path) > 0 {
			return op, fmt.Errorf("%w: %s", ErrNotEmpty, op.Path)
		}
		mv.deleted[op.Path] = true
		delete(mv.created, op.Path)
		mv.childAdds[parentPath(op.Path)]--
		return op, nil

	default:
		return op, fmt.Errorf("store: op kind %d not allowed in multi", op.kind)
	}
}
