package store

import (
	"sync"
	"sync/atomic"
	"time"
)

// Default batching bounds, used by Client.MultiAsync/CreateAsync and by
// callers that leave BatcherConfig fields zero. 32 ops matches the batch
// size the pipeline benchmarks ablate; 2ms is the flush-latency ceiling.
const (
	DefaultBatchMaxOps   = 32
	DefaultBatchMaxDelay = 2 * time.Millisecond
)

// BatcherConfig bounds a Batcher's coalescing window.
type BatcherConfig struct {
	// MaxOps caps how many operations ride one group commit (default
	// DefaultBatchMaxOps); excess pending work flushes in follow-up
	// groups, bounding how long one commit holds the ensemble.
	MaxOps int
	// MaxDelay is the flush-latency ceiling: no submission waits longer
	// than this for its group commit to begin (default
	// DefaultBatchMaxDelay). The batcher is self-clocking — a submission
	// finding the flusher idle flushes immediately, and work arriving
	// during an in-flight commit flushes right after it — so in practice
	// flushes begin far sooner; MaxDelay is the backstop sweep.
	MaxDelay time.Duration
	// OnFlush, when non-nil, observes every group commit (operation
	// count and wall time) — the hook the platform uses to export
	// group-commit size and latency distributions to its metrics
	// registry. Called from the flush path; keep it cheap.
	OnFlush func(ops int, d time.Duration)
}

func (cfg BatcherConfig) withDefaults() BatcherConfig {
	if cfg.MaxOps <= 0 {
		cfg.MaxOps = DefaultBatchMaxOps
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultBatchMaxDelay
	}
	return cfg
}

// BatcherStats counts a batcher's activity, for the /v1/stats pipeline
// section and the group-commit benchmarks.
type BatcherStats struct {
	// Flushes is the number of group commits issued.
	Flushes int64 `json:"flushes"`
	// Groups is the number of atomic batches flushed (≥ Flushes).
	Groups int64 `json:"groups"`
	// Ops is the total operations flushed.
	Ops int64 `json:"ops"`
	// MaxGroupOps is the largest single flush, in operations.
	MaxGroupOps int64 `json:"maxGroupOps"`
	// FlushNanos is cumulative wall time spent committing groups.
	FlushNanos int64 `json:"flushNanos"`
}

// GroupResult reports one atomic batch's outcome from a group commit:
// its demultiplexed error and, on success, the final path of every
// create in the batch ("" for non-create ops) — sequence-node names are
// resolved at commit, so this is how an async submitter learns the path
// it created.
type GroupResult struct {
	Err   error
	Paths []string
	// Zxid is the committed batch's position in the ensemble's total
	// order — the watermark an async submitter carries so follower reads
	// never serve state older than this write.
	Zxid int64
}

// pendingGroup is one not-yet-flushed submission. deliver forwards the
// group's result into the caller's typed channel; it must not block
// (every caller hands in a send to a capacity-1 buffered channel it is
// the sole writer of).
type pendingGroup struct {
	ops     []Op
	deliver func(GroupResult)
}

// Batcher coalesces concurrent Multi/Create submissions into group
// commits: a flush hands every pending batch to Client.MultiAll, so the
// whole run pays one ensemble proposal round (one quorum-latency charge,
// one WAL fsync) with per-batch error demultiplexing. It is the
// client-side front end of the store's group-commit pipeline: workers
// report physical outcomes through it, and the platform client threads
// submissions through it, so independent callers sharing a session
// amortize the store round trip that otherwise dominates per-transaction
// cost.
type Batcher struct {
	cli *Client
	cfg BatcherConfig

	mu      sync.Mutex
	pending []pendingGroup
	nops    int
	stopped bool

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	// flushMu serializes flushes so batches commit in submission order.
	flushMu sync.Mutex

	flushes  atomic.Int64
	groups   atomic.Int64
	ops      atomic.Int64
	maxGroup atomic.Int64
	flushNs  atomic.Int64
}

// NewBatcher creates a batcher over the client's session and starts its
// flush loop. Close it before closing the client.
func (c *Client) NewBatcher(cfg BatcherConfig) *Batcher {
	b := &Batcher{
		cli:  c,
		cfg:  cfg.withDefaults(),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go b.loop()
	return b
}

// enqueue registers one atomic batch with its result-delivery hook,
// reporting false when the batcher is closed (deliver is then never
// called).
func (b *Batcher) enqueue(ops []Op, deliver func(GroupResult)) bool {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return false
	}
	b.pending = append(b.pending, pendingGroup{ops: ops, deliver: deliver})
	b.nops += len(ops)
	b.mu.Unlock()
	select {
	case b.kick <- struct{}{}:
	default:
	}
	return true
}

// GroupAsync enqueues one atomic batch and returns a buffered channel
// that delivers its outcome — error plus resolved create paths — after
// the group commit it rode in.
func (b *Batcher) GroupAsync(ops ...Op) <-chan GroupResult {
	ch := make(chan GroupResult, 1)
	if len(ops) == 0 {
		ch <- GroupResult{}
		return ch
	}
	if !b.enqueue(ops, func(r GroupResult) { ch <- r }) {
		ch <- GroupResult{Err: ErrClosed}
	}
	return ch
}

// MultiAsync is GroupAsync reduced to its error: an atomic Multi batch
// whose buffered channel delivers the demultiplexed commit outcome.
func (b *Batcher) MultiAsync(ops ...Op) <-chan error {
	ch := make(chan error, 1)
	if len(ops) == 0 {
		ch <- nil
		return ch
	}
	if !b.enqueue(ops, func(r GroupResult) { ch <- r.Err }) {
		ch <- ErrClosed
	}
	return ch
}

// Multi is the synchronous form of MultiAsync: it blocks until the batch
// is group-committed and returns its demultiplexed error.
func (b *Batcher) Multi(ops ...Op) error { return <-b.MultiAsync(ops...) }

// CreateResult is a CreateAsync outcome: the final (sequence-resolved)
// path and commit zxid, or the error.
type CreateResult struct {
	Path string
	Zxid int64
	Err  error
}

// CreateAsync enqueues a single create and returns a buffered channel
// delivering its resolved path — the batched form of Client.Create,
// used by submitters so concurrent sequence-node creations share one
// commit round.
func (b *Batcher) CreateAsync(path string, data []byte, flags int) <-chan CreateResult {
	ch := make(chan CreateResult, 1)
	ok := b.enqueue([]Op{CreateOp(path, data, flags)}, func(r GroupResult) {
		if r.Err != nil {
			ch <- CreateResult{Err: r.Err}
			return
		}
		ch <- CreateResult{Path: r.Paths[0], Zxid: r.Zxid}
	})
	if !ok {
		ch <- CreateResult{Err: ErrClosed}
	}
	return ch
}

// Flush forces everything pending out in one group commit now.
func (b *Batcher) Flush() { b.flushNow() }

// Close flushes whatever is pending and stops the loop. Subsequent
// submissions fail with ErrClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.stopped = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
}

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Flushes:     b.flushes.Load(),
		Groups:      b.groups.Load(),
		Ops:         b.ops.Load(),
		MaxGroupOps: b.maxGroup.Load(),
		FlushNanos:  b.flushNs.Load(),
	}
}

// loop drains pending work as soon as it appears (self-clocking: the
// commit in flight is the accumulation window for the next group). An
// idle batcher blocks on its kick channel alone; the MaxDelay sweep —
// the backstop latency bound — is armed only while work is pending.
func (b *Batcher) loop() {
	defer close(b.done)
	for {
		b.mu.Lock()
		idle := b.nops == 0
		b.mu.Unlock()
		if idle {
			select {
			case <-b.stop:
				b.drain()
				return
			case <-b.kick:
			}
		} else {
			t := time.NewTimer(b.cfg.MaxDelay)
			select {
			case <-b.stop:
				t.Stop()
				b.drain()
				return
			case <-b.kick:
				t.Stop()
			case <-t.C:
			}
		}
		b.drain()
	}
}

// drain flushes until nothing is pending.
func (b *Batcher) drain() {
	for {
		b.mu.Lock()
		n := b.nops
		b.mu.Unlock()
		if n == 0 {
			return
		}
		b.flushNow()
	}
}

// flushNow group-commits up to MaxOps pending operations (always at
// least one whole batch) and demultiplexes the per-batch results to
// their waiters.
func (b *Batcher) flushNow() {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	b.mu.Lock()
	take := len(b.pending)
	nops := 0
	for i, g := range b.pending {
		if i > 0 && nops+len(g.ops) > b.cfg.MaxOps {
			take = i
			break
		}
		nops += len(g.ops)
	}
	batch := b.pending[:take:take]
	b.pending = b.pending[take:]
	b.nops -= nops
	b.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	groups := make([][]Op, len(batch))
	for i, g := range batch {
		groups[i] = g.ops
	}
	start := time.Now()
	results := b.cli.MultiAllResolved(groups...)
	elapsed := time.Since(start)
	if b.cfg.OnFlush != nil {
		b.cfg.OnFlush(nops, elapsed)
	}
	b.flushNs.Add(elapsed.Nanoseconds())
	b.flushes.Add(1)
	b.groups.Add(int64(len(batch)))
	b.ops.Add(int64(nops))
	for {
		cur := b.maxGroup.Load()
		if int64(nops) <= cur || b.maxGroup.CompareAndSwap(cur, int64(nops)) {
			break
		}
	}
	for i, g := range batch {
		g.deliver(results[i])
	}
}
