package store

import (
	"encoding/binary"
	"fmt"
)

// This file is the store's half of the persistence contract: it encodes
// validated operations for WAL records and the leader tree for snapshot
// payloads. The persist package frames, checksums, and files these bytes
// without interpreting them.
//
// Only resolved ops (post-validateOp) are encoded, so replaying a record
// with applyOp is deterministic: sequence names are already fixed and
// version checks already passed when the record was written.

const codecVersion = 1

// --- Operation encoding ------------------------------------------------

// encodeOp serializes a resolved op for a WAL record.
func encodeOp(op Op) []byte {
	b := make([]byte, 0, 32+len(op.Path)+len(op.Data))
	b = append(b, codecVersion)
	return appendOp(b, op)
}

func appendOp(b []byte, op Op) []byte {
	b = append(b, byte(op.kind))
	b = appendBlob(b, []byte(op.Path))
	b = appendBlob(b, op.Data)
	b = binary.AppendUvarint(b, uint64(op.Flags))
	b = binary.AppendVarint(b, int64(op.Version))
	b = binary.AppendVarint(b, op.session)
	b = appendBlob(b, []byte(op.resolvedName))
	b = binary.AppendUvarint(b, uint64(len(op.ops)))
	for _, sub := range op.ops {
		b = appendOp(b, sub)
	}
	return b
}

// decodeOp parses a WAL record payload back into an op.
func decodeOp(b []byte) (Op, error) {
	if len(b) == 0 || b[0] != codecVersion {
		return Op{}, fmt.Errorf("store: wal record: unsupported codec version")
	}
	op, rest, err := readOp(b[1:])
	if err != nil {
		return Op{}, fmt.Errorf("store: wal record: %w", err)
	}
	if len(rest) != 0 {
		return Op{}, fmt.Errorf("store: wal record: %d trailing bytes", len(rest))
	}
	return op, nil
}

func readOp(b []byte) (Op, []byte, error) {
	var op Op
	if len(b) < 1 {
		return op, nil, errTruncated
	}
	op.kind = opKind(b[0])
	b = b[1:]
	var blob []byte
	var err error
	if blob, b, err = readBlob(b); err != nil {
		return op, nil, err
	}
	op.Path = string(blob)
	if blob, b, err = readBlob(b); err != nil {
		return op, nil, err
	}
	if len(blob) > 0 {
		op.Data = blob
	}
	var u uint64
	if u, b, err = readUvarint(b); err != nil {
		return op, nil, err
	}
	op.Flags = int(u)
	var v int64
	if v, b, err = readVarint(b); err != nil {
		return op, nil, err
	}
	op.Version = int32(v)
	if op.session, b, err = readVarint(b); err != nil {
		return op, nil, err
	}
	if blob, b, err = readBlob(b); err != nil {
		return op, nil, err
	}
	op.resolvedName = string(blob)
	if u, b, err = readUvarint(b); err != nil {
		return op, nil, err
	}
	if u > uint64(len(b)) { // each sub-op needs ≥1 byte
		return op, nil, errTruncated
	}
	for i := uint64(0); i < u; i++ {
		var sub Op
		if sub, b, err = readOp(b); err != nil {
			return op, nil, err
		}
		op.ops = append(op.ops, sub)
	}
	return op, b, nil
}

// maxSessionOf returns the largest session id referenced by an op, so
// recovery can resume the session counter past every id the WAL used.
func maxSessionOf(op Op) int64 {
	max := op.session
	for _, sub := range op.ops {
		if s := maxSessionOf(sub); s > max {
			max = s
		}
	}
	return max
}

// --- Tree snapshot encoding --------------------------------------------

// encodeTreeSnapshot serializes the persistent portion of a tree plus
// the session counter. Ephemeral nodes are deliberately skipped: their
// owning sessions cannot survive a process restart, so persisting them
// would resurrect state ZooKeeper semantics say must die (the paper's
// failover behavior depends on exactly this — election and queue-consumer
// ephemerals vanishing on crash). Ephemerals never have children, so
// skipping one never orphans a subtree.
func encodeTreeSnapshot(t *tree, nextSess int64) []byte {
	b := make([]byte, 0, 4096)
	b = append(b, codecVersion)
	b = binary.AppendVarint(b, nextSess)
	return appendNode(b, t.root, "/")
}

// appendNode emits one node entry followed by its persistent children
// in sorted order (pre-order, parents before children).
func appendNode(b []byte, n *znode, path string) []byte {
	b = appendBlob(b, []byte(path))
	b = appendBlob(b, n.data)
	b = binary.AppendVarint(b, int64(n.version))
	b = binary.AppendVarint(b, n.czxid)
	b = binary.AppendVarint(b, n.mzxid)
	b = binary.AppendUvarint(b, n.seqCounter)
	for _, name := range n.sortedChildren() {
		child := n.children[name]
		if child.ephemeralOwner != 0 {
			continue
		}
		childPath := path + "/" + name
		if path == "/" {
			childPath = "/" + name
		}
		b = appendNode(b, child, childPath)
	}
	return b
}

// decodeTreeSnapshot rebuilds a tree from a snapshot payload.
func decodeTreeSnapshot(b []byte) (*tree, int64, error) {
	if len(b) == 0 || b[0] != codecVersion {
		return nil, 0, fmt.Errorf("store: snapshot: unsupported codec version")
	}
	b = b[1:]
	nextSess, b, err := readVarint(b)
	if err != nil {
		return nil, 0, fmt.Errorf("store: snapshot: %w", err)
	}
	t := newTree()
	for len(b) > 0 {
		if b, err = readNodeInto(t, b); err != nil {
			return nil, 0, fmt.Errorf("store: snapshot: %w", err)
		}
	}
	return t, nextSess, nil
}

func readNodeInto(t *tree, b []byte) ([]byte, error) {
	pathB, b, err := readBlob(b)
	if err != nil {
		return nil, err
	}
	path := string(pathB)
	data, b, err := readBlob(b)
	if err != nil {
		return nil, err
	}
	version, b, err := readVarint(b)
	if err != nil {
		return nil, err
	}
	czxid, b, err := readVarint(b)
	if err != nil {
		return nil, err
	}
	mzxid, b, err := readVarint(b)
	if err != nil {
		return nil, err
	}
	seq, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	var n *znode
	if path == "/" {
		n = t.root
	} else {
		parent, err := t.lookup(parentPath(path))
		if err != nil {
			return nil, fmt.Errorf("entry %s before its parent: %w", path, err)
		}
		parts, err := splitPath(path)
		if err != nil {
			return nil, err
		}
		n = newZnode(parts[len(parts)-1])
		parent.children[n.name] = n
	}
	if len(data) > 0 {
		n.data = data
	}
	n.version = int32(version)
	n.czxid = czxid
	n.mzxid = mzxid
	n.seqCounter = seq
	return b, nil
}

// --- Primitive readers ---------------------------------------------------

var errTruncated = fmt.Errorf("truncated encoding")

func appendBlob(b, blob []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(blob)))
	return append(b, blob...)
}

func readBlob(b []byte) ([]byte, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, errTruncated
	}
	if n == 0 {
		return nil, b, nil
	}
	blob := make([]byte, n)
	copy(blob, b[:n])
	return blob, b[n:], nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return v, b[n:], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return v, b[n:], nil
}
