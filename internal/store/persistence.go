package store

import (
	"sort"
	"time"

	"repro/internal/store/persist"
)

// Re-exported persistence vocabulary, so store users configure
// durability without importing the persist package.
type (
	// SyncPolicy selects the WAL fsync policy (SyncAlways | SyncNone).
	SyncPolicy = persist.SyncPolicy
	// PersistStats are the durability counters (WAL appends, fsyncs,
	// snapshots, recovery timing).
	PersistStats = persist.Stats
)

// WAL fsync policies.
const (
	// SyncAlways fsyncs every append (default; survives machine crashes).
	SyncAlways = persist.SyncAlways
	// SyncNone leaves flushing to the OS (survives process crashes only).
	SyncNone = persist.SyncNone
)

// ParseSyncPolicy parses a sync-policy flag value ("always" | "none").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	return persist.ParseSyncPolicy(s)
}

// PersistStats returns the durability counters, all zero when the
// ensemble runs without a DataDir.
func (e *Ensemble) PersistStats() PersistStats {
	if e.pstore == nil {
		return PersistStats{}
	}
	return e.pstore.Stats()
}

// LastRecovery reports how long the most recent crash recovery took
// (zero when none happened or persistence is off).
func (e *Ensemble) LastRecovery() time.Duration {
	if e.pstore == nil {
		return 0
	}
	return e.pstore.LastRecovery()
}

// recoverFromDisk rebuilds ensemble state from the data directory:
// latest valid snapshot, then the WAL tail, then a cleanup pass that
// expires every pre-crash session. It leaves the WAL rotated to a fresh
// segment and ready for appends. Called from OpenEnsemble before the
// ensemble serves; no locking needed.
func (e *Ensemble) recoverFromDisk() error {
	start := time.Now()

	// 1. Latest valid snapshot, if any.
	payload, snapZxid, err := e.pstore.LoadSnapshot()
	if err != nil {
		return err
	}
	t := newTree()
	var nextSess int64
	if payload != nil {
		if t, nextSess, err = decodeTreeSnapshot(payload); err != nil {
			return err
		}
	}

	// 2. Replay the WAL tail. Records the snapshot already covers are
	// skipped inside Replay; a torn or corrupt tail ends the log there.
	maxSess := nextSess
	last, err := e.pstore.Replay(snapZxid, func(zxid int64, rec []byte) error {
		op, err := decodeOp(rec)
		if err != nil {
			return err
		}
		applyOp(t, op, zxid, nil)
		if s := maxSessionOf(op); s > maxSess {
			maxSess = s
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.zxid = snapZxid
	if last > e.zxid {
		e.zxid = last
	}
	e.nextSess = maxSess

	// 3. New records go to a fresh segment (never append after a
	// possibly-torn tail).
	if err := e.pstore.StartAppending(e.zxid + 1); err != nil {
		return err
	}

	// 4. Every pre-crash session is dead: reap its ephemerals exactly as
	// a session expiry would, so election nodes and queue-consumer marks
	// vanish and controller re-election fires on restart just as it does
	// on failover. The expiries are themselves logged (log-before-apply),
	// so a crash during or after recovery replays the same cleanup.
	var owners []int64
	collectOwners(t.root, map[int64]bool{}, &owners)
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	for _, sess := range owners {
		op := Op{kind: opExpireSession, session: sess}
		e.zxid++
		if err := e.pstore.Append(e.zxid, encodeOp(op)); err != nil {
			return err
		}
		applyOp(t, op, e.zxid, nil)
	}

	// 5. Compact everything recovery accepted into a fresh snapshot and
	// rotate the log. This is a correctness step, not an optimization:
	// replay stops at the first torn or corrupt record, so if a damaged
	// segment were left in place, a LATER recovery would stop there and
	// never reach the records this incarnation is about to write. The
	// snapshot supersedes the damaged tail and rotation deletes it.
	if e.zxid > 0 {
		if err := e.pstore.Snapshot(e.zxid, encodeTreeSnapshot(t, e.nextSess)); err != nil {
			return err
		}
	}

	// 6. Install the recovered tree on every replica.
	for i, r := range e.replicas {
		if i == 0 {
			r.tree = t
		} else {
			r.tree = &tree{root: t.root.deepCopy()}
		}
		r.appliedZxid = e.zxid
	}
	// A fresh data dir is initialization, not a recovery; only count the
	// pass when there was state to recover.
	if e.zxid > 0 {
		e.pstore.ObserveRecovery(time.Since(start))
	}
	return nil
}

// collectOwners gathers the distinct session ids owning ephemeral nodes
// in the recovered tree.
func collectOwners(n *znode, seen map[int64]bool, out *[]int64) {
	for _, child := range n.children {
		if child.ephemeralOwner != 0 && !seen[child.ephemeralOwner] {
			seen[child.ephemeralOwner] = true
			*out = append(*out, child.ephemeralOwner)
		}
		collectOwners(child, seen, out)
	}
}

// maybeSnapshotLocked writes a snapshot and rotates the WAL once enough
// appends accumulated since the last one. Called with e.mu held, right
// after a commit applied; the leader tree is therefore exactly the
// state at e.zxid. A failure to write the snapshot file is absorbed
// (the WAL still holds every committed record, so durability is
// unaffected — only recovery time stops improving); a failure during
// the rotation that follows trips the persist layer's fail-stop and
// surfaces on the next commit. Either way the counter resets, so a
// persistently failing snapshot is retried once per SnapshotEvery
// appends rather than on every commit.
func (e *Ensemble) maybeSnapshotLocked() {
	if e.cfg.SnapshotEvery <= 0 {
		return
	}
	e.sinceSnap++
	if e.sinceSnap < e.cfg.SnapshotEvery {
		return
	}
	e.sinceSnap = 0
	lt, err := e.leaderTree()
	if err != nil {
		return
	}
	_ = e.pstore.Snapshot(e.zxid, encodeTreeSnapshot(lt, e.nextSess))
}
